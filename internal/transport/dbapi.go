package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"mits/internal/cache"
	"mits/internal/mediastore"
	"mits/internal/obs"
)

// Method names of the courseware-database service. GetListDoc and
// GetSelectedDoc are the two APIs the thesis prototype implements
// (§5.3.2); GetKeywordTree and GetDocByKeyword are the ones it names as
// future work (§5.5); the rest complete the round trip for the
// production and author sites.
const (
	MethodListDocs     = "db.Get_List_Doc"
	MethodGetDoc       = "db.Get_Selected_Doc"
	MethodKeywordTree  = "db.GetKeywordTree"
	MethodDocByKeyword = "db.GetDocByKeyword"
	MethodGetContent   = "db.GetContent"
	MethodPutDoc       = "db.PutDocument"
	MethodPutContent   = "db.PutContent"
)

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// Wire structs.
type getDocReq struct{ Name string }
type putDocReq struct {
	Name, Title, Encoding string
	Keywords              []string
	Data                  []byte
}
type putDocResp struct{ Version int }
type getContentReq struct{ Ref string }
type putContentReq struct {
	Ref, Coding string
	Keywords    []string
	Data        []byte
}
type keywordReq struct{ Keyword string }

// RegisterStore exposes a mediastore on a mux as the courseware
// database service.
func RegisterStore(m *Mux, store *mediastore.Store) {
	m.Register(MethodListDocs, func(_ string, _ []byte) ([]byte, error) {
		return gobEncode(store.ListDocuments())
	})
	m.RegisterCtx(MethodGetDoc, func(sc obs.SpanContext, _ string, payload []byte) ([]byte, error) {
		var req getDocReq
		if err := gobDecode(payload, &req); err != nil {
			return nil, err
		}
		// Internal span: separates time in the store itself from the
		// transport around it when the request is traced.
		sp := obs.SpanFromContext("store.GetDocument", "internal", sc)
		rec, err := store.GetDocument(req.Name)
		sp.End(err)
		if err != nil {
			return nil, err
		}
		return gobEncode(rec)
	})
	m.Register(MethodKeywordTree, func(_ string, _ []byte) ([]byte, error) {
		return gobEncode(store.Keywords())
	})
	m.Register(MethodDocByKeyword, func(_ string, payload []byte) ([]byte, error) {
		var req keywordReq
		if err := gobDecode(payload, &req); err != nil {
			return nil, err
		}
		return gobEncode(store.DocsByKeyword(req.Keyword))
	})
	m.RegisterCtx(MethodGetContent, func(sc obs.SpanContext, _ string, payload []byte) ([]byte, error) {
		var req getContentReq
		if err := gobDecode(payload, &req); err != nil {
			return nil, err
		}
		sp := obs.SpanFromContext("store.GetContent", "internal", sc)
		// Borrow, don't copy: the record is immediately re-serialized,
		// so GetContent's defensive copy would be pure allocator load.
		// Borrowed records are immutable and gob only reads them.
		rec, err := store.GetContentBorrow(req.Ref)
		sp.End(err)
		if err != nil {
			return nil, err
		}
		return gobEncode(rec)
	})
	registerContentStream(m, store)
	m.Register(MethodPutDoc, func(_ string, payload []byte) ([]byte, error) {
		var req putDocReq
		if err := gobDecode(payload, &req); err != nil {
			return nil, err
		}
		v, err := store.PutDocument(req.Name, req.Title, req.Encoding, req.Data, req.Keywords...)
		if err != nil {
			return nil, err
		}
		return gobEncode(putDocResp{Version: v})
	})
	m.Register(MethodPutContent, func(_ string, payload []byte) ([]byte, error) {
		var req putContentReq
		if err := gobDecode(payload, &req); err != nil {
			return nil, err
		}
		return nil, store.PutContent(req.Ref, req.Coding, req.Data, req.Keywords...)
	})
}

// EncodeGetDoc encodes a Get_Selected_Doc request payload, for issuing
// the call over asynchronous carriers (ATM sessions).
func EncodeGetDoc(name string) ([]byte, error) { return gobEncode(getDocReq{Name: name}) }

// DecodeDocRecord decodes a Get_Selected_Doc response payload.
func DecodeDocRecord(data []byte) (*mediastore.DocRecord, error) {
	var rec mediastore.DocRecord
	return &rec, gobDecode(data, &rec)
}

// EncodeGetContent encodes a GetContent request payload.
func EncodeGetContent(ref string) ([]byte, error) { return gobEncode(getContentReq{Ref: ref}) }

// DecodeContentRecord decodes a GetContent response payload.
func DecodeContentRecord(data []byte) (*mediastore.ContentRecord, error) {
	var rec mediastore.ContentRecord
	return &rec, gobDecode(data, &rec)
}

// Routing-key extractors and scatter-gather codecs. A cluster router
// sits between clients and shards speaking the same wire protocol both
// ways: it needs just enough of each request to route it (the object
// name or ref the consistent hash keys on) and the ability to merge
// the per-shard responses of the fan-out methods. Everything below is
// a thin, exported view of the wire structs for exactly that — the
// payloads themselves are forwarded verbatim via DBClient.Do.

// RequestKey extracts the routing key of a keyed request payload: the
// document name for Get_Selected_Doc/PutDocument, the content ref for
// GetContent/PutContent. Methods that have no single key (list and
// keyword methods, which fan out) return ErrUnkeyedMethod.
func RequestKey(method string, payload []byte) (string, error) {
	switch method {
	case MethodGetDoc:
		var req getDocReq
		return req.Name, gobDecode(payload, &req)
	case MethodGetContent:
		var req getContentReq
		return req.Ref, gobDecode(payload, &req)
	case MethodPutDoc:
		var req putDocReq
		return req.Name, gobDecode(payload, &req)
	case MethodPutContent:
		var req putContentReq
		return req.Ref, gobDecode(payload, &req)
	case MethodGetContentStream:
		ref, _, _, err := DecodeGetContentStream(payload)
		return ref, err
	}
	return "", fmt.Errorf("%w: %s", ErrUnkeyedMethod, method)
}

// ErrUnkeyedMethod marks a method that carries no single routing key
// (scatter-gather methods route to every shard instead).
var ErrUnkeyedMethod = errors.New("transport: method has no routing key")

// EncodeNameList encodes a []string response payload (ListDocs,
// DocByKeyword) — the merge side of scatter-gather.
func EncodeNameList(names []string) ([]byte, error) { return gobEncode(names) }

// DecodeNameList decodes a []string response payload.
func DecodeNameList(payload []byte) ([]string, error) {
	var names []string
	return names, gobDecode(payload, &names)
}

// EncodeKeywordQuery encodes a GetDocByKeyword request payload.
func EncodeKeywordQuery(keyword string) ([]byte, error) {
	return gobEncode(keywordReq{Keyword: keyword})
}

// EncodeKeywordTree encodes a GetKeywordTree response payload.
func EncodeKeywordTree(t *mediastore.KeywordNode) ([]byte, error) { return gobEncode(t) }

// DecodeKeywordTree decodes a GetKeywordTree response payload.
func DecodeKeywordTree(payload []byte) (*mediastore.KeywordNode, error) {
	var tree mediastore.KeywordNode
	return &tree, gobDecode(payload, &tree)
}

// DBClient is the typed client module of §5.3.2, usable over any
// synchronous carrier (TCP or loopback).
type DBClient struct {
	C Client

	// ContentCache, when non-nil, serves repeated GetContent /
	// GetContentStream / FetchContent calls from local memory instead
	// of the wire: a size-bounded LRU with singleflight, so a stampede
	// of scene activations fetching the same MPEG object issues one
	// upstream RPC. Records that pass through the cache are shared
	// under the immutable-bytes handoff contract: every hit returns
	// the same record and callers must not mutate it
	// (CloneContentRecord for the rare caller that must). Nil means
	// every call goes upstream (the experiments keep it nil so store
	// read counts stay exact).
	ContentCache *cache.Cache

	// Trace, when non-zero, is the span context every call continues —
	// a trace-aware handler forwarding work upstream sets it per request
	// (via WithTrace) so the whole multi-hop path shares one trace.
	Trace obs.SpanContext
}

// WithContentCache returns a copy of the client that serves content
// through c.
func (d DBClient) WithContentCache(c *cache.Cache) DBClient {
	d.ContentCache = c
	return d
}

// WithTrace returns a copy of the client whose calls continue sc.
func (d DBClient) WithTrace(sc obs.SpanContext) DBClient {
	d.Trace = sc
	return d
}

// call issues one RPC through the carrier; the zero Trace context
// makes it an ordinary Call on every carrier.
func (d DBClient) call(method string, payload []byte) ([]byte, error) {
	return CallInTrace(d.C, d.Trace, method, payload)
}

// callPooled is call through the allocation-free decode path: the
// response may be backed by a pooled buffer that the returned release
// (when non-nil) recycles. Used by the typed methods, which gob-decode
// (copying everything out) and release before returning.
func (d DBClient) callPooled(method string, payload []byte) ([]byte, func(), error) {
	return CallInTracePooled(d.C, d.Trace, method, payload)
}

// decodeReleased gob-decodes a pooled response into v and recycles the
// response buffer: gob copies every byte it keeps, so nothing aliases
// the buffer once Decode returns.
func decodeReleased(payload []byte, rel func(), v any) error {
	err := gobDecode(payload, v)
	if rel != nil {
		rel()
	}
	return err
}

// Do issues one raw, already-encoded RPC through the client's full
// stack (trace, breaker, retry — whatever the carrier composes). It is
// the forwarding hook for proxies that route by inspecting the payload
// rather than re-marshalling it: the cluster router decodes just the
// routing key and ships the original bytes to the chosen replica.
func (d DBClient) Do(method string, payload []byte) ([]byte, error) {
	return d.call(method, payload)
}

// GetListDoc returns the stored document names.
func (d DBClient) GetListDoc() ([]string, error) {
	payload, rel, err := d.callPooled(MethodListDocs, nil)
	if err != nil {
		return nil, err
	}
	var names []string
	return names, decodeReleased(payload, rel, &names)
}

// GetSelectedDoc retrieves one document by name.
func (d DBClient) GetSelectedDoc(name string) (*mediastore.DocRecord, error) {
	req, err := gobEncode(getDocReq{Name: name})
	if err != nil {
		return nil, err
	}
	payload, rel, err := d.callPooled(MethodGetDoc, req)
	if err != nil {
		return nil, err
	}
	var rec mediastore.DocRecord
	return &rec, decodeReleased(payload, rel, &rec)
}

// GetKeywordTree retrieves the library's keyword hierarchy.
func (d DBClient) GetKeywordTree() (*mediastore.KeywordNode, error) {
	payload, rel, err := d.callPooled(MethodKeywordTree, nil)
	if err != nil {
		return nil, err
	}
	var tree mediastore.KeywordNode
	return &tree, decodeReleased(payload, rel, &tree)
}

// GetDocByKeyword finds documents by keyword path.
func (d DBClient) GetDocByKeyword(keyword string) ([]string, error) {
	req, err := gobEncode(keywordReq{Keyword: keyword})
	if err != nil {
		return nil, err
	}
	payload, rel, err := d.callPooled(MethodDocByKeyword, req)
	if err != nil {
		return nil, err
	}
	var names []string
	return names, decodeReleased(payload, rel, &names)
}

// GetContent fetches a content object's data by reference, consulting
// the content cache when one is attached. Records served through the
// cache are SHARED under the immutable-bytes handoff contract: every
// hit returns the same record, callers must treat it as read-only, and
// CloneContentRecord gives a private copy to the rare caller that
// needs to mutate. (The cache boundary used to clone defensively on
// every hit; at pipelined rates that copy dominated the hit cost —
// E32 — and the poolcheck tripwire now enforces the no-aliasing side
// of the bargain in the transport itself.)
func (d DBClient) GetContent(ref string) (*mediastore.ContentRecord, error) {
	if d.ContentCache == nil {
		return d.fetchContent(ref)
	}
	v, err := d.ContentCache.GetOrFill(ref, func() (any, int64, error) {
		rec, err := d.fetchContent(ref)
		if err != nil {
			return nil, 0, err
		}
		return rec, int64(len(rec.Data)), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*mediastore.ContentRecord), nil
}

// fetchContent is the uncached upstream path. The gob decode copies
// the record out of the (pooled) response before it is recycled, so
// the returned record owns its memory — which is exactly what the
// cache's immutable handoff needs.
func (d DBClient) fetchContent(ref string) (*mediastore.ContentRecord, error) {
	req, err := gobEncode(getContentReq{Ref: ref})
	if err != nil {
		return nil, err
	}
	payload, rel, err := d.callPooled(MethodGetContent, req)
	if err != nil {
		return nil, err
	}
	var rec mediastore.ContentRecord
	return &rec, decodeReleased(payload, rel, &rec)
}

// CloneContentRecord deep-copies a record — the escape hatch for
// callers that need to mutate what GetContent/GetContentStream
// returned, now that cached records are shared rather than cloned on
// every hit.
func CloneContentRecord(rec *mediastore.ContentRecord) *mediastore.ContentRecord {
	cp := *rec
	cp.Data = append([]byte(nil), rec.Data...)
	cp.Keywords = append([]string(nil), rec.Keywords...)
	return &cp
}

// PutDocument publishes a courseware document (author site).
func (d DBClient) PutDocument(name, title, encoding string, data []byte, keywords ...string) (int, error) {
	req, err := gobEncode(putDocReq{Name: name, Title: title, Encoding: encoding, Keywords: keywords, Data: data})
	if err != nil {
		return 0, err
	}
	payload, err := d.call(MethodPutDoc, req)
	if err != nil {
		return 0, err
	}
	var resp putDocResp
	return resp.Version, gobDecode(payload, &resp)
}

// PutContent uploads media data (production center).
func (d DBClient) PutContent(ref, coding string, data []byte, keywords ...string) error {
	req, err := gobEncode(putContentReq{Ref: ref, Coding: coding, Keywords: keywords, Data: data})
	if err != nil {
		return err
	}
	_, err = d.call(MethodPutContent, req)
	return err
}

// FetchContent implements engine.ContentResolver over the database
// client, so a navigator's MHEG engine pulls referenced content through
// the network path.
func (d DBClient) FetchContent(ref string) ([]byte, error) {
	rec, err := d.GetContent(ref)
	if err != nil {
		return nil, fmt.Errorf("transport: fetch content %q: %w", ref, err)
	}
	return rec.Data, nil
}

// NewResilientDBClient builds the hardened client stack of DESIGN §9
// around a dialer: a circuit breaker (outermost, so an open breaker
// rejects before any retry or dial work) over an idempotent-retry
// client that redials on connection failure. The breaker is returned
// alongside so callers can observe or reset it; peer labels the
// breaker's metrics. Seed fixes the retry jitter stream for
// reproducible chaos runs.
func NewResilientDBClient(peer string, dial Dialer, policy RetryPolicy, threshold int, cooldown time.Duration, seed uint64) (DBClient, *Breaker) {
	br := NewBreaker(peer, threshold, cooldown)
	rc := NewRetryClient(dial, policy, seed)
	return DBClient{C: WithBreaker(rc, br)}, br
}

// ForwardHandler serves the courseware-database service by proxying to
// an upstream site through a DBClient — the edge node of a multi-hop
// delivery path (navigator → edge cache → store). It is trace-aware:
// the span context of the incoming request threads into every upstream
// call, so one trace spans all hops. GetContent goes through the
// client's typed path (and therefore its content cache, when one is
// attached); every other method forwards raw bytes.
type ForwardHandler struct {
	DB DBClient
}

// Handle implements Handler (untraced requests).
func (f ForwardHandler) Handle(method string, payload []byte) ([]byte, error) {
	return f.HandleCtx(obs.SpanContext{}, method, payload)
}

// HandleCtx implements CtxHandler.
func (f ForwardHandler) HandleCtx(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	d := f.DB.WithTrace(sc)
	if method == MethodGetContent && d.ContentCache != nil {
		var req getContentReq
		if err := gobDecode(payload, &req); err != nil {
			return nil, err
		}
		rec, err := d.GetContent(req.Ref)
		if err != nil {
			return nil, err
		}
		return gobEncode(rec)
	}
	// The server recycles the request buffer when this handler returns,
	// but a timed-out upstream call can leave its frame queued behind
	// the upstream writer still referencing payload — forward a private
	// copy.
	return d.call(method, append([]byte(nil), payload...))
}

// NewCachedResilientDBClient is NewResilientDBClient with a content
// cache of cacheBytes in front — the full deployment stack of a
// navigator site (cache over breaker over retry over redial). The
// cache composes cleanly with the resilience layer because it sits
// above it: a hit never touches the breaker, a miss takes the whole
// hardened path, and fill errors are not cached so recovery is
// immediate.
func NewCachedResilientDBClient(peer string, dial Dialer, policy RetryPolicy, threshold int, cooldown time.Duration, seed uint64, cacheBytes int64) (DBClient, *Breaker) {
	d, br := NewResilientDBClient(peer, dial, policy, threshold, cooldown, seed)
	return d.WithContentCache(cache.New("content:"+peer, cacheBytes)), br
}
