package transport

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mits/internal/lint/leaktest"

	"mits/internal/obs"
)

// preUpgradeRequestFrame builds the exact byte layout the v1 encoder
// produced before the trace-ID field existed:
// kind(1) id(8) nameLen(4) name payLen(4) payload.
func preUpgradeRequestFrame(id uint64, method string, payload []byte) []byte {
	buf := []byte{byte(kindRequest)}
	buf = binary.BigEndian.AppendUint64(buf, id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(method)))
	buf = append(buf, method...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// TestFrameDecodesPreUpgradeEncoding is the frame-versioning
// regression test: a frame encoded before the header grew the trace
// context must still decode, field for field.
func TestFrameDecodesPreUpgradeEncoding(t *testing.T) {
	raw := preUpgradeRequestFrame(7, "db.Get_Selected_Doc", []byte("payload"))
	f, err := unmarshalFrame(raw)
	if err != nil {
		t.Fatalf("pre-upgrade frame rejected: %v", err)
	}
	if f.kind != kindRequest || f.id != 7 || f.method != "db.Get_Selected_Doc" || string(f.payload) != "payload" {
		t.Fatalf("pre-upgrade frame mangled: %+v", f)
	}
	if f.trace != 0 || f.span != 0 {
		t.Fatalf("pre-upgrade frame grew a trace context: trace=%d span=%d", f.trace, f.span)
	}
}

// TestFrameUntracedEncodingIsV1 pins the compatibility contract from
// the other side: a frame without a trace context must marshal to the
// v1 byte layout, so an un-upgraded peer can still parse what we send.
func TestFrameUntracedEncodingIsV1(t *testing.T) {
	f := &frame{kind: kindRequest, id: 7, method: "db.Get_Selected_Doc", payload: []byte("payload")}
	want := preUpgradeRequestFrame(7, "db.Get_Selected_Doc", []byte("payload"))
	if got := f.marshal(); !bytes.Equal(got, want) {
		t.Fatalf("untraced frame encoding drifted from v1:\n got %x\nwant %x", got, want)
	}
}

// TestFrameV2RoundTrip checks the trace context survives the new
// encoding in both kinds.
func TestFrameV2RoundTrip(t *testing.T) {
	for _, kind := range []frameKind{kindRequest, kindResponse} {
		f := &frame{kind: kind, id: 9, trace: 0xdeadbeefcafe, span: 42, payload: []byte{1, 2, 3}}
		if kind == kindRequest {
			f.method = "db.GetContent"
		} else {
			f.errText = "boom"
		}
		got, err := unmarshalFrame(f.marshal())
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if got.kind != kind || got.trace != f.trace || got.span != f.span || got.id != 9 {
			t.Fatalf("kind %d round trip mangled: %+v", kind, got)
		}
	}
}

// TestFrameV2Truncated makes sure a v2 kind with a short body errors
// instead of reading out of bounds.
func TestFrameV2Truncated(t *testing.T) {
	f := &frame{kind: kindRequest, id: 1, trace: 5, span: 6, method: "m"}
	raw := f.marshal()
	for n := 1; n < 1+8+16+4; n++ {
		if _, err := unmarshalFrame(raw[:n]); err == nil {
			t.Fatalf("truncated v2 frame of %d bytes decoded", n)
		}
	}
}

// TestTraceAcrossTCP drives a real TCP round trip and checks the
// client and server spans land in the registry under one shared trace
// ID, with the server span parented on the client span — the
// acceptance path for following one GetDocument across sites.
func TestTraceAcrossTCP(t *testing.T) {
	leaktest.Check(t)
	mux := NewMux()
	mux.Register("echo", func(_ string, p []byte) ([]byte, error) { return p, nil })
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Call("echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	trace := cli.LastTrace()
	if trace == 0 {
		t.Fatal("client call left no trace ID")
	}

	spans := obs.Default.SpansOf(trace)
	var client, server *obs.Span
	for _, s := range spans {
		switch s.Kind {
		case "client":
			client = s
		case "server":
			server = s
		}
	}
	if client == nil || server == nil {
		t.Fatalf("want client+server spans for trace %s, got %d spans", trace, len(spans))
	}
	if client.Name != "echo" || server.Name != "echo" {
		t.Fatalf("span names: client=%q server=%q", client.Name, server.Name)
	}
	if server.Parent != client.ID {
		t.Fatalf("server span parent %s, want client span %s", server.Parent, client.ID)
	}
	if client.Dur <= 0 || server.Dur < 0 {
		t.Fatalf("span durations not recorded: client=%v server=%v", client.Dur, server.Dur)
	}

	// The latency histograms fed by the same round trip must be
	// non-empty on both sides.
	for _, name := range []string{"transport_client_latency_ns", "transport_server_latency_ns"} {
		h := obs.GetHistogram(name, "method", "echo")
		if h.Count() == 0 {
			t.Fatalf("%s empty after a round trip", name)
		}
		if s := h.Snapshot(); s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 {
			t.Fatalf("%s percentiles inconsistent: %+v", name, s)
		}
	}
}

// TestTraceAcrossATM checks trace propagation on the experiment-path
// carrier too: the server span recorded while handling an ATM RPC
// joins the trace opened by Go.
func TestTraceAcrossATM(t *testing.T) {
	leaktest.Check(t)
	n, client, server := atmTestNet(t)
	mux := NewMux()
	mux.Register("echo", func(_ string, p []byte) ([]byte, error) { return p, nil })
	sess, err := OpenATMSession(n, client, server, mux, ATMSessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if _, err := sess.CallOver("echo", []byte("y")); err != nil {
		t.Fatal(err)
	}
	// The registry is a ring buffer that earlier tests may have filled
	// past its capacity, so index arithmetic from "before the call" is
	// unreliable; the call just made is simply the newest client span
	// with our name.
	var trace obs.TraceID
	spans := obs.Default.Spans()
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].Name == "echo" && spans[i].Kind == "client" {
			trace = spans[i].Trace
			break
		}
	}
	if trace == 0 {
		t.Fatal("no client span recorded for the ATM call")
	}
	foundServer := false
	for _, s := range obs.Default.SpansOf(trace) {
		if s.Kind == "server" {
			foundServer = true
		}
	}
	if !foundServer {
		t.Fatalf("trace %s has no server span on the ATM path", trace)
	}
}
