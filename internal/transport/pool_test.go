package transport

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"mits/internal/lint/leaktest"
)

// TestPoolStripesRoundRobin pins the striping itself: sequential calls
// rotate through every connection, so independent callers stop
// funneling through one writer goroutine and one pending-call map.
func TestPoolStripesRoundRobin(t *testing.T) {
	leaktest.Check(t)
	srv, addr := pipelineServer(t, nil, nil)
	defer srv.Close()
	pool, err := DialTCPPool(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const calls = 8
	for i := 0; i < calls; i++ {
		if _, err := pool.Call("echo", []byte{byte(i)}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	for i, c := range pool.stripes {
		c.mu.Lock()
		n := c.nextCorr
		c.mu.Unlock()
		if n != calls/4 {
			t.Fatalf("stripe %d carried %d calls, want %d", i, n, calls/4)
		}
	}
}

// TestPoolStripeFailureIsolation is the pool's failure-domain contract:
// with 64 callers parked across 4 stripes, killing one connection fails
// exactly that stripe's 16 in-flight calls with ErrPeerClosed — the
// other 48 never notice, the pool stays usable, and new calls skip the
// dead stripe. Runs under `make racestress`.
func TestPoolStripeFailureIsolation(t *testing.T) {
	leaktest.Check(t)
	release := make(chan struct{})
	var parked atomic.Int64
	srv, addr := pipelineServer(t, release, &parked)
	defer srv.Close()
	pool, err := DialTCPPool(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const callers = 64
	perStripe := callers / 4
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := pool.Call("block", []byte("held"))
			errs <- err
		}()
	}
	waitFor(t, func() bool { return parked.Load() == callers })

	// Peer-death on one stripe: close the raw conn underneath the
	// client, as a server crash would.
	pool.stripes[1].conn.Close() //mits:allow errdrop test-injected conn death

	// Exactly the dead stripe's calls fail, and with the typed error.
	for i := 0; i < perStripe; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrPeerClosed) {
				t.Fatalf("stripe death returned %v, want ErrPeerClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d calls on the dead stripe failed", i, perStripe)
		}
	}

	// The pool is still healthy and routes new calls around the corpse.
	if err := pool.Err(); err != nil {
		t.Fatalf("pool reported dead with 3 live stripes: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := pool.Call("echo", []byte{byte(i)}); err != nil {
			t.Fatalf("call after stripe death: %v", err)
		}
	}

	// The survivors complete untouched.
	close(release)
	for i := 0; i < callers-perStripe; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("call on a live stripe failed: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d surviving calls completed", i, callers-perStripe)
		}
	}
}

// TestPoolAllStripesDead pins the discard handshake with the retry
// layer: only when every stripe has died does Err() go non-nil, which
// is what tells RetryClient.discardIfDead to redial a whole fresh pool.
func TestPoolAllStripesDead(t *testing.T) {
	leaktest.Check(t)
	srv, addr := pipelineServer(t, nil, nil)
	defer srv.Close()
	pool, err := DialTCPPool(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Call("echo", []byte("up")); err != nil {
		t.Fatal(err)
	}

	pool.stripes[0].conn.Close() //mits:allow errdrop test-injected conn death
	waitFor(t, func() bool { return pool.stripes[0].Err() != nil })
	if pool.Err() != nil {
		t.Fatal("pool reported dead with a live stripe")
	}
	pool.stripes[1].conn.Close() //mits:allow errdrop test-injected conn death
	waitFor(t, func() bool { return pool.stripes[1].Err() != nil })
	if !errors.Is(pool.Err(), ErrPeerClosed) {
		t.Fatalf("all-dead pool reported %v, want ErrPeerClosed", pool.Err())
	}
	if _, err := pool.Call("echo", []byte("down")); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("call on all-dead pool returned %v, want ErrPeerClosed", err)
	}
}
