package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"mits/internal/mediastore"
	"mits/internal/sim"
)

// fakeClient scripts Call outcomes for retry-loop tests.
type fakeClient struct {
	mu     sync.Mutex
	errs   []error // consumed per call; nil entry = success
	calls  int
	closed int
}

func (f *fakeClient) Call(method string, _ []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if len(f.errs) == 0 {
		return []byte("ok"), nil
	}
	err := f.errs[0]
	f.errs = f.errs[1:]
	if err != nil {
		return nil, err
	}
	return []byte("ok"), nil
}

func (f *fakeClient) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed++
	return nil
}

// noSleep is a RetryPolicy Sleep that only records.
func noSleep(rec *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *rec = append(*rec, d) }
}

func TestRetryClientRetriesIdempotentCalls(t *testing.T) {
	fc := &fakeClient{errs: []error{fmt.Errorf("%w (synthetic)", ErrPeerClosed), nil}}
	var slept []time.Duration
	rc := NewRetryClient(func() (Client, error) { return fc, nil },
		RetryPolicy{Attempts: 3, Sleep: noSleep(&slept)}, 1)
	defer rc.Close()
	out, err := rc.Call(MethodListDocs, nil)
	if err != nil || string(out) != "ok" {
		t.Fatalf("Call = (%q, %v), want recovery", out, err)
	}
	if len(slept) != 1 {
		t.Fatalf("backed off %d times, want 1", len(slept))
	}
	if fc.closed == 0 {
		t.Error("failed connection was not discarded before the retry")
	}
}

func TestRetryClientDoesNotRetryMutations(t *testing.T) {
	fc := &fakeClient{errs: []error{fmt.Errorf("%w (synthetic)", ErrPeerClosed), nil}}
	var slept []time.Duration
	rc := NewRetryClient(func() (Client, error) { return fc, nil },
		RetryPolicy{Attempts: 3, Sleep: noSleep(&slept)}, 1)
	defer rc.Close()
	_, err := rc.Call(MethodPutDoc, nil)
	if err == nil {
		t.Fatal("non-idempotent call was retried to success")
	}
	if fc.calls != 1 {
		t.Fatalf("PutDocument attempted %d times, want exactly 1 (unknown outcome must not be replayed)", fc.calls)
	}
	var ce *CallError
	if !errors.As(err, &ce) || !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("error %v not a CallError wrapping ErrPeerClosed", err)
	}
}

func TestRetryClientRetriesDialFailures(t *testing.T) {
	dials := 0
	fc := &fakeClient{}
	var slept []time.Duration
	rc := NewRetryClient(func() (Client, error) {
		dials++
		if dials < 3 {
			return nil, errors.New("connection refused")
		}
		return fc, nil
	}, RetryPolicy{Attempts: 3, Sleep: noSleep(&slept)}, 1)
	defer rc.Close()
	// Dial failures are safe to retry even for mutations: nothing was
	// ever sent.
	if _, err := rc.Call(MethodPutDoc, nil); err != nil {
		t.Fatalf("call after dial recovery failed: %v", err)
	}
	if dials != 3 {
		t.Fatalf("dialed %d times, want 3", dials)
	}
}

func TestRetryClientRemoteErrorsKeepConnection(t *testing.T) {
	fc := &fakeClient{errs: []error{&RemoteError{Method: MethodGetDoc, Text: "no such document"}}}
	rc := NewRetryClient(func() (Client, error) { return fc, nil },
		RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}}, 1)
	defer rc.Close()
	_, err := rc.Call(MethodGetDoc, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("remote error lost its type: %v", err)
	}
	if fc.closed != 0 {
		t.Error("connection discarded on a handler error (carrier was fine)")
	}
}

func TestRetryBackoffGrowsAndJitters(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, JitterFrac: 0.5}.withDefaults()
	rng := sim.NewRNG(1)
	for retry, base := range map[int]time.Duration{1: 10 * time.Millisecond, 2: 20 * time.Millisecond, 4: 80 * time.Millisecond, 8: 80 * time.Millisecond} {
		d := p.backoffFor(retry, rng)
		lo, hi := base/2, base+base/2
		if d < lo || d > hi {
			t.Errorf("backoff(retry=%d) = %v, want within [%v, %v]", retry, d, lo, hi)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker("peer-a", 3, 100*time.Millisecond).SetClock(clock)

	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker rejected a call: %v", err)
	}
	for i := 0; i < 3; i++ {
		b.Record(errors.New("boom"))
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker error = %v, want ErrBreakerOpen", err)
	}

	// Cooldown elapses: one probe allowed, a second concurrent call is
	// still rejected.
	now = now.Add(150 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second in-flight probe allowed: %v", err)
	}

	// Probe fails: back to open; another cooldown and a successful
	// probe closes it.
	b.Record(errors.New("still down"))
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	now = now.Add(150 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
}

func TestBreakerClientIgnoresRemoteErrors(t *testing.T) {
	fc := &fakeClient{errs: []error{
		&RemoteError{Method: MethodGetDoc, Text: "x"},
		&RemoteError{Method: MethodGetDoc, Text: "x"},
		&RemoteError{Method: MethodGetDoc, Text: "x"},
	}}
	bc := WithBreaker(fc, NewBreaker("peer-b", 2, time.Second))
	for i := 0; i < 3; i++ {
		bc.Call(MethodGetDoc, nil) //nolint:errcheck // remote errors are the point
	}
	if got := bc.Breaker().State(); got != BreakerClosed {
		t.Fatalf("remote errors tripped the breaker: %v", got)
	}
}

// dbServer starts a real TCP server backed by a mediastore, returning
// the address.
func dbServer(t *testing.T) string {
	t.Helper()
	store := mediastore.New()
	if _, err := store.PutDocument("doc", "Doc", "text", []byte("body")); err != nil {
		t.Fatal(err)
	}
	mux := NewMux()
	RegisterStore(mux, store)
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// rawServer accepts one connection and hands it to fn.
func rawServer(t *testing.T, fn func(net.Conn)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fn(conn)
	}()
	return l.Addr().String()
}

func TestDBClientPeerClosedMidResponse(t *testing.T) {
	addr := rawServer(t, func(conn net.Conn) {
		// Read the request, then advertise a response and hang up
		// halfway through it.
		readFrame(conn, false) //nolint:errcheck // scripted peer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 64)
		conn.Write(hdr[:])           //nolint:errcheck
		conn.Write(make([]byte, 20)) //nolint:errcheck
	})
	cl, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	db := DBClient{C: cl}
	_, err = db.GetListDoc()
	if !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("mid-response hangup error = %v, want ErrPeerClosed", err)
	}
	var ce *CallError
	if !errors.As(err, &ce) || ce.Method != MethodListDocs {
		t.Fatalf("error %v is not a CallError naming the method", err)
	}
}

func TestDBClientMalformedStatusFrame(t *testing.T) {
	addr := rawServer(t, func(conn net.Conn) {
		req, err := readFrame(conn, false)
		if err != nil {
			return
		}
		// A frame with an undefined kind byte: length prefix is valid,
		// the body is garbage.
		body := []byte{0x7F}
		body = binary.BigEndian.AppendUint64(body, req.id)
		body = append(body, 0, 0, 0, 0, 0, 0, 0, 0)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		conn.Write(hdr[:]) //nolint:errcheck
		conn.Write(body)   //nolint:errcheck
	})
	cl, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	db := DBClient{C: cl}
	_, err = db.GetListDoc()
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("malformed frame error = %v, want ErrBadFrame", err)
	}
}

func TestDBClientDeadlineExpiry(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	addr := rawServer(t, func(conn net.Conn) {
		readFrame(conn, false) //nolint:errcheck // scripted peer
		<-block                // never respond
	})
	cl, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 30 * time.Millisecond
	db := DBClient{C: cl}
	start := time.Now()
	_, err = db.GetListDoc()
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("deadline error = %v, want ErrCallTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

func TestResilientDBClientEndToEnd(t *testing.T) {
	addr := dbServer(t)
	dial := func() (Client, error) { return DialTCP(addr) }
	db, br := NewResilientDBClient("db", dial, RetryPolicy{Attempts: 2}, 3, 50*time.Millisecond, 11)
	defer db.C.Close()
	names, err := db.GetListDoc()
	if err != nil || len(names) != 1 {
		t.Fatalf("GetListDoc = (%v, %v), want one doc", names, err)
	}
	if br.State() != BreakerClosed {
		t.Fatalf("healthy path left breaker %v", br.State())
	}
}

// TestReadFrameStreamsLargeBodies is the regression for the up-front
// MaxFrame allocation: a header advertising a large length must not
// allocate the full body before the bytes arrive.
func TestReadFrameStreamsLargeBodies(t *testing.T) {
	// A huge-but-legal header followed by a closed connection: the
	// reader fails, and must not have allocated the advertised 15MB.
	addr := rawServer(t, func(conn net.Conn) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 15<<20)
		conn.Write(hdr[:])           //nolint:errcheck
		conn.Write(make([]byte, 10)) //nolint:errcheck
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := readFrame(conn, false); err == nil {
		t.Fatal("truncated 15MB frame decoded successfully")
	}
	runtime.ReadMemStats(&after)
	// The failed read should cost ~one readChunk (64KB), nowhere near
	// the advertised 15MB.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 4<<20 {
		t.Errorf("failed large-frame read allocated %d bytes (up-front allocation regressed)", grew)
	}
}

// TestReadBodyGrowthPath round-trips a body large enough to exercise
// the chunked growth loop.
func TestReadBodyGrowthPath(t *testing.T) {
	payload := make([]byte, 300<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	f := &frame{kind: kindRequest, id: 9, method: "m", payload: payload}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		writeFrame(a, f) //nolint:errcheck // read side validates
	}()
	got, err := readFrame(b, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.id != 9 || len(got.payload) != len(payload) {
		t.Fatalf("round trip: id=%d len=%d", got.id, len(got.payload))
	}
	for i := range payload {
		if got.payload[i] != payload[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}
