package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"mits/internal/obs"
)

// Vectored write coalescing. The original writers put one frame on the
// wire per Write call, so a pipelined burst of N small requests cost N
// syscalls — and on this workload the syscall, not the encode,
// dominates (E32). A batchWriter instead accumulates every frame
// queued at wakeup into one reused scratch buffer and flushes the lot
// with a single writev-shaped write (net.Buffers), bringing the
// syscall cost of a burst down to ~1 regardless of its width.
//
// Frames small enough to share the scratch buffer are copied into it
// back to back; frames larger than the scratch class get a pooled
// segment of their own, spliced into the net.Buffers vector in wire
// order so a big content chunk rides the same writev as the small
// interactive frames around it without being re-copied into scratch.

// batchScratchSize is the scratch buffer's capacity — one 64 KB pool
// class. Typical interactive frames run ~100 bytes, so a full client
// drain (sendQueueDepth frames) fits with room to spare; when a batch
// genuinely overflows the scratch, add flushes mid-batch and keeps
// going (an extra write per 64 KB of queued data, not per frame).
const batchScratchSize = 64 << 10

// obsWriteBatch is the transport_write_batch_size histogram: frames
// per flush on the client writer and the server response writer. A
// distribution stuck at 1 under concurrent load means coalescing has
// regressed to frame-at-a-time writes.
var obsWriteBatch = obs.GetHistogram("transport_write_batch_size")

type batchWriter struct {
	conn    net.Conn
	scratch []byte      // small-frame accumulation, one pool class, reused across flushes
	mark    int         // start of the scratch span not yet sealed into bufs
	bufs    net.Buffers // this flush's wire segments, in order
	pooled  [][]byte    // large-frame segments to recycle after the flush
	frames  int         // frames encoded since the last observe/reset
	bytes   int64       // wire bytes encoded since the last flush
}

func newBatchWriter(conn net.Conn) *batchWriter {
	return &batchWriter{conn: conn, scratch: getBuf(batchScratchSize)}
}

// release returns the scratch buffer to the pool; the writer is dead
// afterwards. Call once, when the owning goroutine exits.
func (w *batchWriter) release() {
	putBuf(w.scratch)
	w.scratch = nil
}

// add encodes one frame into the pending batch, flushing mid-batch
// only when the scratch buffer is full. The frame's payload is fully
// copied by the time add returns, so the caller may recycle it
// immediately.
func (w *batchWriter) add(f *frame) error {
	size := f.wireSize()
	if size > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", size)
	}
	need := 4 + size
	if need > batchScratchSize {
		// Too big to share scratch: encode into a pooled segment of its
		// own and splice it into the vector at the current position.
		seg := getBuf(need)
		seg = binary.BigEndian.AppendUint32(seg, uint32(size))
		seg = f.appendTo(seg)
		w.seal()
		w.bufs = append(w.bufs, seg)
		w.pooled = append(w.pooled, seg)
		w.frames++
		w.bytes += int64(need)
		return nil
	}
	if len(w.scratch)+need > cap(w.scratch) {
		// Scratch is full; put what we have on the wire and keep going.
		if err := w.flushWire(); err != nil {
			return err
		}
	}
	w.scratch = binary.BigEndian.AppendUint32(w.scratch, uint32(size))
	w.scratch = f.appendTo(w.scratch)
	w.frames++
	w.bytes += int64(need)
	return nil
}

// seal closes the open scratch span into its own wire segment. Later
// adds append to the same backing array past mark, so sealed segments
// stay valid until flushWire resets the scratch.
func (w *batchWriter) seal() {
	if len(w.scratch) > w.mark {
		w.bufs = append(w.bufs, w.scratch[w.mark:len(w.scratch):len(w.scratch)])
		w.mark = len(w.scratch)
	}
}

// flushWire writes every pending segment with one syscall — a plain
// Write for a single segment, writev via net.Buffers for several —
// then recycles the large-frame segments and resets the scratch.
func (w *batchWriter) flushWire() error {
	w.seal()
	if len(w.bufs) == 0 {
		return nil
	}
	var err error
	if len(w.bufs) == 1 {
		_, err = w.conn.Write(w.bufs[0])
	} else {
		_, err = w.bufs.WriteTo(w.conn)
	}
	for i, seg := range w.pooled {
		putBuf(seg)
		w.pooled[i] = nil
	}
	w.pooled = w.pooled[:0]
	w.bufs = w.bufs[:0]
	w.scratch = w.scratch[:0]
	w.mark = 0
	if err == nil {
		obsBytesTx.Add(w.bytes)
	}
	w.bytes = 0
	return err
}

// flush ends a batch: puts pending segments on the wire and records
// the batch width in the transport_write_batch_size histogram. The
// histogram's unit is frames, not time; Observe takes a Duration so
// the count rides the existing exposition unconverted.
func (w *batchWriter) flush() error {
	err := w.flushWire()
	if w.frames > 0 {
		obsWriteBatch.Observe(time.Duration(w.frames))
		w.frames = 0
	}
	return err
}
