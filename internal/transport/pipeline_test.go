package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mits/internal/faults"
	"mits/internal/lint/leaktest"
	"mits/internal/obs"
)

// --- frame v3 unit coverage (mirrors the v2 regression suite) ---

// TestFrameV3RoundTrip checks the correlation ID (and the trace context
// riding behind it) survives the v3 encoding in both kinds.
func TestFrameV3RoundTrip(t *testing.T) {
	for _, kind := range []frameKind{kindRequest, kindResponse} {
		f := &frame{kind: kind, id: 9, corr: 77, trace: 0xdeadbeefcafe, span: 42, payload: []byte{1, 2, 3}}
		if kind == kindRequest {
			f.method = "db.GetContent"
		} else {
			f.errText = "boom"
		}
		got, err := unmarshalFrame(f.marshal())
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if got.kind != kind || got.corr != 77 || got.trace != f.trace || got.span != f.span || got.id != 9 {
			t.Fatalf("kind %d round trip mangled: %+v", kind, got)
		}
	}
}

// TestFrameV3UntracedRoundTrip pins that a correlated-but-untraced
// frame keeps its correlation ID (the trace context encodes as zeros).
func TestFrameV3UntracedRoundTrip(t *testing.T) {
	f := &frame{kind: kindRequest, id: 5, corr: 5, method: "m"}
	got, err := unmarshalFrame(f.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.corr != 5 || got.trace != 0 || got.span != 0 {
		t.Fatalf("untraced v3 mangled: %+v", got)
	}
}

// TestFrameV3Truncated makes sure a v3 kind with a short body errors
// instead of reading out of bounds.
func TestFrameV3Truncated(t *testing.T) {
	f := &frame{kind: kindRequest, id: 1, corr: 2, trace: 5, span: 6, method: "m"}
	raw := f.marshal()
	for n := 1; n < 1+8+8+16+4; n++ {
		if _, err := unmarshalFrame(raw[:n]); err == nil {
			t.Fatalf("truncated v3 frame of %d bytes decoded", n)
		}
	}
}

// --- pipelining behaviour over real TCP ---

// pipelineServer starts an echo-style server whose "block" method
// parks until release is closed, for tests that need calls held in
// flight deterministically.
func pipelineServer(t *testing.T, release chan struct{}, inFlight *atomic.Int64) (*TCPServer, string) {
	t.Helper()
	mux := NewMux()
	mux.Register("echo", func(_ string, p []byte) ([]byte, error) { return p, nil })
	mux.Register("block", func(_ string, p []byte) ([]byte, error) {
		if inFlight != nil {
			inFlight.Add(1)
		}
		<-release
		return p, nil
	})
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, addr
}

// TestPipelinedOutOfOrderCompletion is the tentpole's acceptance
// shape: with one call parked in the server, later calls on the same
// connection still complete — responses are matched by correlation ID,
// not arrival order.
func TestPipelinedOutOfOrderCompletion(t *testing.T) {
	leaktest.Check(t)
	release := make(chan struct{})
	var parked atomic.Int64
	srv, addr := pipelineServer(t, release, &parked)
	defer srv.Close()
	cli, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	blocked := make(chan error, 1)
	go func() {
		_, err := cli.Call("block", []byte("held"))
		blocked <- err
	}()
	waitFor(t, func() bool { return parked.Load() == 1 })

	// Neighbours must complete while "block" is still in flight.
	for i := 0; i < 8; i++ {
		out, err := cli.Call("echo", []byte{byte(i)})
		if err != nil {
			t.Fatalf("echo %d behind a blocked call: %v", i, err)
		}
		if len(out) != 1 || out[0] != byte(i) {
			t.Fatalf("echo %d returned %v", i, out)
		}
	}
	select {
	case err := <-blocked:
		t.Fatalf("blocked call completed early: %v", err)
	default:
	}
	close(release)
	if err := <-blocked; err != nil {
		t.Fatalf("blocked call failed after release: %v", err)
	}
}

// TestUnknownCorrelationResponse hand-speaks the server side of the
// protocol: a response bearing a correlation ID nobody is waiting for
// must be counted and dropped, and the connection must stay usable for
// the real response behind it.
func TestUnknownCorrelationResponse(t *testing.T) {
	leaktest.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer conn.Close()
		req, err := readFrame(conn, false)
		if err != nil {
			srvErr <- err
			return
		}
		// First a response for a correlation ID that was never issued…
		bogus := &frame{kind: kindResponse, id: 9999, corr: 9999, payload: []byte("ghost")}
		if err := writeFrame(conn, bogus); err != nil {
			srvErr <- err
			return
		}
		// …then the real one.
		real := &frame{kind: kindResponse, id: req.id, corr: req.corr, payload: req.payload}
		srvErr <- writeFrame(conn, real)
	}()

	before := obsUnknownCorr.Value()
	cli := mustDial(t, ln.Addr().String())
	defer cli.Close()
	out, err := cli.Call("echo", []byte("hi"))
	if err != nil {
		t.Fatalf("call after bogus response: %v", err)
	}
	if string(out) != "hi" {
		t.Fatalf("payload %q", out)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("scripted server: %v", err)
	}
	if got := obsUnknownCorr.Value() - before; got != 1 {
		t.Fatalf("unknown-corr counter moved by %d, want 1", got)
	}
}

// TestPreUpgradePeerResponseMatchesByID covers the compatibility path:
// a pre-v3 peer echoes only the frame id (no correlation field), and
// the client must still match the response.
func TestPreUpgradePeerResponseMatchesByID(t *testing.T) {
	leaktest.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer conn.Close()
		req, err := readFrame(conn, false)
		if err != nil {
			srvErr <- err
			return
		}
		// A v1 response: same id, no correlation ID, no trace.
		srvErr <- writeFrame(conn, &frame{kind: kindResponse, id: req.id, payload: req.payload})
	}()
	cli := mustDial(t, ln.Addr().String())
	defer cli.Close()
	out, err := cli.Call("echo", []byte("v1"))
	if err != nil {
		t.Fatalf("call against v1-style peer: %v", err)
	}
	if string(out) != "v1" {
		t.Fatalf("payload %q", out)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("scripted server: %v", err)
	}
}

// TestConnDeathFailsAllInFlight parks 10 calls in the server, severs
// the connection, and requires every one of them to fail with the
// typed ErrPeerClosed — the pending-call map drains exactly once.
func TestConnDeathFailsAllInFlight(t *testing.T) {
	leaktest.Check(t)
	release := make(chan struct{})
	var parked atomic.Int64
	srv, addr := pipelineServer(t, release, &parked)
	cli, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const calls = 10
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		go func() {
			_, err := cli.Call("block", nil)
			errs <- err
		}()
	}
	waitFor(t, func() bool { return parked.Load() == calls })

	// Close severs the connections first (failing the client's pending
	// map immediately), then drains serving goroutines — which are
	// still parked in the handler, so run it aside and unpark them only
	// after every call has reported its typed failure.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	for i := 0; i < calls; i++ {
		err := <-errs
		if !errors.Is(err, ErrPeerClosed) {
			t.Fatalf("in-flight call %d: got %v, want ErrPeerClosed", i, err)
		}
		var ce *CallError
		if !errors.As(err, &ce) || ce.Method != "block" {
			t.Fatalf("in-flight call %d: not a typed CallError: %v", i, err)
		}
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("server close: %v", err)
	}
}

// TestInjectedStallDoesNotBlockNeighbors drives the fault injector's
// RPC hook against one method while neighbours run clean: the stalled
// call must be the only slow one. (A conn-level read stall would park
// the shared reader goroutine — head-of-line by construction — so
// per-call stalls are injected where they land in production: in the
// handler.)
func TestInjectedStallDoesNotBlockNeighbors(t *testing.T) {
	leaktest.Check(t)
	const stallFor = 300 * time.Millisecond
	inj := faults.NewInjector(faults.Scenario{Name: "stall-one", Latency: stallFor}, 1)
	mux := NewMux()
	mux.Register("echo", func(_ string, p []byte) ([]byte, error) { return p, nil })
	mux.Register("slow", func(_ string, p []byte) ([]byte, error) {
		delay, drop, err := inj.RPC("slow")
		if err != nil || drop {
			return nil, fmt.Errorf("unexpected injector verdict: drop=%v err=%v", drop, err)
		}
		time.Sleep(delay) //mits:allow sleepless injected per-call stall under test
		return p, nil
	})
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	start := time.Now()
	slowDone := make(chan time.Duration, 1)
	go func() {
		if _, err := cli.Call("slow", nil); err != nil {
			t.Errorf("stalled call failed: %v", err)
		}
		slowDone <- time.Since(start)
	}()
	var wg sync.WaitGroup
	var fastMax atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.Call("echo", nil); err != nil {
				t.Errorf("neighbour failed: %v", err)
			}
			for {
				d := int64(time.Since(start))
				prev := fastMax.Load()
				if d <= prev || fastMax.CompareAndSwap(prev, d) {
					return
				}
			}
		}()
	}
	wg.Wait()
	slow := <-slowDone
	if slow < stallFor {
		t.Fatalf("stalled call finished in %v, before the %v stall", slow, stallFor)
	}
	if fast := time.Duration(fastMax.Load()); fast >= stallFor {
		t.Fatalf("neighbours took %v — convoyed behind the %v stall", fast, stallFor)
	}
}

// TestCallTimeoutKeepsConnection checks the per-call deadline story:
// a timed-out call abandons its pending entry, the late response is
// dropped by correlation ID, and the same connection keeps serving.
func TestCallTimeoutKeepsConnection(t *testing.T) {
	leaktest.Check(t)
	release := make(chan struct{})
	var parked atomic.Int64
	srv, addr := pipelineServer(t, release, &parked)
	defer srv.Close()
	cli, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Timeout = 50 * time.Millisecond

	_, err = cli.Call("block", nil)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("got %v, want ErrCallTimeout", err)
	}
	before := obsUnknownCorr.Value()
	close(release) // the late response arrives now, for a call nobody waits on
	waitFor(t, func() bool { return obsUnknownCorr.Value() > before })

	out, err := cli.Call("echo", []byte("still alive"))
	if err != nil {
		t.Fatalf("connection unusable after a timeout: %v", err)
	}
	if string(out) != "still alive" {
		t.Fatalf("payload %q", out)
	}
}

// TestCallTracedPerCall is the LastTrace fix: under concurrency every
// call reports its own trace ID, all distinct, each with a server span
// joined to it.
func TestCallTracedPerCall(t *testing.T) {
	leaktest.Check(t)
	srv, addr := pipelineServer(t, nil, nil)
	defer srv.Close()
	cli, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const calls = 16
	traces := make([]obs.TraceID, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, trace, err := cli.CallTraced("echo", []byte{byte(i)})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
			}
			traces[i] = trace
		}(i)
	}
	wg.Wait()
	seen := make(map[obs.TraceID]bool, calls)
	for i, tr := range traces {
		if tr == 0 {
			t.Fatalf("call %d reported zero trace", i)
		}
		if seen[tr] {
			t.Fatalf("trace %s reported by two calls", tr)
		}
		seen[tr] = true
		foundServer := false
		for _, s := range obs.Default.SpansOf(tr) {
			if s.Kind == "server" {
				foundServer = true
			}
		}
		if !foundServer {
			t.Fatalf("trace %s has no server span", tr)
		}
	}
}

// TestPipelineStress64 is the -race stress gate: 64 goroutines hammer
// one client; every response must round-trip its own payload (no
// cross-delivery between correlation IDs).
func TestPipelineStress64(t *testing.T) {
	leaktest.Check(t)
	srv, addr := pipelineServer(t, nil, nil)
	defer srv.Close()
	cli, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const (
		callers = 64
		each    = 40
	)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				want := fmt.Sprintf("g%d-i%d", g, i)
				out, err := cli.Call("echo", []byte(want))
				if err != nil {
					t.Errorf("caller %d call %d: %v", g, i, err)
					return
				}
				if string(out) != want {
					t.Errorf("caller %d call %d: got %q want %q — responses crossed", g, i, out, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCloseDrainsPendingExactlyOnce is the Close bugfix test:
// concurrent Closes racing in-flight calls must drain the pending map
// once (every call gets exactly one typed completion), never
// double-close the quit channel (which would panic), and all Closes
// return the same result.
func TestCloseDrainsPendingExactlyOnce(t *testing.T) {
	leaktest.Check(t)
	release := make(chan struct{})
	var parked atomic.Int64
	srv, addr := pipelineServer(t, release, &parked)
	defer srv.Close()
	defer close(release)
	cli, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}

	const calls = 8
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		go func() {
			_, err := cli.Call("block", nil)
			errs <- err
		}()
	}
	waitFor(t, func() bool { return parked.Load() == calls })

	var wg sync.WaitGroup
	closeErrs := make([]error, 4)
	for i := range closeErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			closeErrs[i] = cli.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range closeErrs {
		if err != nil {
			t.Fatalf("concurrent Close %d: %v", i, err)
		}
	}
	for i := 0; i < calls; i++ {
		if err := <-errs; !errors.Is(err, ErrPeerClosed) {
			t.Fatalf("in-flight call %d after Close: got %v, want ErrPeerClosed", i, err)
		}
	}
	// And calls issued after Close fail fast with the same typed error.
	if _, err := cli.Call("echo", nil); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("post-Close call: got %v, want ErrPeerClosed", err)
	}
}

// TestEnqueueBlockedCallersReleasedOnConnDeath pins the regression
// where callers blocked enqueueing on a full send queue hung forever
// when the connection died: fail() completes every registered call,
// and the enqueue select must honour that completion. No per-call
// Timeout is set on purpose — the timer is armed only after a
// successful enqueue, so it cannot be what frees these callers.
func TestEnqueueBlockedCallersReleasedOnConnDeath(t *testing.T) {
	leaktest.Check(t)
	cliConn, srvConn := net.Pipe()
	c := NewTCPClient(cliConn)

	// More callers than the writer (1 frame in its hands, stalled on
	// the unread pipe) plus the send queue can absorb, so the overflow
	// is parked in the enqueue select.
	const callers = sendQueueDepth + 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Call("stalled", nil)
			errs <- err
		}()
	}

	waitFor(t, func() bool {
		c.mu.Lock()
		registered := len(c.pending)
		c.mu.Unlock()
		return registered == callers && len(c.sendq) == sendQueueDepth
	})

	srvConn.Close() // the connection dies under the stalled writer

	released := make(chan struct{})
	go func() { wg.Wait(); close(released) }()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("callers still blocked after connection death")
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; !errors.Is(err, ErrPeerClosed) {
			t.Fatalf("caller %d: got %v, want ErrPeerClosed", i, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close after failure: %v", err)
	}
}

// TestWriteLoopSkipsAbandonedFrames checks that a call that timed out
// while its frame was still queued behind the writer is never written:
// the server should not spend a MaxInFlight slot computing a response
// the client will drop by correlation ID.
func TestWriteLoopSkipsAbandonedFrames(t *testing.T) {
	leaktest.Check(t)
	cliConn, srvConn := net.Pipe()
	c := NewTCPClient(cliConn)
	defer srvConn.Close()
	defer c.Close()

	// Hand the writer a frame whose call has already been abandoned —
	// the state abandon() leaves behind when the deadline fires with
	// the frame still in the queue.
	dead := &pendingCall{req: &frame{kind: kindRequest, id: 999, corr: 999, method: "dead"}, done: make(chan struct{})}
	dead.abandoned.Store(true)
	c.sendq <- dead

	live := make(chan error, 1)
	go func() {
		_, err := c.Call("live", nil)
		live <- err
	}()

	// The first frame to reach the wire must be the live call's: the
	// abandoned one queued ahead of it was dropped unwritten.
	f, err := readFrame(srvConn, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.method != "live" {
		t.Fatalf("first frame on the wire is %q, want the abandoned %q skipped", f.method, "dead")
	}
	if err := writeFrame(srvConn, &frame{kind: kindResponse, id: f.id, corr: f.corr}); err != nil {
		t.Fatal(err)
	}
	if err := <-live; err != nil {
		t.Fatalf("live call behind a skipped frame failed: %v", err)
	}
}

// mustDial dials or fails the test.
func mustDial(t *testing.T, addr string) *TCPClient {
	t.Helper()
	cli, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	return cli
}

// waitFor polls cond to true within a bounded window.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond) //mits:allow sleepless test poll
	}
}
