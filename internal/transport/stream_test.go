package transport

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"mits/internal/cache"
	"mits/internal/mediastore"
)

// streamStore builds a store whose content spans several default-size
// chunks, so the chunk loop actually loops.
func streamStore(t *testing.T, size int) *mediastore.Store {
	t.Helper()
	s := mediastore.New()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := s.PutContent("store/big.mpg", "MPEG", data, "video", "atm/demo"); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestContentChunkCodecRoundTrip pins the hand-rolled binary layout:
// every field survives encode/decode, with and without keywords.
func TestContentChunkCodecRoundTrip(t *testing.T) {
	for _, c := range []*ContentChunk{
		{Ref: "store/v.mpg", Coding: "MPEG", Index: 0, Offset: 0, Total: 7, Data: []byte("0123456"), Last: true, Keywords: []string{"video", "atm"}},
		{Ref: "store/v.mpg", Coding: "MPEG", Index: 2, Offset: 512, Total: 1024, Data: bytes.Repeat([]byte("x"), 256)},
		{Ref: "r", Coding: "", Index: 0, Offset: 0, Total: 0, Last: true}, // zero-length terminal chunk
	} {
		buf, err := AppendContentChunk(nil, c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeContentChunk(buf)
		if err != nil {
			t.Fatalf("decode %q: %v", c.Ref, err)
		}
		if got.Ref != c.Ref || got.Coding != c.Coding || got.Index != c.Index ||
			got.Offset != c.Offset || got.Total != c.Total || got.Last != c.Last ||
			!bytes.Equal(got.Data, c.Data) || len(got.Keywords) != len(c.Keywords) {
			t.Fatalf("round trip mangled chunk:\n%+v\n%+v", c, got)
		}
	}
}

// TestContentChunkDecodeRejectsMalformed walks the truncation grid and
// the invariant violations a hostile or corrupted peer could send.
func TestContentChunkDecodeRejectsMalformed(t *testing.T) {
	good, err := AppendContentChunk(nil, &ContentChunk{
		Ref: "store/v.mpg", Coding: "MPEG", Offset: 0, Total: 5,
		Data: []byte("01234"), Last: true, Keywords: []string{"k"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeContentChunk(good); err != nil {
		t.Fatalf("control chunk rejected: %v", err)
	}
	for n := 0; n < len(good); n++ {
		if _, err := DecodeContentChunk(good[:n]); err == nil {
			t.Fatalf("truncated chunk of %d/%d bytes decoded", n, len(good))
		}
	}
	// Data running past Total.
	bad, _ := AppendContentChunk(nil, &ContentChunk{Ref: "r", Total: 10, Offset: 8, Data: []byte("abc"), Last: false})
	if _, err := DecodeContentChunk(bad); err == nil {
		t.Fatal("chunk overrunning its total decoded")
	}
	// Last flag inconsistent with offsets.
	bad2, _ := AppendContentChunk(nil, &ContentChunk{Ref: "r", Total: 10, Offset: 0, Data: []byte("abc"), Last: true})
	if _, err := DecodeContentChunk(bad2); err == nil {
		t.Fatal("mis-flagged terminal chunk decoded")
	}
}

// TestGetContentStreamAssembles runs the real chunk loop over a
// loopback server: a 3-chunk object arrives in order, the sink sees
// sequential fragments, and the retention contract holds — a nil sink
// assembles the record, a pure consumer gets metadata only.
func TestGetContentStreamAssembles(t *testing.T) {
	const size = 2*DefaultStreamChunkBytes + 100 // 3 chunks, short tail
	store := streamStore(t, size)
	mux := NewMux()
	RegisterStore(mux, store)
	db := DBClient{C: Loopback{H: mux}}
	want, err := store.GetContent("store/big.mpg")
	if err != nil {
		t.Fatal(err)
	}

	var seen []int
	var got []byte
	rec, err := db.GetContentStream("store/big.mpg", func(p []byte) error {
		seen = append(seen, len(p))
		got = append(got, p...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Data) {
		t.Fatal("streamed bytes differ from the stored object")
	}
	if rec.Data != nil {
		t.Fatalf("sink-only stream retained %d bytes, want none", len(rec.Data))
	}
	if rec.Coding != "MPEG" || len(rec.Keywords) != 2 {
		t.Fatalf("stream dropped metadata: coding=%q keywords=%v", rec.Coding, rec.Keywords)
	}
	if len(seen) != 3 || seen[0] != DefaultStreamChunkBytes || seen[2] != 100 {
		t.Fatalf("chunk sizes %v, want [%d %d 100]", seen, DefaultStreamChunkBytes, DefaultStreamChunkBytes)
	}

	assembled, err := db.GetContentStream("store/big.mpg", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(assembled.Data, want.Data) {
		t.Fatal("nil-sink stream did not assemble the object")
	}
}

// TestGetContentStreamCacheAssembleThenAdmit: the first stream fills
// the cache with the whole object (never a partial), the second is
// served locally — zero upstream chunks — and still replays
// chunk-sized views to its sink. GetContent shares the same entry.
func TestGetContentStreamCacheAssembleThenAdmit(t *testing.T) {
	const size = DefaultStreamChunkBytes + 50
	store := streamStore(t, size)
	mux := NewMux()
	RegisterStore(mux, store)
	var upstream atomic.Int64
	counted := HandlerFunc(func(method string, payload []byte) ([]byte, error) {
		if method == MethodGetContentStream {
			upstream.Add(1)
		}
		return mux.Handle(method, payload)
	})
	db := DBClient{C: Loopback{H: counted}}.WithContentCache(cache.New("t-stream-db", 1<<22))

	first, err := db.GetContentStream("store/big.mpg", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := upstream.Load(); n != 2 {
		t.Fatalf("first stream issued %d chunk calls, want 2", n)
	}

	var replayed []int
	second, err := db.GetContentStream("store/big.mpg", func(p []byte) error {
		replayed = append(replayed, len(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := upstream.Load(); n != 2 {
		t.Fatalf("cache hit went upstream (%d chunk calls total)", n)
	}
	if len(replayed) != 2 || replayed[0] != DefaultStreamChunkBytes || replayed[1] != 50 {
		t.Fatalf("hit replayed chunk sizes %v", replayed)
	}
	if &first.Data[0] != &second.Data[0] {
		t.Fatal("cache hit did not share the assembled record")
	}
	viaGet, err := db.GetContent("store/big.mpg")
	if err != nil {
		t.Fatal(err)
	}
	if &viaGet.Data[0] != &first.Data[0] {
		t.Fatal("GetContent missed the stream-admitted cache entry")
	}
}

// TestGetContentStreamChecksInvariants: a server answering with the
// wrong offset (a republish race, a buggy proxy) is caught by the
// client's sequence checks, not silently assembled into garbage.
func TestGetContentStreamChecksInvariants(t *testing.T) {
	store := streamStore(t, 3*DefaultStreamChunkBytes)
	mux := NewMux()
	RegisterStore(mux, store)
	evil := HandlerFunc(func(method string, payload []byte) ([]byte, error) {
		out, err := mux.Handle(method, payload)
		if err != nil || method != MethodGetContentStream {
			return out, err
		}
		ck, derr := DecodeContentChunk(out)
		if derr != nil {
			return nil, derr
		}
		if ck.Index == 1 { // corrupt the middle chunk's offset
			ck.Offset += 7
			ck.Index = 2
			return AppendContentChunk(nil, ck)
		}
		return out, nil
	})
	db := DBClient{C: Loopback{H: evil}}
	if _, err := db.GetContentStream("store/big.mpg", nil); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("mis-sequenced stream returned %v, want ErrBadChunk", err)
	}
}

// TestGetContentStreamNotFound keeps error semantics aligned with
// GetContent: a dangling ref fails with the remote error, and a
// failed stream is not admitted to the cache.
func TestGetContentStreamNotFound(t *testing.T) {
	store := streamStore(t, 10)
	mux := NewMux()
	RegisterStore(mux, store)
	db := DBClient{C: Loopback{H: mux}}.WithContentCache(cache.New("t-stream-miss", 1<<20))
	if _, err := db.GetContentStream("store/nope", nil); err == nil {
		t.Fatal("stream of a dangling ref succeeded")
	}
	// The ref must stay fetchable once published (no cached error).
	if err := store.PutContent("store/nope", "MPEG", []byte("now-here")); err != nil {
		t.Fatal(err)
	}
	rec, err := db.GetContentStream("store/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Data) != "now-here" {
		t.Fatalf("post-publish stream returned %q", rec.Data)
	}
}
