package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mits/internal/obs"
)

// Process-wide transport counters, cached at init so the per-frame
// cost is one atomic add (the map lookup happens once).
var (
	obsBytesTx = obs.GetCounter("transport_bytes_tx_total")
	obsBytesRx = obs.GetCounter("transport_bytes_rx_total")
	// obsUnknownCorr counts responses whose correlation ID matched no
	// pending call — late arrivals for calls that already timed out, or
	// a confused peer. Nonzero under deadline pressure is normal;
	// growth without timeouts is a peer bug.
	obsUnknownCorr = obs.GetCounter("transport_client_unknown_corr_total")
)

// writeFrame sends one length-prefixed frame. The header and body are
// encoded into a single pooled buffer, so a frame costs one Write call
// and no per-RPC allocation.
func writeFrame(w io.Writer, f *frame) error {
	size := f.wireSize()
	if size > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", size)
	}
	buf := getBuf(4 + size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(size))
	buf = f.appendTo(buf)
	_, err := w.Write(buf)
	putBuf(buf)
	if err == nil {
		obsBytesTx.Add(int64(4 + size))
	}
	return err
}

// readChunk is the initial/step allocation for frame bodies: large
// enough that ordinary frames take one allocation, small enough that a
// hostile header can't reserve much before any payload arrives.
const readChunk = 64 << 10

// readFrame receives one length-prefixed frame. With pooled set, the
// body buffer comes from (and, on decode failure, returns to) the
// frame pool and the caller must releaseFrame the result when the
// frame's payload is no longer referenced; without it the buffer is a
// plain allocation owned by whoever ends up holding the payload.
func readFrame(r io.Reader, pooled bool) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: incoming frame of %d bytes exceeds limit", n)
	}
	body, err := readBody(r, int(n), pooled)
	if err != nil {
		return nil, err
	}
	obsBytesRx.Add(int64(4 + len(body)))
	f, err := unmarshalFrame(body)
	if err != nil {
		if pooled {
			putBuf(body)
		}
		return nil, err
	}
	if pooled {
		f.buf = body
	}
	return f, nil
}

// releaseFrame returns a pooled frame's backing buffer for reuse. The
// frame's payload (and anything aliasing it) must not be touched
// afterwards. No-op for frames read without pooling.
func releaseFrame(f *frame) {
	if f.buf != nil {
		putBuf(f.buf)
		f.buf = nil
		f.payload = nil
	}
}

// frameBuf allocates an n-byte body buffer from the pool or the heap.
func frameBuf(n int, pooled bool) []byte {
	if pooled {
		return getBuf(n)[:n]
	}
	return make([]byte, n)
}

// readBody reads exactly n bytes, growing the buffer as data actually
// arrives: a peer advertising a huge-but-legal length gets at most one
// readChunk of memory up front, and capacity only doubles after the
// previously granted bytes have been delivered. Growth intermediates
// (and the result, on error) go back to the pool when pooled.
func readBody(r io.Reader, n int, pooled bool) ([]byte, error) {
	if n <= readChunk {
		body := frameBuf(n, pooled)
		if _, err := io.ReadFull(r, body); err != nil {
			if pooled {
				putBuf(body)
			}
			return nil, err
		}
		return body, nil
	}
	buf := frameBuf(readChunk, pooled)
	read := 0
	for read < n {
		want := n - read
		if want > readChunk {
			want = readChunk
		}
		if read+want > len(buf) {
			grown := 2 * len(buf)
			if grown > n {
				grown = n
			}
			nb := frameBuf(grown, pooled)
			copy(nb, buf[:read])
			if pooled {
				putBuf(buf)
			}
			buf = nb
		}
		if _, err := io.ReadFull(r, buf[read:read+want]); err != nil {
			if pooled {
				putBuf(buf)
			}
			return nil, err
		}
		read += want
	}
	return buf[:n], nil
}

// TCPServer serves a Handler over TCP — the content server process of
// Fig 3.5, "distributed applications ... consist of a number of
// independent programs running on remote hosts". Requests on one
// connection are handled concurrently (bounded by MaxInFlight) and
// responses are matched to requests by correlation ID, so they may
// complete out of order behind a pipelined client.
type TCPServer struct {
	handler Handler

	// ctxHandler is handler's CtxHandler view, probed once at
	// construction; nil for trace-blind handlers.
	ctxHandler CtxHandler

	// ConnTimeout, when set, bounds each frame read and write on every
	// connection (a per-operation deadline): a stalled or vanished
	// client cannot pin a serving goroutine forever. It also acts as
	// an idle timeout between requests. Set before Listen/Serve.
	ConnTimeout time.Duration

	// MaxInFlight bounds how many requests one connection may have in
	// handlers simultaneously; beyond it the connection's read loop
	// stops admitting work (natural backpressure on the pipelining
	// client). 0 means DefaultMaxInFlight. Set before Listen/Serve.
	MaxInFlight int

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	closeErr error // first Close's listener error, returned by later calls
	wg       sync.WaitGroup
}

// DefaultMaxInFlight is the per-connection concurrent-request bound
// when TCPServer.MaxInFlight is unset: enough to keep every core of a
// content server busy under one navigator's pipeline, small enough
// that a misbehaving client cannot fork-bomb the server.
const DefaultMaxInFlight = 32

// NewTCPServer wraps a handler. When h also implements CtxHandler, the
// server threads each request's trace context through HandleCtx so
// nested RPCs stay in the caller's trace.
func NewTCPServer(h Handler) *TCPServer {
	ch, _ := h.(CtxHandler)
	return &TCPServer{handler: h, ctxHandler: ch, conns: make(map[net.Conn]bool)}
}

// Listen starts accepting on addr ("127.0.0.1:0" for tests) and returns
// the bound address. Serving proceeds on background goroutines until
// Close.
func (s *TCPServer) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if err := s.Serve(l); err != nil {
		l.Close()
		return "", err
	}
	return l.Addr().String(), nil
}

// Serve starts accepting on an existing listener — for example one
// wrapped by a fault injector — and returns immediately; serving
// proceeds on background goroutines until Close.
func (s *TCPServer) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("transport: server already closed")
	}
	s.listener = l
	// Register the accept loop before releasing the lock: a concurrent
	// Close must not run wg.Wait between our Unlock and a late wg.Add,
	// or it would return with the accept loop still alive.
	s.wg.Add(1)
	s.mu.Unlock()
	go s.acceptLoop(l)
	return nil
}

// Accept-loop backoff bounds for temporary errors (fd exhaustion, a
// misbehaving NIC, an injected fault): back off instead of spinning or
// dying, and reset once an accept succeeds.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// isTemporary reports whether an accept error is worth retrying. The
// net.Error.Temporary contract is deprecated for general errors but
// remains the accept-loop idiom (net/http does the same).
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary() //nolint:staticcheck
}

func (s *TCPServer) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	backoff := acceptBackoffMin
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) || !isTemporary(err) {
				return // listener closed or permanently broken
			}
			obs.GetCounter("transport_accept_retries_total").Inc()
			time.Sleep(backoff) //mits:allow sleepless accept backoff against a transiently failing listener
			backoff *= 2
			if backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// serveConn is one connection's read loop: it decodes requests in
// arrival order and hands each to a bounded worker goroutine, so a
// slow query (a big GetContent) does not convoy the fast ones queued
// behind it on the same connection. Completed responses funnel through
// a per-connection flush-combining writer that coalesces everything
// queued at each flush into one vectored write.
func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	maxInFlight := s.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	rw := newRespWriter(conn, s.ConnTimeout)
	var handlers sync.WaitGroup
	defer func() {
		handlers.Wait() // all workers done (and their responses flushed) ...
		rw.close()      // ... then the writer's scratch goes back to the pool
	}()
	sem := make(chan struct{}, maxInFlight)
	// Frame reads go through one buffered reader, so a burst of small
	// pipelined requests costs ~1 read syscall, not 2 per frame
	// (header + body). Deadlines still arm on the conn itself.
	br := bufio.NewReaderSize(conn, batchScratchSize)
	for {
		if s.ConnTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.ConnTimeout))
		}
		req, err := readFrame(br, true)
		if err != nil {
			return
		}
		if req.kind != kindRequest {
			releaseFrame(req)
			return
		}
		sem <- struct{}{} // backpressure: stop reading at MaxInFlight
		handlers.Add(1)
		go func(req *frame) {
			defer handlers.Done()
			defer func() { <-sem }()
			s.handleRequest(rw, req)
		}(req)
	}
}

// respEntry pairs a completed response with the request frame whose
// pooled buffer it may alias; the writer recycles the request only
// after the response bytes are encoded.
type respEntry struct {
	resp *frame
	req  *frame
}

// respWriter is a connection's flush-combining response writer. A
// handler finishing alone writes its response directly (a batch of
// one, same syscall count as the old mutex-serialized path, no
// goroutine handoff); handlers finishing while another holds the wire
// just queue theirs and return — the active flusher keeps draining the
// queue into vectored writes until it is empty. Under load the batch
// width approaches the number of concurrently completing handlers
// without a dedicated writer goroutine's wakeup latency on the
// critical path.
type respWriter struct {
	conn    net.Conn
	timeout time.Duration

	mu     sync.Mutex
	w      *batchWriter
	queue  []respEntry // responses awaiting the active flusher
	spare  []respEntry // recycled queue backing to keep enqueue alloc-free
	active bool        // a flusher is draining the queue
	dead   bool        // write failed or conn torn down; discard from now on
}

func newRespWriter(conn net.Conn, timeout time.Duration) *respWriter {
	return &respWriter{conn: conn, timeout: timeout, w: newBatchWriter(conn)}
}

// enqueue hands one completed response to the writer. It never blocks
// on the network on behalf of another handler's response: the caller
// either becomes the flusher (and writes, possibly for others too) or
// appends and returns.
func (rw *respWriter) enqueue(e respEntry) {
	rw.mu.Lock()
	if rw.dead {
		rw.mu.Unlock()
		releaseFrame(e.req)
		return
	}
	rw.queue = append(rw.queue, e)
	if rw.active {
		rw.mu.Unlock() // the current flusher will take it
		return
	}
	rw.active = true
	for len(rw.queue) > 0 && !rw.dead {
		batch := rw.queue
		rw.queue = rw.spare[:0]
		rw.mu.Unlock()

		if rw.timeout > 0 {
			_ = rw.conn.SetWriteDeadline(time.Now().Add(rw.timeout))
		}
		var werr error
		for _, be := range batch {
			if werr == nil {
				werr = rw.w.add(be.resp)
			}
			// add copied the response out (or the write is already
			// failed); the request buffer it may alias is recyclable.
			releaseFrame(be.req)
		}
		if werr == nil {
			werr = rw.w.flush()
		}

		rw.mu.Lock()
		rw.spare = batch[:0]
		if werr != nil && !rw.dead {
			rw.dead = true
			// The read loop cannot observe a worker's write failure;
			// close the conn so it stops admitting requests nobody can
			// answer.
			rw.conn.Close()
		}
	}
	if rw.dead {
		rw.discardLocked()
	}
	rw.active = false
	rw.mu.Unlock()
}

// discardLocked releases everything still queued. Caller holds mu.
func (rw *respWriter) discardLocked() {
	for _, e := range rw.queue {
		releaseFrame(e.req)
	}
	rw.queue = rw.queue[:0]
}

// close marks the writer dead and recycles its scratch. Called after
// every handler has returned, so no flusher is active and nothing can
// enqueue afterwards.
func (rw *respWriter) close() {
	rw.mu.Lock()
	rw.dead = true
	rw.discardLocked()
	if rw.w != nil {
		rw.w.release()
		rw.w = nil
	}
	rw.mu.Unlock()
}

// handleRequest runs the handler for one decoded request and queues
// its response for the connection's writer, echoing the correlation ID
// (and trace context) so the multiplexed client can match it however
// late it completes.
func (s *TCPServer) handleRequest(rw *respWriter, req *frame) {
	// Server span: joins the trace the client stamped into the frame
	// header (nil span when the request is untraced).
	var sp *obs.Span
	if req.trace != 0 {
		sp = obs.ContinueSpan(req.method, "server", obs.TraceID(req.trace), obs.SpanID(req.span))
	}
	start := time.Now()
	var payload []byte
	var herr error
	if s.ctxHandler != nil {
		// sp.Context() parents nested work under the server span; it is
		// the zero context (untraced) when sp is nil.
		payload, herr = s.ctxHandler.HandleCtx(sp.Context(), req.method, req.payload)
	} else {
		payload, herr = s.handler.Handle(req.method, req.payload)
	}
	obs.Observe("transport_server_latency_ns", time.Since(start), "method", req.method)
	obs.GetCounter("transport_server_rpcs_total", "method", req.method).Inc()
	if herr != nil {
		obs.GetCounter("transport_server_errors_total", "method", req.method).Inc()
	}
	sp.End(herr)
	resp := &frame{kind: kindResponse, id: req.id, corr: req.corr, trace: req.trace, span: req.span, payload: payload}
	if herr != nil {
		resp.errText = herr.Error()
		resp.payload = nil
	}
	// The response may alias the request payload (echo-style handlers);
	// the writer recycles the request buffer only after encoding the
	// response, so the pair travels together.
	rw.enqueue(respEntry{resp: resp, req: req})
}

// Close stops the listener and all connections, waiting for serving
// goroutines to drain. Close is idempotent and safe to call
// concurrently; every call waits for the drain and returns the first
// call's listener error.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		if s.listener != nil {
			s.closeErr = s.listener.Close()
		}
		for c := range s.conns {
			c.Close() // unblocks serveConn's read; its own close error is the signal
		}
	}
	err := s.closeErr
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPClient is the client module embedded in the navigator (§5.3.2),
// upgraded from the thesis's one-call-at-a-time Client() routine into a
// multiplexed, pipelined client: any number of goroutines may Call
// concurrently over the one connection, each call carrying a
// correlation ID that a writer goroutine serializes onto the wire and
// a reader goroutine matches back out of order. The pending-call map
// is the rendezvous; per-call timers (not connection deadlines) bound
// each call, so one slow response cannot fail its neighbours.
type TCPClient struct {
	// Timeout, when set, is the per-call deadline: a call that has not
	// completed within it fails with ErrCallTimeout instead of waiting
	// on a slow or dead peer forever. A timed-out call abandons its
	// pending entry; the connection stays usable, a frame still queued
	// behind the writer is dropped unwritten, and a late response is
	// discarded by correlation ID. Set before the first Call.
	Timeout time.Duration

	conn  net.Conn
	sendq chan *pendingCall
	quit  chan struct{} // closed exactly once by Close

	mu       sync.Mutex
	pending  map[uint64]*pendingCall
	nextCorr uint64
	closed   bool
	dead     error // first terminal transport failure; nil while usable

	connOnce sync.Once
	connErr  error

	lastTrace atomic.Uint64

	wg sync.WaitGroup // writer + reader loops
}

// pendingCall is one in-flight request parked in the pending map:
// completion (response, connection failure, or close-drain) sets resp
// or err and closes done exactly once.
type pendingCall struct {
	req    *frame
	method string
	trace  obs.TraceID
	done   chan struct{}
	resp   *frame
	err    error

	// abandoned is set when the call times out while its frame may
	// still be queued behind the writer; the writer drops flagged
	// frames instead of spending wire bytes and a server MaxInFlight
	// slot on a response nobody will take.
	abandoned atomic.Bool
}

// sendQueueDepth bounds how many encoded-but-unwritten requests can
// queue ahead of the writer goroutine before callers block.
const sendQueueDepth = 64

// errClientClosed is the terminal error of a locally-closed client; it
// wraps ErrPeerClosed so call sites need only one errors.Is check for
// "the connection is gone, whoever's fault it was".
var errClientClosed = fmt.Errorf("%w (client closed)", ErrPeerClosed)

// DialTimeout bounds DialTCP's TCP connect. An unbounded net.Dial
// blocks in SYN retries for the OS default (minutes) when the peer
// address black-holes; no navigator start-up should wait that long to
// learn the content server is unreachable. A var, not a const, so
// chaos harnesses can shorten it.
var DialTimeout = 10 * time.Second

// DialTCP connects to a server, giving up after DialTimeout.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, err
	}
	return NewTCPClient(conn), nil
}

// NewTCPClient wraps an established connection — for example one
// produced by a fault injector — in a client, starting its writer and
// reader goroutines. Close stops them.
func NewTCPClient(conn net.Conn) *TCPClient {
	c := &TCPClient{
		conn:    conn,
		sendq:   make(chan *pendingCall, sendQueueDepth),
		quit:    make(chan struct{}),
		pending: make(map[uint64]*pendingCall),
	}
	c.wg.Add(2)
	go c.writeLoop()
	go c.readLoop()
	return c
}

// Call implements Client: issue a request, wait for its response.
// Safe for concurrent use; calls pipeline onto the one connection.
// The returned payload is caller-owned: its backing buffer is simply
// left to the GC (never recycled), so holding it forever is safe.
func (c *TCPClient) Call(method string, payload []byte) ([]byte, error) {
	out, _, err := c.CallTraced(method, payload)
	return out, err
}

// CallTraced is Call returning also the trace ID the call travelled
// under — the per-call replacement for LastTrace that stays meaningful
// when many goroutines share the client. Every call opens a fresh
// trace whose IDs ride the frame header, so the server's span lands in
// the same trace as the client's.
func (c *TCPClient) CallTraced(method string, payload []byte) ([]byte, obs.TraceID, error) {
	out, _, trace, err := c.callSpan(obs.StartSpan(method, "client"), method, payload)
	return out, trace, err
}

// CallInTrace implements TraceCaller: the client span continues the
// trace in sc (parented under sc.Parent) instead of opening a fresh
// one, so a server handling a request can fan out to another site
// within the same trace. A zero sc degenerates to CallTraced.
func (c *TCPClient) CallInTrace(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	out, _, _, err := c.callSpan(obs.Default.ContinueSpan(method, "client", sc.Trace, sc.Parent), method, payload)
	return out, err
}

// CallPooled is Call for the allocation-free decode path: the returned
// payload is backed by a pooled frame buffer, and release (when
// non-nil) recycles it. The caller must not touch the payload — or
// anything aliasing it — after calling release, and must not call
// release twice; callers that decode-and-drop (gob into a typed
// struct) release immediately after decoding. Dropping release instead
// of calling it is always safe: the buffer just falls to the GC.
func (c *TCPClient) CallPooled(method string, payload []byte) ([]byte, func(), error) {
	out, resp, _, err := c.callSpan(obs.StartSpan(method, "client"), method, payload)
	return out, poolRelease(resp), err
}

// CallInTracePooled implements PooledTraceCaller: CallPooled
// continuing the trace in sc, with CallInTrace's zero-sc behaviour.
func (c *TCPClient) CallInTracePooled(sc obs.SpanContext, method string, payload []byte) ([]byte, func(), error) {
	out, resp, _, err := c.callSpan(obs.Default.ContinueSpan(method, "client", sc.Trace, sc.Parent), method, payload)
	return out, poolRelease(resp), err
}

// poolRelease adapts a pooled response frame into the release callback
// of the pooled call API; nil when there is nothing to recycle.
func poolRelease(f *frame) func() {
	if f == nil || f.buf == nil {
		return nil
	}
	return func() { releaseFrame(f) }
}

// callSpan issues the call under an already-opened client span and
// settles the span and the per-method metrics. The returned frame is
// the pooled response (nil on error or for an empty pre-v3 response);
// pooled callers adapt it via poolRelease, plain callers drop it.
func (c *TCPClient) callSpan(sp *obs.Span, method string, payload []byte) ([]byte, *frame, obs.TraceID, error) {
	c.lastTrace.Store(uint64(sp.Trace))
	payload, resp, err := c.issue(sp, method, payload)
	sp.End(err)
	obs.Observe("transport_client_latency_ns", sp.Dur, "method", method)
	obs.GetCounter("transport_client_rpcs_total", "method", method).Inc()
	if err != nil {
		obs.GetCounter("transport_client_errors_total", "method", method).Inc()
	}
	return payload, resp, sp.Trace, err
}

// Err reports the client's terminal state: nil while the connection is
// usable, otherwise the first connection-fatal error (or the closed
// error after Close). Connection pools use it to route new calls away
// from a dead stripe without issuing a doomed request.
func (c *TCPClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errClientClosed
	}
	return c.dead
}

// issue registers the call in the pending map, hands its frame to the
// writer goroutine, and waits for completion or the per-call deadline.
// Every failure it returns is typed: RemoteError for server-side
// failures, otherwise a CallError wrapping ErrCallTimeout /
// ErrPeerClosed / ErrBadFrame — raw io.EOF or net timeouts never leak.
// On success the pooled response frame rides along for callers that
// recycle its buffer.
func (c *TCPClient) issue(sp *obs.Span, method string, payload []byte) ([]byte, *frame, error) {
	pc := &pendingCall{method: method, trace: sp.Trace, done: make(chan struct{})}
	corr, err := c.register(pc, method, payload, sp)
	if err != nil {
		return nil, nil, &CallError{Method: method, Err: err}
	}
	select {
	case c.sendq <- pc:
	case <-pc.done:
		// The connection died while the send queue was full: fail()
		// completes every registered call — including this one, parked
		// here before its frame ever reached the writer. Without this
		// case the caller would hang forever (the per-call timer is
		// armed only after a successful enqueue). Fall through to take
		// the failure from the completion wait.
	case <-c.quit:
		// Close raced the enqueue; its drain fails us (we are already
		// registered), so fall through to the completion wait.
	}
	var deadline <-chan time.Time
	if c.Timeout > 0 { //mits:nolock Timeout is set before the first Call and read-only after
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case <-pc.done:
	case <-deadline:
		if c.abandon(corr) {
			return nil, nil, &CallError{Method: method, Err: fmt.Errorf("%w (after %v)", ErrCallTimeout, c.Timeout)}
		}
		<-pc.done // completion won the race; take its result
	}
	if pc.err != nil {
		var remote *RemoteError
		if errors.As(pc.err, &remote) {
			return nil, nil, pc.err
		}
		return nil, nil, &CallError{Method: method, Err: pc.err}
	}
	return pc.resp.payload, pc.resp, nil
}

// register allocates the call's correlation ID and parks it in the
// pending map, failing fast on a closed or dead client.
func (c *TCPClient) register(pc *pendingCall, method string, payload []byte, sp *obs.Span) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errClientClosed
	}
	if c.dead != nil {
		return 0, c.dead
	}
	c.nextCorr++
	corr := c.nextCorr
	pc.req = &frame{
		kind: kindRequest, id: corr, corr: corr, method: method, payload: payload,
		trace: uint64(sp.Trace), span: uint64(sp.ID),
	}
	c.pending[corr] = pc
	return corr, nil
}

// abandon removes a timed-out call from the pending map, reporting
// whether the entry was still there (false means a completion won the
// race and the caller must take its result instead).
func (c *TCPClient) abandon(corr uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	pc, ok := c.pending[corr]
	if !ok {
		return false
	}
	pc.abandoned.Store(true) // the writer skips the frame if it is still queued
	delete(c.pending, corr)
	return true
}

// take claims the pending call for a correlation ID, or nil when no
// call is waiting (timed out, or never ours).
func (c *TCPClient) take(corr uint64) *pendingCall {
	c.mu.Lock()
	defer c.mu.Unlock()
	pc := c.pending[corr]
	delete(c.pending, corr)
	return pc
}

// writeLoop is the writer goroutine: it serializes request frames onto
// the connection in enqueue order, coalescing everything queued at
// each wakeup into one vectored write — a pipelined burst of N calls
// costs ~1 write syscall, not N. The write deadline is stamped once
// per batch (and not at all when Timeout is zero), not per frame: the
// time.Now + setsockopt pair was itself a measurable per-frame cost.
// A write failure is connection-fatal (framing state unknown), failing
// every pending call.
func (c *TCPClient) writeLoop() {
	defer c.wg.Done()
	w := newBatchWriter(c.conn)
	defer w.release()
	for {
		select {
		case pc := <-c.sendq:
			if c.Timeout > 0 { //mits:nolock Timeout is set before the first Call and read-only after
				_ = c.conn.SetWriteDeadline(time.Now().Add(c.Timeout))
			}
		drain:
			for {
				if !pc.abandoned.Load() { // timed out while queued; its response would be dropped anyway
					if err := w.add(pc.req); err != nil {
						c.fail(classifyIOErr(err))
						return
					}
				}
				select {
				case pc = <-c.sendq:
				default:
					break drain
				}
			}
			if err := w.flush(); err != nil {
				c.fail(classifyIOErr(err))
				return
			}
		case <-c.quit:
			return
		}
	}
}

// readLoop is the reader-dispatch goroutine: it decodes response
// frames as they arrive — in whatever order the server completed them
// — and hands each to its pending call by correlation ID. Response
// bodies come from the frame pool: a caller using the pooled API
// recycles the buffer when done decoding, a plain Call lets it fall to
// the GC (putBuf is never called on it, so the pool stays coherent
// either way). Frames nobody is waiting for are recycled on the spot.
// A read or decode failure is connection-fatal.
func (c *TCPClient) readLoop() {
	defer c.wg.Done()
	// One buffered reader amortizes the 2 read syscalls per frame
	// (header + body) across a coalesced server flush.
	br := bufio.NewReaderSize(c.conn, batchScratchSize)
	for {
		select {
		case <-c.quit:
			return
		default:
		}
		resp, err := readFrame(br, true)
		if err != nil {
			c.fail(classifyIOErr(err))
			return
		}
		if resp.kind != kindResponse {
			kind := resp.kind
			releaseFrame(resp)
			c.fail(fmt.Errorf("%w: unexpected frame kind %d", ErrBadFrame, kind))
			return
		}
		corr := resp.corr
		if corr == 0 {
			corr = resp.id // a pre-v3 peer echoes only the frame id
		}
		pc := c.take(corr)
		if pc == nil {
			// Nobody is waiting: a call that timed out earlier, or a
			// confused peer. Correlation IDs make late responses
			// harmless — count, recycle, drop, keep the connection.
			obsUnknownCorr.Inc()
			releaseFrame(resp)
			continue
		}
		if resp.errText != "" {
			pc.err = &RemoteError{Method: pc.method, Text: resp.errText}
			releaseFrame(resp) // the error text is already copied out
		} else {
			pc.resp = resp
		}
		close(pc.done)
	}
}

// fail marks the client dead with its first terminal error, closes the
// connection (waking whichever loop is still blocked on it), and fails
// every pending call. The pending map is drained exactly once per
// batch: completion happens only via map removal, so fail, take and
// abandon can never double-complete a call.
func (c *TCPClient) fail(cause error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = cause
	}
	cause = c.dead
	drained := c.pending
	c.pending = make(map[uint64]*pendingCall)
	c.mu.Unlock()
	c.closeConn() //mits:allow errdrop the conn is already failing; Close reports the close error
	for _, pc := range drained {
		pc.err = cause
		close(pc.done)
	}
}

// closeConn closes the connection exactly once, remembering the first
// close's error for Close to return.
func (c *TCPClient) closeConn() error {
	c.connOnce.Do(func() {
		c.connErr = c.conn.Close() //mits:nolock write is published by connOnce.Do
	})
	return c.connErr //mits:nolock connOnce.Do orders the write before this read
}

// LastTrace reports the trace ID of the most recently issued Call —
// the handle a navigator prints so an operator can find the same
// request in the server's span exposition. With concurrent callers
// this is inherently last-writer-wins; use CallTraced to get the trace
// ID of a specific call.
func (c *TCPClient) LastTrace() obs.TraceID {
	return obs.TraceID(c.lastTrace.Load())
}

// Close implements Client. It is idempotent and safe to call
// concurrently (and while calls are in flight): the first call closes
// the quit channel and drains the pending-call map exactly once,
// failing every in-flight call with a typed error; every call returns
// the first connection close's error after the writer and reader
// goroutines have drained.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	first := !c.closed
	c.closed = true
	c.mu.Unlock()
	if first {
		close(c.quit)
		c.fail(errClientClosed)
	}
	err := c.closeConn()
	c.wg.Wait()
	return err
}

// classifyIOErr maps raw I/O failures onto the typed transport errors.
func classifyIOErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrBadFrame):
		return err // already typed
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe), errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE):
		return fmt.Errorf("%w (%v)", ErrPeerClosed, err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w (%v)", ErrCallTimeout, err)
	}
	return err
}

// RemoteError is a server-side failure surfaced to the client.
type RemoteError struct {
	Method string
	Text   string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Text)
}
