package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"mits/internal/obs"
)

// Process-wide transport byte counters, cached at init so the
// per-frame cost is one atomic add (the map lookup happens once).
var (
	obsBytesTx = obs.GetCounter("transport_bytes_tx_total")
	obsBytesRx = obs.GetCounter("transport_bytes_rx_total")
)

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, f *frame) error {
	body := f.marshal()
	if len(body) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	if err == nil {
		obsBytesTx.Add(int64(4 + len(body)))
	}
	return err
}

// readChunk is the initial/step allocation for frame bodies: large
// enough that ordinary frames take one allocation, small enough that a
// hostile header can't reserve much before any payload arrives.
const readChunk = 64 << 10

// readFrame receives one length-prefixed frame.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: incoming frame of %d bytes exceeds limit", n)
	}
	body, err := readBody(r, int(n))
	if err != nil {
		return nil, err
	}
	obsBytesRx.Add(int64(4 + len(body)))
	return unmarshalFrame(body)
}

// readBody reads exactly n bytes, growing the buffer as data actually
// arrives: a peer advertising a huge-but-legal length gets at most one
// readChunk of memory up front, and capacity only doubles after the
// previously granted bytes have been delivered.
func readBody(r io.Reader, n int) ([]byte, error) {
	if n <= readChunk {
		body := make([]byte, n)
		_, err := io.ReadFull(r, body)
		return body, err
	}
	buf := make([]byte, readChunk)
	read := 0
	for read < n {
		want := n - read
		if want > readChunk {
			want = readChunk
		}
		if read+want > len(buf) {
			grown := 2 * len(buf)
			if grown > n {
				grown = n
			}
			nb := make([]byte, grown)
			copy(nb, buf[:read])
			buf = nb
		}
		if _, err := io.ReadFull(r, buf[read:read+want]); err != nil {
			return nil, err
		}
		read += want
	}
	return buf[:n], nil
}

// TCPServer serves a Handler over TCP — the content server process of
// Fig 3.5, "distributed applications ... consist of a number of
// independent programs running on remote hosts".
type TCPServer struct {
	handler Handler

	// ConnTimeout, when set, bounds each frame read and write on every
	// connection (a per-operation deadline): a stalled or vanished
	// client cannot pin a serving goroutine forever. It also acts as
	// an idle timeout between requests. Set before Listen/Serve.
	ConnTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	closeErr error // first Close's listener error, returned by later calls
	wg       sync.WaitGroup
}

// NewTCPServer wraps a handler.
func NewTCPServer(h Handler) *TCPServer {
	return &TCPServer{handler: h, conns: make(map[net.Conn]bool)}
}

// Listen starts accepting on addr ("127.0.0.1:0" for tests) and returns
// the bound address. Serving proceeds on background goroutines until
// Close.
func (s *TCPServer) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if err := s.Serve(l); err != nil {
		l.Close()
		return "", err
	}
	return l.Addr().String(), nil
}

// Serve starts accepting on an existing listener — for example one
// wrapped by a fault injector — and returns immediately; serving
// proceeds on background goroutines until Close.
func (s *TCPServer) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("transport: server already closed")
	}
	s.listener = l
	// Register the accept loop before releasing the lock: a concurrent
	// Close must not run wg.Wait between our Unlock and a late wg.Add,
	// or it would return with the accept loop still alive.
	s.wg.Add(1)
	s.mu.Unlock()
	go s.acceptLoop(l)
	return nil
}

// Accept-loop backoff bounds for temporary errors (fd exhaustion, a
// misbehaving NIC, an injected fault): back off instead of spinning or
// dying, and reset once an accept succeeds.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// isTemporary reports whether an accept error is worth retrying. The
// net.Error.Temporary contract is deprecated for general errors but
// remains the accept-loop idiom (net/http does the same).
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary() //nolint:staticcheck
}

func (s *TCPServer) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	backoff := acceptBackoffMin
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) || !isTemporary(err) {
				return // listener closed or permanently broken
			}
			obs.GetCounter("transport_accept_retries_total").Inc()
			time.Sleep(backoff) //mits:allow sleepless accept backoff against a transiently failing listener
			backoff *= 2
			if backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		if s.ConnTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.ConnTimeout))
		}
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		if req.kind != kindRequest {
			return
		}
		// Server span: joins the trace the client stamped into the
		// frame header (nil span when the request is untraced).
		var sp *obs.Span
		if req.trace != 0 {
			sp = obs.ContinueSpan(req.method, "server", obs.TraceID(req.trace), obs.SpanID(req.span))
		}
		start := time.Now()
		payload, herr := s.handler.Handle(req.method, req.payload)
		obs.Observe("transport_server_latency_ns", time.Since(start), "method", req.method)
		obs.GetCounter("transport_server_rpcs_total", "method", req.method).Inc()
		if herr != nil {
			obs.GetCounter("transport_server_errors_total", "method", req.method).Inc()
		}
		sp.End(herr)
		// Echo the trace context so the client side can correlate the
		// response it is blocked on.
		resp := &frame{kind: kindResponse, id: req.id, trace: req.trace, span: req.span, payload: payload}
		if herr != nil {
			resp.errText = herr.Error()
			resp.payload = nil
		}
		if s.ConnTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.ConnTimeout))
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the listener and all connections, waiting for serving
// goroutines to drain. Close is idempotent and safe to call
// concurrently; every call waits for the drain and returns the first
// call's listener error.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		if s.listener != nil {
			s.closeErr = s.listener.Close()
		}
		for c := range s.conns {
			c.Close() // unblocks serveConn's read; its own close error is the signal
		}
	}
	err := s.closeErr
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPClient is the client module embedded in the navigator (§5.3.2). It
// issues one call at a time per connection, like the thesis's
// Client() routine.
type TCPClient struct {
	// Timeout, when set, is the per-call deadline: a call that has not
	// completed within it fails with ErrCallTimeout instead of waiting
	// on a slow or dead peer forever. Set before the first Call.
	Timeout time.Duration

	mu        sync.Mutex
	conn      net.Conn
	nextID    uint64
	lastTrace obs.TraceID // trace ID of the most recent Call

	closeOnce sync.Once
	closeErr  error
}

// DialTCP connects to a server.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTCPClient(conn), nil
}

// NewTCPClient wraps an established connection — for example one
// produced by a fault injector — in a client.
func NewTCPClient(conn net.Conn) *TCPClient {
	return &TCPClient{conn: conn}
}

// Call implements Client: send a request, wait for its response. Every
// call opens a fresh trace whose IDs travel in the frame header, so
// the server's span lands in the same trace as the client's.
func (c *TCPClient) Call(method string, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	sp := obs.StartSpan(method, "client")
	c.lastTrace = sp.Trace
	req := &frame{
		kind: kindRequest, id: c.nextID, method: method, payload: payload,
		trace: uint64(sp.Trace), span: uint64(sp.ID),
	}
	payload, err := c.roundTrip(req)
	sp.End(err)
	obs.Observe("transport_client_latency_ns", sp.Dur, "method", method)
	obs.GetCounter("transport_client_rpcs_total", "method", method).Inc()
	if err != nil {
		obs.GetCounter("transport_client_errors_total", "method", method).Inc()
	}
	return payload, err
}

// roundTrip is the untimed core of Call. Every failure it returns is
// typed: RemoteError for server-side failures, otherwise a CallError
// wrapping ErrCallTimeout / ErrPeerClosed / ErrBadFrame — raw io.EOF
// or net timeouts never leak to callers.
func (c *TCPClient) roundTrip(req *frame) ([]byte, error) {
	if c.Timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return nil, &CallError{Method: req.method, Err: classifyIOErr(err)}
		}
		defer c.conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset; the next call re-arms it
	}
	if err := writeFrame(c.conn, req); err != nil {
		return nil, &CallError{Method: req.method, Err: classifyIOErr(err)}
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, &CallError{Method: req.method, Err: classifyIOErr(err)}
	}
	if resp.id != req.id {
		return nil, &CallError{Method: req.method, Err: fmt.Errorf("%w: response id %d for request %d", ErrBadFrame, resp.id, req.id)}
	}
	if resp.errText != "" {
		return nil, &RemoteError{Method: req.method, Text: resp.errText}
	}
	return resp.payload, nil
}

// classifyIOErr maps raw I/O failures onto the typed transport errors.
func classifyIOErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrBadFrame):
		return err // already typed
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed), errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return fmt.Errorf("%w (%v)", ErrPeerClosed, err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w (%v)", ErrCallTimeout, err)
	}
	return err
}

// LastTrace reports the trace ID of the most recent Call — the handle
// a navigator prints so an operator can find the same request in the
// server's span exposition.
func (c *TCPClient) LastTrace() obs.TraceID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastTrace
}

// Close implements Client. It deliberately does not take c.mu, so it
// can interrupt a Call blocked on the network; closing the connection
// fails the pending read. Close is idempotent: every call returns the
// first close's error.
func (c *TCPClient) Close() error {
	c.closeOnce.Do(func() {
		c.closeErr = c.conn.Close() //mits:nolock write is published by closeOnce.Do
	})
	return c.closeErr //mits:nolock closeOnce.Do orders the write before this read
}

// RemoteError is a server-side failure surfaced to the client.
type RemoteError struct {
	Method string
	Text   string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Text)
}
