package transport

import "sync"

// Size-classed frame-buffer recycling. Every RPC used to allocate a
// fresh body buffer on each side of the wire (marshal on write, read
// buffer on receive); at the pipelined rates the multiplexed client
// sustains, that garbage dominated the profile. Buffers are pooled in
// power-of-four classes so a pool hit wastes at most 4× the requested
// size; requests above the largest class fall through to plain
// allocations (rare: a MaxFrame-sized pool would pin tens of MB).
//
// Ownership discipline — the reason recycling is safe:
//   - write buffers (batch scratch and large-frame segments) live only
//     inside the batchWriter; the kernel has copied them when the
//     flush's Write/writev returns;
//   - server request buffers are released after the handler returned
//     AND its response was encoded into the batch (Handler documents
//     that payloads do not outlive the call);
//   - client response buffers are pooled too, but recycling is opt-in:
//     the pooled call API (CallPooled / CallInTracePooled) hands the
//     caller a release callback, and a caller that drops it — every
//     plain Call — simply lets the buffer fall to the GC. putBuf runs
//     only via release, so an un-released buffer can never be handed
//     out twice.

// bufClasses are the pooled capacities. The smallest covers the framed
// control RPCs (list/keyword calls), the middle ones the typical
// courseware documents, the largest a full MPEG content chunk.
var bufClasses = [...]int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

var bufPools [len(bufClasses)]sync.Pool

// getBuf returns a zero-length buffer with capacity ≥ n, pooled when a
// class fits.
func getBuf(n int) []byte {
	for i, size := range bufClasses {
		if n <= size {
			if b, ok := bufPools[i].Get().(*[]byte); ok {
				return (*b)[:0]
			}
			return make([]byte, 0, size)
		}
	}
	return make([]byte, 0, n)
}

// putBuf recycles a buffer obtained from getBuf. Buffers whose
// capacity matches no class (over-large one-offs) are dropped for the
// GC. The *[]byte indirection keeps the slice header off the heap on
// every Put (sync.Pool stores interfaces).
func putBuf(b []byte) {
	c := cap(b)
	for i, size := range bufClasses {
		if c == size {
			b = b[:0]
			bufPools[i].Put(&b)
			return
		}
	}
}
