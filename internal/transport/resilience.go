package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mits/internal/obs"
	"mits/internal/sim"
)

// This file is the resilience layer of the client–server model: typed
// transport failures, idempotent retry with exponential backoff and
// jitter, and a per-peer circuit breaker. The thesis assumes a
// well-behaved broadband network; the ROADMAP's millions of users do
// not. Every mechanism here is visible in /stats (retries, breaker
// transitions) and is driven through its failure modes by the E28
// chaos experiment on top of internal/faults.

// Typed failures. Call sites inspect them with errors.Is; raw io.EOF
// or net timeout errors never escape the transport client.
var (
	// ErrPeerClosed: the peer hung up mid-call (EOF, reset, closed
	// connection).
	ErrPeerClosed = errors.New("transport: peer closed connection")
	// ErrCallTimeout: the per-call deadline expired before a response.
	ErrCallTimeout = errors.New("transport: call deadline exceeded")
	// ErrBreakerOpen: the circuit breaker is rejecting calls fast
	// while the peer cools down.
	ErrBreakerOpen = errors.New("transport: circuit breaker open")
	// ErrDial: establishing the connection failed; nothing was sent.
	ErrDial = errors.New("transport: dial failed")
)

// CallError is the typed wrapper every failed client call returns:
// which method failed, after how many attempts, and the underlying
// cause (inspect with errors.Is/As).
type CallError struct {
	Method   string
	Attempts int
	Err      error
}

func (e *CallError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("transport: call %s (after %d attempts): %v", e.Method, e.Attempts, e.Err)
	}
	return fmt.Sprintf("transport: call %s: %v", e.Method, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *CallError) Unwrap() error { return e.Err }

// MethodObsExport ships a batch of finished trace spans to a collector
// (see internal/obs/collect). Declared here rather than in dbapi.go
// because it is a transport-infrastructure method, not a courseware
// one.
const MethodObsExport = "obs.Export"

// idempotentMethods are the read-only courseware-database methods: a
// duplicate delivery changes nothing, so they are safe to retry after
// a failure whose outcome is unknown. Span export rides along: the
// collector dedupes spans by ID, so a duplicate batch is absorbed.
var idempotentMethods = map[string]bool{
	MethodListDocs:         true,
	MethodGetDoc:           true,
	MethodKeywordTree:      true,
	MethodDocByKeyword:     true,
	MethodGetContent:       true,
	MethodGetContentStream: true, // each chunk is an independent read
	MethodObsExport:        true,
}

// IsIdempotent reports whether method is safe to retry blindly.
func IsIdempotent(method string) bool { return idempotentMethods[method] }

// RetryBudget is a global token bucket shared across calls (and across
// RetryClients): every retry spends one token, and tokens refill at a
// bounded rate. Its purpose is storm control — when N callers fail over
// simultaneously (a shard's primary dies, every navigator's next read
// fails), per-call retry policies would multiply the outage into N×
// (Attempts-1) extra requests against whatever survived. A shared
// budget caps that amplification: once the bucket is dry, calls fail
// over without retrying instead of piling on. First attempts are never
// charged — the budget limits amplification, not traffic.
//
// Safe for concurrent use. A nil *RetryBudget allows everything, so
// wiring one in is strictly opt-in per policy.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	perSec float64
	last   time.Time
	now    func() time.Time

	exhausted *obs.Counter
}

// NewRetryBudget builds a budget holding at most maxTokens retries,
// refilling at refillPerSec tokens per second. maxTokens <= 0 defaults
// to 10, refillPerSec <= 0 to 10/s — roughly "one small burst, then one
// retry per 100ms", tight enough to flatten a stampede without starving
// a lone caller's recovery.
func NewRetryBudget(maxTokens, refillPerSec float64) *RetryBudget {
	if maxTokens <= 0 {
		maxTokens = 10
	}
	if refillPerSec <= 0 {
		refillPerSec = 10
	}
	return &RetryBudget{
		tokens:    maxTokens,
		max:       maxTokens,
		perSec:    refillPerSec,
		now:       time.Now,
		exhausted: obs.GetCounter("transport_retry_budget_exhausted_total"),
	}
}

// SetClock injects a time source (tests); returns the budget.
func (b *RetryBudget) SetClock(now func() time.Time) *RetryBudget {
	b.mu.Lock()
	b.now = now
	b.last = time.Time{}
	b.mu.Unlock()
	return b
}

// Allow spends one retry token, reporting whether the retry may
// proceed. A denial is counted in transport_retry_budget_exhausted_total.
func (b *RetryBudget) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.perSec
		if b.tokens > b.max {
			b.tokens = b.max
		}
	}
	b.last = now
	if b.tokens < 1 {
		b.exhausted.Inc()
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the (refilled) balance, for tests and stats.
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		now := b.now()
		b.tokens += now.Sub(b.last).Seconds() * b.perSec
		if b.tokens > b.max {
			b.tokens = b.max
		}
		b.last = now
	}
	return b.tokens
}

// RetryPolicy configures RetryClient: attempt budget, exponential
// backoff with jitter, and the retry decision. The zero value gets
// sane defaults (3 attempts, 5ms base backoff doubling to 100ms,
// ±50% jitter, DefaultRetryable).
type RetryPolicy struct {
	// Attempts is the total call budget (first try included).
	Attempts int
	// BaseBackoff is the pause before the first retry; each further
	// retry doubles it up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac spreads each backoff uniformly over ±frac of itself,
	// decorrelating clients that failed together.
	JitterFrac float64
	// Retryable decides whether a failed attempt may be retried; nil
	// means DefaultRetryable. Dial failures are always retried —
	// nothing was sent.
	Retryable func(method string, err error) bool
	// Sleep waits out a backoff; nil means a real clock wait. Tests
	// inject a recorder.
	Sleep func(time.Duration)
	// Budget, when non-nil, is a global retry token bucket shared with
	// other clients (typically every replica client behind one cluster
	// router): a retry only proceeds if Budget.Allow() grants a token,
	// so simultaneous failovers cannot amplify an outage into a retry
	// storm. Nil means unlimited retries (per-call Attempts still cap
	// each call).
	Budget *RetryBudget
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.5
	}
	if p.Retryable == nil {
		p.Retryable = DefaultRetryable
	}
	if p.Sleep == nil {
		p.Sleep = func(d time.Duration) {
			time.Sleep(d) //mits:allow sleepless retry backoff is a deliberate wall-clock wait
		}
	}
	return p
}

// DefaultRetryable retries idempotent methods on transport-level
// failures. Breaker rejections are never retried (the point is to
// fail fast), and neither are remote handler errors — the carrier
// worked and the server's answer is deterministic, so a retry would
// only repeat it. Non-idempotent methods are never retried here
// (their dial-stage failures are retried by RetryClient directly,
// where it is known nothing was sent).
func DefaultRetryable(method string, err error) bool {
	if errors.Is(err, ErrBreakerOpen) {
		return false
	}
	var remote *RemoteError
	if errors.As(err, &remote) {
		return false
	}
	return IsIdempotent(method)
}

// backoffFor computes the pause before retry #retry (1-based),
// exponential with cap and jitter. rng draws are deterministic per
// seed, so chaos runs replay their backoff schedule exactly.
func (p RetryPolicy) backoffFor(retry int, rng *sim.RNG) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < retry && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.JitterFrac > 0 {
		d = time.Duration(float64(d) * (1 + p.JitterFrac*(2*rng.Float64()-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Dialer establishes one client connection to a peer.
type Dialer func() (Client, error)

// RetryClient is a self-healing Client: it dials lazily, retries
// idempotent calls with exponential backoff + jitter, and redials
// after transport-level failures (a failed connection's framing state
// is unknown, so it is discarded rather than reused). Remote handler
// errors keep the connection: the carrier worked.
type RetryClient struct {
	dial   Dialer
	policy RetryPolicy

	mu     sync.Mutex
	rng    *sim.RNG
	cur    Client
	closed bool
}

// NewRetryClient wraps dial with policy; seed fixes the jitter stream
// so runs replay deterministically.
func NewRetryClient(dial Dialer, policy RetryPolicy, seed uint64) *RetryClient {
	return &RetryClient{dial: dial, policy: policy.withDefaults(), rng: sim.NewRNG(seed)}
}

// Call implements Client with the retry loop.
func (r *RetryClient) Call(method string, payload []byte) ([]byte, error) {
	out, _, err := r.call(obs.SpanContext{}, method, payload, false)
	return out, err
}

// CallInTrace implements TraceCaller: each attempt's client span
// continues the caller's trace, so retries appear as sibling spans
// under the same parent.
func (r *RetryClient) CallInTrace(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	out, _, err := r.call(sc, method, payload, false)
	return out, err
}

// CallInTracePooled implements PooledTraceCaller with the same retry
// loop: the release of the winning attempt's response is handed
// through (nil when the inner carrier does not pool).
func (r *RetryClient) CallInTracePooled(sc obs.SpanContext, method string, payload []byte) ([]byte, func(), error) {
	return r.call(sc, method, payload, true)
}

func (r *RetryClient) call(sc obs.SpanContext, method string, payload []byte, pooled bool) ([]byte, func(), error) {
	p := r.policy
	var lastErr error
	for attempt := 1; attempt <= p.Attempts; attempt++ {
		if attempt > 1 {
			if p.Budget != nil && !p.Budget.Allow() {
				// The global budget is dry: stop amplifying. The caller
				// gets the last attempt's typed error and (in a cluster)
				// fails over to another replica instead of retrying here.
				break
			}
			d := r.jitteredBackoff(attempt - 1)
			obs.GetCounter("transport_retries_total", "method", method).Inc()
			obs.Observe("transport_retry_backoff_ns", d)
			p.Sleep(d)
		}
		cl, err := r.client()
		if err != nil {
			if errors.Is(err, errRetryClientClosed) {
				return nil, nil, &CallError{Method: method, Attempts: attempt, Err: err}
			}
			obs.GetCounter("transport_dial_errors_total").Inc()
			lastErr = fmt.Errorf("%w: %w", ErrDial, err)
			continue // nothing was sent: always safe to retry
		}
		var out []byte
		var rel func()
		if pooled {
			out, rel, err = CallInTracePooled(cl, sc, method, payload)
		} else {
			out, err = CallInTrace(cl, sc, method, payload)
		}
		if err == nil {
			if attempt > 1 {
				obs.GetCounter("transport_retry_recoveries_total", "method", method).Inc()
			}
			return out, rel, nil
		}
		lastErr = err
		var remote *RemoteError
		if !errors.As(err, &remote) && !errors.Is(err, ErrCallTimeout) {
			// Transport-level failure: the connection's framing state
			// is unknown; discard it so the next attempt redials. A
			// pure call timeout is exempt: the multiplexed client
			// matches responses by correlation ID, so a late response
			// is discarded harmlessly and the connection stays good —
			// tearing it down would fail every neighbouring in-flight
			// call for one slow one (per-call, not per-connection).
			r.discardIfDead(cl)
		}
		if !p.Retryable(method, err) {
			break
		}
	}
	var ce *CallError
	if errors.As(lastErr, &ce) {
		return nil, nil, lastErr // already typed by the inner client
	}
	return nil, nil, &CallError{Method: method, Attempts: p.Attempts, Err: lastErr}
}

var errRetryClientClosed = errors.New("transport: retry client closed")

// jitteredBackoff draws the next backoff under the client's lock (the
// RNG is not concurrency-safe).
func (r *RetryClient) jitteredBackoff(retry int) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.policy.backoffFor(retry, r.rng)
}

// client returns the live connection, dialing if needed.
func (r *RetryClient) client() (Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errRetryClientClosed
	}
	if r.cur != nil {
		return r.cur, nil
	}
	c, err := r.dial()
	if err != nil {
		return nil, err
	}
	r.cur = c
	return c, nil
}

// healthReporter is the optional self-health probe a client may
// expose: nil while still usable, the terminal error once dead. A
// ClientPool uses it to survive single-stripe deaths — one dead
// connection out of four is routed around inside the pool, and only a
// fully-dead pool is worth discarding and redialing.
type healthReporter interface{ Err() error }

// discardIfDead discards a client after a transport-level failure —
// unless the client itself reports it is still usable (a pool with
// live stripes left), in which case tearing it down would kill the
// healthy stripes' in-flight calls for one conn's fault.
func (r *RetryClient) discardIfDead(cl Client) {
	if hr, ok := cl.(healthReporter); ok && hr.Err() == nil {
		return
	}
	r.discard(cl)
}

// discard drops a failed connection so the next attempt redials. The
// attempt has already failed: the broken connection's close error is
// noise, and the retry loop deliberately drops it (errdrop knows this
// retry-helper convention).
func (r *RetryClient) discard(cl Client) {
	r.mu.Lock()
	if r.cur == cl {
		r.cur = nil
	}
	r.mu.Unlock()
	cl.Close()
}

// Close implements Client; further calls fail fast with a typed error.
func (r *RetryClient) Close() error {
	r.mu.Lock()
	r.closed = true
	cl := r.cur
	r.cur = nil
	r.mu.Unlock()
	if cl != nil {
		return cl.Close()
	}
	return nil
}

// BreakerState is the circuit-breaker position.
type BreakerState int32

// The classic three positions.
const (
	BreakerClosed   BreakerState = iota // calls flow, failures counted
	BreakerOpen                         // calls rejected until cooldown
	BreakerHalfOpen                     // one probe in flight decides
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Breaker is a per-peer circuit breaker: after Threshold consecutive
// failures it opens and rejects calls instantly (no timeout waits
// pile up against a dead peer); after Cooldown it half-opens and lets
// one probe through — success closes it, failure re-opens. State
// transitions and rejections are counted in /stats.
type Breaker struct {
	peer      string
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	// stateGauge mirrors the position into /stats as
	// breaker_state{peer=...} (0 closed, 1 open, 2 half-open), so the
	// cluster router and operators see open circuits directly instead
	// of inferring them from error counts.
	stateGauge *obs.Gauge

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a breaker for the named peer. threshold ≤ 0
// defaults to 5 consecutive failures; cooldown ≤ 0 to 500ms.
func NewBreaker(peer string, threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	b := &Breaker{
		peer: peer, threshold: threshold, cooldown: cooldown, now: time.Now,
		stateGauge: obs.GetGauge("breaker_state", "peer", peer),
	}
	b.stateGauge.Set(int64(BreakerClosed))
	return b
}

// SetClock injects a time source (tests); returns the breaker.
func (b *Breaker) SetClock(now func() time.Time) *Breaker {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
	return b
}

// State reports the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transitionLocked moves to a new state, counting it. Callers hold
// b.mu.
func (b *Breaker) transitionLocked(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	b.stateGauge.Set(int64(to))
	obs.GetCounter("transport_breaker_transitions_total", "peer", b.peer, "to", to.String()).Inc()
}

// Allow reports whether a call may proceed, returning ErrBreakerOpen
// (wrapped with the peer name) for fast-fail rejections.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.transitionLocked(BreakerHalfOpen)
			b.probing = true
			return nil
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	obs.GetCounter("transport_breaker_rejected_total", "peer", b.peer).Inc()
	return fmt.Errorf("%w: peer %s", ErrBreakerOpen, b.peer)
}

// Record feeds one call outcome back into the breaker.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.failures = 0
		b.probing = false
		b.transitionLocked(BreakerClosed)
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.openedAt = b.now()
		b.transitionLocked(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.transitionLocked(BreakerOpen)
		}
	case BreakerOpen:
		// A straggler from before the trip; nothing to learn.
	}
}

// BreakerClient guards a Client with a Breaker. Remote handler errors
// do not count against the peer — the carrier worked; only
// transport-level failures trip the breaker.
type BreakerClient struct {
	c Client
	b *Breaker
}

// WithBreaker wraps c.
func WithBreaker(c Client, b *Breaker) *BreakerClient {
	return &BreakerClient{c: c, b: b}
}

// Call implements Client: fast-fail while open, record outcomes.
func (bc *BreakerClient) Call(method string, payload []byte) ([]byte, error) {
	return bc.call(obs.SpanContext{}, method, payload)
}

// CallInTrace implements TraceCaller, threading the trace through to
// the guarded client.
func (bc *BreakerClient) CallInTrace(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	return bc.call(sc, method, payload)
}

func (bc *BreakerClient) call(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	if err := bc.b.Allow(); err != nil {
		return nil, &CallError{Method: method, Err: err}
	}
	out, err := CallInTrace(bc.c, sc, method, payload)
	var remote *RemoteError
	if err != nil && errors.As(err, &remote) {
		bc.b.Record(nil)
	} else {
		bc.b.Record(err)
	}
	return out, err
}

// CallInTracePooled implements PooledTraceCaller: the pooled path gets
// the same fast-fail guard and outcome accounting.
func (bc *BreakerClient) CallInTracePooled(sc obs.SpanContext, method string, payload []byte) ([]byte, func(), error) {
	if err := bc.b.Allow(); err != nil {
		return nil, nil, &CallError{Method: method, Err: err}
	}
	out, rel, err := CallInTracePooled(bc.c, sc, method, payload)
	var remote *RemoteError
	if err != nil && errors.As(err, &remote) {
		bc.b.Record(nil)
	} else {
		bc.b.Record(err)
	}
	return out, rel, err
}

// Close implements Client.
func (bc *BreakerClient) Close() error { return bc.c.Close() }

// Breaker exposes the guarding breaker (for state assertions).
func (bc *BreakerClient) Breaker() *Breaker { return bc.b }
