package transport

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"mits/internal/lint/leaktest"
	"testing/quick"
	"time"

	"mits/internal/atm"
	"mits/internal/mediastore"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []*frame{
		{kind: kindRequest, id: 1, method: "db.Get_List_Doc"},
		{kind: kindRequest, id: 42, method: "m", payload: []byte("payload")},
		{kind: kindResponse, id: 42, payload: []byte{0, 1, 2}},
		{kind: kindResponse, id: 7, errText: "not found"},
	}
	for _, f := range cases {
		got, err := unmarshalFrame(f.marshal())
		if err != nil {
			t.Fatalf("unmarshal(%+v): %v", f, err)
		}
		if got.kind != f.kind || got.id != f.id || got.method != f.method || got.errText != f.errText || !bytes.Equal(got.payload, f.payload) {
			t.Errorf("round trip %+v → %+v", f, got)
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	if _, err := unmarshalFrame(nil); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := unmarshalFrame([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("bad kind accepted")
	}
	f := &frame{kind: kindRequest, id: 1, method: "m", payload: []byte("x")}
	body := f.marshal()
	if _, err := unmarshalFrame(body[:len(body)-1]); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestFrameFuzzProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = unmarshalFrame(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMux(t *testing.T) {
	m := NewMux()
	m.Register("echo", func(_ string, p []byte) ([]byte, error) { return p, nil })
	out, err := m.Handle("echo", []byte("hi"))
	if err != nil || string(out) != "hi" {
		t.Errorf("echo: %q %v", out, err)
	}
	if _, err := m.Handle("nope", nil); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("unknown method err=%v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	m.Register("echo", func(string, []byte) ([]byte, error) { return nil, nil })
}

func testStore(t *testing.T) *mediastore.Store {
	t.Helper()
	s := mediastore.New()
	if _, err := s.PutDocument("atm-course", "ATM", "asn1", []byte("course-bytes"), "network/atm"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutContent("store/v.mpg", "MPEG", bytes.Repeat([]byte("v"), 100000)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDBOverLoopback(t *testing.T) {
	store := testStore(t)
	mux := NewMux()
	RegisterStore(mux, store)
	db := DBClient{C: Loopback{H: mux}}
	exerciseDB(t, db)
}

func TestDBOverTCP(t *testing.T) {
	leaktest.Check(t)
	store := testStore(t)
	mux := NewMux()
	RegisterStore(mux, store)
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	exerciseDB(t, DBClient{C: client})
}

func exerciseDB(t *testing.T, db DBClient) {
	t.Helper()
	names, err := db.GetListDoc()
	if err != nil || len(names) != 1 || names[0] != "atm-course" {
		t.Fatalf("GetListDoc=%v err=%v", names, err)
	}
	rec, err := db.GetSelectedDoc("atm-course")
	if err != nil || string(rec.Data) != "course-bytes" {
		t.Fatalf("GetSelectedDoc=%+v err=%v", rec, err)
	}
	if _, err := db.GetSelectedDoc("missing"); err == nil {
		t.Error("missing doc fetch succeeded")
	} else if !strings.Contains(err.Error(), "not found") {
		t.Errorf("error lost fidelity across the wire: %v", err)
	}
	tree, err := db.GetKeywordTree()
	if err != nil || len(tree.Children) == 0 {
		t.Fatalf("GetKeywordTree=%+v err=%v", tree, err)
	}
	byKw, err := db.GetDocByKeyword("network")
	if err != nil || len(byKw) != 1 {
		t.Fatalf("GetDocByKeyword=%v err=%v", byKw, err)
	}
	content, err := db.GetContent("store/v.mpg")
	if err != nil || len(content.Data) != 100000 {
		t.Fatalf("GetContent len=%d err=%v", len(content.Data), err)
	}
	// Author/producer round trip.
	v, err := db.PutDocument("new-course", "New", "asn1", []byte("d"), "misc")
	if err != nil || v != 1 {
		t.Fatalf("PutDocument v=%d err=%v", v, err)
	}
	if err := db.PutContent("store/new.wav", "WAV", []byte("audio")); err != nil {
		t.Fatal(err)
	}
	got, err := db.FetchContent("store/new.wav")
	if err != nil || string(got) != "audio" {
		t.Fatalf("FetchContent=%q err=%v", got, err)
	}
	if _, err := db.FetchContent("store/zzz"); err == nil {
		t.Error("FetchContent of missing ref succeeded")
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	leaktest.Check(t)
	store := testStore(t)
	mux := NewMux()
	RegisterStore(mux, store)
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialTCP(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			db := DBClient{C: c}
			for j := 0; j < 20; j++ {
				if _, err := db.GetSelectedDoc("atm-course"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	leaktest.Check(t)
	mux := NewMux()
	srv := NewTCPServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := client.Call("x", nil); err == nil {
		t.Error("call on closed server succeeded")
	}
	client.Close()
}

// atmTestNet builds a user host and a server host joined by one switch.
func atmTestNet(t *testing.T) (*atm.Network, *atm.Host, *atm.Host) {
	t.Helper()
	n := atm.New()
	user := n.AddHost("user")
	db := n.AddHost("db")
	sw := n.AddSwitch("sw")
	n.Connect(user, sw, 155e6, 500*time.Microsecond)
	n.Connect(sw, db, 155e6, 500*time.Microsecond)
	return n, user, db
}

func TestDBOverATM(t *testing.T) {
	store := testStore(t)
	mux := NewMux()
	RegisterStore(mux, store)
	n, user, db := atmTestNet(t)
	sess, err := OpenATMSession(n, user, db, mux, ATMSessionOptions{ServiceTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Small call.
	payload, err := sess.CallOver(MethodListDocs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := gobDecode(payload, &names); err != nil || len(names) != 1 {
		t.Fatalf("names=%v err=%v", names, err)
	}

	// Large content fetch: 100 kB crosses the chunking path.
	req, _ := gobEncode(getContentReq{Ref: "store/v.mpg"})
	payload, err = sess.CallOver(MethodGetContent, req)
	if err != nil {
		t.Fatal(err)
	}
	var rec mediastore.ContentRecord
	if err := gobDecode(payload, &rec); err != nil || len(rec.Data) != 100000 {
		t.Fatalf("content len=%d err=%v", len(rec.Data), err)
	}

	// Errors cross the ATM path too.
	req, _ = gobEncode(getDocReq{Name: "missing"})
	if _, err := sess.CallOver(MethodGetDoc, req); err == nil {
		t.Error("missing doc over ATM succeeded")
	}
	if sess.Pending() != 0 {
		t.Errorf("pending=%d after all calls", sess.Pending())
	}
	reqB, rspB := sess.Traffic()
	if reqB == 0 || rspB < 100000 {
		t.Errorf("traffic accounting req=%d rsp=%d", reqB, rspB)
	}
}

func TestATMCallLatencyReflectsNetwork(t *testing.T) {
	store := testStore(t)
	mux := NewMux()
	RegisterStore(mux, store)
	n, user, db := atmTestNet(t)
	sess, err := OpenATMSession(n, user, db, mux, ATMSessionOptions{ServiceTime: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := n.Clock().Now()
	if _, err := sess.CallOver(MethodListDocs, nil); err != nil {
		t.Fatal(err)
	}
	elapsed := n.Clock().Now().Sub(start)
	// 2×500µs propagation each way + 2ms service + serialization ≥ 4ms.
	if elapsed < 4*time.Millisecond {
		t.Errorf("call completed in %v, faster than physics allows", elapsed)
	}
	if elapsed > 20*time.Millisecond {
		t.Errorf("call took %v, suspiciously slow", elapsed)
	}
}

func TestATMSessionAdmissionFailure(t *testing.T) {
	n, user, db := atmTestNet(t)
	// Demand more guaranteed bandwidth than the 155 Mb/s links carry.
	_, err := OpenATMSession(n, user, db, NewMux(), ATMSessionOptions{
		Contract: atm.CBRContract(200e6),
	})
	if !errors.Is(err, atm.ErrAdmissionDenied) {
		t.Errorf("err=%v, want admission denied", err)
	}
}

func TestATMSessionSurvivesResponseLoss(t *testing.T) {
	// A lossy path breaks a chunked response; CallOver must fail
	// loudly ("never completed") rather than hang or return garbage,
	// and a later call on a clean path still works.
	store := testStore(t)
	mux := NewMux()
	RegisterStore(mux, store)

	n := atm.New()
	n.BufferCells = 16 // tiny buffers: the big response overflows
	user := n.AddHost("user")
	db := n.AddHost("db")
	sw := n.AddSwitch("sw")
	x1 := n.AddHost("x1")
	x2 := n.AddHost("x2")
	n.Connect(user, sw, 155e6, 500*time.Microsecond)
	n.Connect(sw, db, 2e6, 500*time.Microsecond) // slow server link
	n.Connect(x1, sw, 155e6, 500*time.Microsecond)
	n.Connect(sw, x2, 155e6, 500*time.Microsecond)

	sess, err := OpenATMSession(n, user, db, mux, ATMSessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Flood the server→user direction is what matters: responses travel
	// db→sw→user; congest sw→user? The flood x1→x2 shares sw only.
	// Instead overload the session's own response path: issue many
	// large fetches at once so the 16-cell buffer drops chunks.
	req, _ := EncodeGetContent("store/v.mpg")
	errs := 0
	done := 0
	for i := 0; i < 8; i++ {
		sess.Go(MethodGetContent, req, func(p []byte, err error) {
			if err != nil {
				errs++
			}
			done++
		})
	}
	n.Clock().Run()
	if done == 8 && errs == 0 {
		t.Skip("no loss induced on this topology; nothing to assert")
	}
	// Some calls never completed (chunks lost) — they are still pending.
	if sess.Pending() == 0 && errs == 0 {
		t.Error("loss occurred but every call completed cleanly")
	}
}

func TestLoopbackErrorPropagation(t *testing.T) {
	mux := NewMux()
	mux.Register("boom", func(string, []byte) ([]byte, error) {
		return nil, errors.New("kaput")
	})
	if _, err := (Loopback{H: mux}).Call("boom", nil); err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Errorf("err=%v", err)
	}
	if err := (Loopback{}).Close(); err != nil {
		t.Error(err)
	}
}

// TestDialTCPConnectBounded pins the connect timeout on DialTCP. The
// target is a TEST-NET-1 address (RFC 5737: never routed), so the SYN
// either black-holes or the local stack refuses it immediately; with
// the timeout applied the call must fail fast either way. Reverting to
// an unbounded net.Dial hangs this test for the OS connect default on
// any host where the address black-holes.
func TestDialTCPConnectBounded(t *testing.T) {
	old := DialTimeout
	DialTimeout = 100 * time.Millisecond
	defer func() { DialTimeout = old }()
	start := time.Now()
	c, err := DialTCP("192.0.2.1:9")
	elapsed := time.Since(start)
	if err == nil {
		c.Close()
		t.Skip("TEST-NET-1 address unexpectedly reachable on this host")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("DialTCP to a black-holed address took %v; connect timeout not applied", elapsed)
	}
}
