package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mits/internal/obs"
)

// failDialer always fails, so every attempt is a dial retry — the
// cheapest way to make a RetryClient want all of its attempts.
func failDialer() (Client, error) { return nil, errors.New("boom") }

// TestRetryBudgetCapsAmplification: with a dry shared budget, N clients
// failing simultaneously each make exactly one attempt — the retry
// storm a per-call policy would unleash is flattened to first tries.
func TestRetryBudgetCapsAmplification(t *testing.T) {
	budget := NewRetryBudget(2, 0.001) // 2 tokens, effectively no refill
	fixed := time.Now()
	budget.SetClock(func() time.Time { return fixed })

	policy := RetryPolicy{
		Attempts: 4,
		Budget:   budget,
		Sleep:    func(time.Duration) {},
	}
	before := obs.GetCounter("transport_dial_errors_total").Value()
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rc := NewRetryClient(failDialer, policy, seed)
			defer rc.Close()
			if _, err := rc.Call(MethodListDocs, nil); err == nil {
				t.Error("call against a dead dialer succeeded")
			}
		}(uint64(i))
	}
	wg.Wait()
	attempts := obs.GetCounter("transport_dial_errors_total").Value() - before
	// 8 first attempts plus at most the 2 budgeted retries; without the
	// budget this would be callers*Attempts = 32.
	if want := int64(callers + 2); attempts > want {
		t.Fatalf("dial attempts = %d, budget should cap them at %d", attempts, want)
	}
	if attempts < callers {
		t.Fatalf("dial attempts = %d, every caller gets its first try", attempts)
	}
}

// TestRetryBudgetRefills: tokens come back at the configured rate, so a
// quiet period restores retry capacity.
func TestRetryBudgetRefills(t *testing.T) {
	now := time.Unix(1000, 0)
	budget := NewRetryBudget(5, 2).SetClock(func() time.Time { return now })
	for i := 0; i < 5; i++ {
		if !budget.Allow() {
			t.Fatalf("token %d denied with a full bucket", i)
		}
	}
	if budget.Allow() {
		t.Fatal("empty bucket granted a token")
	}
	now = now.Add(time.Second) // 2 tokens refill
	if !budget.Allow() || !budget.Allow() {
		t.Fatal("refilled tokens denied")
	}
	if budget.Allow() {
		t.Fatal("bucket granted more than the refill")
	}
}

// TestRetryBudgetExhaustionCounted: denials surface in
// transport_retry_budget_exhausted_total.
func TestRetryBudgetExhaustionCounted(t *testing.T) {
	c := obs.GetCounter("transport_retry_budget_exhausted_total")
	before := c.Value()
	fixed := time.Now()
	budget := NewRetryBudget(1, 0.001).SetClock(func() time.Time { return fixed })
	budget.Allow()
	budget.Allow() // denied
	budget.Allow() // denied
	if got := c.Value() - before; got != 2 {
		t.Fatalf("exhausted counter moved by %d, want 2", got)
	}
}

// TestBreakerStateGauge: the breaker's position is mirrored into the
// breaker_state{peer} gauge on every transition, so routers and /stats
// see open circuits directly.
func TestBreakerStateGauge(t *testing.T) {
	g := obs.GetGauge("breaker_state", "peer", "gauge-peer")
	br := NewBreaker("gauge-peer", 2, 50*time.Millisecond)
	if got := g.Value(); got != int64(BreakerClosed) {
		t.Fatalf("fresh breaker gauge = %d, want closed (%d)", got, BreakerClosed)
	}
	boom := errors.New("boom")
	br.Record(boom)
	br.Record(boom)
	if got := g.Value(); got != int64(BreakerOpen) {
		t.Fatalf("tripped breaker gauge = %d, want open (%d)", got, BreakerOpen)
	}
	clock := time.Now()
	br.SetClock(func() time.Time { return clock.Add(time.Second) })
	if err := br.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if got := g.Value(); got != int64(BreakerHalfOpen) {
		t.Fatalf("probing breaker gauge = %d, want half-open (%d)", got, BreakerHalfOpen)
	}
	br.Record(nil)
	if got := g.Value(); got != int64(BreakerClosed) {
		t.Fatalf("healed breaker gauge = %d, want closed (%d)", got, BreakerClosed)
	}
}

// TestRequestKey pins the routing-key extraction the cluster router
// depends on: keyed methods yield the name/ref, fan-out methods yield
// ErrUnkeyedMethod.
func TestRequestKey(t *testing.T) {
	get, err := EncodeGetDoc("course-a")
	if err != nil {
		t.Fatal(err)
	}
	if key, err := RequestKey(MethodGetDoc, get); err != nil || key != "course-a" {
		t.Fatalf("GetDoc key = %q, %v", key, err)
	}
	content, err := EncodeGetContent("store/x.mpg")
	if err != nil {
		t.Fatal(err)
	}
	if key, err := RequestKey(MethodGetContent, content); err != nil || key != "store/x.mpg" {
		t.Fatalf("GetContent key = %q, %v", key, err)
	}
	if _, err := RequestKey(MethodListDocs, nil); !errors.Is(err, ErrUnkeyedMethod) {
		t.Fatalf("ListDocs key err = %v, want ErrUnkeyedMethod", err)
	}
}
