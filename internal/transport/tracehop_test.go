package transport

import (
	"testing"

	"mits/internal/cache"
	"mits/internal/lint/leaktest"
	"mits/internal/obs"
)

// TestTracePropagatesAcrossHops runs the full three-node delivery
// shape over real TCP — navigator client → edge (a ForwardHandler
// whose DBClient dials the store) → store server — and asserts that
// one CallTraced produces one trace whose spans chain parent-to-child
// across every hop:
//
//	client(navigator) → server(edge) → client(edge) → server(store)
//	                                                → internal(store.GetContent)
//
// This is the wire contract the collector's critical path depends on:
// if any hop dropped or re-rooted the context, the trace would
// fragment and the slow hop could not be attributed.
func TestTracePropagatesAcrossHops(t *testing.T) {
	leaktest.Check(t)
	store := testStore(t)

	storeMux := NewMux()
	RegisterStore(storeMux, store)
	storeSrv := NewTCPServer(storeMux)
	storeAddr, err := storeSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer storeSrv.Close()

	up, err := DialTCP(storeAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	edge := DBClient{C: up}.WithContentCache(cache.New("tracehop", 1<<20))
	edgeSrv := NewTCPServer(ForwardHandler{DB: edge})
	edgeAddr, err := edgeSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer edgeSrv.Close()

	nav, err := DialTCP(edgeAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer nav.Close()

	req, err := EncodeGetContent("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := nav.CallTraced(MethodGetContent, req)
	if err != nil {
		t.Fatal(err)
	}

	spans := obs.Default.SpansOf(trace)
	if len(spans) != 5 {
		t.Fatalf("trace %s has %d spans, want 5: %+v", trace, len(spans), spans)
	}
	byID := make(map[obs.SpanID]*obs.Span, len(spans))
	kinds := make(map[string]int)
	for _, s := range spans {
		byID[s.ID] = s
		kinds[s.Kind]++
		if s.Trace != trace {
			t.Errorf("span %s carries trace %s, want %s", s.Name, s.Trace, trace)
		}
	}
	if kinds["client"] != 2 || kinds["server"] != 2 || kinds["internal"] != 1 {
		t.Fatalf("span kinds = %v, want 2 client, 2 server, 1 internal", kinds)
	}

	// Walk each span to the root: every span must reach the navigator's
	// client span, and depth must match its hop.
	wantDepth := map[string]int{"client": 0, "server": 1, "internal": 4}
	var root *obs.Span
	for _, s := range spans {
		depth := 0
		cur := s
		for cur.Parent != 0 {
			p := byID[cur.Parent]
			if p == nil {
				t.Fatalf("span %s/%s has dangling parent %d", s.Name, s.Kind, cur.Parent)
			}
			cur = p
			depth++
		}
		if root == nil {
			root = cur
		} else if cur != root {
			t.Fatalf("span %s/%s reaches root %d, others reach %d", s.Name, s.Kind, cur.ID, root.ID)
		}
		switch {
		case s.Kind == "internal" && depth != wantDepth["internal"]:
			t.Errorf("internal span %s at depth %d, want 4", s.Name, depth)
		case s.Kind == "client" && depth != 0 && depth != 2:
			t.Errorf("client span at depth %d, want 0 or 2", depth)
		case s.Kind == "server" && depth != 1 && depth != 3:
			t.Errorf("server span at depth %d, want 1 or 3", depth)
		}
	}
	if root.Kind != "client" || root.Name != MethodGetContent {
		t.Fatalf("root span = %s/%s, want %s/client", root.Name, root.Kind, MethodGetContent)
	}

	// Second request hits the edge cache: the trace still forms, but
	// stops at the edge — no store-side spans.
	_, trace2, err := nav.CallTraced(MethodGetContent, req)
	if err != nil {
		t.Fatal(err)
	}
	spans2 := obs.Default.SpansOf(trace2)
	if len(spans2) != 2 {
		t.Fatalf("cache-hit trace has %d spans, want 2 (client+edge server): %+v", len(spans2), spans2)
	}
	for _, s := range spans2 {
		if s.Kind == "internal" {
			t.Errorf("cache-hit trace reached the store: %+v", s)
		}
	}
}
