package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mits/internal/mediastore"
	"mits/internal/obs"
)

// Chunked streaming GetContent — the "Media Objects in Time" shape:
// content travels as a sequence of bounded, time-ordered fragments
// instead of one monolithic ≤16 MB frame. Each chunk is an ordinary
// keyed request/response on the multiplexed connection, so fairness
// falls out of the existing pipelining (a small interactive call is
// never stuck behind more than one chunk's worth of video on the
// wire), the cluster router forwards chunks verbatim like any other
// keyed read, and the breaker/retry stack sees idempotent single-chunk
// calls it already knows how to handle.
//
// The codec is hand-rolled binary, not gob: profiling the saturated
// transport showed gob's per-call decoder compilation — not syscalls —
// burning half the CPU on the content hot path (E32), and a fixed
// layout decodes with zero reflection and zero allocation beyond the
// strings.

// MethodGetContentStream is the chunked content wire op. It is keyed
// by ref (RequestKey) and idempotent per chunk.
const MethodGetContentStream = "db.GetContentStream"

// DefaultStreamChunkBytes is the chunk size clients request when the
// caller does not choose: large enough to amortize per-RPC overhead,
// small enough that a media object shares the connection fairly with
// interactive calls. 64 KB matches the batch writer's scratch class
// and, measured on the E32 reference host, keeps the p99 of 1 KB
// neighbours within 2x idle while an 8 MB object streams; at 256 KB a
// chunk occupied the wire for ~2 interactive round trips and the tail
// blew past that bound.
const DefaultStreamChunkBytes = 64 << 10

// MaxStreamChunkBytes caps what a client may request per chunk, so a
// greedy reader cannot turn the stream back into the monolithic frame
// this op exists to avoid.
const MaxStreamChunkBytes = 1 << 20

// ErrBadChunk marks a GetContentStream payload that failed to decode
// or a chunk sequence that broke its invariants (wrong offset,
// out-of-order index, total drifting mid-stream).
var ErrBadChunk = errors.New("transport: malformed content chunk")

// streamReqVersion / chunkVersion pin the binary layouts; a decoder
// seeing any other value rejects rather than misparsing.
const (
	streamReqVersion = 1
	chunkVersion     = 1
)

// chunk flag bits.
const (
	chunkFlagLast     = 1 << 0 // terminal chunk: offset+len(data) == total
	chunkFlagKeywords = 1 << 1 // keyword list present (terminal chunks)
)

// EncodeGetContentStream encodes one chunk request:
//
//	u8 version | u16 len(ref) ref | u64 offset | u32 maxBytes
func EncodeGetContentStream(ref string, offset uint64, maxBytes uint32) ([]byte, error) {
	if len(ref) > 0xFFFF {
		return nil, fmt.Errorf("%w: ref of %d bytes", ErrBadChunk, len(ref))
	}
	buf := make([]byte, 0, 1+2+len(ref)+8+4)
	buf = append(buf, streamReqVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ref)))
	buf = append(buf, ref...)
	buf = binary.BigEndian.AppendUint64(buf, offset)
	buf = binary.BigEndian.AppendUint32(buf, maxBytes)
	return buf, nil
}

// DecodeGetContentStream decodes a chunk request. The ref is a fresh
// string; nothing aliases the payload.
func DecodeGetContentStream(payload []byte) (ref string, offset uint64, maxBytes uint32, err error) {
	if len(payload) < 1+2 {
		return "", 0, 0, fmt.Errorf("%w: bad stream request", ErrBadChunk)
	}
	if payload[0] != streamReqVersion {
		return "", 0, 0, fmt.Errorf("%w: bad stream request", ErrBadChunk)
	}
	n := int(binary.BigEndian.Uint16(payload[1:]))
	rest := payload[3:]
	if len(rest) != n+8+4 {
		return "", 0, 0, fmt.Errorf("%w: bad stream request length", ErrBadChunk)
	}
	ref = string(rest[:n])
	offset = binary.BigEndian.Uint64(rest[n:])
	maxBytes = binary.BigEndian.Uint32(rest[n+8:])
	return ref, offset, maxBytes, nil
}

// ContentChunk is one decoded fragment of a streamed content object.
type ContentChunk struct {
	Ref      string
	Coding   string
	Index    uint32 // sequence number at the stream's chunk size
	Offset   uint64 // byte offset of Data within the object
	Total    uint64 // object size in bytes, constant across the stream
	Last     bool   // Offset+len(Data) == Total
	Keywords []string
	// Data is a view into the response payload, NOT a private copy:
	// with the pooled call API it is valid only until the response is
	// released. Copy (or consume) before releasing.
	Data []byte
}

// AppendContentChunk encodes a chunk onto buf:
//
//	u8 version | u8 flags | u32 index | u64 offset | u64 total |
//	u16 len(ref) ref | u16 len(coding) coding |
//	[u16 nkeywords, (u16 len, bytes)* when flagged] |
//	u32 len(data) data
func AppendContentChunk(buf []byte, c *ContentChunk) ([]byte, error) {
	if len(c.Ref) > 0xFFFF || len(c.Coding) > 0xFFFF || len(c.Keywords) > 0xFFFF {
		return nil, fmt.Errorf("%w: oversized chunk fields", ErrBadChunk)
	}
	flags := byte(0)
	if c.Last {
		flags |= chunkFlagLast
	}
	if len(c.Keywords) > 0 {
		flags |= chunkFlagKeywords
	}
	buf = append(buf, chunkVersion, flags)
	buf = binary.BigEndian.AppendUint32(buf, c.Index)
	buf = binary.BigEndian.AppendUint64(buf, c.Offset)
	buf = binary.BigEndian.AppendUint64(buf, c.Total)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.Ref)))
	buf = append(buf, c.Ref...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.Coding)))
	buf = append(buf, c.Coding...)
	if flags&chunkFlagKeywords != 0 {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.Keywords)))
		for _, kw := range c.Keywords {
			if len(kw) > 0xFFFF {
				return nil, fmt.Errorf("%w: oversized keyword", ErrBadChunk)
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(kw)))
			buf = append(buf, kw...)
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Data)))
	buf = append(buf, c.Data...)
	return buf, nil
}

// DecodeContentChunk decodes a chunk payload. Every length is bounds-
// checked against the remaining bytes (the fuzz corpus covers the
// truncation grid); Data aliases payload — see ContentChunk.Data.
func DecodeContentChunk(payload []byte) (*ContentChunk, error) {
	const fixed = 2 + 4 + 8 + 8
	if len(payload) < fixed {
		return nil, fmt.Errorf("%w: bad chunk header", ErrBadChunk)
	}
	if payload[0] != chunkVersion {
		return nil, fmt.Errorf("%w: bad chunk header", ErrBadChunk)
	}
	flags := payload[1]
	c := &ContentChunk{
		Index:  binary.BigEndian.Uint32(payload[2:]),
		Offset: binary.BigEndian.Uint64(payload[6:]),
		Total:  binary.BigEndian.Uint64(payload[14:]),
		Last:   flags&chunkFlagLast != 0,
	}
	rest := payload[fixed:]
	takeString := func() (string, bool) {
		if len(rest) < 2 {
			return "", false
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return "", false
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, true
	}
	var ok bool
	if c.Ref, ok = takeString(); !ok {
		return nil, fmt.Errorf("%w: truncated ref", ErrBadChunk)
	}
	if c.Coding, ok = takeString(); !ok {
		return nil, fmt.Errorf("%w: truncated coding", ErrBadChunk)
	}
	if flags&chunkFlagKeywords != 0 {
		if len(rest) < 2 {
			return nil, fmt.Errorf("%w: truncated keyword count", ErrBadChunk)
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		c.Keywords = make([]string, 0, n)
		for i := 0; i < n; i++ {
			kw, ok := takeString()
			if !ok {
				return nil, fmt.Errorf("%w: truncated keyword", ErrBadChunk)
			}
			c.Keywords = append(c.Keywords, kw)
		}
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: truncated data length", ErrBadChunk)
	}
	n := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if n != len(rest) {
		return nil, fmt.Errorf("%w: data length %d with %d bytes left", ErrBadChunk, n, len(rest))
	}
	if n > 0 {
		c.Data = rest
	}
	if c.Offset+uint64(n) > c.Total {
		return nil, fmt.Errorf("%w: chunk ends at %d beyond total %d", ErrBadChunk, c.Offset+uint64(n), c.Total)
	}
	if c.Last != (c.Offset+uint64(n) == c.Total) {
		return nil, fmt.Errorf("%w: last flag inconsistent with offsets", ErrBadChunk)
	}
	return c, nil
}

// registerContentStream mounts the chunk server on the mux, serving
// straight off the store's borrowed (zero-copy) records: the only copy
// between the store's bytes and the wire batch is the chunk encode.
func registerContentStream(m *Mux, store *mediastore.Store) {
	m.RegisterCtx(MethodGetContentStream, func(sc obs.SpanContext, _ string, payload []byte) ([]byte, error) {
		ref, offset, maxBytes, err := DecodeGetContentStream(payload)
		if err != nil {
			return nil, err
		}
		if maxBytes == 0 {
			maxBytes = DefaultStreamChunkBytes
		}
		if maxBytes > MaxStreamChunkBytes {
			maxBytes = MaxStreamChunkBytes
		}
		sp := obs.SpanFromContext("store.GetContentStream", "internal", sc)
		rec, err := store.GetContentBorrow(ref)
		sp.End(err)
		if err != nil {
			return nil, err
		}
		data := rec.Data
		total := uint64(len(data))
		if offset > uint64(len(data)) {
			return nil, fmt.Errorf("%w: offset %d beyond content %q of %d bytes", ErrBadChunk, offset, ref, total)
		}
		end := offset + uint64(maxBytes)
		if end > uint64(len(data)) {
			end = total
		}
		chunk := ContentChunk{
			Ref:    rec.Ref,
			Coding: rec.Coding,
			Index:  uint32(offset / uint64(maxBytes)),
			Offset: offset,
			Total:  total,
			Last:   end == total,
			Data:   data[offset:end],
		}
		if chunk.Last {
			chunk.Keywords = rec.Keywords
		}
		out := make([]byte, 0, chunkWireOverhead(&chunk)+len(chunk.Data))
		return AppendContentChunk(out, &chunk)
	})
}

// chunkWireOverhead sizes a chunk's encoding minus its data, so the
// encode buffer is allocated exactly once.
func chunkWireOverhead(c *ContentChunk) int {
	n := 2 + 4 + 8 + 8 + 2 + len(c.Ref) + 2 + len(c.Coding) + 4
	if len(c.Keywords) > 0 {
		n += 2
		for _, kw := range c.Keywords {
			n += 2 + len(kw)
		}
	}
	return n
}

// GetContentStream fetches a content object as a sequence of bounded
// chunks, each an independent idempotent RPC that interleaves fairly
// with other calls on the connection. sink, when non-nil, receives
// each chunk's bytes in order as they arrive — the view is valid only
// during the callback (it may be backed by a pooled buffer).
//
// Retention: with a content cache attached, the object is assembled
// and admitted whole (assemble-then-admit: the cache never holds a
// partial object) and the shared record is returned — like GetContent,
// it must not be mutated. Without a cache, a nil sink assembles and
// returns a private record, while a non-nil sink streams WITHOUT
// retaining: the returned record carries ref, coding and keywords but
// nil Data. That keeps a pure consumer (a player draining an 8 MB
// clip) from allocating the whole object per pass — on a saturated
// host that garbage is exactly what shows up as p99 spikes in
// neighbouring interactive calls.
func (d DBClient) GetContentStream(ref string, sink func([]byte) error) (*mediastore.ContentRecord, error) {
	if d.ContentCache == nil {
		return d.streamContent(ref, sink, sink == nil)
	}
	streamed := false
	v, err := d.ContentCache.GetOrFill(ref, func() (any, int64, error) {
		streamed = true
		rec, err := d.streamContent(ref, sink, true)
		if err != nil {
			return nil, 0, err
		}
		return rec, int64(len(rec.Data)), nil
	})
	if err != nil {
		return nil, err
	}
	rec := v.(*mediastore.ContentRecord)
	if !streamed && sink != nil {
		// Cache hit (or a concurrent streamer won the singleflight):
		// replay chunk-sized views of the immutable cached bytes.
		for off := 0; ; off += DefaultStreamChunkBytes {
			end := off + DefaultStreamChunkBytes
			if end > len(rec.Data) {
				end = len(rec.Data)
			}
			if err := sink(rec.Data[off:end]); err != nil {
				return nil, err
			}
			if end == len(rec.Data) {
				break
			}
		}
	}
	return rec, nil
}

// streamContent is the chunk loop. retain assembles the object into
// rec.Data; otherwise the chunks only pass through sink and rec comes
// back metadata-only.
func (d DBClient) streamContent(ref string, sink func([]byte) error, retain bool) (*mediastore.ContentRecord, error) {
	rec := &mediastore.ContentRecord{Ref: ref}
	var buf []byte
	var off uint64
	var idx uint32
	var total uint64
	for {
		req, err := EncodeGetContentStream(ref, off, DefaultStreamChunkBytes)
		if err != nil {
			return nil, err
		}
		payload, rel, err := d.callPooled(MethodGetContentStream, req)
		if err != nil {
			return nil, err
		}
		ck, err := DecodeContentChunk(payload)
		if err == nil {
			err = checkChunk(ck, ref, off, idx, total)
		}
		if err != nil {
			if rel != nil {
				rel()
			}
			return nil, fmt.Errorf("content stream %q: %w", ref, err)
		}
		if idx == 0 {
			total = ck.Total
			if retain {
				buf = make([]byte, 0, ck.Total)
			}
		}
		if retain {
			buf = append(buf, ck.Data...)
		}
		if sink != nil {
			if err := sink(ck.Data); err != nil {
				if rel != nil {
					rel()
				}
				return nil, err
			}
		}
		rec.Coding = ck.Coding
		if ck.Keywords != nil {
			rec.Keywords = ck.Keywords
		}
		last := ck.Last
		off += uint64(len(ck.Data))
		idx++
		// The chunk (and its Data view of the response) is consumed:
		// recycle the response buffer before the next round trip.
		if rel != nil {
			rel()
		}
		if last {
			break
		}
	}
	rec.Data = buf
	return rec, nil
}

// checkChunk enforces the stream invariants on one received chunk:
// right object, sequential offset and index, stable total. total is 0
// before the first chunk (unknown); a zero-total first chunk is legal
// only for an empty tail.
func checkChunk(ck *ContentChunk, ref string, off uint64, idx uint32, total uint64) error {
	if ck.Ref != ref {
		return fmt.Errorf("%w: chunk for %q", ErrBadChunk, ck.Ref)
	}
	if ck.Offset != off {
		return fmt.Errorf("%w: chunk at offset %d, want %d", ErrBadChunk, ck.Offset, off)
	}
	if ck.Index != idx {
		return fmt.Errorf("%w: chunk index %d, want %d", ErrBadChunk, ck.Index, idx)
	}
	if idx > 0 && ck.Total != total {
		return fmt.Errorf("%w: total changed mid-stream (%d -> %d; content republished?)", ErrBadChunk, total, ck.Total)
	}
	return nil
}
