package transport

import (
	"fmt"
	"sync/atomic"
	"time"

	"mits/internal/obs"
)

// Per-peer connection pooling. One TCP connection gives the
// multiplexed client one writer goroutine, one reader goroutine and
// one pending-call mutex — a serialization point every concurrent
// caller funnels through, and a single point of failure that a conn
// death turns into a mass in-flight kill. A ClientPool runs a small
// fixed set of TCPClients to the same peer and stripes callers across
// them round-robin: the pending-call map is sharded per connection as
// a side effect (each stripe owns its own), independent calls stop
// contending on one writer, and a connection death fails only the
// calls in flight on that stripe.
//
// The pool deliberately does not redial dead stripes — redialing is
// the RetryClient's job, one layer up. A pool whose stripes have all
// died reports Err() non-nil, the retry layer discards it and dials a
// fresh pool, exactly as it would a single connection.

// DefaultPoolConns is the stripe count when callers do not choose one:
// enough connections that a burst of independent calls spreads out,
// few enough that per-conn buffers (batch scratch, bufio readers) stay
// cheap even with many peers.
const DefaultPoolConns = 4

// ClientPool stripes calls over a fixed set of TCPClients to one peer.
// It implements Client, TraceCaller and PooledTraceCaller, so it drops
// into every place a single TCPClient composes today — DBClient, the
// breaker/retry stack, the cluster router's per-node clients.
type ClientPool struct {
	stripes []*TCPClient
	next    atomic.Uint64
}

// NewClientPool pools already-established clients (chaos tests wrap
// each conn in a fault injector before pooling). Panics on an empty
// set — a pool with nothing to stripe over is a wiring bug.
func NewClientPool(stripes []*TCPClient) *ClientPool {
	if len(stripes) == 0 {
		panic("transport: empty client pool")
	}
	p := &ClientPool{stripes: stripes}
	obs.GetGauge("transport_pool_conns").Set(int64(len(stripes)))
	return p
}

// DialTCPPool dials n connections to addr (DefaultPoolConns when n <=
// 0, a plain single conn when n == 1 still wrapped for the uniform
// type). Dialing is all-or-nothing: one failed conn closes the rest
// and fails the dial, so a pool never starts life degraded.
func DialTCPPool(addr string, n int) (*ClientPool, error) {
	if n <= 0 {
		n = DefaultPoolConns
	}
	stripes := make([]*TCPClient, 0, n)
	for i := 0; i < n; i++ {
		c, err := DialTCP(addr)
		if err != nil {
			for _, open := range stripes {
				open.Close() //mits:allow errdrop best-effort cleanup of a partial pool; the dial error is what the caller needs
			}
			return nil, fmt.Errorf("transport: pool conn %d/%d: %w", i+1, n, err)
		}
		stripes = append(stripes, c)
	}
	return NewClientPool(stripes), nil
}

// PoolDialer adapts DialTCPPool to the resilience layer's Dialer, the
// pool analogue of `func() (Client, error) { return DialTCP(addr) }`:
// the retry client redials a whole fresh pool when the current one
// dies. timeout sets every stripe's per-call deadline (0 = none).
func PoolDialer(addr string, n int, timeout time.Duration) Dialer {
	return func() (Client, error) {
		p, err := DialTCPPool(addr, n)
		if err != nil {
			return nil, err
		}
		p.SetTimeout(timeout)
		return p, nil
	}
}

// SetTimeout sets the per-call deadline on every stripe. Like
// TCPClient.Timeout it must be set before the first call.
func (p *ClientPool) SetTimeout(d time.Duration) {
	for _, c := range p.stripes {
		c.mu.Lock()
		c.Timeout = d
		c.mu.Unlock()
	}
}

// Conns reports the stripe count.
func (p *ClientPool) Conns() int { return len(p.stripes) }

// pick chooses the next stripe round-robin, skipping stripes that have
// already died so new calls are not fed to a known-dead connection.
// With every stripe dead it returns one anyway — the call fails with
// that stripe's typed error, which is what the caller (and the retry
// layer above) needs to see.
func (p *ClientPool) pick() *TCPClient {
	i := p.next.Add(1)
	n := uint64(len(p.stripes))
	for k := uint64(0); k < n; k++ {
		c := p.stripes[(i+k)%n]
		if c.Err() == nil {
			return c
		}
	}
	return p.stripes[i%n]
}

// Call implements Client on the next stripe.
func (p *ClientPool) Call(method string, payload []byte) ([]byte, error) {
	return p.pick().Call(method, payload)
}

// CallTraced mirrors TCPClient.CallTraced on the next stripe.
func (p *ClientPool) CallTraced(method string, payload []byte) ([]byte, obs.TraceID, error) {
	return p.pick().CallTraced(method, payload)
}

// CallInTrace implements TraceCaller on the next stripe.
func (p *ClientPool) CallInTrace(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	return p.pick().CallInTrace(sc, method, payload)
}

// CallInTracePooled implements PooledTraceCaller on the next stripe.
func (p *ClientPool) CallInTracePooled(sc obs.SpanContext, method string, payload []byte) ([]byte, func(), error) {
	return p.pick().CallInTracePooled(sc, method, payload)
}

// Err reports nil while at least one stripe is usable, else the first
// stripe's terminal error — the whole pool is dead and the retry layer
// should discard it.
func (p *ClientPool) Err() error {
	for _, c := range p.stripes {
		if c.Err() == nil {
			return nil
		}
	}
	return p.stripes[0].Err()
}

// Close implements Client: closes every stripe, returning the first
// error.
func (p *ClientPool) Close() error {
	var first error
	for _, c := range p.stripes {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
