package transport

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the frame decoder. All
// three header versions are seeded: v1 (untraced), v2 (16-byte trace
// context between the id and the name) and v3 (8-byte correlation ID
// then the trace context). Anything that decodes must survive a
// marshal/unmarshal round trip unchanged.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range []*frame{
		{kind: kindRequest, id: 1, method: "GetDoc", payload: []byte("atm-course")},
		{kind: kindResponse, id: 1, payload: []byte{1, 2, 3}},
		{kind: kindResponse, id: 7, errText: "transport: unknown method"},
		{kind: kindRequest, id: 9, trace: 0xdeadbeef, span: 0x42, method: "Search", payload: []byte("broadband")},
		{kind: kindResponse, id: 9, trace: 0xdeadbeef, span: 0x43},
		{kind: kindRequest, id: 11, corr: 11, method: "db.GetContent", payload: []byte("store/v.mpg")},
		{kind: kindRequest, id: 12, corr: 12, trace: 0xfeed, span: 0x7, method: "db.GetContent"},
		{kind: kindResponse, id: 12, corr: 12, trace: 0xfeed, span: 0x7, payload: []byte{9}},
		{kind: kindResponse, id: 13, corr: 13, errText: "transport: unknown method"},
	} {
		f.Add(fr.marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{byte(kindRequestV2), 0, 0, 0})
	f.Add([]byte{byte(kindRequestV3), 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := unmarshalFrame(data)
		if err != nil {
			return
		}
		fr2, err := unmarshalFrame(fr.marshal())
		if err != nil {
			t.Fatalf("decoded frame failed to re-decode: %v", err)
		}
		if fr2.kind != fr.kind || fr2.id != fr.id || fr2.method != fr.method ||
			fr2.errText != fr.errText || !bytes.Equal(fr2.payload, fr.payload) {
			t.Fatalf("round trip changed frame:\n%+v\n%+v", fr, fr2)
		}
		// A span without a trace id is not a trace context; marshal is
		// free to drop it, so only compare when the frame is traced.
		if fr.trace != 0 && (fr2.trace != fr.trace || fr2.span != fr.span) {
			t.Fatalf("round trip dropped trace context:\n%+v\n%+v", fr, fr2)
		}
		// Likewise a zero correlation ID means uncorrelated; compare
		// only when the frame carried one.
		if fr.corr != 0 && fr2.corr != fr.corr {
			t.Fatalf("round trip dropped correlation ID:\n%+v\n%+v", fr, fr2)
		}
	})
}
