package transport

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the frame decoder. All
// three header versions are seeded: v1 (untraced), v2 (16-byte trace
// context between the id and the name) and v3 (8-byte correlation ID
// then the trace context). Anything that decodes must survive a
// marshal/unmarshal round trip unchanged.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range []*frame{
		{kind: kindRequest, id: 1, method: "GetDoc", payload: []byte("atm-course")},
		{kind: kindResponse, id: 1, payload: []byte{1, 2, 3}},
		{kind: kindResponse, id: 7, errText: "transport: unknown method"},
		{kind: kindRequest, id: 9, trace: 0xdeadbeef, span: 0x42, method: "Search", payload: []byte("broadband")},
		{kind: kindResponse, id: 9, trace: 0xdeadbeef, span: 0x43},
		{kind: kindRequest, id: 11, corr: 11, method: "db.GetContent", payload: []byte("store/v.mpg")},
		{kind: kindRequest, id: 12, corr: 12, trace: 0xfeed, span: 0x7, method: "db.GetContent"},
		{kind: kindResponse, id: 12, corr: 12, trace: 0xfeed, span: 0x7, payload: []byte{9}},
		{kind: kindResponse, id: 13, corr: 13, errText: "transport: unknown method"},
		// GetContentStream traffic: a chunk request and chunk responses,
		// including the shapes the stream checks exist for — one
		// truncated mid-chunk, one with an out-of-order index, one
		// zero-length terminal chunk.
		{kind: kindRequest, id: 14, corr: 14, method: MethodGetContentStream, payload: mustStreamReq("store/v.mpg", 0, 262144)},
		{kind: kindResponse, id: 14, corr: 14, payload: mustChunk(&ContentChunk{Ref: "store/v.mpg", Coding: "MPEG", Total: 8, Data: []byte("01234567"), Last: true, Keywords: []string{"video"}})},
		{kind: kindResponse, id: 15, corr: 15, payload: mustChunk(&ContentChunk{Ref: "store/v.mpg", Coding: "MPEG", Total: 1 << 20, Offset: 262144, Index: 1, Data: []byte("partial")})[:20]},
		{kind: kindResponse, id: 16, corr: 16, payload: mustChunk(&ContentChunk{Ref: "store/v.mpg", Coding: "MPEG", Total: 1 << 20, Offset: 262144, Index: 7, Data: []byte("ooo")})},
		{kind: kindResponse, id: 17, corr: 17, payload: mustChunk(&ContentChunk{Ref: "store/empty", Coding: "MPEG", Total: 0, Last: true})},
	} {
		f.Add(fr.marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{byte(kindRequestV2), 0, 0, 0})
	f.Add([]byte{byte(kindRequestV3), 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := unmarshalFrame(data)
		if err != nil {
			return
		}
		fr2, err := unmarshalFrame(fr.marshal())
		if err != nil {
			t.Fatalf("decoded frame failed to re-decode: %v", err)
		}
		if fr2.kind != fr.kind || fr2.id != fr.id || fr2.method != fr.method ||
			fr2.errText != fr.errText || !bytes.Equal(fr2.payload, fr.payload) {
			t.Fatalf("round trip changed frame:\n%+v\n%+v", fr, fr2)
		}
		// A span without a trace id is not a trace context; marshal is
		// free to drop it, so only compare when the frame is traced.
		if fr.trace != 0 && (fr2.trace != fr.trace || fr2.span != fr.span) {
			t.Fatalf("round trip dropped trace context:\n%+v\n%+v", fr, fr2)
		}
		// Likewise a zero correlation ID means uncorrelated; compare
		// only when the frame carried one.
		if fr.corr != 0 && fr2.corr != fr.corr {
			t.Fatalf("round trip dropped correlation ID:\n%+v\n%+v", fr, fr2)
		}
	})
}

// mustStreamReq / mustChunk build fuzz seeds; the inputs are static and
// known-good, so an encode failure is a seed bug worth a panic.
func mustStreamReq(ref string, offset uint64, maxBytes uint32) []byte {
	b, err := EncodeGetContentStream(ref, offset, maxBytes)
	if err != nil {
		panic(err)
	}
	return b
}

func mustChunk(c *ContentChunk) []byte {
	b, err := AppendContentChunk(nil, c)
	if err != nil {
		panic(err)
	}
	return b
}

// FuzzContentChunkDecode throws arbitrary bytes at the chunk and
// stream-request decoders. Anything that decodes must re-encode and
// re-decode to the same chunk — and never alias beyond the payload.
func FuzzContentChunkDecode(f *testing.F) {
	f.Add(mustStreamReq("store/v.mpg", 1<<20, 262144))
	f.Add(mustChunk(&ContentChunk{Ref: "store/v.mpg", Coding: "MPEG", Total: 8, Data: []byte("01234567"), Last: true, Keywords: []string{"video", "atm/demo"}}))
	f.Add(mustChunk(&ContentChunk{Ref: "r", Total: 0, Last: true}))
	f.Add(mustChunk(&ContentChunk{Ref: "store/v.mpg", Coding: "MPEG", Total: 1 << 20, Offset: 262144, Index: 1, Data: []byte("mid")})[:12])
	f.Fuzz(func(t *testing.T, data []byte) {
		if ref, off, maxBytes, err := DecodeGetContentStream(data); err == nil {
			re := mustStreamReq(ref, off, maxBytes)
			if !bytes.Equal(re, data) {
				t.Fatalf("stream request round trip changed: %x -> %x", data, re)
			}
		}
		c, err := DecodeContentChunk(data)
		if err != nil {
			return
		}
		re, err := AppendContentChunk(nil, c)
		if err != nil {
			t.Fatalf("decoded chunk failed to re-encode: %v", err)
		}
		c2, err := DecodeContentChunk(re)
		if err != nil {
			t.Fatalf("re-encoded chunk failed to decode: %v", err)
		}
		if c2.Ref != c.Ref || c2.Coding != c.Coding || c2.Index != c.Index ||
			c2.Offset != c.Offset || c2.Total != c.Total || c2.Last != c.Last ||
			!bytes.Equal(c2.Data, c.Data) {
			t.Fatalf("chunk round trip changed:\n%+v\n%+v", c, c2)
		}
	})
}
