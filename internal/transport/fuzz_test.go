package transport

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the frame decoder. Both
// header versions are seeded: v1 (untraced) and v2 (16-byte trace
// context between the id and the name). Anything that decodes must
// survive a marshal/unmarshal round trip unchanged.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range []*frame{
		{kind: kindRequest, id: 1, method: "GetDoc", payload: []byte("atm-course")},
		{kind: kindResponse, id: 1, payload: []byte{1, 2, 3}},
		{kind: kindResponse, id: 7, errText: "transport: unknown method"},
		{kind: kindRequest, id: 9, trace: 0xdeadbeef, span: 0x42, method: "Search", payload: []byte("broadband")},
		{kind: kindResponse, id: 9, trace: 0xdeadbeef, span: 0x43},
	} {
		f.Add(fr.marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{byte(kindRequestV2), 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := unmarshalFrame(data)
		if err != nil {
			return
		}
		fr2, err := unmarshalFrame(fr.marshal())
		if err != nil {
			t.Fatalf("decoded frame failed to re-decode: %v", err)
		}
		if fr2.kind != fr.kind || fr2.id != fr.id || fr2.method != fr.method ||
			fr2.errText != fr.errText || !bytes.Equal(fr2.payload, fr.payload) {
			t.Fatalf("round trip changed frame:\n%+v\n%+v", fr, fr2)
		}
		// A span without a trace id is not a trace context; marshal is
		// free to drop it, so only compare when the frame is traced.
		if fr.trace != 0 && (fr2.trace != fr.trace || fr2.span != fr.span) {
			t.Fatalf("round trip dropped trace context:\n%+v\n%+v", fr, fr2)
		}
	})
}
