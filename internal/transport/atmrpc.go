package transport

import (
	"fmt"
	"time"

	"mits/internal/atm"
	"mits/internal/obs"
	"mits/internal/sim"
)

// obsATMBytes counts framed bytes moved over ATM sessions in either
// direction (cached: one atomic add per message).
var obsATMBytes = obs.GetCounter("transport_atm_bytes_total")

// ATMSession is the request/response protocol carried over a pair of
// simulated ATM virtual connections — one per direction. It is the
// experiment-path twin of TCPClient/TCPServer: because the ATM network
// runs on virtual time, calls are asynchronous (Go + callback) and the
// caller advances the network's clock.
type ATMSession struct {
	net     *atm.Network
	c2s     *atm.Connection
	s2c     *atm.Connection
	handler Handler
	// ServiceTime models server request-processing latency (database
	// lookup, disk) before the response leaves.
	ServiceTime time.Duration
	// timeout and fault come from ATMSessionOptions; see there.
	timeout time.Duration
	fault   func(method string) (time.Duration, bool, error)

	nextID   uint64
	pending  map[uint64]func(payload []byte, err error)
	reqBytes int64
	rspBytes int64

	// Message reassembly buffers, one per direction: frames larger than
	// an AAL5 PDU are chunked (chunkPayload bytes per PDU) and restored
	// here.
	reqBuf []byte
	rspBuf []byte
}

// chunkPayload is the message chunk carried per AAL5 PDU, leaving room
// for the one-byte chunk flags under the 64 KB PDU limit.
const chunkPayload = 60000

// Chunk flag bits.
const (
	chunkFirst = 1 << 0
	chunkLast  = 1 << 1
)

// sendChunked splits a message into flagged PDUs.
func sendChunked(conn *atm.Connection, body []byte) error {
	for off := 0; ; off += chunkPayload {
		end := off + chunkPayload
		var flags byte
		if off == 0 {
			flags |= chunkFirst
		}
		if end >= len(body) {
			end = len(body)
			flags |= chunkLast
		}
		pdu := make([]byte, 1+end-off)
		pdu[0] = flags
		copy(pdu[1:], body[off:end])
		if err := conn.Send(pdu); err != nil {
			return err
		}
		if flags&chunkLast != 0 {
			return nil
		}
	}
}

// accumulate merges a chunk into buf, returning the completed message
// when the last chunk lands.
func accumulate(buf *[]byte, pdu []byte) ([]byte, bool) {
	if len(pdu) < 1 {
		return nil, false
	}
	flags := pdu[0]
	if flags&chunkFirst != 0 {
		*buf = (*buf)[:0]
	}
	*buf = append(*buf, pdu[1:]...)
	if flags&chunkLast == 0 {
		return nil, false
	}
	msg := make([]byte, len(*buf))
	copy(msg, *buf)
	*buf = (*buf)[:0]
	return msg, true
}

// ATMSessionOptions configures OpenATMSession.
type ATMSessionOptions struct {
	// Contract applies to both directions; zero value means a 10 Mb/s
	// nrt-VBR-free default of UBR at link speed.
	Contract atm.TrafficDescriptor
	// ServiceTime is the per-request server processing time.
	ServiceTime time.Duration
	// Timeout bounds each call on the virtual clock: if the response
	// has not arrived within it, the callback fires with a CallError
	// wrapping ErrCallTimeout and the pending entry is dropped. Lost
	// requests (cells dropped, faults injected) therefore always
	// complete instead of hanging the session.
	Timeout time.Duration
	// Fault, when set, is consulted before each request is sent — the
	// chaos harness hook (see internal/faults.Injector.RPC): an extra
	// virtual-time delay, a silently dropped request (only Timeout can
	// then complete the call), or an injected error delivered to the
	// callback after the delay.
	Fault func(method string) (delay time.Duration, drop bool, err error)
}

// OpenATMSession wires a client host to a server host running handler.
func OpenATMSession(n *atm.Network, client, server *atm.Host, h Handler, opts ATMSessionOptions) (*ATMSession, error) {
	td := opts.Contract
	if td.PCR == 0 {
		td = atm.UBRContract(100e6)
	}
	s := &ATMSession{
		net:         n,
		handler:     h,
		ServiceTime: opts.ServiceTime,
		timeout:     opts.Timeout,
		fault:       opts.Fault,
		pending:     make(map[uint64]func([]byte, error)),
	}
	var err error
	s.c2s, err = n.Open(client, server, td, atm.OpenOptions{Deliver: s.onRequest})
	if err != nil {
		return nil, fmt.Errorf("transport: open request VC: %w", err)
	}
	s.s2c, err = n.Open(server, client, td, atm.OpenOptions{Deliver: s.onResponse})
	if err != nil {
		s.c2s.Close()
		return nil, fmt.Errorf("transport: open response VC: %w", err)
	}
	return s, nil
}

// Go issues a request; cb runs (in virtual time) when the response
// arrives. Run the network clock to make progress. Like the TCP
// client, each request opens a trace whose IDs ride the frame header;
// the RPC latency histogram is measured on the network's virtual
// clock, which is the latency the experiments reason about.
func (s *ATMSession) Go(method string, payload []byte, cb func(payload []byte, err error)) error {
	s.nextID++
	sp := obs.StartSpan(method, "client")
	issued := s.net.Clock().Now()
	f := &frame{
		kind: kindRequest, id: s.nextID, method: method, payload: payload,
		trace: uint64(sp.Trace), span: uint64(sp.ID),
	}
	s.pending[f.id] = func(p []byte, err error) {
		sp.End(err)
		obs.Observe("transport_atm_rpc_latency_ns", s.net.Clock().Now().Sub(issued), "method", method)
		obs.GetCounter("transport_atm_rpcs_total", "method", method).Inc()
		if err != nil {
			obs.GetCounter("transport_atm_errors_total", "method", method).Inc()
		}
		cb(p, err)
	}
	if s.timeout > 0 {
		id := f.id
		s.net.Clock().After(s.timeout, func(sim.Time) {
			s.complete(id, nil, &CallError{Method: method, Attempts: 1, Err: ErrCallTimeout})
		})
	}
	var delay time.Duration
	if s.fault != nil {
		fdelay, drop, ferr := s.fault(method)
		delay = fdelay
		if drop {
			// Request lost on the wire: nothing is sent, and only the
			// timeout (if armed) completes the call.
			return nil
		}
		if ferr != nil {
			id := f.id
			s.net.Clock().After(delay, func(sim.Time) {
				s.complete(id, nil, &CallError{Method: method, Attempts: 1, Err: ferr})
			})
			return nil
		}
	}
	body := f.marshal()
	s.reqBytes += int64(len(body))
	obsATMBytes.Add(int64(len(body)))
	if delay > 0 {
		s.net.Clock().After(delay, func(sim.Time) {
			sendChunked(s.c2s, body) //mits:allow errdrop delayed send on a possibly-closed session
		})
		return nil
	}
	return sendChunked(s.c2s, body)
}

// complete fires and removes a pending callback; completions after the
// call already finished (a response racing its own timeout) are no-ops.
func (s *ATMSession) complete(id uint64, payload []byte, err error) {
	cb, ok := s.pending[id]
	if !ok {
		return
	}
	delete(s.pending, id)
	cb(payload, err)
}

func (s *ATMSession) onRequest(pdu []byte, _, _ sim.Time) {
	msg, done := accumulate(&s.reqBuf, pdu)
	if !done {
		return
	}
	req, err := unmarshalFrame(msg)
	if err != nil || req.kind != kindRequest {
		return // corrupt request: the client will never hear back
	}
	respond := func(sim.Time) {
		var sp *obs.Span
		if req.trace != 0 {
			sp = obs.ContinueSpan(req.method, "server", obs.TraceID(req.trace), obs.SpanID(req.span))
		}
		payload, herr := s.handler.Handle(req.method, req.payload)
		sp.End(herr)
		resp := &frame{kind: kindResponse, id: req.id, trace: req.trace, span: req.span, payload: payload}
		if herr != nil {
			resp.errText = herr.Error()
			resp.payload = nil
		}
		body := resp.marshal()
		s.rspBytes += int64(len(body))
		obsATMBytes.Add(int64(len(body)))
		sendChunked(s.s2c, body) //mits:allow errdrop closed session drops responses
	}
	if s.ServiceTime > 0 {
		s.net.Clock().After(s.ServiceTime, respond)
	} else {
		respond(s.net.Clock().Now())
	}
}

func (s *ATMSession) onResponse(pdu []byte, _, _ sim.Time) {
	msg, done := accumulate(&s.rspBuf, pdu)
	if !done {
		return
	}
	resp, err := unmarshalFrame(msg)
	if err != nil || resp.kind != kindResponse {
		return
	}
	if resp.errText != "" {
		s.complete(resp.id, nil, &RemoteError{Text: resp.errText})
		return
	}
	s.complete(resp.id, resp.payload, nil)
}

// Pending reports requests still awaiting a response.
func (s *ATMSession) Pending() int { return len(s.pending) }

// Traffic reports bytes moved in each direction (payload framing
// included, ATM overhead excluded).
func (s *ATMSession) Traffic() (request, response int64) { return s.reqBytes, s.rspBytes }

// Metrics exposes the underlying connections' metrics (request
// direction, response direction).
func (s *ATMSession) Metrics() (c2s, s2c *atm.ConnMetrics) {
	return &s.c2s.Metrics, &s.s2c.Metrics
}

// Close tears down both virtual connections.
func (s *ATMSession) Close() {
	s.c2s.Close()
	s.s2c.Close()
}

// CallOver runs a synchronous call over the session by driving the
// network clock until the response lands — a convenience for tests and
// sequential experiment scripts.
func (s *ATMSession) CallOver(method string, payload []byte) ([]byte, error) {
	var out []byte
	var rerr error
	done := false
	if err := s.Go(method, payload, func(p []byte, err error) {
		out, rerr, done = p, err, true
	}); err != nil {
		return nil, err
	}
	clock := s.net.Clock()
	for !done && clock.Step() {
	}
	if !done {
		return nil, fmt.Errorf("transport: ATM call %s never completed (cells lost?)", method)
	}
	return out, rerr
}
