package transport

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mits/internal/cache"
)

// countingClient wraps a Client and counts upstream calls per method.
type countingClient struct {
	Client
	calls atomic.Int64
}

func (c *countingClient) Call(method string, payload []byte) ([]byte, error) {
	if method == MethodGetContent {
		c.calls.Add(1)
	}
	return c.Client.Call(method, payload)
}

// TestDBClientContentCacheHitAvoidsUpstream: the second GetContent for
// a ref is served locally, and FetchContent (the engine's resolver
// path) shares the same cache.
func TestDBClientContentCacheHitAvoidsUpstream(t *testing.T) {
	store := testStore(t)
	mux := NewMux()
	RegisterStore(mux, store)
	cc := &countingClient{Client: Loopback{H: mux}}
	db := DBClient{C: cc}.WithContentCache(cache.New("t-db", 1<<20))

	rec1, err := db.GetContent("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := db.GetContent("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.FetchContent("store/v.mpg"); err != nil {
		t.Fatal(err)
	}
	if n := cc.calls.Load(); n != 1 {
		t.Fatalf("upstream GetContent ran %d times, want 1 (cache miss only)", n)
	}
	if !bytes.Equal(rec1.Data, rec2.Data) {
		t.Fatal("hit returned different bytes than the miss")
	}

	// Immutable-bytes handoff: hits share one record (zero copies on
	// the hot path), so repeat hits must return the same backing data,
	// and a caller that needs a private mutable copy goes through
	// CloneContentRecord instead of mutating the shared one.
	rec3, err := db.GetContent("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	if &rec2.Data[0] != &rec3.Data[0] {
		t.Fatal("cache hits did not share the record: hot path is copying")
	}
	cp := CloneContentRecord(rec3)
	if &cp.Data[0] == &rec3.Data[0] {
		t.Fatal("CloneContentRecord aliased the shared entry's data")
	}
	cp.Data[0] = 'X'
	if rec3.Data[0] == 'X' {
		t.Fatal("clone mutation reached the shared cache entry")
	}
}

// TestDBClientContentCacheSingleflight: a stampede of concurrent
// fetches for one cold ref issues a single upstream call.
func TestDBClientContentCacheSingleflight(t *testing.T) {
	store := testStore(t)
	mux := NewMux()
	RegisterStore(mux, store)
	gate := make(chan struct{})
	gated := HandlerFunc(func(method string, payload []byte) ([]byte, error) {
		if method == MethodGetContent {
			<-gate // hold the first fetch open until the stampede queues
		}
		return mux.Handle(method, payload)
	})
	cc := &countingClient{Client: Loopback{H: gated}}
	db := DBClient{C: cc}.WithContentCache(cache.New("t-flight-db", 1<<20))

	const waiters = 16
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec, err := db.GetContent("store/v.mpg")
			if err != nil {
				t.Errorf("stampede fetch: %v", err)
			} else if len(rec.Data) != 100000 {
				t.Errorf("stampede fetch returned %d bytes", len(rec.Data))
			}
		}()
	}
	waitFor(t, func() bool { return cc.calls.Load() == 1 })
	close(gate)
	wg.Wait()
	if n := cc.calls.Load(); n != 1 {
		t.Fatalf("stampede issued %d upstream calls, want 1", n)
	}
}

// TestDBClientContentCacheErrorNotCached: a miss that fails upstream
// is retried by the next call, and errors keep their types through the
// cache.
func TestDBClientContentCacheErrorNotCached(t *testing.T) {
	store := testStore(t)
	mux := NewMux()
	RegisterStore(mux, store)
	var failing atomic.Bool
	failing.Store(true)
	flaky := HandlerFunc(func(method string, payload []byte) ([]byte, error) {
		if method == MethodGetContent && failing.Load() {
			return nil, errors.New("store offline")
		}
		return mux.Handle(method, payload)
	})
	db := DBClient{C: Loopback{H: flaky}}.WithContentCache(cache.New("t-err-db", 1<<20))

	if _, err := db.GetContent("store/v.mpg"); err == nil {
		t.Fatal("failed fetch reported success")
	}
	failing.Store(false)
	rec, err := db.GetContent("store/v.mpg")
	if err != nil {
		t.Fatalf("fetch after recovery: %v", err)
	}
	if len(rec.Data) != 100000 {
		t.Fatalf("recovered fetch returned %d bytes", len(rec.Data))
	}
}
