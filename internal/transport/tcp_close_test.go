package transport

import (
	"sync"
	"testing"

	"mits/internal/lint/leaktest"
)

func echoHandler() Handler {
	return HandlerFunc(func(method string, payload []byte) ([]byte, error) {
		return payload, nil
	})
}

// TestTCPServerCloseIdempotent checks that Close can be called any
// number of times, concurrently, and that every call drains and
// returns the first call's listener error.
func TestTCPServerCloseIdempotent(t *testing.T) {
	leaktest.Check(t)
	s := NewTCPServer(echoHandler())
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Errorf("Close after close: %v", err)
	}
}

// TestTCPServerListenCloseRace is the regression test for the
// wg.Add-after-unlock ordering bug: Listen used to register the accept
// loop with the WaitGroup only after releasing the mutex, so a
// concurrent Close could wg.Wait past a zero counter and return while
// the accept loop was still starting. Run with -race.
func TestTCPServerListenCloseRace(t *testing.T) {
	leaktest.Check(t)
	for i := 0; i < 100; i++ {
		s := NewTCPServer(echoHandler())
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Either outcome is fine: bound first, or rejected by Close.
			if _, err := s.Listen("127.0.0.1:0"); err != nil {
				return
			}
		}()
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		wg.Wait()
		// After both return the server must be fully drained and closed.
		if _, err := s.Listen("127.0.0.1:0"); err == nil {
			t.Fatal("Listen succeeded on a closed server")
		}
	}
}

// TestTCPServerCloseDrainsConnections checks Close unblocks serving
// goroutines that are parked in readFrame on live client connections.
func TestTCPServerCloseDrainsConnections(t *testing.T) {
	leaktest.Check(t)
	s := NewTCPServer(echoHandler())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*TCPClient, 3)
	for i := range clients {
		c, err := DialTCP(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		if got, err := c.Call("echo", []byte("ping")); err != nil || string(got) != "ping" {
			t.Fatalf("Call = %q, %v", got, err)
		}
	}
	// The three serveConn goroutines are now blocked reading the next
	// request; Close must terminate them all or wg.Wait hangs the test.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		if _, err := c.Call("echo", nil); err == nil {
			t.Error("Call succeeded against a closed server")
		}
		if err := c.Close(); err != nil {
			t.Errorf("client Close: %v", err)
		}
	}
}

// TestTCPClientCloseIdempotent checks repeated and concurrent client
// closes all return the first close's result.
func TestTCPClientCloseIdempotent(t *testing.T) {
	leaktest.Check(t)
	s := NewTCPServer(echoHandler())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Errorf("Close after close: %v", err)
	}
}
