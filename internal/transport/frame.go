// Package transport implements the client–server communication model of
// Fig 3.5: navigator clients issue requests ("a database server waits
// and listens for a service request from a client"), the server
// dispatches them to the courseware database and streams results back.
//
// The same framed request/response protocol runs over two carriers: a
// real TCP connection (the deployment path, used by cmd/mitsd and
// cmd/navigator) and a pair of simulated ATM virtual connections (the
// experiment path, where delivery timing matters and everything runs on
// virtual time).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mits/internal/obs"
)

// MaxFrame bounds a single message; large content is chunked by the
// database API layer.
const MaxFrame = 16 << 20

// frameKind distinguishes requests from responses on a duplex carrier,
// and doubles as the header version: the v1 kinds carry no trace
// fields, the v2 kinds insert a 16-byte trace context (trace ID + span
// ID) between the frame id and the name, and the v3 kinds insert an
// 8-byte request-correlation ID followed by the 16-byte trace context
// (zero trace = untraced). The correlation ID is what lets one
// connection carry many in-flight calls: the multiplexed client keys
// its pending-call map on it and the server echoes it, so responses
// may complete out of order. Compatibility is decode-side only:
// decoders accept all three layouts, so persisted frames keep
// decoding and a v3 client still matches v1/v2 responses (by frame
// id) from a server that does not echo correlation IDs. The converse
// does not hold — the multiplexed client correlates every request and
// therefore always emits v3, which a pre-v3 decoder rejects as a bad
// frame; in a rolling upgrade, servers must understand v3 before
// clients start speaking it. Encoders emit the lowest version that
// carries the data (v3 exactly when a correlation ID is attached, v2
// when only a trace is), which keeps untraced uncorrelated wire bytes
// identical to the v1 format.
type frameKind byte

const (
	kindRequest frameKind = iota + 1
	kindResponse
	kindRequestV2
	kindResponseV2
	kindRequestV3
	kindResponseV3
)

// frame is the wire unit: id pairs responses to requests, method names
// the operation (requests) and errText carries failure (responses).
// trace/span carry the obs trace context (zero = untraced); corr is
// the v3 request-correlation ID (zero = uncorrelated, i.e. the peer
// runs one call at a time).
type frame struct {
	kind    frameKind
	id      uint64
	corr    uint64
	trace   uint64
	span    uint64
	method  string // requests
	errText string // responses
	payload []byte

	// buf, when non-nil, is the pooled backing buffer this frame was
	// decoded from; releaseFrame returns it for reuse. The server's
	// request path recycles it after the response is encoded; the
	// client's response path recycles it only through the pooled call
	// API's release callback (a plain Call's payload is caller-owned
	// and falls to the GC).
	buf []byte
}

// wireSize reports the marshalled body length, so writers can size a
// pooled buffer before encoding.
func (f *frame) wireSize() int {
	name := f.method
	if f.kind == kindResponse {
		name = f.errText
	}
	size := 1 + 8 + 4 + len(name) + 4 + len(f.payload)
	switch {
	case f.corr != 0:
		size += 8 + 16 // correlation ID + trace context, always present in v3
	case f.trace != 0:
		size += 16
	}
	return size
}

// appendTo encodes the frame body (without the outer length prefix TCP
// adds) onto buf, returning the extended slice.
func (f *frame) appendTo(buf []byte) []byte {
	name := f.method
	if f.kind == kindResponse {
		name = f.errText
	}
	kind := f.kind
	switch {
	case f.corr != 0:
		kind += kindRequestV3 - kindRequest
	case f.trace != 0:
		kind += kindRequestV2 - kindRequest
	}
	buf = append(buf, byte(kind))
	buf = binary.BigEndian.AppendUint64(buf, f.id)
	if f.corr != 0 {
		buf = binary.BigEndian.AppendUint64(buf, f.corr)
	}
	if f.corr != 0 || f.trace != 0 {
		buf = binary.BigEndian.AppendUint64(buf, f.trace)
		buf = binary.BigEndian.AppendUint64(buf, f.span)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(name)))
	buf = append(buf, name...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.payload)))
	buf = append(buf, f.payload...)
	return buf
}

// marshal encodes the frame body into a fresh allocation (the ATM
// carrier and tests; the TCP path encodes into pooled buffers via
// wireSize/appendTo).
func (f *frame) marshal() []byte {
	return f.appendTo(make([]byte, 0, f.wireSize()))
}

// ErrBadFrame marks a wire frame that failed to decode — a corrupted
// or desynchronized peer. It is typed so clients can distinguish
// malformed traffic from timeouts and hangups.
var ErrBadFrame = errors.New("transport: malformed frame")

// errBadFrame is the internal alias predating the export.
var errBadFrame = ErrBadFrame

func unmarshalFrame(data []byte) (*frame, error) {
	if len(data) < 1+8+4 {
		return nil, errBadFrame
	}
	f := &frame{kind: frameKind(data[0]), id: binary.BigEndian.Uint64(data[1:])}
	off := 9
	switch f.kind {
	case kindRequest, kindResponse:
		// v1: no trace context.
	case kindRequestV2, kindResponseV2:
		if len(data) < 1+8+16+4 {
			return nil, errBadFrame
		}
		f.trace = binary.BigEndian.Uint64(data[off:])
		f.span = binary.BigEndian.Uint64(data[off+8:])
		f.kind -= kindRequestV2 - kindRequest
		off += 16
	case kindRequestV3, kindResponseV3:
		if len(data) < 1+8+8+16+4 {
			return nil, errBadFrame
		}
		f.corr = binary.BigEndian.Uint64(data[off:])
		f.trace = binary.BigEndian.Uint64(data[off+8:])
		f.span = binary.BigEndian.Uint64(data[off+16:])
		f.kind -= kindRequestV3 - kindRequest
		off += 24
	default:
		return nil, fmt.Errorf("%w: kind %d", errBadFrame, f.kind)
	}
	nameLen := int(binary.BigEndian.Uint32(data[off:]))
	off += 4
	if nameLen < 0 || off+nameLen+4 > len(data) {
		return nil, errBadFrame
	}
	name := string(data[off : off+nameLen])
	off += nameLen
	payLen := int(binary.BigEndian.Uint32(data[off:]))
	off += 4
	if payLen < 0 || off+payLen != len(data) {
		return nil, errBadFrame
	}
	if f.kind == kindRequest {
		f.method = name
	} else {
		f.errText = name
	}
	if payLen > 0 {
		f.payload = data[off : off+payLen]
	}
	return f, nil
}

// Handler processes one request and returns the response payload. The
// request payload is only valid until Handle returns (the TCP server
// recycles its backing buffer afterwards); a handler that needs the
// bytes later must copy them. Returning the payload itself (or a slice
// of it) as the response is fine — the buffer is released only after
// the response is written.
type Handler interface {
	Handle(method string, payload []byte) ([]byte, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(method string, payload []byte) ([]byte, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(method string, payload []byte) ([]byte, error) {
	return f(method, payload)
}

// CtxHandler is the trace-aware handler contract: HandleCtx receives
// the span context of the server span opened for the request (zero
// when the request is untraced), so nested work — an internal span, a
// further RPC to another site — lands in the same trace. The TCP
// server and the loopback carrier probe for it once and fall back to
// Handler when absent, so trace-blind handlers keep working unchanged.
type CtxHandler interface {
	HandleCtx(sc obs.SpanContext, method string, payload []byte) ([]byte, error)
}

// CtxHandlerFunc adapts a function to CtxHandler.
type CtxHandlerFunc func(sc obs.SpanContext, method string, payload []byte) ([]byte, error)

// HandleCtx implements CtxHandler.
func (f CtxHandlerFunc) HandleCtx(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	return f(sc, method, payload)
}

// ErrUnknownMethod is returned by Mux for unregistered methods.
var ErrUnknownMethod = errors.New("transport: unknown method")

// Mux dispatches requests by method name. The zero value is unusable;
// create with NewMux. Registration happens at server start-up; serving
// is concurrent-safe because the map is read-only afterwards. Routes
// are context-aware internally; Register wraps a trace-blind handler,
// RegisterCtx mounts one that threads the span context onward.
type Mux struct {
	routes map[string]CtxHandlerFunc
}

// NewMux returns an empty mux.
func NewMux() *Mux { return &Mux{routes: make(map[string]CtxHandlerFunc)} }

// Register adds a method handler; re-registering a method panics (it is
// always a wiring bug).
func (m *Mux) Register(method string, h HandlerFunc) {
	m.RegisterCtx(method, func(_ obs.SpanContext, method string, payload []byte) ([]byte, error) {
		return h(method, payload)
	})
}

// RegisterCtx adds a trace-aware method handler.
func (m *Mux) RegisterCtx(method string, h CtxHandlerFunc) {
	if _, dup := m.routes[method]; dup {
		panic("transport: duplicate method " + method)
	}
	m.routes[method] = h
}

// Handle implements Handler.
func (m *Mux) Handle(method string, payload []byte) ([]byte, error) {
	return m.HandleCtx(obs.SpanContext{}, method, payload)
}

// HandleCtx implements CtxHandler.
func (m *Mux) HandleCtx(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	h, ok := m.routes[method]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMethod, method)
	}
	return h(sc, method, payload)
}

// Client is a synchronous request issuer (TCP and loopback carriers).
type Client interface {
	Call(method string, payload []byte) ([]byte, error)
	Close() error
}

// TraceCaller is the client-side half of trace propagation: a client
// that can issue a call whose client span continues an existing trace
// rather than opening a fresh one. All carriers in this package
// implement it; the package-level CallInTrace probes for it so callers
// degrade gracefully over a plain Client.
type TraceCaller interface {
	CallInTrace(sc obs.SpanContext, method string, payload []byte) ([]byte, error)
}

// CallInTrace issues a call continuing the trace in sc when the client
// supports it, falling back to an ordinary (fresh-trace or untraced)
// Call when it does not. A zero sc behaves exactly like Call on every
// carrier.
func CallInTrace(c Client, sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	if tc, ok := c.(TraceCaller); ok {
		return tc.CallInTrace(sc, method, payload)
	}
	return c.Call(method, payload)
}

// PooledTraceCaller is the optional client interface of the
// allocation-free decode path: the returned payload may be backed by a
// pooled buffer that release (when non-nil) recycles. The contract is
// strict — after release the payload and anything aliasing it are
// invalid, and release must be called at most once — but opting out is
// always safe: drop release and the buffer falls to the GC like any
// other allocation.
type PooledTraceCaller interface {
	CallInTracePooled(sc obs.SpanContext, method string, payload []byte) ([]byte, func(), error)
}

// CallInTracePooled issues a call through the pooled decode path when
// the client supports it, degrading to CallInTrace (nil release, plain
// heap payload) when it does not — resilience wrappers and test fakes
// keep working unchanged, they just skip the recycling.
func CallInTracePooled(c Client, sc obs.SpanContext, method string, payload []byte) ([]byte, func(), error) {
	if pc, ok := c.(PooledTraceCaller); ok {
		return pc.CallInTracePooled(sc, method, payload)
	}
	out, err := CallInTrace(c, sc, method, payload)
	return out, nil, err
}

// Loopback adapts a Handler into an in-process Client, used by unit
// tests and by co-located sites (the author site editing against a
// local database).
type Loopback struct{ H Handler }

// Call implements Client.
func (l Loopback) Call(method string, payload []byte) ([]byte, error) {
	return l.H.Handle(method, payload)
}

// CallInTrace implements TraceCaller: the context reaches a trace-aware
// handler directly — no wire hop, no client/server span pair, matching
// the carrier's in-process nature.
func (l Loopback) CallInTrace(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	if ch, ok := l.H.(CtxHandler); ok {
		return ch.HandleCtx(sc, method, payload)
	}
	return l.H.Handle(method, payload)
}

// Close implements Client.
func (l Loopback) Close() error { return nil }
