package courseware

import (
	"strings"
	"testing"

	"mits/internal/document"
)

func TestLogicalView(t *testing.T) {
	v := LogicalView(document.SampleATMCourse())
	for _, want := range []string{
		`course "ATM Technology"`,
		`section "Introduction"`,
		`scene "cells" (4 objects)`,
		"welcome-video",
		"store/atm/welcome.mpg",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("logical view missing %q:\n%s", want, v)
		}
	}
}

func TestLayoutView(t *testing.T) {
	doc := document.SampleATMCourse()
	s, _ := doc.Scene("cells")
	v := LayoutView(s)
	for _, want := range []string{"text1", "( 420,   0)", `channel "controls"`, "400x300"} {
		if !strings.Contains(v, want) {
			t.Errorf("layout view missing %q:\n%s", want, v)
		}
	}
}

func TestTimelineView(t *testing.T) {
	doc := document.SampleATMCourse()
	s, _ := doc.Scene("cells")
	v, err := TimelineView(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"time-line", "text1", "█", "image1", "20s+0s"} {
		if !strings.Contains(v, want) {
			t.Errorf("timeline view missing %q:\n%s", want, v)
		}
	}
	// An entry after an unknown-duration object renders as event-driven.
	open := &document.Scene{
		ID: "open",
		Objects: []document.SceneObject{
			{ID: "menu", Kind: document.ObjText, Text: "pick one"}, // no duration
			{ID: "next", Kind: document.ObjText, Text: "next"},
		},
		Timeline: []document.Placement{
			{Object: "menu", Kind: document.PlaceAt},
			{Object: "next", Kind: document.PlaceAfter, Ref: "menu"},
		},
	}
	ov, err := TimelineView(open)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ov, "(after menu finishes)") {
		t.Errorf("event-driven entry not rendered:\n%s", ov)
	}
	// A cyclic timeline is reported, not rendered.
	bad := &document.Scene{
		ID: "x",
		Objects: []document.SceneObject{
			{ID: "a", Kind: document.ObjText, Text: "a"},
			{ID: "b", Kind: document.ObjText, Text: "b"},
		},
		Timeline: []document.Placement{
			{Object: "a", Kind: document.PlaceWith, Ref: "b"},
			{Object: "b", Kind: document.PlaceWith, Ref: "a"},
		},
	}
	if _, err := TimelineView(bad); err == nil {
		t.Error("cyclic timeline rendered")
	}
}

func TestBehaviorView(t *testing.T) {
	doc := document.SampleATMCourse()
	s, _ := doc.Scene("switching")
	v := BehaviorView(s)
	for _, want := range []string{"condition set", "action set", "stopbtn clicked", "stop audio1,text2,anim1"} {
		if !strings.Contains(v, want) {
			t.Errorf("behavior view missing %q:\n%s", want, v)
		}
	}
}

func TestHypermediaViews(t *testing.T) {
	doc := document.SampleHyperCourse()
	pl := PageListView(doc)
	for _, want := range []string{"s1", "Section 1", "next1", `"Next Section"`} {
		if !strings.Contains(pl, want) {
			t.Errorf("page list missing %q:\n%s", want, pl)
		}
	}
	nav := NavigationView(doc, "s1")
	for _, want := range []string{"--[Next Section]--> s2", "--[protocol]--> glossary-protocol"} {
		if !strings.Contains(nav, want) {
			t.Errorf("navigation view missing %q:\n%s", want, nav)
		}
	}
	terminal := NavigationView(doc, "no-such-page")
	if !strings.Contains(terminal, "terminal") {
		t.Errorf("terminal page view %q", terminal)
	}
}
