package courseware

import (
	"fmt"
	"time"

	"mits/internal/document"
)

// Templates (§4.5.2) pre-package the frequently used courseware object
// classes: "a template for a video object can have parameters such as
// position, size, duration, playback speed, and links. Courseware
// authors just need to specify references to the media objects".

// VideoTemplate instantiates video scene objects with shared layout.
type VideoTemplate struct {
	At       document.Region
	Duration time.Duration
	Channel  string
}

// New fills the template with one media reference.
func (t VideoTemplate) New(id, mediaRef string) document.SceneObject {
	return document.SceneObject{
		ID: id, Kind: document.ObjVideo, Media: mediaRef,
		At: t.At, Duration: t.Duration, Channel: t.Channel,
	}
}

// AudioTemplate instantiates audio scene objects.
type AudioTemplate struct {
	Duration time.Duration
	Volume   int
	Channel  string
}

// New fills the template with one media reference.
func (t AudioTemplate) New(id, mediaRef string) document.SceneObject {
	return document.SceneObject{
		ID: id, Kind: document.ObjAudio, Media: mediaRef,
		Duration: t.Duration, Volume: t.Volume, Channel: t.Channel,
	}
}

// CaptionTemplate instantiates timed text captions.
type CaptionTemplate struct {
	At       document.Region
	Duration time.Duration
	Channel  string
}

// New fills the template with caption text.
func (t CaptionTemplate) New(id, text string) document.SceneObject {
	return document.SceneObject{
		ID: id, Kind: document.ObjText, Text: text,
		At: t.At, Duration: t.Duration, Channel: t.Channel,
	}
}

// QuizOption is one answer in a quiz template.
type QuizOption struct {
	Label    string
	Correct  bool
	Feedback string
}

// QuizScene builds a complete question scene: the question text, one
// button per option, and feedback text revealed by behaviors — the
// exercise feature of §5.2.1 realized as a template.
func QuizScene(id, question string, options []QuizOption) (*document.Scene, error) {
	if len(options) < 2 {
		return nil, fmt.Errorf("courseware: quiz %q needs at least 2 options", id)
	}
	s := &document.Scene{
		ID:    id,
		Title: "Exercise",
		Objects: []document.SceneObject{
			{ID: id + "-q", Kind: document.ObjText, Text: question,
				At: document.Region{W: 500, H: 60}, Channel: "stage"},
		},
		Timeline: []document.Placement{{Object: id + "-q", Kind: document.PlaceAt}},
	}
	for i, opt := range options {
		btn := fmt.Sprintf("%s-opt%d", id, i)
		fb := fmt.Sprintf("%s-fb%d", id, i)
		feedback := opt.Feedback
		if feedback == "" {
			if opt.Correct {
				feedback = "Correct!"
			} else {
				feedback = "Not quite — try again."
			}
		}
		s.Objects = append(s.Objects,
			document.SceneObject{ID: btn, Kind: document.ObjButton, Text: opt.Label,
				At: document.Region{Y: 80 + 40*i, W: 200, H: 30}, Channel: "controls"},
			document.SceneObject{ID: fb, Kind: document.ObjText, Text: feedback,
				At: document.Region{X: 220, Y: 80 + 40*i, W: 300, H: 30}, Channel: "stage"},
		)
		s.Behaviors = append(s.Behaviors, document.Behavior{
			Conditions: []document.BCondition{{Object: btn, Event: document.BEvClicked}},
			Actions:    []document.BAction{{Verb: document.BStart, Targets: []string{fb}}},
		})
	}
	return s, nil
}
