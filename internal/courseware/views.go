package courseware

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mits/internal/document"
	"mits/internal/mheg"
	"mits/internal/sched"
)

// The courseware editor presents a document through four views
// (§4.5.3): "a logical view, a layout view, a time-line view, as well
// as a behavior view". The GUI is out of scope; these functions render
// each view as text, which is what cmd/author prints and what an editor
// front end would populate widgets from. Hypermedia documents get the
// page list and navigation view of the same section.

// LogicalView renders the section/scene/object hierarchy (Fig 4.4a).
func LogicalView(doc *document.IMDoc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "course %q\n", doc.Title)
	var walk func(sec *document.Section, indent string)
	walk = func(sec *document.Section, indent string) {
		fmt.Fprintf(&b, "%s└─ section %q\n", indent, sec.Title)
		for _, sc := range sec.Scenes {
			fmt.Fprintf(&b, "%s   └─ scene %q (%d objects)\n", indent, sc.ID, len(sc.Objects))
			for _, o := range sc.Objects {
				detail := o.Media
				if detail == "" {
					detail = quoteShort(o.Text)
				}
				fmt.Fprintf(&b, "%s      └─ %-6s %-16s %s\n", indent, o.Kind, o.ID, detail)
			}
		}
		for _, sub := range sec.Subsections {
			walk(sub, indent+"   ")
		}
	}
	for _, sec := range doc.Sections {
		walk(sec, "")
	}
	return b.String()
}

func quoteShort(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) > 40 {
		s = s[:40] + "…"
	}
	if s == "" {
		return ""
	}
	return fmt.Sprintf("%q", s)
}

// LayoutView renders each object's spatial placement in a scene —
// the layout structure of §4.3.3.
func LayoutView(s *document.Scene) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scene %q layout (generic units)\n", s.ID)
	for _, o := range s.Objects {
		fmt.Fprintf(&b, "  %-16s %-6s at (%4d,%4d) size %4dx%-4d channel %q\n",
			o.ID, o.Kind, o.At.X, o.At.Y, o.At.W, o.At.H, o.Channel)
	}
	return b.String()
}

// TimelineView renders the resolved time-line structure of a scene as a
// text Gantt chart (Fig 4.4b). Event-driven entries show as "after X".
func TimelineView(s *document.Scene) (string, error) {
	ids := NewIDAllocator("view", 1)
	objIDs := make(map[string]mheg.ID, len(s.Objects))
	for _, o := range s.Objects {
		objIDs[o.ID] = ids.Next()
	}
	tl := sched.NewTimeline()
	for _, p := range s.Timeline {
		var err error
		o, _ := s.Object(p.Object)
		switch p.Kind {
		case document.PlaceAt:
			err = tl.At(objIDs[p.Object], p.Offset, o.Duration)
		case document.PlaceWith:
			err = tl.With(objIDs[p.Object], objIDs[p.Ref], p.Offset, o.Duration)
		case document.PlaceAfter:
			err = tl.After(objIDs[p.Object], objIDs[p.Ref], p.Offset, o.Duration)
		}
		if err != nil {
			return "", err
		}
	}
	if err := tl.Resolve(); err != nil {
		return "", err
	}
	span := tl.Span()
	if span == 0 {
		span = time.Second
	}
	const cols = 48
	var rows []string
	for _, p := range s.Timeline {
		o, _ := s.Object(p.Object)
		start, ok := tl.Start(objIDs[p.Object])
		if !ok {
			rows = append(rows, fmt.Sprintf("  %-16s (after %s finishes)", p.Object, p.Ref))
			continue
		}
		from := int(int64(cols) * int64(start) / int64(span))
		width := int(int64(cols) * int64(o.Duration) / int64(span))
		if width < 1 {
			width = 1
		}
		if from+width > cols {
			width = cols - from
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("█", width)
		rows = append(rows, fmt.Sprintf("  %-16s |%-*s| %v+%v", p.Object, cols, bar, start, o.Duration))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scene %q time-line (span %v)\n", s.ID, span)
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// BehaviorView renders the behavior structure as the two-column
// condition/action table of Fig 4.4c ("the behavior view shows on the
// screen as a table with two fields").
func BehaviorView(s *document.Scene) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scene %q behaviors\n", s.ID)
	fmt.Fprintf(&b, "  %-40s | %s\n", "condition set", "action set")
	fmt.Fprintf(&b, "  %s-+-%s\n", strings.Repeat("-", 40), strings.Repeat("-", 30))
	for _, beh := range s.Behaviors {
		var conds, acts []string
		for _, c := range beh.Conditions {
			cond := fmt.Sprintf("%s %s", c.Object, c.Event)
			if c.Value != "" {
				cond += " == " + c.Value
			}
			conds = append(conds, cond)
		}
		for _, a := range beh.Actions {
			acts = append(acts, fmt.Sprintf("%s %s", a.Verb, strings.Join(a.Targets, ",")))
		}
		fmt.Fprintf(&b, "  %-40s | %s\n", strings.Join(conds, " AND "), strings.Join(acts, "; "))
	}
	return b.String()
}

// PageListView renders a hypermedia document's page list (§4.5.3: "the
// page list shows the title of all the pages as well as the media
// objects included in each page").
func PageListView(doc *document.HyperDoc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "document %q pages\n", doc.Title)
	for _, p := range doc.Pages {
		fmt.Fprintf(&b, "  %-20s %q\n", p.ID, p.Title)
		for _, it := range p.Items {
			detail := it.Media
			if detail == "" {
				detail = quoteShort(it.Text)
			}
			fmt.Fprintf(&b, "     %-6s %-14s %s\n", it.Kind, it.ID, detail)
		}
	}
	return b.String()
}

// NavigationView renders the outgoing links of one page — the subset
// navigation view of §4.5.3 ("a subset view of the navigation structure
// to show all the nodes which are linked to a specific node").
func NavigationView(doc *document.HyperDoc, pageID string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "navigation from %q\n", pageID)
	links := doc.Choices(pageID)
	sort.Slice(links, func(i, j int) bool { return links[i].Condition < links[j].Condition })
	for _, l := range links {
		label := l.Condition
		if p, ok := doc.Page(l.From); ok {
			if it, ok := p.Item(l.Condition); ok && it.Text != "" {
				label = it.Text
			}
		}
		fmt.Fprintf(&b, "  --[%s]--> %s\n", label, l.To)
	}
	if len(links) == 0 {
		b.WriteString("  (terminal page)\n")
	}
	return b.String()
}
