// Package courseware implements the MITS courseware layer of chapter 4:
// the interactive multimedia courseware class library of Fig 4.6
// (Interactive, Output and Hyperobject types built on the basic MHEG
// library), authoring templates (§4.5.2), teaching-architecture
// frameworks (§4.2, §4.5.1) and the compiler that maps the document
// layer onto the MHEG object layer (Fig 4.2).
package courseware

import (
	"fmt"

	"mits/internal/media"
	"mits/internal/mheg"
)

// Group is a set of MHEG objects realizing one courseware-library
// object, rooted at Root. The library "acts as a bridge between the
// courseware authors and the MHEG coding format" (§4.4.2): an author
// asks for a button; the group carries the content object, the
// composite and the links that implement it.
type Group struct {
	Root    mheg.ID
	Objects []mheg.Object
}

// Container packs the group for interchange.
func (g Group) Container(id mheg.ID) *mheg.Container {
	return mheg.NewContainer(id, g.Objects...)
}

// IDAllocator hands out sequential MHEG identifiers in one application
// namespace.
type IDAllocator struct {
	App  string
	next uint32
}

// NewIDAllocator starts allocation at the given number.
func NewIDAllocator(app string, start uint32) *IDAllocator {
	return &IDAllocator{App: app, next: start}
}

// Next returns a fresh ID.
func (a *IDAllocator) Next() mheg.ID {
	a.next++
	return mheg.ID{App: a.App, Num: a.next - 1}
}

// Reserve allocates a contiguous block of n numbers and returns the
// first, for sub-compilers that number their own objects.
func (a *IDAllocator) Reserve(n uint32) uint32 {
	start := a.next
	a.next += n
	return start
}

// Allocated reports how many IDs have been issued.
func (a *IDAllocator) Allocated() uint32 { return a.next }

// ---- Interactive objects (Fig 4.6) ----

// Button builds an interactive object: a labelled selectable area whose
// click applies the given effect.
func Button(ids *IDAllocator, label string, effect ...mheg.ElementaryAction) Group {
	content := mheg.NewTextContent(ids.Next(), label)
	content.Info.Name = "button:" + label
	link := mheg.OnSelect(ids.Next(), content.ID, effect...)
	comp := mheg.NewComposite(ids.Next(), content.ID)
	comp.Links = []mheg.ID{link.ID}
	comp.Info.Name = "interactive:button"
	return Group{Root: comp.ID, Objects: []mheg.Object{content, link, comp}}
}

// MenuChoice pairs a menu option label with its effect.
type MenuChoice struct {
	Label  string
	Effect []mheg.ElementaryAction
}

// Menu builds an interactive object offering several selections; each
// fires when the menu's selection state becomes its label.
func Menu(ids *IDAllocator, name string, choices ...MenuChoice) (Group, error) {
	if len(choices) == 0 {
		return Group{}, fmt.Errorf("courseware: menu %q has no choices", name)
	}
	content := mheg.NewTextContent(ids.Next(), name)
	content.Info.Name = "menu:" + name
	objs := []mheg.Object{content}
	var linkIDs []mheg.ID
	for _, c := range choices {
		l := mheg.NewLink(ids.Next(), mheg.Condition{
			Source: content.ID,
			Attr:   mheg.AttrSelectionState,
			Op:     mheg.OpEqual,
			Value:  mheg.StringValue(c.Label),
		}, c.Effect...)
		objs = append(objs, l)
		linkIDs = append(linkIDs, l.ID)
	}
	comp := mheg.NewComposite(ids.Next(), content.ID)
	comp.Links = linkIDs
	comp.Info.Name = "interactive:menu"
	objs = append(objs, comp)
	return Group{Root: comp.ID, Objects: objs}, nil
}

// EntryField builds an interactive object that stores typed user input
// into a generic value object and fires the effect on change.
func EntryField(ids *IDAllocator, name string, effect ...mheg.ElementaryAction) Group {
	field := mheg.NewTextContent(ids.Next(), "")
	field.Info.Name = "entry:" + name
	store := mheg.NewGenericValue(ids.Next(), mheg.StringValue(""))
	store.Info.Name = "entry-value:" + name
	items := append([]mheg.ElementaryAction{}, effect...)
	if len(items) == 0 {
		// Default effect: acknowledge the input visually.
		items = append(items, mheg.Act(mheg.OpSetHighlight, field.ID, mheg.BoolValue(true)))
	}
	l := mheg.NewLink(ids.Next(), mheg.Condition{
		Source: field.ID,
		Attr:   mheg.AttrUserInput,
		Op:     mheg.OpNotEqual,
		Value:  mheg.StringValue(""),
	}, items...)
	comp := mheg.NewComposite(ids.Next(), field.ID, store.ID)
	comp.Links = []mheg.ID{l.ID}
	comp.Info.Name = "interactive:entry"
	return Group{Root: comp.ID, Objects: []mheg.Object{field, store, l, comp}}
}

// ---- Output objects (Fig 4.6) ----

// OutputText builds an output object presenting text.
func OutputText(ids *IDAllocator, text string) Group {
	c := mheg.NewTextContent(ids.Next(), text)
	c.Info.Name = "output:text"
	return Group{Root: c.ID, Objects: []mheg.Object{c}}
}

// OutputMedia builds an output object presenting a referenced media
// object with the given presentation parameters.
func OutputMedia(ids *IDAllocator, coding media.Coding, ref string, size mheg.Size, dur mheg.Duration) Group {
	c := mheg.NewContent(ids.Next(), coding, ref)
	c.OrigSize = size
	c.OrigDuration = dur
	c.Info.Name = "output:" + string(coding)
	return Group{Root: c.ID, Objects: []mheg.Object{c}}
}

// ---- Hyperobjects (Fig 4.6) ----

// Hyperobject composes input and output objects "plus explicit links
// between them": selecting the input presents the output. The classic
// §2.2.2.3 example — a push-button that plays an audio segment.
func Hyperobject(ids *IDAllocator, inputLabel string, output Group) Group {
	input := mheg.NewTextContent(ids.Next(), inputLabel)
	input.Info.Name = "hyper-input:" + inputLabel
	link := mheg.OnSelect(ids.Next(), input.ID,
		mheg.Act(mheg.OpNew, output.Root),
		mheg.Act(mheg.OpRun, output.Root))
	comp := mheg.NewComposite(ids.Next(), input.ID)
	comp.Links = []mheg.ID{link.ID}
	comp.Info.Name = "hyperobject"
	objs := append([]mheg.Object{input, link}, output.Objects...)
	objs = append(objs, comp)
	return Group{Root: comp.ID, Objects: objs}
}
