package courseware

import (
	"strings"
	"testing"
	"time"

	"mits/internal/document"
	"mits/internal/media"
	"mits/internal/mheg"
	"mits/internal/mheg/codec"
	"mits/internal/mheg/engine"
	"mits/internal/sim"
)

func TestIDAllocator(t *testing.T) {
	a := NewIDAllocator("app", 10)
	if a.Next() != (mheg.ID{App: "app", Num: 10}) || a.Next() != (mheg.ID{App: "app", Num: 11}) {
		t.Error("sequential allocation broken")
	}
	if start := a.Reserve(5); start != 12 {
		t.Errorf("Reserve start %d, want 12", start)
	}
	if a.Next() != (mheg.ID{App: "app", Num: 17}) {
		t.Error("Reserve did not advance")
	}
	if a.Allocated() != 18 {
		t.Errorf("Allocated=%d", a.Allocated())
	}
}

func TestButtonGroup(t *testing.T) {
	ids := NewIDAllocator("lib", 1)
	g := Button(ids, "Play", mheg.Act(mheg.OpRun, mheg.ID{App: "lib", Num: 99}))
	if len(g.Objects) != 3 {
		t.Fatalf("button group has %d objects, want 3", len(g.Objects))
	}
	c := g.Container(ids.Next())
	if err := c.Validate(); err != nil {
		t.Fatalf("button container invalid: %v", err)
	}
	// The root composite arms the click link.
	root := g.Objects[len(g.Objects)-1].(*mheg.Composite)
	if root.ID != g.Root || len(root.Links) != 1 {
		t.Errorf("root composite %+v", root)
	}
}

func TestButtonClickFires(t *testing.T) {
	clock := sim.NewClock()
	e := engine.New(clock)
	ids := NewIDAllocator("lib", 1)
	target := mheg.NewImageContent(ids.Next(), "store/x.jpg", mheg.Size{})
	e.AddModel(target)
	g := Button(ids, "Show", mheg.Act(mheg.OpNew, target.ID), mheg.Act(mheg.OpRun, target.ID))
	for _, o := range g.Objects {
		if err := e.AddModel(o); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.NewRT(g.Root, "ui"); err != nil {
		t.Fatal(err)
	}
	// The button content is the composite's only component.
	btnContent := g.Objects[0].(*mheg.Content)
	e.Select(e.RTsOf(btnContent.ID)[0])
	if len(e.RTsOf(target.ID)) != 1 {
		t.Error("button click did not create the target")
	}
}

func TestMenuGroup(t *testing.T) {
	ids := NewIDAllocator("lib", 1)
	tgt := mheg.ID{App: "lib", Num: 50}
	g, err := Menu(ids, "main", MenuChoice{Label: "classroom", Effect: []mheg.ElementaryAction{mheg.Act(mheg.OpRun, tgt)}},
		MenuChoice{Label: "library", Effect: []mheg.ElementaryAction{mheg.Act(mheg.OpStop, tgt)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Objects) != 4 { // content + 2 links + composite
		t.Errorf("menu group %d objects, want 4", len(g.Objects))
	}
	if _, err := Menu(ids, "empty"); err == nil {
		t.Error("empty menu accepted")
	}

	// Selecting an option fires only its link.
	clock := sim.NewClock()
	e := engine.New(clock)
	timed, _ := mheg.NewAudioContent(tgt, media.CodingWAV, "x", time.Minute, 70)
	e.AddModel(timed)
	e.NewRT(tgt, "")
	for _, o := range g.Objects {
		e.AddModel(o)
	}
	e.NewRT(g.Root, "ui")
	menuContent := g.Objects[0].(*mheg.Content)
	e.SetSelection(e.RTsOf(menuContent.ID)[0], mheg.StringValue("classroom"))
	rt, _ := e.RT(e.RTsOf(tgt)[0])
	if rt.Running != mheg.StatusRunning {
		t.Error("menu selection did not run the target")
	}
}

func TestEntryFieldStoresInput(t *testing.T) {
	ids := NewIDAllocator("lib", 1)
	g := EntryField(ids, "student-number", mheg.Act(mheg.OpSetHighlight, mheg.ID{App: "lib", Num: 1}, mheg.BoolValue(true)))
	if len(g.Objects) != 4 {
		t.Fatalf("entry group %d objects, want 4", len(g.Objects))
	}
	clock := sim.NewClock()
	e := engine.New(clock)
	for _, o := range g.Objects {
		e.AddModel(o)
	}
	e.NewRT(g.Root, "ui")
	field := g.Objects[0].(*mheg.Content)
	e.Input(e.RTsOf(field.ID)[0], mheg.StringValue("880123"))
	rt, _ := e.RT(e.RTsOf(field.ID)[0])
	if !rt.Highlight {
		t.Error("input event did not fire the entry link")
	}
}

func TestHyperobject(t *testing.T) {
	ids := NewIDAllocator("lib", 1)
	out := OutputMedia(ids, media.CodingWAV, "store/greeting.wav", mheg.Size{}, 3*time.Second)
	g := Hyperobject(ids, "Hear greeting", out)
	clock := sim.NewClock()
	e := engine.New(clock)
	for _, o := range g.Objects {
		if err := e.AddModel(o); err != nil {
			t.Fatal(err)
		}
	}
	e.NewRT(g.Root, "ui")
	input := g.Objects[0].(*mheg.Content)
	e.Select(e.RTsOf(input.ID)[0])
	if len(e.RTsOf(out.Root)) != 1 {
		t.Fatal("hyperobject selection did not present the output")
	}
	clock.Run()
	rt := e.RTsOf(out.Root)
	if len(rt) == 0 {
		t.Fatal("output vanished")
	}
	o, _ := e.RT(rt[0])
	if o.Running != mheg.StatusFinished {
		t.Error("audio output did not play to completion")
	}
}

func TestOutputText(t *testing.T) {
	ids := NewIDAllocator("lib", 1)
	g := OutputText(ids, "hello")
	if len(g.Objects) != 1 {
		t.Error("output text group")
	}
	if txt, err := g.Objects[0].(*mheg.Content).Text(); err != nil || txt != "hello" {
		t.Errorf("text %q err %v", txt, err)
	}
}

func TestChooseArchitecture(t *testing.T) {
	cases := []struct {
		p    StudentProfile
		want Architecture
	}{
		{StudentProfile{RiskyPractice: true}, SimulationBased},
		{StudentProfile{SkillTraining: true}, CaseBasedTeaching},
		{StudentProfile{OpenEnded: true, Sophisticated: true}, LearningByExploring},
		{StudentProfile{OpenEnded: true}, IncidentalLearning},
		{StudentProfile{Sophisticated: true}, LearningByReflection},
		{StudentProfile{}, GoalDirectedLearning},
	}
	for _, c := range cases {
		if got := ChooseArchitecture(c.p); got != c.want {
			t.Errorf("ChooseArchitecture(%+v)=%v, want %v", c.p, got, c.want)
		}
	}
	for a := SimulationBased; a <= GoalDirectedLearning; a++ {
		if a.String() == "" || strings.HasPrefix(a.String(), "Architecture(") {
			t.Errorf("architecture %d has no name", a)
		}
		f := FrameworkFor(a)
		if f.Guidance == "" {
			t.Errorf("%v framework has no guidance", a)
		}
	}
	if HypermediaModel.String() != "hypermedia" || InteractiveModel.String() != "interactive-multimedia" {
		t.Error("DocumentModel.String")
	}
}

func TestFrameworkSkeletons(t *testing.T) {
	// Exploration → hypermedia skeleton.
	f := FrameworkFor(LearningByExploring)
	imd, hyper, err := f.Skeleton("Networks", []string{"Intro", "ATM", "IP"})
	if err != nil {
		t.Fatal(err)
	}
	if imd != nil || hyper == nil {
		t.Fatal("exploring framework should yield a hypermedia doc")
	}
	if len(hyper.Pages) != 3 {
		t.Errorf("pages=%d", len(hyper.Pages))
	}
	if err := hyper.Validate(); err != nil {
		t.Errorf("skeleton invalid: %v", err)
	}

	// Goal-directed → interactive skeleton.
	f2 := FrameworkFor(GoalDirectedLearning)
	imd2, hyper2, err := f2.Skeleton("Safety", nil)
	if err != nil {
		t.Fatal(err)
	}
	if imd2 == nil || hyper2 != nil {
		t.Fatal("goal-directed framework should yield an interactive doc")
	}
	if err := imd2.Validate(); err != nil {
		t.Errorf("skeleton invalid: %v", err)
	}
	if _, _, err := f2.Skeleton("", nil); err == nil {
		t.Error("empty title accepted")
	}
}

func TestQuizSceneTemplate(t *testing.T) {
	s, err := QuizScene("q1", "What is the ATM cell size?", []QuizOption{
		{Label: "53 bytes", Correct: true},
		{Label: "64 bytes", Feedback: "64 is a common buffer size, not the cell size."},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := &document.IMDoc{Title: "Quiz", Sections: []*document.Section{{Title: "Q", Scenes: []*document.Scene{s}}}}
	if err := doc.Validate(); err != nil {
		t.Fatalf("quiz scene invalid: %v", err)
	}
	if len(s.Behaviors) != 2 {
		t.Errorf("behaviors=%d", len(s.Behaviors))
	}
	if _, err := QuizScene("q2", "?", []QuizOption{{Label: "only one"}}); err == nil {
		t.Error("single-option quiz accepted")
	}
}

func TestTemplates(t *testing.T) {
	vt := VideoTemplate{At: document.Region{W: 352, H: 240}, Duration: 10 * time.Second, Channel: "stage"}
	v := vt.New("clip1", "store/clip1.mpg")
	if v.Kind != document.ObjVideo || v.Duration != 10*time.Second || v.Media != "store/clip1.mpg" {
		t.Errorf("video template %+v", v)
	}
	at := AudioTemplate{Duration: 5 * time.Second, Volume: 80, Channel: "audio"}
	a := at.New("nar1", "store/nar1.wav")
	if a.Kind != document.ObjAudio || a.Volume != 80 {
		t.Errorf("audio template %+v", a)
	}
	ct := CaptionTemplate{Duration: 3 * time.Second}
	c := ct.New("cap1", "Hello")
	if c.Kind != document.ObjText || c.Text != "Hello" {
		t.Errorf("caption template %+v", c)
	}
}

// ---- compiler tests ----

func TestCompileIMDProducesValidContainer(t *testing.T) {
	doc := document.SampleATMCourse()
	out, err := CompileIMD(doc, "atm")
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Container.Validate(); err != nil {
		t.Fatalf("compiled container invalid: %v", err)
	}
	if len(out.Scenes) != 4 {
		t.Errorf("scenes=%d", len(out.Scenes))
	}
	// Each scene object is addressable.
	for _, key := range []string{"cells/text1", "cells/choice1", "intro/welcome-video", "quiz/ans53"} {
		if _, ok := out.Objects[key]; !ok {
			t.Errorf("object %q missing from manifest", key)
		}
	}
	// The container round-trips through interchange coding.
	data, err := codec.ASN1().Encode(out.Container)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.ASN1().Decode(data); err != nil {
		t.Fatal(err)
	}
	// Media refs collected for the production pipeline.
	if len(out.MediaRefs) == 0 {
		t.Error("no media refs collected")
	}
	// Descriptor present with MPEG need.
	foundMPEG := false
	for _, n := range out.Descriptor.Needs {
		if n.Coding == media.CodingMPEG {
			foundMPEG = true
		}
	}
	if !foundMPEG {
		t.Error("descriptor lacks MPEG resource need")
	}
	// All but the last scene got Continue buttons.
	if len(out.AdvanceButtons) != 3 {
		t.Errorf("advance buttons=%d, want 3", len(out.AdvanceButtons))
	}
}

func TestCompileIMDRejectsInvalidDoc(t *testing.T) {
	doc := document.SampleATMCourse()
	doc.Title = ""
	if _, err := CompileIMD(doc, "x"); err == nil {
		t.Error("invalid doc compiled")
	}
	noTimeline := document.SampleATMCourse()
	s, _ := noTimeline.Scene("quiz")
	s.Timeline = nil
	if _, err := CompileIMD(noTimeline, "x"); err == nil || !strings.Contains(err.Error(), "timeline") {
		t.Errorf("scene without timeline compiled (err=%v)", err)
	}
}

// playCourse ingests a compiled course into an engine and runs its root.
func playCourse(t *testing.T, out *Compiled) (*engine.Engine, *sim.Clock, map[mheg.ID][]engine.EventKind) {
	t.Helper()
	clock := sim.NewClock()
	history := make(map[mheg.ID][]engine.EventKind)
	e := engine.New(clock, engine.WithRenderer(engine.RendererFunc(func(ev engine.Event) {
		history[ev.Model] = append(history[ev.Model], ev.Kind)
	})))
	data, err := codec.ASN1().Encode(out.Container)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(data); err != nil {
		t.Fatal(err)
	}
	rt, err := e.NewRT(out.Root, "main")
	if err != nil {
		t.Fatal(err)
	}
	e.Run(rt)
	return e, clock, history
}

func has(kinds []engine.EventKind, k engine.EventKind) bool {
	for _, v := range kinds {
		if v == k {
			return true
		}
	}
	return false
}

func TestCompiledATMCoursePassivePlayback(t *testing.T) {
	out, err := CompileIMD(document.SampleATMCourse(), "atm")
	if err != nil {
		t.Fatal(err)
	}
	e, clock, history := playCourse(t, out)
	clock.Run()

	// Scene 1 (intro) resolves fully: 8s video → auto-advance to the
	// cells scene; its text1 runs 20s then image1 appears. The
	// switching scene auto-advances at 30s. Quiz waits for interaction.
	video := out.Objects["intro/welcome-video"]
	if !has(history[video], engine.EvFinished) {
		t.Error("welcome video never finished")
	}
	text1 := out.Objects["cells/text1"]
	if !has(history[text1], engine.EvRan) {
		t.Error("cells scene never started (auto-advance failed)")
	}
	image1 := out.Objects["cells/image1"]
	if !has(history[image1], engine.EvRan) {
		t.Error("image1 never appeared after text1")
	}
	question := out.Objects["quiz/question"]
	if has(history[question], engine.EvRan) {
		t.Error("quiz started without user advancing past the cells scene")
	}

	// The student clicks Continue on the cells scene.
	contBtn := out.AdvanceButtons["cells"]
	e.Select(e.RTsOf(contBtn)[0])
	clock.Run()
	anim := out.Objects["switching/anim1"]
	if !has(history[anim], engine.EvRan) {
		t.Error("switching scene did not start after Continue")
	}
	if !has(history[question], engine.EvRan) {
		t.Error("quiz did not start after switching auto-advanced")
	}
}

func TestCompiledATMCourseInteraction(t *testing.T) {
	out, err := CompileIMD(document.SampleATMCourse(), "atm")
	if err != nil {
		t.Fatal(err)
	}
	e, clock, history := playCourse(t, out)

	// At 10s into intro... intro lasts 8s, then cells starts at 8s.
	// At 12s the student clicks choice1 (4s into the 20s text).
	clock.After(12*time.Second, func(sim.Time) {
		choice := out.Objects["cells/choice1"]
		e.Select(e.RTsOf(choice)[0])
	})
	clock.RunUntil(sim.Time(13 * time.Second))
	image1 := out.Objects["cells/image1"]
	if !has(history[image1], engine.EvRan) {
		t.Error("choice1 click did not reveal image1 early")
	}

	// Quiz: answer correctly, feedback appears.
	clock.Run() // let everything settle; course sits at quiz
	right := out.Objects["quiz/right"]
	if has(history[right], engine.EvRan) {
		t.Fatal("feedback appeared before answering")
	}
	ans := out.Objects["quiz/ans53"]
	e.Select(e.RTsOf(ans)[0])
	if !has(history[right], engine.EvRan) {
		t.Error("correct-answer feedback did not appear")
	}
}

func TestCompiledHyperCourseNavigation(t *testing.T) {
	out, err := CompileHyper(document.SampleHyperCourse(), "net")
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Container.Validate(); err != nil {
		t.Fatal(err)
	}
	e, _, history := playCourse(t, out)

	// Start page s1 is running; s2 is not.
	s1text := out.Objects["s1/s1-text"]
	if !has(history[s1text], engine.EvRan) {
		t.Fatal("start page content not presented")
	}
	s2text := out.Objects["s2/s2-text"]
	if has(history[s2text], engine.EvRan) {
		t.Fatal("non-start page presented")
	}

	// Click "Next Section" → s2 presented.
	next1 := out.Objects["s1/next1"]
	e.Select(e.RTsOf(next1)[0])
	if !has(history[s2text], engine.EvRan) {
		t.Error("navigation to s2 failed")
	}

	// Follow the hot word from s1 — wait, we're on s2; go back first.
	prev2 := out.Objects["s2/prev2"]
	e.Select(e.RTsOf(prev2)[0])
	word := out.Objects["s1/w-protocol"]
	e.Select(e.RTsOf(word)[0])
	gloss := out.Objects["glossary-protocol/g-text"]
	if !has(history[gloss], engine.EvRan) {
		t.Error("hot word did not open the glossary")
	}

	// Quiz branch: wrong answer leads to review page.
	back := out.Objects["glossary-protocol/back"]
	e.Select(e.RTsOf(back)[0])
	test1 := out.Objects["s1/test1"]
	e.Select(e.RTsOf(test1)[0])
	wrongBtn := out.Objects["q1/q1-wrong"]
	e.Select(e.RTsOf(wrongBtn)[0])
	review := out.Objects["q1-incorrect/rev-text"]
	if !has(history[review], engine.EvRan) {
		t.Error("wrong answer did not reach the review page")
	}
}

func TestCompileHyperRejectsInvalid(t *testing.T) {
	doc := document.SampleHyperCourse()
	doc.Pages = nil
	if _, err := CompileHyper(doc, "x"); err == nil {
		t.Error("invalid hyper doc compiled")
	}
}

func TestCompiledCourseSGMLInterchange(t *testing.T) {
	// Author-site output in SGML, presentation-site ingest: the full
	// heterogeneous interchange path of Fig 3.2.
	out, err := CompileIMD(document.SampleATMCourse(), "atm")
	if err != nil {
		t.Fatal(err)
	}
	text, err := codec.SGML().Encode(out.Container)
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock()
	e := engine.New(clock, engine.WithEncoding(codec.SGML()))
	if _, err := e.Ingest(text); err != nil {
		t.Fatalf("SGML ingest: %v", err)
	}
	rt, err := e.NewRT(out.Root, "main")
	if err != nil {
		t.Fatal(err)
	}
	e.Run(rt)
	clock.Run()
	if clock.Now() < sim.Time(8*time.Second) {
		t.Errorf("course playback via SGML too short: %v", clock.Now())
	}
}
