package courseware

import (
	"fmt"
	"strings"

	"mits/internal/document"
	"mits/internal/media"
	"mits/internal/mheg"
	"mits/internal/sched"
)

// Compiled is the result of mapping a document onto the MHEG object
// layer (Fig 4.2): a container ready for interchange plus the manifest
// the navigator uses to address the pieces.
type Compiled struct {
	App  string
	Root mheg.ID // the course composite: run this to present the course
	// Container packs every object of the course for interchange.
	Container *mheg.Container
	// Scenes/Pages maps document scene (or page) ids to their composite.
	Scenes map[string]mheg.ID
	// Objects maps "sceneID/objectID" (or "pageID/itemID") to content
	// object ids.
	Objects map[string]mheg.ID
	// AdvanceButtons maps scene ids to the compiler-injected Continue
	// button content id (absent for the last scene).
	AdvanceButtons map[string]mheg.ID
	// MediaRefs lists every content-database reference the course uses.
	MediaRefs []string
	// Descriptor summarizes resource needs for session negotiation.
	Descriptor *mheg.Descriptor
}

// codingForRef infers the media coding from a content reference's
// extension, falling back to the object kind's default.
func codingForRef(ref string, kind document.ObjectKind) media.Coding {
	switch {
	case strings.HasSuffix(ref, ".mpg"), strings.HasSuffix(ref, ".mpeg"):
		return media.CodingMPEG
	case strings.HasSuffix(ref, ".avi"):
		return media.CodingAVI
	case strings.HasSuffix(ref, ".wav"):
		return media.CodingWAV
	case strings.HasSuffix(ref, ".mid"), strings.HasSuffix(ref, ".midi"):
		return media.CodingMIDI
	case strings.HasSuffix(ref, ".jpg"), strings.HasSuffix(ref, ".jpeg"):
		return media.CodingJPEG
	case strings.HasSuffix(ref, ".html"), strings.HasSuffix(ref, ".htm"):
		return media.CodingHTML
	case strings.HasSuffix(ref, ".txt"):
		return media.CodingASCII
	}
	switch kind {
	case document.ObjVideo:
		return media.CodingMPEG
	case document.ObjAudio:
		return media.CodingWAV
	case document.ObjImage:
		return media.CodingJPEG
	default:
		return media.CodingASCII
	}
}

// resourceNeeds estimates descriptor resource requirements per coding.
var resourceNeeds = map[media.Coding]mheg.ResourceNeed{
	media.CodingMPEG: {Coding: media.CodingMPEG, BitRate: 1500000, MemoryKB: 2048},
	media.CodingAVI:  {Coding: media.CodingAVI, BitRate: 1650000, MemoryKB: 2048},
	media.CodingWAV:  {Coding: media.CodingWAV, BitRate: 176400, MemoryKB: 128},
	media.CodingMIDI: {Coding: media.CodingMIDI, BitRate: 5600, MemoryKB: 32},
	media.CodingJPEG: {Coding: media.CodingJPEG, BitRate: 0, MemoryKB: 512},
}

// imdCompiler carries state while compiling an interactive multimedia
// document.
type imdCompiler struct {
	ids     *IDAllocator
	out     *Compiled
	objects []mheg.Object
	codings map[media.Coding]bool
}

// CompileIMD maps an interactive multimedia document onto MHEG objects.
// Each scene becomes a composite whose components are its objects
// (socketed at instantiation), whose start-up action realizes the
// time-line structure, and whose links realize the behavior structure.
// Scenes are wired together with Continue buttons and auto-advance
// links; the course root's start-up runs the first scene.
func CompileIMD(doc *document.IMDoc, app string) (*Compiled, error) {
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	c := &imdCompiler{
		ids: NewIDAllocator(app, 1),
		out: &Compiled{
			App:            app,
			Scenes:         make(map[string]mheg.ID),
			Objects:        make(map[string]mheg.ID),
			AdvanceButtons: make(map[string]mheg.ID),
		},
		codings: make(map[media.Coding]bool),
	}
	scenes := doc.AllScenes()
	// Pre-allocate scene composite ids so behaviors can goto forward.
	for _, s := range scenes {
		c.out.Scenes[s.ID] = c.ids.Next()
	}
	for i, s := range scenes {
		var next *document.Scene
		if i+1 < len(scenes) {
			next = scenes[i+1]
		}
		if err := c.compileScene(s, next); err != nil {
			return nil, err
		}
	}

	// Course root: start-up runs the first scene composite.
	rootID := c.ids.Next()
	startup := mheg.NewAction(c.ids.Next(), mheg.Act(mheg.OpRun, c.out.Scenes[scenes[0].ID]))
	root := mheg.NewComposite(rootID)
	root.Info.Name = doc.Title
	for _, s := range scenes {
		root.Components = append(root.Components, c.out.Scenes[s.ID])
	}
	root.StartUp = startup.ID
	c.objects = append(c.objects, startup, root)
	c.out.Root = rootID

	c.finish(doc.Title)
	return c.out, nil
}

// finish assembles the descriptor and container.
func (c *imdCompiler) finish(title string) {
	desc := mheg.NewDescriptor(c.ids.Next(), c.out.Root)
	for coding := range c.codings {
		if need, ok := resourceNeeds[coding]; ok {
			desc.Needs = append(desc.Needs, need)
		}
	}
	desc.ReadMe = fmt.Sprintf("courseware %q compiled by MITS", title)
	c.objects = append(c.objects, desc)
	c.out.Descriptor = desc
	container := mheg.NewContainer(c.ids.Next(), c.objects...)
	container.Info.Name = title
	c.out.Container = container
}

func (c *imdCompiler) compileScene(s *document.Scene, next *document.Scene) error {
	if len(s.Timeline) == 0 {
		return fmt.Errorf("courseware: scene %q has no timeline; place at least one object", s.ID)
	}
	objIDs := make(map[string]mheg.ID, len(s.Objects))
	var components []mheg.ID
	for _, o := range s.Objects {
		id := c.ids.Next()
		objIDs[o.ID] = id
		c.out.Objects[s.ID+"/"+o.ID] = id
		content, err := c.contentFor(id, o)
		if err != nil {
			return fmt.Errorf("courseware: scene %q object %q: %w", s.ID, o.ID, err)
		}
		c.objects = append(c.objects, content)
		components = append(components, id)
	}

	// Time-line structure → start-up action + event-driven links.
	tl := sched.NewTimeline()
	durations := make(map[string]mheg.Duration, len(s.Objects))
	for _, o := range s.Objects {
		durations[o.ID] = o.Duration
	}
	for _, p := range s.Timeline {
		var err error
		switch p.Kind {
		case document.PlaceAt:
			err = tl.At(objIDs[p.Object], p.Offset, durations[p.Object])
		case document.PlaceWith:
			err = tl.With(objIDs[p.Object], objIDs[p.Ref], p.Offset, durations[p.Object])
		case document.PlaceAfter:
			err = tl.After(objIDs[p.Object], objIDs[p.Ref], p.Offset, durations[p.Object])
		}
		if err != nil {
			return fmt.Errorf("courseware: scene %q: %w", s.ID, err)
		}
	}
	base := c.ids.Reserve(uint32(1 + len(s.Timeline)))
	startup, tlLinks, err := tl.CompileRunOnly(c.ids.App, base)
	if err != nil {
		return fmt.Errorf("courseware: scene %q: %w", s.ID, err)
	}
	// Interaction widgets are not on the timeline but must be live
	// while the scene is: run every button at scene start.
	for _, o := range s.Objects {
		if o.Kind == document.ObjButton {
			startup.Items = append(startup.Items, mheg.Act(mheg.OpRun, objIDs[o.ID]))
		}
	}
	c.objects = append(c.objects, startup)
	linkIDs := make([]mheg.ID, 0, len(tlLinks))
	for _, l := range tlLinks {
		c.objects = append(c.objects, l)
		linkIDs = append(linkIDs, l.ID)
	}

	// Behavior structure → conditional links.
	for i, b := range s.Behaviors {
		link, err := c.compileBehavior(s, b, objIDs)
		if err != nil {
			return fmt.Errorf("courseware: scene %q behavior %d: %w", s.ID, i, err)
		}
		c.objects = append(c.objects, link)
		linkIDs = append(linkIDs, link.ID)
	}

	// Scene wiring: an injected Continue button plus, when the timeline
	// fully resolves, an auto-advance link on the last-ending object.
	if next != nil {
		advance := []mheg.ElementaryAction{
			mheg.Act(mheg.OpStop, c.out.Scenes[s.ID]),
			mheg.Act(mheg.OpRun, c.out.Scenes[next.ID]),
		}
		btnID := c.ids.Next()
		btn := mheg.NewTextContent(btnID, "Continue")
		btn.Info.Name = "button:Continue"
		btn.Channel = "controls"
		startup.Items = append(startup.Items, mheg.Act(mheg.OpRun, btnID))
		c.objects = append(c.objects, btn)
		c.out.AdvanceButtons[s.ID] = btnID
		components = append(components, btnID)
		btnLink := mheg.OnSelect(c.ids.Next(), btnID, advance...)
		c.objects = append(c.objects, btnLink)
		linkIDs = append(linkIDs, btnLink.ID)

		if last, ok := c.lastResolved(s, tl, objIDs); ok {
			auto := mheg.OnFinished(c.ids.Next(), last, advance...)
			c.objects = append(c.objects, auto)
			linkIDs = append(linkIDs, auto.ID)
		}
	}

	comp := mheg.NewComposite(c.out.Scenes[s.ID], components...)
	comp.Info.Name = "scene:" + s.ID
	comp.Links = linkIDs
	comp.StartUp = startup.ID
	c.objects = append(c.objects, comp)
	return nil
}

// lastResolved picks the timed object whose playback ends the scene,
// provided every placed object resolved to a fixed offset (otherwise
// the scene's end is interaction-driven and auto-advance would cut it
// short).
func (c *imdCompiler) lastResolved(s *document.Scene, tl *sched.Timeline, objIDs map[string]mheg.ID) (mheg.ID, bool) {
	span := tl.Span()
	if span == 0 {
		return mheg.ID{}, false
	}
	for _, p := range s.Timeline {
		start, ok := tl.Start(objIDs[p.Object])
		if !ok {
			return mheg.ID{}, false
		}
		// An untimed presentable object revealed at (or after) the end
		// of the timed material — like Fig 4.4b's image1 — needs the
		// student's own dwell time; the scene must not auto-advance.
		o, _ := s.Object(p.Object)
		if o.Duration == 0 && o.Kind.Presentable() && start >= span {
			return mheg.ID{}, false
		}
	}
	for _, p := range s.Timeline {
		o, _ := s.Object(p.Object)
		if o.Duration == 0 {
			continue
		}
		start, _ := tl.Start(objIDs[p.Object])
		if start+o.Duration == span {
			return objIDs[p.Object], true
		}
	}
	return mheg.ID{}, false
}

func (c *imdCompiler) contentFor(id mheg.ID, o document.SceneObject) (*mheg.Content, error) {
	switch o.Kind {
	case document.ObjText:
		t := mheg.NewTextContent(id, o.Text)
		t.Info.Name = "text:" + o.ID
		t.OrigDuration = o.Duration
		t.OrigSize = mheg.Size{W: o.At.W, H: o.At.H}
		t.Channel = o.Channel
		c.codings[media.CodingASCII] = true
		return t, nil
	case document.ObjButton:
		b := mheg.NewTextContent(id, o.Text)
		b.Info.Name = "button:" + o.Text
		b.Channel = o.Channel
		c.codings[media.CodingASCII] = true
		return b, nil
	case document.ObjVideo, document.ObjAudio, document.ObjImage:
		coding := codingForRef(o.Media, o.Kind)
		content := mheg.NewContent(id, coding, o.Media)
		content.OrigDuration = o.Duration
		content.OrigSize = mheg.Size{W: o.At.W, H: o.At.H}
		content.OrigVolume = o.Volume
		content.Channel = o.Channel
		content.Info.Name = o.Kind.String() + ":" + o.ID
		c.codings[coding] = true
		c.out.MediaRefs = append(c.out.MediaRefs, o.Media)
		return content, nil
	default:
		return nil, fmt.Errorf("unknown object kind %v", o.Kind)
	}
}

func (c *imdCompiler) compileBehavior(s *document.Scene, b document.Behavior, objIDs map[string]mheg.ID) (*mheg.Link, error) {
	trigger, err := conditionFor(b.Conditions[0], objIDs)
	if err != nil {
		return nil, err
	}
	var additional []mheg.Condition
	for _, bc := range b.Conditions[1:] {
		cond, err := conditionFor(bc, objIDs)
		if err != nil {
			return nil, err
		}
		additional = append(additional, cond)
	}
	var items []mheg.ElementaryAction
	for _, a := range b.Actions {
		for _, tgt := range a.Targets {
			switch a.Verb {
			case document.BStart:
				items = append(items, mheg.Act(mheg.OpRun, objIDs[tgt]))
			case document.BStop:
				items = append(items, mheg.Act(mheg.OpStop, objIDs[tgt]))
			case document.BPause:
				items = append(items, mheg.Act(mheg.OpPause, objIDs[tgt]))
			case document.BResume:
				items = append(items, mheg.Act(mheg.OpResume, objIDs[tgt]))
			case document.BShow:
				items = append(items, mheg.Act(mheg.OpSetVisible, objIDs[tgt], mheg.BoolValue(true)))
			case document.BHide:
				items = append(items, mheg.Act(mheg.OpSetVisible, objIDs[tgt], mheg.BoolValue(false)))
			case document.BGoto:
				items = append(items,
					mheg.Act(mheg.OpStop, c.out.Scenes[s.ID]),
					mheg.Act(mheg.OpRun, c.out.Scenes[tgt]))
			default:
				return nil, fmt.Errorf("unknown behavior verb %v", a.Verb)
			}
		}
	}
	l := mheg.NewLink(c.ids.Next(), trigger, items...)
	l.Additional = additional
	return l, nil
}

func conditionFor(bc document.BCondition, objIDs map[string]mheg.ID) (mheg.Condition, error) {
	src, ok := objIDs[bc.Object]
	if !ok {
		return mheg.Condition{}, fmt.Errorf("condition on unknown object %q", bc.Object)
	}
	switch bc.Event {
	case document.BEvClicked:
		return mheg.Condition{Source: src, Attr: mheg.AttrSelection, Op: mheg.OpGreater, Value: mheg.IntValue(0)}, nil
	case document.BEvFinished:
		return mheg.Condition{Source: src, Attr: mheg.AttrRunning, Op: mheg.OpEqual, Value: mheg.IntValue(mheg.StatusFinished)}, nil
	case document.BEvStopped:
		return mheg.Condition{Source: src, Attr: mheg.AttrRunning, Op: mheg.OpEqual, Value: mheg.IntValue(mheg.StatusNotRunning)}, nil
	case document.BEvSelected:
		return mheg.Condition{Source: src, Attr: mheg.AttrSelectionState, Op: mheg.OpEqual, Value: mheg.StringValue(bc.Value)}, nil
	default:
		return mheg.Condition{}, fmt.Errorf("unknown behavior event %v", bc.Event)
	}
}
