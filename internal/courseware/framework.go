package courseware

import (
	"fmt"

	"mits/internal/document"
)

// Architecture is one of Schank's six teaching architectures (§4.2),
// which MITS offers to authors as frameworks (§4.5.1).
type Architecture int

// The six teaching architectures.
const (
	SimulationBased Architecture = iota // learning by doing on a simulator
	IncidentalLearning
	LearningByReflection
	CaseBasedTeaching
	LearningByExploring
	GoalDirectedLearning
)

var archNames = [...]string{
	"simulation-based learning by doing",
	"incidental learning",
	"learning by reflection",
	"case-based teaching",
	"learning by exploring",
	"goal-directed learning",
}

func (a Architecture) String() string {
	if a < 0 || int(a) >= len(archNames) {
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
	return archNames[a]
}

// StudentProfile summarizes the analysis step of courseware production
// (§4.1.1): who learns what, with what background.
type StudentProfile struct {
	// Sophisticated learners "know exactly what to learn and how to
	// filter knowledge" (§4.3.1) and cope with free navigation.
	Sophisticated bool
	// SkillTraining marks hands-on, procedural subject matter.
	SkillTraining bool
	// RiskyPractice marks domains where real practice is dangerous or
	// expensive (pilot training).
	RiskyPractice bool
	// OpenEnded marks exploratory subject matter without a fixed
	// syllabus.
	OpenEnded bool
}

// ChooseArchitecture applies the analysis heuristics of §4.1.1/§4.2: the
// teaching architecture follows from the knowledge type and the learner
// profile.
func ChooseArchitecture(p StudentProfile) Architecture {
	switch {
	case p.RiskyPractice:
		return SimulationBased
	case p.SkillTraining:
		return CaseBasedTeaching
	case p.OpenEnded && p.Sophisticated:
		return LearningByExploring
	case p.OpenEnded:
		return IncidentalLearning
	case p.Sophisticated:
		return LearningByReflection
	default:
		return GoalDirectedLearning
	}
}

// DocumentModel names the document model a framework selects: "the
// chosen of a specific framework will result in a corresponding
// document model to be selected" (§4.5.1).
type DocumentModel int

// Document models.
const (
	HypermediaModel DocumentModel = iota
	InteractiveModel
)

func (m DocumentModel) String() string {
	if m == HypermediaModel {
		return "hypermedia"
	}
	return "interactive-multimedia"
}

// Framework is the authoring skeleton for one teaching architecture.
type Framework struct {
	Architecture Architecture
	Model        DocumentModel
	// Guidance is shown to the author in the editor.
	Guidance string
}

// FrameworkFor returns the framework of an architecture. Exploration
// favours the free-navigation hypermedia model; the rest use pre-scripted
// interactive documents.
func FrameworkFor(a Architecture) Framework {
	switch a {
	case LearningByExploring, IncidentalLearning:
		return Framework{
			Architecture: a,
			Model:        HypermediaModel,
			Guidance:     "provide a rich web of pages with glossary words and optional side paths; keep every page reachable",
		}
	case SimulationBased:
		return Framework{
			Architecture: a,
			Model:        InteractiveModel,
			Guidance:     "alternate simulator scenes with story-telling scenes; wire failure behaviors to remediation scenes",
		}
	case CaseBasedTeaching:
		return Framework{
			Architecture: a,
			Model:        InteractiveModel,
			Guidance:     "present a case, pause for the student's decision, then tell the expert's story",
		}
	case LearningByReflection:
		return Framework{
			Architecture: a,
			Model:        InteractiveModel,
			Guidance:     "after each section ask the student to articulate what they saw; branch on their answers",
		}
	default:
		return Framework{
			Architecture: a,
			Model:        InteractiveModel,
			Guidance:     "state the goal up front, let scenes be skipped, and track progress toward the goal",
		}
	}
}

// Skeleton generates a starter document for the framework: the author
// "need only to fill the media objects into the frameworks" (§4.5.1).
// The returned document validates as-is and carries placeholder text
// marking the slots to fill.
func (f Framework) Skeleton(title string, sections []string) (*document.IMDoc, *document.HyperDoc, error) {
	if title == "" {
		return nil, nil, fmt.Errorf("courseware: skeleton needs a title")
	}
	if len(sections) == 0 {
		sections = []string{"Section 1"}
	}
	if f.Model == HypermediaModel {
		doc := &document.HyperDoc{Title: title, Start: "p0"}
		for i, sec := range sections {
			id := fmt.Sprintf("p%d", i)
			page := &document.Page{
				ID:    id,
				Title: sec,
				Items: []document.PageItem{
					{ID: id + "-body", Kind: document.ItemMedia, Media: "store/TODO-" + id,
						At: document.Region{W: 500, H: 400}},
				},
			}
			if i+1 < len(sections) {
				page.Items = append(page.Items, document.PageItem{
					ID: id + "-next", Kind: document.ItemChoice, Text: "Next Section"})
				doc.Links = append(doc.Links, document.NavLink{
					From: id, Condition: id + "-next", To: fmt.Sprintf("p%d", i+1)})
			}
			doc.Pages = append(doc.Pages, page)
		}
		return nil, doc, doc.Validate()
	}
	doc := &document.IMDoc{Title: title}
	for i, sec := range sections {
		sceneID := fmt.Sprintf("scene%d", i)
		doc.Sections = append(doc.Sections, &document.Section{
			Title: sec,
			Scenes: []*document.Scene{{
				ID:    sceneID,
				Title: sec,
				Objects: []document.SceneObject{
					{ID: sceneID + "-body", Kind: document.ObjText,
						Text: "TODO: fill in " + sec, At: document.Region{W: 500, H: 400}},
				},
				Timeline: []document.Placement{{Object: sceneID + "-body", Kind: document.PlaceAt}},
			}},
		})
	}
	return doc, nil, doc.Validate()
}
