package courseware

import (
	"fmt"

	"mits/internal/document"
	"mits/internal/media"
	"mits/internal/mheg"
)

// CompileHyper maps a hypermedia document onto MHEG objects. Each page
// becomes a composite whose start-up runs its items in parallel; each
// navigation link becomes an MHEG link on its condition item that stops
// the current page and runs the target page. The course root's
// start-up runs the start page.
func CompileHyper(doc *document.HyperDoc, app string) (*Compiled, error) {
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	ids := NewIDAllocator(app, 1)
	out := &Compiled{
		App:            app,
		Scenes:         make(map[string]mheg.ID),
		Objects:        make(map[string]mheg.ID),
		AdvanceButtons: make(map[string]mheg.ID),
	}
	var objects []mheg.Object
	codings := make(map[media.Coding]bool)

	// Pre-allocate page composite ids for forward links.
	for _, p := range doc.Pages {
		out.Scenes[p.ID] = ids.Next()
	}

	for _, p := range doc.Pages {
		var components []mheg.ID
		itemIDs := make(map[string]mheg.ID, len(p.Items))
		for _, it := range p.Items {
			id := ids.Next()
			itemIDs[it.ID] = id
			out.Objects[p.ID+"/"+it.ID] = id
			var content *mheg.Content
			switch it.Kind {
			case document.ItemMedia:
				coding := codingForRef(it.Media, document.ObjText)
				content = mheg.NewContent(id, coding, it.Media)
				content.OrigSize = mheg.Size{W: it.At.W, H: it.At.H}
				content.Info.Name = "media:" + it.ID
				codings[coding] = true
				out.MediaRefs = append(out.MediaRefs, it.Media)
			case document.ItemWord:
				content = mheg.NewTextContent(id, it.Text)
				content.Info.Name = "word:" + it.Text
				codings[media.CodingASCII] = true
			case document.ItemChoice:
				content = mheg.NewTextContent(id, it.Text)
				content.Info.Name = "button:" + it.Text
				codings[media.CodingASCII] = true
			default:
				return nil, fmt.Errorf("courseware: page %q item %q: unknown kind %v", p.ID, it.ID, it.Kind)
			}
			objects = append(objects, content)
			components = append(components, id)
		}

		// Start-up: run every item in parallel.
		startup := mheg.NewAction(ids.Next())
		for _, cid := range components {
			startup.Items = append(startup.Items, mheg.Act(mheg.OpRun, cid))
		}
		objects = append(objects, startup)

		// Navigation links out of this page.
		var linkIDs []mheg.ID
		for _, nav := range doc.Choices(p.ID) {
			l := mheg.OnSelect(ids.Next(), itemIDs[nav.Condition],
				mheg.Act(mheg.OpStop, out.Scenes[nav.From]),
				mheg.Act(mheg.OpRun, out.Scenes[nav.To]),
			)
			l.Info.Name = fmt.Sprintf("nav:%s->%s", nav.From, nav.To)
			objects = append(objects, l)
			linkIDs = append(linkIDs, l.ID)
		}

		comp := mheg.NewComposite(out.Scenes[p.ID], components...)
		comp.Info.Name = "page:" + p.ID
		comp.Links = linkIDs
		comp.StartUp = startup.ID
		objects = append(objects, comp)
	}

	// Root composite.
	rootID := ids.Next()
	start := doc.StartPage()
	startup := mheg.NewAction(ids.Next(), mheg.Act(mheg.OpRun, out.Scenes[start.ID]))
	root := mheg.NewComposite(rootID)
	root.Info.Name = doc.Title
	for _, p := range doc.Pages {
		root.Components = append(root.Components, out.Scenes[p.ID])
	}
	root.StartUp = startup.ID
	objects = append(objects, startup, root)
	out.Root = rootID

	desc := mheg.NewDescriptor(ids.Next(), rootID)
	for coding := range codings {
		if need, ok := resourceNeeds[coding]; ok {
			desc.Needs = append(desc.Needs, need)
		}
	}
	desc.ReadMe = fmt.Sprintf("hypermedia courseware %q compiled by MITS", doc.Title)
	objects = append(objects, desc)
	out.Descriptor = desc

	container := mheg.NewContainer(ids.Next(), objects...)
	container.Info.Name = doc.Title
	out.Container = container
	return out, nil
}
