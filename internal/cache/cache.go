// Package cache is the object cache in front of the courseware
// database: a size-bounded LRU with singleflight fill, the second of
// the two mechanisms (after RPC pipelining) that "Media Objects in
// Time" credits for its streaming throughput. A navigator replays the
// same MPEG objects every time a student revisits a scene; serving the
// replay from local memory turns a network round trip into a map
// lookup, and singleflight turns a stampede of misses for one hot
// object into a single upstream fetch that every waiter shares.
//
// The cache is value-agnostic: callers store whatever they fetched
// along with its byte cost, and own the copy-on-read discipline for
// mutable values (see transport.DBClient.GetContent, which clones
// cached content records so no caller can corrupt shared bytes).
package cache

import (
	"container/list"
	"sync"
	"time"

	"mits/internal/obs"
)

// Cache is a size-bounded LRU keyed by string with singleflight fill.
// Safe for concurrent use. The zero value is unusable; create with New.
type Cache struct {
	maxBytes int64

	mu     sync.Mutex
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	flight map[string]*flightCall
	bytes  int64

	// Exposed in /stats: hit ratio tells an operator whether the cache
	// is sized for the working set, evictions whether it is thrashing,
	// and the fill-latency histogram what a miss actually costs (the
	// upstream fetch time a hit saves).
	hits, misses, evictions, shared *obs.Counter
	bytesGauge, objectsGauge        *obs.Gauge
	fillLatency                     *obs.Histogram
}

// entry is one resident object.
type entry struct {
	key  string
	val  any
	cost int64
}

// flightCall is one in-progress fill that late arrivals wait on.
type flightCall struct {
	done chan struct{} // closed after val/err are set
	val  any
	err  error
}

// New builds a cache bounded to maxBytes of stored cost; name labels
// its metrics (cache_hits_total{cache=name} and friends). maxBytes <= 0
// yields a cache that stores nothing but still deduplicates concurrent
// fills.
func New(name string, maxBytes int64) *Cache {
	return &Cache{
		maxBytes:     maxBytes,
		ll:           list.New(),
		items:        make(map[string]*list.Element),
		flight:       make(map[string]*flightCall),
		hits:         obs.GetCounter("cache_hits_total", "cache", name),
		misses:       obs.GetCounter("cache_misses_total", "cache", name),
		evictions:    obs.GetCounter("cache_evictions_total", "cache", name),
		shared:       obs.GetCounter("cache_singleflight_shared_total", "cache", name),
		bytesGauge:   obs.GetGauge("cache_bytes", "cache", name),
		objectsGauge: obs.GetGauge("cache_objects", "cache", name),
		fillLatency:  obs.GetHistogram("cache_fill_latency_ns", "cache", name),
	}
}

// Get returns the cached value for key, refreshing its recency.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*entry).val, true
	}
	c.misses.Inc()
	return nil, false
}

// GetOrFill returns the cached value for key, or fills it by calling
// fetch exactly once no matter how many goroutines miss concurrently —
// the singleflight guarantee. Waiters share the leader's value (and
// error); successful fills are cached at the returned cost. A fill
// error is returned to every waiter of that flight but is not cached:
// the next GetOrFill tries again.
func (c *Cache) GetOrFill(key string, fetch func() (val any, cost int64, err error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, nil
	}
	if fc, ok := c.flight[key]; ok {
		c.mu.Unlock()
		<-fc.done
		c.shared.Inc()
		return fc.val, fc.err
	}
	fc := &flightCall{done: make(chan struct{})}
	c.flight[key] = fc
	c.misses.Inc()
	c.mu.Unlock()

	start := time.Now()
	val, cost, err := fetch()
	c.fillLatency.Observe(time.Since(start))

	c.mu.Lock()
	delete(c.flight, key)
	if err == nil {
		c.addLocked(key, val, cost)
	}
	c.mu.Unlock()
	fc.val, fc.err = val, err
	close(fc.done)
	return val, err
}

// Add inserts (or replaces) a value at the given byte cost, evicting
// from the cold end until the bound holds. Values costing more than
// the whole cache are not stored — they would only evict everything
// else on their way through.
func (c *Cache) Add(key string, val any, cost int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(key, val, cost)
}

func (c *Cache) addLocked(key string, val any, cost int64) {
	if cost > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		old := el.Value.(*entry)
		c.bytes += cost - old.cost
		old.val, old.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, cost: cost})
		c.bytes += cost
	}
	for c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.evictions.Inc()
	}
	c.bytesGauge.Set(c.bytes)
	c.objectsGauge.Set(int64(len(c.items)))
}

// Remove drops a key, if present — the invalidation hook for a future
// PutContent-through-cache path.
func (c *Cache) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
		c.bytesGauge.Set(c.bytes)
		c.objectsGauge.Set(int64(len(c.items)))
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.cost
}

// Len reports resident objects.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes reports resident cost.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
