package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUEvictsColdEnd(t *testing.T) {
	c := New("t-evict", 100)
	c.Add("a", "A", 40)
	c.Add("b", "B", 40)
	if _, ok := c.Get("a"); !ok { // refresh a: b is now coldest
		t.Fatal("a missing")
	}
	c.Add("c", "C", 40) // 120 > 100: evict b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being coldest")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted, want only b", k)
		}
	}
	if c.Bytes() != 80 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 80/2", c.Bytes(), c.Len())
	}
}

func TestLRUReplaceAdjustsCost(t *testing.T) {
	c := New("t-replace", 100)
	c.Add("a", "A", 60)
	c.Add("a", "A2", 30)
	if c.Bytes() != 30 || c.Len() != 1 {
		t.Fatalf("bytes=%d len=%d after replace, want 30/1", c.Bytes(), c.Len())
	}
	if v, _ := c.Get("a"); v != "A2" {
		t.Fatalf("got %v, want replacement", v)
	}
}

func TestOversizedValueNotStored(t *testing.T) {
	c := New("t-oversize", 100)
	c.Add("big", "B", 101)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("value larger than the whole cache was stored")
	}
}

func TestRemove(t *testing.T) {
	c := New("t-remove", 100)
	c.Add("a", "A", 10)
	c.Remove("a")
	c.Remove("a") // idempotent
	if _, ok := c.Get("a"); ok || c.Bytes() != 0 {
		t.Fatal("Remove left residue")
	}
}

// TestSingleflight is the stampede contract: N concurrent misses for
// one key run the fetch exactly once and all share its value.
func TestSingleflight(t *testing.T) {
	c := New("t-flight", 1<<20)
	var fetches atomic.Int64
	gate := make(chan struct{})
	const waiters = 32
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrFill("hot", func() (any, int64, error) {
				fetches.Add(1)
				<-gate // hold the flight open until all waiters queued
				return "payload", 7, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := fetches.Load(); n != 1 {
		t.Fatalf("fetch ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "payload" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
	if v, err := c.GetOrFill("hot", func() (any, int64, error) {
		t.Fatal("fetch ran on a warm key")
		return nil, 0, nil
	}); err != nil || v != "payload" {
		t.Fatalf("warm read: %v %v", v, err)
	}
}

// TestFillErrorNotCached: a failed fill reaches every waiter of that
// flight but the next call tries again.
func TestFillErrorNotCached(t *testing.T) {
	c := New("t-err", 100)
	boom := errors.New("upstream down")
	if _, err := c.GetOrFill("k", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want fill error", err)
	}
	if c.Len() != 0 {
		t.Fatal("error was cached")
	}
	v, err := c.GetOrFill("k", func() (any, int64, error) { return "ok", 2, nil })
	if err != nil || v != "ok" {
		t.Fatalf("recovery fill: %v %v", v, err)
	}
}

// TestConcurrentMixedKeys hammers the cache under -race.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New("t-race", 512)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%24)
				v, err := c.GetOrFill(key, func() (any, int64, error) { return key, 64, nil })
				if err != nil || v != key {
					t.Errorf("GetOrFill(%s) = %v, %v", key, v, err)
					return
				}
				if i%17 == 0 {
					c.Remove(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if b := c.Bytes(); b > 512 {
		t.Fatalf("cache over bound: %d bytes", b)
	}
}
