package facilitator

import (
	"bytes"
	"encoding/gob"

	"mits/internal/transport"
)

// Network method names of the facilitator service.
const (
	MethodOpenRoom = "fac.OpenRoom"
	MethodJoin     = "fac.Join"
	MethodLeave    = "fac.Leave"
	MethodSay      = "fac.Say"
	MethodMessages = "fac.Messages"
	MethodMembers  = "fac.Members"
	MethodRooms    = "fac.Rooms"
	MethodPublish  = "fac.Publish"
	MethodRead     = "fac.Read"
	MethodBoards   = "fac.Boards"
	MethodSend     = "fac.Send"
	MethodInbox    = "fac.Inbox"
)

func enc(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func dec(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

type roomMemberReq struct{ Room, Member string }
type sayReq struct{ Room, Member, Text string }
type pollReq struct {
	Name  string
	After int
}
type publishReq struct{ Board, Author, Subject, Body string }
type mailReq struct{ From, To, Subject, Body string }

// RegisterService exposes a Facilitator on a transport mux.
func RegisterService(m *transport.Mux, f *Facilitator) {
	m.Register(MethodOpenRoom, func(_ string, p []byte) ([]byte, error) {
		var name string
		if err := dec(p, &name); err != nil {
			return nil, err
		}
		return nil, f.OpenRoom(name)
	})
	m.Register(MethodJoin, func(_ string, p []byte) ([]byte, error) {
		var req roomMemberReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		return nil, f.Join(req.Room, req.Member)
	})
	m.Register(MethodLeave, func(_ string, p []byte) ([]byte, error) {
		var req roomMemberReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		return nil, f.Leave(req.Room, req.Member)
	})
	m.Register(MethodSay, func(_ string, p []byte) ([]byte, error) {
		var req sayReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		seq, err := f.Say(req.Room, req.Member, req.Text)
		if err != nil {
			return nil, err
		}
		return enc(seq)
	})
	m.Register(MethodMessages, func(_ string, p []byte) ([]byte, error) {
		var req pollReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		msgs, err := f.Messages(req.Name, req.After)
		if err != nil {
			return nil, err
		}
		return enc(msgs)
	})
	m.Register(MethodMembers, func(_ string, p []byte) ([]byte, error) {
		var name string
		if err := dec(p, &name); err != nil {
			return nil, err
		}
		members, err := f.Members(name)
		if err != nil {
			return nil, err
		}
		return enc(members)
	})
	m.Register(MethodRooms, func(_ string, _ []byte) ([]byte, error) {
		return enc(f.Rooms())
	})
	m.Register(MethodPublish, func(_ string, p []byte) ([]byte, error) {
		var req publishReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		seq, err := f.Publish(req.Board, req.Author, req.Subject, req.Body)
		if err != nil {
			return nil, err
		}
		return enc(seq)
	})
	m.Register(MethodRead, func(_ string, p []byte) ([]byte, error) {
		var req pollReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		posts, err := f.Read(req.Name, req.After)
		if err != nil {
			return nil, err
		}
		return enc(posts)
	})
	m.Register(MethodBoards, func(_ string, _ []byte) ([]byte, error) {
		return enc(f.Boards())
	})
	m.Register(MethodSend, func(_ string, p []byte) ([]byte, error) {
		var req mailReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		seq, err := f.Send(req.From, req.To, req.Subject, req.Body)
		if err != nil {
			return nil, err
		}
		return enc(seq)
	})
	m.Register(MethodInbox, func(_ string, p []byte) ([]byte, error) {
		var recipient string
		if err := dec(p, &recipient); err != nil {
			return nil, err
		}
		return enc(f.Inbox(recipient))
	})
}

// Client is the navigator-side view of the facilitator service.
type Client struct {
	C transport.Client
}

// OpenRoom creates a discussion room.
func (c Client) OpenRoom(name string) error {
	req, err := enc(name)
	if err != nil {
		return err
	}
	_, err = c.C.Call(MethodOpenRoom, req)
	return err
}

// Join enters a room.
func (c Client) Join(room, member string) error {
	req, err := enc(roomMemberReq{Room: room, Member: member})
	if err != nil {
		return err
	}
	_, err = c.C.Call(MethodJoin, req)
	return err
}

// Leave exits a room.
func (c Client) Leave(room, member string) error {
	req, err := enc(roomMemberReq{Room: room, Member: member})
	if err != nil {
		return err
	}
	_, err = c.C.Call(MethodLeave, req)
	return err
}

// Say posts a message.
func (c Client) Say(room, member, text string) (int, error) {
	req, err := enc(sayReq{Room: room, Member: member, Text: text})
	if err != nil {
		return 0, err
	}
	out, err := c.C.Call(MethodSay, req)
	if err != nil {
		return 0, err
	}
	var seq int
	return seq, dec(out, &seq)
}

// Messages polls a room.
func (c Client) Messages(room string, after int) ([]ChatMessage, error) {
	req, err := enc(pollReq{Name: room, After: after})
	if err != nil {
		return nil, err
	}
	out, err := c.C.Call(MethodMessages, req)
	if err != nil {
		return nil, err
	}
	var msgs []ChatMessage
	return msgs, dec(out, &msgs)
}

// Members lists a room's members.
func (c Client) Members(room string) ([]string, error) {
	req, err := enc(room)
	if err != nil {
		return nil, err
	}
	out, err := c.C.Call(MethodMembers, req)
	if err != nil {
		return nil, err
	}
	var members []string
	return members, dec(out, &members)
}

// Rooms lists open rooms.
func (c Client) Rooms() ([]string, error) {
	out, err := c.C.Call(MethodRooms, nil)
	if err != nil {
		return nil, err
	}
	var rooms []string
	return rooms, dec(out, &rooms)
}

// Publish posts to a bulletin board.
func (c Client) Publish(board, author, subject, body string) (int, error) {
	req, err := enc(publishReq{Board: board, Author: author, Subject: subject, Body: body})
	if err != nil {
		return 0, err
	}
	out, err := c.C.Call(MethodPublish, req)
	if err != nil {
		return 0, err
	}
	var seq int
	return seq, dec(out, &seq)
}

// Read polls a board.
func (c Client) Read(board string, after int) ([]Post, error) {
	req, err := enc(pollReq{Name: board, After: after})
	if err != nil {
		return nil, err
	}
	out, err := c.C.Call(MethodRead, req)
	if err != nil {
		return nil, err
	}
	var posts []Post
	return posts, dec(out, &posts)
}

// Boards lists news groups.
func (c Client) Boards() ([]string, error) {
	out, err := c.C.Call(MethodBoards, nil)
	if err != nil {
		return nil, err
	}
	var boards []string
	return boards, dec(out, &boards)
}

// SendMail delivers a message to a mailbox.
func (c Client) SendMail(from, to, subject, body string) (int, error) {
	req, err := enc(mailReq{From: from, To: to, Subject: subject, Body: body})
	if err != nil {
		return 0, err
	}
	out, err := c.C.Call(MethodSend, req)
	if err != nil {
		return 0, err
	}
	var seq int
	return seq, dec(out, &seq)
}

// Inbox fetches a mailbox.
func (c Client) Inbox(recipient string) ([]Mail, error) {
	req, err := enc(recipient)
	if err != nil {
		return nil, err
	}
	out, err := c.C.Call(MethodInbox, req)
	if err != nil {
		return nil, err
	}
	var mail []Mail
	return mail, dec(out, &mail)
}
