package facilitator

import (
	"fmt"
	"time"

	"mits/internal/sim"
)

// HelpDesk is a virtual-time queueing model of help-on-demand: K
// consultants answer questions; excess questions wait in FIFO order.
//
// With K=3 and no balking it reproduces the SIDL satellite system's
// telephone queue ("only three calls can be taken at a time, others
// will be put into a queue", §1.3.1); with more consultants it models
// the MITS on-line facilitator. Experiment E20 measures the waiting
// times the thesis complains about ("this could be frustrating for a
// distant student trying to get a word in").
type HelpDesk struct {
	clock       *sim.Clock
	consultants int
	busy        int
	queue       []*Ticket

	// Service generates per-question answer durations.
	Service func() time.Duration

	// Metrics.
	Wait     sim.Series // time from Ask to a consultant picking up (ns)
	Answered int
	MaxQueue int
}

// Ticket is one outstanding question.
type Ticket struct {
	Student  string
	Question string
	asked    sim.Time
	// Done is invoked (in virtual time) when the answer completes.
	Done func(waited, total time.Duration)
}

// NewHelpDesk creates a desk with K consultants on the given clock.
func NewHelpDesk(clock *sim.Clock, consultants int, service func() time.Duration) (*HelpDesk, error) {
	if consultants < 1 {
		return nil, fmt.Errorf("facilitator: help desk needs ≥1 consultant")
	}
	if service == nil {
		return nil, fmt.Errorf("facilitator: help desk needs a service-time model")
	}
	return &HelpDesk{clock: clock, consultants: consultants, Service: service}, nil
}

// Ask submits a question at the current virtual instant.
func (h *HelpDesk) Ask(t *Ticket) {
	t.asked = h.clock.Now()
	if h.busy < h.consultants {
		h.serve(t)
		return
	}
	h.queue = append(h.queue, t)
	if len(h.queue) > h.MaxQueue {
		h.MaxQueue = len(h.queue)
	}
}

// QueueLength reports questions currently waiting.
func (h *HelpDesk) QueueLength() int { return len(h.queue) }

// Busy reports consultants currently answering.
func (h *HelpDesk) Busy() int { return h.busy }

func (h *HelpDesk) serve(t *Ticket) {
	h.busy++
	waited := h.clock.Now().Sub(t.asked)
	h.Wait.AddDuration(waited)
	dur := h.Service()
	h.clock.After(dur, func(now sim.Time) {
		h.busy--
		h.Answered++
		if t.Done != nil {
			t.Done(waited, now.Sub(t.asked))
		}
		if len(h.queue) > 0 {
			next := h.queue[0]
			copy(h.queue, h.queue[1:])
			h.queue = h.queue[:len(h.queue)-1]
			h.serve(next)
		}
	})
}
