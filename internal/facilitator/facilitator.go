// Package facilitator implements the on-line facilitator site of §3.2
// and the communication features of §5.2.1: meeting and discussion
// rooms ("the students can use this facility to ask questions to the
// on-line consultants, or discuss ... with other students"), the
// bulletin board (news groups), e-mail, and the help-on-demand desk
// whose queueing behaviour experiment E20 compares against the SIDL
// satellite system's three-line phone queue (§1.3.1).
package facilitator

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNotFound is returned for unknown rooms, boards or mailboxes.
var ErrNotFound = errors.New("facilitator: not found")

// ChatMessage is one utterance in a discussion room.
type ChatMessage struct {
	Seq    int
	Author string
	Text   string
}

// Room is a meeting/discussion space.
type room struct {
	members  map[string]bool
	messages []ChatMessage
}

// Post is one bulletin-board article ("announcement of new courses or
// features of the virtual school, analysis of the common mistakes in an
// exercise").
type Post struct {
	Seq     int
	Author  string
	Subject string
	Body    string
}

// Mail is one e-mail message.
type Mail struct {
	Seq     int
	From    string
	To      string
	Subject string
	Body    string
}

// Facilitator is the communication hub. Safe for concurrent use.
type Facilitator struct {
	mu     sync.RWMutex
	rooms  map[string]*room
	boards map[string][]Post
	mail   map[string][]Mail
	seq    int
}

// New creates an empty facilitator site.
func New() *Facilitator {
	return &Facilitator{
		rooms:  make(map[string]*room),
		boards: make(map[string][]Post),
		mail:   make(map[string][]Mail),
	}
}

// nextSeqLocked issues the next sequence number; callers hold f.mu.
func (f *Facilitator) nextSeqLocked() int {
	f.seq++
	return f.seq
}

// ---- meeting and discussing ----

// OpenRoom creates a discussion room if absent.
func (f *Facilitator) OpenRoom(name string) error {
	if name == "" {
		return fmt.Errorf("facilitator: room needs a name")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.rooms[name]; !ok {
		f.rooms[name] = &room{members: make(map[string]bool)}
	}
	return nil
}

// Join adds a member to a room.
func (f *Facilitator) Join(roomName, member string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.rooms[roomName]
	if !ok {
		return fmt.Errorf("%w: room %q", ErrNotFound, roomName)
	}
	r.members[member] = true
	return nil
}

// Leave removes a member.
func (f *Facilitator) Leave(roomName, member string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.rooms[roomName]
	if !ok {
		return fmt.Errorf("%w: room %q", ErrNotFound, roomName)
	}
	delete(r.members, member)
	return nil
}

// Say posts a message to a room; only members may speak.
func (f *Facilitator) Say(roomName, member, text string) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.rooms[roomName]
	if !ok {
		return 0, fmt.Errorf("%w: room %q", ErrNotFound, roomName)
	}
	if !r.members[member] {
		return 0, fmt.Errorf("facilitator: %q is not in room %q", member, roomName)
	}
	msg := ChatMessage{Seq: f.nextSeqLocked(), Author: member, Text: text}
	r.messages = append(r.messages, msg)
	return msg.Seq, nil
}

// Messages returns room messages with Seq greater than after — clients
// poll incrementally.
func (f *Facilitator) Messages(roomName string, after int) ([]ChatMessage, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	r, ok := f.rooms[roomName]
	if !ok {
		return nil, fmt.Errorf("%w: room %q", ErrNotFound, roomName)
	}
	var out []ChatMessage
	for _, m := range r.messages {
		if m.Seq > after {
			out = append(out, m)
		}
	}
	return out, nil
}

// Members lists a room's members, sorted.
func (f *Facilitator) Members(roomName string) ([]string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	r, ok := f.rooms[roomName]
	if !ok {
		return nil, fmt.Errorf("%w: room %q", ErrNotFound, roomName)
	}
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}

// Rooms lists open rooms, sorted.
func (f *Facilitator) Rooms() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.rooms))
	for r := range f.rooms {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// ---- bulletin board ----

// Publish posts an article to a news group, creating the group on
// first use.
func (f *Facilitator) Publish(board, author, subject, body string) (int, error) {
	if board == "" || subject == "" {
		return 0, fmt.Errorf("facilitator: post needs a board and a subject")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	p := Post{Seq: f.nextSeqLocked(), Author: author, Subject: subject, Body: body}
	f.boards[board] = append(f.boards[board], p)
	return p.Seq, nil
}

// Read returns a board's posts with Seq greater than after.
func (f *Facilitator) Read(board string, after int) ([]Post, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	posts, ok := f.boards[board]
	if !ok {
		return nil, fmt.Errorf("%w: board %q", ErrNotFound, board)
	}
	var out []Post
	for _, p := range posts {
		if p.Seq > after {
			out = append(out, p)
		}
	}
	return out, nil
}

// Boards lists existing news groups, sorted.
func (f *Facilitator) Boards() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.boards))
	for b := range f.boards {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// ---- e-mail ----

// Send delivers a mail to the recipient's mailbox.
func (f *Facilitator) Send(from, to, subject, body string) (int, error) {
	if to == "" {
		return 0, fmt.Errorf("facilitator: mail needs a recipient")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	m := Mail{Seq: f.nextSeqLocked(), From: from, To: to, Subject: subject, Body: body}
	f.mail[to] = append(f.mail[to], m)
	return m.Seq, nil
}

// Inbox returns the recipient's mail; an empty mailbox is not an error.
func (f *Facilitator) Inbox(recipient string) []Mail {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]Mail(nil), f.mail[recipient]...)
}
