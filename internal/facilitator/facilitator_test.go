package facilitator

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mits/internal/sim"
)

func TestRoomLifecycle(t *testing.T) {
	f := New()
	if err := f.OpenRoom("atm-questions"); err != nil {
		t.Fatal(err)
	}
	if err := f.OpenRoom(""); err == nil {
		t.Error("unnamed room accepted")
	}
	f.OpenRoom("atm-questions") // idempotent
	if got := f.Rooms(); len(got) != 1 {
		t.Errorf("rooms %v", got)
	}
	if err := f.Join("atm-questions", "880001"); err != nil {
		t.Fatal(err)
	}
	f.Join("atm-questions", "consultant-1")
	members, err := f.Members("atm-questions")
	if err != nil || len(members) != 2 || members[0] != "880001" {
		t.Errorf("members %v err=%v", members, err)
	}
	if err := f.Join("nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Error("joined missing room")
	}
}

func TestChatFlow(t *testing.T) {
	f := New()
	f.OpenRoom("r")
	f.Join("r", "student")
	f.Join("r", "teacher")
	if _, err := f.Say("r", "outsider", "hi"); err == nil {
		t.Error("non-member spoke")
	}
	seq1, err := f.Say("r", "student", "what is CDVT?")
	if err != nil {
		t.Fatal(err)
	}
	seq2, _ := f.Say("r", "teacher", "cell delay variation tolerance")
	if seq2 <= seq1 {
		t.Error("sequence numbers not monotone")
	}
	msgs, err := f.Messages("r", 0)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("messages %v err=%v", msgs, err)
	}
	// Incremental poll.
	newer, _ := f.Messages("r", seq1)
	if len(newer) != 1 || newer[0].Author != "teacher" {
		t.Errorf("incremental poll %v", newer)
	}
	f.Leave("r", "student")
	if _, err := f.Say("r", "student", "still here?"); err == nil {
		t.Error("departed member spoke")
	}
	if _, err := f.Messages("ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Error("read ghost room")
	}
}

func TestBulletinBoard(t *testing.T) {
	f := New()
	seq, err := f.Publish("announcements", "admin", "New course: ATM Technology", "enroll now")
	if err != nil {
		t.Fatal(err)
	}
	f.Publish("announcements", "admin", "Exam schedule", "next month")
	f.Publish("exercise-review", "ta", "Common mistakes in ex.1", "watch the HEC")
	if _, err := f.Publish("", "x", "", ""); err == nil {
		t.Error("post without board/subject accepted")
	}
	boards := f.Boards()
	if len(boards) != 2 || boards[0] != "announcements" {
		t.Errorf("boards %v", boards)
	}
	posts, err := f.Read("announcements", 0)
	if err != nil || len(posts) != 2 {
		t.Fatalf("posts %v err=%v", posts, err)
	}
	newer, _ := f.Read("announcements", seq)
	if len(newer) != 1 || newer[0].Subject != "Exam schedule" {
		t.Errorf("incremental read %v", newer)
	}
	if _, err := f.Read("ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Error("read ghost board")
	}
}

func TestMail(t *testing.T) {
	f := New()
	if _, err := f.Send("a", "", "s", "b"); err == nil {
		t.Error("mail without recipient accepted")
	}
	f.Send("student", "prof", "question about cells", "why 48 bytes?")
	f.Send("prof", "student", "re: question", "politics: 32+64 averaged")
	inbox := f.Inbox("prof")
	if len(inbox) != 1 || inbox[0].From != "student" {
		t.Errorf("prof inbox %v", inbox)
	}
	if got := f.Inbox("nobody"); len(got) != 0 {
		t.Errorf("empty inbox %v", got)
	}
}

func TestConcurrentFacilitator(t *testing.T) {
	f := New()
	f.OpenRoom("r")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			member := string(rune('a' + n))
			f.Join("r", member)
			for j := 0; j < 50; j++ {
				f.Say("r", member, "msg")
				f.Messages("r", 0)
				f.Publish("b", member, "s", "x")
				f.Send(member, "prof", "s", "b")
			}
		}(i)
	}
	wg.Wait()
	msgs, _ := f.Messages("r", 0)
	if len(msgs) != 400 {
		t.Errorf("messages=%d, want 400", len(msgs))
	}
	if len(f.Inbox("prof")) != 400 {
		t.Error("mail lost under concurrency")
	}
}

func TestHelpDeskServesWithinCapacity(t *testing.T) {
	clock := sim.NewClock()
	desk, err := NewHelpDesk(clock, 3, func() time.Duration { return time.Minute })
	if err != nil {
		t.Fatal(err)
	}
	// Three simultaneous questions: all served immediately.
	for i := 0; i < 3; i++ {
		desk.Ask(&Ticket{Student: "s"})
	}
	if desk.Busy() != 3 || desk.QueueLength() != 0 {
		t.Fatalf("busy=%d queue=%d", desk.Busy(), desk.QueueLength())
	}
	clock.Run()
	if desk.Answered != 3 {
		t.Errorf("answered=%d", desk.Answered)
	}
	if desk.Wait.Max() != 0 {
		t.Errorf("wait with free consultants = %v", time.Duration(desk.Wait.Max()))
	}
}

func TestHelpDeskQueuesBeyondCapacity(t *testing.T) {
	// The SIDL scenario: 3 lines, 10 students ask at once, 1-minute
	// answers. The last student waits 3 minutes.
	clock := sim.NewClock()
	desk, _ := NewHelpDesk(clock, 3, func() time.Duration { return time.Minute })
	var waits []time.Duration
	for i := 0; i < 10; i++ {
		desk.Ask(&Ticket{Student: "s", Done: func(w, _ time.Duration) { waits = append(waits, w) }})
	}
	if desk.QueueLength() != 7 {
		t.Fatalf("queue=%d, want 7", desk.QueueLength())
	}
	clock.Run()
	if desk.Answered != 10 {
		t.Fatalf("answered=%d", desk.Answered)
	}
	if desk.MaxQueue != 7 {
		t.Errorf("MaxQueue=%d", desk.MaxQueue)
	}
	// Waits: 0,0,0, 1m×3, 2m×3, 3m.
	last := waits[len(waits)-1]
	if last != 3*time.Minute {
		t.Errorf("last wait %v, want 3m", last)
	}
	if desk.Wait.Max() != float64(3*time.Minute) {
		t.Errorf("max wait %v", time.Duration(desk.Wait.Max()))
	}

	// Same load with 10 consultants (MITS facilitator): nobody waits.
	clock2 := sim.NewClock()
	desk2, _ := NewHelpDesk(clock2, 10, func() time.Duration { return time.Minute })
	for i := 0; i < 10; i++ {
		desk2.Ask(&Ticket{Student: "s"})
	}
	clock2.Run()
	if desk2.Wait.Max() != 0 {
		t.Errorf("10-consultant desk max wait %v", time.Duration(desk2.Wait.Max()))
	}
}

func TestHelpDeskFIFO(t *testing.T) {
	clock := sim.NewClock()
	desk, _ := NewHelpDesk(clock, 1, func() time.Duration { return time.Second })
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		desk.Ask(&Ticket{Student: name, Done: func(time.Duration, time.Duration) { order = append(order, name) }})
	}
	clock.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("service order %v", order)
	}
}

func TestHelpDeskValidation(t *testing.T) {
	clock := sim.NewClock()
	if _, err := NewHelpDesk(clock, 0, func() time.Duration { return 0 }); err == nil {
		t.Error("0 consultants accepted")
	}
	if _, err := NewHelpDesk(clock, 1, nil); err == nil {
		t.Error("nil service accepted")
	}
}
