package mediastore

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mits/internal/obs"
)

// snapshotFile is the on-disk image of a store — MEDIAFILE's role of
// real-time physical storage is played by a single gob image, which is
// all the command-line tools need to hand a database between the
// producer, the author and the server.
type snapshotFile struct {
	Docs    []*DocRecord
	Content []*ContentRecord
}

// Save writes the store to path, creating parent directories.
//
// The snapshot copies record values while the lock is held: the
// encoder runs after the lock is released, and PutDocument updates
// records in place, so encoding the live pointers would race with
// concurrent writers. Field slices need no deep copy — writers always
// replace them with freshly-allocated slices, never mutate the backing
// arrays.
func (s *Store) Save(path string) error {
	start := time.Now()
	defer func() { obs.Observe("mediastore_latency_ns", time.Since(start), "op", "save") }()
	s.mu.RLock()
	snap := snapshotFile{}
	for _, d := range s.docs {
		cp := *d
		snap.Docs = append(snap.Docs, &cp)
	}
	for _, c := range s.content {
		cp := *c
		snap.Content = append(snap.Content, &cp)
	}
	s.mu.RUnlock()

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("mediastore: save: %w", err)
	}
	// A unique temp name per Save: two concurrent saves to one path
	// must each rename their own complete image into place (last one
	// wins), not share a ".tmp" that one renames away underneath the
	// other's rename.
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("mediastore: save: %w", err)
	}
	tmp := f.Name()
	if err := gob.NewEncoder(f).Encode(snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("mediastore: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("mediastore: save: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load reads a store image written by Save.
func Load(path string) (*Store, error) {
	start := time.Now()
	defer func() { obs.Observe("mediastore_latency_ns", time.Since(start), "op", "load") }()
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mediastore: load: %w", err)
	}
	defer f.Close()
	var snap snapshotFile
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mediastore: load %s: %w", path, err)
	}
	s := New()
	for _, d := range snap.Docs {
		s.docs[d.Name] = d
		s.keywords.add(d.Name, d.Keywords)
	}
	for _, c := range snap.Content {
		s.content[c.Ref] = c
	}
	s.obsDocs.Set(int64(len(s.docs)))
	s.obsContents.Set(int64(len(s.content)))
	s.obsKeywords.Set(int64(s.keywords.Nodes()))
	return s, nil
}
