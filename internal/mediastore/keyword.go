package mediastore

import (
	"sort"
	"strings"
)

// KeywordTree indexes documents by hierarchical keyword paths
// ("network/atm/cells"). The navigator's library browser renders the
// tree (GetKeywordTree, §5.5) and resolves keyword queries through it.
type KeywordTree struct {
	root *kwNode
}

type kwNode struct {
	children map[string]*kwNode
	docs     map[string]bool
}

func newKwNode() *kwNode {
	return &kwNode{children: make(map[string]*kwNode), docs: make(map[string]bool)}
}

// NewKeywordTree creates an empty index.
func NewKeywordTree() *KeywordTree { return &KeywordTree{root: newKwNode()} }

func splitPath(keyword string) []string {
	var parts []string
	for _, p := range strings.Split(strings.ToLower(keyword), "/") {
		p = strings.TrimSpace(p)
		if p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

func (t *KeywordTree) add(doc string, keywords []string) {
	for _, kw := range keywords {
		node := t.root
		for _, part := range splitPath(kw) {
			child, ok := node.children[part]
			if !ok {
				child = newKwNode()
				node.children[part] = child
			}
			node = child
		}
		if node != t.root {
			node.docs[doc] = true
		}
	}
}

func (t *KeywordTree) remove(doc string, keywords []string) {
	for _, kw := range keywords {
		node := t.root
		path := []*kwNode{node}
		parts := splitPath(kw)
		ok := true
		for _, part := range parts {
			child, exists := node.children[part]
			if !exists {
				ok = false
				break
			}
			node = child
			path = append(path, node)
		}
		if !ok || node == t.root {
			continue
		}
		delete(node.docs, doc)
		// Prune empty branches bottom-up.
		for i := len(path) - 1; i > 0; i-- {
			n := path[i]
			if len(n.docs) == 0 && len(n.children) == 0 {
				delete(path[i-1].children, parts[i-1])
			}
		}
	}
}

// Nodes counts the keyword paths in the index (tree nodes below the
// root) — the size figure the obs gauge reports.
func (t *KeywordTree) Nodes() int { return countNodes(t.root) - 1 }

func countNodes(n *kwNode) int {
	total := 1
	for _, c := range n.children {
		total += countNodes(c)
	}
	return total
}

// Find returns the sorted names of documents tagged at or below the
// keyword path.
func (t *KeywordTree) Find(keyword string) []string {
	node := t.root
	for _, part := range splitPath(keyword) {
		child, ok := node.children[part]
		if !ok {
			return nil
		}
		node = child
	}
	set := make(map[string]bool)
	collect(node, set)
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

func collect(n *kwNode, into map[string]bool) {
	for d := range n.docs {
		into[d] = true
	}
	for _, c := range n.children {
		collect(c, into)
	}
}

// KeywordNode is an immutable snapshot of one tree node, handed to
// clients for library browsing.
type KeywordNode struct {
	Name     string
	Docs     []string
	Children []*KeywordNode
}

// Snapshot copies the tree into client-safe form, children sorted.
func (t *KeywordTree) Snapshot() *KeywordNode { return snapshot("", t.root) }

func snapshot(name string, n *kwNode) *KeywordNode {
	out := &KeywordNode{Name: name}
	for d := range n.docs {
		out.Docs = append(out.Docs, d)
	}
	sort.Strings(out.Docs)
	names := make([]string, 0, len(n.children))
	for c := range n.children {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		out.Children = append(out.Children, snapshot(c, n.children[c]))
	}
	return out
}

// Walk visits every node of a snapshot depth-first with its full path.
func (n *KeywordNode) Walk(fn func(path string, node *KeywordNode)) {
	n.walk("", fn)
}

func (n *KeywordNode) walk(prefix string, fn func(string, *KeywordNode)) {
	path := n.Name
	if prefix != "" && n.Name != "" {
		path = prefix + "/" + n.Name
	} else if prefix != "" {
		path = prefix
	}
	fn(path, n)
	for _, c := range n.Children {
		c.walk(path, fn)
	}
}
