// Package mediastore implements the courseware database of §3.4.2 and
// the MEDIASTORE/MEDIAFILE components of the MEDIABASE platform
// (§5.1.1): an object store holding interchanged courseware (MHEG
// containers) and a separate content database holding the mono-media
// data that courseware objects reference.
//
// Storing content separately from scenario is a deliberate design
// choice of the paper — "reusability of the content objects is achieved
// among different applications ... while content objects of large size
// are transmitted only at the time they are requested" — and is what
// the E18 experiment quantifies.
package mediastore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mits/internal/obs"
)

// ErrNotFound is returned when a document or content object is absent.
var ErrNotFound = errors.New("mediastore: not found")

// DocRecord is one stored courseware document: a form (a) MHEG
// container plus catalogue metadata.
type DocRecord struct {
	Name     string
	Title    string
	Encoding string // interchange encoding of Data ("asn1" or "sgml")
	Keywords []string
	Version  int
	Data     []byte
}

// ContentRecord is one entry of the content database.
type ContentRecord struct {
	Ref      string // the reference courseware objects carry
	Coding   string
	Keywords []string
	Data     []byte
}

// Store is the courseware database. It is safe for concurrent use: the
// content server of Fig 3.5 serves many navigator clients at once.
type Store struct {
	mu       sync.RWMutex
	docs     map[string]*DocRecord
	content  map[string]*ContentRecord
	keywords *KeywordTree

	// Stats for the experiments.
	docReads     int64
	contentReads int64
	bytesOut     int64

	// Cached obs instruments, set at construction (immutable —
	// increments need no store lock). All stores in a process share
	// the Default registry, which is what a content server wants: one
	// exposition covering its whole database.
	obsGetDoc, obsPutDoc, obsGetContent, obsPutContent             *obs.Histogram
	obsHits, obsMisses, obsBytes                                   *obs.Counter
	obsErrGetDoc, obsErrPutDoc, obsErrGetContent, obsErrPutContent *obs.Counter
	obsDocs, obsContents, obsKeywords                              *obs.Gauge
}

// New creates an empty store.
func New() *Store {
	return &Store{
		docs:     make(map[string]*DocRecord),
		content:  make(map[string]*ContentRecord),
		keywords: NewKeywordTree(),

		obsGetDoc:     obs.GetHistogram("mediastore_latency_ns", "op", "get_document"),
		obsPutDoc:     obs.GetHistogram("mediastore_latency_ns", "op", "put_document"),
		obsGetContent: obs.GetHistogram("mediastore_latency_ns", "op", "get_content"),
		obsPutContent: obs.GetHistogram("mediastore_latency_ns", "op", "put_content"),
		obsHits:       obs.GetCounter("mediastore_lookup_hits_total"),
		obsMisses:     obs.GetCounter("mediastore_lookup_misses_total"),
		// Per-op error counters: a rising get_* rate means dangling
		// references (a scenario naming content that was never put), a
		// rising put_* rate a misbehaving author tool.
		obsErrGetDoc:     obs.GetCounter("mediastore_errors_total", "op", "get_document"),
		obsErrPutDoc:     obs.GetCounter("mediastore_errors_total", "op", "put_document"),
		obsErrGetContent: obs.GetCounter("mediastore_errors_total", "op", "get_content"),
		obsErrPutContent: obs.GetCounter("mediastore_errors_total", "op", "put_content"),
		obsBytes:         obs.GetCounter("mediastore_bytes_out_total"),
		obsDocs:          obs.GetGauge("mediastore_documents"),
		obsContents:      obs.GetGauge("mediastore_content_objects"),
		obsKeywords:      obs.GetGauge("mediastore_keyword_index_nodes"),
	}
}

// PutDocument stores or updates a courseware document, bumping its
// version ("it can be updated in both the content and the scenario at
// anytime", §3.2).
func (s *Store) PutDocument(name, title, encoding string, data []byte, keywords ...string) (int, error) {
	if name == "" {
		s.obsErrPutDoc.Inc()
		return 0, fmt.Errorf("mediastore: document with empty name")
	}
	if len(data) == 0 {
		s.obsErrPutDoc.Inc()
		return 0, fmt.Errorf("mediastore: document %q with no data", name)
	}
	start := time.Now()
	defer func() { s.obsPutDoc.Observe(time.Since(start)) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.docs[name]
	if !ok {
		rec = &DocRecord{Name: name}
		s.docs[name] = rec
	} else {
		s.keywords.remove(name, rec.Keywords)
	}
	rec.Title = title
	rec.Encoding = encoding
	rec.Keywords = append([]string(nil), keywords...)
	rec.Data = append([]byte(nil), data...)
	rec.Version++
	s.keywords.add(name, keywords)
	s.obsDocs.Set(int64(len(s.docs)))
	s.obsKeywords.Set(int64(s.keywords.Nodes()))
	return rec.Version, nil
}

// GetDocument retrieves a document by name (the Get_Selected_Doc API of
// §5.3.2).
func (s *Store) GetDocument(name string) (*DocRecord, error) {
	start := time.Now()
	defer func() { s.obsGetDoc.Observe(time.Since(start)) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.docs[name]
	if !ok {
		s.obsMisses.Inc()
		s.obsErrGetDoc.Inc()
		return nil, fmt.Errorf("%w: document %q", ErrNotFound, name)
	}
	s.obsHits.Inc()
	s.obsBytes.Add(int64(len(rec.Data)))
	s.docReads++
	s.bytesOut += int64(len(rec.Data))
	cp := *rec
	cp.Data = append([]byte(nil), rec.Data...)
	cp.Keywords = append([]string(nil), rec.Keywords...)
	return &cp, nil
}

// ListDocuments returns the stored document names, sorted (the
// Get_List_Doc API of §5.3.2).
func (s *Store) ListDocuments() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.docs))
	for n := range s.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DeleteDocument removes a document.
func (s *Store) DeleteDocument(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.docs[name]
	if !ok {
		return fmt.Errorf("%w: document %q", ErrNotFound, name)
	}
	s.keywords.remove(name, rec.Keywords)
	delete(s.docs, name)
	s.obsDocs.Set(int64(len(s.docs)))
	s.obsKeywords.Set(int64(s.keywords.Nodes()))
	return nil
}

// DocsByKeyword returns names of documents carrying the keyword (the
// GetDocByKeyword API of §5.5). Keyword paths match by prefix:
// "network" finds documents tagged "network/atm".
func (s *Store) DocsByKeyword(keyword string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.keywords.Find(keyword)
}

// Keywords returns a snapshot of the keyword tree (the GetKeywordTree
// API of §5.5).
func (s *Store) Keywords() *KeywordNode {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.keywords.Snapshot()
}

// PutContent stores a mono-media object in the content database under
// the given reference.
func (s *Store) PutContent(ref, coding string, data []byte, keywords ...string) error {
	if ref == "" {
		s.obsErrPutContent.Inc()
		return fmt.Errorf("mediastore: content with empty reference")
	}
	if len(data) == 0 {
		s.obsErrPutContent.Inc()
		return fmt.Errorf("mediastore: content %q with no data", ref)
	}
	start := time.Now()
	defer func() { s.obsPutContent.Observe(time.Since(start)) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.content[ref] = &ContentRecord{
		Ref:      ref,
		Coding:   coding,
		Keywords: append([]string(nil), keywords...),
		Data:     append([]byte(nil), data...),
	}
	s.obsContents.Set(int64(len(s.content)))
	return nil
}

// GetContent retrieves content data by reference.
//
// Aliasing audit (the record sits behind the navigator content cache,
// where a shared byte slice would let one caller corrupt what every
// other caller reads): the returned record is a deep copy — Data and
// Keywords are cloned, never views of the store's internal slices, so
// the caller may mutate it freely. Callers that only read (a server
// handler about to serialize the record onto the wire) should use
// GetContentBorrow and skip the copy.
// TestGetContentDataIsPrivateCopy pins this end.
func (s *Store) GetContent(ref string) (*ContentRecord, error) {
	rec, err := s.GetContentBorrow(ref)
	if err != nil {
		return nil, err
	}
	cp := *rec
	cp.Data = append([]byte(nil), rec.Data...)
	cp.Keywords = append([]string(nil), rec.Keywords...)
	return &cp, nil
}

// GetContentBorrow retrieves content by reference without copying: the
// returned record is the store's own. It is safe to read indefinitely
// — PutContent replaces records wholesale (fresh struct, fresh slices)
// and never mutates one in place, so a borrowed record is immutable
// for its lifetime; a concurrent republish simply leaves the borrower
// reading the superseded snapshot. Borrowers must not write through
// it. This is the serving hot path: a multi-MB media object is read
// thousands of times per publish, and GetContent's defensive copy was
// pure allocator load when the caller immediately re-serializes.
// TestGetContentBorrowIsZeroCopy pins the no-copy end.
func (s *Store) GetContentBorrow(ref string) (*ContentRecord, error) {
	start := time.Now()
	defer func() { s.obsGetContent.Observe(time.Since(start)) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.content[ref]
	if !ok {
		s.obsMisses.Inc()
		s.obsErrGetContent.Inc()
		return nil, fmt.Errorf("%w: content %q", ErrNotFound, ref)
	}
	s.obsHits.Inc()
	s.obsBytes.Add(int64(len(rec.Data)))
	s.contentReads++
	s.bytesOut += int64(len(rec.Data))
	return rec, nil
}

// HasContent reports whether every given reference resolves, returning
// the missing ones — used to validate a courseware's media refs before
// publication.
func (s *Store) HasContent(refs ...string) (missing []string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range refs {
		if _, ok := s.content[r]; !ok {
			missing = append(missing, r)
		}
	}
	return missing
}

// ListContent returns stored content references, optionally filtered by
// a prefix ("store/atm/").
func (s *Store) ListContent(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	refs := make([]string, 0, len(s.content))
	for r := range s.content {
		if strings.HasPrefix(r, prefix) {
			refs = append(refs, r)
		}
	}
	sort.Strings(refs)
	return refs
}

// Stats reports served volume for the experiments.
func (s *Store) Stats() (docReads, contentReads, bytesOut int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.docReads, s.contentReads, s.bytesOut
}

// Sizes reports how many documents and content objects are stored.
func (s *Store) Sizes() (docs, contents int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs), len(s.content)
}
