package mediastore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestSaveConcurrentWithPutDocument is the regression test for a data
// race mitslint's audit surfaced: Save used to collect the live
// *DocRecord pointers under the lock but gob-encode them after
// releasing it, while PutDocument updates records in place. Run with
// -race; before the fix the encoder read Data/Version while a writer
// replaced them.
func TestSaveConcurrentWithPutDocument(t *testing.T) {
	s := New()
	if _, err := s.PutDocument("course", "Title", "asn1", []byte("v1"), "networking"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutContent("store/intro", "mpeg", []byte("frames")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "image.gob")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			data := []byte(fmt.Sprintf("version %d payload", i))
			if _, err := s.PutDocument("course", "Title", "asn1", data, "networking"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if err := s.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if docs, contents := loaded.Sizes(); docs != 1 || contents != 1 {
		t.Errorf("loaded %d docs, %d contents; want 1, 1", docs, contents)
	}
}

// TestStoreConcurrentStress hammers every Store API from many
// goroutines at once — the content server of Fig 3.5 serves many
// navigator clients concurrently, so the store must hold up under
// -race with mixed readers and writers.
func TestStoreConcurrentStress(t *testing.T) {
	s := New()
	const workers = 8
	const iters = 200
	path := filepath.Join(t.TempDir(), "stress.gob")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("doc-%d", w%4) // overlap names across workers
			ref := fmt.Sprintf("store/clip-%d", w%4)
			for i := 0; i < iters; i++ {
				data := []byte(fmt.Sprintf("worker %d iteration %d", w, i))
				if _, err := s.PutDocument(name, "T", "asn1", data, "networking/atm"); err != nil {
					t.Error(err)
					return
				}
				if err := s.PutContent(ref, "mpeg", data); err != nil {
					t.Error(err)
					return
				}
				if rec, err := s.GetDocument(name); err == nil {
					_ = len(rec.Data)
				}
				if rec, err := s.GetContent(ref); err == nil {
					_ = len(rec.Data)
				}
				s.DocsByKeyword("networking")
				s.ListDocuments()
				s.ListContent("store/")
				s.HasContent(ref)
				s.Stats()
				s.Sizes()
				if i%50 == 0 {
					if err := s.Save(path); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if docs, contents := s.Sizes(); docs != 4 || contents != 4 {
		t.Errorf("after stress: %d docs, %d contents; want 4, 4", docs, contents)
	}
}
