package mediastore

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestDocumentCRUD(t *testing.T) {
	s := New()
	v, err := s.PutDocument("atm-course", "ATM Technology", "asn1", []byte("data-v1"), "network/atm")
	if err != nil || v != 1 {
		t.Fatalf("Put: v=%d err=%v", v, err)
	}
	rec, err := s.GetDocument("atm-course")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Title != "ATM Technology" || string(rec.Data) != "data-v1" || rec.Version != 1 {
		t.Errorf("record %+v", rec)
	}
	// Update bumps version.
	v, _ = s.PutDocument("atm-course", "ATM Technology v2", "asn1", []byte("data-v2"), "network/atm", "broadband")
	if v != 2 {
		t.Errorf("update version %d, want 2", v)
	}
	rec, _ = s.GetDocument("atm-course")
	if string(rec.Data) != "data-v2" {
		t.Error("update did not replace data")
	}
	// Returned record is a copy, not an alias.
	rec.Data[0] = 'X'
	again, _ := s.GetDocument("atm-course")
	if string(again.Data) != "data-v2" {
		t.Error("GetDocument aliases internal state")
	}
	// List and delete.
	s.PutDocument("ip-course", "IP", "asn1", []byte("x"), "network/ip")
	if got := s.ListDocuments(); !reflect.DeepEqual(got, []string{"atm-course", "ip-course"}) {
		t.Errorf("list %v", got)
	}
	if err := s.DeleteDocument("ip-course"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteDocument("ip-course"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err=%v", err)
	}
	if _, err := s.GetDocument("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing doc err=%v", err)
	}
}

func TestDocumentValidation(t *testing.T) {
	s := New()
	if _, err := s.PutDocument("", "t", "asn1", []byte("x")); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.PutDocument("n", "t", "asn1", nil); err == nil {
		t.Error("empty data accepted")
	}
	if err := s.PutContent("", "WAV", []byte("x")); err == nil {
		t.Error("empty content ref accepted")
	}
	if err := s.PutContent("r", "WAV", nil); err == nil {
		t.Error("empty content data accepted")
	}
}

func TestContentDatabase(t *testing.T) {
	s := New()
	if err := s.PutContent("store/atm/welcome.mpg", "MPEG", []byte("videodata")); err != nil {
		t.Fatal(err)
	}
	s.PutContent("store/atm/cells.wav", "WAV", []byte("audiodata"))
	s.PutContent("store/net/lan.jpg", "JPEG", []byte("img"))

	rec, err := s.GetContent("store/atm/welcome.mpg")
	if err != nil || rec.Coding != "MPEG" || string(rec.Data) != "videodata" {
		t.Fatalf("content %+v err=%v", rec, err)
	}
	if _, err := s.GetContent("store/zzz"); !errors.Is(err, ErrNotFound) {
		t.Error("missing content found")
	}
	if got := s.ListContent("store/atm/"); len(got) != 2 {
		t.Errorf("ListContent(atm)=%v", got)
	}
	if got := s.ListContent(""); len(got) != 3 {
		t.Errorf("ListContent()=%v", got)
	}
	missing := s.HasContent("store/atm/cells.wav", "store/zzz", "store/yyy")
	if !reflect.DeepEqual(missing, []string{"store/zzz", "store/yyy"}) {
		t.Errorf("missing=%v", missing)
	}
	docs, contents := s.Sizes()
	if docs != 0 || contents != 3 {
		t.Errorf("sizes %d/%d", docs, contents)
	}
}

func TestKeywordQueries(t *testing.T) {
	s := New()
	s.PutDocument("atm", "t", "asn1", []byte("x"), "network/atm/cells", "broadband")
	s.PutDocument("ip", "t", "asn1", []byte("x"), "network/ip")
	s.PutDocument("art", "t", "asn1", []byte("x"), "humanities/art")

	if got := s.DocsByKeyword("network"); !reflect.DeepEqual(got, []string{"atm", "ip"}) {
		t.Errorf("network → %v", got)
	}
	if got := s.DocsByKeyword("network/atm"); !reflect.DeepEqual(got, []string{"atm"}) {
		t.Errorf("network/atm → %v", got)
	}
	if got := s.DocsByKeyword("BROADBAND"); !reflect.DeepEqual(got, []string{"atm"}) {
		t.Errorf("case-insensitive lookup → %v", got)
	}
	if got := s.DocsByKeyword("zzz"); got != nil {
		t.Errorf("unknown keyword → %v", got)
	}

	// Updating a document's keywords re-indexes it.
	s.PutDocument("atm", "t", "asn1", []byte("x"), "legacy")
	if got := s.DocsByKeyword("network"); !reflect.DeepEqual(got, []string{"ip"}) {
		t.Errorf("after re-keyword: network → %v", got)
	}
	if got := s.DocsByKeyword("legacy"); !reflect.DeepEqual(got, []string{"atm"}) {
		t.Errorf("legacy → %v", got)
	}

	// Deleting removes from the index and prunes branches.
	s.DeleteDocument("art")
	if got := s.DocsByKeyword("humanities"); got != nil {
		t.Errorf("deleted doc still indexed: %v", got)
	}
	tree := s.Keywords()
	for _, c := range tree.Children {
		if c.Name == "humanities" {
			t.Error("empty branch not pruned")
		}
	}
}

func TestKeywordTreeSnapshot(t *testing.T) {
	s := New()
	s.PutDocument("atm", "t", "asn1", []byte("x"), "network/atm", "network/broadband")
	s.PutDocument("ip", "t", "asn1", []byte("x"), "network/ip")
	tree := s.Keywords()
	if len(tree.Children) != 1 || tree.Children[0].Name != "network" {
		t.Fatalf("tree root children %+v", tree.Children)
	}
	net := tree.Children[0]
	var names []string
	for _, c := range net.Children {
		names = append(names, c.Name)
	}
	if !reflect.DeepEqual(names, []string{"atm", "broadband", "ip"}) {
		t.Errorf("children %v (must be sorted)", names)
	}
	var paths []string
	tree.Walk(func(path string, n *KeywordNode) { paths = append(paths, path) })
	want := []string{"", "network", "network/atm", "network/broadband", "network/ip"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("walk paths %v, want %v", paths, want)
	}
}

// Property: any sequence of puts followed by keyword lookups finds
// exactly the documents whose keyword set includes a matching prefix.
func TestKeywordIndexProperty(t *testing.T) {
	words := []string{"a", "b", "c", "a/x", "a/y", "b/x"}
	f := func(assign []uint8) bool {
		s := New()
		docKw := make(map[string]string)
		for i, a := range assign {
			if i >= 20 {
				break
			}
			name := string(rune('d'+i%20)) + "-doc" + string(rune('0'+i%10))
			kw := words[int(a)%len(words)]
			docKw[name] = kw
			s.PutDocument(name, "t", "asn1", []byte("x"), kw)
		}
		for _, query := range words {
			got := s.DocsByKeyword(query)
			gotSet := make(map[string]bool, len(got))
			for _, g := range got {
				gotSet[g] = true
			}
			for name, kw := range docKw {
				matches := kw == query || len(kw) > len(query) && kw[:len(query)+1] == query+"/"
				if matches != gotSet[name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	s.PutContent("store/x", "WAV", []byte("x"))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				switch j % 4 {
				case 0:
					s.PutDocument("doc", "t", "asn1", []byte("x"), "kw")
				case 1:
					s.GetContent("store/x")
				case 2:
					s.DocsByKeyword("kw")
				case 3:
					s.ListDocuments()
				}
			}
		}(i)
	}
	wg.Wait()
	if _, reads, bytes := s.Stats(); reads == 0 || bytes == 0 {
		t.Error("stats not accumulating")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db", "mits.db")
	s := New()
	s.PutDocument("atm", "ATM", "asn1", []byte("docdata"), "network/atm")
	s.PutContent("store/v.mpg", "MPEG", []byte("vid"), "video")

	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := loaded.GetDocument("atm")
	if err != nil || string(rec.Data) != "docdata" || rec.Version != 1 {
		t.Errorf("loaded doc %+v err=%v", rec, err)
	}
	if got := loaded.DocsByKeyword("network"); len(got) != 1 {
		t.Error("keyword index not rebuilt on load")
	}
	c, err := loaded.GetContent("store/v.mpg")
	if err != nil || string(c.Data) != "vid" {
		t.Errorf("loaded content %+v err=%v", c, err)
	}
	if _, err := Load(filepath.Join(dir, "missing.db")); err == nil {
		t.Error("loading missing file succeeded")
	}
}

// Property: save/load preserves every stored document and content blob.
func TestSaveLoadProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(docs map[string][]byte) bool {
		s := New()
		expect := make(map[string][]byte)
		for name, data := range docs {
			if name == "" || len(data) == 0 {
				continue
			}
			if _, err := s.PutDocument(name, "t", "asn1", data, "kw/"+name); err != nil {
				return false
			}
			if err := s.PutContent("c/"+name, "RAW", data); err != nil {
				return false
			}
			expect[name] = data
		}
		path := filepath.Join(dir, "prop.db")
		if err := s.Save(path); err != nil {
			return false
		}
		loaded, err := Load(path)
		if err != nil {
			return false
		}
		for name, data := range expect {
			rec, err := loaded.GetDocument(name)
			if err != nil || !bytes.Equal(rec.Data, data) {
				return false
			}
			c, err := loaded.GetContent("c/" + name)
			if err != nil || !bytes.Equal(c.Data, data) {
				return false
			}
			if got := loaded.DocsByKeyword("kw/" + name); len(got) != 1 || got[0] != name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestGetContentDataIsPrivateCopy is the aliasing regression test for
// the content cache era: mutating what GetContent returned must never
// reach the store's internal record, or a cached read could corrupt
// every later reader.
func TestGetContentDataIsPrivateCopy(t *testing.T) {
	s := New()
	if err := s.PutContent("store/v.mpg", "mpeg", []byte{1, 2, 3}, "video"); err != nil {
		t.Fatal(err)
	}
	rec, err := s.GetContent("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	rec.Data[0] = 99
	rec.Keywords[0] = "tampered"

	again, err := s.GetContent("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Data, []byte{1, 2, 3}) {
		t.Fatalf("caller mutation reached the store: %v", again.Data)
	}
	if again.Keywords[0] != "video" {
		t.Fatalf("caller mutation reached stored keywords: %v", again.Keywords)
	}
}

// TestGetContentBorrowIsZeroCopy pins the other end of the borrow/clone
// split: GetContentBorrow returns the store's own record — no copy at
// all — which is what makes it the serving hot path.
func TestGetContentBorrowIsZeroCopy(t *testing.T) {
	s := New()
	if err := s.PutContent("store/v.mpg", "mpeg", []byte{1, 2, 3}, "video"); err != nil {
		t.Fatal(err)
	}
	b1, err := s.GetContentBorrow("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.GetContentBorrow("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 || &b1.Data[0] != &b2.Data[0] {
		t.Fatal("GetContentBorrow copied: two borrows of one record differ")
	}
	cp, err := s.GetContent("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	if &cp.Data[0] == &b1.Data[0] {
		t.Fatal("GetContent aliased the store's record: clone end broken")
	}
}

// TestGetContentBorrowStableAcrossRepublish pins the immutability basis
// of borrowing: PutContent replaces records wholesale, so a record
// borrowed before a republish keeps reading the superseded snapshot —
// it is never mutated underneath the borrower.
func TestGetContentBorrowStableAcrossRepublish(t *testing.T) {
	s := New()
	if err := s.PutContent("store/v.mpg", "mpeg", []byte{1, 2, 3}, "video"); err != nil {
		t.Fatal(err)
	}
	old, err := s.GetContentBorrow("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutContent("store/v.mpg", "mpeg", []byte{9, 9}, "video", "v2"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old.Data, []byte{1, 2, 3}) || len(old.Keywords) != 1 {
		t.Fatalf("republish mutated a borrowed record: %v %v", old.Data, old.Keywords)
	}
	fresh, err := s.GetContentBorrow("store/v.mpg")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.Data, []byte{9, 9}) {
		t.Fatalf("fresh borrow missed the republish: %v", fresh.Data)
	}
}
