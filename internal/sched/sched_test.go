package sched

import (
	"testing"
	"time"

	"mits/internal/media"
	"mits/internal/mheg"
	"mits/internal/mheg/engine"
	"mits/internal/sim"
)

func id(n uint32) mheg.ID { return mheg.ID{App: "s", Num: n} }

// play builds an engine with timed objects of the given durations (ids
// 1..n) plus the compiled sync objects, runs the clock, and returns the
// run instants per object id.
func play(t *testing.T, durations map[uint32]time.Duration, action *mheg.Action, links []*mheg.Link) map[uint32]sim.Time {
	t.Helper()
	clock := sim.NewClock()
	ran := make(map[uint32]sim.Time)
	e := engine.New(clock, engine.WithRenderer(engine.RendererFunc(func(ev engine.Event) {
		if ev.Kind == engine.EvRan {
			if _, seen := ran[ev.Model.Num]; !seen {
				ran[ev.Model.Num] = ev.At
			}
		}
	})))
	for n, d := range durations {
		obj, err := mheg.NewAudioContent(id(n), media.CodingWAV, "x", d, 70)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AddModel(obj); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddModel(action); err != nil {
		t.Fatal(err)
	}
	for _, l := range links {
		if err := e.AddModel(l); err != nil {
			t.Fatal(err)
		}
		if err := e.ArmLink(l.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.ApplyAction(action.ID); err != nil {
		t.Fatal(err)
	}
	clock.Run()
	return ran
}

func TestAtomicParallel(t *testing.T) {
	a := Atomic{Mode: Parallel, A: id(1), B: id(2)}
	action, links, err := a.Compile(id(100))
	if err != nil || len(links) != 0 {
		t.Fatalf("compile: %v links=%d", err, len(links))
	}
	ran := play(t, map[uint32]time.Duration{1: time.Second, 2: 2 * time.Second}, action, links)
	if ran[1] != 0 || ran[2] != 0 {
		t.Errorf("parallel ran at %v/%v, want 0/0", ran[1], ran[2])
	}
}

func TestAtomicSerialWithDuration(t *testing.T) {
	a := Atomic{Mode: Serial, A: id(1), B: id(2), DurA: time.Second}
	action, links, err := a.Compile(id(100))
	if err != nil {
		t.Fatal(err)
	}
	ran := play(t, map[uint32]time.Duration{1: time.Second, 2: time.Second}, action, links)
	if ran[1] != 0 || ran[2] != sim.Time(time.Second) {
		t.Errorf("serial ran at %v/%v, want 0/1s", ran[1], ran[2])
	}
}

func TestAtomicSerialEventDriven(t *testing.T) {
	a := Atomic{Mode: Serial, A: id(1), B: id(2)} // no DurA: chain on finish
	action, links, err := a.Compile(id(100))
	if err != nil || len(links) != 1 {
		t.Fatalf("compile: %v links=%d", err, len(links))
	}
	ran := play(t, map[uint32]time.Duration{1: 1500 * time.Millisecond, 2: time.Second}, action, links)
	if ran[2] != sim.Time(1500*time.Millisecond) {
		t.Errorf("chained B ran at %v, want 1.5s", ran[2])
	}
}

func TestAtomicValidation(t *testing.T) {
	if _, _, err := (Atomic{A: id(1)}).Compile(id(100)); err == nil {
		t.Error("zero B accepted")
	}
	if _, _, err := (Atomic{Mode: Mode(7), A: id(1), B: id(2)}).Compile(id(100)); err == nil {
		t.Error("bad mode accepted")
	}
	if Serial.String() != "serial" || Parallel.String() != "parallel" {
		t.Error("Mode.String")
	}
}

func TestElementaryOffsets(t *testing.T) {
	el := Elementary{A: id(1), B: id(2), T1: 500 * time.Millisecond, T2: 2 * time.Second}
	action, err := el.Compile(id(100))
	if err != nil {
		t.Fatal(err)
	}
	ran := play(t, map[uint32]time.Duration{1: time.Second, 2: time.Second}, action, nil)
	if ran[1] != sim.Time(500*time.Millisecond) || ran[2] != sim.Time(2*time.Second) {
		t.Errorf("elementary ran at %v/%v, want 0.5s/2s", ran[1], ran[2])
	}
	if _, err := (Elementary{A: id(1), B: id(2), T1: -1}).Compile(id(100)); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := (Elementary{}).Compile(id(100)); err == nil {
		t.Error("zero ids accepted")
	}
}

func TestCyclicRepeats(t *testing.T) {
	c := Cyclic{Target: id(1)}
	action, link, err := c.Compile(id(100))
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock()
	runs := 0
	e := engine.New(clock, engine.WithRenderer(engine.RendererFunc(func(ev engine.Event) {
		if ev.Kind == engine.EvRan && ev.Model == id(1) {
			runs++
		}
	})))
	obj, _ := mheg.NewAudioContent(id(1), media.CodingWAV, "x", time.Second, 70)
	e.AddModel(obj)
	e.AddModel(action)
	e.AddModel(link)
	e.ArmLink(link.ID)
	e.ApplyAction(action.ID)
	clock.RunUntil(sim.Time(3500 * time.Millisecond))
	if runs != 4 { // t = 0, 1, 2, 3
		t.Errorf("cyclic ran %d times, want 4", runs)
	}
	if _, _, err := (Cyclic{}).Compile(id(100)); err == nil {
		t.Error("zero target accepted")
	}
}

func TestChainedSequence(t *testing.T) {
	ch := Chained{Sequence: []mheg.ID{id(1), id(2), id(3)}}
	action, links, err := ch.Compile(id(100))
	if err != nil || len(links) != 2 {
		t.Fatalf("compile: %v links=%d", err, len(links))
	}
	ran := play(t, map[uint32]time.Duration{1: time.Second, 2: 2 * time.Second, 3: time.Second}, action, links)
	if ran[1] != 0 || ran[2] != sim.Time(time.Second) || ran[3] != sim.Time(3*time.Second) {
		t.Errorf("chain ran at %v/%v/%v, want 0/1s/3s", ran[1], ran[2], ran[3])
	}
	if _, _, err := (Chained{}).Compile(id(100)); err == nil {
		t.Error("empty chain accepted")
	}
	if _, _, err := (Chained{Sequence: []mheg.ID{{}}}).Compile(id(100)); err == nil {
		t.Error("zero id in chain accepted")
	}
}

func TestTimelineResolveAbsoluteAndRelative(t *testing.T) {
	tl := NewTimeline()
	if err := tl.At(id(1), 0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tl.With(id(2), id(1), time.Second, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tl.After(id(3), id(2), 500*time.Millisecond, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tl.Resolve(); err != nil {
		t.Fatal(err)
	}
	check := func(n uint32, want time.Duration) {
		got, ok := tl.Start(id(n))
		if !ok || got != want {
			t.Errorf("start(%d)=%v ok=%v, want %v", n, got, ok, want)
		}
	}
	check(1, 0)
	check(2, time.Second)           // with start of 1 + 1s
	check(3, 4500*time.Millisecond) // end of 2 (1s+3s) + 0.5s
	if span := tl.Span(); span != 5500*time.Millisecond {
		t.Errorf("span=%v, want 5.5s", span)
	}
	if tl.Len() != 3 {
		t.Errorf("Len=%d", tl.Len())
	}
}

func TestTimelineUnknownDurationCompilesToLink(t *testing.T) {
	tl := NewTimeline()
	tl.At(id(1), 0, 0) // unknown duration (interactive)
	tl.After(id(2), id(1), 0, time.Second)
	action, links, err := tl.Compile("s", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 1 {
		t.Fatalf("links=%d, want 1 (event-driven start)", len(links))
	}
	if _, ok := tl.Start(id(2)); ok {
		t.Error("event-driven entry reported a resolved start")
	}
	// The link must fire on id(1) finishing.
	if links[0].Trigger.Source != id(1) {
		t.Errorf("link trigger on %v", links[0].Trigger.Source)
	}
	if action == nil || len(action.Items) == 0 {
		t.Error("no start action emitted")
	}
}

func TestTimelineErrors(t *testing.T) {
	tl := NewTimeline()
	tl.At(id(1), 0, time.Second)
	if err := tl.At(id(1), 0, time.Second); err == nil {
		t.Error("duplicate placement accepted")
	}
	if err := tl.At(mheg.ID{}, 0, 0); err == nil {
		t.Error("zero id accepted")
	}
	if err := tl.With(id(2), id(1), -time.Second, 0); err == nil {
		t.Error("negative offset accepted")
	}

	dangling := NewTimeline()
	dangling.After(id(1), id(9), 0, 0)
	if err := dangling.Resolve(); err == nil {
		t.Error("relation to unplaced object accepted")
	}

	cyclic := NewTimeline()
	cyclic.With(id(1), id(2), 0, 0)
	cyclic.With(id(2), id(1), 0, 0)
	if err := cyclic.Resolve(); err == nil {
		t.Error("cyclic relation accepted")
	}

	empty := NewTimeline()
	if _, _, err := empty.Compile("s", 1); err == nil {
		t.Error("empty timeline compiled")
	}
}

func TestTimelineEndToEndPlayback(t *testing.T) {
	// Full round trip: author a scene timeline, compile, execute on an
	// engine, and verify the wall-clock placement.
	tl := NewTimeline()
	tl.At(id(1), 0, 2*time.Second)
	tl.After(id(2), id(1), time.Second, time.Second)
	tl.With(id(3), id(2), 0, time.Second)
	action, links, err := tl.Compile("s", 100)
	if err != nil {
		t.Fatal(err)
	}
	ran := play(t, map[uint32]time.Duration{1: 2 * time.Second, 2: time.Second, 3: time.Second}, action, links)
	if ran[1] != 0 {
		t.Errorf("obj1 at %v", ran[1])
	}
	if ran[2] != sim.Time(3*time.Second) {
		t.Errorf("obj2 at %v, want 3s", ran[2])
	}
	if ran[3] != sim.Time(3*time.Second) {
		t.Errorf("obj3 at %v, want 3s (co-start with obj2)", ran[3])
	}
}
