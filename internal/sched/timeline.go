package sched

import (
	"fmt"
	"sort"
	"time"

	"mits/internal/mheg"
)

// Timeline is the time-line structure of a scene (§4.3.3): every media
// object is placed either at an absolute offset, relative to another
// object's start, or after another object's end. Durations may be
// unknown (interactive or open-ended objects); relations to them
// compile into conditional links.
type Timeline struct {
	entries map[mheg.ID]*entry
	order   []mheg.ID
}

type relKind int

const (
	relAbsolute relKind = iota
	relWithStart
	relAfterEnd
)

type entry struct {
	id       mheg.ID
	duration time.Duration // 0 = unknown/untimed
	rel      relKind
	other    mheg.ID
	offset   time.Duration

	start    time.Duration
	resolved bool
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{entries: make(map[mheg.ID]*entry)}
}

func (t *Timeline) add(e *entry) error {
	if e.id.Zero() {
		return fmt.Errorf("sched: timeline entry with zero id")
	}
	if _, dup := t.entries[e.id]; dup {
		return fmt.Errorf("sched: object %v already on the timeline", e.id)
	}
	if e.offset < 0 {
		return fmt.Errorf("sched: object %v has negative offset %v", e.id, e.offset)
	}
	t.entries[e.id] = e
	t.order = append(t.order, e.id)
	return nil
}

// At places an object at an absolute offset from scene start.
func (t *Timeline) At(id mheg.ID, at, duration time.Duration) error {
	return t.add(&entry{id: id, duration: duration, rel: relAbsolute, offset: at})
}

// With places an object offset after another object's *start*
// (the "meet"/co-start family of relations).
func (t *Timeline) With(id, other mheg.ID, offset, duration time.Duration) error {
	return t.add(&entry{id: id, duration: duration, rel: relWithStart, other: other, offset: offset})
}

// After places an object offset after another object's *end*. When the
// predecessor's duration is unknown the start is event-driven.
func (t *Timeline) After(id, other mheg.ID, offset, duration time.Duration) error {
	return t.add(&entry{id: id, duration: duration, rel: relAfterEnd, other: other, offset: offset})
}

// Len reports the number of placed objects.
func (t *Timeline) Len() int { return len(t.entries) }

// Resolve computes absolute start offsets where durations permit. It
// returns an error on references to unplaced objects or cyclic
// relations. Entries downstream of an unknown duration stay unresolved
// (they will be compiled as links).
func (t *Timeline) Resolve() error {
	for _, e := range t.entries {
		e.resolved = false
	}
	// Fixpoint propagation; n passes suffice for n entries.
	for pass := 0; pass <= len(t.order); pass++ {
		progress := false
		for _, id := range t.order {
			e := t.entries[id]
			if e.resolved {
				continue
			}
			switch e.rel {
			case relAbsolute:
				e.start = e.offset
				e.resolved = true
				progress = true
			case relWithStart, relAfterEnd:
				o, ok := t.entries[e.other]
				if !ok {
					return fmt.Errorf("sched: %v is relative to unplaced object %v", e.id, e.other)
				}
				if !o.resolved {
					continue
				}
				if e.rel == relWithStart {
					e.start = o.start + e.offset
					e.resolved = true
					progress = true
				} else if o.duration > 0 {
					e.start = o.start + o.duration + e.offset
					e.resolved = true
					progress = true
				}
				// relAfterEnd with unknown duration: stays unresolved,
				// compiled as an OnFinished link.
			}
		}
		if !progress {
			break
		}
	}
	// Anything unresolved must trace back to an unknown duration, not a
	// cycle. Detect cycles: follow the relation chain.
	for _, id := range t.order {
		if err := t.checkChain(id, make(map[mheg.ID]bool)); err != nil {
			return err
		}
	}
	return nil
}

func (t *Timeline) checkChain(id mheg.ID, seen map[mheg.ID]bool) error {
	if seen[id] {
		return fmt.Errorf("sched: cyclic temporal relation through %v", id)
	}
	seen[id] = true
	e := t.entries[id]
	if e == nil || e.rel == relAbsolute {
		return nil
	}
	return t.checkChain(e.other, seen)
}

// Start reports the resolved start offset of an object; ok is false for
// event-driven entries.
func (t *Timeline) Start(id mheg.ID) (time.Duration, bool) {
	e, ok := t.entries[id]
	if !ok || !e.resolved {
		return 0, false
	}
	return e.start, true
}

// Span reports the scene's total resolved duration (end of the last
// resolved timed object).
func (t *Timeline) Span() time.Duration {
	var span time.Duration
	for _, e := range t.entries {
		if e.resolved {
			if end := e.start + e.duration; end > span {
				span = end
			}
		}
	}
	return span
}

// Compile turns the timeline into MHEG objects: one action carrying the
// resolved offsets and one OnFinished link per event-driven entry.
// Object numbers are allocated from base upward in the given app
// namespace. Emitted actions both create and run each object.
func (t *Timeline) Compile(app string, base uint32) (*mheg.Action, []*mheg.Link, error) {
	return t.compile(app, base, true)
}

// CompileRunOnly is Compile for objects that already exist as run-time
// instances (components socketed into a composite): emitted actions
// only run them, without 'new'.
func (t *Timeline) CompileRunOnly(app string, base uint32) (*mheg.Action, []*mheg.Link, error) {
	return t.compile(app, base, false)
}

func (t *Timeline) compile(app string, base uint32, withNew bool) (*mheg.Action, []*mheg.Link, error) {
	if err := t.Resolve(); err != nil {
		return nil, nil, err
	}
	type placed struct {
		id    mheg.ID
		start time.Duration
	}
	var fixed []placed
	var links []*mheg.Link
	num := base + 1
	for _, id := range t.order {
		e := t.entries[id]
		if e.resolved {
			fixed = append(fixed, placed{id: e.id, start: e.start})
			continue
		}
		var effect []mheg.ElementaryAction
		if withNew {
			effect = append(effect, mheg.ActAfter(e.offset, mheg.OpNew, e.id))
		}
		effect = append(effect, mheg.ActAfter(e.offset, mheg.OpRun, e.id))
		links = append(links, mheg.OnFinished(mheg.ID{App: app, Num: num}, e.other, effect...))
		num++
	}
	sort.SliceStable(fixed, func(i, j int) bool { return fixed[i].start < fixed[j].start })
	action := mheg.NewAction(mheg.ID{App: app, Num: base})
	for _, p := range fixed {
		if withNew {
			action.Items = append(action.Items, mheg.ActAfter(p.start, mheg.OpNew, p.id))
		}
		action.Items = append(action.Items, mheg.ActAfter(p.start, mheg.OpRun, p.id))
	}
	if len(action.Items) == 0 {
		return nil, nil, fmt.Errorf("sched: timeline has no resolvable entries")
	}
	return action, links, nil
}
