// Package sched implements the temporal synchronization structures of
// MHEG (§2.2.2.3, Fig 2.6) and the time-line structure of the
// interactive multimedia document model (§4.3.3, Fig 4.4b).
//
// Authors describe *when* things happen using temporal relations
// ("before", "after", "meet" — §4.5.3); the package resolves those
// relations to absolute offsets where durations are known and compiles
// the result into MHEG action and link objects that any MHEG engine can
// execute. Relations to objects of unknown duration (interactive
// content) compile into conditional links instead of fixed offsets.
package sched

import (
	"fmt"
	"time"

	"mits/internal/mheg"
)

// Mode distinguishes the two atomic synchronization relations of
// Fig 2.6a.
type Mode int

// Atomic modes.
const (
	Serial Mode = iota
	Parallel
)

func (m Mode) String() string {
	if m == Serial {
		return "serial"
	}
	return "parallel"
}

// Atomic is the simplest relation between exactly two component
// objects: play together, or one after the other (Fig 2.6a).
type Atomic struct {
	Mode Mode
	A, B mheg.ID
	// DurA is A's duration, required for Serial composition of objects
	// whose end cannot be observed; leave 0 to chain on A's finish.
	DurA time.Duration
}

// Compile emits the MHEG objects realizing the relation: an action that
// starts the pieces and, for duration-less serial chaining, a link.
func (a Atomic) Compile(id mheg.ID) (*mheg.Action, []*mheg.Link, error) {
	if a.A.Zero() || a.B.Zero() {
		return nil, nil, fmt.Errorf("sched: atomic relation with zero object id")
	}
	switch a.Mode {
	case Parallel:
		return mheg.RunAll(id, a.A, a.B), nil, nil
	case Serial:
		if a.DurA > 0 {
			act, err := mheg.RunSequence(id, []time.Duration{0, a.DurA}, a.A, a.B)
			return act, nil, err
		}
		start := mheg.RunAll(id, a.A)
		link := mheg.OnFinished(mheg.ID{App: id.App, Num: id.Num + 1}, a.A,
			mheg.Act(mheg.OpNew, a.B), mheg.Act(mheg.OpRun, a.B))
		return start, []*mheg.Link{link}, nil
	default:
		return nil, nil, fmt.Errorf("sched: unknown atomic mode %d", a.Mode)
	}
}

// Elementary is the general two-object relation of Fig 2.6b: objects A
// and B start at offsets T1 and T2 from the composite's activation.
type Elementary struct {
	A, B   mheg.ID
	T1, T2 time.Duration
}

// Compile emits the offset action.
func (e Elementary) Compile(id mheg.ID) (*mheg.Action, error) {
	if e.A.Zero() || e.B.Zero() {
		return nil, fmt.Errorf("sched: elementary relation with zero object id")
	}
	if e.T1 < 0 || e.T2 < 0 {
		return nil, fmt.Errorf("sched: negative offsets T1=%v T2=%v", e.T1, e.T2)
	}
	return mheg.RunSequence(id, []time.Duration{e.T1, e.T2}, e.A, e.B)
}

// Cyclic repeats an object: each time it finishes it is restarted —
// "events to be synchronized to some periodic events, such as clock
// tick" (§2.2.2.3).
type Cyclic struct {
	Target mheg.ID
}

// Compile emits the start action and the restart link.
func (c Cyclic) Compile(id mheg.ID) (*mheg.Action, *mheg.Link, error) {
	if c.Target.Zero() {
		return nil, nil, fmt.Errorf("sched: cyclic relation with zero target")
	}
	start := mheg.RunAll(id, c.Target)
	link := mheg.OnFinished(mheg.ID{App: id.App, Num: id.Num + 1}, c.Target,
		mheg.Act(mheg.OpStop, c.Target),
		mheg.Act(mheg.OpRun, c.Target))
	return start, link, nil
}

// Chained plays a sequence of objects back to back, each chained on the
// previous one's finish ("basic objects to be chained together into a
// new composite object", §2.2.2.3).
type Chained struct {
	Sequence []mheg.ID
}

// Compile emits the start action for the head and one link per hop.
func (c Chained) Compile(id mheg.ID) (*mheg.Action, []*mheg.Link, error) {
	if len(c.Sequence) == 0 {
		return nil, nil, fmt.Errorf("sched: empty chain")
	}
	for _, o := range c.Sequence {
		if o.Zero() {
			return nil, nil, fmt.Errorf("sched: chain contains zero id")
		}
	}
	start := mheg.RunAll(id, c.Sequence[0])
	var links []*mheg.Link
	for i := 0; i+1 < len(c.Sequence); i++ {
		links = append(links, mheg.OnFinished(
			mheg.ID{App: id.App, Num: id.Num + 1 + uint32(i)},
			c.Sequence[i],
			mheg.Act(mheg.OpNew, c.Sequence[i+1]),
			mheg.Act(mheg.OpRun, c.Sequence[i+1]),
		))
	}
	return start, links, nil
}
