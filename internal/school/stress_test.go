package school

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mits/internal/lint/leaktest"
)

// TestSchoolConcurrentStress exercises the administration APIs from
// many goroutines at once — registration, enrolment, session
// recording, catalogue browsing and statistics all share one mutex,
// and §3.4.1's school server handles every navigator in parallel. Run
// with -race.
func TestSchoolConcurrentStress(t *testing.T) {
	leaktest.Check(t)
	s := testSchool(t)
	const workers = 8
	const iters = 100

	var wg sync.WaitGroup
	numbers := make([][]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				num, err := s.Register(Profile{
					Name:  fmt.Sprintf("Student %d-%d", w, i),
					Email: fmt.Sprintf("s%d-%d@uottawa.ca", w, i),
				})
				if err != nil {
					t.Error(err)
					return
				}
				numbers[w] = append(numbers[w], num)
				if err := s.Enroll(num, "ELG5121"); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.RecordSession(num, "ELG5121"); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Student(num); err != nil {
					t.Error(err)
					return
				}
				if err := s.Enroll(num, "NOPE101"); !errors.Is(err, ErrNotFound) {
					t.Errorf("ghost course enrolment err=%v", err)
					return
				}
				s.Stats()
			}
		}(w)
	}
	wg.Wait()

	// Student numbers must be unique across all concurrent registrations.
	seen := make(map[string]bool)
	for _, batch := range numbers {
		for _, num := range batch {
			if seen[num] {
				t.Fatalf("duplicate student number %s issued concurrently", num)
			}
			seen[num] = true
		}
	}
	if want := workers * iters; len(seen) != want {
		t.Errorf("registered %d students, want %d", len(seen), want)
	}
	stats := s.Stats()
	if stats.Students != workers*iters {
		t.Errorf("stats report %d students, want %d", stats.Students, workers*iters)
	}
}
