package school

import (
	"bytes"
	"encoding/gob"
	"time"

	"mits/internal/transport"
)

// Network method names of the administration service.
const (
	MethodRegister      = "school.Register"
	MethodStudent       = "school.Student"
	MethodUpdateProfile = "school.UpdateProfile"
	MethodPrograms      = "school.Programs"
	MethodCoursesIn     = "school.CoursesIn"
	MethodCourse        = "school.Course"
	MethodEnroll        = "school.Enroll"
	MethodRecordSession = "school.RecordSession"
	MethodSetResume     = "school.SetResume"
	MethodGetResume     = "school.GetResume"
	MethodAddBookmark   = "school.AddBookmark"
	MethodStats         = "school.Stats"
)

func enc(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func dec(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

type studentCourseReq struct{ Number, Course string }
type profileReq struct {
	Number  string
	Profile Profile
}
type resumeSetReq struct {
	Number, Course string
	Pos            Position
}
type resumeResp struct {
	Pos   Position
	Found bool
}
type bookmarkReq struct {
	Number   string
	Bookmark Bookmark
}

// RegisterService exposes a School on a transport mux.
func RegisterService(m *transport.Mux, s *School) {
	m.Register(MethodRegister, func(_ string, p []byte) ([]byte, error) {
		var req Profile
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		num, err := s.Register(req)
		if err != nil {
			return nil, err
		}
		return enc(num)
	})
	m.Register(MethodStudent, func(_ string, p []byte) ([]byte, error) {
		var num string
		if err := dec(p, &num); err != nil {
			return nil, err
		}
		st, err := s.Student(num)
		if err != nil {
			return nil, err
		}
		return enc(st)
	})
	m.Register(MethodUpdateProfile, func(_ string, p []byte) ([]byte, error) {
		var req profileReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		return nil, s.UpdateProfile(req.Number, req.Profile)
	})
	m.Register(MethodPrograms, func(_ string, _ []byte) ([]byte, error) {
		return enc(s.Programs())
	})
	m.Register(MethodCoursesIn, func(_ string, p []byte) ([]byte, error) {
		var program string
		if err := dec(p, &program); err != nil {
			return nil, err
		}
		return enc(s.CoursesIn(program))
	})
	m.Register(MethodCourse, func(_ string, p []byte) ([]byte, error) {
		var code string
		if err := dec(p, &code); err != nil {
			return nil, err
		}
		c, err := s.Course(code)
		if err != nil {
			return nil, err
		}
		return enc(c)
	})
	m.Register(MethodEnroll, func(_ string, p []byte) ([]byte, error) {
		var req studentCourseReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		return nil, s.Enroll(req.Number, req.Course)
	})
	m.Register(MethodRecordSession, func(_ string, p []byte) ([]byte, error) {
		var req studentCourseReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		reg, err := s.RecordSession(req.Number, req.Course)
		if err != nil {
			return nil, err
		}
		return enc(reg)
	})
	m.Register(MethodSetResume, func(_ string, p []byte) ([]byte, error) {
		var req resumeSetReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		return nil, s.SetResume(req.Number, req.Course, req.Pos)
	})
	m.Register(MethodGetResume, func(_ string, p []byte) ([]byte, error) {
		var req studentCourseReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		pos, found, err := s.GetResume(req.Number, req.Course)
		if err != nil {
			return nil, err
		}
		return enc(resumeResp{Pos: pos, Found: found})
	})
	m.Register(MethodAddBookmark, func(_ string, p []byte) ([]byte, error) {
		var req bookmarkReq
		if err := dec(p, &req); err != nil {
			return nil, err
		}
		return nil, s.AddBookmark(req.Number, req.Bookmark)
	})
	m.Register(MethodStats, func(_ string, _ []byte) ([]byte, error) {
		return enc(s.Stats())
	})
}

// Client is the navigator-side view of the administration service.
type Client struct {
	C transport.Client
}

// Register enrolls a new student and returns the assigned number.
func (c Client) Register(p Profile) (string, error) {
	req, err := enc(p)
	if err != nil {
		return "", err
	}
	out, err := c.C.Call(MethodRegister, req)
	if err != nil {
		return "", err
	}
	var num string
	return num, dec(out, &num)
}

// Student fetches a student record.
func (c Client) Student(number string) (Student, error) {
	req, err := enc(number)
	if err != nil {
		return Student{}, err
	}
	out, err := c.C.Call(MethodStudent, req)
	if err != nil {
		return Student{}, err
	}
	var st Student
	return st, dec(out, &st)
}

// UpdateProfile replaces a student's personal data.
func (c Client) UpdateProfile(number string, p Profile) error {
	req, err := enc(profileReq{Number: number, Profile: p})
	if err != nil {
		return err
	}
	_, err = c.C.Call(MethodUpdateProfile, req)
	return err
}

// Programs lists available programs.
func (c Client) Programs() ([]string, error) {
	out, err := c.C.Call(MethodPrograms, nil)
	if err != nil {
		return nil, err
	}
	var progs []string
	return progs, dec(out, &progs)
}

// CoursesIn lists a program's courses.
func (c Client) CoursesIn(program string) ([]Course, error) {
	req, err := enc(program)
	if err != nil {
		return nil, err
	}
	out, err := c.C.Call(MethodCoursesIn, req)
	if err != nil {
		return nil, err
	}
	var courses []Course
	return courses, dec(out, &courses)
}

// Course fetches one course record.
func (c Client) Course(code string) (Course, error) {
	req, err := enc(code)
	if err != nil {
		return Course{}, err
	}
	out, err := c.C.Call(MethodCourse, req)
	if err != nil {
		return Course{}, err
	}
	var course Course
	return course, dec(out, &course)
}

// Enroll registers the student for a course.
func (c Client) Enroll(number, course string) error {
	req, err := enc(studentCourseReq{Number: number, Course: course})
	if err != nil {
		return err
	}
	_, err = c.C.Call(MethodEnroll, req)
	return err
}

// RecordSession advances course progress.
func (c Client) RecordSession(number, course string) (Registration, error) {
	req, err := enc(studentCourseReq{Number: number, Course: course})
	if err != nil {
		return Registration{}, err
	}
	out, err := c.C.Call(MethodRecordSession, req)
	if err != nil {
		return Registration{}, err
	}
	var reg Registration
	return reg, dec(out, &reg)
}

// SetResume stores the stop position.
func (c Client) SetResume(number, course, scene string, at time.Duration) error {
	req, err := enc(resumeSetReq{Number: number, Course: course, Pos: Position{Scene: scene, At: at}})
	if err != nil {
		return err
	}
	_, err = c.C.Call(MethodSetResume, req)
	return err
}

// GetResume retrieves the stored stop position.
func (c Client) GetResume(number, course string) (Position, bool, error) {
	req, err := enc(studentCourseReq{Number: number, Course: course})
	if err != nil {
		return Position{}, false, err
	}
	out, err := c.C.Call(MethodGetResume, req)
	if err != nil {
		return Position{}, false, err
	}
	var resp resumeResp
	if err := dec(out, &resp); err != nil {
		return Position{}, false, err
	}
	return resp.Pos, resp.Found, nil
}

// AddBookmark saves a bookmark.
func (c Client) AddBookmark(number string, b Bookmark) error {
	req, err := enc(bookmarkReq{Number: number, Bookmark: b})
	if err != nil {
		return err
	}
	_, err = c.C.Call(MethodAddBookmark, req)
	return err
}

// Stats fetches school statistics.
func (c Client) Stats() (Statistics, error) {
	out, err := c.C.Call(MethodStats, nil)
	if err != nil {
		return Statistics{}, err
	}
	var st Statistics
	return st, dec(out, &st)
}
