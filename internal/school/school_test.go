package school

import (
	"errors"
	"sync"
	"testing"

	"mits/internal/lint/leaktest"
	"time"

	"mits/internal/transport"
)

func testSchool(t *testing.T) *School {
	t.Helper()
	s := New("MIRL TeleSchool")
	courses := []Course{
		{Code: "ELG5121", Name: "Multimedia Communications", Program: "Engineering", PlannedSessions: 12, Document: "atm-course"},
		{Code: "ELG5374", Name: "Computer Networks", Program: "Engineering", PlannedSessions: 10, Document: "net-course"},
		{Code: "HIS1100", Name: "Art History", Program: "Humanities", PlannedSessions: 8, Document: "art-course"},
	}
	for _, c := range courses {
		if err := s.AddCourse(c); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestRegistrationFlow(t *testing.T) {
	s := testSchool(t)
	num, err := s.Register(Profile{Name: "Ruiping Wang", Email: "rw@uottawa.ca"})
	if err != nil {
		t.Fatal(err)
	}
	if num == "" {
		t.Fatal("no student number assigned")
	}
	num2, _ := s.Register(Profile{Name: "Second Student"})
	if num2 == num {
		t.Error("duplicate student numbers")
	}
	st, err := s.Student(num)
	if err != nil || st.Profile.Name != "Ruiping Wang" {
		t.Fatalf("student %+v err=%v", st, err)
	}
	if _, err := s.Student("000000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost student err=%v", err)
	}
	if _, err := s.Register(Profile{}); err == nil {
		t.Error("nameless registration accepted")
	}
}

func TestProfileUpdate(t *testing.T) {
	s := testSchool(t)
	num, _ := s.Register(Profile{Name: "A", Address: "old address"})
	if err := s.UpdateProfile(num, Profile{Name: "A", Address: "new address"}); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Student(num)
	if st.Profile.Address != "new address" {
		t.Error("profile not updated")
	}
	if err := s.UpdateProfile(num, Profile{}); err == nil {
		t.Error("nameless profile accepted")
	}
	if err := s.UpdateProfile("zzz", Profile{Name: "x"}); !errors.Is(err, ErrNotFound) {
		t.Error("update of ghost student")
	}
}

func TestCatalogue(t *testing.T) {
	s := testSchool(t)
	progs := s.Programs()
	if len(progs) != 2 || progs[0] != "Engineering" || progs[1] != "Humanities" {
		t.Errorf("programs %v", progs)
	}
	eng := s.CoursesIn("Engineering")
	if len(eng) != 2 || eng[0].Code != "ELG5121" {
		t.Errorf("engineering courses %+v", eng)
	}
	if got := s.CoursesIn("Astrology"); len(got) != 0 {
		t.Errorf("phantom program courses %v", got)
	}
	c, err := s.Course("ELG5121")
	if err != nil || c.Document != "atm-course" {
		t.Errorf("course %+v err=%v", c, err)
	}
	if _, err := s.Course("ZZZ"); !errors.Is(err, ErrNotFound) {
		t.Error("ghost course found")
	}
	if err := s.AddCourse(Course{Code: "ELG5121", Name: "dup", Program: "x", PlannedSessions: 1}); err == nil {
		t.Error("duplicate course accepted")
	}
	if err := s.AddCourse(Course{Code: "X"}); err == nil {
		t.Error("incomplete course accepted")
	}
	if err := s.AddCourse(Course{Code: "X", Name: "n", Program: "p"}); err == nil {
		t.Error("course without sessions accepted")
	}
}

func TestEnrollmentAndProgress(t *testing.T) {
	s := testSchool(t)
	num, _ := s.Register(Profile{Name: "A"})
	if err := s.Enroll(num, "ELG5121"); err != nil {
		t.Fatal(err)
	}
	if err := s.Enroll(num, "ELG5121"); err == nil {
		t.Error("double enrollment accepted")
	}
	if err := s.Enroll(num, "ZZZ"); !errors.Is(err, ErrNotFound) {
		t.Error("enrollment in ghost course")
	}
	if err := s.Enroll("zzz", "ELG5121"); !errors.Is(err, ErrNotFound) {
		t.Error("ghost student enrolled")
	}
	st, _ := s.Student(num)
	if st.FindNumberOfCourse() != 1 {
		t.Errorf("FindNumberOfCourse=%d", st.FindNumberOfCourse())
	}

	// 12 sessions complete the course.
	var reg Registration
	for i := 0; i < 12; i++ {
		var err error
		reg, err = s.RecordSession(num, "ELG5121")
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reg.Completed || reg.SessionsDone != 12 {
		t.Errorf("registration after 12 sessions: %+v", reg)
	}
	if _, err := s.RecordSession(num, "ELG5374"); err == nil {
		t.Error("session recorded for unenrolled course")
	}
}

func TestResumeAndBookmarks(t *testing.T) {
	s := testSchool(t)
	num, _ := s.Register(Profile{Name: "A"})
	s.Enroll(num, "ELG5121")

	if _, found, err := s.GetResume(num, "ELG5121"); err != nil || found {
		t.Errorf("resume before save: found=%v err=%v", found, err)
	}
	pos := Position{Scene: "cells", At: 12 * time.Second}
	if err := s.SetResume(num, "ELG5121", pos); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.GetResume(num, "ELG5121")
	if err != nil || !found || got != pos {
		t.Errorf("resume %+v found=%v err=%v", got, found, err)
	}

	if err := s.AddBookmark(num, Bookmark{Label: "cell format", Course: "ELG5121", Scene: "cells", At: 9 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddBookmark(num, Bookmark{}); err == nil {
		t.Error("unlabelled bookmark accepted")
	}
	st, _ := s.Student(num)
	if len(st.Bookmarks) != 1 || st.Bookmarks[0].Label != "cell format" {
		t.Errorf("bookmarks %+v", st.Bookmarks)
	}
	// Returned copies must not alias internals.
	st.Bookmarks[0].Label = "mutated"
	again, _ := s.Student(num)
	if again.Bookmarks[0].Label != "cell format" {
		t.Error("Student() aliases internal state")
	}
}

func TestStats(t *testing.T) {
	s := testSchool(t)
	a, _ := s.Register(Profile{Name: "A"})
	b, _ := s.Register(Profile{Name: "B"})
	s.Enroll(a, "ELG5121")
	s.Enroll(b, "ELG5121")
	s.Enroll(b, "HIS1100")
	for i := 0; i < 8; i++ {
		s.RecordSession(b, "HIS1100")
	}
	stats := s.Stats()
	if stats.Students != 2 || stats.Courses != 3 || stats.Programs != 2 {
		t.Errorf("stats %+v", stats)
	}
	if stats.Enrollments["ELG5121"] != 2 || stats.Enrollments["HIS1100"] != 1 {
		t.Errorf("enrollments %+v", stats.Enrollments)
	}
	if stats.Completions["HIS1100"] != 1 {
		t.Errorf("completions %+v", stats.Completions)
	}
}

func TestServiceOverLoopbackAndTCP(t *testing.T) {
	leaktest.Check(t)
	s := testSchool(t)
	mux := transport.NewMux()
	RegisterService(mux, s)

	run := func(t *testing.T, client Client) {
		num, err := client.Register(Profile{Name: "Remote Student", Email: "r@s.t"})
		if err != nil {
			t.Fatal(err)
		}
		progs, err := client.Programs()
		if err != nil || len(progs) != 2 {
			t.Fatalf("programs %v err=%v", progs, err)
		}
		courses, err := client.CoursesIn("Engineering")
		if err != nil || len(courses) != 2 {
			t.Fatalf("courses %v err=%v", courses, err)
		}
		if err := client.Enroll(num, courses[0].Code); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Course(courses[0].Code); err != nil {
			t.Fatal(err)
		}
		reg, err := client.RecordSession(num, courses[0].Code)
		if err != nil || reg.SessionsDone != 1 {
			t.Fatalf("session %+v err=%v", reg, err)
		}
		if err := client.SetResume(num, courses[0].Code, "cells", 5*time.Second); err != nil {
			t.Fatal(err)
		}
		pos, found, err := client.GetResume(num, courses[0].Code)
		if err != nil || !found || pos.Scene != "cells" {
			t.Fatalf("resume %+v found=%v err=%v", pos, found, err)
		}
		if err := client.AddBookmark(num, Bookmark{Label: "b"}); err != nil {
			t.Fatal(err)
		}
		if err := client.UpdateProfile(num, Profile{Name: "Renamed"}); err != nil {
			t.Fatal(err)
		}
		st, err := client.Student(num)
		if err != nil || st.Profile.Name != "Renamed" || len(st.Bookmarks) != 1 {
			t.Fatalf("student %+v err=%v", st, err)
		}
		stats, err := client.Stats()
		if err != nil || stats.Students == 0 {
			t.Fatalf("stats %+v err=%v", stats, err)
		}
		if _, err := client.Student("000"); err == nil {
			t.Error("ghost student fetched remotely")
		}
	}

	t.Run("loopback", func(t *testing.T) {
		run(t, Client{C: transport.Loopback{H: mux}})
	})
	t.Run("tcp", func(t *testing.T) {
		srv := transport.NewTCPServer(mux)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		tc, err := transport.DialTCP(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer tc.Close()
		run(t, Client{C: tc})
	})
}

func TestConcurrentAdministration(t *testing.T) {
	leaktest.Check(t)
	s := testSchool(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			num, err := s.Register(Profile{Name: "student"})
			if err != nil {
				t.Error(err)
				return
			}
			s.Enroll(num, "ELG5121")
			s.RecordSession(num, "ELG5121")
			s.Student(num)
			s.Stats()
		}()
	}
	wg.Wait()
	if got := s.Stats().Students; got != 8 {
		t.Errorf("students=%d, want 8", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/school.db"
	s := testSchool(t)
	num, _ := s.Register(Profile{Name: "Persistent Student", Email: "p@s"})
	s.Enroll(num, "ELG5121")
	s.RecordSession(num, "ELG5121")
	s.SetResume(num, "ELG5121", Position{Scene: "cells", At: 7 * time.Second})
	s.SetFee("ELG5121", Fee{EnrollCents: 5000, SessionCents: 100})
	s.RecordPayment(num, 2500)

	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != s.Name() {
		t.Errorf("name %q", loaded.Name())
	}
	st, err := loaded.Student(num)
	if err != nil || st.Profile.Name != "Persistent Student" {
		t.Fatalf("student %+v err=%v", st, err)
	}
	if st.Courses[0].SessionsDone != 1 || st.Resume["ELG5121"].Scene != "cells" {
		t.Errorf("progress lost: %+v", st)
	}
	inv, err := loaded.Invoice(num)
	if err != nil || inv.TotalCents != 5100 || inv.PaidCents != 2500 {
		t.Errorf("billing lost: %+v err=%v", inv, err)
	}
	// Student numbering continues where it left off.
	next, _ := loaded.Register(Profile{Name: "Next"})
	if next == num {
		t.Error("student number reused after reload")
	}
	if _, err := Load(dir + "/missing.db"); err == nil {
		t.Error("loading missing file succeeded")
	}
}
