package school

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// snapshot is the on-disk image of a school: student records survive
// server restarts so a returning student's number, enrollments, resume
// positions and balance are still there (§5.2.1's administration data).
type snapshot struct {
	Name       string
	Students   []*Student
	Courses    []*Course
	NextNumber int
	Fees       map[string]Fee
	Payments   map[string]int
}

// Save writes the school to path atomically.
func (s *School) Save(path string) error {
	s.mu.RLock()
	snap := snapshot{
		Name:       s.name,
		NextNumber: s.nextNumber,
		Fees:       make(map[string]Fee, len(s.fees)),
		Payments:   make(map[string]int, len(s.payments)),
	}
	for _, st := range s.students {
		cp := copyStudent(st)
		snap.Students = append(snap.Students, &cp)
	}
	for _, c := range s.courses {
		cc := *c
		snap.Courses = append(snap.Courses, &cc)
	}
	for k, v := range s.fees {
		snap.Fees[k] = v
	}
	for k, v := range s.payments {
		snap.Payments[k] = v
	}
	s.mu.RUnlock()

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("school: save: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("school: save: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("school: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("school: save: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load reads a school image written by Save.
func Load(path string) (*School, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("school: load: %w", err)
	}
	defer f.Close()
	var snap snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("school: load %s: %w", path, err)
	}
	s := New(snap.Name)
	s.nextNumber = snap.NextNumber
	for _, st := range snap.Students {
		cp := copyStudent(st)
		s.students[st.Number] = &cp
	}
	for _, c := range snap.Courses {
		cc := *c
		s.courses[c.Code] = &cc
	}
	if len(snap.Fees) > 0 {
		s.fees = snap.Fees
	}
	if len(snap.Payments) > 0 {
		s.payments = snap.Payments
	}
	return s, nil
}
