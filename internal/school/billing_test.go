package school

import (
	"errors"
	"testing"
)

func billingSchool(t *testing.T) (*School, string) {
	t.Helper()
	s := testSchool(t)
	num, err := s.Register(Profile{Name: "Payer"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetFee("ELG5121", Fee{EnrollCents: 5000, SessionCents: 750}); err != nil {
		t.Fatal(err)
	}
	if err := s.Enroll(num, "ELG5121"); err != nil {
		t.Fatal(err)
	}
	return s, num
}

func TestInvoiceUsageBased(t *testing.T) {
	s, num := billingSchool(t)
	// Enrollment only: one charge.
	inv, err := s.Invoice(num)
	if err != nil {
		t.Fatal(err)
	}
	if inv.TotalCents != 5000 || len(inv.Charges) != 1 {
		t.Fatalf("invoice %+v", inv)
	}
	// Three on-demand sessions add usage charges.
	for i := 0; i < 3; i++ {
		s.RecordSession(num, "ELG5121")
	}
	inv, _ = s.Invoice(num)
	if inv.TotalCents != 5000+3*750 {
		t.Errorf("total %d, want %d", inv.TotalCents, 5000+3*750)
	}
	if len(inv.Charges) != 2 || inv.Charges[0].Description != "3 session(s) on demand" {
		t.Errorf("charges %+v", inv.Charges)
	}
	// Free courses don't bill.
	s.Enroll(num, "HIS1100")
	s.RecordSession(num, "HIS1100")
	inv, _ = s.Invoice(num)
	if inv.TotalCents != 5000+3*750 {
		t.Errorf("free course billed: %+v", inv)
	}
}

func TestPaymentsAndBalance(t *testing.T) {
	s, num := billingSchool(t)
	if err := s.RecordPayment(num, 2000); err != nil {
		t.Fatal(err)
	}
	inv, _ := s.Invoice(num)
	if inv.PaidCents != 2000 || inv.BalanceCents != 3000 {
		t.Errorf("invoice %+v", inv)
	}
	if err := s.RecordPayment(num, 0); err == nil {
		t.Error("zero payment accepted")
	}
	if err := s.RecordPayment("000", 100); !errors.Is(err, ErrNotFound) {
		t.Error("payment for ghost student")
	}
	if _, err := s.Invoice("000"); !errors.Is(err, ErrNotFound) {
		t.Error("invoice for ghost student")
	}
}

func TestFeeValidation(t *testing.T) {
	s := testSchool(t)
	if err := s.SetFee("ZZZ", Fee{}); !errors.Is(err, ErrNotFound) {
		t.Error("fee on ghost course")
	}
	if err := s.SetFee("ELG5121", Fee{EnrollCents: -1}); err == nil {
		t.Error("negative fee accepted")
	}
}

func TestRevenue(t *testing.T) {
	s, num := billingSchool(t)
	second, _ := s.Register(Profile{Name: "Other"})
	s.Enroll(second, "ELG5121")
	s.RecordPayment(num, 5000)
	billed, paid := s.Revenue()
	if billed != 10000 || paid != 5000 {
		t.Errorf("revenue billed=%d paid=%d", billed, paid)
	}
}
