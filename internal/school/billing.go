package school

import (
	"fmt"
	"sort"
)

// Billing implements the service the thesis reserves room for in the
// registration design (§5.2.1: "this leaves some space for the further
// studying and development of the billing services for the
// TeleLearning applications"). Course-On-Demand pricing is usage-based:
// an enrollment fee per course plus a per-session charge, so a student
// pays for the learning they actually pull on demand.

// Fee configures one course's pricing in cents.
type Fee struct {
	EnrollCents  int
	SessionCents int
}

// Charge is one line of an invoice.
type Charge struct {
	Course      string
	Description string
	AmountCents int
}

// Invoice summarizes what a student owes.
type Invoice struct {
	Student      string
	Charges      []Charge
	TotalCents   int
	PaidCents    int
	BalanceCents int
}

// SetFee prices a course.
func (s *School) SetFee(courseCode string, fee Fee) error {
	if fee.EnrollCents < 0 || fee.SessionCents < 0 {
		return fmt.Errorf("school: negative fee for %s", courseCode)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.courses[courseCode]; !ok {
		return fmt.Errorf("%w: course %s", ErrNotFound, courseCode)
	}
	if s.fees == nil {
		s.fees = make(map[string]Fee)
	}
	s.fees[courseCode] = fee
	return nil
}

// RecordPayment credits a student's account.
func (s *School) RecordPayment(number string, cents int) error {
	if cents <= 0 {
		return fmt.Errorf("school: payment must be positive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.students[number]; !ok {
		return fmt.Errorf("%w: student %s", ErrNotFound, number)
	}
	if s.payments == nil {
		s.payments = make(map[string]int)
	}
	s.payments[number] += cents
	return nil
}

// Invoice computes a student's usage-based bill: enrollment fees plus
// per-session charges for every registered course, less payments.
func (s *School) Invoice(number string) (Invoice, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.students[number]
	if !ok {
		return Invoice{}, fmt.Errorf("%w: student %s", ErrNotFound, number)
	}
	inv := Invoice{Student: number}
	for _, reg := range st.Courses {
		fee, priced := s.fees[reg.CourseCode]
		if !priced {
			continue // free course
		}
		if fee.EnrollCents > 0 {
			inv.Charges = append(inv.Charges, Charge{
				Course:      reg.CourseCode,
				Description: "enrollment",
				AmountCents: fee.EnrollCents,
			})
		}
		if fee.SessionCents > 0 && reg.SessionsDone > 0 {
			inv.Charges = append(inv.Charges, Charge{
				Course:      reg.CourseCode,
				Description: fmt.Sprintf("%d session(s) on demand", reg.SessionsDone),
				AmountCents: fee.SessionCents * reg.SessionsDone,
			})
		}
	}
	sort.Slice(inv.Charges, func(i, j int) bool {
		if inv.Charges[i].Course != inv.Charges[j].Course {
			return inv.Charges[i].Course < inv.Charges[j].Course
		}
		return inv.Charges[i].Description < inv.Charges[j].Description
	})
	for _, c := range inv.Charges {
		inv.TotalCents += c.AmountCents
	}
	inv.PaidCents = s.payments[number]
	inv.BalanceCents = inv.TotalCents - inv.PaidCents
	return inv, nil
}

// Revenue totals the school's outstanding and collected amounts.
func (s *School) Revenue() (billedCents, paidCents int) {
	s.mu.RLock()
	numbers := make([]string, 0, len(s.students))
	for n := range s.students {
		numbers = append(numbers, n)
	}
	s.mu.RUnlock()
	for _, n := range numbers {
		inv, err := s.Invoice(n)
		if err != nil {
			continue
		}
		billedCents += inv.TotalCents
		paidCents += inv.PaidCents
	}
	return billedCents, paidCents
}
