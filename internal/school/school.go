// Package school implements the administration features of the MIRL
// TeleSchool (§5.2.1, §5.3.3): student registration and profiles (the
// CStudent class), course records (the CCourse class), per-program
// course catalogues, enrollment statistics, bookmarks and the
// stop-position mechanism that resumes a course presentation "at the
// right place when a student enters again".
package school

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrNotFound is returned for unknown students, courses or programs.
var ErrNotFound = errors.New("school: not found")

// Course mirrors the thesis's CCourse class: "course name, planned
// session to finish a course, course code, as well as the program which
// provides the courses are member variables".
type Course struct {
	Code            string
	Name            string
	Program         string
	PlannedSessions int
	// Document names the courseware document in the database.
	Document string
	// IntroRef references the multimedia course introduction clip shown
	// at registration (Fig 5.4d).
	IntroRef string
}

// Profile is the personal data a student provides at registration
// (Fig 5.4a-c).
type Profile struct {
	Name    string
	Address string
	Email   string
	// Background informs courseware analysis (§4.1.1).
	Background string
}

// Registration is one student-course enrollment.
type Registration struct {
	CourseCode string
	// SessionsDone tracks progress toward the course's planned sessions.
	SessionsDone int
	Completed    bool
}

// Bookmark saves "the location of the interesting topics or media
// objects found during browsing" (§5.2.1).
type Bookmark struct {
	Label  string
	Course string
	Scene  string
	At     time.Duration
}

// Position is a stop position inside a course presentation.
type Position struct {
	Scene string
	At    time.Duration
}

// Student mirrors the CStudent class: identity, profile and the
// courses registered.
type Student struct {
	Number    string
	Profile   Profile
	Courses   []Registration
	Bookmarks []Bookmark
	// Resume maps course codes to the last stop position.
	Resume map[string]Position
}

// FindNumberOfCourse reports how many courses the student has
// registered for — the thesis's member function of the same name.
func (s *Student) FindNumberOfCourse() int { return len(s.Courses) }

func (s *Student) registration(code string) *Registration {
	for i := range s.Courses {
		if s.Courses[i].CourseCode == code {
			return &s.Courses[i]
		}
	}
	return nil
}

// School is the virtual school's administration database. Safe for
// concurrent use (it sits behind the network service).
type School struct {
	mu         sync.RWMutex
	name       string
	students   map[string]*Student
	courses    map[string]*Course
	nextNumber int
	fees       map[string]Fee
	payments   map[string]int // collected cents per student
}

// New creates an empty school.
func New(name string) *School {
	return &School{
		name:       name,
		students:   make(map[string]*Student),
		courses:    make(map[string]*Course),
		nextNumber: 880001, // student numbers look like the thesis era's
	}
}

// Name reports the school's name.
func (s *School) Name() string { return s.name }

// AddCourse lists a course in the catalogue.
func (s *School) AddCourse(c Course) error {
	if c.Code == "" || c.Name == "" || c.Program == "" {
		return fmt.Errorf("school: course needs code, name and program (got %+v)", c)
	}
	if c.PlannedSessions <= 0 {
		return fmt.Errorf("school: course %s needs planned sessions ≥ 1", c.Code)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.courses[c.Code]; dup {
		return fmt.Errorf("school: course %s already listed", c.Code)
	}
	cc := c
	s.courses[c.Code] = &cc
	return nil
}

// Course looks a course up by code.
func (s *School) Course(code string) (Course, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.courses[code]
	if !ok {
		return Course{}, fmt.Errorf("%w: course %s", ErrNotFound, code)
	}
	return *c, nil
}

// Programs lists the programs offered, sorted.
func (s *School) Programs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]bool)
	for _, c := range s.courses {
		set[c.Program] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// CoursesIn lists the courses of a program (the course registration
// dialog of Fig 5.4d: "choose a program, and get a list of courses
// provided in that program").
func (s *School) CoursesIn(program string) []Course {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Course
	for _, c := range s.courses {
		if c.Program == program {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Register enrolls a new student, assigning a student number ("the
// student is given a new student number", §5.4).
func (s *School) Register(p Profile) (string, error) {
	if p.Name == "" {
		return "", fmt.Errorf("school: registration requires a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	num := fmt.Sprintf("%d", s.nextNumber)
	s.nextNumber++
	s.students[num] = &Student{
		Number:  num,
		Profile: p,
		Resume:  make(map[string]Position),
	}
	return num, nil
}

// Student fetches a copy of a student record; entering the school
// requires the number ("each time a student accesses a course, it is
// required that the student number ... should be provided", §5.2.1).
func (s *School) Student(number string) (Student, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.students[number]
	if !ok {
		return Student{}, fmt.Errorf("%w: student %s", ErrNotFound, number)
	}
	return copyStudent(st), nil
}

func copyStudent(st *Student) Student {
	cp := *st
	cp.Courses = append([]Registration(nil), st.Courses...)
	cp.Bookmarks = append([]Bookmark(nil), st.Bookmarks...)
	cp.Resume = make(map[string]Position, len(st.Resume))
	for k, v := range st.Resume {
		cp.Resume[k] = v
	}
	return cp
}

// UpdateProfile changes a student's personal data (Fig 5.6); the change
// is "modified at the database side immediately" (§5.3.3).
func (s *School) UpdateProfile(number string, p Profile) error {
	if p.Name == "" {
		return fmt.Errorf("school: profile requires a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.students[number]
	if !ok {
		return fmt.Errorf("%w: student %s", ErrNotFound, number)
	}
	st.Profile = p
	return nil
}

// Enroll registers a student for a course.
func (s *School) Enroll(number, courseCode string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.students[number]
	if !ok {
		return fmt.Errorf("%w: student %s", ErrNotFound, number)
	}
	if _, ok := s.courses[courseCode]; !ok {
		return fmt.Errorf("%w: course %s", ErrNotFound, courseCode)
	}
	if st.registration(courseCode) != nil {
		return fmt.Errorf("school: student %s already enrolled in %s", number, courseCode)
	}
	st.Courses = append(st.Courses, Registration{CourseCode: courseCode})
	return nil
}

// RecordSession advances a student's progress in a course by one
// session, marking completion when planned sessions are reached.
func (s *School) RecordSession(number, courseCode string) (Registration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.students[number]
	if !ok {
		return Registration{}, fmt.Errorf("%w: student %s", ErrNotFound, number)
	}
	reg := st.registration(courseCode)
	if reg == nil {
		return Registration{}, fmt.Errorf("school: student %s not enrolled in %s", number, courseCode)
	}
	course := s.courses[courseCode]
	reg.SessionsDone++
	if course != nil && reg.SessionsDone >= course.PlannedSessions {
		reg.Completed = true
	}
	return *reg, nil
}

// SetResume stores the stop position of a course presentation.
func (s *School) SetResume(number, courseCode string, pos Position) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.students[number]
	if !ok {
		return fmt.Errorf("%w: student %s", ErrNotFound, number)
	}
	st.Resume[courseCode] = pos
	return nil
}

// GetResume retrieves the stored stop position.
func (s *School) GetResume(number, courseCode string) (Position, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.students[number]
	if !ok {
		return Position{}, false, fmt.Errorf("%w: student %s", ErrNotFound, number)
	}
	pos, found := st.Resume[courseCode]
	return pos, found, nil
}

// AddBookmark saves a bookmark.
func (s *School) AddBookmark(number string, b Bookmark) error {
	if b.Label == "" {
		return fmt.Errorf("school: bookmark requires a label")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.students[number]
	if !ok {
		return fmt.Errorf("%w: student %s", ErrNotFound, number)
	}
	st.Bookmarks = append(st.Bookmarks, b)
	return nil
}

// Statistics is the school/course/student summary available "upon the
// students demand" (§5.2.1).
type Statistics struct {
	Students    int
	Courses     int
	Programs    int
	Enrollments map[string]int // course code → enrolled students
	Completions map[string]int // course code → completions
}

// Stats summarizes the school.
func (s *School) Stats() Statistics {
	s.mu.RLock()
	defer s.mu.RUnlock()
	stats := Statistics{
		Students:    len(s.students),
		Courses:     len(s.courses),
		Enrollments: make(map[string]int),
		Completions: make(map[string]int),
	}
	progs := make(map[string]bool)
	for _, c := range s.courses {
		progs[c.Program] = true
	}
	stats.Programs = len(progs)
	for _, st := range s.students {
		for _, r := range st.Courses {
			stats.Enrollments[r.CourseCode]++
			if r.Completed {
				stats.Completions[r.CourseCode]++
			}
		}
	}
	return stats
}
