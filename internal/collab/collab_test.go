package collab

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mits/internal/courseware"
	"mits/internal/document"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(document.SampleATMCourse())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionIsolation(t *testing.T) {
	orig := document.SampleATMCourse()
	s, err := NewSession(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's document must not affect the session.
	origScene, _ := orig.Scene("cells")
	origScene.Title = "VANDALIZED"
	snap, v, err := s.Snapshot()
	if err != nil || v != 1 {
		t.Fatal(err)
	}
	sc, _ := snap.Scene("cells")
	if sc.Title == "VANDALIZED" {
		t.Error("session aliases the caller's document")
	}
	// And mutating a snapshot must not affect the session either.
	sc.Title = "ALSO VANDALIZED"
	snap2, _, _ := s.Snapshot()
	sc2, _ := snap2.Scene("cells")
	if sc2.Title == "ALSO VANDALIZED" {
		t.Error("snapshot aliases session state")
	}
}

func TestCheckoutCommitFlow(t *testing.T) {
	s := newSession(t)
	scene, err := s.Checkout("alice", "cells")
	if err != nil {
		t.Fatal(err)
	}
	scene.Title = "ATM Cells, revised"
	scene.Objects = append(scene.Objects, document.SceneObject{
		ID: "extra-caption", Kind: document.ObjText, Text: "53 = 5 + 48",
		Duration: 5 * time.Second, Channel: "stage",
	})
	scene.Timeline = append(scene.Timeline, document.Placement{
		Object: "extra-caption", Kind: document.PlaceAt, Offset: 2 * time.Second,
	})
	if err := s.Commit("alice", scene); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 2 {
		t.Errorf("version %d", s.Version())
	}
	snap, _, _ := s.Snapshot()
	got, _ := snap.Scene("cells")
	if got.Title != "ATM Cells, revised" {
		t.Error("commit not applied")
	}
	if _, ok := got.Object("extra-caption"); !ok {
		t.Error("added object missing")
	}
	// Lock released after commit.
	if _, err := s.Checkout("bob", "cells"); err != nil {
		t.Errorf("checkout after commit: %v", err)
	}
}

func TestLockConflicts(t *testing.T) {
	s := newSession(t)
	if _, err := s.Checkout("alice", "cells"); err != nil {
		t.Fatal(err)
	}
	// Bob cannot take Alice's scene…
	if _, err := s.Checkout("bob", "cells"); !errors.Is(err, ErrLocked) {
		t.Errorf("err=%v", err)
	}
	// …but can take another scene concurrently.
	if _, err := s.Checkout("bob", "quiz"); err != nil {
		t.Errorf("parallel checkout failed: %v", err)
	}
	// Alice re-checkout is idempotent.
	if _, err := s.Checkout("alice", "cells"); err != nil {
		t.Errorf("re-checkout: %v", err)
	}
	// Release frees the scene for Bob.
	if err := s.Release("alice", "cells"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkout("bob", "cells"); err != nil {
		t.Errorf("checkout after release: %v", err)
	}
	// Release by a non-holder fails.
	if err := s.Release("alice", "cells"); !errors.Is(err, ErrNotLocked) {
		t.Errorf("err=%v", err)
	}
	if locks := s.Locks(); len(locks) != 2 {
		t.Errorf("locks %v", locks)
	}
}

func TestCommitWithoutCheckout(t *testing.T) {
	s := newSession(t)
	scene := &document.Scene{ID: "cells"}
	if err := s.Commit("mallory", scene); !errors.Is(err, ErrNotLocked) {
		t.Errorf("err=%v", err)
	}
}

func TestInvalidCommitRejectedAndLockKept(t *testing.T) {
	s := newSession(t)
	scene, _ := s.Checkout("alice", "cells")
	scene.Objects = nil // timeline now references removed objects
	err := s.Commit("alice", scene)
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("invalid commit accepted: %v", err)
	}
	if s.Version() != 1 {
		t.Error("version bumped by rejected commit")
	}
	// The lock survives so Alice can fix her edit.
	if _, err := s.Checkout("bob", "cells"); !errors.Is(err, ErrLocked) {
		t.Error("lock lost after rejected commit")
	}
}

func TestAddAndRemoveScene(t *testing.T) {
	s := newSession(t)
	extra, err := courseware.QuizScene("extra-quiz", "What does VPI stand for?",
		[]courseware.QuizOption{
			{Label: "Virtual Path Identifier", Correct: true},
			{Label: "Very Prompt Interface"},
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddScene("carol", "Assessment", extra); err != nil {
		t.Fatal(err)
	}
	snap, _, _ := s.Snapshot()
	if _, ok := snap.Scene("extra-quiz"); !ok {
		t.Fatal("added scene missing")
	}
	// Duplicate ids rejected.
	if err := s.AddScene("carol", "Assessment", extra); err == nil {
		t.Error("duplicate scene added")
	}
	// Removing requires a lock.
	if err := s.RemoveScene("carol", "extra-quiz"); !errors.Is(err, ErrNotLocked) {
		t.Errorf("err=%v", err)
	}
	if _, err := s.Checkout("carol", "extra-quiz"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveScene("carol", "extra-quiz"); err != nil {
		t.Fatal(err)
	}
	snap, _, _ = s.Snapshot()
	if _, ok := snap.Scene("extra-quiz"); ok {
		t.Error("removed scene survives")
	}
	// New section is created when absent.
	extra2, _ := courseware.QuizScene("q9", "Q?", []courseware.QuizOption{{Label: "a", Correct: true}, {Label: "b"}})
	if err := s.AddScene("carol", "Brand New Section", extra2); err != nil {
		t.Fatal(err)
	}
	snap, _, _ = s.Snapshot()
	found := false
	for _, sec := range snap.Sections {
		if sec.Title == "Brand New Section" {
			found = true
		}
	}
	if !found {
		t.Error("new section missing")
	}
}

func TestHistoryLog(t *testing.T) {
	s := newSession(t)
	sc, _ := s.Checkout("alice", "intro")
	s.Commit("alice", sc)
	s.Checkout("bob", "quiz")
	s.Release("bob", "quiz")
	ops := s.History()
	if len(ops) != 4 {
		t.Fatalf("ops %v", ops)
	}
	wantKinds := []OpKind{OpCheckout, OpCommit, OpCheckout, OpRelease}
	for i, op := range ops {
		if op.Kind != wantKinds[i] || op.Seq != i+1 {
			t.Errorf("op %d = %+v", i, op)
		}
	}
	if ops[1].Version != 2 {
		t.Errorf("commit version %d", ops[1].Version)
	}
}

func TestConcurrentAuthors(t *testing.T) {
	s := newSession(t)
	scenes := []string{"intro", "cells", "switching", "quiz"}
	var wg sync.WaitGroup
	commits := make([]int, len(scenes))
	for i, sceneID := range scenes {
		wg.Add(1)
		go func(i int, sceneID string) {
			defer wg.Done()
			author := string(rune('a' + i))
			for j := 0; j < 10; j++ {
				sc, err := s.Checkout(author, sceneID)
				if err != nil {
					t.Errorf("%s checkout: %v", author, err)
					return
				}
				sc.Title = sc.Title + "."
				if err := s.Commit(author, sc); err != nil {
					t.Errorf("%s commit: %v", author, err)
					return
				}
				commits[i]++
			}
		}(i, sceneID)
	}
	wg.Wait()
	for i, n := range commits {
		if n != 10 {
			t.Errorf("author %d committed %d times", i, n)
		}
	}
	if s.Version() != 41 {
		t.Errorf("version %d, want 41", s.Version())
	}
	// The jointly-edited document still compiles.
	snap, _, _ := s.Snapshot()
	if _, err := courseware.CompileIMD(snap, "joint"); err != nil {
		t.Errorf("jointly edited document does not compile: %v", err)
	}
}

func TestNewSessionRejectsInvalid(t *testing.T) {
	bad := document.SampleATMCourse()
	bad.Title = ""
	if _, err := NewSession(bad); err == nil {
		t.Error("invalid document accepted")
	}
}

func TestCheckoutErrors(t *testing.T) {
	s := newSession(t)
	if _, err := s.Checkout("", "cells"); err == nil {
		t.Error("anonymous checkout")
	}
	if _, err := s.Checkout("alice", "ghost"); err == nil {
		t.Error("ghost scene checkout")
	}
}
