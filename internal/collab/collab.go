// Package collab implements the collaborative courseware editing of
// §6.2's future work: "multimedia collaborative document editing can be
// used by both courseware authors and students for joint authoring of
// an interactive multimedia document."
//
// The model is scene-granular check-out/commit: several authors work on
// one interactive multimedia document at once, each locking the scene
// they edit; commits validate the whole document before they apply, so
// the shared document is valid after every operation. An operation log
// records who changed what — the session history a joint-authoring UI
// would display.
package collab

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"

	"mits/internal/document"
)

// ErrLocked is returned when a scene is checked out by another author.
var ErrLocked = errors.New("collab: scene locked by another author")

// ErrNotLocked is returned when committing without a check-out.
var ErrNotLocked = errors.New("collab: scene not checked out by this author")

// OpKind classifies log entries.
type OpKind string

// Operation kinds.
const (
	OpCheckout OpKind = "checkout"
	OpCommit   OpKind = "commit"
	OpRelease  OpKind = "release"
	OpAdd      OpKind = "add-scene"
	OpRemove   OpKind = "remove-scene"
)

// Op is one entry of the session history.
type Op struct {
	Seq     int
	Author  string
	Kind    OpKind
	Scene   string
	Version int // document version after the operation
}

// Session is one jointly-edited document.
type Session struct {
	mu      sync.Mutex
	doc     *document.IMDoc
	version int
	locks   map[string]string // scene id → author
	log     []Op
}

// NewSession starts joint authoring over a deep copy of doc.
func NewSession(doc *document.IMDoc) (*Session, error) {
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("collab: initial document invalid: %w", err)
	}
	cp, err := copyDoc(doc)
	if err != nil {
		return nil, err
	}
	return &Session{doc: cp, version: 1, locks: make(map[string]string)}, nil
}

// copyDoc deep-copies via gob, so session state never aliases caller
// structures.
func copyDoc(doc *document.IMDoc) (*document.IMDoc, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(doc); err != nil {
		return nil, fmt.Errorf("collab: copy document: %w", err)
	}
	var out document.IMDoc
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		return nil, fmt.Errorf("collab: copy document: %w", err)
	}
	return &out, nil
}

func copyScene(s *document.Scene) (*document.Scene, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("collab: copy scene: %w", err)
	}
	var out document.Scene
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		return nil, fmt.Errorf("collab: copy scene: %w", err)
	}
	return &out, nil
}

// recordLocked appends to the operation log; callers hold s.mu.
func (s *Session) recordLocked(author string, kind OpKind, scene string) {
	s.log = append(s.log, Op{
		Seq: len(s.log) + 1, Author: author, Kind: kind, Scene: scene, Version: s.version,
	})
}

// Version reports the current document version.
func (s *Session) Version() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Snapshot returns a deep copy of the current document and its version.
func (s *Session) Snapshot() (*document.IMDoc, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp, err := copyDoc(s.doc)
	if err != nil {
		return nil, 0, err
	}
	return cp, s.version, nil
}

// History returns the operation log.
func (s *Session) History() []Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Op(nil), s.log...)
}

// Locks reports current check-outs (scene → author), sorted by scene in
// the returned slice of pairs.
func (s *Session) Locks() []Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Op
	for scene, author := range s.locks {
		out = append(out, Op{Author: author, Kind: OpCheckout, Scene: scene})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scene < out[j].Scene })
	return out
}

// Checkout locks a scene for an author and returns an editable copy.
// An author may re-checkout their own scene (idempotent).
func (s *Session) Checkout(author, sceneID string) (*document.Scene, error) {
	if author == "" {
		return nil, errors.New("collab: checkout requires an author")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	scene, ok := s.doc.Scene(sceneID)
	if !ok {
		return nil, fmt.Errorf("collab: unknown scene %q", sceneID)
	}
	if holder, locked := s.locks[sceneID]; locked && holder != author {
		return nil, fmt.Errorf("%w: %q holds %q", ErrLocked, holder, sceneID)
	}
	s.locks[sceneID] = author
	s.recordLocked(author, OpCheckout, sceneID)
	return copyScene(scene)
}

// Commit replaces the checked-out scene with the edited version. The
// whole document is validated first; an invalid edit is rejected and
// the lock kept so the author can fix it.
func (s *Session) Commit(author string, edited *document.Scene) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if holder := s.locks[edited.ID]; holder != author {
		return fmt.Errorf("%w: scene %q", ErrNotLocked, edited.ID)
	}
	// Build a candidate document with the scene replaced.
	candidate, err := copyDoc(s.doc)
	if err != nil {
		return err
	}
	replaced := false
	for _, sec := range candidate.Sections {
		replaceInSection(sec, edited, &replaced)
	}
	if !replaced {
		return fmt.Errorf("collab: scene %q vanished from the document", edited.ID)
	}
	if err := candidate.Validate(); err != nil {
		return fmt.Errorf("collab: commit rejected, document would become invalid: %w", err)
	}
	s.doc = candidate
	s.version++
	delete(s.locks, edited.ID)
	s.recordLocked(author, OpCommit, edited.ID)
	return nil
}

func replaceInSection(sec *document.Section, edited *document.Scene, replaced *bool) {
	for i, sc := range sec.Scenes {
		if sc.ID == edited.ID {
			cp, err := copyScene(edited)
			if err == nil {
				sec.Scenes[i] = cp
				*replaced = true
			}
		}
	}
	for _, sub := range sec.Subsections {
		replaceInSection(sub, edited, replaced)
	}
}

// Release abandons a check-out without committing.
func (s *Session) Release(author, sceneID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if holder := s.locks[sceneID]; holder != author {
		return fmt.Errorf("%w: scene %q", ErrNotLocked, sceneID)
	}
	delete(s.locks, sceneID)
	s.recordLocked(author, OpRelease, sceneID)
	return nil
}

// AddScene appends a new scene to the named section (created when
// absent). The scene id must be new; the candidate document must
// validate.
func (s *Session) AddScene(author, sectionTitle string, scene *document.Scene) error {
	if author == "" {
		return errors.New("collab: add requires an author")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.doc.Scene(scene.ID); exists {
		return fmt.Errorf("collab: scene %q already exists", scene.ID)
	}
	candidate, err := copyDoc(s.doc)
	if err != nil {
		return err
	}
	cp, err := copyScene(scene)
	if err != nil {
		return err
	}
	placed := false
	for _, sec := range candidate.Sections {
		if sec.Title == sectionTitle {
			sec.Scenes = append(sec.Scenes, cp)
			placed = true
			break
		}
	}
	if !placed {
		candidate.Sections = append(candidate.Sections, &document.Section{
			Title: sectionTitle, Scenes: []*document.Scene{cp},
		})
	}
	if err := candidate.Validate(); err != nil {
		return fmt.Errorf("collab: add rejected: %w", err)
	}
	s.doc = candidate
	s.version++
	s.recordLocked(author, OpAdd, scene.ID)
	return nil
}

// RemoveScene deletes a scene the author has checked out.
func (s *Session) RemoveScene(author, sceneID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if holder := s.locks[sceneID]; holder != author {
		return fmt.Errorf("%w: scene %q", ErrNotLocked, sceneID)
	}
	candidate, err := copyDoc(s.doc)
	if err != nil {
		return err
	}
	removed := false
	var prune func(sec *document.Section)
	prune = func(sec *document.Section) {
		kept := sec.Scenes[:0]
		for _, sc := range sec.Scenes {
			if sc.ID == sceneID {
				removed = true
				continue
			}
			kept = append(kept, sc)
		}
		sec.Scenes = kept
		for _, sub := range sec.Subsections {
			prune(sub)
		}
	}
	for _, sec := range candidate.Sections {
		prune(sec)
	}
	if !removed {
		return fmt.Errorf("collab: scene %q not found", sceneID)
	}
	if err := candidate.Validate(); err != nil {
		return fmt.Errorf("collab: remove rejected: %w", err)
	}
	s.doc = candidate
	s.version++
	delete(s.locks, sceneID)
	s.recordLocked(author, OpRemove, sceneID)
	return nil
}
