// Package faults is the deterministic fault-injection layer of the
// chaos harness (experiment E28). MITS is a five-site distributed
// system — content server, authoring site and navigators talk over a
// client–server protocol on a broadband network (Fig 3.5) — and the
// resilience mechanisms in transport and navigator exist precisely for
// the moments that network misbehaves. This package manufactures those
// moments on demand and, crucially, *reproducibly*: every decision
// (drop this write? stall this read? how much jitter?) is drawn from a
// sim.RNG stream seeded by the caller, so replaying a scenario with
// the same seed injects the identical fault sequence. E28 asserts
// exactly that.
//
// Two injection surfaces are provided:
//
//   - net.Conn / net.Listener wrappers for the real TCP path (latency,
//     jitter, silent drops, truncation, byte corruption, read stalls,
//     accept errors, full partition);
//   - an RPC hook for the virtual-time ATM path (per-call delay, drop,
//     injected error) fitting transport.ATMSessionOptions.Fault.
//
// Determinism discipline: injection happens only where the operation
// sequence is itself deterministic. Conn decisions are drawn per Write
// call and per first-Read-after-a-Write (one logical response), never
// per raw Read, because TCP segmentation makes the raw read count
// nondeterministic. With a single sequential client — the E28 shape —
// the draw sequence, and therefore the event log, replays exactly.
package faults

import (
	"fmt"
	"sync"
	"time"

	"mits/internal/obs"
	"mits/internal/sim"
)

// Scenario parameterizes one fault regime. The zero value injects
// nothing (a clean network); each field enables one fault class.
// Probabilities are per injection opportunity (one Write, one logical
// response read, one Accept, one RPC).
type Scenario struct {
	Name string

	// Latency delays every Write; Jitter adds a uniform extra in
	// [0, Jitter). On the ATM hook both apply per RPC in virtual time.
	Latency time.Duration
	Jitter  time.Duration

	// DropProb silently swallows a Write: the peer never sees the
	// bytes and only a deadline can complete the call.
	DropProb float64

	// CorruptProb flips one byte of a Write at a seeded position.
	CorruptProb float64

	// TruncProb writes only the first half of the data and severs the
	// connection, modelling a peer dying mid-frame.
	TruncProb float64

	// StallProb freezes the first Read after a Write for StallFor —
	// long enough to blow a caller's deadline when StallFor exceeds it.
	StallProb float64
	StallFor  time.Duration

	// AcceptErrProb makes a wrapped listener's Accept fail with a
	// temporary error, exercising server accept-loop backoff.
	AcceptErrProb float64

	// ErrProb injects a synthetic error on the ATM RPC hook.
	ErrProb float64

	// Partitioned refuses dials and fails conn I/O instantly, a full
	// network partition. Toggle at runtime with SetPartitioned to
	// model partition-then-heal.
	Partitioned bool
}

// Injector draws fault decisions for one peer from a deterministic
// stream and records every injected fault in an ordered event log.
// Safe for concurrent use; determinism of the log order is up to the
// caller's operation order (see the package comment).
type Injector struct {
	mu     sync.Mutex
	scen   Scenario
	rng    *sim.RNG
	seq    int // injection-opportunity counter, stamped into events
	events []string
}

// NewInjector builds an injector for scen whose decision stream is
// seeded by seed.
func NewInjector(scen Scenario, seed uint64) *Injector {
	return &Injector{scen: scen, rng: sim.NewRNG(seed)}
}

// Scenario reports the injector's current scenario.
func (in *Injector) Scenario() Scenario {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.scen
}

// SetPartitioned heals or severs the network at runtime (the E28
// partition-then-heal phase).
func (in *Injector) SetPartitioned(p bool) {
	in.mu.Lock()
	in.scen.Partitioned = p
	in.mu.Unlock()
}

// Events returns a copy of the injected-fault log, in injection order.
// Two runs of the same scenario, seed and caller behaviour produce
// identical logs — the replay invariant E28 asserts.
func (in *Injector) Events() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.events))
	copy(out, in.events)
	return out
}

// recordLocked appends one injected-fault event and counts it.
// Callers hold in.mu.
func (in *Injector) recordLocked(kind, detail string) {
	ev := fmt.Sprintf("%d:%s", in.seq, kind)
	if detail != "" {
		ev += ":" + detail
	}
	in.events = append(in.events, ev)
	obs.GetCounter("faults_injected_total", "kind", kind).Inc()
}

// draw is one probability decision; p == 0 consumes no randomness so
// disabled fault classes never perturb the stream of enabled ones.
func (in *Injector) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	return in.rng.Float64() < p
}

// delayLocked computes the Latency+Jitter delay for one operation.
// Callers hold in.mu.
func (in *Injector) delayLocked() time.Duration {
	d := in.scen.Latency
	if in.scen.Jitter > 0 {
		d += time.Duration(in.rng.Float64() * float64(in.scen.Jitter))
	}
	return d
}

// writeAction is the decided fate of one Write.
type writeAction int

const (
	writePass writeAction = iota
	writeDrop
	writeCorrupt
	writeTrunc
)

// writePlan decides one Write's fate: an added delay, an action, and
// for corruption the byte position to flip (n is the write length).
func (in *Injector) writePlan(n int) (delay time.Duration, act writeAction, pos int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	delay = in.delayLocked()
	switch {
	case in.draw(in.scen.DropProb):
		in.recordLocked("drop", "")
		return delay, writeDrop, 0
	case in.draw(in.scen.CorruptProb):
		if n > 0 {
			pos = in.rng.Intn(n)
		}
		in.recordLocked("corrupt", fmt.Sprintf("@%d", pos))
		return delay, writeCorrupt, pos
	case in.draw(in.scen.TruncProb):
		in.recordLocked("trunc", "")
		return delay, writeTrunc, 0
	}
	return delay, writePass, 0
}

// readStall decides whether the next logical response read stalls,
// returning the stall duration (0 = none).
func (in *Injector) readStall() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	if in.draw(in.scen.StallProb) {
		in.recordLocked("stall", in.scen.StallFor.String())
		return in.scen.StallFor
	}
	return 0
}

// CallStall decides whether one handled call stalls for StallFor,
// returning the stall to apply (0 = none). Unlike the conn-level read
// stall — which delays the *client's* read and therefore lands in the
// client span — a handler calls this before doing its work, so the
// stall is inside the server span and a trace's critical path
// attributes it to the right hop. method is recorded for the event
// log.
func (in *Injector) CallStall(method string) time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	if in.draw(in.scen.StallProb) {
		in.recordLocked("call-stall", method+" "+in.scen.StallFor.String())
		return in.scen.StallFor
	}
	return 0
}

// acceptErr decides whether one Accept fails, returning a temporary
// net.Error or nil.
func (in *Injector) acceptErr() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	if in.draw(in.scen.AcceptErrProb) {
		in.recordLocked("accept-err", "")
		return tempError{"faults: injected accept failure"}
	}
	return nil
}

// dialCheck rejects dials while partitioned.
func (in *Injector) dialCheck() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.scen.Partitioned {
		in.seq++
		in.recordLocked("partition", "dial")
		return ErrPartitioned
	}
	return nil
}

// partitioned reports the live partition flag, recording the fault
// when an I/O op is cut by it.
func (in *Injector) partitioned(op string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.scen.Partitioned {
		return false
	}
	in.seq++
	in.recordLocked("partition", op)
	return true
}

// RPC is the fault hook for the virtual-time ATM path (fits
// transport.ATMSessionOptions.Fault): a virtual delay before the
// request is sent, a silent drop (only the session deadline can finish
// the call), or an injected error delivered to the caller.
func (in *Injector) RPC(method string) (delay time.Duration, drop bool, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	delay = in.delayLocked()
	switch {
	case in.draw(in.scen.DropProb):
		in.recordLocked("rpc-drop", method)
		return delay, true, nil
	case in.draw(in.scen.ErrProb):
		in.recordLocked("rpc-err", method)
		return delay, false, fmt.Errorf("%w: rpc %s", ErrInjected, method)
	}
	return delay, false, nil
}
