package faults

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrPartitioned is returned for dials and I/O cut by a network
// partition.
var ErrPartitioned = errors.New("faults: network partitioned")

// ErrInjected marks failures manufactured by the injector (truncated
// writes, synthetic RPC errors), so tests can tell injected faults
// from real bugs.
var ErrInjected = errors.New("faults: injected fault")

// tempError is a temporary net.Error, the kind an accept loop must
// back off on rather than die.
type tempError struct{ msg string }

func (e tempError) Error() string   { return e.msg }
func (e tempError) Timeout() bool   { return false }
func (e tempError) Temporary() bool { return true }

// Conn wraps a net.Conn, injecting the scenario's faults. Write
// decisions are drawn per Write call; read stalls per first Read after
// a Write (one logical response), keeping the decision stream
// independent of TCP segmentation.
type Conn struct {
	net.Conn
	in *Injector

	mu    sync.Mutex
	armed bool // a Write happened; next Read draws the stall decision
}

// WrapConn wraps c with the injector's fault behaviour.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	return &Conn{Conn: c, in: in}
}

// Write injects latency, drops, corruption and truncation.
func (c *Conn) Write(p []byte) (int, error) {
	if c.in.partitioned("write") {
		return 0, ErrPartitioned
	}
	delay, act, pos := c.in.writePlan(len(p))
	c.mu.Lock()
	c.armed = true
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay) //mits:allow sleepless injected wire latency is a real wall-clock wait
	}
	switch act {
	case writeDrop:
		// Swallowed: the caller believes the bytes left, the peer
		// never sees them.
		return len(p), nil
	case writeCorrupt:
		buf := make([]byte, len(p))
		copy(buf, p)
		if len(buf) > 0 {
			buf[pos] ^= 0xFF
		}
		return c.Conn.Write(buf)
	case writeTrunc:
		n, _ := c.Conn.Write(p[:len(p)/2]) //mits:allow errdrop the injected severance is the error we report
		c.Conn.Close()                     //mits:allow errdrop fault injection severs the conn; the write error is the signal
		return n, errors.Join(ErrInjected, errors.New("faults: write truncated, connection severed"))
	}
	return c.Conn.Write(p)
}

// Read injects the stall decided for this logical response.
func (c *Conn) Read(p []byte) (int, error) {
	if c.in.partitioned("read") {
		return 0, ErrPartitioned
	}
	c.mu.Lock()
	armed := c.armed
	c.armed = false
	c.mu.Unlock()
	if armed {
		if stall := c.in.readStall(); stall > 0 {
			time.Sleep(stall) //mits:allow sleepless injected peer stall is a real wall-clock wait
		}
	}
	return c.Conn.Read(p)
}

// listener wraps a net.Listener with accept-error injection.
type listener struct {
	net.Listener
	in *Injector
}

// WrapListener wraps l so Accept fails (with a temporary error) per
// the scenario's AcceptErrProb. Accepted connections pass through
// unwrapped: server-side reads are concurrent, and injecting there
// would make the decision stream scheduling-dependent.
func (in *Injector) WrapListener(l net.Listener) net.Listener {
	return &listener{Listener: l, in: in}
}

// Accept waits for a real connection and only then draws the fault:
// an injected failure closes the just-accepted connection (the peer
// sees a reset) and surfaces a temporary error to the accept loop.
// Drawing after the connection arrives keeps the decision stream
// keyed to the deterministic dial sequence — an idle accept loop
// consumes no randomness.
func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if ierr := l.in.acceptErr(); ierr != nil {
		conn.Close()
		return nil, ierr
	}
	return conn, nil
}

// dialTimeout bounds the injector's TCP connect. The chaos targets
// are in-process listeners, so any connect that takes seconds is a
// harness bug, not a scenario — fail it instead of hanging the suite
// for the OS connect default.
const dialTimeout = 10 * time.Second

// Dial connects to addr through the injector: refused while
// partitioned, otherwise returning a fault-wrapped connection.
func (in *Injector) Dial(addr string) (net.Conn, error) {
	if err := in.dialCheck(); err != nil {
		return nil, err
	}
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(c), nil
}
