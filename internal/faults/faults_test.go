package faults

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// pipePeer reads everything the far end of a net.Pipe receives.
func pipePeer(t *testing.T, c net.Conn) <-chan []byte {
	t.Helper()
	out := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		tmp := make([]byte, 1024)
		for {
			n, err := c.Read(tmp)
			buf.Write(tmp[:n])
			if err != nil {
				break
			}
		}
		out <- buf.Bytes()
	}()
	return out
}

func TestWriteDropSwallowsBytes(t *testing.T) {
	in := NewInjector(Scenario{DropProb: 1}, 1)
	a, b := net.Pipe()
	got := pipePeer(t, b)
	w := in.WrapConn(a)
	n, err := w.Write([]byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("dropped write returned (%d, %v), want (5, nil)", n, err)
	}
	a.Close()
	if data := <-got; len(data) != 0 {
		t.Fatalf("peer received %q through a dropping conn", data)
	}
	evs := in.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %v, want one drop", evs)
	}
}

func TestWriteCorruptFlipsOneByte(t *testing.T) {
	in := NewInjector(Scenario{CorruptProb: 1}, 2)
	a, b := net.Pipe()
	got := pipePeer(t, b)
	w := in.WrapConn(a)
	msg := []byte("hello world")
	if _, err := w.Write(msg); err != nil {
		t.Fatal(err)
	}
	a.Close()
	data := <-got
	if len(data) != len(msg) {
		t.Fatalf("peer got %d bytes, want %d", len(data), len(msg))
	}
	diff := 0
	for i := range msg {
		if data[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if !bytes.Equal(msg, []byte("hello world")) {
		t.Fatal("corruption mutated the caller's buffer")
	}
}

func TestWriteTruncSeversConn(t *testing.T) {
	in := NewInjector(Scenario{TruncProb: 1}, 3)
	a, b := net.Pipe()
	got := pipePeer(t, b)
	w := in.WrapConn(a)
	_, err := w.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("truncated write error = %v, want ErrInjected", err)
	}
	if data := <-got; len(data) != 5 {
		t.Fatalf("peer got %d bytes, want the truncated 5", len(data))
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("conn still writable after injected severance")
	}
}

func TestReadStallDelaysFirstReadAfterWrite(t *testing.T) {
	const stall = 30 * time.Millisecond
	in := NewInjector(Scenario{StallProb: 1, StallFor: stall}, 4)
	a, b := net.Pipe()
	w := in.WrapConn(a)
	go func() {
		buf := make([]byte, 8)
		b.Read(buf)
		b.Write([]byte("resp"))
	}()
	if _, err := w.Write([]byte("req")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 8)
	if _, err := w.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("stalled read returned after %v, want ≥ %v", d, stall)
	}
}

func TestPartitionRefusesDialAndIO(t *testing.T) {
	in := NewInjector(Scenario{Partitioned: true}, 5)
	if _, err := in.Dial("127.0.0.1:1"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned dial error = %v, want ErrPartitioned", err)
	}
	a, _ := net.Pipe()
	w := in.WrapConn(a)
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned write error = %v, want ErrPartitioned", err)
	}
	in.SetPartitioned(false)
	go a.Close()         // unblock: pipe has no buffer, the healed write needs a reader or close
	w.Write([]byte("x")) //mits:allow errdrop only checking the partition gate here
}

func TestAcceptErrIsTemporary(t *testing.T) {
	in := NewInjector(Scenario{AcceptErrProb: 1}, 6)
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	l := in.WrapListener(base)
	conn, err := net.Dial("tcp", base.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, aerr := l.Accept()
	var ne net.Error
	if !errors.As(aerr, &ne) || !ne.Temporary() { //nolint:staticcheck // Temporary is the accept-loop contract
		t.Fatalf("injected accept error %v is not a temporary net.Error", aerr)
	}
	// The dialed peer was closed by the injected failure: its next read
	// reports EOF/reset rather than blocking.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, rerr := conn.Read(make([]byte, 1)); rerr == nil {
		t.Fatal("peer connection survived an injected accept failure")
	}
}

func TestRPCHookDrawsFaults(t *testing.T) {
	in := NewInjector(Scenario{DropProb: 1, Latency: time.Millisecond}, 7)
	delay, drop, err := in.RPC("db.Get_Selected_Doc")
	if !drop || err != nil || delay < time.Millisecond {
		t.Fatalf("RPC = (%v, %v, %v), want dropped with latency", delay, drop, err)
	}
	in2 := NewInjector(Scenario{ErrProb: 1}, 8)
	_, drop, err = in2.RPC("m")
	if drop || !errors.Is(err, ErrInjected) {
		t.Fatalf("RPC err-injection = (%v, %v), want ErrInjected", drop, err)
	}
}

// TestReplayDeterminism drives two injectors with the same seed and
// scenario through the same operation sequence and requires identical
// event logs — the invariant that makes chaos runs reproducible.
func TestReplayDeterminism(t *testing.T) {
	scen := Scenario{
		Latency: time.Microsecond, Jitter: time.Microsecond,
		DropProb: 0.3, CorruptProb: 0.2, TruncProb: 0.1,
		StallProb: 0.25, StallFor: time.Microsecond,
		AcceptErrProb: 0.4, ErrProb: 0.2,
	}
	run := func() []string {
		in := NewInjector(scen, 42)
		for i := 0; i < 50; i++ {
			in.writePlan(100)
			in.readStall()
			in.acceptErr()
			in.RPC("m")
		}
		return in.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults injected at these probabilities")
	}
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
