package navigator

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"mits/internal/cache"
	"mits/internal/media"
	"mits/internal/mediastore"
	"mits/internal/mheg"
	"mits/internal/mheg/codec"
	"mits/internal/mheg/engine"
	"mits/internal/school"
	"mits/internal/sim"
	"mits/internal/transport"
)

// Capabilities describes the presentation site's resources, matched
// against courseware descriptor objects before a session starts — the
// negotiation of §3.1.2.2 ("a correspondence between the resources
// required to present the objects and the resources available to the
// system").
type Capabilities struct {
	BitRate  int // sustainable decode rate, bits/s
	MemoryKB int
	Codings  map[media.Coding]bool
}

// DefaultCapabilities describes the thesis prototype's multimedia PC:
// every coding supported, MPEG-1-class decode rate, 8 MB of buffers.
func DefaultCapabilities() Capabilities {
	return Capabilities{
		BitRate:  2_000_000,
		MemoryKB: 8192,
		Codings: map[media.Coding]bool{
			media.CodingMPEG: true, media.CodingAVI: true,
			media.CodingWAV: true, media.CodingMIDI: true,
			media.CodingJPEG: true, media.CodingASCII: true, media.CodingHTML: true,
		},
	}
}

// Navigator is one student's session with the TeleSchool: the
// application of Figs 5.3–5.7. It owns an MHEG engine fed from the
// courseware database and a virtual screen showing the presentation.
type Navigator struct {
	clock  *sim.Clock
	db     transport.DBClient
	school school.Client
	engine *engine.Engine
	screen *Screen
	caps   Capabilities

	student string // logged-in student number

	courseCode string
	courseDoc  string
	sceneRoots map[string]mheg.ID // scene id → composite model
	rootID     mheg.ID
	current    string   // current scene id
	sceneStart sim.Time // when the current scene started
}

// Options wires a navigator to its services.
type Options struct {
	Clock  *sim.Clock
	DB     transport.Client
	School transport.Client
	// Capabilities defaults to DefaultCapabilities().
	Capabilities *Capabilities
	// ContentCache, when non-nil, serves the playback path's repeated
	// content fetches (scene replays, shared stills, the engine's
	// resolver) from local memory with singleflight dedup. Left nil by
	// the experiments so store read counts stay exact; the deployment
	// entry points (NewRemoteNavigator, cmd/navigator) attach one.
	ContentCache *cache.Cache
}

// New builds a navigator.
func New(opts Options) *Navigator {
	if opts.Clock == nil {
		opts.Clock = sim.NewClock()
	}
	n := &Navigator{
		clock:      opts.Clock,
		db:         transport.DBClient{C: opts.DB, ContentCache: opts.ContentCache},
		school:     school.Client{C: opts.School},
		sceneRoots: make(map[string]mheg.ID),
		caps:       DefaultCapabilities(),
	}
	if opts.Capabilities != nil {
		n.caps = *opts.Capabilities
	}
	n.resetEngine(nil)
	return n
}

// resetEngine replaces the engine and screen — the navigator starts
// every course in a clean presentation environment (form (b)/(c)
// objects "are assumed to be extinct whenever the presentation
// environment vanishes", §2.2.2.2).
func (n *Navigator) resetEngine(enc codec.Encoding) {
	opts := []engine.Option{
		engine.WithResolver(n.db),
		engine.WithRenderer(engine.RendererFunc(n.render)),
	}
	if enc != nil {
		opts = append(opts, engine.WithEncoding(enc))
	}
	n.engine = engine.New(n.clock, opts...)
	n.screen = NewScreen(n.engine.Model)
}

func (n *Navigator) render(ev engine.Event) {
	n.screen.RenderEvent(ev)
	if ev.Kind == engine.EvRan {
		if obj, ok := n.engine.Model(ev.Model); ok {
			if name := obj.Base().Info.Name; strings.HasPrefix(name, "scene:") || strings.HasPrefix(name, "page:") {
				n.current = name[strings.Index(name, ":")+1:]
				n.sceneStart = n.clock.Now()
			}
		}
	}
}

// Clock exposes the session clock.
func (n *Navigator) Clock() *sim.Clock { return n.clock }

// Screen exposes the virtual display.
func (n *Navigator) Screen() *Screen { return n.screen }

// Engine exposes the underlying MHEG engine (for experiments).
func (n *Navigator) Engine() *engine.Engine { return n.engine }

// ---- administration (Figs 5.3, 5.4, 5.6) ----

// Register creates the student's school record and logs in.
func (n *Navigator) Register(p school.Profile) (string, error) {
	num, err := n.school.Register(p)
	if err != nil {
		return "", err
	}
	n.student = num
	return num, nil
}

// Login enters the school with an existing student number.
func (n *Navigator) Login(number string) error {
	if _, err := n.school.Student(number); err != nil {
		return err
	}
	n.student = number
	return nil
}

// Student reports the logged-in student number.
func (n *Navigator) Student() string { return n.student }

var errNotLoggedIn = errors.New("navigator: no student logged in")

// UpdateProfile changes the student's personal data (Fig 5.6).
func (n *Navigator) UpdateProfile(p school.Profile) error {
	if n.student == "" {
		return errNotLoggedIn
	}
	return n.school.UpdateProfile(n.student, p)
}

// Programs lists the school's programs.
func (n *Navigator) Programs() ([]string, error) { return n.school.Programs() }

// SchoolStats fetches enrollment statistics — "some statistics about
// the school, the course and the students themselves should also be
// available upon the students demand" (§5.2.1).
func (n *Navigator) SchoolStats() (school.Statistics, error) { return n.school.Stats() }

// CoursesIn lists a program's courses (Fig 5.4d).
func (n *Navigator) CoursesIn(program string) ([]school.Course, error) {
	return n.school.CoursesIn(program)
}

// CourseIntroduction fetches a course's multimedia introduction clip
// ("by selecting a course, then clicking the 'introduction' button, a
// video clip is going to be shown").
func (n *Navigator) CourseIntroduction(code string) (*mediastore.ContentRecord, error) {
	c, err := n.school.Course(code)
	if err != nil {
		return nil, err
	}
	if c.IntroRef == "" {
		return nil, fmt.Errorf("navigator: course %s has no introduction", code)
	}
	return n.db.GetContent(c.IntroRef)
}

// Enroll registers the student for a course.
func (n *Navigator) Enroll(code string) error {
	if n.student == "" {
		return errNotLoggedIn
	}
	return n.school.Enroll(n.student, code)
}

// ---- classroom presentation (Fig 5.5) ----

// StartCourse fetches the course document, loads it into a fresh
// engine, and begins presentation — resuming at the stored stop
// position when one exists ("the courseware can automatically start the
// course presentation at the right place when a student enters again").
func (n *Navigator) StartCourse(code string) error {
	if n.student == "" {
		return errNotLoggedIn
	}
	course, err := n.school.Course(code)
	if err != nil {
		return err
	}
	rec, err := n.db.GetSelectedDoc(course.Document)
	if err != nil {
		return fmt.Errorf("navigator: fetch courseware: %w", err)
	}
	enc, err := codec.ByName(rec.Encoding)
	if err != nil {
		return err
	}
	n.resetEngine(enc)
	n.sceneRoots = make(map[string]mheg.ID)
	n.current = ""
	rootID, err := n.engine.Ingest(rec.Data)
	if err != nil {
		return fmt.Errorf("navigator: ingest courseware: %w", err)
	}
	if err := n.negotiate(rootID); err != nil {
		return err
	}
	n.indexScenes(rootID)
	n.courseCode = code
	n.courseDoc = course.Document

	rt, err := n.engine.NewRT(n.rootID, "main")
	if err != nil {
		return err
	}
	// Resume support.
	if pos, found, err := n.school.GetResume(n.student, code); err == nil && found {
		if sceneID, ok := n.sceneRoots[pos.Scene]; ok {
			// Instantiate everything (NewRT above), then enter the
			// stored scene directly instead of running the root.
			rts := n.engine.RTsOf(sceneID)
			if len(rts) > 0 {
				n.engine.Run(rts[0])
				return nil
			}
		}
	}
	n.engine.Run(rt)
	return nil
}

// negotiate checks the courseware's descriptor objects against the
// site's capabilities before presentation (§3.1.2.2): a session only
// starts when every declared resource need is satisfiable.
func (n *Navigator) negotiate(containerID mheg.ID) error {
	obj, ok := n.engine.Model(containerID)
	if !ok {
		return nil
	}
	container, isContainer := obj.(*mheg.Container)
	if !isContainer {
		return nil
	}
	for _, item := range container.Items {
		desc, isDesc := item.(*mheg.Descriptor)
		if !isDesc {
			continue
		}
		if ok, why := desc.Satisfiable(n.caps.BitRate, n.caps.MemoryKB, n.caps.Codings); !ok {
			return fmt.Errorf("navigator: this site cannot present the courseware: %s", why)
		}
	}
	return nil
}

// indexScenes scans the interchanged container for the per-scene
// composites (the compiler names them "scene:<id>" / "page:<id>") and
// the course root, which the compiler appends as the container's last
// composite.
func (n *Navigator) indexScenes(containerID mheg.ID) {
	n.rootID = containerID
	root, ok := n.engine.Model(containerID)
	if !ok {
		return
	}
	container, isContainer := root.(*mheg.Container)
	if !isContainer {
		return // a bare composite was interchanged; run it directly
	}
	for _, item := range container.Items {
		comp, isComp := item.(*mheg.Composite)
		if !isComp {
			continue
		}
		name := comp.Info.Name
		switch {
		case strings.HasPrefix(name, "scene:"):
			n.sceneRoots[strings.TrimPrefix(name, "scene:")] = comp.ID
		case strings.HasPrefix(name, "page:"):
			n.sceneRoots[strings.TrimPrefix(name, "page:")] = comp.ID
		default:
			n.rootID = comp.ID // last plain composite wins: the course root
		}
	}
}

// CurrentScene reports the scene/page the student is in and how long
// they have been there.
func (n *Navigator) CurrentScene() (string, time.Duration) {
	return n.current, n.clock.Now().Sub(n.sceneStart)
}

// Scenes lists the course's scene ids, sorted.
func (n *Navigator) Scenes() []string {
	out := make([]string, 0, len(n.sceneRoots))
	for s := range n.sceneRoots {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Click activates the on-screen button with the given label — the
// navigator's single interaction verb, standing in for the mouse.
func (n *Navigator) Click(label string) error {
	it, ok := n.screen.Find(label)
	if !ok {
		return fmt.Errorf("navigator: no button %q on screen", label)
	}
	if !it.Kind.Clickable() {
		return fmt.Errorf("navigator: %q is %s, not a button or hot word", label, it.Kind)
	}
	n.engine.Select(it.RT)
	return nil
}

// GotoScene jumps the presentation to a scene by id (used by bookmarks).
func (n *Navigator) GotoScene(sceneID string) error {
	id, ok := n.sceneRoots[sceneID]
	if !ok {
		return fmt.Errorf("navigator: unknown scene %q", sceneID)
	}
	if cur, ok := n.sceneRoots[n.current]; ok {
		for _, rt := range n.engine.RTsOf(cur) {
			n.engine.Stop(rt)
		}
	}
	rts := n.engine.RTsOf(id)
	if len(rts) == 0 {
		return fmt.Errorf("navigator: scene %q not instantiated", sceneID)
	}
	n.engine.Run(rts[0])
	return nil
}

// Bookmark saves the current position under a label.
func (n *Navigator) Bookmark(label string) error {
	if n.student == "" {
		return errNotLoggedIn
	}
	scene, at := n.CurrentScene()
	return n.school.AddBookmark(n.student, school.Bookmark{
		Label: label, Course: n.courseCode, Scene: scene, At: at,
	})
}

// ExitCourse stores the stop position and records a session
// ("some important information such as the stop position of the
// courseware presentation is to be automatically stored", §5.4).
func (n *Navigator) ExitCourse() error {
	if n.student == "" || n.courseCode == "" {
		return errors.New("navigator: no course in progress")
	}
	scene, at := n.CurrentScene()
	if err := n.school.SetResume(n.student, n.courseCode, scene, at); err != nil {
		return err
	}
	if _, err := n.school.RecordSession(n.student, n.courseCode); err != nil {
		return err
	}
	n.courseCode = ""
	return nil
}

// ---- library browsing (Fig 5.7) ----

// LibraryTree fetches the library's keyword hierarchy.
func (n *Navigator) LibraryTree() (*mediastore.KeywordNode, error) {
	return n.db.GetKeywordTree()
}

// SearchLibrary finds documents by keyword.
func (n *Navigator) SearchLibrary(keyword string) ([]string, error) {
	return n.db.GetDocByKeyword(keyword)
}

// ReadLibrary fetches a library holding's content by reference.
func (n *Navigator) ReadLibrary(ref string) (*mediastore.ContentRecord, error) {
	return n.db.GetContent(ref)
}

// ReadLibraryStream fetches a library holding as a sequence of bounded
// chunks: sink sees each fragment as it arrives (valid only during the
// callback), so a multi-MB holding renders progressively instead of
// stalling the session behind one monolithic fetch — and the chunks
// interleave fairly with the engine's other calls on the connection.
// The assembled record is returned (and cached whole) like ReadLibrary.
func (n *Navigator) ReadLibraryStream(ref string, sink func([]byte) error) (*mediastore.ContentRecord, error) {
	return n.db.GetContentStream(ref, sink)
}
