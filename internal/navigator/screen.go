// Package navigator implements the courseware navigator of chapter 5:
// the presentation-site application that logs students into the MIRL
// TeleSchool, retrieves courseware from the database, plays it back
// through an MHEG engine, and offers the administration, library,
// bulletin-board and help facilities of §5.2.1.
//
// The Windows 95 GUI is replaced by a virtual screen: a headless
// display list fed by the engine's render events. Every courseware
// semantic — scenario, links, interaction — executes exactly as it
// would behind a real GUI; only pixels are absent.
package navigator

import (
	"fmt"
	"sort"
	"strings"

	"mits/internal/media"
	"mits/internal/mheg"
	"mits/internal/mheg/engine"
)

// ItemKind classifies what a screen item renders as.
type ItemKind string

// Screen item kinds.
const (
	KindText   ItemKind = "text"
	KindButton ItemKind = "button"
	KindWord   ItemKind = "word" // a hot word: clickable link source
	KindVideo  ItemKind = "video"
	KindAudio  ItemKind = "audio"
	KindImage  ItemKind = "image"
	KindOther  ItemKind = "object"
)

// Clickable reports whether the item reacts to Click.
func (k ItemKind) Clickable() bool { return k == KindButton || k == KindWord }

// Item is one object on the virtual screen.
type Item struct {
	RT      engine.RTID
	Model   mheg.ID
	Kind    ItemKind
	Label   string // button label or text excerpt
	Channel string
	Running bool
	Visible bool
	Pos     mheg.Point
	Size    mheg.Size
}

// Screen is the virtual display: it implements engine.Renderer and
// maintains the set of presently existing run-time objects, per
// channel (the logical presentation spaces of §4.3.3).
type Screen struct {
	lookup func(mheg.ID) (mheg.Object, bool)
	items  map[engine.RTID]*Item
	// Trace keeps the render event history for the session log.
	Trace []engine.Event
	// TraceLimit bounds Trace (0 = unlimited).
	TraceLimit int
}

// NewScreen builds a screen resolving model metadata through lookup
// (normally engine.Model).
func NewScreen(lookup func(mheg.ID) (mheg.Object, bool)) *Screen {
	return &Screen{lookup: lookup, items: make(map[engine.RTID]*Item)}
}

// RenderEvent implements engine.Renderer.
func (s *Screen) RenderEvent(ev engine.Event) {
	if s.TraceLimit == 0 || len(s.Trace) < s.TraceLimit {
		s.Trace = append(s.Trace, ev)
	}
	switch ev.Kind {
	case engine.EvCreated:
		s.items[ev.RT] = s.describe(ev)
	case engine.EvDeleted:
		delete(s.items, ev.RT)
	default:
		it, ok := s.items[ev.RT]
		if !ok {
			return
		}
		switch ev.Kind {
		case engine.EvRan, engine.EvResumed:
			it.Running = true
		case engine.EvStopped, engine.EvFinished, engine.EvPaused:
			it.Running = false
		case engine.EvVisibility:
			it.Visible = ev.Detail == "true"
		case engine.EvMoved:
			fmt.Sscanf(ev.Detail, "(%d,%d)", &it.Pos.X, &it.Pos.Y)
		case engine.EvResized:
			fmt.Sscanf(ev.Detail, "%dx%d", &it.Size.W, &it.Size.H)
		}
	}
}

func (s *Screen) describe(ev engine.Event) *Item {
	it := &Item{RT: ev.RT, Model: ev.Model, Channel: ev.Channel, Visible: true, Kind: KindOther}
	obj, ok := s.lookup(ev.Model)
	if !ok {
		return it
	}
	content, isContent := obj.(*mheg.Content)
	if !isContent {
		if m, isMux := obj.(*mheg.MultiplexedContent); isMux {
			content = &m.Content
		} else {
			it.Label = obj.Base().Info.Name
			return it
		}
	}
	it.Size = content.OrigSize
	name := content.Info.Name
	switch {
	case strings.HasPrefix(name, "button:"):
		it.Kind = KindButton
		it.Label = strings.TrimPrefix(name, "button:")
	case strings.HasPrefix(name, "word:"):
		it.Kind = KindWord
		it.Label = strings.TrimPrefix(name, "word:")
	case content.Coding == media.CodingASCII || content.Coding == media.CodingHTML:
		it.Kind = KindText
		if txt, err := content.Text(); err == nil {
			it.Label = excerpt(txt, 60)
		} else {
			it.Label = name
		}
	case media.ClassOf(content.Coding) == media.ClassVideo:
		it.Kind = KindVideo
		it.Label = name
	case media.ClassOf(content.Coding) == media.ClassAudio:
		it.Kind = KindAudio
		it.Label = name
	case media.ClassOf(content.Coding) == media.ClassImage:
		it.Kind = KindImage
		it.Label = name
	}
	return it
}

func excerpt(s string, n int) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// Display lists the presented items of a channel (all channels when
// channel is empty): objects that are visible and running — created
// run-time objects that have not been run are prepared, not presented
// (§2.2.2.2). Structural composites never display. Buttons sort first,
// then model id, which gives the deterministic "screen" the tests
// assert on.
func (s *Screen) Display(channel string) []Item {
	var out []Item
	for _, it := range s.items {
		if !it.Visible || !it.Running || it.Kind == KindOther {
			continue
		}
		if channel != "" && it.Channel != channel {
			continue
		}
		out = append(out, *it)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind.Clickable() != out[j].Kind.Clickable() {
			return out[i].Kind.Clickable()
		}
		if out[i].Model.App != out[j].Model.App {
			return out[i].Model.App < out[j].Model.App
		}
		return out[i].Model.Num < out[j].Model.Num
	})
	return out
}

// Buttons lists the clickable items currently on screen (buttons run
// while their scene is active).
func (s *Screen) Buttons() []Item {
	var out []Item
	for _, it := range s.items {
		if it.Kind.Clickable() && it.Visible && it.Running {
			out = append(out, *it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model.Num < out[j].Model.Num })
	return out
}

// Find locates the first visible item with the given label.
func (s *Screen) Find(label string) (Item, bool) {
	var best *Item
	for _, it := range s.items {
		if it.Visible && it.Running && it.Label == label {
			if best == nil || it.RT < best.RT {
				it := *it
				best = &it
			}
		}
	}
	if best == nil {
		return Item{}, false
	}
	return *best, true
}

// Playing lists the currently running continuous-media items.
func (s *Screen) Playing() []Item {
	var out []Item
	for _, it := range s.items {
		if it.Running && (it.Kind == KindVideo || it.Kind == KindAudio) {
			out = append(out, *it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model.Num < out[j].Model.Num })
	return out
}

// String renders the screen for debugging and the CLI navigator.
func (s *Screen) String() string {
	var b strings.Builder
	for _, it := range s.Display("") {
		state := " "
		if it.Running {
			state = "▶"
		}
		fmt.Fprintf(&b, "[%s%s] %-6s %s\n", state, it.Channel, it.Kind, it.Label)
	}
	return b.String()
}
