package navigator

import (
	"strings"
	"testing"
	"time"

	"mits/internal/atm"
	"mits/internal/courseware"
	"mits/internal/document"
	"mits/internal/media"
	"mits/internal/mediastore"
	"mits/internal/mheg/codec"
	"mits/internal/production"
	"mits/internal/school"
	"mits/internal/transport"
)

// buildSchool assembles a complete TeleSchool backend: compiled ATM
// course in the database, produced media, library holdings, and the
// administration records — everything behind loopback transports.
func buildSchool(t *testing.T) (*Navigator, *mediastore.Store, *school.School) {
	t.Helper()
	store := mediastore.New()
	out, err := courseware.CompileIMD(document.SampleATMCourse(), "atm")
	if err != nil {
		t.Fatal(err)
	}
	data, err := codec.ASN1().Encode(out.Container)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.PutDocument("atm-course", "ATM Technology", "asn1", data, "network/atm"); err != nil {
		t.Fatal(err)
	}
	center := &production.Center{}
	if _, err := center.ProduceForCourse(out, store); err != nil {
		t.Fatal(err)
	}
	if _, err := center.StockLibrary(store); err != nil {
		t.Fatal(err)
	}
	intro, err := center.Produce("store/atm/course-intro.mpg", production.Hints{Duration: 30 * time.Second, Topic: "course introduction"})
	if err != nil {
		t.Fatal(err)
	}
	store.PutContent(intro.ID, string(intro.Coding), intro.Data)

	sch := school.New("MIRL TeleSchool")
	sch.AddCourse(school.Course{
		Code: "ELG5121", Name: "ATM Technology", Program: "Engineering",
		PlannedSessions: 4, Document: "atm-course", IntroRef: "store/atm/course-intro.mpg",
	})

	dbMux := transport.NewMux()
	transport.RegisterStore(dbMux, store)
	schoolMux := transport.NewMux()
	school.RegisterService(schoolMux, sch)

	nav := New(Options{
		DB:     transport.Loopback{H: dbMux},
		School: transport.Loopback{H: schoolMux},
	})
	return nav, store, sch
}

func TestRegistrationAndLogin(t *testing.T) {
	nav, _, _ := buildSchool(t)
	num, err := nav.Register(school.Profile{Name: "Ruiping Wang", Email: "rw@uottawa.ca"})
	if err != nil || num == "" {
		t.Fatalf("register: %q %v", num, err)
	}
	if nav.Student() != num {
		t.Error("not logged in after registration")
	}
	// Fresh navigator, existing number (Fig 5.3's returning student).
	nav2, _, _ := buildSchool(t)
	if err := nav2.Login("000000"); err == nil {
		t.Error("login with unknown number succeeded")
	}
	if err := nav2.UpdateProfile(school.Profile{Name: "x"}); err == nil {
		t.Error("profile update without login succeeded")
	}
	if err := nav2.Enroll("ELG5121"); err == nil {
		t.Error("enroll without login succeeded")
	}
	if err := nav2.StartCourse("ELG5121"); err == nil {
		t.Error("course start without login succeeded")
	}
}

func TestCourseRegistrationDialog(t *testing.T) {
	nav, _, _ := buildSchool(t)
	nav.Register(school.Profile{Name: "A"})
	progs, err := nav.Programs()
	if err != nil || len(progs) != 1 || progs[0] != "Engineering" {
		t.Fatalf("programs %v err=%v", progs, err)
	}
	courses, err := nav.CoursesIn("Engineering")
	if err != nil || len(courses) != 1 {
		t.Fatalf("courses %v err=%v", courses, err)
	}
	intro, err := nav.CourseIntroduction("ELG5121")
	if err != nil {
		t.Fatal(err)
	}
	meta, err := media.Decode(media.CodingMPEG, intro.Data)
	if err != nil || meta.Duration != 30*time.Second {
		t.Errorf("intro clip meta %+v err=%v", meta, err)
	}
	if err := nav.Enroll("ELG5121"); err != nil {
		t.Fatal(err)
	}
}

func TestClassroomPresentation(t *testing.T) {
	nav, _, _ := buildSchool(t)
	nav.Register(school.Profile{Name: "A"})
	nav.Enroll("ELG5121")
	if err := nav.StartCourse("ELG5121"); err != nil {
		t.Fatal(err)
	}
	if got := nav.Scenes(); len(got) != 4 {
		t.Fatalf("scenes %v", got)
	}
	scene, _ := nav.CurrentScene()
	if scene != "intro" {
		t.Fatalf("current scene %q, want intro", scene)
	}
	// The welcome video should be playing on the virtual screen.
	playing := nav.Screen().Playing()
	if len(playing) == 0 {
		t.Fatal("nothing playing in the intro scene")
	}
	// Let the intro run out; auto-advance lands in "cells".
	nav.Clock().RunFor(9 * time.Second)
	scene, elapsed := nav.CurrentScene()
	if scene != "cells" {
		t.Fatalf("scene after intro %q, want cells", scene)
	}
	if elapsed > 2*time.Second {
		t.Errorf("elapsed in cells %v", elapsed)
	}
	// The choice button is clickable; text content displays.
	if _, ok := nav.Screen().Find("Show cell diagram"); !ok {
		t.Fatalf("choice button missing; screen:\n%s", nav.Screen())
	}
	found := false
	for _, it := range nav.Screen().Display("stage") {
		if it.Kind == KindText && strings.Contains(it.Label, "ATM cell is 53 bytes") {
			found = it.Running
		}
	}
	if !found {
		t.Errorf("cells text not running; screen:\n%s", nav.Screen())
	}
	// Click the choice: the diagram image appears immediately.
	if err := nav.Click("Show cell diagram"); err != nil {
		t.Fatal(err)
	}
	diagram := false
	for _, it := range nav.Screen().Display("stage") {
		if it.Kind == KindImage && it.Running {
			diagram = true
		}
	}
	if !diagram {
		t.Errorf("diagram not shown after click; screen:\n%s", nav.Screen())
	}
	// Clicking a non-button fails loudly.
	if err := nav.Click("no such thing"); err == nil {
		t.Error("phantom click succeeded")
	}
	// Continue into the switching scene via the injected button.
	if err := nav.Click("Continue"); err != nil {
		t.Fatal(err)
	}
	scene, _ = nav.CurrentScene()
	if scene != "switching" {
		t.Errorf("scene after Continue %q", scene)
	}
	// The Fig 4.4c stop button halts all three objects.
	if err := nav.Click("Stop"); err != nil {
		t.Fatal(err)
	}
	if got := nav.Screen().Playing(); len(got) != 0 {
		t.Errorf("still playing after Stop: %v", got)
	}
}

func TestResumePosition(t *testing.T) {
	nav, _, sch := buildSchool(t)
	num, _ := nav.Register(school.Profile{Name: "A"})
	nav.Enroll("ELG5121")
	nav.StartCourse("ELG5121")
	nav.Clock().RunFor(9 * time.Second) // into "cells"
	if err := nav.Bookmark("cell formats"); err != nil {
		t.Fatal(err)
	}
	if err := nav.ExitCourse(); err != nil {
		t.Fatal(err)
	}
	st, _ := sch.Student(num)
	if st.Resume["ELG5121"].Scene != "cells" {
		t.Fatalf("stored resume %+v", st.Resume)
	}
	if len(st.Bookmarks) != 1 || st.Bookmarks[0].Scene != "cells" {
		t.Errorf("bookmarks %+v", st.Bookmarks)
	}
	if st.Courses[0].SessionsDone != 1 {
		t.Errorf("session not recorded: %+v", st.Courses)
	}

	// Re-enter: presentation resumes in "cells", not "intro".
	if err := nav.StartCourse("ELG5121"); err != nil {
		t.Fatal(err)
	}
	scene, _ := nav.CurrentScene()
	if scene != "cells" {
		t.Errorf("resumed in %q, want cells", scene)
	}
}

func TestGotoSceneAndBookmarkJump(t *testing.T) {
	nav, _, _ := buildSchool(t)
	nav.Register(school.Profile{Name: "A"})
	nav.Enroll("ELG5121")
	nav.StartCourse("ELG5121")
	if err := nav.GotoScene("quiz"); err != nil {
		t.Fatal(err)
	}
	scene, _ := nav.CurrentScene()
	if scene != "quiz" {
		t.Fatalf("scene %q after goto", scene)
	}
	// Answer the quiz.
	if err := nav.Click("53 bytes"); err != nil {
		t.Fatal(err)
	}
	correct := false
	for _, it := range nav.Screen().Display("stage") {
		if it.Running && strings.Contains(it.Label, "Correct") {
			correct = true
		}
	}
	if !correct {
		t.Errorf("quiz feedback missing; screen:\n%s", nav.Screen())
	}
	if err := nav.GotoScene("zzz"); err == nil {
		t.Error("goto unknown scene succeeded")
	}
}

func TestLibraryBrowsing(t *testing.T) {
	nav, _, _ := buildSchool(t)
	nav.Register(school.Profile{Name: "A"})
	tree, err := nav.LibraryTree()
	if err != nil || len(tree.Children) == 0 {
		t.Fatalf("tree %+v err=%v", tree, err)
	}
	// Keyword search over content keywords requires content-level
	// indexing; the store indexes documents. Use the course document.
	docs, err := nav.SearchLibrary("network/atm")
	if err != nil || len(docs) != 1 || docs[0] != "atm-course" {
		t.Fatalf("search %v err=%v", docs, err)
	}
	rec, err := nav.ReadLibrary("library/atm-handbook.html")
	if err != nil {
		t.Fatal(err)
	}
	txt, err := media.TextContent(media.CodingHTML, rec.Data)
	if err != nil || !strings.Contains(txt, "The ATM Handbook") {
		t.Errorf("library doc %q err=%v", txt[:60], err)
	}
}

func TestSGMLCourseDelivery(t *testing.T) {
	// Publish the hypermedia course in SGML and navigate it.
	nav, store, sch := buildSchool(t)
	out, err := courseware.CompileHyper(document.SampleHyperCourse(), "net")
	if err != nil {
		t.Fatal(err)
	}
	text, err := codec.SGML().Encode(out.Container)
	if err != nil {
		t.Fatal(err)
	}
	store.PutDocument("net-course", "Networking Basics", "sgml", text, "network")
	(&production.Center{}).ProduceForCourse(out, store)
	sch.AddCourse(school.Course{Code: "ELG5374", Name: "Networks", Program: "Engineering",
		PlannedSessions: 2, Document: "net-course"})

	nav.Register(school.Profile{Name: "B"})
	nav.Enroll("ELG5374")
	if err := nav.StartCourse("ELG5374"); err != nil {
		t.Fatal(err)
	}
	page, _ := nav.CurrentScene()
	if page != "s1" {
		t.Fatalf("start page %q", page)
	}
	if err := nav.Click("Next Section"); err != nil {
		t.Fatal(err)
	}
	page, _ = nav.CurrentScene()
	if page != "s2" {
		t.Errorf("page after Next %q", page)
	}
	if err := nav.Click("Test Your Knowledge"); err != nil {
		t.Fatal(err)
	}
	page, _ = nav.CurrentScene()
	if page != "q1" {
		t.Errorf("page after test %q", page)
	}
}

func TestContentFetchedThroughDatabase(t *testing.T) {
	nav, store, _ := buildSchool(t)
	nav.Register(school.Profile{Name: "A"})
	nav.Enroll("ELG5121")
	nav.StartCourse("ELG5121")
	nav.Clock().RunFor(time.Second)
	_, contentReads, _ := store.Stats()
	if contentReads == 0 {
		t.Error("presentation never pulled content from the database")
	}
	if nav.Engine().Stats.BytesFetched == 0 {
		t.Error("engine fetched no content bytes")
	}
}

func TestStreamVideoOverCBRvsCongestedUBR(t *testing.T) {
	// E17's core claim in miniature.
	build := func() (*atm.Network, *atm.Host, *atm.Host, *atm.Host, *atm.Host) {
		n := atm.New()
		n.BufferCells = 96
		srv := n.AddHost("server")
		cli := n.AddHost("client")
		x1 := n.AddHost("cross-src")
		x2 := n.AddHost("cross-dst")
		s1 := n.AddSwitch("s1")
		s2 := n.AddSwitch("s2")
		n.Connect(srv, s1, 155e6, 200*time.Microsecond)
		n.Connect(x1, s1, 155e6, 200*time.Microsecond)
		n.Connect(s1, s2, 10e6, 200*time.Microsecond) // tight bottleneck
		n.Connect(s2, cli, 155e6, 200*time.Microsecond)
		n.Connect(s2, x2, 155e6, 200*time.Microsecond)
		return n, srv, cli, x1, x2
	}
	video := media.EncodeMPEG(media.VideoParams{Duration: 4 * time.Second, BitRate: 1.5e6, Seed: 3})

	// Shaped 30 Mb/s of cross traffic keeps the 10 Mb/s bottleneck
	// congested for the whole 4s playback.
	congest := func(n *atm.Network, from, to *atm.Host) {
		flood, err := n.Open(from, to, atm.UBRContract(30e6), atm.OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4000; i++ {
			flood.Send(make([]byte, 4000))
		}
	}

	// Reserved contract with congestion: video unaffected.
	n, srv, cli, x1, x2 := build()
	congest(n, x1, x2)
	cbr, err := StreamVideo(n, srv, cli, atm.VBRContract(2e6, 8e6, 200), video, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cbr.MissRate() > 0.01 {
		t.Errorf("reserved stream missed %.1f%% of deadlines under congestion", 100*cbr.MissRate())
	}

	// Best-effort under the same flood: heavy misses.
	n2, srv2, cli2, y1, y2 := build()
	congest(n2, y1, y2)
	ubr, err := StreamVideo(n2, srv2, cli2, atm.UBRContract(8e6), video, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ubr.MissRate() <= cbr.MissRate() {
		t.Errorf("best-effort miss rate %.2f not worse than reserved %.2f", ubr.MissRate(), cbr.MissRate())
	}
	// Under sustained congestion the best-effort stream either loses
	// most of its frames outright or jitters worse than the reserved
	// one; both are unwatchable, either satisfies the paper's claim.
	lossy := ubr.Delivered < ubr.Frames/2
	if !lossy && ubr.Jitter.Mean() <= cbr.Jitter.Mean() {
		t.Errorf("best-effort jitter %v not worse than reserved %v (delivered %d/%d)",
			time.Duration(ubr.Jitter.Mean()), time.Duration(cbr.Jitter.Mean()), ubr.Delivered, ubr.Frames)
	}
}

func TestStreamVideoAdaptiveCleanPathStaysFullQuality(t *testing.T) {
	n := atm.New()
	srv := n.AddHost("server")
	cli := n.AddHost("client")
	sw := n.AddSwitch("s1")
	n.Connect(srv, sw, 155e6, 200*time.Microsecond)
	n.Connect(sw, cli, 155e6, 200*time.Microsecond)
	video := media.EncodeMPEG(media.VideoParams{Duration: 2 * time.Second, BitRate: 1.5e6, Seed: 3})
	stats, err := StreamVideoAdaptive(n, srv, cli, atm.VBRContract(2e6, 8e6, 200), video, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxLevel != DegradeNone || stats.Degraded != 0 || stats.Skipped != 0 {
		t.Errorf("clean path degraded: level=%v degraded=%d skipped=%d",
			stats.MaxLevel, stats.Degraded, stats.Skipped)
	}
	if stats.MissRate() > 0.01 {
		t.Errorf("clean adaptive stream missed %.1f%% of deadlines", 100*stats.MissRate())
	}
}

func TestStreamVideoAdaptiveDegradesOnStarvedPath(t *testing.T) {
	// A 600 kb/s bottleneck cannot carry the 1.5 Mb/s stream at full
	// quality: the rigid sender stalls its tail into oblivion, while
	// the adaptive sender climbs the ladder (smaller frames, then
	// skipping B-frames) and keeps what it does send closer to
	// schedule.
	build := func() (*atm.Network, *atm.Host, *atm.Host) {
		n := atm.New()
		srv := n.AddHost("server")
		cli := n.AddHost("client")
		sw := n.AddSwitch("s1")
		n.Connect(srv, sw, 155e6, 200*time.Microsecond)
		n.Connect(sw, cli, 600e3, 200*time.Microsecond)
		return n, srv, cli
	}
	video := media.EncodeMPEG(media.VideoParams{Duration: 2 * time.Second, BitRate: 1.5e6, Seed: 3})

	n1, srv1, cli1 := build()
	rigid, err := StreamVideo(n1, srv1, cli1, atm.UBRContract(2e6), video, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	n2, srv2, cli2 := build()
	adaptive, err := StreamVideoAdaptive(n2, srv2, cli2, atm.UBRContract(2e6), video, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.MaxLevel == DegradeNone {
		t.Error("starved path never escalated the degradation ladder")
	}
	if adaptive.Degraded == 0 {
		t.Error("no frames sent at reduced quality on a starved path")
	}
	if adaptive.MissRate() >= rigid.MissRate() {
		t.Errorf("adaptive miss rate %.2f not better than rigid %.2f",
			adaptive.MissRate(), rigid.MissRate())
	}
}

func TestScreenString(t *testing.T) {
	nav, _, _ := buildSchool(t)
	nav.Register(school.Profile{Name: "A"})
	nav.Enroll("ELG5121")
	nav.StartCourse("ELG5121")
	if s := nav.Screen().String(); !strings.Contains(s, "video") {
		t.Errorf("screen rendering:\n%s", s)
	}
}

func TestDescriptorNegotiationBlocksIncapableSites(t *testing.T) {
	// §3.1.2.2: the courseware's descriptor declares an MPEG decode
	// rate; a site below it must refuse the session up front rather
	// than stutter through it.
	build := func(caps *Capabilities) *Navigator {
		store := mediastore.New()
		out, err := courseware.CompileIMD(document.SampleATMCourse(), "atm")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := codec.ASN1().Encode(out.Container)
		store.PutDocument("atm-course", "ATM", "asn1", data)
		(&production.Center{}).ProduceForCourse(out, store)
		sch := school.New("s")
		sch.AddCourse(school.Course{Code: "C1", Name: "ATM", Program: "Eng",
			PlannedSessions: 1, Document: "atm-course"})
		dbMux := transport.NewMux()
		transport.RegisterStore(dbMux, store)
		schMux := transport.NewMux()
		school.RegisterService(schMux, sch)
		return New(Options{
			DB:           transport.Loopback{H: dbMux},
			School:       transport.Loopback{H: schMux},
			Capabilities: caps,
		})
	}

	// A capable site starts fine (defaults).
	capable := build(nil)
	capable.Register(school.Profile{Name: "A"})
	capable.Enroll("C1")
	if err := capable.StartCourse("C1"); err != nil {
		t.Fatalf("capable site refused: %v", err)
	}

	// A 1996 laptop without the decode rate is refused with the reason.
	weak := DefaultCapabilities()
	weak.BitRate = 100_000
	slow := build(&weak)
	slow.Register(school.Profile{Name: "B"})
	slow.Enroll("C1")
	err := slow.StartCourse("C1")
	if err == nil || !strings.Contains(err.Error(), "cannot present") {
		t.Fatalf("under-resourced site started the course: %v", err)
	}

	// A site without an MPEG decoder is refused too.
	noMPEG := DefaultCapabilities()
	noMPEG.Codings = map[media.Coding]bool{media.CodingASCII: true, media.CodingJPEG: true,
		media.CodingWAV: true, media.CodingMIDI: true, media.CodingHTML: true}
	text := build(&noMPEG)
	text.Register(school.Profile{Name: "C"})
	text.Enroll("C1")
	if err := text.StartCourse("C1"); err == nil {
		t.Fatal("codec-less site started the course")
	}
}
