package navigator

import (
	"strings"
	"testing"

	"mits/internal/exercise"
	"mits/internal/facilitator"
	"mits/internal/school"
	"mits/internal/transport"
)

// communitySchool wires a navigator against a mux carrying school,
// facilitator and exercise services (as mits.System does).
func communitySchool(t *testing.T) (*Navigator, *facilitator.Facilitator, *exercise.Book) {
	t.Helper()
	sch := school.New("s")
	sch.AddCourse(school.Course{Code: "C1", Name: "ATM", Program: "Eng", PlannedSessions: 1, Document: "d"})
	fac := facilitator.New()
	book := exercise.NewBook()
	mux := transport.NewMux()
	school.RegisterService(mux, sch)
	facilitator.RegisterService(mux, fac)
	exercise.RegisterService(mux, book)
	nav := New(Options{DB: transport.Loopback{H: mux}, School: transport.Loopback{H: mux}})
	return nav, fac, book
}

func TestDiscussionFlow(t *testing.T) {
	nav, _, _ := communitySchool(t)
	if err := nav.JoinDiscussion("atm-cells"); err == nil {
		t.Fatal("joined without login")
	}
	num, err := nav.Register(school.Profile{Name: "Ada"})
	if err != nil {
		t.Fatal(err)
	}
	if err := nav.JoinDiscussion("atm-cells"); err != nil {
		t.Fatal(err)
	}
	if err := nav.Say("atm-cells", "why 48 bytes?"); err != nil {
		t.Fatal(err)
	}
	msgs, err := nav.Discussion("atm-cells", 0)
	if err != nil || len(msgs) != 1 || msgs[0].Author != num {
		t.Fatalf("messages %v err=%v", msgs, err)
	}
	rooms, err := nav.Rooms()
	if err != nil || len(rooms) != 1 {
		t.Fatalf("rooms %v err=%v", rooms, err)
	}
}

func TestBulletinAndMail(t *testing.T) {
	nav, fac, _ := communitySchool(t)
	nav.Register(school.Profile{Name: "Ada"})
	fac.Publish("announcements", "admin", "Welcome", "term starts")
	boards, err := nav.Boards()
	if err != nil || len(boards) != 1 {
		t.Fatalf("boards %v err=%v", boards, err)
	}
	posts, err := nav.ReadBoard("announcements", 0)
	if err != nil || len(posts) != 1 || posts[0].Subject != "Welcome" {
		t.Fatalf("posts %v err=%v", posts, err)
	}
	if err := nav.SendMail("prof", "question", "why cells?"); err != nil {
		t.Fatal(err)
	}
	if got := fac.Inbox("prof"); len(got) != 1 {
		t.Fatalf("prof inbox %v", got)
	}
	// Reply arrives in the student's mailbox.
	fac.Send("prof", nav.Student(), "re: question", "history")
	inbox, err := nav.Mailbox()
	if err != nil || len(inbox) != 1 || inbox[0].From != "prof" {
		t.Fatalf("inbox %v err=%v", inbox, err)
	}
}

func TestExerciseFlowOverService(t *testing.T) {
	nav, _, book := communitySchool(t)
	nav.Register(school.Profile{Name: "Ada"})
	book.AddSet(&exercise.Set{
		ID: "ex1", Course: "C1", Title: "cells",
		Problems: []exercise.Problem{
			{ID: "p1", Kind: exercise.MultipleChoice, Prompt: "cell size?",
				Options: []string{"48", "53"}, Answer: "1", Points: 2,
				Feedback: "48 is the payload"},
			{ID: "p2", Kind: exercise.FreeText, Prompt: "policer?", Answer: "GCRA", Points: 3},
		},
	})

	sets, err := nav.Exercises("C1")
	if err != nil || len(sets) != 1 {
		t.Fatalf("sets %v err=%v", sets, err)
	}
	pres, err := nav.TakeExercise("ex1")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pres.Problems {
		if p.Answer != "" {
			t.Fatal("answers leaked to the student")
		}
	}
	g, err := nav.SubmitExercise("ex1", map[string]string{"p1": "1", "p2": "gcra"})
	if err != nil || g.Score != 5 {
		t.Fatalf("grade %+v err=%v", g, err)
	}
	if s := FormatGrade(g); !strings.Contains(s, "5/5 (100%)") {
		t.Errorf("FormatGrade %q", s)
	}
	best, found, err := nav.BestGrade("ex1")
	if err != nil || !found || best.Score != 5 {
		t.Fatalf("best %+v found=%v err=%v", best, found, err)
	}
	ranks, err := nav.Contest("C1")
	if err != nil || len(ranks) != 1 || ranks[0].Score != 5 {
		t.Fatalf("contest %v err=%v", ranks, err)
	}
	if _, err := nav.TakeExercise("ghost"); err == nil {
		t.Error("ghost set fetched")
	}
}
