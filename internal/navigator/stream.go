package navigator

import (
	"fmt"
	"time"

	"mits/internal/atm"
	"mits/internal/media"
	"mits/internal/obs"
	"mits/internal/sim"
)

// This file implements real-time video streaming from the content
// server to the navigator over an ATM connection — the capability the
// paper's broadband choice exists for (§3.3: "for obtaining good
// quality of service in real time presentation of dynamic media such as
// video and audio, we suggest broadband network to be chosen").
//
// The server paces MPEG frames at the stream's frame rate; the player
// buffers a start-up window and then consumes one frame per frame
// period, counting a deadline miss whenever the next frame has not
// arrived by its presentation time. Experiment E17 runs this over an
// ATM CBR contract and over a congested best-effort path and compares
// miss rates and jitter.

// StreamStats summarizes one playback.
type StreamStats struct {
	Frames         int
	Delivered      int
	DeadlineMisses int
	StartupDelay   time.Duration
	// Jitter is the per-frame arrival deviation from the ideal paced
	// schedule.
	Jitter sim.Series
	// Degradation accounting (StreamVideoAdaptive): frames sent at
	// reduced size, B-frames skipped outright, and the highest ladder
	// rung the stream was forced onto.
	Degraded int
	Skipped  int
	MaxLevel DegradeLevel
}

// MissRate reports the fraction of frames missing their deadline.
func (s *StreamStats) MissRate() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.DeadlineMisses) / float64(s.Frames)
}

// StreamPlayer receives a paced MPEG stream on an ATM connection and
// measures playback quality.
type StreamPlayer struct {
	clock   *sim.Clock
	buffer  time.Duration // start-up buffering window
	stats   StreamStats
	started bool
	base    sim.Time // arrival time of the first frame

	frameDur time.Duration
	arrived  []sim.Time // per-frame arrival instants
	expected int
}

// NewStreamPlayer builds a player with the given start-up buffer.
func NewStreamPlayer(clock *sim.Clock, buffer time.Duration) *StreamPlayer {
	return &StreamPlayer{clock: clock, buffer: buffer}
}

// Deliver implements the connection's deliver callback: one PDU per
// frame.
func (p *StreamPlayer) Deliver(pdu []byte, _, now sim.Time) {
	if !p.started {
		p.started = true
		p.base = now
	}
	p.arrived = append(p.arrived, now)
	p.stats.Delivered++
}

// Finish scores the playback once the clock has drained: frame i's
// presentation deadline is firstArrival + buffer + i·frameDur.
func (p *StreamPlayer) Finish(frames []media.Frame) *StreamStats {
	defer func() {
		obs.GetCounter("navigator_frames_total").Add(int64(p.stats.Frames))
		obs.GetCounter("navigator_frames_delivered_total").Add(int64(p.stats.Delivered))
		obs.GetCounter("navigator_deadline_misses_total").Add(int64(p.stats.DeadlineMisses))
		// Playback span: carries the deadline-miss verdict into the trace
		// pipeline, where the collector's tail sampler always retains
		// misses (obs.DeadlineMissPrefix). Playback runs on virtual time,
		// so the span's wall duration is incidental — the error is the
		// signal.
		sp := obs.StartSpan("navigator.playback", "internal")
		if p.stats.DeadlineMisses > 0 {
			sp.End(fmt.Errorf("%s%d of %d frames", obs.DeadlineMissPrefix, p.stats.DeadlineMisses, p.stats.Frames))
		} else {
			sp.End(nil)
		}
	}()
	p.stats.Frames = len(frames)
	if len(frames) == 0 || !p.started {
		p.stats.DeadlineMisses = p.stats.Frames
		return &p.stats
	}
	p.stats.StartupDelay = p.buffer
	playStart := p.base.Add(p.buffer)
	for i, f := range frames {
		deadline := playStart.Add(f.PTS)
		if i >= len(p.arrived) {
			p.stats.DeadlineMisses++
			continue
		}
		if p.arrived[i] > deadline {
			p.stats.DeadlineMisses++
		}
		// Jitter relative to the paced schedule (first frame anchors).
		ideal := p.base.Add(f.PTS)
		dev := p.arrived[i].Sub(ideal)
		if dev < 0 {
			dev = -dev
		}
		p.stats.Jitter.AddDuration(dev)
	}
	return &p.stats
}

// StreamVideo plays an encoded MPEG object from server to client over
// the given traffic contract, returning playback statistics. The
// server sends each frame as one AAL5 message at the frame's PTS; the
// caller provides a network whose clock will be run to completion.
func StreamVideo(n *atm.Network, server, client *atm.Host, td atm.TrafficDescriptor, data []byte, buffer time.Duration) (*StreamStats, error) {
	frames, _, err := media.ParseMPEG(data)
	if err != nil {
		return nil, fmt.Errorf("navigator: stream source: %w", err)
	}
	player := NewStreamPlayer(n.Clock(), buffer)
	conn, err := n.Open(server, client, td, atm.OpenOptions{Deliver: player.Deliver})
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	// Pace the server: frame i leaves at its PTS. Frames larger than
	// the AAL5 limit are split (the player counts PDUs per frame, so
	// send exactly one PDU per frame: cap frame payload).
	for _, f := range frames {
		f := f
		n.Clock().At(sim.Zero.Add(f.PTS), func(sim.Time) {
			size := f.Size
			if size > atm.MaxPDUSize {
				size = atm.MaxPDUSize
			}
			conn.Send(make([]byte, size)) //nolint:errcheck // loss shows up as a deadline miss
		})
	}
	n.Clock().Run()
	return player.Finish(frames), nil
}

// DegradeLevel is a rung on the graceful-degradation ladder the
// adaptive streamer climbs when the network falls behind: first trade
// picture quality (smaller frames), then trade frame rate (skip
// B-frames — safe, nothing references them), never stall.
type DegradeLevel int

// The ladder, mildest first.
const (
	DegradeNone    DegradeLevel = iota // full-quality frames
	DegradeReduced                     // half-size frames (coarser quantization)
	DegradeSkipB                       // reduced size and B-frames dropped
)

func (l DegradeLevel) String() string {
	switch l {
	case DegradeNone:
		return "none"
	case DegradeReduced:
		return "reduced"
	case DegradeSkipB:
		return "skip-b"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// StreamCourseVideo is the end-to-end delivery path of §3.3: the clip
// travels from the content server over the chunked GetContentStream op
// (bounded fragments that share the multiplexed connection fairly with
// interactive calls), then plays out to the student over the ATM
// contract with the adaptive degradation ladder. The navigator's
// content cache makes a replayed clip skip the transport entirely.
func (n *Navigator) StreamCourseVideo(net *atm.Network, server, client *atm.Host, td atm.TrafficDescriptor, ref string, buffer time.Duration) (*StreamStats, error) {
	rec, err := n.db.GetContentStream(ref, nil)
	if err != nil {
		return nil, fmt.Errorf("navigator: stream fetch %q: %w", ref, err)
	}
	return StreamVideoAdaptive(net, server, client, td, rec.Data, buffer)
}

// StreamVideoAdaptive is StreamVideo with the degradation ladder: at
// each frame's send time the server inspects its backlog (frames sent
// but not yet delivered). When the backlog is worth more playback time
// than the client's start-up buffer, stalling is inevitable at current
// quality, so the server climbs a rung — halving frame bytes, then
// also skipping B-frames; when the backlog fully drains it steps back
// down. Skipped frames are excluded from deadline scoring (they were
// never promised) and reported in StreamStats.Skipped.
func StreamVideoAdaptive(n *atm.Network, server, client *atm.Host, td atm.TrafficDescriptor, data []byte, buffer time.Duration) (*StreamStats, error) {
	frames, meta, err := media.ParseMPEG(data)
	if err != nil {
		return nil, fmt.Errorf("navigator: stream source: %w", err)
	}
	frameDur := time.Second / time.Duration(meta.FrameRate)
	player := NewStreamPlayer(n.Clock(), buffer)
	conn, err := n.Open(server, client, td, atm.OpenOptions{Deliver: player.Deliver})
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	level := DegradeNone
	maxLevel := DegradeNone
	degraded, skipped := 0, 0
	var sent []media.Frame
	for _, f := range frames {
		f := f
		n.Clock().At(sim.Zero.Add(f.PTS), func(sim.Time) {
			// Backlog in playback time; the clock is single-threaded, so
			// reading the player's delivery count here is safe.
			backlog := time.Duration(len(sent)-player.stats.Delivered) * frameDur
			switch {
			case backlog > buffer && level < DegradeSkipB:
				level++
				obs.GetCounter("navigator_degrade_escalations_total", "to", level.String()).Inc()
			case backlog == 0 && level > DegradeNone:
				level--
			}
			if level > maxLevel {
				maxLevel = level
			}
			if level >= DegradeSkipB && f.Kind == media.BFrame {
				skipped++
				obs.GetCounter("navigator_frames_skipped_total").Inc()
				return
			}
			size := f.Size
			if level >= DegradeReduced {
				size /= 2
				degraded++
				obs.GetCounter("navigator_frames_degraded_total").Inc()
			}
			if size > atm.MaxPDUSize {
				size = atm.MaxPDUSize
			}
			sent = append(sent, f)
			conn.Send(make([]byte, size)) //nolint:errcheck // loss shows up as a deadline miss
		})
	}
	n.Clock().Run()
	// Score against what was actually promised (sent frames, in order);
	// report totals over the whole source.
	stats := player.Finish(sent)
	stats.Frames = len(frames)
	stats.Degraded = degraded
	stats.Skipped = skipped
	stats.MaxLevel = maxLevel
	return stats, nil
}
