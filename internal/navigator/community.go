package navigator

import (
	"fmt"

	"mits/internal/exercise"
	"mits/internal/facilitator"
)

// This file adds the communication and exercise features of §5.2.1 to
// the navigator: meeting and discussing, the bulletin board, e-mail,
// and the exercise module — all served by the same school server the
// administration talks to.

func (n *Navigator) facClient() facilitator.Client {
	return facilitator.Client{C: n.school.C}
}

func (n *Navigator) exClient() exercise.Client {
	return exercise.Client{C: n.school.C}
}

// ---- meeting and discussing ----

// JoinDiscussion enters (creating if needed) a discussion room.
func (n *Navigator) JoinDiscussion(room string) error {
	if n.student == "" {
		return errNotLoggedIn
	}
	fac := n.facClient()
	if err := fac.OpenRoom(room); err != nil {
		return err
	}
	return fac.Join(room, n.student)
}

// Say posts to a discussion room.
func (n *Navigator) Say(room, text string) error {
	if n.student == "" {
		return errNotLoggedIn
	}
	_, err := n.facClient().Say(room, n.student, text)
	return err
}

// Discussion polls a room's messages after the given sequence number.
func (n *Navigator) Discussion(room string, after int) ([]facilitator.ChatMessage, error) {
	return n.facClient().Messages(room, after)
}

// Rooms lists open discussion rooms.
func (n *Navigator) Rooms() ([]string, error) { return n.facClient().Rooms() }

// ---- bulletin board ----

// Boards lists the news groups.
func (n *Navigator) Boards() ([]string, error) { return n.facClient().Boards() }

// ReadBoard fetches a board's posts after the given sequence number.
func (n *Navigator) ReadBoard(board string, after int) ([]facilitator.Post, error) {
	return n.facClient().Read(board, after)
}

// ---- e-mail ----

// SendMail mails another school member (a professor, a classmate).
func (n *Navigator) SendMail(to, subject, body string) error {
	if n.student == "" {
		return errNotLoggedIn
	}
	_, err := n.facClient().SendMail(n.student, to, subject, body)
	return err
}

// Mailbox fetches the student's inbox.
func (n *Navigator) Mailbox() ([]facilitator.Mail, error) {
	if n.student == "" {
		return nil, errNotLoggedIn
	}
	return n.facClient().Inbox(n.student)
}

// ---- exercises (§5.2.1) ----

// Exercises lists the problem sets of a course.
func (n *Navigator) Exercises(courseCode string) ([]string, error) {
	return n.exClient().SetsFor(courseCode)
}

// TakeExercise fetches a problem set with the answers stripped.
func (n *Navigator) TakeExercise(setID string) (*exercise.Set, error) {
	return n.exClient().Presentable(setID)
}

// SubmitExercise grades the student's answers.
func (n *Navigator) SubmitExercise(setID string, answers map[string]string) (*exercise.Grade, error) {
	if n.student == "" {
		return nil, errNotLoggedIn
	}
	return n.exClient().Submit(setID, n.student, answers)
}

// BestGrade fetches the student's best grade for a set.
func (n *Navigator) BestGrade(setID string) (*exercise.Grade, bool, error) {
	if n.student == "" {
		return nil, false, errNotLoggedIn
	}
	return n.exClient().Best(setID, n.student)
}

// Contest fetches a course's contest ranking.
func (n *Navigator) Contest(courseCode string) ([]exercise.Standing, error) {
	return n.exClient().Contest(courseCode)
}

// FormatGrade renders a grade for display.
func FormatGrade(g *exercise.Grade) string {
	return fmt.Sprintf("%d/%d (%.0f%%) on attempt %d", g.Score, g.Max, g.Percent(), g.Attempt)
}
