package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring mapping object IDs to shard indices.
// Each shard contributes virtualNodes points on a uint64 circle; a key
// routes to the shard owning the first point at or after the key's
// hash. Consistent hashing (rather than hash-mod-N) keeps placement
// stable when the shard count changes: adding a shard moves only the
// keys that land on its new points, so a future resharding migrates a
// 1/N slice of the keyspace instead of reshuffling everything.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultVirtualNodes balances placement evenness against lookup-table
// size: at 64 points per shard the per-shard keyspace share stays
// within a few percent of uniform for small clusters.
const defaultVirtualNodes = 64

// newRing builds the ring for nShards shards.
func newRing(nShards, virtualNodes int) *ring {
	if virtualNodes <= 0 {
		virtualNodes = defaultVirtualNodes
	}
	r := &ring{points: make([]ringPoint, 0, nShards*virtualNodes)}
	for s := 0; s < nShards; s++ {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("shard-%d#%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// hashKey hashes an object ID onto the circle: FNV-1a (fast and
// dependency-free) through a 64-bit avalanche finalizer. Raw FNV
// clusters badly on the near-identical short strings both the vnode
// labels and course names are — without the mixer a 2-shard ring came
// out 80/20 — so the MurmurHash3 fmix64 stage spreads the points
// uniformly around the circle.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key)) //mits:allow errdrop,deadlinecheck in-memory hash: Write never fails and cannot block
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 64-bit finalizer: a bijective avalanche so
// every input bit flips ~half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// shardFor maps an object ID to its owning shard index.
func (r *ring) shardFor(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the top arc
	}
	return r.points[i].shard
}
