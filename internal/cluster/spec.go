package cluster

import (
	"fmt"
	"strings"
	"time"

	"mits/internal/transport"
)

// Spec is the textual cluster topology of the -cluster flag: shards
// separated by ';', replica addresses within a shard separated by ','
// with the first address the shard's primary.
//
//	host1:7201,host1:7202;host2:7201,host2:7202
//
// describes two shards of one primary and one read replica each.

// ParseSpec parses a topology string into shard configurations that
// dial each address over TCP.
func ParseSpec(spec string, callTimeout time.Duration) ([]ShardConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("cluster: empty topology spec")
	}
	var shards []ShardConfig
	for i, shardSpec := range strings.Split(spec, ";") {
		var sc ShardConfig
		for j, addr := range strings.Split(shardSpec, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				return nil, fmt.Errorf("cluster: shard %d: empty address", i)
			}
			role := "primary"
			if j > 0 {
				role = fmt.Sprintf("replica%d", j)
			}
			sc.Replicas = append(sc.Replicas, ReplicaConfig{
				Name: fmt.Sprintf("shard%d/%s@%s", i, role, addr),
				Dial: TCPDialer(addr, callTimeout),
			})
		}
		shards = append(shards, sc)
	}
	return shards, nil
}

// TCPOptions tunes NewTCPRouter; zero values take the defaults of the
// resilience layer (and a 2s call timeout).
type TCPOptions struct {
	CallTimeout      time.Duration
	Policy           transport.RetryPolicy
	BreakerThreshold int
	BreakerCooldown  time.Duration
	Seed             uint64
}

// NewTCPRouter builds a router over a -cluster topology string, each
// replica reached through its own resilient TCP client stack.
func NewTCPRouter(spec string, opts TCPOptions) (*Router, error) {
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 2 * time.Second
	}
	shards, err := ParseSpec(spec, opts.CallTimeout)
	if err != nil {
		return nil, err
	}
	return New(Config{
		Shards:           shards,
		Policy:           opts.Policy,
		BreakerThreshold: opts.BreakerThreshold,
		BreakerCooldown:  opts.BreakerCooldown,
		Seed:             opts.Seed,
	})
}
