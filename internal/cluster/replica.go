package cluster

import (
	"sort"
	"sync/atomic"
	"time"

	"mits/internal/transport"
)

// Replica is one store node serving a shard: a resilient database
// client (breaker over retry over redial) plus the health signals the
// router orders read candidates by. The first replica of a shard is
// its primary — the only node that accepts writes; the rest are read
// replicas converged by the replication appliers.
type Replica struct {
	// Name labels the replica's metrics and the breaker peer
	// ("shard0/primary", "shard0/replica1").
	Name string
	// DB is the hardened client stack to this node.
	DB transport.DBClient
	// Breaker is DB's circuit breaker, exposed so the router can order
	// candidates by its state instead of discovering an open circuit
	// one rejected call at a time.
	Breaker *transport.Breaker

	// Health signals, updated on every routed call. Plain atomics: the
	// values are advisory ordering hints, and a lost update only skews
	// one routing decision.
	consecFails atomic.Int64
	ewmaNs      atomic.Int64
}

// recordOutcome feeds one routed call's outcome into the replica's
// health view. Only transport-level failures count against it — a
// remote handler error means the node is up and answering.
func (rep *Replica) recordOutcome(dur time.Duration, transportErr bool) {
	if transportErr {
		rep.consecFails.Add(1)
		return
	}
	rep.consecFails.Store(0)
	// EWMA with alpha 1/4: smooth enough to ignore one slow call, fresh
	// enough to steer away from a node that is degrading.
	old := rep.ewmaNs.Load()
	if old == 0 {
		rep.ewmaNs.Store(int64(dur))
		return
	}
	rep.ewmaNs.Store(old - old/4 + int64(dur)/4)
}

// healthRank orders candidates: breaker position dominates (a closed
// circuit always beats an open one), then consecutive failures, then
// smoothed latency. Lower is healthier.
func (rep *Replica) healthRank() (state int, fails int64, ewma int64) {
	return int(rep.Breaker.State()), rep.consecFails.Load(), rep.ewmaNs.Load()
}

// orderByHealth sorts reps healthiest-first, stably so equally healthy
// replicas keep their configured order (deterministic routing in the
// clean case, which the chaos experiments replay against).
func orderByHealth(reps []*Replica) []*Replica {
	out := make([]*Replica, len(reps))
	copy(out, reps)
	sort.SliceStable(out, func(i, j int) bool {
		si, fi, ei := out[i].healthRank()
		sj, fj, ej := out[j].healthRank()
		if si != sj {
			return si < sj
		}
		if fi != fj {
			return fi < fj
		}
		return ei < ej
	})
	return out
}
