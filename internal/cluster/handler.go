package cluster

import (
	"fmt"
	"sort"

	"mits/internal/mediastore"
	"mits/internal/obs"
	"mits/internal/transport"
)

// Handle implements transport.Handler (untraced requests).
func (r *Router) Handle(method string, payload []byte) ([]byte, error) {
	return r.HandleCtx(obs.SpanContext{}, method, payload)
}

// HandleCtx implements transport.CtxHandler: the router's whole wire
// surface. Keyed methods hash to their owning shard — reads walk the
// failover ladder, writes go primary-then-replicate; unkeyed methods
// scatter to every shard and gather with partial-result degradation.
func (r *Router) HandleCtx(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	// The server recycles the request buffer when this handler returns,
	// but the replication queues (and a timed-out forward's still-queued
	// frame) outlive it — take a private copy once, up front.
	payload = append([]byte(nil), payload...)
	switch method {
	case transport.MethodGetDoc, transport.MethodGetContent, transport.MethodGetContentStream:
		// GetContentStream chunks ride the ordinary keyed-read path:
		// every chunk of one object hashes to the same shard (keyed by
		// ref), the request and response payloads are forwarded
		// verbatim (the router never reassembles), and each chunk
		// independently walks the failover ladder.
		key, err := transport.RequestKey(method, payload)
		if err != nil {
			return nil, err
		}
		return r.read(sc, r.shards[r.ring.shardFor(key)], method, payload)
	case transport.MethodPutDoc, transport.MethodPutContent:
		key, err := transport.RequestKey(method, payload)
		if err != nil {
			return nil, err
		}
		return r.write(sc, r.shards[r.ring.shardFor(key)], method, payload)
	case transport.MethodListDocs, transport.MethodDocByKeyword:
		return r.scatterNames(sc, method, payload)
	case transport.MethodKeywordTree:
		return r.scatterTree(sc, payload)
	}
	// Anything else (obs.Export, future methods) is not a cluster
	// concern; answer like a mux with no such handler.
	return nil, fmt.Errorf("%w: %q", transport.ErrUnknownMethod, method)
}

// Register mounts the router's method set on a mux, so a TCP server
// (or loopback) serves the cluster exactly like a single store.
func (r *Router) Register(m *transport.Mux) {
	methods := []string{
		transport.MethodListDocs,
		transport.MethodGetDoc,
		transport.MethodKeywordTree,
		transport.MethodDocByKeyword,
		transport.MethodGetContent,
		transport.MethodGetContentStream,
		transport.MethodPutDoc,
		transport.MethodPutContent,
	}
	for _, method := range methods {
		m.RegisterCtx(method, func(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
			return r.HandleCtx(sc, method, payload)
		})
	}
}

// sortedKeys flattens a name set into the sorted slice the wire
// protocol carries — the same order a single store would list.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mergeKeywordNode folds src into dst: union of docs, recursive merge
// of same-named children, everything re-sorted so the merged tree is
// byte-identical to what one store holding all the documents would
// snapshot.
func mergeKeywordNode(dst, src *mediastore.KeywordNode) {
	docs := make(map[string]bool, len(dst.Docs)+len(src.Docs))
	for _, d := range dst.Docs {
		docs[d] = true
	}
	for _, d := range src.Docs {
		docs[d] = true
	}
	dst.Docs = sortedKeys(docs)
	if len(dst.Docs) == 0 {
		dst.Docs = nil
	}
	byName := make(map[string]*mediastore.KeywordNode, len(dst.Children))
	for _, c := range dst.Children {
		byName[c.Name] = c
	}
	for _, sc := range src.Children {
		if dc, ok := byName[sc.Name]; ok {
			mergeKeywordNode(dc, sc)
			continue
		}
		cp := &mediastore.KeywordNode{Name: sc.Name}
		mergeKeywordNode(cp, sc)
		dst.Children = append(dst.Children, cp)
		byName[sc.Name] = cp
	}
	sort.Slice(dst.Children, func(i, j int) bool {
		return dst.Children[i].Name < dst.Children[j].Name
	})
}
