package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"mits/internal/faults"
	"mits/internal/mediastore"
	"mits/internal/obs"
	"mits/internal/transport"
)

// testPolicy keeps retries fast and bounded for in-process chaos.
func testPolicy() transport.RetryPolicy {
	return transport.RetryPolicy{
		Attempts:    2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	}
}

// testCluster spins up shards*replicas store nodes and a router over
// them. nodes[i][j] is shard i's j-th node, j==0 the primary.
func testCluster(t *testing.T, shards, replicasPerShard int) (*Router, [][]*StoreNode) {
	t.Helper()
	nodes := make([][]*StoreNode, shards)
	cfg := Config{
		Policy:           testPolicy(),
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		Seed:             0x5EED,
	}
	for i := 0; i < shards; i++ {
		var sc ShardConfig
		for j := 0; j < replicasPerShard; j++ {
			name := fmt.Sprintf("shard%d/node%d", i, j)
			n, err := StartStoreNode(name, faults.Scenario{}, uint64(1000+i*10+j))
			if err != nil {
				t.Fatalf("start node %s: %v", name, err)
			}
			t.Cleanup(func() { n.Close() }) //mits:allow errdrop test teardown
			nodes[i] = append(nodes[i], n)
			sc.Replicas = append(sc.Replicas, ReplicaConfig{Name: name, Dial: n.Dialer(150 * time.Millisecond)})
		}
		cfg.Shards = append(cfg.Shards, sc)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("new router: %v", err)
	}
	t.Cleanup(func() { r.Close() }) //mits:allow errdrop test teardown
	return r, nodes
}

// routerClient speaks the typed database API through the router over
// an in-process loopback — what a navigator pointed at the cluster
// front door sees.
func routerClient(r *Router) transport.DBClient {
	return transport.DBClient{C: transport.Loopback{H: r}}
}

// TestRingPlacement pins the ring's contract: deterministic placement,
// full shard coverage, and every key owned by exactly one shard.
func TestRingPlacement(t *testing.T) {
	rg := newRing(3, 0)
	hit := make(map[int]int)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("store/object-%d.mpg", i)
		s := rg.shardFor(key)
		if s < 0 || s > 2 {
			t.Fatalf("key %q routed to shard %d", key, s)
		}
		if rg.shardFor(key) != s {
			t.Fatalf("key %q placement not deterministic", key)
		}
		hit[s]++
	}
	for s := 0; s < 3; s++ {
		// Reasonable balance: each shard within 2x of the uniform share
		// (the mixer exists precisely because raw FNV failed this).
		if hit[s] < 50 || hit[s] > 200 {
			t.Fatalf("shard %d owns %d of 300 keys, want near 100: %v", s, hit[s], hit)
		}
	}
}

// TestClusterWriteReadRouting: writes land on exactly the owning
// shard's primary, replicate to its read replicas, and reads through
// the router return them — the basic sharded round trip.
func TestClusterWriteReadRouting(t *testing.T) {
	r, nodes := testCluster(t, 2, 2)
	db := routerClient(r)

	docs := []string{"course-a", "course-b", "course-c", "course-d"}
	for _, name := range docs {
		if _, err := db.PutDocument(name, "T:"+name, "text", []byte("body of "+name)); err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
		if err := db.PutContent("store/"+name+".mpg", "mpeg", []byte("frames of "+name), "network/video"); err != nil {
			t.Fatalf("put content %s: %v", name, err)
		}
	}
	if !r.WaitConverged(2 * time.Second) {
		t.Fatalf("replication backlog never drained: %d pending", r.Backlog())
	}

	for _, name := range docs {
		owner := r.ShardFor(name)
		for i, shard := range nodes {
			_, err := shard[0].Store.GetDocument(name)
			if i == owner && err != nil {
				t.Fatalf("doc %s missing from owning shard %d primary: %v", name, i, err)
			}
			if i != owner && !errors.Is(err, mediastore.ErrNotFound) {
				t.Fatalf("doc %s leaked to shard %d (owner %d)", name, i, owner)
			}
		}
		// The replica of the owning shard converged to the same doc.
		if _, err := nodes[owner][1].Store.GetDocument(name); err != nil {
			t.Fatalf("doc %s not replicated on shard %d: %v", name, owner, err)
		}
		rec, err := db.GetSelectedDoc(name)
		if err != nil {
			t.Fatalf("get %s through router: %v", name, err)
		}
		if string(rec.Data) != "body of "+name {
			t.Fatalf("doc %s body = %q", name, rec.Data)
		}
		crec, err := db.GetContent("store/" + name + ".mpg")
		if err != nil {
			t.Fatalf("get content %s: %v", name, err)
		}
		if string(crec.Data) != "frames of "+name {
			t.Fatalf("content %s data = %q", name, crec.Data)
		}
	}

	// Scatter-gather listing equals the union, sorted.
	names, err := db.GetListDoc()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if !reflect.DeepEqual(names, docs) {
		t.Fatalf("list = %v, want %v", names, docs)
	}
}

// TestMissingDocIsNotFound: a miss through the whole cluster surfaces
// as the store's not-found error (remote, inspectable), not as a
// failover exhaustion.
func TestMissingDocIsNotFound(t *testing.T) {
	r, _ := testCluster(t, 2, 2)
	db := routerClient(r)
	_, err := db.GetSelectedDoc("no-such-course")
	if err == nil {
		t.Fatal("missing doc returned no error")
	}
	var remote *transport.RemoteError
	if !errors.As(err, &remote) || !isNotFound(err) {
		t.Fatalf("miss error = %v, want remote not-found", err)
	}
	if errors.Is(err, ErrAllReplicasFailed) {
		t.Fatalf("clean miss reported as failover exhaustion: %v", err)
	}
}

// TestReadFailoverReplicaDown: with one replica partitioned, every
// read still succeeds (the ladder falls through to the next node), and
// the failover counter moves.
func TestReadFailoverReplicaDown(t *testing.T) {
	r, nodes := testCluster(t, 1, 3)
	db := routerClient(r)
	if _, err := db.PutDocument("course-x", "X", "text", []byte("x body")); err != nil {
		t.Fatal(err)
	}
	if !r.WaitConverged(2 * time.Second) {
		t.Fatalf("replication never converged")
	}

	failoversBefore := obs.GetCounter("cluster_read_failovers_total").Value()
	nodes[0][1].Partition(true) // first read replica drops off the network
	defer nodes[0][1].Partition(false)
	for i := 0; i < 10; i++ {
		if _, err := db.GetSelectedDoc("course-x"); err != nil {
			t.Fatalf("read %d with one replica down: %v", i, err)
		}
	}
	if obs.GetCounter("cluster_read_failovers_total").Value() == failoversBefore {
		t.Fatal("no failovers recorded while a replica was partitioned")
	}

	// Both replicas down: the primary is the last rung and still serves.
	nodes[0][2].Partition(true)
	defer nodes[0][2].Partition(false)
	for i := 0; i < 5; i++ {
		if _, err := db.GetSelectedDoc("course-x"); err != nil {
			t.Fatalf("read %d with all replicas down: %v", i, err)
		}
	}
}

// TestReplicationHealsAfterPartition: a write accepted while a replica
// is partitioned is not lost — the applier parks on it and converges
// the replica when the partition heals (heal-while-streaming's write
// half).
func TestReplicationHealsAfterPartition(t *testing.T) {
	r, nodes := testCluster(t, 1, 2)
	db := routerClient(r)

	nodes[0][1].Partition(true)
	if _, err := db.PutDocument("late-course", "L", "text", []byte("late body")); err != nil {
		t.Fatalf("write with replica partitioned: %v", err)
	}
	// The replica cannot converge while cut off.
	if r.WaitConverged(50 * time.Millisecond) {
		t.Fatal("backlog drained into a partitioned replica")
	}
	if _, err := nodes[0][1].Store.GetDocument("late-course"); !errors.Is(err, mediastore.ErrNotFound) {
		t.Fatalf("partitioned replica has the doc: %v", err)
	}
	// Reads are unaffected throughout: primary serves.
	if _, err := db.GetSelectedDoc("late-course"); err != nil {
		t.Fatalf("read during replica partition: %v", err)
	}

	nodes[0][1].Partition(false)
	if !r.WaitConverged(3 * time.Second) {
		t.Fatalf("replica never converged after heal: backlog %d", r.Backlog())
	}
	rec, err := nodes[0][1].Store.GetDocument("late-course")
	if err != nil {
		t.Fatalf("healed replica missing the doc: %v", err)
	}
	if string(rec.Data) != "late body" {
		t.Fatalf("healed replica body = %q", rec.Data)
	}
}

// TestScatterGatherPartialDegradation: keyword search with one shard
// dark returns the surviving shards' results and counts the
// degradation; with every shard dark it fails with ErrNoQuorum.
func TestScatterGatherPartialDegradation(t *testing.T) {
	r, nodes := testCluster(t, 2, 2)
	db := routerClient(r)

	// Spread keyworded docs until both shards own at least one.
	byShard := map[int][]string{}
	for i := 0; len(byShard[0]) == 0 || len(byShard[1]) == 0; i++ {
		name := fmt.Sprintf("kw-course-%d", i)
		if _, err := db.PutDocument(name, "K", "text", []byte("k"), "network/atm"); err != nil {
			t.Fatal(err)
		}
		owner := r.ShardFor(name)
		byShard[owner] = append(byShard[owner], name)
	}
	if !r.WaitConverged(2 * time.Second) {
		t.Fatal("replication never converged")
	}
	all, err := db.GetDocByKeyword("network/atm")
	if err != nil {
		t.Fatalf("healthy keyword search: %v", err)
	}
	if len(all) != len(byShard[0])+len(byShard[1]) {
		t.Fatalf("healthy search found %d docs, want %d", len(all), len(byShard[0])+len(byShard[1]))
	}

	// Shard 1 goes completely dark.
	partialBefore := obs.GetCounter("cluster_search_partial_total").Value()
	for _, n := range nodes[1] {
		n.Partition(true)
	}
	defer func() {
		for _, n := range nodes[1] {
			n.Partition(false)
		}
	}()
	got, err := db.GetDocByKeyword("network/atm")
	if err != nil {
		t.Fatalf("degraded keyword search: %v", err)
	}
	if len(got) != len(byShard[0]) {
		t.Fatalf("degraded search = %v, want shard0's %v", got, byShard[0])
	}
	if obs.GetCounter("cluster_search_partial_total").Value() == partialBefore {
		t.Fatal("partial result not counted")
	}
	if obs.GetGauge("cluster_search_shards_failed").Value() != 1 {
		t.Fatalf("shards-failed gauge = %d, want 1", obs.GetGauge("cluster_search_shards_failed").Value())
	}

	// Total blackout: every shard dark → ErrNoQuorum, not a silent nil.
	for _, n := range nodes[0] {
		n.Partition(true)
	}
	defer func() {
		for _, n := range nodes[0] {
			n.Partition(false)
		}
	}()
	if _, err := db.GetListDoc(); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("blackout list error = %v, want ErrNoQuorum", err)
	}
}

// TestKeywordTreeMerge: the merged cluster tree is identical to the
// tree one store holding every document would build.
func TestKeywordTreeMerge(t *testing.T) {
	r, _ := testCluster(t, 3, 1)
	db := routerClient(r)
	reference := mediastore.New()

	seed := []struct {
		name string
		kws  []string
	}{
		{"tree-a", []string{"network/atm", "broadband"}},
		{"tree-b", []string{"network/atm/signalling"}},
		{"tree-c", []string{"network/basics", "broadband"}},
		{"tree-d", []string{"media/mpeg"}},
	}
	for _, s := range seed {
		if _, err := db.PutDocument(s.name, "T", "text", []byte("b"), s.kws...); err != nil {
			t.Fatal(err)
		}
		if _, err := reference.PutDocument(s.name, "T", "text", []byte("b"), s.kws...); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.GetKeywordTree()
	if err != nil {
		t.Fatalf("cluster keyword tree: %v", err)
	}
	want := reference.Keywords()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged tree = %+v, want %+v", got, want)
	}
}

// TestRouterSharesRetryBudget: every replica client composes the one
// cluster-wide budget, so simultaneous failures cannot multiply
// retries beyond it.
func TestRouterSharesRetryBudget(t *testing.T) {
	r, _ := testCluster(t, 2, 2)
	if r.Budget() == nil {
		t.Fatal("router built without a shared retry budget")
	}
	// 4 replicas: default budget is 2 tokens per replica.
	if got := r.Budget().Tokens(); got != 8 {
		t.Fatalf("default budget tokens = %v, want 8", got)
	}
}

// TestSpecParsing pins the -cluster topology grammar.
func TestSpecParsing(t *testing.T) {
	shards, err := ParseSpec("a:1,b:2 ; c:3", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || len(shards[0].Replicas) != 2 || len(shards[1].Replicas) != 1 {
		t.Fatalf("parsed shape: %+v", shards)
	}
	if shards[0].Replicas[0].Name != "shard0/primary@a:1" {
		t.Fatalf("primary name = %q", shards[0].Replicas[0].Name)
	}
	if _, err := ParseSpec("a:1,,b:2", time.Second); err == nil {
		t.Fatal("empty replica address accepted")
	}
	if _, err := ParseSpec("  ", time.Second); err == nil {
		t.Fatal("blank spec accepted")
	}
}
