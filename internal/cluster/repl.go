package cluster

import (
	"errors"
	"sync"
	"time"

	"mits/internal/obs"
	"mits/internal/transport"
)

// replOp is one accepted write waiting to be applied to a read
// replica: the original method and payload, verbatim, plus the accept
// time the lag gauge measures from.
type replOp struct {
	method   string
	payload  []byte
	accepted time.Time
}

// applier converges one read replica: a background goroutine draining
// an ordered queue of accepted writes into the replica through its
// ordinary resilient client — replication is just the existing
// transport replaying the primary's write stream. A down replica does
// not lose writes: the applier parks on the head op and retries with
// backoff until the node heals (the heal-while-streaming scenario of
// E31), so convergence is eventual and ordered, never skipped.
type applier struct {
	rep *Replica

	mu     sync.Mutex
	cond   *sync.Cond
	ops    []replOp
	closed bool

	quit chan struct{} // closed by close(); interrupts retry backoff

	backlog *obs.Gauge   // queue depth, cluster_replication_backlog{replica}
	lag     *obs.Gauge   // age of the op most recently applied, cluster_replication_lag_ns{replica}
	applied *obs.Counter // cluster_replication_applied_total{replica}
	retries *obs.Counter // cluster_replication_retries_total{replica}
}

// Retry backoff bounds for a replica that is refusing applies: fast
// enough that a heal is picked up promptly, slow enough not to hammer
// a partitioned node (whose breaker is rejecting instantly anyway).
const (
	applyBackoffMin = 5 * time.Millisecond
	applyBackoffMax = 250 * time.Millisecond
)

func newApplier(rep *Replica) *applier {
	a := &applier{
		rep:     rep,
		quit:    make(chan struct{}),
		backlog: obs.GetGauge("cluster_replication_backlog", "replica", rep.Name),
		lag:     obs.GetGauge("cluster_replication_lag_ns", "replica", rep.Name),
		applied: obs.GetCounter("cluster_replication_applied_total", "replica", rep.Name),
		retries: obs.GetCounter("cluster_replication_retries_total", "replica", rep.Name),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// enqueue appends one accepted write. Callers (the shard write path)
// hold the shard's replication mutex across every replica's enqueue,
// so all appliers of a shard see the identical op order.
func (a *applier) enqueue(op replOp) {
	a.mu.Lock()
	if !a.closed {
		a.ops = append(a.ops, op)
		a.backlog.Set(int64(len(a.ops)))
		a.cond.Signal()
	}
	a.mu.Unlock()
}

// depth reports the pending-op count (convergence checks).
func (a *applier) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.ops)
}

// head blocks until an op is available (returning it) or the applier
// is closed (returning false). The op stays queued until pop — a retry
// loop re-reads the same head, so no accepted write is ever skipped.
func (a *applier) head() (replOp, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.ops) == 0 && !a.closed {
		a.cond.Wait()
	}
	if len(a.ops) == 0 {
		return replOp{}, false
	}
	return a.ops[0], true
}

// pop removes the applied head.
func (a *applier) pop() {
	a.mu.Lock()
	a.ops = a.ops[1:]
	if len(a.ops) == 0 {
		a.ops = nil // let the backing array go; queues are usually empty
	}
	a.backlog.Set(int64(len(a.ops)))
	a.mu.Unlock()
}

// run is the applier goroutine: apply the head op, retrying transport
// failures with backoff until it lands or the applier closes. Remote
// handler errors do not retry — the replica is up and has durably
// rejected the op (a malformed put would fail identically forever).
func (a *applier) run() {
	backoff := applyBackoffMin
	for {
		op, ok := a.head()
		if !ok {
			return
		}
		_, err := a.rep.DB.Do(op.method, op.payload)
		if err != nil {
			var remote *transport.RemoteError
			if !errors.As(err, &remote) {
				// Node unreachable: park on this op and retry after a
				// pause, unless the router is shutting down.
				a.retries.Inc()
				if !a.pause(backoff) {
					return
				}
				backoff *= 2
				if backoff > applyBackoffMax {
					backoff = applyBackoffMax
				}
				continue
			}
			obs.GetCounter("cluster_replication_rejected_total", "replica", a.rep.Name).Inc()
		}
		backoff = applyBackoffMin
		a.lag.Set(int64(time.Since(op.accepted)))
		a.applied.Inc()
		a.pop()
	}
}

// pause waits out a retry backoff, returning false if the applier
// closed meanwhile (so run exits instead of sleeping through shutdown).
func (a *applier) pause(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-a.quit:
		return false
	}
}

// close stops the applier goroutine. Pending ops are abandoned — the
// router is shutting down, and replication state is rebuilt from the
// primary on the next start.
func (a *applier) close() {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		close(a.quit)
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}
