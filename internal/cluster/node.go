package cluster

import (
	"net"
	"time"

	"mits/internal/faults"
	"mits/internal/mediastore"
	"mits/internal/transport"
)

// StoreNode is one cluster member: a MEDIASTORE served over TCP
// behind a fault injector. It is what cmd/mitsd -shard runs in
// production shape, and what the tests and E31 chaos scenarios spin
// up in-process so they can kill, partition and heal real nodes —
// SetPartitioned(true) on the injector is a replica dropping off the
// network, Close is a crash.
type StoreNode struct {
	Name     string
	Store    *mediastore.Store
	Injector *faults.Injector

	srv  *transport.TCPServer
	addr string
}

// StartStoreNode binds a loopback TCP listener, wraps it with a fault
// injector running scen, and serves a fresh store on it.
func StartStoreNode(name string, scen faults.Scenario, seed uint64) (*StoreNode, error) {
	n := &StoreNode{
		Name:     name,
		Store:    mediastore.New(),
		Injector: faults.NewInjector(scen, seed),
	}
	mux := transport.NewMux()
	transport.RegisterStore(mux, n.Store)
	n.srv = transport.NewTCPServer(mux)
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if err := n.srv.Serve(n.Injector.WrapListener(base)); err != nil {
		base.Close() //mits:allow errdrop listener teardown after a failed serve
		return nil, err
	}
	n.addr = base.Addr().String()
	return n, nil
}

// Addr is the node's dial address.
func (n *StoreNode) Addr() string { return n.addr }

// Dialer returns a transport dialer reaching this node through its
// injector — so a partitioned node refuses the router's dials exactly
// like a severed link would.
func (n *StoreNode) Dialer(callTimeout time.Duration) transport.Dialer {
	return func() (transport.Client, error) {
		conn, err := n.Injector.Dial(n.addr)
		if err != nil {
			return nil, err
		}
		c := transport.NewTCPClient(conn)
		c.Timeout = callTimeout
		return c, nil
	}
}

// Partition cuts (or heals) the node's network.
func (n *StoreNode) Partition(cut bool) { n.Injector.SetPartitioned(cut) }

// Close stops the node's server — the crash half of crash/partition.
func (n *StoreNode) Close() error { return n.srv.Close() }

// TCPDialer dials a remote store node by address — the production
// counterpart of StoreNode.Dialer for shards running in other
// processes (cmd/mitsd -cluster).
func TCPDialer(addr string, callTimeout time.Duration) transport.Dialer {
	return func() (transport.Client, error) {
		conn, err := net.DialTimeout("tcp", addr, callTimeout)
		if err != nil {
			return nil, err
		}
		c := transport.NewTCPClient(conn)
		c.Timeout = callTimeout
		return c, nil
	}
}
