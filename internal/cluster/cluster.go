// Package cluster turns the single-node MEDIASTORE into a sharded,
// replicated content service — the five-site metropolitan deployment
// of the paper scaled out the way "Educational Content Management – A
// Cellular Approach" argues for: courseware distributed across
// cooperating content cells, each cell redundant enough that losing a
// node degrades to rerouting, never to a failed read.
//
// The shape: N store shards behind a Router, placement by consistent
// hashing on the object ID (document name / content ref). Each shard
// is one primary plus R read replicas, every node an ordinary store
// daemon reached through the resilience stack of DESIGN §9 — a
// per-replica circuit breaker over an idempotent-retry client, now
// sharing a global RetryBudget so simultaneous failovers cannot
// amplify an outage into a retry storm.
//
//   - Writes go primary-then-replicate: the primary accepts the put
//     synchronously; appliers replay the same wire ops to each read
//     replica in accept order, retrying through partitions until the
//     node heals. Replication lag and backlog are obs gauges.
//   - Reads route to the owning shard's healthiest replica (breaker
//     state, then consecutive failures, then smoothed latency) and
//     fail over down the ladder on error, timeout or open breaker,
//     ending at the primary — which is also the authority for
//     not-found, so replication lag cannot manufacture a miss.
//   - Keyword search and listings scatter to every shard and gather
//     with partial-result degradation: what answered is served, what
//     did not is counted (cluster_search_shards_failed), and only a
//     total blackout errors.
//
// The router speaks the ordinary courseware-database wire protocol on
// both faces: it is a transport.Handler/CtxHandler (mount it on a mux
// or serve it over TCP via cmd/mitsd -cluster) and it forwards
// verbatim payloads to replicas via DBClient.Do, so stores, clients
// and caches are unchanged. "Media Objects in Time" is the reason the
// read path never blocks on a dead node: continuous-media reads must
// keep flowing when a replica dies mid-stream, which E31 validates
// with chaos scenarios (replica kill, shard partition,
// heal-while-streaming).
package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mits/internal/mediastore"
	"mits/internal/obs"
	"mits/internal/transport"
)

// ErrNoQuorum is returned when every shard of a scatter-gather query
// failed — the only case where degraded search gives up.
var ErrNoQuorum = errors.New("cluster: no shard answered")

// ErrAllReplicasFailed is returned when a keyed read exhausted the
// whole failover ladder.
var ErrAllReplicasFailed = errors.New("cluster: all replicas failed")

// ReplicaConfig names one store node and how to reach it.
type ReplicaConfig struct {
	Name string
	Dial transport.Dialer
}

// ShardConfig is one shard's nodes; Replicas[0] is the primary, the
// rest are read replicas.
type ShardConfig struct {
	Replicas []ReplicaConfig
}

// Config assembles a Router.
type Config struct {
	Shards []ShardConfig

	// Policy is the per-replica retry policy. Its Budget, when nil, is
	// replaced by a shared cluster-wide budget so that N replicas
	// failing over together stay inside one token bucket.
	Policy transport.RetryPolicy

	// Breaker tuning per replica; zero values take the transport
	// defaults (5 failures, 500ms cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Seed fixes every replica client's retry-jitter stream, so chaos
	// runs replay deterministically.
	Seed uint64

	// VirtualNodes per shard on the hash ring; 0 means the default.
	VirtualNodes int
}

// shard is one configured shard at runtime. All fields are immutable
// after New; the only shared-mutable state is inside repl.
type shard struct {
	index    int
	primary  *Replica
	replicas []*Replica // read replicas (primary excluded)
	repl     *replGroup // the shard's replication appliers
}

// replGroup owns a shard's appliers and the ordering lock across
// them: holding mu across every applier's enqueue gives all replicas
// of the shard the identical op sequence, even under concurrent
// writers.
type replGroup struct {
	mu       sync.Mutex
	appliers []*applier
}

// enqueueAll logs one accepted write to every applier, atomically
// with respect to other writers.
func (g *replGroup) enqueueAll(op replOp) {
	g.mu.Lock()
	for _, a := range g.appliers {
		a.enqueue(op)
	}
	g.mu.Unlock()
}

// backlog sums the pending ops across the group.
func (g *replGroup) backlog() int {
	total := 0
	for _, a := range g.appliers {
		total += a.depth()
	}
	return total
}

// closeAll stops every applier.
func (g *replGroup) closeAll() {
	for _, a := range g.appliers {
		a.close()
	}
}

// Router is the cluster front door. It implements transport.Handler
// and transport.CtxHandler over the courseware-database method set.
type Router struct {
	shards []*shard
	ring   *ring
	budget *transport.RetryBudget

	closeOnce sync.Once
	closeErr  error
	applierWG sync.WaitGroup

	// Cached instruments (hot path: every routed call).
	readFailovers *obs.Counter
	readFailed    *obs.Counter
	searchPartial *obs.Counter
	shardsFailed  *obs.Gauge
}

// New assembles a router over the configured shards, dialing nothing
// yet (replica clients dial lazily on first use).
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	policy := cfg.Policy
	if policy.Budget == nil {
		// Default storm control: a burst of two retries per replica,
		// refilling at one per replica per second.
		n := 0
		for _, s := range cfg.Shards {
			n += len(s.Replicas)
		}
		policy.Budget = transport.NewRetryBudget(float64(2*n), float64(n))
	}
	r := &Router{
		ring:          newRing(len(cfg.Shards), cfg.VirtualNodes),
		budget:        policy.Budget,
		readFailovers: obs.GetCounter("cluster_read_failovers_total"),
		readFailed:    obs.GetCounter("cluster_read_failures_total"),
		searchPartial: obs.GetCounter("cluster_search_partial_total"),
		shardsFailed:  obs.GetGauge("cluster_search_shards_failed"),
	}
	for i, sc := range cfg.Shards {
		if len(sc.Replicas) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		sh := &shard{index: i}
		var appliers []*applier
		for j, rc := range sc.Replicas {
			name := rc.Name
			if name == "" {
				if j == 0 {
					name = fmt.Sprintf("shard%d/primary", i)
				} else {
					name = fmt.Sprintf("shard%d/replica%d", i, j)
				}
			}
			db, br := transport.NewResilientDBClient(name, rc.Dial, policy,
				cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Seed+uint64(i*101+j))
			rep := &Replica{Name: name, DB: db, Breaker: br}
			if j == 0 {
				sh.primary = rep
			} else {
				sh.replicas = append(sh.replicas, rep)
				appliers = append(appliers, newApplier(rep))
			}
		}
		sh.repl = &replGroup{appliers: appliers}
		r.shards = append(r.shards, sh)
		for _, a := range appliers {
			r.applierWG.Add(1)
			go func(a *applier) {
				defer r.applierWG.Done()
				a.run()
			}(a)
		}
	}
	obs.GetGauge("cluster_shards").Set(int64(len(r.shards)))
	return r, nil
}

// Budget exposes the shared retry budget (stats, tests).
func (r *Router) Budget() *transport.RetryBudget { return r.budget }

// Shards reports the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// Replicas returns the replicas of shard i, primary first — the chaos
// harness uses it to pick victims.
func (r *Router) Replicas(i int) []*Replica {
	sh := r.shards[i]
	out := []*Replica{sh.primary}
	return append(out, sh.replicas...)
}

// ShardFor reports which shard owns an object ID.
func (r *Router) ShardFor(key string) int { return r.ring.shardFor(key) }

// Backlog reports the total pending replication ops across the
// cluster; zero means every replica has converged.
func (r *Router) Backlog() int {
	total := 0
	for _, sh := range r.shards {
		total += sh.repl.backlog()
	}
	return total
}

// WaitConverged blocks until the replication backlog drains or the
// timeout elapses, reporting which. Tests and experiments use it to
// sequence "write, heal, then assert replicas caught up".
func (r *Router) WaitConverged(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if r.Backlog() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond) //mits:allow sleepless convergence polling in a bounded test/experiment helper
	}
}

// Close stops the replication appliers and closes every replica
// client. Idempotent.
func (r *Router) Close() error {
	r.closeOnce.Do(func() {
		var errs []error
		for _, sh := range r.shards {
			sh.repl.closeAll()
		}
		r.applierWG.Wait()
		for _, sh := range r.shards {
			if err := sh.primary.DB.C.Close(); err != nil {
				errs = append(errs, err)
			}
			for _, rep := range sh.replicas {
				if err := rep.DB.C.Close(); err != nil {
					errs = append(errs, err)
				}
			}
		}
		r.closeErr = errors.Join(errs...)
	})
	return r.closeErr
}

// --- keyed reads: health-ordered failover ladder ---

// isNotFound recognizes a store's not-found answer after it crossed
// the wire as a RemoteError.
func isNotFound(err error) bool {
	var remote *transport.RemoteError
	return errors.As(err, &remote) && strings.Contains(remote.Text, mediastore.ErrNotFound.Error())
}

// read routes one keyed read down the shard's failover ladder:
// healthiest read replica first, primary last. Transport-level
// failures and not-found answers (which may be replication lag) fall
// through to the next rung; any other remote error is authoritative
// and returns immediately. The primary's answer — including its
// not-found — is final.
func (r *Router) read(sc obs.SpanContext, sh *shard, method string, payload []byte) ([]byte, error) {
	ladder := append(orderByHealth(sh.replicas), sh.primary)
	var lastErr error
	for i, rep := range ladder {
		if i > 0 {
			r.readFailovers.Inc()
		}
		start := time.Now()
		out, err := rep.DB.WithTrace(sc).Do(method, payload)
		if err == nil {
			rep.recordOutcome(time.Since(start), false)
			return out, nil
		}
		var remote *transport.RemoteError
		if errors.As(err, &remote) {
			rep.recordOutcome(time.Since(start), false) // the node answered
			if !isNotFound(err) {
				return nil, err // deterministic server-side failure
			}
			lastErr = err // maybe lag: ask the next rung, ultimately the primary
			continue
		}
		rep.recordOutcome(time.Since(start), true)
		lastErr = err
	}
	r.readFailed.Inc()
	if lastErr == nil {
		lastErr = ErrAllReplicasFailed
	} else if !isNotFound(lastErr) {
		lastErr = fmt.Errorf("%w: %w", ErrAllReplicasFailed, lastErr)
	}
	return nil, lastErr
}

// --- writes: primary accepts, appliers converge the replicas ---

// write forwards one put to the shard primary and, on success,
// enqueues the identical wire op for every read replica. The caller
// sees exactly the primary's answer; replication is asynchronous and
// its lag observable (cluster_replication_backlog / _lag_ns gauges).
func (r *Router) write(sc obs.SpanContext, sh *shard, method string, payload []byte) ([]byte, error) {
	out, err := sh.primary.DB.WithTrace(sc).Do(method, payload)
	if err != nil {
		return nil, err
	}
	sh.repl.enqueueAll(replOp{method: method, payload: payload, accepted: time.Now()})
	return out, nil
}

// --- scatter-gather: listings, keyword search, keyword tree ---

// shardAnswer is one shard's leg of a fan-out query.
type shardAnswer struct {
	payload []byte
	err     error
}

// scatter runs the same request against every shard's failover ladder
// concurrently and collects the per-shard answers in shard order.
func (r *Router) scatter(sc obs.SpanContext, method string, payload []byte) []shardAnswer {
	answers := make([]shardAnswer, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			out, err := r.read(sc, sh, method, payload)
			answers[i] = shardAnswer{payload: out, err: err}
		}(i, sh)
	}
	wg.Wait()
	return answers
}

// gatherTally applies the partial-result policy to a scatter's
// answers: not-found legs are empty-but-healthy, transport failures
// are degradation (counted, surfaced in the gauge), and only a total
// blackout is an error.
func (r *Router) gatherTally(answers []shardAnswer) (served []shardAnswer, failed int, err error) {
	for _, a := range answers {
		switch {
		case a.err == nil:
			served = append(served, a)
		case isNotFound(a.err):
			// A shard with no matching objects is an answer, not an
			// outage; it contributes nothing to the merge.
		default:
			failed++
		}
	}
	r.shardsFailed.Set(int64(failed))
	if failed > 0 {
		r.searchPartial.Inc()
	}
	if len(served) == 0 && failed > 0 {
		return nil, failed, fmt.Errorf("%w: %d shards down", ErrNoQuorum, failed)
	}
	return served, failed, nil
}

// scatterNames merges the []string responses of a fan-out method
// (ListDocs, DocByKeyword): union, deduplicated, sorted.
func (r *Router) scatterNames(sc obs.SpanContext, method string, payload []byte) ([]byte, error) {
	served, _, err := r.gatherTally(r.scatter(sc, method, payload))
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, a := range served {
		names, derr := transport.DecodeNameList(a.payload)
		if derr != nil {
			return nil, fmt.Errorf("cluster: merge %s: %w", method, derr)
		}
		for _, n := range names {
			set[n] = true
		}
	}
	return transport.EncodeNameList(sortedKeys(set))
}

// scatterTree merges the per-shard keyword-tree snapshots into one
// tree (same node set a single store would have built).
func (r *Router) scatterTree(sc obs.SpanContext, payload []byte) ([]byte, error) {
	served, _, err := r.gatherTally(r.scatter(sc, transport.MethodKeywordTree, payload))
	if err != nil {
		return nil, err
	}
	merged := &mediastore.KeywordNode{}
	for _, a := range served {
		tree, derr := transport.DecodeKeywordTree(a.payload)
		if derr != nil {
			return nil, fmt.Errorf("cluster: merge keyword tree: %w", derr)
		}
		mergeKeywordNode(merged, tree)
	}
	return transport.EncodeKeywordTree(merged)
}
