package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestReplicaFailoverMidStream is the continuous-media failover
// contract under the race detector: a navigator streams a course's
// content chunk-by-chunk through the router while, mid-stream, the
// replica that has been serving it drops off the network. The read
// ladder must absorb the loss — every chunk arrives intact, the
// caller never sees an error — while concurrent writes keep landing
// and the healed replica converges afterward. Runs 5× under -race in
// `make racestress` (scheduling-dependent interleavings between the
// failover ladder, health recording and the replication appliers are
// exactly what one lucky pass would miss).
func TestReplicaFailoverMidStream(t *testing.T) {
	r, nodes := testCluster(t, 1, 3)
	db := routerClient(r)

	// One course, 24 chunks — a chunked MPEG object the navigator pulls
	// sequentially (the delivery shape of DESIGN §5).
	const chunks = 24
	for i := 0; i < chunks; i++ {
		ref := fmt.Sprintf("store/stream/chunk-%02d.mpg", i)
		if err := db.PutContent(ref, "mpeg", []byte(fmt.Sprintf("frame-data-%02d", i))); err != nil {
			t.Fatalf("seed chunk %d: %v", i, err)
		}
	}
	if !r.WaitConverged(3 * time.Second) {
		t.Fatalf("seed replication never converged: backlog %d", r.Backlog())
	}

	// Stream reader: sequential chunk fetches, collecting any error.
	var wg sync.WaitGroup
	errCh := make(chan error, chunks+1)
	killAt := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < chunks; i++ {
			ref := fmt.Sprintf("store/stream/chunk-%02d.mpg", i)
			rec, err := db.GetContent(ref)
			if err != nil {
				errCh <- fmt.Errorf("chunk %d: %w", i, err)
				return
			}
			if want := fmt.Sprintf("frame-data-%02d", i); string(rec.Data) != want {
				errCh <- fmt.Errorf("chunk %d data = %q, want %q", i, rec.Data, want)
				return
			}
			if i == chunks/3 {
				close(killAt) // a third in: kill the serving replicas
			}
		}
	}()

	// Chaos: once the stream is under way, cut both read replicas — the
	// healthiest candidates, so whichever was serving dies mid-stream
	// and the ladder must end at the primary.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-killAt
		nodes[0][1].Partition(true)
		nodes[0][2].Partition(true)
	}()

	// Concurrent writer: publishing continues during the failover (the
	// primary is up; replication parks until the heal).
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-killAt
		for i := 0; i < 6; i++ {
			ref := fmt.Sprintf("store/stream/late-%02d.mpg", i)
			if err := db.PutContent(ref, "mpeg", []byte("late")); err != nil {
				errCh <- fmt.Errorf("write during failover: %w", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Heal: both replicas return and the parked writes drain into them.
	nodes[0][1].Partition(false)
	nodes[0][2].Partition(false)
	if !r.WaitConverged(5 * time.Second) {
		t.Fatalf("replicas never converged after heal: backlog %d", r.Backlog())
	}
	for rep := 1; rep <= 2; rep++ {
		if _, err := nodes[0][rep].Store.GetContent("store/stream/late-05.mpg"); err != nil {
			t.Fatalf("healed replica %d missing post-failover write: %v", rep, err)
		}
	}
}
