package document

import (
	"strings"
	"testing"
	"time"
)

func TestSampleDocumentsValidate(t *testing.T) {
	if err := SampleATMCourse().Validate(); err != nil {
		t.Errorf("ATM course: %v", err)
	}
	if err := SampleHyperCourse().Validate(); err != nil {
		t.Errorf("hyper course: %v", err)
	}
}

func TestHyperNavigation(t *testing.T) {
	d := SampleHyperCourse()
	start := d.StartPage()
	if start == nil || start.ID != "s1" {
		t.Fatalf("start page %v", start)
	}
	next, ok := d.Next("s1", "next1")
	if !ok || next.ID != "s2" {
		t.Fatalf("Next(s1,next1) = %v", next)
	}
	// Quiz branch: right and wrong answers go to different pages.
	right, _ := d.Next("q1", "q1-right")
	wrong, _ := d.Next("q1", "q1-wrong")
	if right.ID != "q1-correct" || wrong.ID != "q1-incorrect" {
		t.Errorf("quiz branch %v / %v", right.ID, wrong.ID)
	}
	if _, ok := d.Next("s1", "nonexistent"); ok {
		t.Error("Next on unknown condition succeeded")
	}
	if got := len(d.Choices("s1")); got != 3 {
		t.Errorf("s1 has %d choices, want 3", got)
	}
	if _, ok := d.Page("nope"); ok {
		t.Error("unknown page found")
	}
	p, _ := d.Page("s1")
	if _, ok := p.Item("next1"); !ok {
		t.Error("item lookup failed")
	}
}

func TestHyperValidateCatchesAuthoringBugs(t *testing.T) {
	base := func() *HyperDoc { return SampleHyperCourse() }

	cases := []struct {
		name   string
		break_ func(*HyperDoc)
		want   string
	}{
		{"no title", func(d *HyperDoc) { d.Title = "" }, "no title"},
		{"no pages", func(d *HyperDoc) { d.Pages = nil }, "no pages"},
		{"dup page", func(d *HyperDoc) { d.Pages = append(d.Pages, &Page{ID: "s1"}) }, "duplicate page"},
		{"bad start", func(d *HyperDoc) { d.Start = "zzz" }, "start page"},
		{"link from unknown", func(d *HyperDoc) {
			d.Links = append(d.Links, NavLink{From: "zzz", Condition: "x", To: "s1"})
		}, "unknown page"},
		{"link to unknown", func(d *HyperDoc) {
			d.Links = append(d.Links, NavLink{From: "s1", Condition: "next1", To: "zzz"})
		}, "unknown page"},
		{"condition not on page", func(d *HyperDoc) {
			d.Links = append(d.Links, NavLink{From: "s1", Condition: "zzz", To: "s2"})
		}, "not on page"},
		{"media as condition", func(d *HyperDoc) {
			d.Links = append(d.Links, NavLink{From: "s1", Condition: "s1-text", To: "s2"})
		}, "plain media"},
		{"unreachable page", func(d *HyperDoc) {
			d.Pages = append(d.Pages, &Page{ID: "island", Items: []PageItem{{ID: "i", Kind: ItemChoice, Text: "x"}}})
		}, "unreachable"},
		{"empty item id", func(d *HyperDoc) {
			d.Pages[0].Items = append(d.Pages[0].Items, PageItem{Kind: ItemChoice, Text: "x"})
		}, "empty id"},
		{"media without ref", func(d *HyperDoc) {
			d.Pages[0].Items = append(d.Pages[0].Items, PageItem{ID: "m2", Kind: ItemMedia})
		}, "no media reference"},
		{"choice without text", func(d *HyperDoc) {
			d.Pages[0].Items = append(d.Pages[0].Items, PageItem{ID: "c2", Kind: ItemChoice})
		}, "no text"},
		{"dup item", func(d *HyperDoc) {
			d.Pages[0].Items = append(d.Pages[0].Items, PageItem{ID: "next1", Kind: ItemChoice, Text: "x"})
		}, "duplicate item"},
	}
	for _, c := range cases {
		d := base()
		c.break_(d)
		err := d.Validate()
		if err == nil {
			t.Errorf("%s: validation passed", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestIMDocStructure(t *testing.T) {
	d := SampleATMCourse()
	scenes := d.AllScenes()
	if len(scenes) != 4 {
		t.Fatalf("AllScenes=%d, want 4", len(scenes))
	}
	// Order follows the section hierarchy depth-first.
	wantOrder := []string{"intro", "cells", "switching", "quiz"}
	for i, s := range scenes {
		if s.ID != wantOrder[i] {
			t.Errorf("scene %d = %q, want %q", i, s.ID, wantOrder[i])
		}
	}
	s, ok := d.Scene("cells")
	if !ok {
		t.Fatal("scene cells not found")
	}
	if _, ok := s.Object("choice1"); !ok {
		t.Error("object choice1 not found")
	}
	if _, ok := s.Object("zzz"); ok {
		t.Error("unknown object found")
	}
	if _, ok := d.Scene("zzz"); ok {
		t.Error("unknown scene found")
	}
}

func TestIMDocValidateCatchesAuthoringBugs(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*IMDoc)
		want   string
	}{
		{"no title", func(d *IMDoc) { d.Title = "" }, "no title"},
		{"no scenes", func(d *IMDoc) { d.Sections = nil }, "no scenes"},
		{"dup scene", func(d *IMDoc) {
			d.Sections[0].Scenes = append(d.Sections[0].Scenes, &Scene{ID: "quiz"})
		}, "duplicate scene"},
		{"dup object", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Objects = append(s.Objects, SceneObject{ID: "text1", Kind: ObjText, Text: "x"})
		}, "duplicate object"},
		{"video without media", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Objects = append(s.Objects, SceneObject{ID: "v2", Kind: ObjVideo})
		}, "no media reference"},
		{"button without label", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Objects = append(s.Objects, SceneObject{ID: "b2", Kind: ObjButton})
		}, "no label"},
		{"negative duration", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Objects = append(s.Objects, SceneObject{ID: "t9", Kind: ObjText, Text: "x", Duration: -time.Second})
		}, "negative duration"},
		{"timeline unknown object", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Timeline = append(s.Timeline, Placement{Object: "zzz"})
		}, "unknown object"},
		{"double placement", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Timeline = append(s.Timeline, Placement{Object: "text1"})
		}, "placed twice"},
		{"self relative", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Timeline = append(s.Timeline, Placement{Object: "choice1", Kind: PlaceAfter, Ref: "choice1"})
		}, "itself"},
		{"behavior no conditions", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Behaviors = append(s.Behaviors, Behavior{Actions: []BAction{{Verb: BStop, Targets: []string{"text1"}}}})
		}, "no conditions"},
		{"behavior no actions", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Behaviors = append(s.Behaviors, Behavior{Conditions: []BCondition{{Object: "text1"}}})
		}, "no actions"},
		{"behavior unknown watch", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Behaviors = append(s.Behaviors, Behavior{
				Conditions: []BCondition{{Object: "zzz"}},
				Actions:    []BAction{{Verb: BStop, Targets: []string{"text1"}}}})
		}, "unknown object"},
		{"behavior unknown target", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Behaviors = append(s.Behaviors, Behavior{
				Conditions: []BCondition{{Object: "text1"}},
				Actions:    []BAction{{Verb: BStop, Targets: []string{"zzz"}}}})
		}, "unknown object"},
		{"goto unknown scene", func(d *IMDoc) {
			s, _ := d.Scene("cells")
			s.Behaviors = append(s.Behaviors, Behavior{
				Conditions: []BCondition{{Object: "choice1"}},
				Actions:    []BAction{{Verb: BGoto, Targets: []string{"zzz"}}}})
		}, "unknown scene"},
	}
	for _, c := range cases {
		d := SampleATMCourse()
		c.break_(d)
		err := d.Validate()
		if err == nil {
			t.Errorf("%s: validation passed", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if ItemMedia.String() != "media" || ItemWord.String() != "word" || ItemChoice.String() != "choice" {
		t.Error("ItemKind.String")
	}
	if ObjVideo.String() != "video" || ObjButton.String() != "button" || ObjectKind(9).String() == "" {
		t.Error("ObjectKind.String")
	}
	if BEvClicked.String() != "clicked" || BEvent(9).String() == "" {
		t.Error("BEvent.String")
	}
	if BStop.String() != "stop" || BVerb(99).String() == "" {
		t.Error("BVerb.String")
	}
	if ObjButton.Presentable() || !ObjVideo.Presentable() {
		t.Error("Presentable")
	}
}
