package document

import "time"

// SampleATMCourse builds the worked example of Fig 4.4: an interactive
// multimedia course about ATM technology, with sections, scenes, a
// time-line containing a user choice, and stop/show behaviors.
//
// Media references follow the "store/<name>" convention of the content
// database.
func SampleATMCourse() *IMDoc {
	intro := &Scene{
		ID:    "intro",
		Title: "Welcome",
		Objects: []SceneObject{
			{ID: "welcome-video", Kind: ObjVideo, Media: "store/atm/welcome.mpg",
				At: Region{X: 0, Y: 0, W: 352, H: 240}, Duration: 8 * time.Second, Channel: "stage"},
			{ID: "welcome-music", Kind: ObjAudio, Media: "store/atm/welcome.mid",
				Duration: 8 * time.Second, Volume: 60, Channel: "audio"},
			{ID: "title", Kind: ObjText, Text: "Asynchronous Transfer Mode",
				At: Region{X: 0, Y: 250, W: 352, H: 30}, Channel: "stage"},
		},
		Timeline: []Placement{
			{Object: "welcome-video", Kind: PlaceAt},
			{Object: "welcome-music", Kind: PlaceWith, Ref: "welcome-video"},
			{Object: "title", Kind: PlaceAt, Offset: time.Second},
		},
	}

	// Fig 4.4b: text1 shows for a pre-defined duration, then image1 —
	// but choice1 lets the student move on early.
	cells := &Scene{
		ID:    "cells",
		Title: "ATM Cells",
		Objects: []SceneObject{
			{ID: "text1", Kind: ObjText, Text: "An ATM cell is 53 bytes: a 5-byte header and a 48-byte payload.",
				At: Region{X: 0, Y: 0, W: 400, H: 200}, Duration: 20 * time.Second, Channel: "stage"},
			{ID: "image1", Kind: ObjImage, Media: "store/atm/cell-format.jpg",
				At: Region{X: 0, Y: 0, W: 400, H: 300}, Channel: "stage"},
			{ID: "choice1", Kind: ObjButton, Text: "Show cell diagram",
				At: Region{X: 420, Y: 0, W: 120, H: 30}, Channel: "controls"},
			{ID: "narration", Kind: ObjAudio, Media: "store/atm/cells.wav",
				Duration: 20 * time.Second, Volume: 75, Channel: "audio"},
		},
		Timeline: []Placement{
			{Object: "text1", Kind: PlaceAt},
			{Object: "narration", Kind: PlaceWith, Ref: "text1"},
			{Object: "image1", Kind: PlaceAfter, Ref: "text1"},
		},
		Behaviors: []Behavior{
			// choice1 clicked → stop text1 early and show image1 now
			// (Fig 4.4b: the user can display image1 before the
			// pre-defined time t2).
			{
				Conditions: []BCondition{{Object: "choice1", Event: BEvClicked}},
				Actions: []BAction{
					{Verb: BStop, Targets: []string{"text1", "narration"}},
					{Verb: BStart, Targets: []string{"image1"}},
				},
			},
		},
	}

	// A scene with the Fig 4.4c behaviors: a stop button halting three
	// objects at once.
	switching := &Scene{
		ID:    "switching",
		Title: "Cell Switching",
		Objects: []SceneObject{
			{ID: "audio1", Kind: ObjAudio, Media: "store/atm/switching.wav",
				Duration: 30 * time.Second, Volume: 75, Channel: "audio"},
			{ID: "text2", Kind: ObjText, Text: "Switches forward cells by VPI/VCI lookup.",
				At: Region{X: 0, Y: 260, W: 400, H: 60}, Duration: 30 * time.Second, Channel: "stage"},
			{ID: "anim1", Kind: ObjVideo, Media: "store/atm/switch-anim.mpg",
				At: Region{X: 0, Y: 0, W: 352, H: 240}, Duration: 30 * time.Second, Channel: "stage"},
			{ID: "stopbtn", Kind: ObjButton, Text: "Stop",
				At: Region{X: 420, Y: 0, W: 80, H: 30}, Channel: "controls"},
		},
		Timeline: []Placement{
			{Object: "audio1", Kind: PlaceAt},
			{Object: "text2", Kind: PlaceWith, Ref: "audio1"},
			{Object: "anim1", Kind: PlaceWith, Ref: "audio1"},
		},
		Behaviors: []Behavior{
			{
				Conditions: []BCondition{{Object: "stopbtn", Event: BEvClicked}},
				Actions:    []BAction{{Verb: BStop, Targets: []string{"audio1", "text2", "anim1"}}},
			},
		},
	}

	quiz := &Scene{
		ID:    "quiz",
		Title: "Test Your Knowledge",
		Objects: []SceneObject{
			{ID: "question", Kind: ObjText, Text: "How long is an ATM cell?",
				At: Region{X: 0, Y: 0, W: 400, H: 60}, Channel: "stage"},
			{ID: "ans48", Kind: ObjButton, Text: "48 bytes", At: Region{X: 0, Y: 80, W: 120, H: 30}, Channel: "controls"},
			{ID: "ans53", Kind: ObjButton, Text: "53 bytes", At: Region{X: 0, Y: 120, W: 120, H: 30}, Channel: "controls"},
			{ID: "right", Kind: ObjText, Text: "Correct!", At: Region{X: 200, Y: 80, W: 200, H: 30}, Channel: "stage"},
			{ID: "wrong", Kind: ObjText, Text: "Not quite — 48 bytes is only the payload.",
				At: Region{X: 200, Y: 80, W: 200, H: 60}, Channel: "stage"},
		},
		Timeline: []Placement{
			{Object: "question", Kind: PlaceAt},
		},
		Behaviors: []Behavior{
			{
				Conditions: []BCondition{{Object: "ans53", Event: BEvClicked}},
				Actions:    []BAction{{Verb: BStart, Targets: []string{"right"}}},
			},
			{
				Conditions: []BCondition{{Object: "ans48", Event: BEvClicked}},
				Actions:    []BAction{{Verb: BStart, Targets: []string{"wrong"}}},
			},
		},
	}

	return &IMDoc{
		Title: "ATM Technology",
		Sections: []*Section{
			{
				Title:  "Introduction",
				Scenes: []*Scene{intro},
			},
			{
				Title: "The ATM Layer",
				Subsections: []*Section{
					{Title: "Cells", Scenes: []*Scene{cells}},
					{Title: "Switching", Scenes: []*Scene{switching}},
				},
			},
			{
				Title:  "Assessment",
				Scenes: []*Scene{quiz},
			},
		},
	}
}

// SampleHyperCourse builds a hypermedia course following Fig 4.3b:
// sections linked "Next Section", a "Test Your Knowledge" branch with a
// question whose answers lead to different pages.
func SampleHyperCourse() *HyperDoc {
	return &HyperDoc{
		Title: "Networking Basics (Hypermedia)",
		Start: "s1",
		Pages: []*Page{
			{
				ID: "s1", Title: "Section 1: What is a network?",
				Items: []PageItem{
					{ID: "s1-text", Kind: ItemMedia, Media: "store/net/s1.html", At: Region{W: 500, H: 400}},
					{ID: "s1-pic", Kind: ItemMedia, Media: "store/net/lan.jpg", At: Region{Y: 410, W: 320, H: 240}},
					{ID: "next1", Kind: ItemChoice, Text: "Next Section"},
					{ID: "test1", Kind: ItemChoice, Text: "Test Your Knowledge"},
					{ID: "w-protocol", Kind: ItemWord, Text: "protocol"},
				},
			},
			{
				ID: "glossary-protocol", Title: "Glossary: protocol",
				Items: []PageItem{
					{ID: "g-text", Kind: ItemMedia, Media: "store/net/protocol.html", At: Region{W: 500, H: 300}},
					{ID: "back", Kind: ItemChoice, Text: "Back"},
				},
			},
			{
				ID: "s2", Title: "Section 2: Switching",
				Items: []PageItem{
					{ID: "s2-text", Kind: ItemMedia, Media: "store/net/s2.html", At: Region{W: 500, H: 400}},
					{ID: "prev2", Kind: ItemChoice, Text: "Previous Section"},
					{ID: "test2", Kind: ItemChoice, Text: "Test Your Knowledge"},
				},
			},
			{
				ID: "q1", Title: "Question 1",
				Items: []PageItem{
					{ID: "q1-text", Kind: ItemMedia, Media: "store/net/q1.html", At: Region{W: 500, H: 200}},
					{ID: "q1-right", Kind: ItemChoice, Text: "A set of communication rules"},
					{ID: "q1-wrong", Kind: ItemChoice, Text: "A kind of cable"},
				},
			},
			{
				ID: "q1-correct", Title: "Correct",
				Items: []PageItem{
					{ID: "ok-text", Kind: ItemMedia, Media: "store/net/correct.html", At: Region{W: 400, H: 100}},
					{ID: "continue", Kind: ItemChoice, Text: "Continue"},
				},
			},
			{
				ID: "q1-incorrect", Title: "Review",
				Items: []PageItem{
					{ID: "rev-text", Kind: ItemMedia, Media: "store/net/review.html", At: Region{W: 400, H: 200}},
					{ID: "retry", Kind: ItemChoice, Text: "Try again"},
				},
			},
		},
		Links: []NavLink{
			{From: "s1", Condition: "next1", To: "s2"},
			{From: "s1", Condition: "test1", To: "q1"},
			{From: "s1", Condition: "w-protocol", To: "glossary-protocol"},
			{From: "glossary-protocol", Condition: "back", To: "s1"},
			{From: "s2", Condition: "prev2", To: "s1"},
			{From: "s2", Condition: "test2", To: "q1"},
			{From: "q1", Condition: "q1-right", To: "q1-correct"},
			{From: "q1", Condition: "q1-wrong", To: "q1-incorrect"},
			{From: "q1-correct", Condition: "continue", To: "s2"},
			{From: "q1-incorrect", Condition: "retry", To: "q1"},
		},
	}
}
