// Package document implements the two interactive document models MITS
// authors courseware with (§4.3): the hypermedia document model of
// Fig 4.3 (static interaction — pages, words, choices and a navigation
// graph) and the interactive multimedia document model of Fig 4.4
// (dynamic interaction — sections, scenes, a time-line structure and a
// behavior structure).
//
// Documents are author-level artifacts: they reference media objects by
// string name and know nothing of MHEG. The courseware package compiles
// them into MHEG object graphs.
package document

import (
	"fmt"
)

// ItemKind classifies the items on a hypermedia page.
type ItemKind int

// Page item kinds.
const (
	ItemMedia  ItemKind = iota // a media object shown on the page
	ItemWord                   // a hot word: the source of a link
	ItemChoice                 // an explicit choice button
)

func (k ItemKind) String() string {
	switch k {
	case ItemMedia:
		return "media"
	case ItemWord:
		return "word"
	case ItemChoice:
		return "choice"
	default:
		return fmt.Sprintf("ItemKind(%d)", int(k))
	}
}

// Region is a layout rectangle in generic units (the layout structure
// of §4.3.2).
type Region struct {
	X, Y, W, H int
}

// PageItem is one element of a page's logical structure: a media
// object, a hot word, or a choice button.
type PageItem struct {
	ID    string
	Kind  ItemKind
	Media string // media object reference for ItemMedia
	Text  string // display text for words and choices
	At    Region // layout placement
}

// Page is one node of the hypermedia document's logical structure: "a
// document is composed of a number of pages, and each page may contain
// many media objects" (§4.3.2).
type Page struct {
	ID    string
	Title string
	Items []PageItem
}

// Item finds a page item by id.
func (p *Page) Item(id string) (PageItem, bool) {
	for _, it := range p.Items {
		if it.ID == id {
			return it, true
		}
	}
	return PageItem{}, false
}

// NavLink is one edge of the navigation structure: when Condition (a
// word or choice item on the From page) is activated, presentation
// moves to the To page (Fig 4.3b).
type NavLink struct {
	From      string // page id
	Condition string // item id on the From page
	To        string // page id
}

// HyperDoc is a complete hypermedia document: logical structure
// (pages), layout structure (the regions on items), and navigation
// structure (links).
type HyperDoc struct {
	Title string
	Start string // id of the first page presented
	Pages []*Page
	Links []NavLink
}

// Page finds a page by id.
func (d *HyperDoc) Page(id string) (*Page, bool) {
	for _, p := range d.Pages {
		if p.ID == id {
			return p, true
		}
	}
	return nil, false
}

// Next resolves a navigation step: the page reached by activating the
// given item on the given page.
func (d *HyperDoc) Next(page, item string) (*Page, bool) {
	for _, l := range d.Links {
		if l.From == page && l.Condition == item {
			return d.mustPage(l.To), true
		}
	}
	return nil, false
}

// Choices lists the outgoing links of a page.
func (d *HyperDoc) Choices(page string) []NavLink {
	var out []NavLink
	for _, l := range d.Links {
		if l.From == page {
			out = append(out, l)
		}
	}
	return out
}

func (d *HyperDoc) mustPage(id string) *Page {
	p, _ := d.Page(id)
	return p
}

// Validate checks structural integrity: unique page and item ids, a
// valid start page, links that reference existing pages and items, and
// full reachability of every page from the start (unreachable pages are
// the authoring bug behind "getting lost" complaints, §4.3.1).
func (d *HyperDoc) Validate() error {
	if d.Title == "" {
		return fmt.Errorf("document: hypermedia document has no title")
	}
	if len(d.Pages) == 0 {
		return fmt.Errorf("document %q: no pages", d.Title)
	}
	pages := make(map[string]*Page, len(d.Pages))
	for _, p := range d.Pages {
		if p.ID == "" {
			return fmt.Errorf("document %q: page with empty id", d.Title)
		}
		if _, dup := pages[p.ID]; dup {
			return fmt.Errorf("document %q: duplicate page id %q", d.Title, p.ID)
		}
		pages[p.ID] = p
		seen := make(map[string]bool, len(p.Items))
		for _, it := range p.Items {
			if it.ID == "" {
				return fmt.Errorf("document %q page %q: item with empty id", d.Title, p.ID)
			}
			if seen[it.ID] {
				return fmt.Errorf("document %q page %q: duplicate item id %q", d.Title, p.ID, it.ID)
			}
			seen[it.ID] = true
			if it.Kind == ItemMedia && it.Media == "" {
				return fmt.Errorf("document %q page %q: media item %q has no media reference", d.Title, p.ID, it.ID)
			}
			if it.Kind != ItemMedia && it.Text == "" {
				return fmt.Errorf("document %q page %q: %v item %q has no text", d.Title, p.ID, it.Kind, it.ID)
			}
		}
	}
	start := d.Start
	if start == "" {
		start = d.Pages[0].ID
	}
	if _, ok := pages[start]; !ok {
		return fmt.Errorf("document %q: start page %q does not exist", d.Title, start)
	}
	for _, l := range d.Links {
		from, ok := pages[l.From]
		if !ok {
			return fmt.Errorf("document %q: link from unknown page %q", d.Title, l.From)
		}
		if _, ok := pages[l.To]; !ok {
			return fmt.Errorf("document %q: link to unknown page %q", d.Title, l.To)
		}
		it, ok := from.Item(l.Condition)
		if !ok {
			return fmt.Errorf("document %q: link condition %q not on page %q", d.Title, l.Condition, l.From)
		}
		if it.Kind == ItemMedia {
			return fmt.Errorf("document %q: link condition %q on page %q is plain media, not a word or choice", d.Title, l.Condition, l.From)
		}
	}
	// Reachability from the start page.
	reached := map[string]bool{start: true}
	frontier := []string{start}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, l := range d.Links {
			if l.From == cur && !reached[l.To] {
				reached[l.To] = true
				frontier = append(frontier, l.To)
			}
		}
	}
	for id := range pages {
		if !reached[id] {
			return fmt.Errorf("document %q: page %q unreachable from start %q", d.Title, id, start)
		}
	}
	return nil
}

// StartPage returns the entry page.
func (d *HyperDoc) StartPage() *Page {
	if d.Start != "" {
		return d.mustPage(d.Start)
	}
	if len(d.Pages) > 0 {
		return d.Pages[0]
	}
	return nil
}
