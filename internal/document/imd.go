package document

import (
	"fmt"
	"time"
)

// SceneObject is one perceptible object in a scene, with the layout
// parameters of the interactive multimedia document model's layout
// structure (§4.3.3).
type SceneObject struct {
	ID       string
	Media    string // media object reference; empty for pure UI objects
	Kind     ObjectKind
	Text     string // label for buttons/text rendered inline
	At       Region
	Duration time.Duration // 0 = unknown/static
	Volume   int
	Channel  string // logical presentation space (§4.3.3)
}

// ObjectKind classifies scene objects.
type ObjectKind int

// Scene object kinds.
const (
	ObjVideo ObjectKind = iota
	ObjAudio
	ObjImage
	ObjText
	ObjButton
)

var objKindNames = [...]string{"video", "audio", "image", "text", "button"}

func (k ObjectKind) String() string {
	if k < 0 || int(k) >= len(objKindNames) {
		return fmt.Sprintf("ObjectKind(%d)", int(k))
	}
	return objKindNames[k]
}

// Presentable reports whether the object carries media content (as
// opposed to interaction widgets).
func (k ObjectKind) Presentable() bool { return k != ObjButton }

// PlaceKind is a temporal placement relation in a scene's time-line
// structure.
type PlaceKind int

// Placement relations.
const (
	PlaceAt    PlaceKind = iota // absolute offset from scene start
	PlaceWith                   // offset from another object's start
	PlaceAfter                  // offset from another object's end
)

// Placement is one entry of the time-line structure (Fig 4.4b).
type Placement struct {
	Object string
	Kind   PlaceKind
	Ref    string // other object for PlaceWith / PlaceAfter
	Offset time.Duration
}

// BCondition is one condition of a behavior: a trigger on an object's
// state, e.g. "stop-button clicked" or "text1 stopped" (Fig 4.4c).
type BCondition struct {
	Object string
	Event  BEvent
	// Value qualifies BEvSelected for answer-checking behaviors.
	Value string
}

// BEvent enumerates the observable author-level events.
type BEvent int

// Behavior trigger events.
const (
	BEvClicked  BEvent = iota // user clicked the object
	BEvFinished               // playback completed
	BEvStopped                // playback stopped (by user or action)
	BEvSelected               // selection state changed to Value
)

var bEventNames = [...]string{"clicked", "finished", "stopped", "selected"}

func (e BEvent) String() string {
	if e < 0 || int(e) >= len(bEventNames) {
		return fmt.Sprintf("BEvent(%d)", int(e))
	}
	return bEventNames[e]
}

// BVerb enumerates author-level effect verbs.
type BVerb int

// Behavior action verbs.
const (
	BStart BVerb = iota
	BStop
	BPause
	BResume
	BShow
	BHide
	BGoto // jump to another scene
)

var bVerbNames = [...]string{"start", "stop", "pause", "resume", "show", "hide", "goto"}

func (v BVerb) String() string {
	if v < 0 || int(v) >= len(bVerbNames) {
		return fmt.Sprintf("BVerb(%d)", int(v))
	}
	return bVerbNames[v]
}

// BAction is one effect of a behavior.
type BAction struct {
	Verb    BVerb
	Targets []string // scene object ids, or a scene id for BGoto
}

// Behavior is one row of the behavior structure: a condition set and an
// action set (Fig 4.4c). The first condition is the trigger; the rest
// are additional conditions evaluated against current state.
type Behavior struct {
	Conditions []BCondition
	Actions    []BAction
}

// Scene groups "a certain number of objects presented in the same space
// for a certain period of time" (§4.3.3).
type Scene struct {
	ID        string
	Title     string
	Objects   []SceneObject
	Timeline  []Placement
	Behaviors []Behavior
}

// Object finds a scene object by id.
func (s *Scene) Object(id string) (SceneObject, bool) {
	for _, o := range s.Objects {
		if o.ID == id {
			return o, true
		}
	}
	return SceneObject{}, false
}

// Section is a node of the logical structure: sections divide into
// subsections and eventually scenes (Fig 4.4a).
type Section struct {
	Title       string
	Subsections []*Section
	Scenes      []*Scene
}

// IMDoc is an interactive multimedia document: a pre-defined rendering
// scenario plus interactive behaviors — the dynamic-interaction model
// of §4.3.3.
type IMDoc struct {
	Title    string
	Sections []*Section
}

// AllScenes flattens the section hierarchy into presentation order
// (simple serial playback order absent user interference).
func (d *IMDoc) AllScenes() []*Scene {
	var out []*Scene
	var walk func(*Section)
	walk = func(s *Section) {
		out = append(out, s.Scenes...)
		for _, sub := range s.Subsections {
			walk(sub)
		}
	}
	for _, s := range d.Sections {
		walk(s)
	}
	return out
}

// Scene finds a scene by id anywhere in the hierarchy.
func (d *IMDoc) Scene(id string) (*Scene, bool) {
	for _, s := range d.AllScenes() {
		if s.ID == id {
			return s, true
		}
	}
	return nil, false
}

// Validate checks the document: unique scene and object ids, placements
// and behaviors that reference existing objects, buttons not used as
// media, and goto targets that exist.
func (d *IMDoc) Validate() error {
	if d.Title == "" {
		return fmt.Errorf("document: interactive document has no title")
	}
	scenes := d.AllScenes()
	if len(scenes) == 0 {
		return fmt.Errorf("document %q: no scenes", d.Title)
	}
	sceneIDs := make(map[string]bool, len(scenes))
	for _, s := range scenes {
		if s.ID == "" {
			return fmt.Errorf("document %q: scene with empty id", d.Title)
		}
		if sceneIDs[s.ID] {
			return fmt.Errorf("document %q: duplicate scene id %q", d.Title, s.ID)
		}
		sceneIDs[s.ID] = true
	}
	for _, s := range scenes {
		if err := d.validateScene(s, sceneIDs); err != nil {
			return fmt.Errorf("document %q: %w", d.Title, err)
		}
	}
	return nil
}

func (d *IMDoc) validateScene(s *Scene, sceneIDs map[string]bool) error {
	objs := make(map[string]SceneObject, len(s.Objects))
	for _, o := range s.Objects {
		if o.ID == "" {
			return fmt.Errorf("scene %q: object with empty id", s.ID)
		}
		if _, dup := objs[o.ID]; dup {
			return fmt.Errorf("scene %q: duplicate object id %q", s.ID, o.ID)
		}
		if o.Kind.Presentable() && o.Kind != ObjText && o.Media == "" {
			return fmt.Errorf("scene %q: %v object %q has no media reference", s.ID, o.Kind, o.ID)
		}
		if o.Kind == ObjButton && o.Text == "" {
			return fmt.Errorf("scene %q: button %q has no label", s.ID, o.ID)
		}
		if o.Duration < 0 {
			return fmt.Errorf("scene %q: object %q has negative duration", s.ID, o.ID)
		}
		objs[o.ID] = o
	}
	placed := make(map[string]bool, len(s.Timeline))
	for _, p := range s.Timeline {
		if _, ok := objs[p.Object]; !ok {
			return fmt.Errorf("scene %q: timeline places unknown object %q", s.ID, p.Object)
		}
		if placed[p.Object] {
			return fmt.Errorf("scene %q: object %q placed twice", s.ID, p.Object)
		}
		placed[p.Object] = true
		if p.Kind != PlaceAt {
			if _, ok := objs[p.Ref]; !ok {
				return fmt.Errorf("scene %q: object %q placed relative to unknown %q", s.ID, p.Object, p.Ref)
			}
			if p.Ref == p.Object {
				return fmt.Errorf("scene %q: object %q placed relative to itself", s.ID, p.Object)
			}
		}
		if p.Offset < 0 {
			return fmt.Errorf("scene %q: object %q has negative placement offset", s.ID, p.Object)
		}
	}
	for i, b := range s.Behaviors {
		if len(b.Conditions) == 0 {
			return fmt.Errorf("scene %q: behavior %d has no conditions", s.ID, i)
		}
		if len(b.Actions) == 0 {
			return fmt.Errorf("scene %q: behavior %d has no actions", s.ID, i)
		}
		for _, c := range b.Conditions {
			if _, ok := objs[c.Object]; !ok {
				return fmt.Errorf("scene %q: behavior %d watches unknown object %q", s.ID, i, c.Object)
			}
		}
		for _, a := range b.Actions {
			if len(a.Targets) == 0 {
				return fmt.Errorf("scene %q: behavior %d action %v has no targets", s.ID, i, a.Verb)
			}
			for _, tgt := range a.Targets {
				if a.Verb == BGoto {
					if !sceneIDs[tgt] {
						return fmt.Errorf("scene %q: behavior %d goto unknown scene %q", s.ID, i, tgt)
					}
				} else if _, ok := objs[tgt]; !ok {
					return fmt.Errorf("scene %q: behavior %d action %v targets unknown object %q", s.ID, i, a.Verb, tgt)
				}
			}
		}
	}
	return nil
}
