package lockcheck

import (
	"testing"

	"mits/internal/lint"
)

func TestLockcheck(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
