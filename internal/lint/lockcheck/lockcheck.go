// Package lockcheck flags methods of mutex-guarded structs that touch
// shared fields without holding the lock.
//
// A struct is "guarded" when it has a field of type sync.Mutex or
// sync.RWMutex. Within each method body (function literals are
// analyzed as separate bodies, since they usually run on other
// goroutines), an access to a guarded field is an error unless
//
//   - a receiver.mu.Lock() / RLock() call appears earlier in the same
//     body (defer-Unlock idiom is therefore accepted),
//   - the field is the mutex itself or another sync.* primitive
//     (WaitGroups are their own synchronization domain),
//   - the field is immutable — never reassigned, index-assigned,
//     incremented or address-taken anywhere in the package, i.e. set
//     only at construction, or
//   - the method name ends in "Locked" (the caller-holds-lock helper
//     convention), or the declaration carries //mits:nolock.
//
// The check is a per-body source-order heuristic, not a full
// happens-before analysis: it accepts an access after an early Unlock
// and cannot see locks held by callers. The "Locked" suffix and
// //mits:nolock escape hatch cover exactly those cases — visibly.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mits/internal/lint"
)

// Analyzer is the lockcheck pass.
var Analyzer = &lint.Analyzer{
	Name: "lockcheck",
	Doc:  "report unguarded accesses to fields of mutex-protected structs",
	Run:  run,
}

// guardedStruct is one struct type with a mutex field.
type guardedStruct struct {
	named   *types.Named
	fields  map[*types.Var]bool // all direct fields
	mutexes map[*types.Var]bool // the sync.Mutex / sync.RWMutex fields
	mutable map[*types.Var]bool // fields written outside construction
}

func run(pass *lint.Pass) error {
	guarded := findGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	markMutable(pass, guarded)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			g := receiverStruct(pass, fd, guarded)
			if g == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") || pass.FuncAllowed(fd) {
				continue
			}
			recvObj := receiverObj(pass, fd)
			if recvObj == nil {
				continue
			}
			for _, body := range splitBodies(fd.Body) {
				checkBody(pass, fd, body, recvObj, g)
			}
		}
	}
	return nil
}

// findGuarded collects the package's structs that carry a mutex field.
func findGuarded(pass *lint.Pass) map[*types.Named]*guardedStruct {
	out := make(map[*types.Named]*guardedStruct)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		g := &guardedStruct{
			named:   named,
			fields:  make(map[*types.Var]bool),
			mutexes: make(map[*types.Var]bool),
			mutable: make(map[*types.Var]bool),
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			g.fields[fld] = true
			if isSyncType(fld.Type(), "Mutex") || isSyncType(fld.Type(), "RWMutex") {
				g.mutexes[fld] = true
			}
		}
		if len(g.mutexes) > 0 {
			out[named] = g
		}
	}
	return out
}

// isSyncType reports whether t is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isAnySyncType reports whether t lives in package sync (Mutex,
// WaitGroup, Once, ...): such fields synchronize themselves.
func isAnySyncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// markMutable scans the whole package for writes through guarded
// fields: direct assignment, assignment through an index or nested
// selector, ++/--, and address-taking all make a field "mutable".
// Fields only ever set in composite literals (constructors) stay
// immutable and may be read without the lock.
func markMutable(pass *lint.Pass, guarded map[*types.Named]*guardedStruct) {
	fieldOwners := make(map[*types.Var]*guardedStruct)
	for _, g := range guarded {
		for fld := range g.fields {
			fieldOwners[fld] = g
		}
	}
	markExpr := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			if fld, ok := s.Obj().(*types.Var); ok {
				if g := fieldOwners[fld]; g != nil {
					g.mutable[fld] = true
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					markExpr(lhs)
				}
			case *ast.IncDecStmt:
				markExpr(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					markExpr(n.X)
				}
			}
			return true
		})
	}
}

// receiverStruct resolves a method's receiver to a guarded struct.
func receiverStruct(pass *lint.Pass, fd *ast.FuncDecl, guarded map[*types.Named]*guardedStruct) *guardedStruct {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return guarded[named]
}

func receiverObj(pass *lint.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// splitBodies returns the method body plus each nested function
// literal body as independent analysis units.
func splitBodies(body *ast.BlockStmt) []ast.Node {
	out := []ast.Node{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, fl.Body)
		}
		return true
	})
	return out
}

// inspectShallow walks root without descending into nested function
// literals (they are separate bodies).
func inspectShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return fn(n)
	})
}

func checkBody(pass *lint.Pass, fd *ast.FuncDecl, body ast.Node, recvObj types.Object, g *guardedStruct) {
	firstLock := firstLockPos(pass, body, recvObj, g)
	reported := make(map[*types.Var]bool)
	inspectShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[ident] != recvObj {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		fld, ok := s.Obj().(*types.Var)
		if !ok || !g.fields[fld] {
			return true
		}
		if g.mutexes[fld] || isAnySyncType(fld.Type()) {
			return true
		}
		if !g.mutable[fld] {
			return true // set only at construction: immutable, lock-free reads fine
		}
		if firstLock.IsValid() && sel.Pos() > firstLock {
			return true
		}
		if !reported[fld] {
			reported[fld] = true
			pass.Reportf(sel.Pos(), "%s.%s accesses %s.%s without holding the mutex (no Lock/RLock earlier in this body; suffix the helper with Locked or annotate //mits:nolock if the caller holds it)",
				g.named.Obj().Name(), fd.Name.Name, ident.Name, fld.Name())
		}
		return true
	})
}

// firstLockPos finds the earliest receiver.mu.Lock()/RLock() call in
// the body, token.NoPos when absent.
func firstLockPos(pass *lint.Pass, body ast.Node, recvObj types.Object, g *guardedStruct) token.Pos {
	first := token.NoPos
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := inner.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[ident] != recvObj {
			return true
		}
		s := pass.TypesInfo.Selections[inner]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if fld, ok := s.Obj().(*types.Var); ok && g.mutexes[fld] {
			if !first.IsValid() || call.Pos() < first {
				first = call.Pos()
			}
		}
		return true
	})
	return first
}
