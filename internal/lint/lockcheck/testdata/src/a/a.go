// Package a exercises lockcheck: flagged unguarded accesses and every
// accepted pattern.
package a

import "sync"

// Counter is a guarded struct: it has a mutex plus shared state.
type Counter struct {
	name string // set only at construction → immutable, lock-free reads OK

	mu    sync.Mutex
	wg    sync.WaitGroup
	n     int
	items map[string]int
}

// NewCounter constructs; composite-literal initialization does not make
// fields mutable.
func NewCounter(name string) *Counter {
	return &Counter{name: name, items: make(map[string]int)}
}

// Good locks before touching fields.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// Bad touches n without the lock.
func (c *Counter) Bad() int {
	return c.n // want `Counter.Bad accesses c.n without holding the mutex`
}

// BadWrite writes through a map field without the lock.
func (c *Counter) BadWrite(k string) {
	c.items[k]++ // want `Counter.BadWrite accesses c.items without holding the mutex`
}

// EarlyRead reads a field before the lock is taken: still a bug.
func (c *Counter) EarlyRead() int {
	v := c.n // want `Counter.EarlyRead accesses c.n without holding the mutex`
	c.mu.Lock()
	defer c.mu.Unlock()
	return v + c.n
}

// Name reads an immutable field: no lock needed, no diagnostic.
func (c *Counter) Name() string { return c.name }

// bumpLocked follows the caller-holds-lock convention: exempt.
func (c *Counter) bumpLocked() { c.n++ }

// Waiter uses only the WaitGroup: sync fields synchronize themselves.
func (c *Counter) Waiter() { c.wg.Wait() }

//mits:nolock single-goroutine setup phase, documented exception
func (c *Counter) Seed(v int) { c.n = v }

// Spawn shows closures are separate bodies: the goroutine locks for
// itself, the outer body never touches shared state.
func (c *Counter) Spawn() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}

// SpawnBad's closure touches state with no lock anywhere in the
// closure body, even though the outer body locked first.
func (c *Counter) SpawnBad() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `Counter.SpawnBad accesses c.n without holding the mutex`
	}()
}

// RW is guarded by a RWMutex; RLock counts as holding the lock.
type RW struct {
	mu sync.RWMutex
	v  int
}

// Read is clean under RLock.
func (r *RW) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

// Set is clean under Lock.
func (r *RW) Set(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// Peek is flagged: no lock at all.
func (r *RW) Peek() int {
	return r.v // want `RW.Peek accesses r.v without holding the mutex`
}

// Plain has no mutex: never checked.
type Plain struct{ v int }

// Get is unguarded by design; Plain is not a guarded struct.
func (p *Plain) Get() int { return p.v }
