package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func diagAt(analyzer, file, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: 10, Column: 2},
		Message:  msg,
	}
}

// TestBaselineFilter covers the three fates of an entry: it suppresses
// a live finding, it goes stale when the finding disappears, and it is
// invalidated outright when its file is renamed away — even if an
// identical message now fires in another file.
func TestBaselineFilter(t *testing.T) {
	t.Chdir(t.TempDir())
	if err := os.MkdirAll("pkg", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"pkg/live.go", "pkg/fixed.go", "pkg/renamed.go"} {
		if err := os.WriteFile(f, []byte("package pkg\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	b := &Baseline{Findings: []BaselineEntry{
		{Analyzer: "lockcheck", File: "pkg/live.go", Message: "field hits guarded by mu"},
		{Analyzer: "errdrop", File: "pkg/fixed.go", Message: "error discarded"},
		{Analyzer: "goleak", File: "pkg/old.go", Message: "goroutine leak"},
	}}

	diags := []Diagnostic{
		diagAt("lockcheck", "pkg/live.go", "field hits guarded by mu"),
		// Same analyzer+message as the pkg/old.go entry, but in a file
		// that exists: the dead entry must not suppress it.
		diagAt("goleak", "pkg/renamed.go", "goroutine leak"),
	}

	kept, suppressed, stale := b.Filter(diags)
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	if len(kept) != 1 || kept[0].Pos.Filename != "pkg/renamed.go" {
		t.Errorf("kept = %v, want the pkg/renamed.go goleak finding", kept)
	}
	if len(stale) != 2 {
		t.Fatalf("stale = %v, want 2 entries", stale)
	}
	byFile := map[string]StaleEntry{}
	for _, s := range stale {
		byFile[s.File] = s
	}
	if s, ok := byFile["pkg/fixed.go"]; !ok || s.Reason != StaleUnmatched {
		t.Errorf("pkg/fixed.go: got %+v, want StaleUnmatched", s)
	}
	if s, ok := byFile["pkg/old.go"]; !ok || s.Reason != StaleFileGone {
		t.Errorf("pkg/old.go: got %+v, want StaleFileGone", s)
	}
}

// TestBaselineRoundTrip: save, load, and filter back to empty — plus
// the missing-file and duplicate-collapse contracts.
func TestBaselineRoundTrip(t *testing.T) {
	t.Chdir(t.TempDir())
	if err := os.WriteFile("a.go", []byte("package a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		diagAt("sleepless", "a.go", "time.Sleep in non-test code"),
		diagAt("sleepless", "a.go", "time.Sleep in non-test code"), // dup collapses
	}
	path := filepath.Join("sub", "does", "not", "matter.json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SaveBaseline(path, diags); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 1 {
		t.Fatalf("round-tripped findings = %v, want 1 entry", b.Findings)
	}
	kept, suppressed, stale := b.Filter(diags)
	if len(kept) != 0 || suppressed != 2 || len(stale) != 0 {
		t.Errorf("filter after round-trip: kept=%d suppressed=%d stale=%d, want 0/2/0", len(kept), suppressed, len(stale))
	}

	missing, err := LoadBaseline("no-such-file.json")
	if err != nil {
		t.Fatalf("missing baseline should be empty, not error: %v", err)
	}
	if len(missing.Findings) != 0 {
		t.Errorf("missing baseline has %d findings", len(missing.Findings))
	}
}
