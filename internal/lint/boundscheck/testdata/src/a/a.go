// Package a exercises boundscheck: guarded and unguarded []byte
// indexing.
package a

// Unguarded reads a parameter with no length check.
func Unguarded(data []byte) byte {
	return data[0] // want `index into data is not dominated by a len\(data\) guard`
}

// UnguardedSlice re-slices a parameter with no length check.
func UnguardedSlice(data []byte, off int) []byte {
	return data[off:] // want `index into data is not dominated by a len\(data\) guard`
}

// UnguardedLater checks the wrong value.
func UnguardedLater(a, b []byte) byte {
	if len(a) < 4 {
		return 0
	}
	return b[3] // want `index into b is not dominated by a len\(b\) guard`
}

// Guarded has the early-return guard idiom.
func Guarded(data []byte) byte {
	if len(data) < 4 {
		return 0
	}
	return data[3]
}

// GuardedIn checks inside the condition.
func GuardedIn(data []byte) byte {
	if len(data) > 2 {
		return data[2]
	}
	return 0
}

// GuardedLoop indexes under a len-bounded loop condition.
func GuardedLoop(data []byte) (s byte) {
	for i := 0; i < len(data); i++ {
		s += data[i]
	}
	return
}

// GuardedRange indexes under a range.
func GuardedRange(data []byte) (s byte) {
	for i := range data {
		s += data[i]
	}
	return
}

// GuardedAlias checks through n := len(data).
func GuardedAlias(data []byte) byte {
	n := len(data)
	if n < 8 {
		return 0
	}
	return data[7]
}

// GuardedSwitch checks in a switch condition.
func GuardedSwitch(data []byte) byte {
	switch {
	case len(data) > 1:
		return data[1]
	}
	return 0
}

// Local indexing of a locally-sized buffer is trusted.
func Local() byte {
	buf := make([]byte, 16)
	return buf[8]
}

// TailSlice is self-guarded: the index mentions len(data).
func TailSlice(data []byte) []byte {
	return data[len(data)-1:]
}

// FullSlice cannot panic.
func FullSlice(data []byte) []byte {
	return data[0:]
}

type frame struct {
	buf []byte
}

// FieldUnguarded indexes a field with no check.
func (f *frame) FieldUnguarded() byte {
	return f.buf[0] // want `index into f.buf is not dominated by a len\(f.buf\) guard`
}

// FieldGuarded carries the guard.
func (f *frame) FieldGuarded() byte {
	if len(f.buf) == 0 {
		return 0
	}
	return f.buf[0]
}

// Allowed documents a caller-side invariant.
func Allowed(data []byte) byte {
	return data[0] //mits:allow boundscheck caller slices to exactly 4 bytes
}
