package boundscheck

import (
	"testing"

	"mits/internal/lint"
)

func TestBoundscheck(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
