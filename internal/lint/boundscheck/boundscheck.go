// Package boundscheck flags []byte indexing in decode paths that no
// length guard dominates.
//
// The byte-level decoders — transport frames, AAL5 trailers, the MHEG
// binary codec — are the code that hostile or truncated input reaches
// first, and an unguarded data[off] there turns a short frame into a
// panic that takes the whole site down. The analyzer runs the lint
// reaching-guard analysis over every function and reports an index or
// slice expression on a []byte value when
//
//   - the value is externally sized — a function parameter or a struct
//     field (locals built with make/append/literals in the same
//     function are trusted to be sized by their construction), and
//   - no guard mentioning len(x) (directly or through an alias
//     n := len(x)) dominates or precedes the expression: an enclosing
//     if/for/switch condition, a range over x, a terminating guard
//     like `if len(x) < 8 { return }`, or a clamping one like
//     `if end > len(x) { end = len(x) }`, and
//   - the expression's own indices do not mention len(x) (x[len(x)-1]
//     style self-guards are accepted as deliberate).
//
// The analysis is per-function: a helper whose caller checks the
// length must either take the checked slice re-sliced to size, carry
// its own guard, or annotate //mits:allow boundscheck with the
// caller-side invariant.
package boundscheck

import (
	"go/ast"
	"go/types"

	"mits/internal/lint"
)

// Analyzer is the boundscheck pass.
var Analyzer = &lint.Analyzer{
	Name: "boundscheck",
	Doc:  "report []byte indexing in decode paths not dominated by a length guard",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncAllowed(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	guards := lint.NewGuards(pass, fd.Body)
	locals := locallySized(pass, fd)
	params := paramObjs(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var base ast.Expr
		var indices []ast.Expr
		switch e := n.(type) {
		case *ast.IndexExpr:
			base, indices = e.X, []ast.Expr{e.Index}
		case *ast.SliceExpr:
			base = e.X
			for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
				if ix != nil {
					indices = append(indices, ix)
				}
			}
		default:
			return true
		}
		if !isByteSlice(pass.TypesInfo.TypeOf(base)) {
			return true
		}
		obj := pass.Referent(base)
		if obj == nil || locals[obj] || !externallySized(obj, params) {
			return true
		}
		if guards.Guarded(n, obj) {
			return true
		}
		if _, isSlice := n.(*ast.SliceExpr); isSlice && allConstZero(pass, indices) {
			return true // x[:], x[0:], x[:0] cannot panic
		}
		if selfGuarded(pass, indices, obj) {
			return true
		}
		pass.Reportf(n.Pos(), "index into %s is not dominated by a len(%s) guard — add a length check or annotate //mits:allow boundscheck",
			exprString(base), exprString(base))
		return true
	})
}

// locallySized collects variables whose backing size this function
// controls: bound (anywhere in the body) to make/append/composite
// literals or conversions from string.
func locallySized(pass *lint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if sizedByConstruction(pass, as.Rhs[i]) {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func sizedByConstruction(pass *lint.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				return b.Name() == "make" || b.Name() == "append"
			}
		}
		// []byte(s) conversion: sized by the source string.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return true
		}
	}
	return false
}

// paramObjs collects the objects declared by the function's parameter
// list (the receiver indexes data it owns, so it is not included).
func paramObjs(pass *lint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// externallySized reports whether the object is data from outside the
// function: a parameter or a struct field.
func externallySized(obj types.Object, params map[types.Object]bool) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.IsField() || params[obj]
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

// allConstZero reports whether every index expression is the constant 0.
func allConstZero(pass *lint.Pass, indices []ast.Expr) bool {
	for _, ix := range indices {
		tv, ok := pass.TypesInfo.Types[ix]
		if !ok || tv.Value == nil || tv.Value.String() != "0" {
			return false
		}
	}
	return true
}

// selfGuarded accepts indices that themselves mention len(base):
// x[len(x)-8:] is a deliberate tail slice, not an oversight.
func selfGuarded(pass *lint.Pass, indices []ast.Expr, base types.Object) bool {
	for _, ix := range indices {
		found := false
		ast.Inspect(ix, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "len" {
				return true
			}
			if pass.Referent(call.Args[0]) == base {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "value"
	}
}
