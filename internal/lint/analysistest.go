package lint

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunTest mirrors x/tools' analysistest.Run: it loads the package
// directories under testdataDir/src, runs the analyzer over the
// pattern-named packages, and matches every diagnostic against the
// `// want "regexp"` comments in the sources. Each want comment
// expects one diagnostic on its own line; several quoted regexps on
// one comment expect several diagnostics. Lines with diagnostics but
// no matching want, and wants with no matching diagnostic, fail the
// test.
func RunTest(t *testing.T, testdataDir string, a *Analyzer, pkgdirs ...string) {
	t.Helper()
	patterns := make([]string, 0, len(pkgdirs))
	for _, d := range pkgdirs {
		patterns = append(patterns, "./src/"+d)
	}
	pkgs, err := Load(testdataDir, patterns...)
	if err != nil {
		t.Fatalf("load testdata: %v", err)
	}
	// One module over all pattern-named packages, so interprocedural
	// analyzers see cross-package testdata the way mitslint sees the
	// real tree.
	var roots []*Package
	for _, pkg := range pkgs {
		if pkg.Root {
			roots = append(roots, pkg)
		}
	}
	mod := NewModule(roots)
	ran := false
	for _, pkg := range pkgs {
		if !pkg.Root {
			continue
		}
		ran = true
		for _, te := range pkg.TypeErrors {
			t.Errorf("testdata package %s has type error: %v", pkg.ImportPath, te)
		}
		diags, err := RunWithModule(a, pkg, mod)
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		checkWants(t, pkg, diags)
	}
	if !ran {
		t.Fatalf("no packages loaded for %v in %s", pkgdirs, testdataDir)
	}
}

type want struct {
	pos token.Position
	re  *regexp.Regexp
	hit bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitQuoted(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{pos: pos, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.pos.Filename != d.Pos.Filename || w.pos.Line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.pos.Filename, w.pos.Line, w.re)
		}
	}
}

// splitQuoted extracts the double- or back-quoted strings of a want
// comment tail, e.g. `"foo.*" "bar"` → [foo.*, bar].
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return out
			}
			if uq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, uq)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return out
		}
	}
	return out
}
