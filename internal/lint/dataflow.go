// Dataflow layer: the shared package-local analyses the deeper
// analyzers (goleak, closecheck, boundscheck, and the concurrency
// suite chanwait/atomicmix/poolcheck/deadlinecheck) build on. Four
// pieces:
//
//   - CallGraph — a static, package-local call graph over function
//     declarations, with transitive body reachability. `go f()` and
//     `go func(){...}()` launches are first-class: a GoLaunch carries
//     the launched callee, every package-local body the goroutine can
//     reach, and the values that flow into it (receiver, arguments,
//     captured free variables) so an analyzer can ask "who else in
//     this package touches what this goroutine runs on?".
//
//   - Parents — an AST parent map, so expression-level analyses can
//     classify how a value is used (returned, stored, passed on).
//
//   - Guards — a reaching length-guard analysis for slice indexing: a
//     lexical walk that tracks, statement by statement, which values
//     have had `len(x)` examined by a dominating or preceding condition
//     (if / for condition, switch case, range loop), with alias
//     tracking for `n := len(x)`.
//
//   - Conc — the concurrency-protocol facts: every channel operation
//     in the package (send, receive, close, range; plain or inside a
//     select) resolved to the channel's variable object, every
//     variable whose address reaches a sync/atomic function, and
//     classification of sync.Pool Get/Put calls. These are the raw
//     material the protocol analyzers reason over: "who can complete
//     this channel", "who touches this field outside the atomic
//     discipline", "where does this pooled buffer go after Put".
//
// Everything here is deliberately package-local and flow-insensitive
// beyond lexical dominance — the same trade the per-function analyzers
// make: cheap, deterministic, and wrong only in the direction of
// asking for an //mits:allow with a justification.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ---- parent map ----

// Parents maps every node under root to its enclosing node. Use it to
// classify the syntactic context of an identifier use.
func Parents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// ---- referent objects ----

// Referent resolves an expression to the variable-like object it
// denotes: an identifier to its *types.Var / *types.PkgName / etc., a
// field selector to the field's *types.Var (so r.buf in any method of
// the same type resolves to one object). Returns nil for everything
// else (calls, literals, index expressions).
func (p *Pass) Referent(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := p.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return p.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		if s := p.TypesInfo.Selections[e]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		// Package-qualified name (pkg.Var).
		if obj := p.TypesInfo.Uses[e.Sel]; obj != nil {
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
		}
	}
	return nil
}

// HasMethod reports whether t's method set (taking the address if
// needed) contains a niladic method with one of the given names.
func HasMethod(t types.Type, names ...string) bool {
	for _, name := range names {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if fn, ok := obj.(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Params().Len() == 0 {
				return true
			}
		}
	}
	return false
}

// ---- call graph ----

// FuncInfo is one function or method declaration in the package.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
}

// GoLaunch is one `go` statement, resolved.
type GoLaunch struct {
	Stmt   *ast.GoStmt
	Callee *types.Func // statically-resolved launched function, nil for func literals and dynamic calls
	// Bodies holds every package-local body the goroutine can execute:
	// the launched func literal or declaration body, plus the bodies of
	// all package-local functions transitively reachable from it.
	Bodies []ast.Node
	// Inflows are the values visible to the goroutine at launch: the
	// receiver and arguments of the launched call, plus (for literals)
	// the free variables the closure captures. These are what escape
	// into the goroutine — the handles an owner must use to stop it.
	Inflows []types.Object
}

// CallGraph is a static, package-local call graph.
type CallGraph struct {
	pass  *Pass
	funcs map[*types.Func]*FuncInfo
}

// NewCallGraph builds the call graph for the pass's package.
func NewCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{pass: pass, funcs: make(map[*types.Func]*FuncInfo)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.funcs[obj] = &FuncInfo{Obj: obj, Decl: fd}
			}
		}
	}
	return g
}

// Funcs returns the package's function declarations.
func (g *CallGraph) Funcs() map[*types.Func]*FuncInfo { return g.funcs }

// Callee statically resolves a call expression to a function object
// (package-local or not), nil when dynamic.
func (g *CallGraph) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := g.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// ReachableBodies returns root plus the body of every package-local
// function transitively reachable from it through static calls. Func
// literals nested in a body are walked as part of it (they may run on
// the same goroutine or a child of it — either way their effects are
// reachable).
func (g *CallGraph) ReachableBodies(root ast.Node) []ast.Node {
	seen := make(map[ast.Node]bool)
	var out []ast.Node
	var visit func(body ast.Node)
	visit = func(body ast.Node) {
		if body == nil || seen[body] {
			return
		}
		seen[body] = true
		out = append(out, body)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := g.Callee(call); fn != nil {
				if info := g.funcs[fn]; info != nil {
					visit(info.Decl.Body)
				}
			}
			return true
		})
	}
	visit(root)
	return out
}

// Launches finds every `go` statement in the package and resolves its
// reachable bodies and inflowing values.
func (g *CallGraph) Launches() []GoLaunch {
	var out []GoLaunch
	for _, f := range g.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			out = append(out, g.resolveLaunch(gs))
			return true
		})
	}
	return out
}

func (g *CallGraph) resolveLaunch(gs *ast.GoStmt) GoLaunch {
	l := GoLaunch{Stmt: gs}
	call := gs.Call
	// Arguments flow into the goroutine whatever the callee is.
	for _, arg := range call.Args {
		if obj := g.pass.Referent(arg); obj != nil {
			l.Inflows = append(l.Inflows, obj)
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		l.Bodies = g.ReachableBodies(fun.Body)
		// Captured free variables: identifiers used in the literal whose
		// declaration is outside it.
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := g.pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || v.Pos() == token.NoPos {
				return true
			}
			if v.Pos() < fun.Pos() || v.Pos() > fun.End() {
				l.Inflows = append(l.Inflows, v)
			}
			return true
		})
	default:
		if fn := g.Callee(call); fn != nil {
			l.Callee = fn
			if info := g.funcs[fn]; info != nil {
				l.Bodies = g.ReachableBodies(info.Decl.Body)
			}
		}
		// Method launch: the receiver flows in too.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if obj := g.pass.Referent(sel.X); obj != nil {
				l.Inflows = append(l.Inflows, obj)
			}
		}
		_ = fun
	}
	return l
}

// ---- reaching length guards ----

// Guards answers, for a function body, whether a given use of a value
// is dominated by a length guard on that value: an if / for condition
// or switch case mentioning len(x) (directly or through an alias
// n := len(x)), a range loop over x, or an earlier if condition in the
// same flow — both the terminating `if len(x) < 8 { return }` and the
// clamping `if end > len(x) { end = len(x) }` count. The analysis is
// lexical: facts flow into nested blocks and forward past if
// statements, and are dropped when a loop or switch body ends.
type Guards struct {
	pass *Pass
	// guardedAt records, for every expression position asked about,
	// the set of objects with a reaching guard.
	facts map[ast.Node]map[types.Object]bool
	// aliases maps n → x for n := len(x) assignments (function-wide;
	// re-binding an alias is rare enough to ignore).
	aliases map[types.Object]types.Object
}

// NewGuards analyzes one function body.
func NewGuards(pass *Pass, body *ast.BlockStmt) *Guards {
	g := &Guards{
		pass:    pass,
		facts:   make(map[ast.Node]map[types.Object]bool),
		aliases: make(map[types.Object]types.Object),
	}
	g.collectAliases(body)
	g.walkBlock(body.List, make(map[types.Object]bool))
	return g
}

// Guarded reports whether a reaching length guard covers obj at node n
// (n must be a node the walk recorded — any expression inside a
// statement of the analyzed body).
func (g *Guards) Guarded(n ast.Node, obj types.Object) bool {
	return g.facts[n][obj]
}

// collectAliases records n := len(x) bindings.
func (g *Guards) collectAliases(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			lhs := g.pass.TypesInfo.Defs[id]
			if lhs == nil {
				lhs = g.pass.TypesInfo.Uses[id]
			}
			if lhs == nil {
				continue
			}
			if base := g.lenArg(as.Rhs[i]); base != nil {
				g.aliases[lhs] = base
			}
		}
		return true
	})
}

// lenArg returns the referent of x when e is exactly len(x).
func (g *Guards) lenArg(e ast.Expr) types.Object {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return nil
	}
	if b, ok := g.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "len" {
		return nil
	}
	return g.pass.Referent(call.Args[0])
}

// lenMentions collects every object whose length the expression
// examines: len(x) calls and identifiers aliased to one.
func (g *Guards) lenMentions(e ast.Expr, into map[types.Object]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if base := g.lenArg(expr); base != nil {
			into[base] = true
		}
		if id, ok := expr.(*ast.Ident); ok {
			if obj := g.pass.TypesInfo.Uses[id]; obj != nil {
				if base, ok := g.aliases[obj]; ok {
					into[base] = true
				}
			}
		}
		return true
	})
}

func cloneFacts(in map[types.Object]bool) map[types.Object]bool {
	out := make(map[types.Object]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// record stamps the current facts onto every expression node of stmt
// (excluding nested statements, which the walk visits with their own
// facts).
func (g *Guards) recordExprs(n ast.Node, facts map[types.Object]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return true
		}
		if _, ok := c.(ast.Expr); ok {
			g.facts[c] = facts
		}
		return true
	})
}

// walkBlock walks statements in order, threading the fact set.
func (g *Guards) walkBlock(stmts []ast.Stmt, facts map[types.Object]bool) {
	for _, s := range stmts {
		facts = g.walkStmt(s, facts)
	}
}

// walkStmt records facts for s's expressions, descends into nested
// blocks with extended facts, and returns the facts holding after s.
func (g *Guards) walkStmt(s ast.Stmt, facts map[types.Object]bool) map[types.Object]bool {
	switch s := s.(type) {
	case *ast.IfStmt:
		inner := facts
		if s.Init != nil {
			inner = g.walkStmt(s.Init, inner)
		}
		g.recordExprs(s.Cond, inner)
		condFacts := cloneFacts(inner)
		g.lenMentions(s.Cond, condFacts)
		g.walkBlock(s.Body.List, condFacts)
		switch el := s.Else.(type) {
		case *ast.BlockStmt:
			g.walkBlock(el.List, condFacts)
		case *ast.IfStmt:
			g.walkStmt(el, condFacts)
		}
		// The condition's length examination keeps counting afterwards —
		// both the terminating guard `if len(b) < 8 { return }` and the
		// clamping guard `if end >= len(b) { end = len(b) }` establish
		// that the code below runs with len(b) examined.
		return condFacts
	case *ast.ForStmt:
		inner := facts
		if s.Init != nil {
			inner = g.walkStmt(s.Init, inner)
		}
		g.recordExprs(s.Cond, inner)
		condFacts := cloneFacts(inner)
		g.lenMentions(s.Cond, condFacts)
		if s.Post != nil {
			g.walkStmt(s.Post, condFacts)
		}
		g.walkBlock(s.Body.List, condFacts)
		return facts
	case *ast.RangeStmt:
		g.recordExprs(s.X, facts)
		bodyFacts := cloneFacts(facts)
		// for i := range x dominates x[i]; treat a range over x as a
		// length examination of x.
		if obj := g.pass.Referent(s.X); obj != nil {
			bodyFacts[obj] = true
		}
		g.lenMentions(s.X, bodyFacts)
		g.walkBlock(s.Body.List, bodyFacts)
		return facts
	case *ast.SwitchStmt:
		inner := facts
		if s.Init != nil {
			inner = g.walkStmt(s.Init, inner)
		}
		g.recordExprs(s.Tag, inner)
		tagFacts := cloneFacts(inner)
		g.lenMentions(s.Tag, tagFacts)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			caseFacts := cloneFacts(tagFacts)
			for _, e := range cc.List {
				g.recordExprs(e, tagFacts)
				g.lenMentions(e, caseFacts)
			}
			g.walkBlock(cc.Body, caseFacts)
		}
		return inner
	case *ast.TypeSwitchStmt:
		inner := facts
		if s.Init != nil {
			inner = g.walkStmt(s.Init, inner)
		}
		g.recordExprs(s.Assign, inner)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			g.walkBlock(cc.Body, cloneFacts(inner))
		}
		return inner
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			commFacts := cloneFacts(facts)
			if cc.Comm != nil {
				commFacts = g.walkStmt(cc.Comm, commFacts)
			}
			g.walkBlock(cc.Body, commFacts)
		}
		return facts
	case *ast.BlockStmt:
		g.walkBlock(s.List, cloneFacts(facts))
		return facts
	case *ast.LabeledStmt:
		return g.walkStmt(s.Stmt, facts)
	case *ast.DeferStmt:
		// A deferred body runs last; everything established anywhere in
		// the function may or may not hold, so give it only current facts.
		g.recordExprs(s.Call, facts)
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			g.walkBlock(lit.Body.List, cloneFacts(facts))
		}
		return facts
	case *ast.GoStmt:
		g.recordExprs(s.Call, facts)
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			g.walkBlock(lit.Body.List, cloneFacts(facts))
		}
		return facts
	default:
		// Leaf statements (assign, expr, return, incdec, send, decl...):
		// record facts for their expressions, walking nested func literal
		// bodies with the current facts.
		g.recordExprs(s, facts)
		ast.Inspect(s, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				g.walkBlock(lit.Body.List, cloneFacts(facts))
				return false
			}
			return true
		})
		return facts
	}
}

// ---- concurrency-protocol facts ----

// ChanOpKind classifies one channel operation.
type ChanOpKind int

// Channel operation kinds.
const (
	ChanSend ChanOpKind = iota
	ChanRecv
	ChanClose
	ChanRange
)

func (k ChanOpKind) String() string {
	switch k {
	case ChanSend:
		return "send"
	case ChanRecv:
		return "receive"
	case ChanClose:
		return "close"
	case ChanRange:
		return "range"
	}
	return "chan-op"
}

// ChanOp is one channel operation, resolved to the channel's
// variable-like object (nil when the channel expression is a call
// result or other unresolvable form).
type ChanOp struct {
	Kind ChanOpKind
	Pos  token.Pos
	Chan ast.Expr     // the channel expression
	Obj  types.Object // Referent(Chan); nil when unresolvable

	// Select is the enclosing select statement when the operation is a
	// communication case of one; nil for plain statements. A plain send
	// or receive always blocks; a select case blocks only when the
	// select has no default (SelectDefault reports that).
	Select        *ast.SelectStmt
	SelectDefault bool
}

// Blocking reports whether the operation can park its goroutine
// indefinitely: a plain send/receive/range, or a case of a select with
// no default clause. close never blocks.
func (op ChanOp) Blocking() bool {
	if op.Kind == ChanClose {
		return false
	}
	if op.Select != nil {
		return !op.SelectDefault
	}
	return true
}

// Conc holds the package's concurrency-protocol facts.
type Conc struct {
	pass *Pass

	// Ops is every channel operation in the package, in file order.
	Ops []ChanOp

	// OpaqueChans is the set of channel objects used in some way other
	// than a direct channel operation or initialization — passed to a
	// function, stored into another structure, captured by an interface
	// conversion. A counterpart for such a channel may live outside the
	// analyzable surface, so completion reasoning must not assume the
	// package-local view is total.
	OpaqueChans map[types.Object]bool

	// AtomicUses maps each variable-like object whose address is passed
	// to a sync/atomic function to those call positions.
	AtomicUses map[types.Object][]token.Pos
}

// NewConc extracts the package's concurrency facts.
func NewConc(pass *Pass) *Conc {
	c := &Conc{
		pass:        pass,
		OpaqueChans: make(map[types.Object]bool),
		AtomicUses:  make(map[types.Object][]token.Pos),
	}
	for _, f := range pass.Files {
		c.collectFile(f)
	}
	return c
}

func (c *Conc) collectFile(f *ast.File) {
	parents := Parents(f)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			c.addOp(parents, ChanOp{Kind: ChanSend, Pos: n.Pos(), Chan: n.Chan}, n)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.addOp(parents, ChanOp{Kind: ChanRecv, Pos: n.Pos(), Chan: n.X}, n)
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					c.addOp(parents, ChanOp{Kind: ChanRange, Pos: n.Pos(), Chan: n.X}, n)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					c.addOp(parents, ChanOp{Kind: ChanClose, Pos: n.Pos(), Chan: n.Args[0]}, n)
				}
			}
			c.collectAtomic(n)
		}
		return true
	})
	// Opaque-use scan: any appearance of a channel-typed variable that
	// the op walk above (or plain initialization) does not account for.
	ast.Inspect(f, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		obj := c.pass.Referent(e)
		if obj == nil {
			return true
		}
		if t := obj.Type(); t == nil {
			return true
		} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return true
		}
		if c.chanUseAccounted(parents, e) {
			return true
		}
		c.OpaqueChans[obj] = true
		return true
	})
}

// chanUseAccounted reports whether this appearance of a channel-valued
// expression is one the protocol analysis understands: a direct channel
// operation, a len/cap inspection, an initialization (assignment LHS,
// composite-literal key, declaration), a nil comparison, or the inner
// part of a larger selector resolving to the same op.
func (c *Conc) chanUseAccounted(parents map[ast.Node]ast.Node, e ast.Expr) bool {
	parent := parents[e]
	// Unwrap parens and selector composition: for a.b.ch the idents a
	// and a.b are bases of the selector, not independent uses.
	switch p := parent.(type) {
	case *ast.ParenExpr:
		return c.chanUseAccounted(parents, p)
	case *ast.SelectorExpr:
		if p.X == e {
			return true // base of a selector; the selector itself is classified
		}
		// e is the Sel ident of a selector: classify the whole selector.
		return c.chanUseAccounted(parents, p)
	case *ast.SendStmt:
		return p.Chan == e
	case *ast.UnaryExpr:
		return p.Op == token.ARROW
	case *ast.RangeStmt:
		return p.X == e
	case *ast.CallExpr:
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "close", "len", "cap":
					return true
				}
			}
		}
		return false // passed to a function: opaque
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == e {
				return true // being (re)initialized
			}
		}
		return false // RHS of an assignment to something else: stored away
	case *ast.KeyValueExpr:
		return p.Key == e // composite-literal field name, not a value use
	case *ast.BinaryExpr:
		// nil comparison is an inspection, not an escape.
		if p.Op == token.EQL || p.Op == token.NEQ {
			return true
		}
		return false
	case *ast.ValueSpec, *ast.Field:
		return true // declaration site
	}
	return false
}

func (c *Conc) addOp(parents map[ast.Node]ast.Node, op ChanOp, at ast.Node) {
	op.Obj = c.pass.Referent(op.Chan)
	// Find an enclosing select communication clause, if any: the
	// operation must be the CommClause's comm statement (or its direct
	// expression), not buried in a case body.
	for n := at; n != nil; n = parents[n] {
		if clause, ok := n.(*ast.CommClause); ok {
			// A CommClause's parent is the select's body block, whose
			// parent is the SelectStmt itself.
			if sel, ok := parents[parents[clause]].(*ast.SelectStmt); ok && containsComm(clause, at) {
				op.Select = sel
				op.SelectDefault = selectHasDefault(sel)
			}
			break
		}
		if _, ok := n.(*ast.BlockStmt); ok {
			break // inside a case body (or any block), not the comm itself
		}
	}
	c.Ops = append(c.Ops, op)
}

// containsComm reports whether node is part of the clause's comm
// statement (as opposed to its body).
func containsComm(clause *ast.CommClause, node ast.Node) bool {
	if clause.Comm == nil {
		return false
	}
	found := false
	ast.Inspect(clause.Comm, func(n ast.Node) bool {
		if n == node {
			found = true
		}
		return !found
	})
	return found
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, s := range sel.Body.List {
		if cc, ok := s.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// collectAtomic records &x arguments of sync/atomic function calls.
func (c *Conc) collectAtomic(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	for _, arg := range call.Args {
		ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			continue
		}
		if obj := c.pass.Referent(ue.X); obj != nil {
			c.AtomicUses[obj] = append(c.AtomicUses[obj], call.Pos())
		}
	}
}

// Completers summarizes, per channel object, who can complete an
// operation on it package-wide.
type Completers struct {
	Senders   map[types.Object][]token.Pos // sends (incl. select cases)
	Receivers map[types.Object][]token.Pos // receives and ranges
	Closers   map[types.Object][]token.Pos // close calls
}

// Completers indexes the package's channel operations by object.
func (c *Conc) Completers() Completers {
	out := Completers{
		Senders:   make(map[types.Object][]token.Pos),
		Receivers: make(map[types.Object][]token.Pos),
		Closers:   make(map[types.Object][]token.Pos),
	}
	for _, op := range c.Ops {
		if op.Obj == nil {
			continue
		}
		switch op.Kind {
		case ChanSend:
			out.Senders[op.Obj] = append(out.Senders[op.Obj], op.Pos)
		case ChanRecv, ChanRange:
			out.Receivers[op.Obj] = append(out.Receivers[op.Obj], op.Pos)
		case ChanClose:
			out.Closers[op.Obj] = append(out.Closers[op.Obj], op.Pos)
		}
	}
	return out
}

// ---- sync.Pool classification ----

// IsPoolType reports whether t is sync.Pool (or a pointer to it).
func IsPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// PoolCall classifies call as a sync.Pool Get or Put: it returns the
// method name ("Get" or "Put") when the callee is a method of
// sync.Pool, "" otherwise.
func (p *Pass) PoolCall(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if name != "Get" && name != "Put" {
		return ""
	}
	if !IsPoolType(p.TypesInfo.TypeOf(sel.X)) {
		return ""
	}
	return name
}
