// Package closecheck flags acquired closeable values that are neither
// closed nor allowed to escape their creating function.
//
// The system's resources — net.Listener and net.Conn in the transport,
// file handles in the persistence layers, stats servers in obs — all
// follow the same contract: whoever creates one either closes it on
// every path or hands ownership away (returns it, stores it in a
// struct, passes it to another function). A value that does neither is
// a leak: under the ROADMAP's heavy-traffic load a leaked descriptor
// per request exhausts the process in minutes.
//
// For each call expression whose result type carries a Close method,
// bound to a local variable, the analyzer tracks every use of that
// variable through the function body (the lint parent map classifies
// the use contexts) and accepts the acquisition when any use is
//
//   - a Close/Shutdown/Stop/Hangup call on the value (deferred or not),
//   - a return of the value,
//   - the value passed as a call argument (the callee may close it),
//   - the value stored: assigned to a field, global, map/slice element
//     or another variable, placed in a composite literal, or sent on a
//     channel — ownership escapes, someone else closes it.
//
// Only acquisitions from other packages are checked (net.Listen,
// os.Create, transport.DialTCP seen from a caller): a package-local
// constructor's ownership story is its own business, and its callers
// are checked at their own call sites. Intentional leaks (process-
// lifetime resources) take //mits:allow closecheck with a reason.
package closecheck

import (
	"go/ast"
	"go/types"

	"mits/internal/lint"
)

// Analyzer is the closecheck pass.
var Analyzer = &lint.Analyzer{
	Name: "closecheck",
	Doc:  "report closeable values (files, conns, listeners) that are never closed and never escape",
	Run:  run,
}

var closeNames = []string{"Close", "Shutdown", "Stop", "Hangup"}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncAllowed(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// acquisition is one closeable value bound to a local variable.
type acquisition struct {
	obj  *types.Var
	call *ast.CallExpr
	ok   bool // closed or escaped
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	parents := lint.Parents(fd.Body)
	var acqs []*acquisition
	byObj := make(map[*types.Var]*acquisition)

	// Pass 1: find acquisitions — v := call() / v, err := call() where
	// v's type has a Close method and the callee is another package's.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isForeignCall(pass, call) {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if ok && id.Name == "_" {
				continue
			}
			if !ok {
				continue // field/index target: stored, ownership escapes
			}
			v, ok := pass.TypesInfo.Defs[id].(*types.Var)
			if !ok {
				continue // reassignment of an existing var: out of scope here
			}
			if !lint.HasMethod(v.Type(), closeNames...) || !returnsErrorOrNothing(v.Type()) {
				continue
			}
			a := &acquisition{obj: v, call: call}
			acqs = append(acqs, a)
			byObj[v] = a
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	// Pass 2: classify every use of each acquired variable.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		a := byObj[v]
		if a == nil || a.ok {
			return true
		}
		if useReleases(pass, parents, id) {
			a.ok = true
		}
		return true
	})

	for _, a := range acqs {
		if !a.ok {
			pass.Reportf(a.call.Pos(), "%s (%s) is never closed and never escapes this function — close it on every path or annotate //mits:allow closecheck",
				a.obj.Name(), types.TypeString(a.obj.Type(), types.RelativeTo(pass.Pkg)))
		}
	}
}

// isForeignCall reports whether the call statically resolves to a
// function declared outside the package being analyzed (or is a
// conversion/dynamic call, which we skip entirely by returning false
// unless it is a real call to a foreign function).
func isForeignCall(pass *lint.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() == nil || fn.Pkg() != pass.Pkg
}

// returnsErrorOrNothing checks the Close method's shape — `Close()
// error` or `Close()` — so arbitrary Close-named methods with
// parameters don't drag a type into resource tracking.
func returnsErrorOrNothing(t types.Type) bool {
	for _, name := range closeNames {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if fn, ok := obj.(*types.Func); ok {
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 0 && sig.Results().Len() <= 1 {
				return true
			}
		}
	}
	return false
}

// useReleases reports whether this use of the variable closes it or
// lets it escape.
func useReleases(pass *lint.Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	parent := parents[id]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// v.M(...) — a close call releases; any other method call is
		// just a use. v.Field reads don't release either.
		if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p {
			for _, name := range closeNames {
				if p.Sel.Name == name {
					return true
				}
			}
		}
		return false
	case *ast.CallExpr:
		// v passed as an argument (not being the callee itself).
		for _, arg := range p.Args {
			if arg == id {
				return true
			}
		}
		return false
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt:
		return true
	case *ast.KeyValueExpr:
		return p.Value == id
	case *ast.AssignStmt:
		// v on the right-hand side: stored somewhere else.
		for _, rhs := range p.Rhs {
			if rhs == id {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		// &v: address taken, anything can happen — treat as escape.
		return p.Op.String() == "&"
	}
	return false
}
