package closecheck

import (
	"testing"

	"mits/internal/lint"
)

func TestClosecheck(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
