// Package a exercises closecheck: closeable values closed, escaping,
// and leaked.
package a

import "os"

// sink models handing a resource to another owner.
func sink(f *os.File) {}

type holder struct{ f *os.File }

// Leaked acquires a file and forgets it.
func Leaked(path string) int {
	f, err := os.Open(path) // want `f \(\*os.File\) is never closed and never escapes`
	if err != nil {
		return 0
	}
	n, _ := f.Stat()
	_ = n
	return 1
}

// LeakedCreate leaks on the write side too.
func LeakedCreate(path string) {
	f, _ := os.Create(path) // want `f \(\*os.File\) is never closed and never escapes`
	f.Name()
}

// Deferred closes via defer.
func Deferred(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// ClosedOnPath closes explicitly on the error path.
func ClosedOnPath(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Returned hands ownership to the caller.
func Returned(path string) (*os.File, error) {
	f, err := os.Open(path)
	return f, err
}

// PassedOn hands ownership to another function.
func PassedOn(path string) {
	f, _ := os.Open(path)
	sink(f)
}

// Stored parks the resource in a struct; its owner closes it later.
func Stored(path string) *holder {
	f, _ := os.Open(path)
	return &holder{f: f}
}

// StoredField assigns into an existing struct.
func StoredField(h *holder, path string) {
	f, _ := os.Open(path)
	h.f = f
}

// Allowed documents a deliberate process-lifetime handle.
func Allowed(path string) {
	f, _ := os.Open(path) //mits:allow closecheck process-lifetime lock file
	f.Name()
}
