package lint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// BaselineEntry identifies one triaged finding. Line numbers are
// deliberately absent: a baseline should survive unrelated edits to
// the file, and analyzer+file+message is specific enough in practice.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is the out-of-band suppression file: findings that were
// triaged, justified in the PR that added them, and excluded from the
// failing set until fixed.
type Baseline struct {
	// Doc carries the file's purpose for human readers of the JSON.
	Doc      string          `json:"doc,omitempty"`
	Findings []BaselineEntry `json:"findings"`
}

// StaleReason says why a baseline entry no longer earns its place.
type StaleReason int

const (
	// StaleUnmatched: the file still exists but no current diagnostic
	// matches — the finding was presumably fixed, so the entry should
	// be dropped. (It can also mean the run's patterns didn't cover the
	// file's package; -ci runs therefore gate on ./... .)
	StaleUnmatched StaleReason = iota
	// StaleFileGone: the entry's file does not exist. A rename or
	// delete invalidates the entry outright — if the finding moved
	// with the code, it must be re-triaged under the new path, not
	// silently carried by a path that no longer pins anything.
	StaleFileGone
)

// StaleEntry pairs a dead baseline entry with why it is dead.
type StaleEntry struct {
	BaselineEntry
	Reason StaleReason
}

func (s StaleEntry) String() string {
	why := "nothing matches"
	if s.Reason == StaleFileGone {
		why = "file no longer exists; renames must re-triage under the new path"
	}
	return fmt.Sprintf("%s %s (%s): %s", s.Analyzer, s.File, why, s.Message)
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline, not an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return &b, nil
}

// Filter splits diags into kept and baseline-suppressed, and returns
// the entries that are stale. An entry whose file no longer exists on
// disk (relative to the working directory — the same frame diagnostic
// paths are printed in) is invalid before any matching happens: it
// suppresses nothing even if a diagnostic in some other file carries
// the identical message.
func (b *Baseline) Filter(diags []Diagnostic) (kept []Diagnostic, suppressed int, stale []StaleEntry) {
	gone := make([]bool, len(b.Findings))
	for i, e := range b.Findings {
		if _, err := os.Stat(e.File); err != nil {
			gone[i] = true
		}
	}
	matched := make([]bool, len(b.Findings))
	for _, d := range diags {
		hit := false
		for i, e := range b.Findings {
			if !gone[i] && e.Analyzer == d.Analyzer && e.File == d.Pos.Filename && e.Message == d.Message {
				matched[i] = true
				hit = true
			}
		}
		if hit {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	for i, e := range b.Findings {
		switch {
		case gone[i]:
			stale = append(stale, StaleEntry{BaselineEntry: e, Reason: StaleFileGone})
		case !matched[i]:
			stale = append(stale, StaleEntry{BaselineEntry: e, Reason: StaleUnmatched})
		}
	}
	return kept, suppressed, stale
}

// SaveBaseline writes the current findings as the new baseline.
func SaveBaseline(path string, diags []Diagnostic) error {
	b := Baseline{
		Doc: "Triaged mitslint findings suppressed from the gate. Each entry must cite its justification in the PR that added it; remove entries when the finding is fixed (mitslint warns when one goes stale, and -ci makes stale entries a hard error).",
	}
	seen := map[BaselineEntry]bool{}
	for _, d := range diags {
		e := BaselineEntry{Analyzer: d.Analyzer, File: d.Pos.Filename, Message: d.Message}
		if seen[e] {
			continue
		}
		seen[e] = true
		b.Findings = append(b.Findings, e)
	}
	if b.Findings == nil {
		b.Findings = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
