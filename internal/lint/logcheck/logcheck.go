// Package logcheck forbids raw log and stdout printing in the internal
// packages.
//
// Every MITS site logs through the structured obs logger
// (obs.Logger(component)), which stamps records with the component and
// site and respects the process log level. A raw log.Printf bypasses
// the level switch and the structured fields; a fmt.Printf to stdout
// from a library corrupts the output of tools whose stdout is the
// product (mitsgen, the exposition scrape). Commands under cmd/ own
// their stdout and are exempt; so are tests (the loader only analyzes
// non-test files). A deliberate exception takes //mits:allow logcheck
// on the line.
package logcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"mits/internal/lint"
)

// Analyzer is the logcheck pass.
var Analyzer = &lint.Analyzer{
	Name: "logcheck",
	Doc:  "forbid raw log.* and fmt.Print* output in internal packages",
	Run:  run,
}

// flagged lists the package-level print functions that bypass the
// structured logger: everything in log that writes to the default
// logger, and the fmt functions that write to stdout. fmt.Sprintf,
// fmt.Errorf and fmt.Fprintf stay legal — they build strings or write
// where the caller points them.
var flagged = map[string]map[string]bool{
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
	},
}

func run(pass *lint.Pass) error {
	if !internalPath(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (a custom *log.Logger the caller built and aimed
			// somewhere) are the caller's business; only the package-level
			// default-logger and stdout functions are flagged.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if names := flagged[fn.Pkg().Path()]; names[fn.Name()] {
				pass.Reportf(call.Pos(), "%s.%s in an internal package: log through obs.Logger, or annotate //mits:allow logcheck", fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil
}

// internalPath reports whether the import path has an "internal"
// segment — the library code the rule governs.
func internalPath(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}
