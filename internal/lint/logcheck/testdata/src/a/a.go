// Package a exercises logcheck; its import path sits under internal/,
// so the rule applies.
package a

import (
	"fmt"
	"io"
	"log"
	"os"
)

// Raw collects the flagged forms.
func Raw(err error) {
	log.Printf("request failed: %v", err) // want `log.Printf in an internal package`
	log.Println("serving")                // want `log.Println in an internal package`
	log.Fatalf("bind: %v", err)           // want `log.Fatalf in an internal package`
	fmt.Println("loaded 3 documents")     // want `fmt.Println in an internal package`
	fmt.Printf("at %d\n", 7)              // want `fmt.Printf in an internal package`
}

// Fine shows the accepted forms: building strings, writing to an
// explicit destination, and the annotation.
func Fine(w io.Writer, err error) string {
	fmt.Fprintf(w, "report: %v\n", err)
	fmt.Fprintln(os.Stderr, "fatal")
	log.New(os.Stderr, "", 0).Println("custom logger, caller's choice")
	log.Println("migration shim") //mits:allow logcheck
	return fmt.Sprintf("%v", err)
}
