package logcheck

import (
	"testing"

	"mits/internal/lint"
)

func TestLogcheck(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
