// Module: the whole-module stitching of per-package summaries into a
// cross-package call graph, with interface calls resolved to every
// in-module implementation, plus the two derived structures the
// interprocedural analyzers consume — the lock-ordering graph (with
// cycle detection) and the request-handler reachability set.
//
// A Module is built once per mitslint invocation over all root
// packages and shared read-only across analyzer runs; the derived
// graphs are computed lazily under sync.Once so package-local runs
// that never ask for them pay nothing.
package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Module is the whole-module view over a set of loaded packages.
type Module struct {
	// Sums holds one PackageSummary per analyzed package, keyed by
	// import path.
	Sums map[string]*PackageSummary

	funcs map[FuncID]*FuncSummary
	// impls maps each named in-module interface method to the FuncIDs
	// of every in-module concrete method implementing it.
	impls map[IfaceMethodID][]FuncID
	// ifaceKnob records, per named in-module interface, whether the
	// interface itself or any in-module implementation carries a
	// deadline knob (Set*Deadline*/Set*Timeout* method or a
	// time.Duration Timeout/Deadline field).
	ifaceKnob map[string]bool

	lockOnce   sync.Once
	lockEdges  []LockEdge
	lockCycles []LockCycle

	handlerOnce  sync.Once
	handlerReach map[FuncID]FuncID // reachable func → handler root
}

// NewModule summarizes pkgs and stitches the module view. Standard
// and testdata packages are skipped; pass every root package of the
// analysis for full cross-package vision.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Sums:      make(map[string]*PackageSummary),
		funcs:     make(map[FuncID]*FuncSummary),
		impls:     make(map[IfaceMethodID][]FuncID),
		ifaceKnob: make(map[string]bool),
	}
	var analyzed []*Package
	for _, pkg := range pkgs {
		if pkg.Standard || pkg.Types == nil {
			continue
		}
		analyzed = append(analyzed, pkg)
		ps := Summarize(pkg)
		m.Sums[ps.Path] = ps
		for _, fs := range ps.Funcs {
			m.funcs[fs.ID] = fs
		}
	}
	m.resolveInterfaces(analyzed)
	return m
}

// Func returns the summary for id, nil when the function is outside
// the module (or has no body).
func (m *Module) Func(id FuncID) *FuncSummary { return m.funcs[id] }

// Impls returns the in-module implementations of a named interface
// method, in deterministic order.
func (m *Module) Impls(id IfaceMethodID) []FuncID { return m.impls[id] }

// InterfaceHasDeadlineKnob reports whether the named in-module
// interface (or any in-module implementation of it) carries a
// deadline knob. Unknown interfaces report true — absence of evidence
// must not fabricate findings.
func (m *Module) InterfaceHasDeadlineKnob(iface string) bool {
	knob, ok := m.ifaceKnob[iface]
	if !ok {
		return true
	}
	return knob
}

// resolveInterfaces indexes every named interface defined in an
// analyzed package against every named concrete type in any analyzed
// package, mapping each interface method to the implementing methods.
func (m *Module) resolveInterfaces(pkgs []*Package) {
	type namedIface struct {
		id    string // pkgpath.Name
		iface *types.Interface
	}
	var ifaces []namedIface
	var concrete []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, namedIface{
					id:    pkg.Types.Path() + "." + name,
					iface: iface,
				})
			} else {
				concrete = append(concrete, named)
			}
		}
	}
	for _, ni := range ifaces {
		knob := interfaceHasKnobMethod(ni.iface)
		for _, named := range concrete {
			if !types.Implements(named, ni.iface) && !types.Implements(types.NewPointer(named), ni.iface) {
				continue
			}
			if typeCarriesDeadlineKnob(named) {
				knob = true
			}
			for i := 0; i < ni.iface.NumMethods(); i++ {
				mName := ni.iface.Method(i).Name()
				obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), mName)
				impl, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				id := IfaceMethodID(ni.id + "." + mName)
				target := FuncIDOf(impl)
				if m.funcs[target] == nil {
					continue // method promoted from outside the module
				}
				m.impls[id] = append(m.impls[id], target)
			}
		}
		m.ifaceKnob[ni.id] = knob
	}
	for id := range m.impls {
		list := m.impls[id]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	}
}

func interfaceHasKnobMethod(iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		name := iface.Method(i).Name()
		if strings.HasPrefix(name, "Set") && (strings.Contains(name, "Deadline") || strings.Contains(name, "Timeout")) {
			return true
		}
	}
	return false
}

func typeCarriesDeadlineKnob(named *types.Named) bool {
	if st, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			lower := strings.ToLower(f.Name())
			if !strings.Contains(lower, "timeout") && !strings.Contains(lower, "deadline") {
				continue
			}
			if ft, ok := f.Type().(*types.Named); ok {
				obj := ft.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration" {
					return true
				}
			}
		}
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		name := ms.At(i).Obj().Name()
		if strings.HasPrefix(name, "Set") && (strings.Contains(name, "Deadline") || strings.Contains(name, "Timeout")) {
			return true
		}
	}
	return false
}

// Targets resolves a call site to the in-module functions it can
// reach: the static callee when summarized, else every in-module
// implementation of the interface method.
func (m *Module) Targets(cs *CallSite) []FuncID {
	if cs.Callee != "" {
		if m.funcs[cs.Callee] != nil {
			return []FuncID{cs.Callee}
		}
		return nil
	}
	if cs.Iface != "" {
		return m.impls[cs.Iface]
	}
	return nil
}

// ---- lock-ordering graph ----

// LockEdge is one ordering fact: To was (reachably) acquired while
// From was held. Witness pins where, Via names the call chain when the
// acquisition is in a callee.
type LockEdge struct {
	From    LockID
	To      LockID
	Witness string // serialized position of the acquisition or initiating call
	Via     string // "f → g → h" call chain, "" for a same-body acquisition
}

// LockCycle is one potential deadlock: a cycle in the lock-ordering
// graph, canonicalized to start at the smallest LockID.
type LockCycle struct {
	Locks []LockID   // cycle order; Locks[0] is the smallest
	Edges []LockEdge // Edges[i] is Locks[i] → Locks[(i+1)%len]
}

// acqWitness is where (and through which chain) a function's
// transitive execution acquires a lock.
type acqWitness struct {
	pos string
	via string
}

// LockEdges builds (once) and returns the module-wide lock-ordering
// edges, deterministically ordered.
func (m *Module) LockEdges() []LockEdge {
	m.lockOnce.Do(m.buildLockGraph)
	return m.lockEdges
}

// LockCycles builds (once) the lock graph and returns its cycles.
func (m *Module) LockCycles() []LockCycle {
	m.lockOnce.Do(m.buildLockGraph)
	return m.lockCycles
}

func (m *Module) buildLockGraph() {
	ids := make([]FuncID, 0, len(m.funcs))
	for id := range m.funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// transitive acquisitions per function, memoized. DFS with an
	// in-progress marker: recursion (direct or mutual) contributes the
	// already-discovered part, which under-approximates fixpoints but
	// never fabricates an acquisition.
	memo := make(map[FuncID]map[LockID]acqWitness)
	inProgress := make(map[FuncID]bool)
	var transitive func(id FuncID) map[LockID]acqWitness
	transitive = func(id FuncID) map[LockID]acqWitness {
		if got, ok := memo[id]; ok {
			return got
		}
		if inProgress[id] {
			return nil
		}
		inProgress[id] = true
		defer delete(inProgress, id)
		fs := m.funcs[id]
		if fs == nil {
			return nil
		}
		out := make(map[LockID]acqWitness)
		for _, acq := range fs.Acquires {
			if _, ok := out[acq.Lock]; !ok {
				out[acq.Lock] = acqWitness{pos: acq.Pos}
			}
		}
		for i := range fs.Calls {
			cs := &fs.Calls[i]
			if cs.Async {
				continue // a spawned goroutine's locks are its own context
			}
			for _, target := range m.Targets(cs) {
				for lock, w := range transitive(target) {
					if _, ok := out[lock]; ok {
						continue
					}
					via := string(target)
					if w.via != "" {
						via = via + " → " + w.via
					}
					out[lock] = acqWitness{pos: w.pos, via: via}
				}
			}
		}
		memo[id] = out
		return out
	}

	type edgeKey struct{ from, to LockID }
	seen := make(map[edgeKey]bool)
	addEdge := func(from, to LockID, witness, via string) {
		k := edgeKey{from, to}
		if seen[k] {
			return
		}
		seen[k] = true
		m.lockEdges = append(m.lockEdges, LockEdge{From: from, To: to, Witness: witness, Via: via})
	}
	for _, id := range ids {
		fs := m.funcs[id]
		for _, acq := range fs.Acquires {
			for _, held := range acq.Held {
				addEdge(held, acq.Lock, acq.Pos, "")
			}
		}
		for i := range fs.Calls {
			cs := &fs.Calls[i]
			if cs.Async || cs.Deferred || len(cs.Held) == 0 {
				continue
			}
			for _, target := range m.Targets(cs) {
				acqs := transitive(target)
				locks := make([]LockID, 0, len(acqs))
				for lock := range acqs {
					locks = append(locks, lock)
				}
				sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
				for _, lock := range locks {
					w := acqs[lock]
					via := string(target)
					if w.via != "" {
						via = via + " → " + w.via
					}
					// Base filename only: the chain appears inside diagnostic
					// messages, and an absolute path there would make baseline
					// entries (keyed on message text) machine-specific.
					for _, held := range cs.Held {
						addEdge(held, lock, cs.Pos, via+" acquires at "+basePos(w.pos))
					}
				}
			}
		}
	}
	m.lockCycles = findCycles(m.lockEdges)
}

// basePos trims a serialized "dir/file.go:line:col" position to its
// base filename.
func basePos(pos string) string {
	if i := strings.LastIndexByte(pos, '/'); i >= 0 {
		return pos[i+1:]
	}
	return pos
}

// findCycles locates elementary cycles via SCC decomposition: inside
// each strongly connected component of ≥2 locks, one representative
// cycle is traced from the smallest lock; self-edges are their own
// cycles.
func findCycles(edges []LockEdge) []LockCycle {
	adj := make(map[LockID][]LockEdge)
	var nodes []LockID
	nodeSeen := make(map[LockID]bool)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
		for _, n := range []LockID{e.From, e.To} {
			if !nodeSeen[n] {
				nodeSeen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	// Tarjan SCC, iterative enough for our graph sizes via recursion.
	index := make(map[LockID]int)
	low := make(map[LockID]int)
	onStack := make(map[LockID]bool)
	var stack []LockID
	counter := 0
	var sccs [][]LockID
	var strongconnect func(v LockID)
	strongconnect = func(v LockID) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.To
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []LockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}

	edgeFor := func(from, to LockID) (LockEdge, bool) {
		for _, e := range adj[from] {
			if e.To == to {
				return e, true
			}
		}
		return LockEdge{}, false
	}

	var cycles []LockCycle
	for _, scc := range sccs {
		sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
		if len(scc) == 1 {
			// Self-loop: the lock is (reachably) reacquired while held —
			// an immediate deadlock for Go's non-reentrant mutexes.
			if e, ok := edgeFor(scc[0], scc[0]); ok {
				cycles = append(cycles, LockCycle{Locks: []LockID{scc[0]}, Edges: []LockEdge{e}})
			}
			continue
		}
		// Trace one representative cycle from the smallest lock: BFS
		// within the SCC back to the start.
		inSCC := make(map[LockID]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		start := scc[0]
		path := traceCycle(start, inSCC, adj)
		if path == nil {
			continue
		}
		cyc := LockCycle{Locks: path}
		ok := true
		for i := range path {
			e, found := edgeFor(path[i], path[(i+1)%len(path)])
			if !found {
				ok = false
				break
			}
			cyc.Edges = append(cyc.Edges, e)
		}
		if ok {
			cycles = append(cycles, cyc)
		}
	}
	sort.Slice(cycles, func(i, j int) bool {
		return fmt.Sprint(cycles[i].Locks) < fmt.Sprint(cycles[j].Locks)
	})
	return cycles
}

// traceCycle finds a shortest cycle from start back to start staying
// inside the SCC, returning the lock sequence (start first).
func traceCycle(start LockID, inSCC map[LockID]bool, adj map[LockID][]LockEdge) []LockID {
	type step struct {
		node LockID
		prev int
	}
	queue := []step{{node: start, prev: -1}}
	visited := map[LockID]bool{}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		next := adj[cur.node]
		// Deterministic expansion order.
		sorted := append([]LockEdge(nil), next...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].To < sorted[j].To })
		for _, e := range sorted {
			if !inSCC[e.To] {
				continue
			}
			if e.To == start && cur.node != start {
				// Reconstruct.
				var rev []LockID
				for i := qi; i != -1; i = queue[i].prev {
					rev = append(rev, queue[i].node)
				}
				out := make([]LockID, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			if visited[e.To] || e.To == start {
				continue
			}
			visited[e.To] = true
			queue = append(queue, step{node: e.To, prev: qi})
		}
	}
	return nil
}

// ---- request-handler reachability ----

// HandlerRoot returns, for a function reachable from an in-module RPC
// handler implementation (a concrete method implementing an interface
// method named Handle or HandleCtx), the root handler's FuncID; ""
// when the function is not on any request-handling chain.
func (m *Module) HandlerRoot(id FuncID) FuncID {
	m.handlerOnce.Do(m.buildHandlerReach)
	return m.handlerReach[id]
}

func (m *Module) buildHandlerReach() {
	m.handlerReach = make(map[FuncID]FuncID)
	var roots []FuncID
	rootSeen := make(map[FuncID]bool)
	implIDs := make([]IfaceMethodID, 0, len(m.impls))
	for id := range m.impls {
		implIDs = append(implIDs, id)
	}
	sort.Slice(implIDs, func(i, j int) bool { return implIDs[i] < implIDs[j] })
	for _, id := range implIDs {
		name := string(id)
		if !strings.HasSuffix(name, ".Handle") && !strings.HasSuffix(name, ".HandleCtx") {
			continue
		}
		for _, target := range m.impls[id] {
			if !rootSeen[target] {
				rootSeen[target] = true
				roots = append(roots, target)
			}
		}
	}
	for _, root := range roots {
		m.reachFrom(root, root)
	}
}

// reachFrom marks every function (and its launched goroutine bodies)
// reachable from id as belonging to root's handling chain. The first
// root to claim a function wins (roots are visited in sorted order).
func (m *Module) reachFrom(id, root FuncID) {
	if _, claimed := m.handlerReach[id]; claimed {
		return
	}
	fs := m.funcs[id]
	if fs == nil {
		return
	}
	m.handlerReach[id] = root
	for i := range fs.Calls {
		for _, target := range m.Targets(&fs.Calls[i]) {
			m.reachFrom(target, root)
		}
	}
	// Goroutine bodies launched inside a request chain are still part
	// of serving the request.
	for n := 1; ; n++ {
		sub := FuncID(fmt.Sprintf("%s#go%d", id, n))
		if m.funcs[sub] == nil {
			break
		}
		m.reachFrom(sub, root)
	}
}
