// Package lint is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) plus a package loader built on `go list` and go/types.
//
// The container this repo grows in has no module proxy access, so the
// real x/tools framework cannot be vendored; this package keeps the
// same shape — an Analyzer is a named Run function over a type-checked
// package, reporting position-tagged diagnostics — so the
// project-specific analyzers under internal/lint/... would port to
// x/tools unchanged.
//
// Suppression: a diagnostic is dropped when the flagged line (or the
// line above it) carries a `//mits:allow <name>` comment naming the
// analyzer, or the legacy `//mits:nolock` spelling for lockcheck.
// Function-level suppression (the whole body) is available to
// analyzers via Pass.FuncAllowed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg        *Package
	mod        *Module
	diags      []Diagnostic
	allowLines map[string]map[int][]string // filename → line → allowed analyzer names
}

// Module returns the whole-module view the pass runs under. Drivers
// that analyze many packages (mitslint, RunTest) share one Module
// across every pass; a bare Run falls back to a single-package module,
// which keeps package-local invocations working with package-local
// vision.
func (p *Pass) Module() *Module {
	if p.mod == nil {
		p.mod = NewModule([]*Package{p.pkg})
	}
	return p.mod
}

var allowRe = regexp.MustCompile(`//\s*mits:(nolock|allow\s+([\w,-]+))`)

// buildAllowLines indexes every //mits:allow (and //mits:nolock)
// comment by file and line. A comment suppresses its own line and the
// line directly below it, so both trailing and preceding placement
// work.
func (p *Pass) buildAllowLines() {
	p.allowLines = make(map[string]map[int][]string)
	add := func(pos token.Position, names []string) {
		byLine := p.allowLines[pos.Filename]
		if byLine == nil {
			byLine = make(map[int][]string)
			p.allowLines[pos.Filename] = byLine
		}
		byLine[pos.Line] = append(byLine[pos.Line], names...)
		byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if len(names) > 0 {
					add(p.Fset.Position(c.Pos()), names)
				}
			}
		}
	}
}

func parseAllow(comment string) []string {
	m := allowRe.FindStringSubmatch(comment)
	if m == nil {
		return nil
	}
	if m[1] == "nolock" {
		return []string{"lockcheck"}
	}
	return strings.Split(m[2], ",")
}

func (p *Pass) allowedAt(pos token.Position) bool {
	if p.allowLines == nil {
		p.buildAllowLines()
	}
	for _, name := range p.allowLines[pos.Filename][pos.Line] {
		if name == p.Analyzer.Name {
			return true
		}
	}
	return false
}

// FuncAllowed reports whether a declaration's doc comment suppresses
// this analyzer for the whole function (used by analyzers whose unit
// of reasoning is a body, not a line).
func (p *Pass) FuncAllowed(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		for _, name := range parseAllow(c.Text) {
			if name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// Reportf records a diagnostic unless an allow comment covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a diagnostic at an already-resolved position — the
// form interprocedural analyzers use, whose witnesses are serialized
// positions from another package's summary. Allow-comment suppression
// applies when the position's file belongs to this pass.
func (p *Pass) ReportAt(position token.Position, format string, args ...any) {
	if p.allowedAt(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// OwnsFile reports whether the given filename is one of this pass's
// package files — interprocedural analyzers use it to report each
// module-wide finding exactly once, in the package that owns the
// witness position.
func (p *Pass) OwnsFile(filename string) bool {
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename == filename {
			return true
		}
	}
	return false
}

// Run applies one analyzer to one loaded package with single-package
// vision (the Module, if the analyzer asks for one, covers only pkg).
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunWithModule(a, pkg, nil)
}

// RunWithModule applies one analyzer to one loaded package under a
// shared whole-module view. mod may be nil; the pass then builds a
// single-package module on first use.
func RunWithModule(a *Analyzer, pkg *Package, mod *Module) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		pkg:       pkg,
		mod:       mod,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	sortDiags(pass.diags)
	return pass.diags, nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
