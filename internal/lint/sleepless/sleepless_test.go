package sleepless

import (
	"testing"

	"mits/internal/lint"
)

func TestSleepless(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
