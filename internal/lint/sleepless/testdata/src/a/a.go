// Package a exercises sleepless.
package a

import (
	"sync"
	"time"
)

// Busy sleeps for "synchronization": flagged.
func Busy() {
	time.Sleep(10 * time.Millisecond) // want `time.Sleep in non-test code`
}

// Aliased import paths still resolve to time.Sleep.
func Aliased() {
	s := time.Sleep
	_ = s // taking the value is fine; only calls are flagged
	(time.Sleep)(time.Millisecond) // want `time.Sleep in non-test code`
}

// Allowed documents an intentional wall-clock pause.
func Allowed() {
	time.Sleep(time.Millisecond) //mits:allow sleepless rate-limit against a real device
}

// Clean synchronizes properly.
func Clean() time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
	return time.Since(start)
}
