// Package sleepless forbids time.Sleep in non-test code.
//
// MITS timing runs on the deterministic virtual clock of internal/sim
// (every experiment is reproducible, "one failure = bug"); a real
// time.Sleep smuggles wall-clock nondeterminism into simulations and
// is the classic crutch for missing synchronization in servers. Use
// sim.Clock scheduling, or channel/WaitGroup synchronization.
//
// The mitslint loader only analyzes non-test files, so _test.go code
// (where a bounded real sleep can be legitimate) is exempt by
// construction. A rare intentional production sleep takes
// //mits:allow sleepless on the line.
package sleepless

import (
	"go/ast"
	"go/types"

	"mits/internal/lint"
)

// Analyzer is the sleepless pass.
var Analyzer = &lint.Analyzer{
	Name: "sleepless",
	Doc:  "forbid time.Sleep-based synchronization outside tests",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				pass.Reportf(call.Pos(), "time.Sleep in non-test code: synchronize with the sim virtual clock or channels, or annotate //mits:allow sleepless")
			}
			return true
		})
	}
	return nil
}
