// Package ipb is the consumer side of the interprocedural meta-test
// fixtures: a second Sink implementation in a different package, and a
// goroutine launch whose body must be summarized as a synthetic #go
// function.
package ipb

import (
	"sync"

	"mits/internal/lint/testdata/src/ipa"
)

type Remote struct {
	mu sync.Mutex
	n  int
}

func (r *Remote) Put(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
}

func (r *Remote) Fetch(key string) ([]byte, error) { return nil, nil }

// Mirror launches the hub feed asynchronously; Broadcast's locks must
// not leak into Mirror's context, only into the #go1 body's.
func Mirror(h *ipa.Hub, vals []int) {
	go func() {
		for _, v := range vals {
			h.Broadcast(v)
		}
	}()
}
