// Package ipa is the producer side of the interprocedural meta-test
// fixtures: it defines the Sink seam, one local implementation, and a
// Hub that dispatches through the seam while holding its own lock —
// the facts whose serialized form must survive a cross-package round
// trip byte-for-byte.
package ipa

import (
	"context"
	"sync"
)

// Sink is the dispatch seam; ipb adds a second implementation.
type Sink interface {
	Put(v int)
	Fetch(key string) ([]byte, error)
}

type Local struct {
	mu   sync.Mutex
	vals []int
}

func (l *Local) Put(v int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.vals = append(l.vals, v)
}

func (l *Local) Fetch(key string) ([]byte, error) { return nil, nil }

type Hub struct {
	mu    sync.Mutex
	sinks []Sink
}

// Broadcast holds Hub.mu across the Sink.Put dispatch: the module
// graph must resolve the interface call to every implementation and
// draw the Hub.mu → impl.mu ordering edges.
func (h *Hub) Broadcast(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.sinks {
		s.Put(v)
	}
}

// Forward threads its ctx to the next hop; the summaries record the
// forward at each level.
func Forward(ctx context.Context, s Sink, key string) ([]byte, error) {
	return FetchWith(ctx, s, key)
}

// FetchWith receives the forwarded ctx ahead of a seam call.
func FetchWith(ctx context.Context, s Sink, key string) ([]byte, error) {
	_ = ctx
	return s.Fetch(key)
}
