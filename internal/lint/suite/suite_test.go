package suite

import (
	"os"
	"path/filepath"
	"testing"

	"mits/internal/lint"
	"mits/internal/lint/chanwait"
)

// TestSuiteWellFormed pins the conventions every analyzer in the suite
// must follow: a distinct name, a non-empty doc string, and an
// analysistest-style package next to this one — <name>/testdata/src
// with want-annotated sources and a <name>_test.go that runs them.
func TestSuiteWellFormed(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("suite is empty")
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" {
			t.Error("analyzer with empty name")
			continue
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc string", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no run function", a.Name)
		}
		pkgDir := filepath.Join("..", a.Name)
		if fi, err := os.Stat(filepath.Join(pkgDir, "testdata", "src")); err != nil || !fi.IsDir() {
			t.Errorf("analyzer %s has no testdata/src package: %v", a.Name, err)
		}
		if _, err := os.Stat(filepath.Join(pkgDir, a.Name+"_test.go")); err != nil {
			t.Errorf("analyzer %s has no %s_test.go: %v", a.Name, a.Name, err)
		}
	}
}

// TestSuiteConcurrencyAnalyzersRegistered pins the concurrency-protocol
// layer into the suite: the four analyzers built on the Conc fact
// extractor must stay registered, or mitslint silently stops guarding
// the multiplexed hot path.
func TestSuiteConcurrencyAnalyzersRegistered(t *testing.T) {
	want := []string{"chanwait", "atomicmix", "poolcheck", "deadlinecheck"}
	have := make(map[string]bool)
	for _, a := range All() {
		have[a.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("suite is missing the %s analyzer", name)
		}
	}
}

// TestChanwaitGuardsTransportEnqueue is the PR-5 sendq-hang tripwire,
// run cross-package: chanwait over the real transport package must
// stay clean. The fix it guards is the `case <-pc.done:` arm of
// TCPClient.issue's enqueue select — revert it and chanwait reports
// the select as deaf to its completion channel, failing this test
// before any stress run has to reproduce the hang. The firing shape
// itself is pinned in chanwait/testdata/src/regress.
func TestChanwaitGuardsTransportEnqueue(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/transport")
	}
	pkgs, err := lint.Load("", "mits/internal/transport")
	if err != nil {
		t.Fatalf("loading transport: %v", err)
	}
	checked := false
	for _, pkg := range pkgs {
		if pkg.ImportPath != "mits/internal/transport" {
			continue
		}
		checked = true
		diags, err := lint.Run(chanwait.Analyzer, pkg)
		if err != nil {
			t.Fatalf("chanwait over transport: %v", err)
		}
		for _, d := range diags {
			t.Errorf("chanwait finding in transport (PR-5 hang class regressed?): %s", d.String())
		}
	}
	if !checked {
		t.Fatal("mits/internal/transport not among loaded packages")
	}
}
