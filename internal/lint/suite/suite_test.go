package suite

import (
	"os"
	"path/filepath"
	"testing"

	"mits/internal/lint"
	"mits/internal/lint/chanwait"
	"mits/internal/lint/ctxflow"
	"mits/internal/lint/lockorder"
	"mits/internal/lint/poolcheck"
)

// TestSuiteWellFormed pins the conventions every analyzer in the suite
// must follow: a distinct name, a non-empty doc string, and an
// analysistest-style package next to this one — <name>/testdata/src
// with want-annotated sources and a <name>_test.go that runs them.
func TestSuiteWellFormed(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("suite is empty")
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" {
			t.Error("analyzer with empty name")
			continue
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc string", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no run function", a.Name)
		}
		pkgDir := filepath.Join("..", a.Name)
		if fi, err := os.Stat(filepath.Join(pkgDir, "testdata", "src")); err != nil || !fi.IsDir() {
			t.Errorf("analyzer %s has no testdata/src package: %v", a.Name, err)
		}
		if _, err := os.Stat(filepath.Join(pkgDir, a.Name+"_test.go")); err != nil {
			t.Errorf("analyzer %s has no %s_test.go: %v", a.Name, a.Name, err)
		}
	}
}

// TestSuiteConcurrencyAnalyzersRegistered pins the concurrency-protocol
// layer into the suite: the four analyzers built on the Conc fact
// extractor must stay registered, or mitslint silently stops guarding
// the multiplexed hot path.
func TestSuiteConcurrencyAnalyzersRegistered(t *testing.T) {
	want := []string{"chanwait", "atomicmix", "poolcheck", "deadlinecheck"}
	have := make(map[string]bool)
	for _, a := range All() {
		have[a.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("suite is missing the %s analyzer", name)
		}
	}
}

// TestChanwaitGuardsTransportEnqueue is the PR-5 sendq-hang tripwire,
// run cross-package: chanwait over the real transport package must
// stay clean. The fix it guards is the `case <-pc.done:` arm of
// TCPClient.issue's enqueue select — revert it and chanwait reports
// the select as deaf to its completion channel, failing this test
// before any stress run has to reproduce the hang. The firing shape
// itself is pinned in chanwait/testdata/src/regress.
func TestChanwaitGuardsTransportEnqueue(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/transport")
	}
	pkgs, err := lint.Load("", "mits/internal/transport")
	if err != nil {
		t.Fatalf("loading transport: %v", err)
	}
	checked := false
	for _, pkg := range pkgs {
		if pkg.ImportPath != "mits/internal/transport" {
			continue
		}
		checked = true
		diags, err := lint.Run(chanwait.Analyzer, pkg)
		if err != nil {
			t.Fatalf("chanwait over transport: %v", err)
		}
		for _, d := range diags {
			t.Errorf("chanwait finding in transport (PR-5 hang class regressed?): %s", d.String())
		}
	}
	if !checked {
		t.Fatal("mits/internal/transport not among loaded packages")
	}
}

// TestPoolcheckGuardsTransportOwnership is the immutable-bytes-handoff
// tripwire: with pooled response buffers flowing out of readLoop into
// MHEG decode and the content cache with no copy at the boundary, the
// whole safety argument is the ownership discipline poolcheck verifies
// (no use after releaseFrame/putBuf, release on every path). The real
// transport package must stay clean — a new code path that touches a
// released buffer fails this test before the race detector has to
// catch the recycled-buffer corruption at runtime.
func TestPoolcheckGuardsTransportOwnership(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/transport")
	}
	pkgs, err := lint.Load("", "mits/internal/transport")
	if err != nil {
		t.Fatalf("loading transport: %v", err)
	}
	checked := false
	for _, pkg := range pkgs {
		if pkg.ImportPath != "mits/internal/transport" {
			continue
		}
		checked = true
		diags, err := lint.Run(poolcheck.Analyzer, pkg)
		if err != nil {
			t.Fatalf("poolcheck over transport: %v", err)
		}
		for _, d := range diags {
			t.Errorf("poolcheck finding in transport (pooled-buffer ownership regressed?): %s", d.String())
		}
	}
	if !checked {
		t.Fatal("mits/internal/transport not among loaded packages")
	}
}

// TestSuiteInterproceduralAnalyzersRegistered pins the module-wide
// layer into the suite: lockorder and ctxflow only see cross-package
// inversions and dropped deadlines when they actually run, so their
// registration is itself an invariant.
func TestSuiteInterproceduralAnalyzersRegistered(t *testing.T) {
	want := []string{"lockorder", "ctxflow"}
	have := make(map[string]bool)
	for _, a := range All() {
		have[a.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("suite is missing the %s analyzer", name)
		}
	}
}

// loadDeliveryModule loads the delivery-path packages — transport,
// trace collection, the cache, and the metrics layer they all call
// into under their locks — as one module, the way mitslint sees them:
// one shared summary index, interface calls resolved across package
// boundaries. obs must be in the module or the cache→obs and
// transport→obs held-lock call edges dangle and the ordering graph
// goes blind exactly where the cross-package risk is.
func loadDeliveryModule(t *testing.T) ([]*lint.Package, *lint.Module) {
	t.Helper()
	patterns := []string{
		"mits/internal/transport",
		"mits/internal/obs",
		"mits/internal/obs/collect",
		"mits/internal/cache",
		// The cluster router sits on the delivery path too: its shard
		// replMu and applier locks nest around transport calls, so the
		// ordering graph must span it or a router→transport inversion
		// goes unseen.
		"mits/internal/cluster",
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		t.Fatalf("loading delivery path: %v", err)
	}
	wantPaths := map[string]bool{}
	for _, p := range patterns {
		wantPaths[p] = true
	}
	var roots []*lint.Package
	for _, pkg := range pkgs {
		if wantPaths[pkg.ImportPath] {
			roots = append(roots, pkg)
		}
	}
	if len(roots) != len(patterns) {
		t.Fatalf("loaded %d of %d delivery-path packages", len(roots), len(patterns))
	}
	return roots, lint.NewModule(roots)
}

// TestLockorderGuardsDeliveryPath is this PR's cross-package tripwire:
// the module-wide lock-ordering graph over transport writeLoop,
// collector finalize, and cache singleflight must stay acyclic. A new
// call edge that closes a cycle — say collector finalize shipping
// through an exporter that re-enters the collector, the shape pinned
// in lockorder/testdata/src/regress — fails this test before any
// stress run has to hit the deadlock.
func TestLockorderGuardsDeliveryPath(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the delivery path")
	}
	roots, mod := loadDeliveryModule(t)
	for _, pkg := range roots {
		diags, err := lint.RunWithModule(lockorder.Analyzer, pkg, mod)
		if err != nil {
			t.Fatalf("lockorder over %s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("lock-order cycle in delivery path: %s", d.String())
		}
	}
	if len(mod.LockEdges()) == 0 {
		t.Error("lock-ordering graph over the delivery path is empty; summary extraction regressed")
	}
}

// TestCtxflowGuardsDeliveryPath: every deadline the delivery path
// receives (TCPClient.Timeout, collector flush intervals) must survive
// its hops — no fresh contexts on serving chains, no knobless
// blocking interface calls below a deadline-carrying frame.
func TestCtxflowGuardsDeliveryPath(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the delivery path")
	}
	roots, mod := loadDeliveryModule(t)
	for _, pkg := range roots {
		diags, err := lint.RunWithModule(ctxflow.Analyzer, pkg, mod)
		if err != nil {
			t.Fatalf("ctxflow over %s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("dropped deadline in delivery path: %s", d.String())
		}
	}
}
