package suite

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSuiteWellFormed pins the conventions every analyzer in the suite
// must follow: a distinct name, a non-empty doc string, and an
// analysistest-style package next to this one — <name>/testdata/src
// with want-annotated sources and a <name>_test.go that runs them.
func TestSuiteWellFormed(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("suite is empty")
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" {
			t.Error("analyzer with empty name")
			continue
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc string", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no run function", a.Name)
		}
		pkgDir := filepath.Join("..", a.Name)
		if fi, err := os.Stat(filepath.Join(pkgDir, "testdata", "src")); err != nil || !fi.IsDir() {
			t.Errorf("analyzer %s has no testdata/src package: %v", a.Name, err)
		}
		if _, err := os.Stat(filepath.Join(pkgDir, a.Name+"_test.go")); err != nil {
			t.Errorf("analyzer %s has no %s_test.go: %v", a.Name, a.Name, err)
		}
	}
}
