// Package suite registers the project analyzers mitslint runs.
package suite

import (
	"mits/internal/lint"
	"mits/internal/lint/atomicmix"
	"mits/internal/lint/boundscheck"
	"mits/internal/lint/chanwait"
	"mits/internal/lint/closecheck"
	"mits/internal/lint/ctxflow"
	"mits/internal/lint/deadlinecheck"
	"mits/internal/lint/errdrop"
	"mits/internal/lint/goleak"
	"mits/internal/lint/lifecycle"
	"mits/internal/lint/lockcheck"
	"mits/internal/lint/lockorder"
	"mits/internal/lint/logcheck"
	"mits/internal/lint/poolcheck"
	"mits/internal/lint/sleepless"
	"mits/internal/lint/spancheck"
)

// All returns the analyzers of the MITS correctness suite.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		lockcheck.Analyzer,
		errdrop.Analyzer,
		lifecycle.Analyzer,
		sleepless.Analyzer,
		logcheck.Analyzer,
		goleak.Analyzer,
		closecheck.Analyzer,
		boundscheck.Analyzer,
		chanwait.Analyzer,
		atomicmix.Analyzer,
		poolcheck.Analyzer,
		deadlinecheck.Analyzer,
		spancheck.Analyzer,
		lockorder.Analyzer,
		ctxflow.Analyzer,
	}
}
