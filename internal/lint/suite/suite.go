// Package suite registers the project analyzers mitslint runs.
package suite

import (
	"mits/internal/lint"
	"mits/internal/lint/boundscheck"
	"mits/internal/lint/closecheck"
	"mits/internal/lint/errdrop"
	"mits/internal/lint/goleak"
	"mits/internal/lint/lifecycle"
	"mits/internal/lint/lockcheck"
	"mits/internal/lint/logcheck"
	"mits/internal/lint/sleepless"
)

// All returns the analyzers of the MITS correctness suite.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		lockcheck.Analyzer,
		errdrop.Analyzer,
		lifecycle.Analyzer,
		sleepless.Analyzer,
		logcheck.Analyzer,
		goleak.Analyzer,
		closecheck.Analyzer,
		boundscheck.Analyzer,
	}
}
