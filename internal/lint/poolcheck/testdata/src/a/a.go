// Package a exercises poolcheck: double-Put, use-after-Put, and
// pooled values crossing the exported API, through the same wrapper
// idiom the transport uses (getBuf/putBuf around a size-classed pool).
package a

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// getBuf is a pool source (returns a pool.Get result).
func getBuf() []byte {
	b := pool.Get().(*[]byte)
	return (*b)[:0]
}

// putBuf is a release (hands its parameter to pool.Put).
func putBuf(b []byte) {
	b = b[:0]
	pool.Put(&b)
}

type frame struct {
	buf     []byte
	payload []byte
}

// releaseFrame is a transitive release: putBuf on a field of its
// parameter. Its own cleanup stores after the Put must not fire.
func releaseFrame(f *frame) {
	if f.buf != nil {
		putBuf(f.buf)
		f.buf = nil
		f.payload = nil
	}
}

// writeRecord is the clean shape: source, use, release, no touch after.
func writeRecord(data []byte) error {
	buf := getBuf()
	buf = append(buf, data...)
	err := send(buf)
	putBuf(buf)
	return err
}

// doublePut releases the same buffer twice on one path.
func doublePut(data []byte) {
	buf := getBuf()
	buf = append(buf, data...)
	putBuf(buf)
	putBuf(buf) // want "buf is returned to the pool twice"
}

// useAfterPut touches the buffer after handing it back.
func useAfterPut(data []byte) int {
	buf := getBuf()
	buf = append(buf, data...)
	putBuf(buf)
	return len(buf) // want "buf is used after being returned to the pool"
}

// branchRelease puts only on the error path and returns: the
// straight-line code after the branch still owns the buffer.
func branchRelease(data []byte) ([]byte, error) {
	buf := getBuf()
	if err := fill(buf, data); err != nil {
		putBuf(buf)
		return nil, err
	}
	return buf[:len(data)], nil
}

// regrow is the readBody shape: the old buffer is put and the variable
// immediately rebound to a fresh one.
func regrow(n int) []byte {
	buf := getBuf()
	for len(buf) < n {
		nb := getBuf()
		copy(nb, buf)
		putBuf(buf)
		buf = nb
	}
	return buf
}

// deferredRelease pairs the Put with defer: every lexical use below
// runs before it.
func deferredRelease(data []byte) int {
	buf := getBuf()
	defer putBuf(buf)
	buf = append(buf, data...)
	return len(buf)
}

// frameRelease releases through the transitive wrapper, then uses the
// frame's payload.
func frameRelease(f *frame) []byte {
	releaseFrame(f)
	return f.payload // want "f is used after being returned to the pool"
}

// frameDone releases last.
func frameDone(f *frame) int {
	n := len(f.payload)
	releaseFrame(f)
	return n
}

// Exported boundary: a pooled buffer must not be returned to callers
// outside the package.
func Marshal(data []byte) []byte {
	buf := getBuf()
	buf = append(buf, data...)
	return buf // want "exported Marshal returns a pool-backed buffer"
}

// MarshalCopy returns caller-owned memory.
func MarshalCopy(data []byte) []byte {
	buf := getBuf()
	buf = append(buf, data...)
	out := make([]byte, len(buf))
	copy(out, buf)
	putBuf(buf)
	return out
}

// Recycle pulls a caller-owned argument into the pool.
func Recycle(b []byte) {
	putBuf(b) // want "exported Recycle recycles its parameter b into a pool"
}

// internalRecycle is package-private: callers inside the package know
// the discipline, so parameter release is the wrapper idiom itself.
func internalRecycle(b []byte) {
	putBuf(b)
}

// allowed documents a deliberate ownership transfer.
func Handoff(data []byte) []byte {
	buf := getBuf()
	buf = append(buf, data...)
	return buf //mits:allow poolcheck caller contract documents ReleaseBuf
}

func send(b []byte) error       { return nil }
func fill(b, data []byte) error { return nil }
