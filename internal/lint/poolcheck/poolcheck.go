// Package poolcheck enforces the sync.Pool ownership discipline the
// transport's frame-buffer recycling depends on. A pooled buffer has
// exactly one owner at a time: Put transfers ownership to the pool,
// after which any use (or a second Put) aliases memory that may
// already be in another goroutine's hands — corruption that surfaces
// far from the recycling site and never under light load.
//
// The analyzer recognises the repo's wrapper idiom through the
// package-local call graph: a function whose return value derives
// from pool.Get (directly or through another source, like getBuf or
// readBody) is a pool source; a function that hands a parameter to
// pool.Put (directly or through another release, like putBuf or
// releaseFrame) is a release. Three rules follow:
//
//  1. a value must not be released twice on one lexical path
//     (double-Put);
//  2. a value must not be used after its release on the same path
//     (use-after-Put) — reassignment starts a fresh lifetime, and
//     releases inside a branch do not poison the code after it;
//  3. pooled values must not cross the exported API: an exported
//     function returning a pool-backed buffer hands the caller memory
//     a later Put can yank back, and an exported function releasing
//     its own parameter recycles memory the caller still owns.
//
// Suppress a justified violation with `//mits:allow poolcheck <why>`.
package poolcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"mits/internal/lint"
)

// Analyzer is the poolcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "poolcheck",
	Doc:  "check sync.Pool buffer lifetimes: double-Put, use-after-Put, and pooled values escaping the exported API",
	Run:  run,
}

func run(pass *lint.Pass) error {
	g := lint.NewCallGraph(pass)
	sources := sourceFuncs(pass, g)
	releases := releaseFuncs(pass, g)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncAllowed(fd) {
				continue
			}
			checkLifetimes(pass, g, releases, fd)
			if fd.Name.IsExported() {
				checkBoundary(pass, g, sources, releases, fd)
			}
		}
	}
	return nil
}

// ---- wrapper classification ----

// sourceFuncs finds package-local functions whose return value derives
// from a pool.Get, transitively through other sources.
func sourceFuncs(pass *lint.Pass, g *lint.CallGraph) map[*types.Func]bool {
	sources := map[*types.Func]bool{}
	for {
		changed := false
		for fn, info := range g.Funcs() {
			if sources[fn] {
				continue
			}
			pooled := pooledLocals(pass, g, sources, info.Decl.Body)
			returns := false
			ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || returns {
					return !returns
				}
				for _, res := range ret.Results {
					if derives(pass, g, sources, pooled, res) {
						returns = true
					}
				}
				return true
			})
			if returns {
				sources[fn] = true
				changed = true
			}
		}
		if !changed {
			return sources
		}
	}
}

// releaseFuncs finds package-local functions that release a parameter
// into a pool, transitively through other releases. The value maps the
// indices of the released parameters.
func releaseFuncs(pass *lint.Pass, g *lint.CallGraph) map[*types.Func]map[int]bool {
	releases := map[*types.Func]map[int]bool{}
	for {
		changed := false
		for fn, info := range g.Funcs() {
			params := paramObjs(pass, info.Decl)
			if len(params) == 0 {
				continue
			}
			ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, arg := range releasedArgs(pass, g, releases, call) {
					obj := baseObj(pass, arg)
					if obj == nil {
						continue
					}
					for i, p := range params {
						if p == obj && !releases[fn][i] {
							if releases[fn] == nil {
								releases[fn] = map[int]bool{}
							}
							releases[fn][i] = true
							changed = true
						}
					}
				}
				return true
			})
		}
		if !changed {
			return releases
		}
	}
}

// releasedArgs returns the argument expressions that call hands over
// to a pool: pool.Put's argument, or the arguments in a known release
// function's released positions.
func releasedArgs(pass *lint.Pass, g *lint.CallGraph, releases map[*types.Func]map[int]bool, call *ast.CallExpr) []ast.Expr {
	if pass.PoolCall(call) == "Put" && len(call.Args) > 0 {
		return call.Args[:1]
	}
	fn := g.Callee(call)
	if fn == nil || releases[fn] == nil {
		return nil
	}
	var out []ast.Expr
	for i := range releases[fn] {
		if i < len(call.Args) {
			out = append(out, call.Args[i])
		}
	}
	return out
}

// paramObjs returns the declared parameter objects of fd, in order.
func paramObjs(pass *lint.Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// pooledLocals finds the local variables of body whose value derives
// from a pool source, to a fixpoint (covers buf := frameBuf(...) then
// nb := ...; buf = nb chains).
func pooledLocals(pass *lint.Pass, g *lint.CallGraph, sources map[*types.Func]bool, body *ast.BlockStmt) map[types.Object]bool {
	pooled := map[types.Object]bool{}
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if i == 0 && len(as.Rhs) == 1 {
					rhs = as.Rhs[0] // v, ok := ... / v, err := ...
				} else {
					continue
				}
				if !derives(pass, g, sources, pooled, rhs) {
					continue
				}
				if obj := pass.Referent(id); obj != nil && !pooled[obj] {
					pooled[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			return pooled
		}
	}
}

// derives reports whether e's value derives from a pool source: a
// pool.Get (or source-function) result, a pooled local, or a slice /
// index / pointer view of one.
func derives(pass *lint.Pass, g *lint.CallGraph, sources map[*types.Func]bool, pooled map[types.Object]bool, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Referent(x)
		return obj != nil && pooled[obj]
	case *ast.SliceExpr:
		return derives(pass, g, sources, pooled, x.X)
	case *ast.IndexExpr:
		return derives(pass, g, sources, pooled, x.X)
	case *ast.StarExpr:
		return derives(pass, g, sources, pooled, x.X)
	case *ast.UnaryExpr:
		return x.Op == token.AND && derives(pass, g, sources, pooled, x.X)
	case *ast.TypeAssertExpr:
		return derives(pass, g, sources, pooled, x.X)
	case *ast.CallExpr:
		if pass.PoolCall(x) == "Get" {
			return true
		}
		fn := g.Callee(x)
		return fn != nil && sources[fn]
	}
	return false
}

// baseObj unwraps selectors, derefs, slices and indexes down to the
// base identifier's object (f.buf → f, (*b)[:0] → b), nil when the
// base is not a plain identifier.
func baseObj(pass *lint.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			return pass.Referent(x)
		default:
			return nil
		}
	}
}

// ---- lifetime rules (double-Put, use-after-Put) ----

// checkLifetimes walks fd's body as a lexical path, tracking which
// variables have been released. Branches run on a copy of the state,
// so a conditional release (error paths that Put and return) does not
// poison the straight-line code after the branch.
func checkLifetimes(pass *lint.Pass, g *lint.CallGraph, releases map[*types.Func]map[int]bool, fd *ast.FuncDecl) {
	walkStmts(pass, g, releases, fd.Body.List, map[types.Object]token.Pos{})
}

func walkStmts(pass *lint.Pass, g *lint.CallGraph, releases map[*types.Func]map[int]bool, stmts []ast.Stmt, state map[types.Object]token.Pos) {
	for _, s := range stmts {
		walkStmt(pass, g, releases, s, state)
	}
}

func cloneState(state map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(state))
	for k, v := range state {
		out[k] = v
	}
	return out
}

func walkStmt(pass *lint.Pass, g *lint.CallGraph, releases map[*types.Func]map[int]bool, s ast.Stmt, state map[types.Object]token.Pos) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if vars := releasedIdents(pass, g, releases, call); len(vars) > 0 {
				for _, v := range vars {
					if first, done := state[v]; done {
						pass.Reportf(call.Pos(), "%s is returned to the pool twice (first at %s) — the second Put hands the same buffer to two owners",
							v.Name(), shortPos(pass, first))
						continue
					}
					state[v] = call.Pos()
				}
				return
			}
		}
		checkUses(pass, st, state)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			checkUses(pass, r, state)
		}
		for _, l := range st.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				// Reassignment starts a fresh lifetime.
				if obj := pass.Referent(id); obj != nil {
					delete(state, obj)
				}
				continue
			}
			checkUses(pass, l, state) // buf[0] = x after Put is still a use
		}
	case *ast.DeferStmt:
		// A deferred release runs at function exit, after every lexical
		// use below it: not a release on this path, and not a use.
	case *ast.BlockStmt:
		walkStmts(pass, g, releases, st.List, state)
	case *ast.IfStmt:
		if st.Init != nil {
			walkStmt(pass, g, releases, st.Init, state)
		}
		checkUses(pass, st.Cond, state)
		walkStmts(pass, g, releases, st.Body.List, cloneState(state))
		if st.Else != nil {
			walkStmt(pass, g, releases, st.Else, cloneState(state))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			walkStmt(pass, g, releases, st.Init, state)
		}
		if st.Cond != nil {
			checkUses(pass, st.Cond, state)
		}
		branch := cloneState(state)
		walkStmts(pass, g, releases, st.Body.List, branch)
		if st.Post != nil {
			walkStmt(pass, g, releases, st.Post, branch)
		}
	case *ast.RangeStmt:
		checkUses(pass, st.X, state)
		walkStmts(pass, g, releases, st.Body.List, cloneState(state))
	case *ast.SwitchStmt:
		if st.Init != nil {
			walkStmt(pass, g, releases, st.Init, state)
		}
		if st.Tag != nil {
			checkUses(pass, st.Tag, state)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					checkUses(pass, e, state)
				}
				walkStmts(pass, g, releases, cc.Body, cloneState(state))
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			walkStmt(pass, g, releases, st.Init, state)
		}
		checkUses(pass, st.Assign, state)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, g, releases, cc.Body, cloneState(state))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := cloneState(state)
				if cc.Comm != nil {
					walkStmt(pass, g, releases, cc.Comm, branch)
				}
				walkStmts(pass, g, releases, cc.Body, branch)
			}
		}
	case nil:
	default:
		checkUses(pass, s, state)
	}
}

// releasedIdents returns the plain-identifier variables call releases
// (pool.Put(v), putBuf(v), releaseFrame(v)). Released expressions with
// a non-identifier base (putBuf(f.buf)) are not tracked: the lexical
// machine cannot follow field lifetimes, and flagging the owner would
// misfire on the release helper's own cleanup stores.
func releasedIdents(pass *lint.Pass, g *lint.CallGraph, releases map[*types.Func]map[int]bool, call *ast.CallExpr) []types.Object {
	var out []types.Object
	for _, arg := range releasedArgs(pass, g, releases, call) {
		e := ast.Unparen(arg)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Referent(id); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkUses reports any mention of a released variable inside n.
func checkUses(pass *lint.Pass, n ast.Node, state map[types.Object]token.Pos) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Referent(id)
		if obj == nil {
			return true
		}
		if put, ok := state[obj]; ok {
			pass.Reportf(id.Pos(), "%s is used after being returned to the pool at %s — the pool may already have handed it to another goroutine",
				obj.Name(), shortPos(pass, put))
			delete(state, obj) // one report per lifetime, not per mention
		}
		return true
	})
}

// ---- exported-boundary rule ----

// checkBoundary flags exported functions that leak pool-owned memory
// out (returning a pooled buffer) or pull caller-owned memory in
// (releasing a parameter).
func checkBoundary(pass *lint.Pass, g *lint.CallGraph, sources map[*types.Func]bool, releases map[*types.Func]map[int]bool, fd *ast.FuncDecl) {
	pooled := pooledLocals(pass, g, sources, fd.Body)
	params := map[types.Object]bool{}
	for _, p := range paramObjs(pass, fd) {
		params[p] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if derives(pass, g, sources, pooled, res) {
					pass.Reportf(res.Pos(), "exported %s returns a pool-backed buffer — the caller cannot know a later Put will yank it back; copy it or document transfer",
						fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			for _, arg := range releasedArgs(pass, g, releases, x) {
				if obj := baseObj(pass, arg); obj != nil && params[obj] {
					pass.Reportf(arg.Pos(), "exported %s recycles its parameter %s into a pool — callers own their arguments; a pooled alias corrupts them later",
						fd.Name.Name, obj.Name())
				}
			}
		}
		return true
	})
}

// shortPos formats a position as file:line with the directory dropped.
func shortPos(pass *lint.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
