package poolcheck

import (
	"testing"

	"mits/internal/lint"
)

func TestPoolCheck(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
