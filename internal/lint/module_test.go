package lint

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

const (
	ipaPath = "mits/internal/lint/testdata/src/ipa"
	ipbPath = "mits/internal/lint/testdata/src/ipb"
)

// loadIPFixtures loads the two interprocedural fixture packages,
// returned in (ipa, ipb) order.
func loadIPFixtures(t *testing.T) (*Package, *Package) {
	t.Helper()
	pkgs, err := Load("testdata", "./src/ipa", "./src/ipb")
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	var ipa, ipb *Package
	for _, pkg := range pkgs {
		for _, te := range pkg.TypeErrors {
			t.Errorf("fixture %s has type error: %v", pkg.ImportPath, te)
		}
		switch pkg.ImportPath {
		case ipaPath:
			ipa = pkg
		case ipbPath:
			ipb = pkg
		}
	}
	if ipa == nil || ipb == nil {
		t.Fatalf("fixture packages missing (ipa=%v ipb=%v)", ipa != nil, ipb != nil)
	}
	return ipa, ipb
}

// TestSummaryRoundTrip is the fact-serialization contract: a package
// summary marshalled in the producing package and unmarshalled in a
// consuming one must carry identical facts — byte-identical on
// re-marshal, structurally identical under DeepEqual. Interprocedural
// analysis is only as sound as this round trip.
func TestSummaryRoundTrip(t *testing.T) {
	ipa, ipb := loadIPFixtures(t)
	for _, pkg := range []*Package{ipa, ipb} {
		sum := Summarize(pkg)
		wire, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			t.Fatalf("%s: marshal: %v", pkg.ImportPath, err)
		}
		var decoded PackageSummary
		if err := json.Unmarshal(wire, &decoded); err != nil {
			t.Fatalf("%s: unmarshal: %v", pkg.ImportPath, err)
		}
		rewire, err := json.MarshalIndent(&decoded, "", "  ")
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", pkg.ImportPath, err)
		}
		if !bytes.Equal(wire, rewire) {
			t.Errorf("%s: summary wire form not stable across a round trip:\nfirst:\n%s\nsecond:\n%s", pkg.ImportPath, wire, rewire)
		}
		if !reflect.DeepEqual(sum, &decoded) {
			t.Errorf("%s: decoded summary differs structurally from the original", pkg.ImportPath)
		}
	}

	// Cross-package consumption: read ipa's facts the way another
	// package's pass would — through the decoded form only.
	wire, err := json.Marshal(Summarize(ipa))
	if err != nil {
		t.Fatal(err)
	}
	var remote PackageSummary
	if err := json.Unmarshal(wire, &remote); err != nil {
		t.Fatal(err)
	}
	if remote.Path != ipaPath {
		t.Fatalf("decoded path = %q, want %q", remote.Path, ipaPath)
	}
	var broadcast *FuncSummary
	for _, fs := range remote.Funcs {
		if fs.ID == FuncID(ipaPath+".(Hub).Broadcast") {
			broadcast = fs
		}
	}
	if broadcast == nil {
		t.Fatalf("decoded summary lacks (Hub).Broadcast; have %d funcs", len(remote.Funcs))
	}
	hubMu := LockID(ipaPath + ".Hub.mu")
	if len(broadcast.Acquires) != 1 || broadcast.Acquires[0].Lock != hubMu {
		t.Errorf("Broadcast acquires = %+v, want exactly %s", broadcast.Acquires, hubMu)
	}
	putID := IfaceMethodID(ipaPath + ".Sink.Put")
	found := false
	for _, cs := range broadcast.Calls {
		if cs.Iface != putID {
			continue
		}
		found = true
		if len(cs.Held) != 1 || cs.Held[0] != hubMu {
			t.Errorf("Sink.Put dispatch held = %v, want [%s]", cs.Held, hubMu)
		}
	}
	if !found {
		t.Errorf("Broadcast has no call site through %s: %+v", putID, broadcast.Calls)
	}
}

// TestModuleResolvesInterfaceCalls is the call-graph contract: an
// interface call site resolves to every in-module implementation, in
// both the defining package and a consuming one, and the resulting
// lock edges cross the package boundary.
func TestModuleResolvesInterfaceCalls(t *testing.T) {
	ipa, ipb := loadIPFixtures(t)
	mod := NewModule([]*Package{ipa, ipb})

	cs := &CallSite{Iface: IfaceMethodID(ipaPath + ".Sink.Put")}
	got := mod.Targets(cs)
	want := []FuncID{
		FuncID(ipaPath + ".(Local).Put"),
		FuncID(ipbPath + ".(Remote).Put"),
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Targets(Sink.Put) = %v, want %v", got, want)
	}

	// The resolved dispatch must produce ordering edges from Hub.mu to
	// each implementation's lock — one of them in a package Hub's
	// summary has never seen.
	edgeTo := map[LockID]bool{}
	for _, e := range mod.LockEdges() {
		if e.From == LockID(ipaPath+".Hub.mu") {
			edgeTo[e.To] = true
		}
	}
	for _, to := range []LockID{LockID(ipaPath + ".Local.mu"), LockID(ipbPath + ".Remote.mu")} {
		if !edgeTo[to] {
			t.Errorf("missing lock edge Hub.mu → %s (edges: %v)", to, mod.LockEdges())
		}
	}

	// Mirror's goroutine body is a synthetic function of its own; the
	// launch must not smuggle Broadcast under Mirror's (empty) held
	// set, and the body must carry the Broadcast call.
	goBody := mod.Func(FuncID(ipbPath + ".Mirror#go1"))
	if goBody == nil {
		t.Fatal("no synthetic summary for Mirror's goroutine body")
	}
	foundBroadcast := false
	for _, cs := range goBody.Calls {
		if cs.Callee == FuncID(ipaPath+".(Hub).Broadcast") {
			foundBroadcast = true
			if len(cs.Held) != 0 {
				t.Errorf("goroutine body calls Broadcast with held = %v, want none", cs.Held)
			}
		}
	}
	if !foundBroadcast {
		t.Errorf("Mirror#go1 does not call Broadcast: %+v", goBody.Calls)
	}
}
