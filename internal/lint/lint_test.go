package lint

import "testing"

// TestLoadSmoke checks the from-source loader against real repo
// packages: everything type-checks with zero errors and the roots are
// flagged correctly.
func TestLoadSmoke(t *testing.T) {
	pkgs, err := Load("../..", "./internal/transport", "./internal/mheg/...")
	if err != nil {
		t.Fatal(err)
	}
	roots := 0
	for _, p := range pkgs {
		if !p.Root {
			continue
		}
		roots++
		for _, te := range p.TypeErrors {
			t.Errorf("%s: unexpected type error: %v", p.ImportPath, te)
		}
		if len(p.Files) == 0 {
			t.Errorf("%s: no files parsed", p.ImportPath)
		}
	}
	if roots < 4 {
		t.Fatalf("expected ≥4 root packages, got %d", roots)
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		comment string
		want    int
	}{
		{"//mits:nolock immutable after construction", 1},
		{"// mits:allow errdrop best-effort close", 1},
		{"//mits:allow errdrop,sleepless", 2},
		{"// plain comment", 0},
	}
	for _, c := range cases {
		if got := len(parseAllow(c.comment)); got != c.want {
			t.Errorf("parseAllow(%q) = %d names, want %d", c.comment, got, c.want)
		}
	}
}

func TestSplitQuoted(t *testing.T) {
	got := splitQuoted("\"foo.*bar\" `raw[x]` \"esc\\\"q\"")
	if len(got) != 3 || got[0] != "foo.*bar" || got[1] != "raw[x]" || got[2] != `esc"q` {
		t.Fatalf("splitQuoted = %q", got)
	}
}
