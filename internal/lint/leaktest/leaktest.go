// Package leaktest is the runtime companion to the static goleak
// analyzer: it fails a test that exits with goroutines it started
// still running.
//
// Call Check(t) at the top of any test that starts goroutines
// (directly or through servers it constructs). Check snapshots the
// live goroutines and registers a cleanup that re-snapshots after the
// test, retrying briefly so goroutines that are mid-exit are not
// misreported, and fails with the full stack of anything left over.
package leaktest

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long the cleanup waits for goroutines to finish
// exiting before declaring them leaked.
const grace = 2 * time.Second

// Check registers a leak check that runs when the test ends.
func Check(t testing.TB) {
	t.Helper()
	before := stacks()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, g := range stacks() {
				if _, ok := before[id]; !ok {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			// Goroutine exit is the one thing with no channel to wait
			// on: polling the runtime snapshot is the mechanism here,
			// not a synchronization shortcut.
			//mits:allow sleepless
			time.Sleep(10 * time.Millisecond)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine:\n%s", g)
		}
	})
}

// stacks snapshots every interesting live goroutine, keyed by the
// goroutine id from its header line.
func stacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		id, ok := goroutineID(g)
		if !ok || uninteresting(g) {
			continue
		}
		out[id] = g
	}
	return out
}

// goroutineID extracts the numeric id from a "goroutine 12 [running]:"
// header.
func goroutineID(g string) (string, bool) {
	const prefix = "goroutine "
	if !strings.HasPrefix(g, prefix) {
		return "", false
	}
	rest := g[len(prefix):]
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		return "", false
	}
	return rest[:sp], true
}

// uninteresting filters goroutines the test harness and runtime own:
// they come and go on their own schedule and are never a test's leak.
func uninteresting(g string) bool {
	for _, frame := range []string{
		"runtime.Stack(", // the snapshotting goroutine itself
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*M).",
		"testing.runFuzzing(",
		"testing.runFuzzTests(",
		"runtime.goexit",
		"created by runtime",
		"signal.signal_recv",
	} {
		if strings.Contains(g, frame) {
			return true
		}
	}
	return false
}
