package leaktest

import (
	"testing"
)

// recorder captures what Check reports without failing the real test.
type recorder struct {
	testing.TB
	failed   bool
	cleanups []func()
}

func (r *recorder) Helper()                           {}
func (r *recorder) Errorf(format string, args ...any) { r.failed = true }
func (r *recorder) Cleanup(f func())                  { r.cleanups = append(r.cleanups, f) }
func (r *recorder) runCleanups() {
	for _, f := range r.cleanups {
		f()
	}
}

func TestCheckCatchesLeak(t *testing.T) {
	r := &recorder{}
	Check(r)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-stop
		close(done)
	}()
	r.runCleanups()
	if !r.failed {
		t.Error("deliberately leaked goroutine not reported")
	}
	close(stop)
	<-done
}

func TestCheckPassesWhenClean(t *testing.T) {
	r := &recorder{}
	Check(r)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	r.runCleanups()
	if r.failed {
		t.Error("clean test reported as leaking")
	}
}
