// Package lifecycle enforces the MHEG three-form object life cycle of
// ISO/IEC 13522-1 (§2.2.2.2 of the thesis): objects are interchanged
// as form (a) byte streams, decoded and validated into form (b) model
// objects, and instantiated into form (c) run-time objects that alone
// carry presentation state. Two taint-style, within-function checks:
//
//  1. Fabricated run-time ids. Form (c) operations on an Engine (Run,
//     Stop, Pause, Resume, Delete, Select, SetSelection, Input) must
//     receive an RTID produced by NewRT/RT — never a compile-time
//     constant, which bypasses form (b)→(c) instantiation. Constants
//     are traced through simple single-assignment locals.
//
//  2. Interchange without validation. A model object built by hand
//     (composite literal of an mheg class) must flow through
//     Validate(), AddModel or Ingest before an Encode call ships it
//     as form (a): "Engines validate every object at decode time
//     before it becomes a form (b) object" — the encode side owes its
//     peers the same guarantee.
//
// Both checks reason within one function body; cross-function flows
// are trusted (a parameter is assumed already validated/instantiated
// by the caller). //mits:allow lifecycle suppresses a line.
package lifecycle

import (
	"go/ast"
	"go/types"
	"strings"

	"mits/internal/lint"
)

// Analyzer is the lifecycle pass.
var Analyzer = &lint.Analyzer{
	Name: "lifecycle",
	Doc:  "enforce the MHEG form (a)/(b)/(c) object life cycle",
	Run:  run,
}

// formC lists Engine methods that operate on form (c) run-time objects.
var formC = map[string]bool{
	"Run": true, "Stop": true, "Pause": true, "Resume": true,
	"Delete": true, "Select": true, "SetSelection": true, "Input": true,
}

// sanctifiers are the calls that move a hand-built object into the
// validated form (b) world.
var sanctifiers = map[string]bool{"AddModel": true, "Ingest": true}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncAllowed(fd) {
				continue
			}
			checkFabricatedRTIDs(pass, fd.Body)
			checkUnvalidatedEncodes(pass, fd.Body)
		}
	}
	return nil
}

func hasPathSegment(pkg *types.Package, want string) bool {
	if pkg == nil {
		return false
	}
	for _, seg := range strings.Split(pkg.Path(), "/") {
		if seg == want {
			return true
		}
	}
	return false
}

// ---- check 1: fabricated RTIDs ----

// engineFormCCall reports whether call is a form (c) method on an
// engine.Engine taking an RTID first parameter.
func engineFormCCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !formC[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() == 0 {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Engine" || !hasPathSegment(named.Obj().Pkg(), "engine") {
		return false
	}
	p0, ok := sig.Params().At(0).Type().(*types.Named)
	return ok && p0.Obj().Name() == "RTID"
}

// singleAssignments maps each local assigned exactly once to its RHS;
// multiply-assigned locals (loop counters) map to nil.
func singleAssignments(pass *lint.Pass, body *ast.BlockStmt) map[types.Object]ast.Expr {
	out := make(map[types.Object]ast.Expr)
	seen := make(map[types.Object]int)
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		seen[obj]++
		if seen[obj] == 1 {
			out[obj] = rhs
		} else {
			out[obj] = nil
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else {
				for _, lhs := range n.Lhs {
					record(lhs, nil) // tuple from a call: not a constant
				}
			}
		case *ast.IncDecStmt:
			record(n.X, nil)
		case *ast.RangeStmt:
			if n.Key != nil {
				record(n.Key, nil)
			}
			if n.Value != nil {
				record(n.Value, nil)
			}
		}
		return true
	})
	return out
}

// constantOrigin reports whether expr is a compile-time constant,
// following single-assignment locals up to a small depth.
func constantOrigin(pass *lint.Pass, assigns map[types.Object]ast.Expr, expr ast.Expr, depth int) bool {
	if expr == nil || depth > 5 {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
		return true
	}
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	rhs, tracked := assigns[obj]
	if !tracked {
		return false
	}
	return constantOrigin(pass, assigns, rhs, depth+1)
}

func checkFabricatedRTIDs(pass *lint.Pass, body *ast.BlockStmt) {
	assigns := singleAssignments(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !engineFormCCall(pass, call) {
			return true
		}
		if constantOrigin(pass, assigns, call.Args[0], 0) {
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			pass.Reportf(call.Pos(), "Engine.%s called with a constant RTID: form (c) ids must come from NewRT/RT (MHEG object life cycle)", sel.Sel.Name)
		}
		return true
	})
}

// ---- check 2: encode without validate ----

// mhegObjectType reports whether t (possibly a pointer) is a named
// struct of an mheg package whose pointer method set has Validate.
func mhegObjectType(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !hasPathSegment(named.Obj().Pkg(), "mheg") {
		return nil, false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Validate" {
			return named, true
		}
	}
	return nil, false
}

// exprVar resolves x or &x to its variable object.
func exprVar(pass *lint.Pass, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		return pass.TypesInfo.Uses[id]
	}
	return nil
}

// isCompositeLit reports whether e is T{...} or &T{...}.
func isCompositeLit(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func checkUnvalidatedEncodes(pass *lint.Pass, body *ast.BlockStmt) {
	// Locals built by hand: var → position of the composite-literal def.
	handBuilt := make(map[types.Object]ast.Expr)
	// Position before which the object became trusted, per var.
	sanctified := make(map[types.Object]ast.Node)
	ast.Inspect(body, func(n ast.Node) bool {
		if assign, ok := n.(*ast.AssignStmt); ok && len(assign.Lhs) == len(assign.Rhs) {
			for i := range assign.Lhs {
				id, ok := assign.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" || !isCompositeLit(assign.Rhs[i]) {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, ok := mhegObjectType(obj.Type()); ok {
					handBuilt[obj] = assign.Rhs[i]
				}
			}
		}
		return true
	})
	// Even with no tracked locals, the walk below still catches inline
	// Encode(&T{...}) literals.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		switch {
		case name == "Validate":
			// x.Validate(): sanctifies x.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if obj := exprVar(pass, sel.X); obj != nil {
					if _, tracked := handBuilt[obj]; tracked && sanctified[obj] == nil {
						sanctified[obj] = call
					}
				}
			}
		case sanctifiers[name]:
			for _, arg := range call.Args {
				if obj := exprVar(pass, arg); obj != nil {
					if _, tracked := handBuilt[obj]; tracked && sanctified[obj] == nil {
						sanctified[obj] = call
					}
				}
			}
		case name == "Encode":
			for _, arg := range call.Args {
				if isCompositeLit(arg) {
					if t, ok := typeOfExpr(pass, arg); ok {
						pass.Reportf(call.Pos(), "hand-built %s encoded without Validate: form (b) objects must validate before interchange (MHEG life cycle)", t.Obj().Name())
					}
					continue
				}
				obj := exprVar(pass, arg)
				if obj == nil {
					continue
				}
				if _, tracked := handBuilt[obj]; !tracked {
					continue
				}
				if prior := sanctified[obj]; prior != nil && prior.Pos() < call.Pos() {
					continue
				}
				named, _ := mhegObjectType(obj.Type())
				pass.Reportf(call.Pos(), "hand-built %s encoded without Validate: form (b) objects must validate before interchange (MHEG life cycle)", named.Obj().Name())
			}
		}
		return true
	})
}

func typeOfExpr(pass *lint.Pass, e ast.Expr) (*types.Named, bool) {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return nil, false
	}
	return mhegObjectType(t)
}
