// Package mheg is a stand-in object model for lifecycle tests; the
// analyzer keys on the "mheg" path segment and a Validate method.
package mheg

import "errors"

// ID identifies a model object.
type ID struct {
	App string
	Num uint32
}

// Content is a model class with the Validate contract.
type Content struct {
	ID   ID
	Data []byte
}

// Validate checks class invariants.
func (c *Content) Validate() error {
	if c.ID.App == "" {
		return errors.New("empty namespace")
	}
	return nil
}

// NewContent is a blessed constructor: values it returns are not
// "hand-built" in the analyzer's sense.
func NewContent(app string, num uint32) *Content {
	return &Content{ID: ID{App: app, Num: num}}
}

// Codec fakes the interchange encoder.
type Codec struct{}

// Encode ships an object as form (a) bytes.
func (Codec) Encode(o any) ([]byte, error) { return nil, nil }
