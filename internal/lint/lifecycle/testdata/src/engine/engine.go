// Package engine is a stand-in MHEG engine for lifecycle tests; the
// analyzer keys on the "engine" path segment, the Engine type name and
// the RTID parameter type.
package engine

import "mits/internal/lint/lifecycle/testdata/src/mheg"

// RTID identifies a form (c) run-time object.
type RTID int

// Engine fakes the run-time.
type Engine struct {
	next RTID
}

// New creates an engine.
func New() *Engine { return &Engine{next: 1} }

// AddModel registers a form (b) object, validating it.
func (e *Engine) AddModel(o *mheg.Content) error { return o.Validate() }

// NewRT instantiates form (b) → form (c).
func (e *Engine) NewRT(id mheg.ID, channel string) (RTID, error) {
	rt := e.next
	e.next++
	return rt, nil
}

// RT looks up a live run-time object.
func (e *Engine) RT(id RTID) (RTID, bool) { return id, true }

// Run starts presentation (form (c) operation).
func (e *Engine) Run(id RTID) {}

// Stop halts presentation.
func (e *Engine) Stop(id RTID) {}

// Delete destroys a run-time object.
func (e *Engine) Delete(id RTID) {}
