// Package a exercises the lifecycle analyzer.
package a

import (
	"mits/internal/lint/lifecycle/testdata/src/engine"
	"mits/internal/lint/lifecycle/testdata/src/mheg"
)

// FabricatedIDs bypass form (b)→(c) instantiation: flagged.
func FabricatedIDs(e *engine.Engine) {
	e.Run(3) // want `Engine.Run called with a constant RTID`
	id := engine.RTID(7)
	e.Stop(id) // want `Engine.Stop called with a constant RTID`
	const k = 2
	e.Delete(k) // want `Engine.Delete called with a constant RTID`
}

// ProperIDs come from NewRT / RT / parameters / loops: clean.
func ProperIDs(e *engine.Engine, param engine.RTID) {
	rt, err := e.NewRT(mheg.ID{App: "a", Num: 1}, "main")
	if err != nil {
		return
	}
	e.Run(rt)
	if live, ok := e.RT(rt); ok {
		e.Stop(live)
	}
	e.Run(param) // caller instantiated it
	for i := engine.RTID(1); i < 4; i++ {
		e.Delete(i) // loop counter is multiply-assigned, not a constant
	}
}

// EncodeUnvalidated ships hand-built objects as form (a) without
// Validate: flagged, including the inline literal.
func EncodeUnvalidated(c mheg.Codec) {
	obj := &mheg.Content{ID: mheg.ID{App: "a", Num: 1}}
	c.Encode(obj)                      // want `hand-built Content encoded without Validate`
	c.Encode(&mheg.Content{Data: nil}) // want `hand-built Content encoded without Validate`
}

// EncodeValidated passes through the life cycle first: clean.
func EncodeValidated(c mheg.Codec, e *engine.Engine) error {
	obj := &mheg.Content{ID: mheg.ID{App: "a", Num: 1}}
	if err := obj.Validate(); err != nil {
		return err
	}
	if _, err := c.Encode(obj); err != nil {
		return err
	}

	reg := &mheg.Content{ID: mheg.ID{App: "a", Num: 2}}
	if err := e.AddModel(reg); err != nil { // AddModel validates
		return err
	}
	_, err := c.Encode(reg)
	if err != nil {
		return err
	}

	built := mheg.NewContent("a", 3) // constructor, not hand-built
	_, err = c.Encode(built)
	return err
}

// ValidateTooLate does not count: the bytes already left.
func ValidateTooLate(c mheg.Codec) {
	obj := &mheg.Content{}
	c.Encode(obj) // want `hand-built Content encoded without Validate`
	_ = obj.Validate()
}
