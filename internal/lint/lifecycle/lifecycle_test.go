package lifecycle

import (
	"testing"

	"mits/internal/lint"
)

func TestLifecycle(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
