// Interprocedural summaries: the per-package facts the module-wide
// analyzers (lockorder, ctxflow) stitch into whole-module reasoning.
//
// Each function declaration (plus each goroutine body launched inside
// one) is condensed into a FuncSummary: the mutexes it acquires and
// which locks are lexically held at each acquisition, every call it
// makes with the locks held at that call site and how the inbound
// context flows into it, and its channel operations (re-using the Conc
// classification). Summaries are pure data — qualified-name strings
// and serialized positions, no *types.Object pointers — so they export
// as go/analysis-style facts: a PackageSummary round-trips through
// encoding/json byte-identically, which the module meta-test pins.
//
// The held-lock tracking is the same trade every analyzer here makes:
// lexical source order, not a happens-before proof. An Unlock in a
// plain statement releases; an Unlock inside a defer does not (the
// lock stays held for the rest of the body); a func literal starts
// with nothing held (it may run on any goroutine at any time); a `go`
// launch is summarized separately so a spawned body's acquisitions are
// never attributed to the launching lock context.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// FuncID names a function or method across the module:
// "pkgpath.Func", "pkgpath.(Type).Method" (pointer receivers
// normalized), or "parent#goN" for the Nth goroutine body launched
// inside parent.
type FuncID string

// LockID names a mutex across the module: "pkgpath.Type.field" for a
// struct field, "pkgpath.var" for a package-level mutex. Local mutex
// variables are deliberately unnamed (and untracked): a lock that
// never escapes a stack frame cannot participate in a cross-goroutine
// ordering.
type LockID string

// IfaceMethodID names an interface method, "pkgpath.Iface.Method".
type IfaceMethodID string

// LockAcq is one mutex acquisition.
type LockAcq struct {
	Lock  LockID   `json:"lock"`
	Pos   string   `json:"pos"`
	RLock bool     `json:"rlock,omitempty"`
	Held  []LockID `json:"held,omitempty"` // locks lexically held when this one is taken
}

// CallSite is one call made by the summarized function.
type CallSite struct {
	Pos    string        `json:"pos"`
	Name   string        `json:"name"`             // method/function name
	Callee FuncID        `json:"callee,omitempty"` // statically-resolved callee ("" when dynamic)
	Iface  IfaceMethodID `json:"iface,omitempty"`  // set when the call goes through a named in-module interface
	Held   []LockID      `json:"held,omitempty"`   // locks lexically held at the call
	// CtxForwarded: an argument derives from the enclosing function's
	// inbound context parameter. CtxFresh: an argument is a direct
	// context.Background()/context.TODO() result.
	CtxForwarded bool `json:"ctx_forwarded,omitempty"`
	CtxFresh     bool `json:"ctx_fresh,omitempty"`
	// CalleeTakesCtx: the callee's signature accepts a context.Context.
	CalleeTakesCtx bool `json:"callee_takes_ctx,omitempty"`
	// Blocking: the method name is in the potentially-indefinite I/O set
	// (Call, Read, Accept, ...) and the call goes through an interface.
	Blocking bool `json:"blocking,omitempty"`
	// Deferred/Async: the call runs at function exit (defer) or on a
	// fresh goroutine (go) — excluded from held-lock edge propagation.
	Deferred bool `json:"deferred,omitempty"`
	Async    bool `json:"async,omitempty"`
}

// ChanOpFact is one channel operation, serialized from the Conc layer.
type ChanOpFact struct {
	Kind     string `json:"kind"` // send, receive, close, range
	Pos      string `json:"pos"`
	Chan     string `json:"chan,omitempty"` // the channel object's name, when resolvable
	Blocking bool   `json:"blocking,omitempty"`
}

// FuncSummary is the exported interprocedural fact set for one
// function, method, or launched goroutine body.
type FuncSummary struct {
	ID  FuncID `json:"id"`
	Pos string `json:"pos"`
	// HasCtxParam: the signature accepts a context.Context.
	HasCtxParam bool `json:"has_ctx_param,omitempty"`
	// DeadlineRecv: the receiver struct carries a time.Duration
	// Timeout/Deadline field — the type owns an inbound deadline even
	// without a context parameter.
	DeadlineRecv bool `json:"deadline_recv,omitempty"`
	// CtxParamDiscarded: the function has a context parameter that no
	// call site forwards (and the body makes at least one call).
	CtxParamDiscarded bool `json:"ctx_param_discarded,omitempty"`
	// SetsDeadline: the body calls a Set*Deadline*/Set*Timeout* knob
	// itself, bounding its blocking I/O locally.
	SetsDeadline bool `json:"sets_deadline,omitempty"`

	Acquires []LockAcq    `json:"acquires,omitempty"`
	Calls    []CallSite   `json:"calls,omitempty"`
	ChanOps  []ChanOpFact `json:"chan_ops,omitempty"`
}

// PackageSummary is the fact set for one package, funcs sorted by ID.
type PackageSummary struct {
	Path  string         `json:"path"`
	Funcs []*FuncSummary `json:"funcs"`
}

// Func returns the summary with the given ID, nil when absent.
func (ps *PackageSummary) Func(id FuncID) *FuncSummary {
	i := sort.Search(len(ps.Funcs), func(i int) bool { return ps.Funcs[i].ID >= id })
	if i < len(ps.Funcs) && ps.Funcs[i].ID == id {
		return ps.Funcs[i]
	}
	return nil
}

// blockingCallNames mirrors deadlinecheck's view of potentially
// indefinite blocking I/O method names.
var blockingCallNames = map[string]bool{
	"Call": true, "CallTraced": true,
	"Read": true, "Write": true,
	"Send": true, "Recv": true, "Receive": true,
	"Accept": true, "Wait": true,
	"Query": true, "Exec": true, "Fetch": true,
}

// Summarize extracts the interprocedural facts for one loaded package.
func Summarize(pkg *Package) *PackageSummary {
	ex := &extractor{pkg: pkg}
	ps := &PackageSummary{Path: pkg.Types.Path()}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ps.Funcs = append(ps.Funcs, ex.summarize(fn, fd)...)
		}
	}
	sort.Slice(ps.Funcs, func(i, j int) bool { return ps.Funcs[i].ID < ps.Funcs[j].ID })
	return ps
}

type extractor struct {
	pkg *Package
}

func (ex *extractor) pos(p token.Pos) string {
	return ex.pkg.Fset.Position(p).String()
}

// FuncIDOf builds the module-wide ID for a function object.
func FuncIDOf(fn *types.Func) FuncID {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return FuncID(fmt.Sprintf("%s.(%s).%s", pkgPath, named.Obj().Name(), fn.Name()))
		}
	}
	return FuncID(pkgPath + "." + fn.Name())
}

// summarize condenses one declaration, returning its summary plus one
// synthetic summary per goroutine body launched inside it.
func (ex *extractor) summarize(fn *types.Func, fd *ast.FuncDecl) []*FuncSummary {
	root := &FuncSummary{
		ID:           FuncIDOf(fn),
		Pos:          ex.pos(fd.Pos()),
		HasCtxParam:  signatureTakesCtx(fn),
		DeadlineRecv: receiverCarriesDeadline(fn),
	}
	ctxParams := ex.ctxParamObjs(fd)
	goBodies := ex.walkBody(root, fd.Body, ctxParams)
	out := []*FuncSummary{root}
	n := 0
	for len(goBodies) > 0 {
		body := goBodies[0]
		goBodies = goBodies[1:]
		n++
		sub := &FuncSummary{
			ID:  FuncID(fmt.Sprintf("%s#go%d", root.ID, n)),
			Pos: ex.pos(body.Pos()),
		}
		// A launched goroutine still sees the enclosing ctx params
		// (captured), so forwarding classification carries over.
		goBodies = append(goBodies, ex.walkBody(sub, body, ctxParams)...)
		out = append(out, sub)
	}
	if root.HasCtxParam && len(root.Calls) > 0 {
		forwarded := false
		for i := range root.Calls {
			if root.Calls[i].CtxForwarded {
				forwarded = true
				break
			}
		}
		root.CtxParamDiscarded = !forwarded
	}
	return out
}

// ctxParamObjs returns the declaration's context.Context-typed
// parameter objects.
func (ex *extractor) ctxParamObjs(fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := ex.pkg.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

// walkBody records acquisitions, calls, and channel ops in source
// order with lexical held-lock tracking, and returns the bodies of
// `go` statements for separate summarization.
func (ex *extractor) walkBody(sum *FuncSummary, body ast.Node, ctxParams map[types.Object]bool) []*ast.BlockStmt {
	var held []LockID
	var goBodies []*ast.BlockStmt
	holdIdx := func(id LockID) int {
		for i, h := range held {
			if h == id {
				return i
			}
		}
		return -1
	}

	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// `go expr()`: arguments and the callee expression are
				// evaluated synchronously, but the launched body is not.
				if lock, _, _ := ex.classifyLockCall(n.Call); lock == "" {
					ex.recordCall(sum, n.Call, held, ctxParams, deferred, true)
				}
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					goBodies = append(goBodies, lit.Body)
				}
				for _, arg := range n.Call.Args {
					walk(arg, deferred)
				}
				return false
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					// Deferred closures run at exit; locks held here may be
					// gone by then, so their content runs with nothing held.
					saved := held
					held = nil
					walk(lit.Body, false)
					held = saved
				} else if lock, _, _ := ex.classifyLockCall(n.Call); lock == "" {
					// `defer mu.Unlock()` is the release idiom, not a call
					// site; everything else deferred is a real call that
					// runs at exit with an unknowable lock context.
					ex.recordCall(sum, n.Call, nil, ctxParams, true, false)
				}
				for _, arg := range n.Call.Args {
					walk(arg, deferred)
				}
				return false
			case *ast.FuncLit:
				// A bare literal may be invoked synchronously (a fill
				// callback) or stashed for another goroutine; either way
				// nothing proves the current locks are held when it runs.
				saved := held
				held = nil
				walk(n.Body, false)
				held = saved
				return false
			case *ast.CallExpr:
				if lock, isAcquire, isRLock := ex.classifyLockCall(n); lock != "" {
					if isAcquire {
						if deferred {
							// A deferred Lock is pathological; ignore.
							return true
						}
						sum.Acquires = append(sum.Acquires, LockAcq{
							Lock:  lock,
							Pos:   ex.pos(n.Pos()),
							RLock: isRLock,
							Held:  append([]LockID(nil), held...),
						})
						if holdIdx(lock) < 0 {
							held = append(held, lock)
						}
					} else if !deferred {
						// Unlock in plain flow releases; inside a defer it
						// keeps the lock held for the rest of the body.
						if i := holdIdx(lock); i >= 0 {
							held = append(held[:i], held[i+1:]...)
						}
					}
					return true
				}
				ex.recordCall(sum, n, held, ctxParams, deferred, false)
				return true
			case *ast.SendStmt:
				sum.ChanOps = append(sum.ChanOps, ex.chanFact("send", n.Pos(), n.Chan, true))
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					sum.ChanOps = append(sum.ChanOps, ex.chanFact("receive", n.Pos(), n.X, true))
				}
			case *ast.RangeStmt:
				if t := ex.pkg.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						sum.ChanOps = append(sum.ChanOps, ex.chanFact("range", n.Pos(), n.X, true))
					}
				}
			}
			return true
		})
	}
	if b, ok := body.(*ast.BlockStmt); ok {
		walk(b, false)
	} else {
		walk(body, false)
	}
	return goBodies
}

func (ex *extractor) chanFact(kind string, pos token.Pos, ch ast.Expr, blocking bool) ChanOpFact {
	fact := ChanOpFact{Kind: kind, Pos: ex.pos(pos), Blocking: blocking}
	if obj := referentIn(ex.pkg.Info, ch); obj != nil {
		fact.Chan = obj.Name()
	}
	return fact
}

// classifyLockCall recognizes sync.Mutex / sync.RWMutex Lock / RLock /
// Unlock / RUnlock calls (including through an embedded mutex) and
// resolves the lock's module-wide identity. Returns ("", _, _) for
// every other call.
func (ex *extractor) classifyLockCall(call *ast.CallExpr) (lock LockID, acquire, rlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := ex.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false, false
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
		rlock = fn.Name() == "RLock"
	case "Unlock", "RUnlock":
	case "TryLock", "TryRLock":
		// A failed TryLock does not block; treat success as an acquire
		// for edge purposes (it still establishes ordering when held).
		acquire = true
		rlock = fn.Name() == "TryRLock"
	default:
		return "", false, false
	}
	id := ex.lockIdent(sel)
	if id == "" {
		return "", false, false
	}
	return id, acquire, rlock
}

// lockIdent resolves the receiver of a mutex method call to a stable
// module-wide lock identity. sel is the `x.mu.Lock` selector; the
// selection's index path names the mutex field even when it is
// embedded (s.Lock() on a struct embedding sync.Mutex).
func (ex *extractor) lockIdent(sel *ast.SelectorExpr) LockID {
	// Direct package-level mutex: mu.Lock() with mu a package var.
	if s := ex.pkg.Info.Selections[sel]; s != nil {
		t := s.Recv()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			obj := named.Obj()
			if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
				if obj.Pkg().Path() == "sync" {
					// Receiver is the mutex itself: resolve x in x.Lock().
					return ex.lockOwner(sel.X)
				}
			} else {
				// s.Lock() through an embedded mutex: identity is the
				// owning named type's embedded field.
				st, ok := named.Underlying().(*types.Struct)
				if ok && len(s.Index()) > 0 {
					idx := s.Index()[0]
					if idx < st.NumFields() {
						f := st.Field(idx)
						if isMutexType(f.Type()) {
							return LockID(fmt.Sprintf("%s.%s.%s", obj.Pkg().Path(), obj.Name(), f.Name()))
						}
					}
				}
			}
		}
	}
	return ex.lockOwner(sel.X)
}

// lockOwner resolves a mutex-valued expression (s.mu, pkg.mu, mu) to
// its identity: owning-struct field or package-level variable. Local
// variables return "".
func (ex *extractor) lockOwner(e ast.Expr) LockID {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s := ex.pkg.Info.Selections[e]; s != nil && s.Kind() == types.FieldVal {
			field, _ := s.Obj().(*types.Var)
			if field == nil || field.Pkg() == nil {
				return ""
			}
			t := s.Recv()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return LockID(fmt.Sprintf("%s.%s.%s", field.Pkg().Path(), named.Obj().Name(), field.Name()))
			}
			return LockID(field.Pkg().Path() + "." + field.Name())
		}
		// Package-qualified variable: pkg.Mu.
		if obj, ok := ex.pkg.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && isPkgLevel(obj) {
			return LockID(obj.Pkg().Path() + "." + obj.Name())
		}
	case *ast.Ident:
		if obj, ok := ex.pkg.Info.Uses[e].(*types.Var); ok && obj.Pkg() != nil && isPkgLevel(obj) {
			return LockID(obj.Pkg().Path() + "." + obj.Name())
		}
	}
	return ""
}

// isPkgLevel reports whether v is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// recordCall appends a CallSite for call (which is known not to be a
// mutex operation).
func (ex *extractor) recordCall(sum *FuncSummary, call *ast.CallExpr, held []LockID, ctxParams map[types.Object]bool, deferred, async bool) {
	cs := CallSite{
		Pos:      ex.pos(call.Pos()),
		Held:     append([]LockID(nil), held...),
		Deferred: deferred,
		Async:    async,
	}
	var calleeFn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		cs.Name = fun.Name
		calleeFn, _ = ex.pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		cs.Name = fun.Sel.Name
		if strings.HasPrefix(cs.Name, "Set") && (strings.Contains(cs.Name, "Deadline") || strings.Contains(cs.Name, "Timeout")) {
			sum.SetsDeadline = true
		}
		calleeFn, _ = ex.pkg.Info.Uses[fun.Sel].(*types.Func)
		if s := ex.pkg.Info.Selections[fun]; s != nil && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			if named, ok := derefNamed(s.Recv()); ok && named.Obj().Pkg() != nil {
				cs.Iface = IfaceMethodID(fmt.Sprintf("%s.%s.%s", named.Obj().Pkg().Path(), named.Obj().Name(), fun.Sel.Name))
			}
			cs.Blocking = blockingCallNames[cs.Name]
		}
	default:
		// Dynamic call (function value, conversion result): record the
		// site with no callee so held-lock facts still exist.
	}
	if calleeFn != nil {
		// Interface method objects resolve to the interface's method;
		// only record a concrete callee for statically-dispatched calls.
		if cs.Iface == "" {
			cs.Callee = FuncIDOf(calleeFn)
		}
		cs.CalleeTakesCtx = signatureTakesCtx(calleeFn)
	}
	for _, arg := range call.Args {
		t := ex.pkg.Info.TypeOf(arg)
		if t == nil || !isContextType(t) {
			continue
		}
		if isFreshContextExpr(ex.pkg.Info, arg) {
			cs.CtxFresh = true
			continue
		}
		if obj := referentIn(ex.pkg.Info, arg); obj != nil && ctxParams[obj] {
			cs.CtxForwarded = true
			continue
		}
		// Any other context value (derived local, field) counts as a
		// forward when the function has inbound ctx params at all —
		// ctx2, cancel := context.WithTimeout(ctx, ...) is the idiom.
		if len(ctxParams) > 0 {
			cs.CtxForwarded = true
		}
	}
	sum.Calls = append(sum.Calls, cs)
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// isFreshContextExpr reports whether e is a direct
// context.Background() or context.TODO() call.
func isFreshContextExpr(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// SignatureTakesCtx reports whether fn accepts a context.Context
// parameter. Exported for analyzers (ctxflow) that rule on it at the
// AST level, outside the summary extractor.
func SignatureTakesCtx(fn *types.Func) bool { return signatureTakesCtx(fn) }

// signatureTakesCtx reports whether fn accepts a context.Context.
func signatureTakesCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// receiverCarriesDeadline reports whether fn is a method whose
// receiver struct has a time.Duration Timeout/Deadline field.
func receiverCarriesDeadline(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		name := strings.ToLower(f.Name())
		if !strings.Contains(name, "timeout") && !strings.Contains(name, "deadline") {
			continue
		}
		if named, ok := f.Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration" {
				return true
			}
		}
	}
	return false
}

// referentIn is Pass.Referent without the Pass: resolve an expression
// to the variable-like object it denotes.
func referentIn(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if s := info.Selections[e]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		if obj := info.Uses[e.Sel]; obj != nil {
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
		}
	}
	return nil
}

// ParsePos splits a serialized "file:line:col" position back into a
// token.Position (column optional).
func ParsePos(s string) token.Position {
	var p token.Position
	// Split from the right: the filename may contain colons on other
	// platforms, line and column never do.
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		p.Filename = s
		return p
	}
	last, rest := s[i+1:], s[:i]
	j := strings.LastIndexByte(rest, ':')
	if j < 0 {
		p.Filename = rest
		p.Line, _ = strconv.Atoi(last)
		return p
	}
	if line, err := strconv.Atoi(rest[j+1:]); err == nil {
		p.Filename = rest[:j]
		p.Line = line
		p.Column, _ = strconv.Atoi(last)
	} else {
		p.Filename = rest
		p.Line, _ = strconv.Atoi(last)
	}
	return p
}
