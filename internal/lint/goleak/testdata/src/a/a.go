// Package a exercises goleak: goroutine launches with and without
// reachable stop paths.
package a

import "sync"

type conn struct{}

func (conn) Read() (int, error) { return 0, nil }
func (conn) Close() error       { return nil }

type ticker struct{}

func (ticker) Tick() {}

// work stands in for per-iteration business logic.
func work() {}

// Leaky spins forever with no quit channel, WaitGroup or closable —
// the classic leak.
func Leaky() {
	go func() { // want `goroutine has no reachable stop path`
		for {
			work()
		}
	}()
}

// LeakyNamed launches a named looping function with no stop path.
func LeakyNamed() {
	go pump() // want `goroutine pump has no reachable stop path`
}

func pump() {
	for {
		work()
	}
}

// LeakyUnclosable loops on a value whose type has no Close anywhere.
func LeakyUnclosable(t ticker) {
	go func() { // want `goroutine has no reachable stop path`
		for {
			t.Tick()
		}
	}()
}

// OneShot terminates on its own: no loop, no flag.
func OneShot() {
	go func() {
		work()
	}()
}

// QuitChannel is stoppable: the owner closes quit.
func QuitChannel(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
				work()
			}
		}
	}()
}

// RangeChannel drains a channel the owner closes.
func RangeChannel(jobs chan int) {
	go func() {
		for range jobs {
			work()
		}
	}()
}

// WaitGroup signals its owner on exit.
func WaitGroup(wg *sync.WaitGroup, n int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			work()
		}
	}()
}

// Server loops on a closable value its Close tears down — the
// accept-loop idiom.
type Server struct {
	c conn
}

// Serve launches the read loop; the loop ends when Close fails the
// blocking Read.
func (s *Server) Serve() {
	go s.loop()
}

func (s *Server) loop() {
	for {
		if _, err := s.c.Read(); err != nil {
			return
		}
	}
}

// Close stops the loop by closing what it blocks on.
func (s *Server) Close() error { return s.c.Close() }

// MuxClient is the multiplexed-client ownership pattern of the
// pipelined transport: a writer goroutine selecting on a send queue
// and a quit channel, and a reader goroutine polling the quit channel
// between blocking reads on a closable conn. Close owns both stop
// paths (close(quit) + conn.Close), so neither loop is a leak.
type MuxClient struct {
	c     conn
	sendq chan int
	quit  chan struct{}
	wg    sync.WaitGroup
}

// Start launches the writer/reader pair.
func (m *MuxClient) Start() {
	m.wg.Add(2)
	go m.writeLoop()
	go m.readLoop()
}

func (m *MuxClient) writeLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.sendq:
			work()
		case <-m.quit:
			return
		}
	}
}

func (m *MuxClient) readLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		default:
		}
		if _, err := m.c.Read(); err != nil {
			return
		}
	}
}

// Close stops both loops: quit unparks the writer, the conn close
// fails the reader's blocking Read.
func (m *MuxClient) Close() error {
	close(m.quit)
	err := m.c.Close()
	m.wg.Wait()
	return err
}

// Allowed documents a deliberate process-lifetime goroutine.
func Allowed() {
	go func() { //mits:allow goleak process-lifetime metrics pump
		for {
			work()
		}
	}()
}
