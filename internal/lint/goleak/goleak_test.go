package goleak

import (
	"testing"

	"mits/internal/lint"
)

func TestGoleak(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
