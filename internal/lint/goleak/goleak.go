// Package goleak flags goroutine launches with no reachable stop path.
//
// A MITS site is a long-lived server: the ATM link pumps, the TCP
// accept/serve loops, the conference fan-out and the stats endpoint
// all run on background goroutines, and a goroutine that nothing can
// stop is a leak that accumulates until the site dies under load. For
// every `go` statement the analyzer resolves the goroutine's reachable
// bodies (the launched function or literal plus everything it calls
// package-locally, via the lint call graph) and accepts the launch
// when at least one stop path is visible:
//
//   - quit channel — the goroutine receives from a channel, ranges
//     over one, or blocks in a select (the owner can close the channel
//     to release it); a context.Done() call counts the same way;
//   - sync.WaitGroup — the goroutine calls Done (typically deferred),
//     so an owner's Wait observes its exit;
//   - owner Close — the goroutine loops on calls to a value whose type
//     has a Close/Shutdown/Stop/Hangup method (a listener, connection,
//     server, ticker), and some other function in the package calls
//     that method on the same type: closing the value fails the
//     goroutine's blocking call and ends its loop.
//
// A goroutine whose reachable bodies contain no loop is assumed to
// terminate on its own and is not flagged (a one-shot send can still
// block forever — that is what the runtime leaktest helper is for).
// Launches of functions the analyzer cannot see into (other-package
// calls, dynamic calls) are only checked against the owner-Close rule,
// through the values flowing into the launch. Deliberate
// process-lifetime goroutines take //mits:allow goleak with a reason.
package goleak

import (
	"go/ast"
	"go/types"

	"mits/internal/lint"
)

// Analyzer is the goleak pass.
var Analyzer = &lint.Analyzer{
	Name: "goleak",
	Doc:  "report goroutine launches with no reachable stop path (quit channel, WaitGroup, or owner Close)",
	Run:  run,
}

// stopMethods are the conventional teardown method names whose presence
// (called elsewhere in the package on a type the goroutine blocks on)
// counts as a stop path.
var stopMethods = []string{"Close", "Shutdown", "Stop", "Hangup"}

func run(pass *lint.Pass) error {
	graph := lint.NewCallGraph(pass)
	launches := graph.Launches()
	if len(launches) == 0 {
		return nil
	}
	closedTypes := packageClosedTypes(pass)
	for _, l := range launches {
		checkLaunch(pass, l, closedTypes)
	}
	return nil
}

func checkLaunch(pass *lint.Pass, l lint.GoLaunch, closedTypes map[string]bool) {
	if hasLoop(l.Bodies) == false && len(l.Bodies) > 0 {
		return // one-shot goroutine: runs off the end
	}
	if receivesFromChannel(pass, l.Bodies) {
		return
	}
	if callsWaitGroupDone(pass, l.Bodies) {
		return
	}
	if blocksOnClosedValue(pass, l, closedTypes) {
		return
	}
	what := "goroutine"
	if l.Callee != nil {
		what = "goroutine " + l.Callee.Name()
	}
	pass.Reportf(l.Stmt.Pos(), "%s has no reachable stop path (no quit-channel receive, WaitGroup.Done, or owner Close of what it blocks on) — wire one or annotate //mits:allow goleak", what)
}

// hasLoop reports whether any reachable body contains a for/range loop.
func hasLoop(bodies []ast.Node) bool {
	for _, b := range bodies {
		found := false
		ast.Inspect(b, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// receivesFromChannel reports a quit-channel-shaped stop path: a
// channel receive, a range over a channel, a select statement, or a
// context Done() call anywhere in the reachable bodies.
func receivesFromChannel(pass *lint.Pass, bodies []ast.Node) bool {
	for _, b := range bodies {
		found := false
		ast.Inspect(b, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					found = true
				}
			case *ast.SelectStmt:
				found = true
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						found = true
					}
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
					if t := pass.TypesInfo.TypeOf(sel.X); t != nil && isContext(t) {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// callsWaitGroupDone reports whether the goroutine signals a
// sync.WaitGroup on exit.
func callsWaitGroupDone(pass *lint.Pass, bodies []ast.Node) bool {
	for _, b := range bodies {
		found := false
		ast.Inspect(b, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			if t := pass.TypesInfo.TypeOf(sel.X); t != nil && isWaitGroup(t) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// packageClosedTypes collects the type strings on which any function of
// the package calls a stop method — the "some owner tears this down"
// side of the owner-Close rule.
func packageClosedTypes(pass *lint.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !isStopName(sel.Sel.Name) {
				return true
			}
			if t := pass.TypesInfo.TypeOf(sel.X); t != nil {
				out[canonical(t)] = true
			}
			return true
		})
	}
	return out
}

func isStopName(name string) bool {
	for _, m := range stopMethods {
		if name == m {
			return true
		}
	}
	return false
}

// canonical normalizes a type for matching: deref pointers, print with
// full package paths.
func canonical(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return types.TypeString(t, nil)
}

// blocksOnClosedValue reports the owner-Close stop path: the goroutine
// calls a method on (or is launched on, or receives as inflow) a value
// whose type has a stop method, and the package calls that stop method
// on the same type somewhere.
func blocksOnClosedValue(pass *lint.Pass, l lint.GoLaunch, closedTypes map[string]bool) bool {
	check := func(t types.Type) bool {
		if t == nil || !lint.HasMethod(t, stopMethods...) {
			return false
		}
		return closedTypes[canonical(t)]
	}
	// Values flowing into the launch (receiver, args, captures).
	for _, obj := range l.Inflows {
		if check(obj.Type()) {
			return true
		}
	}
	// Method-call receivers inside the reachable bodies.
	for _, b := range l.Bodies {
		found := false
		ast.Inspect(b, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if check(pass.TypesInfo.TypeOf(sel.X)) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
