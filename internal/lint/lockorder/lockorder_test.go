package lockorder

import (
	"testing"

	"mits/internal/lint"
)

func TestLockorder(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a", "regress")
}

// TestLockorderCrossPackage loads the x/y pair as one module: the
// inversion spans two packages and an interface dispatch, and must be
// reported exactly once, anchored in x.
func TestLockorderCrossPackage(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "x", "y")
}
