// Package a exercises lockorder's package-local cycle detection: an
// AB/BA ordering inversion, a self-deadlock through a helper call, and
// the negative shapes (consistent order, release-before-acquire,
// goroutine launches) that must stay silent.
package a

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

type T struct {
	mu sync.Mutex
	n  int
}

var (
	gs S
	gt T
)

// AB locks S then T — one half of the inversion. The cycle is
// anchored here because a.S.mu sorts first and this is where a.T.mu is
// taken under it.
func AB() {
	gs.mu.Lock()
	gt.mu.Lock() // want "lock-order cycle"
	gt.n++
	gt.mu.Unlock()
	gs.n++
	gs.mu.Unlock()
}

// BA locks T then S — the other half.
func BA() {
	gt.mu.Lock()
	gs.mu.Lock()
	gs.n++
	gs.mu.Unlock()
	gt.n++
	gt.mu.Unlock()
}

type R struct {
	mu sync.Mutex
	n  int
}

// Outer holds r.mu and calls a helper that takes it again: a
// single-goroutine self-deadlock (Go mutexes are non-reentrant).
func (r *R) Outer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helper() // want "reacquired while already held"
	r.n++
}

func (r *R) helper() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
}

// ---- negatives ----

type U struct{ mu sync.Mutex }
type V struct{ mu sync.Mutex }

var (
	gu U
	gv V
)

// Consistent order in every function: U before V, no cycle.
func UV1() {
	gu.mu.Lock()
	gv.mu.Lock()
	gv.mu.Unlock()
	gu.mu.Unlock()
}

func UV2() {
	gu.mu.Lock()
	defer gu.mu.Unlock()
	gv.mu.Lock()
	defer gv.mu.Unlock()
}

// Sequential release-before-acquire orders nothing.
func VthenU() {
	gv.mu.Lock()
	gv.mu.Unlock()
	gu.mu.Lock()
	gu.mu.Unlock()
}

// A goroutine launched under a lock does not inherit the held set: no
// V → U edge, so still no cycle.
func LaunchUnderV() {
	gv.mu.Lock()
	go func() {
		gu.mu.Lock()
		gu.mu.Unlock()
	}()
	gv.mu.Unlock()
}
