// Package x is one side of the cross-package inversion suite: its
// Store locks its own mutex and then calls out through an interface
// whose only implementation lives in package y — the edge lockorder
// can only see by resolving interface calls module-wide.
package x

import "sync"

// Notifier is implemented by y.Cache.
type Notifier interface {
	Notify()
}

type Store struct {
	mu    sync.Mutex
	state int
}

// Reload holds Store.mu across the interface call; y.Cache.Notify
// takes y.Cache.mu, completing the first half of the cycle. The
// cycle anchors here: x sorts before y, so this edge is the
// canonical witness.
func (s *Store) Reload(n Notifier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state++
	n.Notify() // want "lock-order cycle"
}

// Flush is the callee y holds its own lock around.
func (s *Store) Flush() {
	s.mu.Lock()
	s.state = 0
	s.mu.Unlock()
}
