// Package y is the other side of the cross-package inversion: Evict
// holds Cache.mu across a call into x.Store.Flush (x.Store.mu), while
// its Notify — reached from x through the x.Notifier interface —
// takes Cache.mu under x.Store.mu. Neither package can see the cycle
// alone; the module-wide graph reports it once, anchored in x.
package y

import (
	"sync"

	"mits/internal/lint/lockorder/testdata/src/x"
)

type Cache struct {
	mu    sync.Mutex
	live  int
	store *x.Store
}

// Notify implements x.Notifier.
func (c *Cache) Notify() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.live++
}

// Evict holds Cache.mu across the Store call.
func (c *Cache) Evict() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.live = 0
	c.store.Flush()
}
