// Package regress pins the firing shape of the cross-package tripwire
// the suite test runs over the real tree: a collector that finalizes
// under its lock while shipping through an exporter, and an exporter
// that flushes under its lock while feeding batches back into the
// collector — the transport-writeLoop / collector-finalize /
// cache-singleflight interaction class from the delivery path,
// reduced to one package. If lockorder ever stops seeing this
// inversion, this suite fails before the real-tree tripwire has
// anything to miss.
package regress

import "sync"

type collector struct {
	mu     sync.Mutex
	traces map[uint64][]string
	exp    *exporter
}

type exporter struct {
	mu    sync.Mutex
	queue []string
	coll  *collector
}

// finalize holds collector.mu and pushes the finished trace through
// the exporter, which takes exporter.mu.
func (c *collector) finalize(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	spans := c.traces[id]
	delete(c.traces, id)
	c.exp.ship(spans) // want "lock-order cycle"
}

func (e *exporter) ship(spans []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queue = append(e.queue, spans...)
}

// flush holds exporter.mu and re-enters the collector, which takes
// collector.mu — the inversion.
func (e *exporter) flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, span := range e.queue {
		e.coll.add(span)
	}
	e.queue = e.queue[:0]
}

func (e *exporter) add(span string) {
	e.queue = append(e.queue, span)
}

func (c *collector) add(span string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traces[0] = append(c.traces[0], span)
}

// drainSafely is the fixed shape: snapshot under the lock, release,
// then call out — no edge, no cycle.
func (e *exporter) drainSafely() {
	e.mu.Lock()
	pending := append([]string(nil), e.queue...)
	e.queue = e.queue[:0]
	e.mu.Unlock()
	for _, span := range pending {
		e.coll.add(span)
	}
}
