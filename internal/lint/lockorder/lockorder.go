// Package lockorder finds potential deadlocks as cycles in the
// module-wide lock-ordering graph.
//
// The interprocedural layer (lint.Module) summarizes every function in
// every analyzed package: which mutexes it acquires, which locks are
// lexically held at each acquisition and call site, and which
// functions each call can reach — including calls through in-module
// interfaces, resolved to every implementation in the module. From
// those facts the module builds a directed graph over lock identities
// (pkg.Type.field / pkg.var): an edge A → B means some execution path
// acquires B while holding A, possibly many calls and packages away
// from where A was taken. A cycle in that graph is a lock-order
// inversion: two goroutines entering the cycle from different edges
// can each hold the lock the other needs. A self-edge is worse — Go
// mutexes are non-reentrant, so reacquiring a held lock deadlocks a
// single goroutine with no adversary required.
//
// Each cycle is reported exactly once, anchored at the witness
// position of the edge leaving the cycle's smallest lock, in the
// package that owns that position. The message spells the full cycle
// and each edge's call chain so the fix (pick one order, release
// before calling, or split the lock) is readable from the diagnostic.
//
// The analysis shares the summaries' lexical trade: held sets are
// source-order facts, not a happens-before proof. TryLock acquisitions
// count (a successful TryLock still orders), goroutine launches do not
// inherit the launcher's held set, and locks on different instances of
// one type collapse to one identity — the same approximation lockdep
// makes, and the same escape hatch applies: a cycle that is provably
// instance-disjoint gets an //mits:allow lockorder with the proof.
package lockorder

import (
	"strings"

	"mits/internal/lint"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc:  "report cycles in the module-wide lock-ordering graph as potential deadlocks",
	Run:  run,
}

func run(pass *lint.Pass) error {
	mod := pass.Module()
	for _, cyc := range mod.LockCycles() {
		if len(cyc.Edges) == 0 {
			continue
		}
		anchor := lint.ParsePos(cyc.Edges[0].Witness)
		if !pass.OwnsFile(anchor.Filename) {
			continue
		}
		pass.ReportAt(anchor, "%s", message(cyc))
	}
	return nil
}

// message renders one cycle. Self-loop:
//
//	potential deadlock: a.R.mu reacquired while already held (via helper → ...)
//
// Cycle:
//
//	potential deadlock: lock-order cycle a.S.mu → a.T.mu → a.S.mu; a.T.mu
//	acquired at a.go:12:2 while a.S.mu held; a.S.mu acquired at ... while ...
func message(cyc lint.LockCycle) string {
	var b strings.Builder
	if len(cyc.Locks) == 1 {
		e := cyc.Edges[0]
		b.WriteString("potential deadlock: ")
		b.WriteString(string(e.From))
		b.WriteString(" reacquired while already held")
		if e.Via != "" {
			b.WriteString(" (via ")
			b.WriteString(e.Via)
			b.WriteString(")")
		}
		return b.String()
	}
	b.WriteString("potential deadlock: lock-order cycle ")
	for _, l := range cyc.Locks {
		b.WriteString(string(l))
		b.WriteString(" → ")
	}
	b.WriteString(string(cyc.Locks[0]))
	for _, e := range cyc.Edges {
		b.WriteString("; ")
		b.WriteString(string(e.To))
		b.WriteString(" taken at ")
		b.WriteString(shortPos(e.Witness))
		b.WriteString(" while ")
		b.WriteString(string(e.From))
		b.WriteString(" held")
		if e.Via != "" {
			b.WriteString(" (via ")
			b.WriteString(e.Via)
			b.WriteString(")")
		}
	}
	return b.String()
}

// shortPos trims a witness position to its base filename — the full
// path is in the diagnostic's own position; repeating directories for
// every edge drowns the cycle.
func shortPos(pos string) string {
	if i := strings.LastIndexByte(pos, '/'); i >= 0 {
		return pos[i+1:]
	}
	return pos
}
