package errdrop

import (
	"testing"

	"mits/internal/lint"
)

func TestErrdrop(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a", "transport")
}
