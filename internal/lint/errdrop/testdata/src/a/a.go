// Package a exercises errdrop against the fake transport package.
package a

import (
	"fmt"

	"mits/internal/lint/errdrop/testdata/src/transport"
)

// Drops collects every flagged form.
func Drops(c *transport.Client) {
	c.Close()                  // want `error from transport.Close is ignored`
	_ = c.Close()              // want `error from transport.Close assigned to _`
	_, _ = c.Call("m")         // want `error from transport.Call assigned to _`
	_, _ = transport.Write(nil) // want `error from transport.Write assigned to _`
	defer c.Close()            // want `error from transport.Close is deferred and ignored`
	go c.Close()               // want `error from transport.Close is spawned and ignored`
}

// Handled shows the accepted forms: binding the error, binding only
// the error, non-error calls, and the explicit annotation.
func Handled(c *transport.Client) error {
	if err := c.Close(); err != nil {
		return err
	}
	payload, err := c.Call("m")
	if err != nil {
		return err
	}
	_, err = transport.Write(payload)
	if err != nil {
		return err
	}
	c.Ping() // no error result: fine
	fmt.Println(len(payload))
	c.Close() //mits:allow errdrop best-effort teardown
	return nil
}

// RetryClient mirrors the transport retry helper's name: the errdrop
// retry-helper convention is receiver-name based, so its methods may
// drop Close errors (the attempt's error was already surfaced) but
// nothing else.
type RetryClient struct{ cur *transport.Client }

func (r *RetryClient) discard(c *transport.Client) {
	r.cur = nil
	c.Close() // exempt: Close inside a retry-helper method
}

func (r *RetryClient) refresh() {
	r.cur.Call("m") // want `error from transport.Call is ignored`
}

// NotAHelper has a non-registered receiver: Close drops are still
// flagged.
type NotAHelper struct{}

func (n *NotAHelper) teardown(c *transport.Client) {
	c.Close() // want `error from transport.Close is ignored`
}
