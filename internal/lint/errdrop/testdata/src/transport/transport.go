// Package transport is a stand-in I/O layer for errdrop tests; the
// analyzer targets any package with a "transport" path segment.
package transport

import "errors"

// Client is a fake connection.
type Client struct{}

// Call fakes an RPC round trip.
func (c *Client) Call(method string) ([]byte, error) {
	if method == "" {
		return nil, errors.New("empty method")
	}
	return []byte(method), nil
}

// Close fakes releasing the connection.
func (c *Client) Close() error { return nil }

// Ping has no error result; dropping its result is fine.
func (c *Client) Ping() bool { return true }

// Write fakes a frame write.
func Write(b []byte) (int, error) { return len(b), nil }

// RetryClient is the fake retry helper: errdrop exempts dropped Close
// errors inside its methods (the retry loop already surfaced the
// attempt's failure).
type RetryClient struct {
	cur *Client
}

// discard drops a failed connection; the Close error is noise by the
// retry-helper convention and must not be flagged.
func (r *RetryClient) discard(c *Client) {
	r.cur = nil
	c.Close()
}

// Call retries through the helper; a dropped Call error is still
// flagged even inside a retry helper — only Close is exempt.
func (r *RetryClient) Call(method string) ([]byte, error) {
	if r.cur == nil {
		r.cur = &Client{}
	}
	out, err := r.cur.Call(method)
	if err != nil {
		r.discard(r.cur)
	}
	return out, err
}
