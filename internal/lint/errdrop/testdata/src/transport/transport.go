// Package transport is a stand-in I/O layer for errdrop tests; the
// analyzer targets any package with a "transport" path segment.
package transport

import "errors"

// Client is a fake connection.
type Client struct{}

// Call fakes an RPC round trip.
func (c *Client) Call(method string) ([]byte, error) {
	if method == "" {
		return nil, errors.New("empty method")
	}
	return []byte(method), nil
}

// Close fakes releasing the connection.
func (c *Client) Close() error { return nil }

// Ping has no error result; dropping its result is fine.
func (c *Client) Ping() bool { return true }

// Write fakes a frame write.
func Write(b []byte) (int, error) { return len(b), nil }
