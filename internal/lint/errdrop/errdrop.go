// Package errdrop flags discarded error returns from the I/O layers —
// functions and methods declared in a transport or mediastore package.
//
// Frames that fail to write and store operations that fail to persist
// are exactly the failures a content server must surface (the thesis's
// client–server database of §3.4.2 / §5.3.2); a dropped error there
// silently loses a student's data. Flagged forms:
//
//	store.PutContent(...)        // bare call statement
//	_ = client.Close()           // blank assignment
//	v, _ := store.GetDocument(n) // blank error in a tuple
//	defer client.Close()         // deferred, error unobservable
//	go writeFrame(w, f)          // goroutine, error unobservable
//
// Intentional best-effort calls take //mits:allow errdrop on the line.
//
// One structural exemption: Close calls inside methods of the
// transport retry helpers (RetryHelperReceivers, e.g. RetryClient) are
// not flagged. A retry helper discards a failed connection after the
// attempt's error has already been captured and wrapped for the
// caller; the discarded Close error is noise by contract, and
// annotating every such line would train readers to ignore the
// annotation.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"mits/internal/lint"
)

// TargetSegments names the import-path segments whose errors must not
// be dropped.
var TargetSegments = []string{"transport", "mediastore"}

// RetryHelperReceivers names receiver types whose methods may drop
// Close errors: the retry loop has already captured the attempt's
// real error, and the discarded connection's close result is noise.
var RetryHelperReceivers = map[string]bool{"RetryClient": true}

// Analyzer is the errdrop pass.
var Analyzer = &lint.Analyzer{
	Name: "errdrop",
	Doc:  "report discarded errors from transport and mediastore calls",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			exempt := false
			if fd, ok := decl.(*ast.FuncDecl); ok {
				exempt = isRetryHelperMethod(fd)
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						checkDropped(pass, call, "ignored", exempt)
					}
				case *ast.DeferStmt:
					checkDropped(pass, n.Call, "deferred and ignored", exempt)
				case *ast.GoStmt:
					checkDropped(pass, n.Call, "spawned and ignored", exempt)
				case *ast.AssignStmt:
					checkBlanked(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// isRetryHelperMethod reports whether fd is a method whose receiver's
// type name is registered in RetryHelperReceivers.
func isRetryHelperMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && RetryHelperReceivers[id.Name]
}

// targetFunc resolves a call to a function object declared in a target
// package, returning nil otherwise.
func targetFunc(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	for _, seg := range strings.Split(fn.Pkg().Path(), "/") {
		for _, want := range TargetSegments {
			if seg == want {
				return fn
			}
		}
	}
	return nil
}

// errorPositions returns the result-tuple indices of type error.
func errorPositions(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			out = append(out, i)
		}
	}
	return out
}

func checkDropped(pass *lint.Pass, call *ast.CallExpr, how string, inRetryHelper bool) {
	fn := targetFunc(pass, call)
	if fn == nil || len(errorPositions(fn)) == 0 {
		return
	}
	if inRetryHelper && fn.Name() == "Close" {
		return // retry helpers discard failed connections by contract
	}
	pass.Reportf(call.Pos(), "error from %s.%s is %s — handle it or annotate //mits:allow errdrop", fn.Pkg().Name(), fn.Name(), how)
}

// checkBlanked flags assignments where every error result of a target
// call lands in the blank identifier.
func checkBlanked(pass *lint.Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := targetFunc(pass, call)
	if fn == nil {
		return
	}
	errPos := errorPositions(fn)
	if len(errPos) == 0 {
		return
	}
	for _, i := range errPos {
		if i >= len(assign.Lhs) || !isBlank(assign.Lhs[i]) {
			return // at least one error result is bound
		}
	}
	pass.Reportf(assign.Pos(), "error from %s.%s assigned to _ — handle it or annotate //mits:allow errdrop", fn.Pkg().Name(), fn.Name())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
