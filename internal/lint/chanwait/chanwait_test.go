package chanwait

import (
	"testing"

	"mits/internal/lint"
)

func TestChanwait(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a", "regress")
}
