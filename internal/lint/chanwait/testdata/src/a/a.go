// Package a exercises chanwait: completion-wait selects and
// counterpart-less package-private channels.
package a

import "sync"

// ---- completion-wait rule ----

// call mirrors a pending RPC: done is its completion channel, closed
// by the owner's failure path.
type call struct {
	id   int
	done chan struct{}
	err  error
}

type client struct {
	mu      sync.Mutex
	sendq   chan *call
	quit    chan struct{}
	pending map[int]*call
}

// fail is the teardown path: it completes every pending call.
func (c *client) fail(err error) {
	c.mu.Lock()
	drained := c.pending
	c.pending = map[int]*call{}
	c.mu.Unlock()
	for _, pc := range drained {
		pc.err = err
		close(pc.done)
	}
}

// enqueueBad is the PR-5 sendq hang: a caller blocked on a full sendq
// sleeps through fail() closing pc.done.
func (c *client) enqueueBad(pc *call) {
	select {
	case c.sendq <- pc: // want "select sends pc onto c.sendq without waiting on its completion channel pc.done"
	case <-c.quit:
	}
	<-pc.done
}

// enqueueGood waits on the call's own completion channel too.
func (c *client) enqueueGood(pc *call) {
	select {
	case c.sendq <- pc:
	case <-pc.done:
	case <-c.quit:
	}
	<-pc.done
}

// enqueueNonBlocking has a default arm: it cannot park, so the missing
// completion wait is harmless.
func (c *client) enqueueNonBlocking(pc *call) bool {
	select {
	case c.sendq <- pc:
		return true
	default:
		return false
	}
}

// plain values without a completion channel are out of scope.
type note struct{ text string }

type board struct {
	posts chan note
	quit  chan struct{}
}

func (b *board) post(n note) {
	select {
	case b.posts <- n:
	case <-b.quit:
	}
}

func (c *client) writeLoop() {
	for {
		select {
		case pc := <-c.sendq:
			_ = pc
		case <-c.quit:
			return
		}
	}
}

func (b *board) drain() {
	for range b.posts {
	}
}

func (c *client) closeAll() {
	close(c.quit)
	c.fail(nil)
}

func (b *board) close() { close(b.quit) }

// ---- counterpart rule ----

// orphan has a send but no receive anywhere in the package.
var orphan = make(chan int)

func sendOrphan() {
	orphan <- 1 // want "send on orphan can never complete"
}

// deafened has a receive but no send and no close.
var deafened = make(chan int)

func recvDeafened() int {
	return <-deafened // want "receive on deafened can never complete"
}

// paired has both sides.
var paired = make(chan int, 1)

func sendPaired() { paired <- 1 }
func recvPaired() { <-paired }

// closedOnly is completed by close: a quit-channel shape.
var closedOnly = make(chan struct{})

func waitClosed() { <-closedOnly }
func release()    { close(closedOnly) }

// escapes is handed to another function, so its counterpart may live
// outside the package-local view.
var escapes = make(chan int)

func sendEscapes() {
	escapes <- 1
}

func handOff(register func(chan int)) {
	register(escapes)
}

// Exported channels may be completed by other packages.
var Exported = make(chan int)

func sendExported() { Exported <- 1 }

// allowed is suppressed with a justification.
var allowed = make(chan int)

func sendAllowed() {
	allowed <- 1 //mits:allow chanwait counterpart lives in a test harness
}
