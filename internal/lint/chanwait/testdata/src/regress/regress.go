// Package regress is the PR-5 sendq-hang regression corpus: the
// enqueue select of the multiplexed TCP client, in the exact broken
// shape the post-PR-5 review found (no wait on the call's done
// channel) and in the fixed shape shipping in internal/transport. If
// the transport fix is ever reverted, the suite cross-test over this
// package is the tripwire that keeps the bug class named.
package regress

import "sync"

type frame struct{ corr uint64 }

type pendingCall struct {
	req  *frame
	done chan struct{}
	err  error
}

type muxClient struct {
	sendq chan *pendingCall
	quit  chan struct{}

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	dead    error
}

// fail drains the pending map and completes every call — including
// ones still parked on a full sendq. That is why the enqueue select
// must carry the pc.done arm.
func (c *muxClient) fail(cause error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = cause
	}
	drained := c.pending
	c.pending = make(map[uint64]*pendingCall)
	c.mu.Unlock()
	for _, pc := range drained {
		pc.err = cause
		close(pc.done)
	}
}

// issueBroken is the reverted PR-5 bug: with sendq full and the
// connection dying, fail() closes pc.done but nobody here is waiting
// on it — the caller hangs on the enqueue forever.
func (c *muxClient) issueBroken(pc *pendingCall) error {
	select {
	case c.sendq <- pc: // want "select sends pc onto c.sendq without waiting on its completion channel pc.done"
	case <-c.quit:
	}
	<-pc.done
	return pc.err
}

// issueFixed is the shipping shape: the enqueue select waits on the
// call's own completion channel, so fail() releases a parked sender.
func (c *muxClient) issueFixed(pc *pendingCall) error {
	select {
	case c.sendq <- pc:
	case <-pc.done:
		// Connection died while the send queue was full; take the
		// failure from the completion wait below.
	case <-c.quit:
	}
	<-pc.done
	return pc.err
}

func (c *muxClient) writeLoop() {
	for {
		select {
		case pc := <-c.sendq:
			_ = pc.req
		case <-c.quit:
			return
		}
	}
}

func (c *muxClient) close() {
	close(c.quit)
	c.fail(nil)
}
