// Package chanwait flags blocking channel operations that a teardown
// path cannot release.
//
// The multiplexed transport (DESIGN §10) hangs a bounded-delay
// guarantee on hand-built channel protocols: callers park on send
// queues and completion channels, and the failure path — fail(),
// Close(), a dead peer — must be able to wake every one of them. The
// post-PR-5 review found the exact bug this analyzer encodes: the
// enqueue select in TCPClient.issue waited on the send queue and the
// quit channel but not on the call's own done channel, so a caller
// blocked on a full queue slept through fail() completing its call and
// hung forever. Two rules:
//
//   - completion-wait: a select (without default) that sends a value
//     whose struct type carries a completion channel — a chan-typed
//     field some package function close()s — must also wait on that
//     completion channel (`case <-v.done:`). Without the arm, a
//     teardown that completes the parked value cannot release the
//     blocked sender.
//
//   - counterpart: a blocking send or receive on a package-private
//     channel (an unexported field of a package-local struct, or an
//     unexported package-level var) must have a completing counterpart
//     somewhere in the package — a receive or range for a send; a send
//     or close for a receive. A channel nobody else can even name, with
//     no counterpart in the package, blocks its goroutine forever.
//     Channels that escape the package-local view (passed to calls,
//     stored into other structures) are exempt: their counterpart may
//     live elsewhere.
//
// Both rules are package-local and syntactic; a protocol whose
// counterpart is genuinely external takes //mits:allow chanwait with a
// reason.
package chanwait

import (
	"go/ast"
	"go/types"

	"mits/internal/lint"
)

// Analyzer is the chanwait pass.
var Analyzer = &lint.Analyzer{
	Name: "chanwait",
	Doc:  "report blocking channel operations a teardown path cannot release (missing completion-channel arm, or no package-local counterpart)",
	Run:  run,
}

func run(pass *lint.Pass) error {
	conc := lint.NewConc(pass)
	if len(conc.Ops) == 0 {
		return nil
	}
	comp := conc.Completers()
	checkCompletionWaits(pass, conc, comp)
	checkCounterparts(pass, conc, comp)
	return nil
}

// checkCompletionWaits enforces the PR-5 sendq-hang rule: a select
// sending a value with a closed completion-channel field must wait on
// that field.
func checkCompletionWaits(pass *lint.Pass, conc *lint.Conc, comp lint.Completers) {
	for _, op := range conc.Ops {
		if op.Kind != lint.ChanSend || op.Select == nil || op.SelectDefault {
			continue
		}
		send := sendStmtOf(op)
		if send == nil {
			continue
		}
		valObj := pass.Referent(send.Value)
		if valObj == nil {
			continue
		}
		fields := completionFields(pass, valObj.Type(), comp)
		if len(fields) == 0 {
			continue
		}
		if waitsOnAny(pass, op.Select, valObj, fields) {
			continue
		}
		queue := types.ExprString(op.Chan)
		pass.Reportf(op.Pos, "select sends %s onto %s without waiting on its completion channel %s.%s (closed by this package on teardown) — a sender blocked here sleeps through the completion and hangs; add `case <-%s.%s:`",
			valObj.Name(), queue, valObj.Name(), fields[0].Name(), valObj.Name(), fields[0].Name())
	}
}

// sendStmtOf recovers the send statement of a select-case send op.
func sendStmtOf(op lint.ChanOp) *ast.SendStmt {
	for _, s := range op.Select.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if send, ok := cc.Comm.(*ast.SendStmt); ok && send.Chan == op.Chan {
			return send
		}
	}
	return nil
}

// completionFields returns the chan-typed fields of the (pointer-to-)
// struct type t that some function of the package closes — the type's
// completion channels.
func completionFields(pass *lint.Pass, t types.Type, comp lint.Completers) []*types.Var {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if _, isChan := fld.Type().Underlying().(*types.Chan); !isChan {
			continue
		}
		if len(comp.Closers[fld]) > 0 {
			out = append(out, fld)
		}
	}
	return out
}

// waitsOnAny reports whether the select has a receive case on val.F for
// any completion field F.
func waitsOnAny(pass *lint.Pass, sel *ast.SelectStmt, valObj types.Object, fields []*types.Var) bool {
	for _, s := range sel.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recvChan ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && ue.Op.String() == "<-" {
				recvChan = ue.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if ue, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op.String() == "<-" {
					recvChan = ue.X
				}
			}
		}
		if recvChan == nil {
			continue
		}
		se, ok := ast.Unparen(recvChan).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if pass.Referent(se.X) != valObj {
			continue
		}
		fldObj := pass.Referent(se)
		for _, fld := range fields {
			if fldObj == fld {
				return true
			}
		}
	}
	return false
}

// checkCounterparts enforces the package-private counterpart rule.
func checkCounterparts(pass *lint.Pass, conc *lint.Conc, comp lint.Completers) {
	reported := make(map[types.Object]bool)
	for _, op := range conc.Ops {
		if !op.Blocking() || op.Obj == nil || reported[op.Obj] {
			continue
		}
		// Select cases are exempt from the counterpart rule: the select
		// as a whole can complete through its other arms, and the
		// completion-wait rule above owns the missing-arm class.
		if op.Select != nil {
			continue
		}
		if !packagePrivateChan(pass, op.Obj) || conc.OpaqueChans[op.Obj] {
			continue
		}
		switch op.Kind {
		case lint.ChanSend:
			if len(comp.Receivers[op.Obj]) == 0 {
				reported[op.Obj] = true
				pass.Reportf(op.Pos, "send on %s can never complete: no receive or range on it anywhere in this package, and it is invisible outside — the sender blocks forever", op.Obj.Name())
			}
		case lint.ChanRecv, lint.ChanRange:
			if len(comp.Senders[op.Obj]) == 0 && len(comp.Closers[op.Obj]) == 0 {
				reported[op.Obj] = true
				pass.Reportf(op.Pos, "receive on %s can never complete: no send or close on it anywhere in this package, and it is invisible outside — the receiver blocks forever", op.Obj.Name())
			}
		}
	}
}

// packagePrivateChan reports whether the channel object is invisible
// outside the package: an unexported field of a package-local struct
// whose type is itself unexported or whose field cannot be reached, or
// an unexported package-level variable. Locals are excluded (their
// lifetime is one call; goleak and the runtime leaktest own those),
// as are exported names (another package may hold the counterpart).
func packagePrivateChan(pass *lint.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Exported() || v.Pkg() != pass.Pkg {
		return false
	}
	if v.IsField() {
		return true
	}
	// Package-level var?
	return v.Parent() == pass.Pkg.Scope()
}
