// Package a exercises spancheck: spans ended on every path, ended via
// defer or closure, escaping, and leaked on early returns.
package a

import "errors"

// Span mimics obs.Span: tracked because the constructors below are
// named like the obs ones and the result has an End method.
type Span struct {
	Trace uint64
}

// End finishes the span.
func (s *Span) End(err error) {}

// Context inspects the span without ending it.
func (s *Span) Context() uint64 { return s.Trace }

// StartSpan mimics obs.StartSpan.
func StartSpan(name, kind string) *Span { return &Span{} }

// ContinueSpan mimics obs.ContinueSpan.
func ContinueSpan(name, kind string, trace, parent uint64) *Span { return &Span{} }

// SpanFromContext mimics obs.SpanFromContext.
func SpanFromContext(name, kind string, trace uint64) *Span { return &Span{} }

var errBoom = errors.New("boom")

func record(sp *Span) {}

type pending struct{ sp *Span }

// Leaked starts a span and never ends it.
func Leaked() {
	sp := StartSpan("op", "client") // want `span sp does not reach End on every path`
	if sp.Context() == 0 {
		return
	}
}

// MissedOnErrorPath ends the span on success but not on the error
// return — the classic bug this analyzer exists for.
func MissedOnErrorPath(fail bool) error {
	sp := StartSpan("op", "server") // want `span sp does not reach End on every path`
	if fail {
		return errBoom
	}
	sp.End(nil)
	return nil
}

// EndedOnAllPaths ends explicitly on both branches.
func EndedOnAllPaths(fail bool) error {
	sp := StartSpan("op", "server")
	if fail {
		sp.End(errBoom)
		return errBoom
	}
	sp.End(nil)
	return nil
}

// Deferred covers every path with one defer.
func Deferred(fail bool) error {
	sp := ContinueSpan("op", "server", 1, 2)
	defer sp.End(nil)
	if fail {
		return errBoom
	}
	return nil
}

// Captured hands the span to a closure (the pending-reply-map shape);
// the closure is trusted to end it.
func Captured(calls map[int]*pending, done *func(error)) {
	sp := StartSpan("op", "client")
	*done = func(err error) { sp.End(err) }
}

// Escapes hands the span away: returned, stored, passed on — each one
// someone else's to end.
func Escapes(which int, calls map[int]*pending) *Span {
	switch which {
	case 0:
		sp := StartSpan("a", "client")
		return sp
	case 1:
		sp := StartSpan("b", "client")
		calls[1] = &pending{sp: sp}
	case 2:
		sp := StartSpan("c", "client")
		record(sp)
	}
	return nil
}

// ConditionalAcquire builds the span only when traced — the nil-safe
// End then covers both shapes (the transport server-dispatch pattern).
func ConditionalAcquire(traced bool) {
	var sp *Span
	if traced {
		sp = ContinueSpan("op", "server", 3, 4)
	}
	sp.End(nil)
}

// SwitchMiss releases in one case but the no-match path falls through
// with the span live.
func SwitchMiss(k int) {
	sp := StartSpan("op", "server") // want `span sp does not reach End on every path`
	switch k {
	case 1:
		sp.End(nil)
	}
}

// SwitchCovered has a default, so every path ends the span.
func SwitchCovered(k int) {
	sp := StartSpan("op", "server")
	switch k {
	case 1:
		sp.End(errBoom)
	default:
		sp.End(nil)
	}
}

// LoopLeak mints a fresh span each iteration and ends none of them.
func LoopLeak(n int) {
	for i := 0; i < n; i++ {
		sp := SpanFromContext("op", "server", 9) // want `span sp does not reach End on every path`
		if sp.Context() == 9 {
			continue
		}
	}
}

// LoopEnded ends each iteration's span before the next.
func LoopEnded(n int) {
	for i := 0; i < n; i++ {
		sp := StartSpan("op", "server")
		sp.End(nil)
	}
}

// Allowed documents an intentional leak.
//
//mits:allow spancheck process-lifetime root span, ended at exit elsewhere
func Allowed() {
	sp := StartSpan("main", "internal")
	_ = sp.Context()
}

// NotASpan looks like a constructor call but the result has no End
// method; untracked.
func NotASpan() {
	v := otherStart("x")
	_ = v
}

type plain struct{}

func otherStart(string) *plain { return &plain{} }
