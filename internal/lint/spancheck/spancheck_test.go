package spancheck

import (
	"testing"

	"mits/internal/lint"
)

func TestSpancheck(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
