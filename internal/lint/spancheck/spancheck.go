// Package spancheck flags trace spans that can exit their creating
// function without being ended.
//
// A span from StartSpan / ContinueSpan / SpanFromContext is only
// recorded — and only exported to the collector — when End runs. A
// path that returns early (typically an error return) without ending
// the span silently drops that hop from every trace that takes the
// path, which is precisely when the trace is most wanted: the flight
// recorder keeps error traces first. closecheck cannot express this —
// it accepts any Close anywhere in the function — so this analyzer is
// flow-sensitive: it walks the statement list, tracking which spans
// are live, and requires each to be ended or handed away on *every*
// path out of the function.
//
// A span stops being the creating function's problem when it
//
//   - has End called on it (directly or via defer — defer covers all
//     paths by construction),
//   - is captured by a function literal (the closure ends it later:
//     the pending-call map in atmrpc is the canonical shape),
//   - escapes: returned, passed as a call argument, stored in a
//     composite literal / field / variable, sent on a channel, or has
//     its address taken.
//
// Mere inspection — comparing the span to nil, reading sp.Trace or
// sp.Dur, calling sp.Context() — is not an escape: those are exactly
// the uses that appear on the buggy early-return paths.
//
// Paths merge conservatively: after if/else the live set is the union
// of the branches that fall through; a switch or select only
// terminates flow when it has a default/comm-complete structure and
// every clause terminates. Spans created inside a loop body must be
// resolved inside the body (each iteration makes a fresh one).
// Intentional exceptions take //mits:allow spancheck with a reason.
package spancheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"mits/internal/lint"
)

// Analyzer is the spancheck pass.
var Analyzer = &lint.Analyzer{
	Name: "spancheck",
	Doc:  "report trace spans (StartSpan/ContinueSpan/SpanFromContext) that miss End on some path",
	Run:  run,
}

// constructors are the call names whose results this analyzer tracks.
var constructors = map[string]bool{
	"StartSpan":       true,
	"ContinueSpan":    true,
	"SpanFromContext": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncAllowed(fd) {
				continue
			}
			c := &checker{pass: pass, parents: lint.Parents(fd.Body)}
			live, terminated := c.stmts(fd.Body.List, liveSet{})
			if !terminated {
				c.reportLive(live)
			}
		}
	}
	return nil
}

// acq is one tracked span acquisition. reported is shared across path
// copies so each leaky span is diagnosed once, at its creation site.
type acq struct {
	v        *types.Var
	call     *ast.CallExpr
	reported bool
}

// liveSet maps span variables to their acquisitions on one path.
// Releasing (End, capture, escape) deletes the entry from that path's
// copy; merging paths unions the survivors.
type liveSet map[*types.Var]*acq

func (l liveSet) clone() liveSet {
	c := make(liveSet, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

func union(a, b liveSet) liveSet {
	out := a.clone()
	for k, v := range b {
		out[k] = v
	}
	return out
}

type checker struct {
	pass    *lint.Pass
	parents map[ast.Node]ast.Node
}

func (c *checker) reportLive(live liveSet) {
	for _, a := range live {
		if a.reported {
			continue
		}
		a.reported = true
		c.pass.Reportf(a.call.Pos(),
			"span %s does not reach End on every path out of the function; end it (error returns too), hand it off, or annotate //mits:allow spancheck",
			a.v.Name())
	}
}

// stmts interprets a statement list against the incoming live set,
// returning the live set at fall-through and whether every path
// through the list terminates (return / branch / panic-shaped flow).
func (c *checker) stmts(list []ast.Stmt, live liveSet) (liveSet, bool) {
	for _, s := range list {
		var terminated bool
		live, terminated = c.stmt(s, live)
		if terminated {
			return live, true
		}
	}
	return live, false
}

func (c *checker) stmt(s ast.Stmt, live liveSet) (liveSet, bool) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			c.scan(e, live)
		}
		c.reportLive(live)
		return live, true

	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; the target
		// context re-checks what it must. Conservative: stop here.
		return live, true

	case *ast.BlockStmt:
		return c.stmts(st.List, live)

	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, live)

	case *ast.IfStmt:
		if st.Init != nil {
			live, _ = c.stmt(st.Init, live)
		}
		c.scan(st.Cond, live)
		thenLive, thenTerm := c.stmts(st.Body.List, live.clone())
		elseLive, elseTerm := live, false
		if st.Else != nil {
			elseLive, elseTerm = c.stmt(st.Else, live.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return liveSet{}, true
		case thenTerm:
			return elseLive, false
		case elseTerm:
			return thenLive, false
		default:
			return union(thenLive, elseLive), false
		}

	case *ast.ForStmt:
		if st.Init != nil {
			live, _ = c.stmt(st.Init, live)
		}
		if st.Cond != nil {
			c.scan(st.Cond, live)
		}
		return c.loopBody(st.Body.List, st.Post, live)

	case *ast.RangeStmt:
		c.scan(st.X, live)
		return c.loopBody(st.Body.List, nil, live)

	case *ast.SwitchStmt:
		if st.Init != nil {
			live, _ = c.stmt(st.Init, live)
		}
		if st.Tag != nil {
			c.scan(st.Tag, live)
		}
		return c.clauses(st.Body.List, live, false)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			live, _ = c.stmt(st.Init, live)
		}
		c.scan(st.Assign, live)
		return c.clauses(st.Body.List, live, false)

	case *ast.SelectStmt:
		// A select without default still runs exactly one clause, so
		// unlike a switch it terminates when all clauses do.
		return c.clauses(st.Body.List, live, true)

	case *ast.DeferStmt:
		c.scan(st.Call, live)
		return live, false

	case *ast.GoStmt:
		c.scan(st.Call, live)
		return live, false

	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			c.scan(rhs, live)
		}
		for _, lhs := range st.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				c.scan(lhs, live) // h.sp = x, m[k] = x: index/field exprs may use spans
			}
		}
		if len(st.Rhs) == 1 {
			if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && isConstructor(call) {
				for _, lhs := range st.Lhs {
					if v := c.lhsVar(lhs); v != nil && hasEndMethod(v.Type()) {
						live[v] = &acq{v: v, call: call}
					}
				}
			}
		}
		return live, false

	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return live, false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, val := range vs.Values {
				c.scan(val, live)
			}
			if len(vs.Values) != 1 {
				continue
			}
			call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
			if !ok || !isConstructor(call) {
				continue
			}
			for _, name := range vs.Names {
				if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok && hasEndMethod(v.Type()) {
					live[v] = &acq{v: v, call: call}
				}
			}
		}
		return live, false

	default:
		if s != nil {
			c.scan(s, live)
		}
		return live, false
	}
}

// loopBody interprets a loop body on a copy of the live set. Spans
// created inside the body leak once per iteration if still live at
// the body's end, so they are reported there; spans from outside the
// loop released in the body are accepted (optimistic: loops that
// guard an End are rare and a zero-iteration miss is the cheaper
// error direction than flagging every End-in-loop).
func (c *checker) loopBody(body []ast.Stmt, post ast.Stmt, live liveSet) (liveSet, bool) {
	bodyLive, _ := c.stmts(body, live.clone())
	if post != nil {
		c.stmt(post, bodyLive)
	}
	inner := liveSet{}
	for v, a := range bodyLive {
		if _, outer := live[v]; !outer {
			inner[v] = a
		}
	}
	c.reportLive(inner)
	// Fall-through set: outer spans not released by the body.
	out := liveSet{}
	for v, a := range live {
		if _, still := bodyLive[v]; still {
			out[v] = a
		}
	}
	return out, false
}

// clauses interprets switch/select clause bodies, each on its own copy
// of the live set, and merges the falling-through ones. exhaustive
// marks constructs where exactly one clause always runs (select);
// switches additionally need a default clause to terminate flow.
func (c *checker) clauses(list []ast.Stmt, live liveSet, exhaustive bool) (liveSet, bool) {
	if len(list) == 0 {
		return live, false
	}
	hasDefault := false
	allTerm := true
	var outs []liveSet
	for _, cl := range list {
		branch := live.clone()
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				c.scan(e, branch)
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				branch, _ = c.stmt(cc.Comm, branch)
			}
			body = cc.Body
		default:
			continue
		}
		out, term := c.stmts(body, branch)
		if !term {
			allTerm = false
			outs = append(outs, out)
		}
	}
	if allTerm && (exhaustive || hasDefault) {
		return liveSet{}, true
	}
	merged := liveSet{}
	if !exhaustive && !hasDefault {
		merged = live.clone() // the no-clause-matched path
	}
	for _, o := range outs {
		merged = union(merged, o)
	}
	return merged, false
}

// scan walks an expression (or opaque statement) releasing every live
// span whose use context ends it or hands it away.
func (c *checker) scan(n ast.Node, live liveSet) {
	if n == nil || len(live) == 0 {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, isLive := live[v]; !isLive {
			return true
		}
		if c.releases(id) {
			delete(live, v)
		}
		return true
	})
}

// releases classifies one use of a live span: does this context end
// the span or transfer responsibility for it?
func (c *checker) releases(id *ast.Ident) bool {
	// Any use inside a function literal releases: the closure outlives
	// this path and is trusted to End the span (deferred closures and
	// the pending-reply map both look like this).
	for p := c.parents[id]; p != nil; p = c.parents[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return true
		}
	}
	switch p := c.parents[id].(type) {
	case *ast.SelectorExpr:
		// sp.End(...) ends it; sp.Context(), sp.Trace etc. only
		// inspect it.
		call, ok := c.parents[p].(*ast.CallExpr)
		return ok && call.Fun == p && p.Sel.Name == "End"
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == id {
				return true // callee takes responsibility
			}
		}
		return false
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt:
		return true
	case *ast.KeyValueExpr:
		return p.Value == id
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == id {
				return true // stored somewhere else
			}
		}
		return false
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.IndexExpr:
		// m[sp] as a key is bizarre but is a store-shaped use.
		return p.Index == id
	}
	return false
}

// lhsVar resolves an assignment target identifier to its variable,
// through either a fresh definition (sp := ...) or a reassignment of
// an earlier declaration (var sp *Span; sp = ...).
func (c *checker) lhsVar(lhs ast.Expr) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// hasEndMethod reports whether t's method set carries End(error) —
// lint.HasMethod only admits niladic methods, and End takes the
// span's outcome.
func hasEndMethod(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "End")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() == 1 && sig.Results().Len() == 0
}

// isConstructor reports whether a call's callee is named like a span
// constructor (package function or registry method).
func isConstructor(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return constructors[fun.Name]
	case *ast.SelectorExpr:
		return constructors[fun.Sel.Name]
	}
	return false
}
