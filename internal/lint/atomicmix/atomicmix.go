// Package atomicmix flags variables that mix synchronization
// disciplines: a field accessed through sync/atomic at one site and
// plainly (or under a mutex) at another.
//
// The Go memory model gives atomic operations an order only against
// other atomic operations on the same address; a plain load can see a
// torn or stale value regardless of atomics elsewhere, and a mutex
// does not order its critical sections against atomic access from
// outside them. Every field must therefore pick exactly one
// discipline. Three rules:
//
//   - atomic/plain mix: a variable whose address reaches a sync/atomic
//     function anywhere in the package must not be read or written
//     plainly anywhere else. Initialization is exempt where it is
//     visibly pre-publication: composite-literal fields, and accesses
//     inside a body that itself constructs the owning struct.
//
//   - atomic/mutex mix: when the mixed-access field belongs to a
//     struct with its own sync.Mutex/RWMutex, the diagnostic names the
//     mutex — the usual fix is to stop being clever and take the lock.
//
//   - naked cross-function access (the field-granular lockcheck
//     extension): a mutable field of a mutex-guarded struct touched
//     through a non-receiver value — a free function or another
//     type's method reaching into s.field — without s.mu.Lock()/RLock()
//     earlier in the same body. lockcheck owns receiver methods; this
//     rule owns everybody else in the package.
//
// Helpers that run under the caller's lock keep the lockcheck
// conventions: a *Locked name suffix or //mits:allow atomicmix.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mits/internal/lint"
)

// Analyzer is the atomicmix pass.
var Analyzer = &lint.Analyzer{
	Name: "atomicmix",
	Doc:  "report variables mixing synchronization disciplines: sync/atomic at one site, plain or mutex-guarded access at another",
	Run:  run,
}

func run(pass *lint.Pass) error {
	conc := lint.NewConc(pass)
	if len(conc.AtomicUses) == 0 {
		// No atomic functions used: only the naked-access rule applies.
		checkNakedAccess(pass)
		return nil
	}
	checkAtomicMix(pass, conc)
	checkNakedAccess(pass)
	return nil
}

// ---- atomic/plain and atomic/mutex mixing ----

func checkAtomicMix(pass *lint.Pass, conc *lint.Conc) {
	// Deterministic object order for reporting.
	objs := make([]types.Object, 0, len(conc.AtomicUses))
	for obj := range conc.AtomicUses {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })

	for _, f := range pass.Files {
		parents := lint.Parents(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncAllowed(fd) {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // runs under the caller's lock by convention
			}
			constructed := constructedTypes(pass, fd.Body)
			reported := map[types.Object]bool{} // one report per field per function
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				obj := pass.Referent(e)
				if obj == nil {
					return true
				}
				uses, atomicObj := conc.AtomicUses[obj]
				if !atomicObj || len(uses) == 0 || reported[obj] {
					return true
				}
				if !plainUse(pass, parents, e) {
					return true
				}
				if v, ok := obj.(*types.Var); ok && v.IsField() {
					if owner := fieldOwner(pass, v); owner != nil && constructed[owner] {
						return true // pre-publication initialization in a constructor body
					}
				}
				mutexNote := ""
				if v, ok := obj.(*types.Var); ok && v.IsField() {
					if owner := fieldOwner(pass, v); owner != nil {
						if mu := mutexFieldOf(owner); mu != nil {
							mutexNote = " (the struct has " + mu.Name() + "; mixing a mutex with atomics on one field orders nothing)"
						}
					}
				}
				reported[obj] = true
				pos := pass.Fset.Position(uses[0])
				pass.Reportf(e.Pos(), "%s is accessed with sync/atomic (e.g. %s:%d) but plainly here — one field, one discipline%s",
					obj.Name(), pos.Filename, pos.Line, mutexNote)
				return false
			})
		}
	}
}

// plainUse reports whether this appearance of the object is a plain
// (non-atomic) read or write: not the &x argument of a sync/atomic
// call, not a composite-literal key, not part of a larger selector,
// and not a declaration.
func plainUse(pass *lint.Pass, parents map[ast.Node]ast.Node, e ast.Expr) bool {
	// Only classify the outermost expression denoting the object: for
	// s.f the Ident f and the SelectorExpr both resolve to the field;
	// take the selector and skip its Sel ident to avoid double reports.
	switch p := parents[e].(type) {
	case *ast.SelectorExpr:
		if p.Sel == e {
			return false // handled at the SelectorExpr node
		}
		return false // e is the base of a selector; not itself the access
	case *ast.KeyValueExpr:
		if p.Key == e {
			return false // composite-literal initialization
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			// &x: atomic-call argument or explicit aliasing. The atomic
			// calls were collected already; any other address-taking is
			// treated as plain (an alias can be read without atomics).
			if call, ok := parents[p].(*ast.CallExpr); ok && isAtomicCall(pass, call) {
				return false
			}
		}
	case *ast.ValueSpec, *ast.Field:
		return false
	}
	return true
}

func isAtomicCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// constructedTypes collects the named struct types this body builds
// with a composite literal — values not yet shared, whose fields may
// be initialized plainly.
func constructedTypes(pass *lint.Pass, body ast.Node) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	record := func(t types.Type) {
		if t == nil {
			return
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			out[named] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			record(pass.TypesInfo.TypeOf(x))
		case *ast.CallExpr:
			// s := New(...) is the other pre-publication shape: a
			// package-local New* constructor's result is unshared until
			// this function hands it out (school.Load, mediastore.Load).
			var id *ast.Ident
			switch fun := ast.Unparen(x.Fun).(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			}
			if id == nil || !strings.HasPrefix(id.Name, "New") {
				return true
			}
			if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() > 0 {
					record(sig.Results().At(0).Type())
				}
			}
		}
		return true
	})
	return out
}

// fieldOwner resolves a field var to the named struct declaring it.
func fieldOwner(pass *lint.Pass, fld *types.Var) *types.Named {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return named
			}
		}
	}
	return nil
}

// mutexFieldOf returns the struct's sync.Mutex/RWMutex field, if any.
func mutexFieldOf(named *types.Named) *types.Var {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if isSyncNamed(fld.Type(), "Mutex") || isSyncNamed(fld.Type(), "RWMutex") {
			return fld
		}
	}
	return nil
}

func isSyncNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// ---- naked cross-function access to mutex-guarded fields ----

// guarded mirrors lockcheck's struct model: a package-local struct
// with a mutex field, its guarded fields, and which of them the
// package mutates outside construction.
type guarded struct {
	named   *types.Named
	mutex   *types.Var
	fields  map[*types.Var]bool
	mutable map[*types.Var]bool
}

func checkNakedAccess(pass *lint.Pass) {
	structs := guardedStructs(pass)
	if len(structs) == 0 {
		return
	}
	markMutable(pass, structs)
	fieldOwners := make(map[*types.Var]*guarded)
	for _, g := range structs {
		for fld := range g.fields {
			fieldOwners[fld] = g
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncAllowed(fd) {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			recvNamed := receiverNamed(pass, fd)
			constructed := constructedTypes(pass, fd.Body)
			checkBodyNaked(pass, fd, recvNamed, constructed, fieldOwners)
		}
	}
}

// checkBodyNaked flags accesses to guarded fields through values whose
// type is NOT the enclosing method's receiver type (lockcheck owns
// those) when no base.mu.Lock()/RLock() appears earlier in the body.
func checkBodyNaked(pass *lint.Pass, fd *ast.FuncDecl, recvNamed *types.Named, constructed map[*types.Named]bool, fieldOwners map[*types.Var]*guarded) {
	type key struct {
		base types.Object
		fld  *types.Var
	}
	reported := make(map[key]bool)
	locked := lockPositions(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		fld, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		g := fieldOwners[fld]
		if g == nil || fld == g.mutex || isSyncPkgType(fld.Type()) || !g.mutable[fld] {
			return true
		}
		if g.named == recvNamed {
			return true // receiver methods are lockcheck's domain
		}
		if constructed[g.named] {
			return true // building the value; not shared yet
		}
		base := pass.Referent(sel.X)
		if base == nil {
			return true
		}
		if first, ok := locked[base]; ok && sel.Pos() > first {
			return true // base.mu.Lock() earlier in this body
		}
		k := key{base, fld}
		if !reported[k] {
			reported[k] = true
			pass.Reportf(sel.Pos(), "%s.%s is guarded by %s.%s elsewhere but accessed here without holding it (no %s.%s.Lock earlier in this body)",
				base.Name(), fld.Name(), g.named.Obj().Name(), g.mutex.Name(), base.Name(), g.mutex.Name())
		}
		return true
	})
}

// lockPositions maps base objects to the position of the first
// base.<mutex>.Lock()/RLock() call in the body.
func lockPositions(pass *lint.Pass, body ast.Node) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := pass.TypesInfo.Selections[inner]; s == nil || s.Kind() != types.FieldVal {
			return true
		}
		base := pass.Referent(inner.X)
		if base == nil {
			return true
		}
		if first, ok := out[base]; !ok || call.Pos() < first {
			out[base] = call.Pos()
		}
		return true
	})
	return out
}

func receiverNamed(pass *lint.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func guardedStructs(pass *lint.Pass) []*guarded {
	var out []*guarded
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		g := &guarded{named: named, fields: make(map[*types.Var]bool), mutable: make(map[*types.Var]bool)}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			g.fields[fld] = true
			if g.mutex == nil && (isSyncNamed(fld.Type(), "Mutex") || isSyncNamed(fld.Type(), "RWMutex")) {
				g.mutex = fld
			}
		}
		if g.mutex != nil {
			out = append(out, g)
		}
	}
	return out
}

func isSyncPkgType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && (obj.Pkg().Path() == "sync" || obj.Pkg().Path() == "sync/atomic")
}

// markMutable mirrors lockcheck: a field written outside composite
// literals (assignment, ++/--, address-taken) is mutable; fields set
// only at construction are immutable and free to read.
func markMutable(pass *lint.Pass, structs []*guarded) {
	owners := make(map[*types.Var]*guarded)
	for _, g := range structs {
		for fld := range g.fields {
			owners[fld] = g
		}
	}
	markExpr := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			if fld, ok := s.Obj().(*types.Var); ok {
				if g := owners[fld]; g != nil {
					g.mutable[fld] = true
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					markExpr(lhs)
				}
			case *ast.IncDecStmt:
				markExpr(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					markExpr(n.X)
				}
			}
			return true
		})
	}
}
