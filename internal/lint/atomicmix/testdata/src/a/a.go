// Package a exercises atomicmix: atomic/plain mixes, atomic/mutex
// mixes, and naked cross-function access to mutex-guarded fields.
package a

import (
	"sync"
	"sync/atomic"
)

// ---- atomic/plain mix ----

type stats struct {
	hits   int64 // accessed atomically everywhere: clean
	misses int64 // atomic in record, plain in report: flagged
}

func (s *stats) record(hit bool) {
	if hit {
		atomic.AddInt64(&s.hits, 1)
		return
	}
	atomic.AddInt64(&s.misses, 1)
}

func (s *stats) report() (int64, int64) {
	h := atomic.LoadInt64(&s.hits)
	m := s.misses // want "misses is accessed with sync/atomic .* but plainly here"
	return h, m
}

// newStats initializes plainly inside its own constructor body: the
// value is not shared yet, so this is exempt.
func newStats(seedMisses int64) *stats {
	s := &stats{}
	s.misses = seedMisses
	return s
}

// ---- atomic/mutex mix ----

type mixed struct {
	mu    sync.Mutex
	depth int64
}

func (m *mixed) bump() {
	atomic.AddInt64(&m.depth, 1)
}

func (m *mixed) drain() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.depth // want "depth is accessed with sync/atomic .* mixing a mutex with atomics"
	m.depth = 0
	return d
}

// ---- naked cross-function access ----

type registry struct {
	mu      sync.Mutex
	entries map[string]int
	frozen  bool
}

func (r *registry) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = len(r.entries)
	r.frozen = false
}

// audit is a free function reaching into a guarded struct without the
// lock: lockcheck cannot see it (not a method), this rule can.
func audit(r *registry) int {
	return len(r.entries) // want "r.entries is guarded by registry.mu elsewhere but accessed here without holding it"
}

// auditLocked follows the caller-holds-lock convention.
func auditLocked(r *registry) int {
	return len(r.entries)
}

// auditSafe takes the lock first.
func auditSafe(r *registry) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// build constructs the value in the same body: not shared yet.
func build(names []string) *registry {
	r := &registry{entries: make(map[string]int)}
	for i, n := range names {
		r.entries[n] = i
	}
	return r
}

// NewRegistry is the package's constructor.
func NewRegistry() *registry {
	return &registry{entries: make(map[string]int)}
}

// load populates a constructor-fresh value (the school/mediastore
// Load-from-snapshot shape): unshared until returned, so naked access
// is fine.
func load(names []string) *registry {
	r := NewRegistry()
	for i, n := range names {
		r.entries[n] = i
	}
	r.frozen = true
	return r
}

// other types' methods are also "naked" when they reach in.
type prober struct{ r *registry }

func (p prober) frozen() bool {
	return p.r.frozen // want "r.frozen is guarded by registry.mu elsewhere but accessed here without holding it"
}

func (p prober) frozenSafe() bool {
	p.r.mu.Lock()
	defer p.r.mu.Unlock()
	return p.r.frozen
}

// allowed carries a justification.
func peek(r *registry) bool {
	return r.frozen //mits:allow atomicmix read is a monitoring hint; staleness is fine
}
