package atomicmix

import (
	"testing"

	"mits/internal/lint"
)

func TestAtomicMix(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
