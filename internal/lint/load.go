package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool // part of the Go distribution
	Root       bool // named by the Load patterns (vs. pulled in as a dep)

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	TypeErrors []error
}

// listedPkg mirrors the fields of `go list -json` the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Incomplete bool
	Error      *listedErr
}

// listedErr is the Error object `go list -e` attaches to packages (and
// to pattern stubs) it could not resolve.
type listedErr struct {
	Err string
}

func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	// Analysis wants the pure-Go view of every package; cgo files would
	// need a C toolchain pass the type checker cannot do.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, errBuf.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decode: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// mapImporter resolves imports against already-checked packages, with a
// per-package vendor/import remapping from `go list`.
type mapImporter struct {
	importMap map[string]string
	checked   map[string]*types.Package
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("lint: import %q not loaded", path)
}

// Load type-checks the packages matching patterns (resolved relative to
// dir, "" meaning the current directory) together with every
// dependency, building all type information from source — the loader
// never needs export data, a module proxy, or the network.
//
// The returned slice holds all packages in dependency order; callers
// usually filter on Root (the pattern-named packages) and !Standard.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	// Two listings: -deps for the full graph in dependency order, and a
	// plain one to learn which import paths the patterns denote.
	deps, err := goList(dir, append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	roots, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	isRoot := make(map[string]bool, len(roots))
	for _, r := range roots {
		isRoot[r.ImportPath] = true
	}

	fset := token.NewFileSet()
	checked := make(map[string]*types.Package, len(deps))
	sizes := types.SizesFor("gc", runtime.GOARCH)
	var out []*Package

	for _, lp := range deps {
		if lp.ImportPath == "unsafe" {
			checked["unsafe"] = types.Unsafe
			continue
		}
		// A nameless entry with an Error is a pattern stub (`go list -e`
		// reports a bad pattern this way instead of failing) — surface it
		// rather than analyzing zero packages successfully.
		if lp.Error != nil && lp.Name == "" {
			return nil, fmt.Errorf("lint: %s", lp.Error.Err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: mapImporter{importMap: lp.ImportMap, checked: checked},
			Sizes:    sizes,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		checked[lp.ImportPath] = tpkg
		out = append(out, &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			Root:       isRoot[lp.ImportPath],
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
			TypeErrors: typeErrs,
		})
	}
	return out, nil
}
