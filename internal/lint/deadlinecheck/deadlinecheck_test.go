package deadlinecheck

import (
	"testing"

	"mits/internal/lint"
)

func TestDeadlineCheck(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}
