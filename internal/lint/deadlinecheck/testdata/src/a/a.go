// Package a exercises deadlinecheck: unbounded dials and blocking
// interface calls with and without a reachable deadline.
package a

import (
	"context"
	"io"
	"net"
	"time"
)

// ---- rule 1: unbounded connect ----

func rawDial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want "net.Dial has no connect timeout"
}

func boundedDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

func dialerDial(addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: 5 * time.Second}
	return d.Dial("tcp", addr)
}

// ---- rule 2: blocking interface calls ----

// Store has a blocking Query and no deadline-capable implementation
// anywhere in this package.
type Store interface {
	Query(key string) ([]byte, error)
}

type memStore struct{}

func (memStore) Query(key string) ([]byte, error) { return nil, nil }

type navigator struct {
	backend Store
}

func (n *navigator) lookup(key string) ([]byte, error) {
	return n.backend.Query(key) // want "blocking Store.Query has no reachable deadline"
}

// Remote is bounded: remoteStore carries a per-call Timeout knob.
type Remote interface {
	Call(method string, payload []byte) ([]byte, error)
}

type remoteStore struct {
	Timeout time.Duration
}

func (r *remoteStore) Call(method string, payload []byte) ([]byte, error) { return nil, nil }

type client struct {
	c Remote
}

func (c *client) fetch(method string) ([]byte, error) {
	return c.c.Call(method, nil)
}

// CtxStore rides the deadline in on a context.
type CtxStore interface {
	Query(ctx context.Context, key string) ([]byte, error)
}

func ctxLookup(s CtxStore, key string) ([]byte, error) {
	return s.Query(context.Background(), key)
}

// bounded is a method of a struct with its own knob: the type owns the
// deadline even though this body does not set one.
type server struct {
	ConnTimeout time.Duration
	backend     Store
}

func (s *server) serve(key string) ([]byte, error) {
	return s.backend.Query(key) // the receiver's ConnTimeout bounds it
}

// setsDeadline bounds the conn itself before blocking on it.
type wrapped struct {
	conn net.Conn
	b    Store
}

func (w *wrapped) pump(buf []byte) error {
	_ = w.conn.SetReadDeadline(time.Now().Add(time.Second))
	_, err := w.b.Query("k")
	return err
}

// helper is handed an io.Reader: it cannot set deadlines on it, so the
// bound is its caller's responsibility.
func helper(r io.Reader, buf []byte) (int, error) {
	return r.Read(buf)
}

// conns declare their own setters: the caller can bound them, so the
// interface is deadline-capable by construction.
type proxy struct {
	conn net.Conn
}

func (p *proxy) relay(buf []byte) (int, error) {
	return p.conn.Read(buf)
}

// nonBlockingNames are out of scope regardless of deadline.
type closerStore interface {
	Close() error
}

func shutdown(c closerStore) error {
	return c.Close()
}

// allowed documents a hang-by-design.
type pollStore struct {
	b Store
}

func (p *pollStore) wait(key string) ([]byte, error) {
	return p.b.Query(key) //mits:allow deadlinecheck per-call timers in the caller bound this poll
}
