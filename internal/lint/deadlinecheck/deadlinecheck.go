// Package deadlinecheck finds blocking calls that nothing bounds. The
// telelearning services promise interactive latency end to end; a
// blocking transport or store call with no reachable deadline turns a
// wedged peer into a wedged navigator, and the hang reproduces only
// when the network misbehaves — exactly when nobody is watching.
//
// Two rules:
//
//  1. net.Dial has no connect timeout: a SYN into a black hole blocks
//     for the OS default (minutes). Use net.DialTimeout or a
//     net.Dialer with Timeout.
//
//  2. A blocking call through an interface method (Call, Read, Write,
//     Accept, ...) must have a reachable deadline. The call is
//     exonerated when any of these carries one:
//     - the method takes a context.Context (the deadline rides along);
//     - the interface itself declares a Set*Deadline*/Set*Timeout*
//     method (net.Conn style — the caller can bound it);
//     - some concrete implementation in the interface's defining
//     package (or the current one) carries a deadline knob: a
//     time.Duration Timeout/Deadline field or a Set*Deadline*
//     method (transport.Client is bounded because TCPClient has a
//     per-call Timeout);
//     - the enclosing function is a method of a struct with its own
//     time.Duration Timeout/Deadline field (the type owns the knob,
//     as TCPServer.ConnTimeout bounds serveConn);
//     - the enclosing function body calls Set*Deadline*/Set*Timeout*
//     itself;
//     - the receiver is an interface-typed parameter of the enclosing
//     function: a helper handed an io.Reader cannot set deadlines on
//     it, so the bound is its caller's responsibility.
//
// Suppress a justified hang-by-design with
// `//mits:allow deadlinecheck <why>`.
package deadlinecheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"mits/internal/lint"
)

// Analyzer is the deadlinecheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "deadlinecheck",
	Doc:  "check that blocking transport/store calls have a reachable deadline or timeout",
	Run:  run,
}

// blockingNames are interface method names treated as potentially
// indefinite blocking I/O. Handle is deliberately absent: it is
// in-process dispatch, bounded by whatever bounds its caller.
var blockingNames = map[string]bool{
	"Call": true, "CallTraced": true,
	"Read": true, "Write": true,
	"Send": true, "Recv": true, "Receive": true,
	"Accept": true, "Wait": true,
	"Query": true, "Exec": true, "Fetch": true,
}

var knobRe = regexp.MustCompile(`^Set.*(Deadline|Timeout)`)

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncAllowed(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	recvKnob := receiverHasKnob(pass, fd)
	bodyKnob := bodySetsDeadline(fd.Body)
	params := interfaceParams(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Rule 1: unbounded connect.
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			sig, _ := fn.Type().(*types.Signature)
			if fn.Pkg() != nil && fn.Pkg().Path() == "net" && fn.Name() == "Dial" &&
				sig != nil && sig.Recv() == nil {
				pass.Reportf(call.Pos(), "net.Dial has no connect timeout — a SYN into a black hole blocks for the OS default; use net.DialTimeout or a net.Dialer with Timeout")
				return true
			}
		}
		// Rule 2: deadline-free blocking interface call.
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal || !types.IsInterface(s.Recv()) {
			return true
		}
		if !blockingNames[sel.Sel.Name] {
			return true
		}
		if recvKnob || bodyKnob {
			return true
		}
		fn, ok := s.Obj().(*types.Func)
		if !ok || hasContextParam(fn) {
			return true
		}
		iface, _ := s.Recv().Underlying().(*types.Interface)
		if iface == nil || interfaceDeclaresKnob(iface) {
			return true
		}
		if base := baseIdentObj(pass, sel.X); base != nil && params[base] {
			return true
		}
		if implementationHasKnob(pass, s.Recv(), iface) {
			return true
		}
		pass.Reportf(call.Pos(), "blocking %s.%s has no reachable deadline: no context parameter, no deadline knob on the interface or any implementation in scope, and nothing here bounds it — add a Timeout field or set a deadline before the call",
			types.TypeString(s.Recv(), types.RelativeTo(pass.Pkg)), sel.Sel.Name)
		return true
	})
}

// receiverHasKnob reports whether fd is a method of a struct carrying
// its own time.Duration Timeout/Deadline field.
func receiverHasKnob(pass *lint.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return durationKnobField(t)
}

// durationKnobField reports whether t's underlying struct has a
// time.Duration field whose name mentions Timeout or Deadline.
func durationKnobField(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		name := strings.ToLower(f.Name())
		if !strings.Contains(name, "timeout") && !strings.Contains(name, "deadline") {
			continue
		}
		if named, ok := f.Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration" {
				return true
			}
		}
	}
	return false
}

// bodySetsDeadline reports whether body contains any
// Set*Deadline*/Set*Timeout* call.
func bodySetsDeadline(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && knobRe.MatchString(sel.Sel.Name) {
			found = true
		}
		return !found
	})
	return found
}

// interfaceParams returns fd's parameters whose declared type is an
// interface.
func interfaceParams(pass *lint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && types.IsInterface(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

// baseIdentObj resolves a plain-identifier receiver expression to its
// object. Field receivers (c.C.Call) intentionally resolve to nil:
// the parameter exoneration applies only to values the function was
// handed directly.
func baseIdentObj(pass *lint.Pass, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return pass.Referent(id)
	}
	return nil
}

// hasContextParam reports whether fn takes a context.Context.
func hasContextParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		named, ok := sig.Params().At(i).Type().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	return false
}

// interfaceDeclaresKnob reports whether the interface's own method set
// includes a deadline setter (net.Conn style).
func interfaceDeclaresKnob(iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if knobRe.MatchString(iface.Method(i).Name()) {
			return true
		}
	}
	return false
}

// implementationHasKnob scans the interface's defining package scope
// and the current package scope for a concrete named type that both
// implements the interface and carries a deadline knob (Duration
// Timeout/Deadline field or Set*Deadline* method).
func implementationHasKnob(pass *lint.Pass, recv types.Type, iface *types.Interface) bool {
	scopes := []*types.Scope{pass.Pkg.Scope()}
	if named, ok := recv.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			scopes = append(scopes, pkg.Scope())
		}
	}
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
				continue
			}
			if durationKnobField(t) || hasKnobMethod(t) {
				return true
			}
		}
	}
	return false
}

// hasKnobMethod reports whether *t's method set contains a deadline
// setter.
func hasKnobMethod(t types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if knobRe.MatchString(ms.At(i).Obj().Name()) {
			return true
		}
	}
	return false
}
