package ctxflow

import (
	"testing"

	"mits/internal/lint"
)

func TestCtxflow(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "a")
}

// TestCtxflowHandlerChain exercises the module-wide rules: the fresh
// context and the knobless hop sit in functions with no ctx parameter
// at all, indicted only because the call graph reaches them from a
// Handle implementation.
func TestCtxflowHandlerChain(t *testing.T) {
	lint.RunTest(t, "testdata", Analyzer, "handler")
}
