// Package ctxflow checks that inbound deadlines survive every hop of
// the serving path. The paper's bounded-delay guarantee is end-to-end:
// a deadline that reaches a navigator but dies at the store boundary
// protects nobody, and the miss only shows up as tail latency under
// load. Three rules:
//
//  1. fresh-context: a function that receives a context.Context calls
//     context.Background() or context.TODO(). A fresh context carries
//     no deadline — whatever bound the caller established is severed
//     on this path. Derive from the inbound ctx instead
//     (context.WithTimeout(ctx, ...) keeps the chain).
//
//  2. handler-chain: context.Background()/context.TODO() introduced in
//     a function reachable — through the module-wide call graph,
//     interface calls resolved to every in-module implementation —
//     from an RPC handler (a concrete implementation of an in-module
//     interface method named Handle or HandleCtx). Request-handling
//     code inherits the request's deadline; minting a fresh context
//     there silently opts the downstream work out of it.
//
//  3. unforwarded-hop: a function that owns an inbound deadline (a
//     context parameter, or a method whose receiver carries a
//     time.Duration Timeout/Deadline field) makes a blocking call
//     (Call, Read, Fetch, ...) through an in-module interface that
//     cannot carry it: the callee takes no context, neither the
//     interface nor any in-module implementation has a
//     Set*Deadline*/Set*Timeout* knob or Timeout field, and the body
//     sets no deadline itself. The deadline exists one frame up and
//     is structurally lost at this hop. Functions on a
//     request-handling chain (rule 2's reachability) are held to the
//     same bar even without their own ctx parameter — the inbound RPC
//     had a deadline whether or not this frame can see it.
//
// Out-of-module interfaces (io.Reader, net.Conn) are exonerated:
// absence of module vision must not fabricate findings. Suppress a
// justified detach (fire-and-forget audit write, background refresh)
// with //mits:allow ctxflow <why>.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"mits/internal/lint"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "check that inbound deadlines (contexts, Timeout receivers) are forwarded across every serving-path hop",
	Run:  run,
}

func run(pass *lint.Pass) error {
	mod := pass.Module()
	// Rules 1 and 2: fresh contexts, located precisely on the AST.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncAllowed(fd) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			checkFreshContexts(pass, mod, fn, fd)
		}
	}
	// Rule 3: unforwarded hops, from the package's own summary.
	ps := mod.Sums[pass.Pkg.Path()]
	if ps == nil {
		return nil
	}
	for _, fs := range ps.Funcs {
		checkUnforwardedHops(pass, mod, fs)
	}
	return nil
}

// checkFreshContexts reports context.Background()/TODO() calls that
// sever an inbound deadline (rule 1) or appear inside a
// request-handling chain (rule 2).
func checkFreshContexts(pass *lint.Pass, mod *lint.Module, fn *types.Func, fd *ast.FuncDecl) {
	hasCtx := lint.SignatureTakesCtx(fn)
	var root lint.FuncID
	if !hasCtx {
		root = mod.HandlerRoot(lint.FuncIDOf(fn))
		if root == "" {
			return
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
			return true
		}
		if callee.Name() != "Background" && callee.Name() != "TODO" {
			return true
		}
		if hasCtx {
			pass.Reportf(call.Pos(), "context.%s() severs the inbound deadline: this function already receives a ctx — derive from it (context.WithTimeout(ctx, ...)) instead of minting a fresh context", callee.Name())
		} else {
			pass.Reportf(call.Pos(), "context.%s() inside the request-handling chain rooted at %s: the inbound request carries the deadline this fresh context silently drops", callee.Name(), root)
		}
		return true
	})
}

// checkUnforwardedHops reports blocking in-module interface calls that
// structurally cannot carry the deadline the enclosing function owns.
func checkUnforwardedHops(pass *lint.Pass, mod *lint.Module, fs *lint.FuncSummary) {
	if fs.SetsDeadline {
		return
	}
	ownsDeadline := fs.HasCtxParam || fs.DeadlineRecv
	onChain := false
	if !ownsDeadline {
		onChain = mod.HandlerRoot(fs.ID) != ""
		if !onChain {
			return
		}
	}
	for i := range fs.Calls {
		cs := &fs.Calls[i]
		if !cs.Blocking || cs.CalleeTakesCtx || cs.CtxForwarded || cs.Iface == "" {
			continue
		}
		iface := ifaceOf(cs.Iface)
		if mod.InterfaceHasDeadlineKnob(iface) {
			continue
		}
		position := lint.ParsePos(cs.Pos)
		if !pass.OwnsFile(position.Filename) {
			continue // a goroutine summary whose body sits in another file's decl — report where it lives
		}
		what := "the inbound deadline"
		if !ownsDeadline {
			what = "the request deadline (chain rooted at " + string(mod.HandlerRoot(fs.ID)) + ")"
		}
		pass.ReportAt(position, "blocking %s.%s cannot carry %s: the callee takes no context and neither %s nor any in-module implementation has a deadline knob — add a ctx/timeout parameter to the interface or bound the call here",
			shortIface(iface), cs.Name, what, shortIface(iface))
	}
}

// ifaceOf strips the method from an IfaceMethodID: "pkg.Iface.Method"
// → "pkg.Iface".
func ifaceOf(id lint.IfaceMethodID) string {
	s := string(id)
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[:i]
	}
	return s
}

// shortIface trims the package directory noise from an interface id
// for the message: "a/b/c.Iface" → "c.Iface".
func shortIface(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}
