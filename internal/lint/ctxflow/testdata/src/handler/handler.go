// Package handler exercises the module-wide rules: fresh contexts and
// knobless hops inside a request-handling chain, found by resolving
// the Handler interface to its concrete implementation and walking
// the call graph from there.
package handler

import "context"

// Handler is the RPC dispatch seam; its implementations are ctxflow's
// chain roots.
type Handler interface {
	Handle(req []byte) []byte
}

// Backend is knobless — no ctx, no Set*Timeout, and MemBackend adds
// none.
type Backend interface {
	Fetch(key string) ([]byte, error)
}

type MemBackend struct{ m map[string][]byte }

func (b *MemBackend) Fetch(key string) ([]byte, error) { return b.m[key], nil }

// Echo implements Handler; everything it reaches is request-handling
// code whether or not a ctx parameter is in sight.
type Echo struct {
	backend Backend
}

// Handle is a chain root: the inbound RPC carried a deadline even
// though this signature cannot see it, so the knobless hop drops it.
func (e *Echo) Handle(req []byte) []byte {
	body, _ := e.backend.Fetch(string(req)) // want "cannot carry the request deadline"
	return respond(body)
}

// respond is two frames below the root; the fresh context still
// counts as inside the chain.
func respond(body []byte) []byte {
	ctx := context.Background() // want "request-handling chain"
	_ = ctx
	return body
}

// offline runs from no handler: same shapes, no findings.
func offline(b Backend, key string) []byte {
	ctx := context.Background()
	_ = ctx
	body, _ := b.Fetch(key)
	return body
}
