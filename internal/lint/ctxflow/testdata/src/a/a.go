// Package a exercises ctxflow's intra-package rules: fresh contexts
// that sever an inbound deadline, and blocking interface hops that
// structurally cannot carry one.
package a

import (
	"context"
	"time"
)

// StoreAPI is knobless: no ctx parameter on Fetch, no Set*Deadline*
// method, and its one in-module implementation has none either. A
// deadline cannot cross this boundary.
type StoreAPI interface {
	Fetch(key string) ([]byte, error)
	Stat(key string) int
}

// MemStore implements StoreAPI without a deadline knob.
type MemStore struct {
	m map[string][]byte
}

func (s *MemStore) Fetch(key string) ([]byte, error) { return s.m[key], nil }
func (s *MemStore) Stat(key string) int              { return len(s.m[key]) }

// BoundedAPI carries its own knob: any caller can bound the hop.
type BoundedAPI interface {
	Fetch(key string) ([]byte, error)
	SetFetchTimeout(d time.Duration)
}

// CtxAPI threads the context through the signature.
type CtxAPI interface {
	Fetch(ctx context.Context, key string) ([]byte, error)
}

// Serve severs the inbound deadline with a fresh context.
func Serve(ctx context.Context, key string, api CtxAPI) ([]byte, error) {
	fresh := context.Background() // want "severs the inbound deadline"
	return api.Fetch(fresh, key)
}

// ServeTODO: TODO is just as fresh as Background.
func ServeTODO(ctx context.Context, key string, api CtxAPI) ([]byte, error) {
	return api.Fetch(context.TODO(), key) // want "severs the inbound deadline"
}

// ServeOK derives from the inbound ctx — the chain holds.
func ServeOK(ctx context.Context, key string, api CtxAPI) ([]byte, error) {
	bounded, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return api.Fetch(bounded, key)
}

// Mux routes requests; its ctx parameter is the inbound deadline.
type Mux struct {
	store StoreAPI
}

// Route makes a blocking hop through the knobless StoreAPI: the ctx
// exists in this frame and dies here.
func (m *Mux) Route(ctx context.Context, key string) ([]byte, error) {
	return m.store.Fetch(key) // want "blocking a.StoreAPI.Fetch cannot carry the inbound deadline"
}

// RouteStat is clean: Stat is not a blocking name.
func (m *Mux) RouteStat(ctx context.Context, key string) int {
	return m.store.Stat(key)
}

// RouteBounded is clean: BoundedAPI has a SetFetchTimeout knob, so the
// hop can be bounded even though this call site doesn't do it — that
// is deadlinecheck's beat, not ctxflow's.
func (m *Mux) RouteBounded(ctx context.Context, key string, api BoundedAPI) ([]byte, error) {
	return api.Fetch(key)
}

// RouteCtx is clean: the callee takes the context.
func (m *Mux) RouteCtx(ctx context.Context, key string, api CtxAPI) ([]byte, error) {
	return api.Fetch(ctx, key)
}

// BoundedClient owns a deadline through its Timeout field rather than
// a ctx parameter; losing it at a knobless hop is the same bug.
type BoundedClient struct {
	Timeout time.Duration
	store   StoreAPI
}

// Get: the receiver's Timeout never reaches the store.
func (c *BoundedClient) Get(key string) ([]byte, error) {
	return c.store.Fetch(key) // want "blocking a.StoreAPI.Fetch cannot carry the inbound deadline"
}

// GetBounded is clean: the body arms a deadline itself before the hop.
func (c *BoundedClient) GetBounded(conn BoundedAPI, key string) ([]byte, error) {
	conn.SetFetchTimeout(c.Timeout)
	return conn.Fetch(key)
}

// Background helper with no inbound deadline and no handler chain:
// ctxflow has nothing to protect here.
func warmCache(store StoreAPI, keys []string) {
	for _, k := range keys {
		store.Fetch(k)
	}
}

// detachOK shows the sanctioned escape hatch for a deliberate detach.
//
//mits:allow ctxflow audit writes outlive the request by design
func detachOK(ctx context.Context) context.Context {
	return context.Background()
}
