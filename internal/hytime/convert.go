package hytime

import (
	"fmt"
	"time"

	"mits/internal/document"
)

// ToIMD converts a HyTime document into the interactive multimedia
// document model — the §2.3 pipeline that pairs "the expressive power
// of HyTime and the runtime efficiency of MHEG": author and publish in
// HyTime, convert once, interchange and present as MHEG.
//
// Mapping:
//
//   - each FCS containing events on the document's temporal axis
//     becomes one scene, in document order;
//   - events become scene objects: the entity's notation selects the
//     kind, the temporal extent the placement and duration, and extents
//     on the "x"/"y" axes the layout region;
//   - text entities that source a user-rule ilink become buttons;
//   - ilinks become behaviors: rule "user" → clicked, rule "finish" →
//     finished; targets in another scene become goto actions.
func ToIMD(d *Doc) (*document.IMDoc, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	tAxis, ok := d.TemporalAxis()
	if !ok {
		return nil, fmt.Errorf("hytime: document has no temporal axis to schedule scenes on")
	}
	axis, _ := d.Axis(tAxis)
	eng := NewEngine(d)

	// Which events source a user link? They render as buttons.
	userSources := make(map[string]bool)
	finishLinks := make(map[string][]string) // source event → target events
	userLinks := make(map[string][]string)
	for _, l := range d.Links {
		eps, err := eng.Traverse(l.ID)
		if err != nil {
			return nil, err
		}
		src := eps[0]
		for _, tgt := range eps[1:] {
			if l.Rule == RuleUser {
				userSources[src] = true
				userLinks[src] = append(userLinks[src], tgt)
			} else {
				finishLinks[src] = append(finishLinks[src], tgt)
			}
		}
	}

	// Scene of each event, for cross-scene link targets.
	sceneOf := make(map[string]string)
	for _, f := range d.FCSs {
		for _, ev := range f.Events {
			if _, ok := ev.Extent(tAxis); ok {
				sceneOf[ev.ID] = f.ID
			}
		}
	}

	toDuration := func(units int64) time.Duration {
		return time.Duration(float64(units) / float64(axis.PerSecond) * float64(time.Second))
	}

	var scenes []*document.Scene
	for _, f := range d.FCSs {
		s := &document.Scene{ID: f.ID, Title: f.Title}
		if s.Title == "" {
			s.Title = f.ID
		}
		hasTimed := false
		for _, ev := range f.Events {
			tx, onTime := ev.Extent(tAxis)
			if !onTime {
				continue
			}
			hasTimed = true
			ent, _ := d.Entity(ev.Entity)
			obj := document.SceneObject{ID: ev.ID, Channel: "stage"}
			switch {
			case userSources[ev.ID]:
				obj.Kind = document.ObjButton
				obj.Text = buttonLabel(ev, ent)
				obj.Channel = "controls"
			case kindOfNotation(ent.Notation) == "video":
				obj.Kind = document.ObjVideo
				obj.Media = ent.System
			case kindOfNotation(ent.Notation) == "audio":
				obj.Kind = document.ObjAudio
				obj.Media = ent.System
				obj.Channel = "audio"
			case kindOfNotation(ent.Notation) == "image":
				obj.Kind = document.ObjImage
				obj.Media = ent.System
			default:
				obj.Kind = document.ObjText
				obj.Text = ent.Text
				if obj.Text == "" {
					obj.Text = ent.System
				}
			}
			if obj.Kind.Presentable() {
				obj.Duration = toDuration(tx.Dur)
			}
			if xx, ok := ev.Extent("x"); ok {
				obj.At.X = int(xx.Start)
				obj.At.W = int(xx.Dur)
			}
			if yy, ok := ev.Extent("y"); ok {
				obj.At.Y = int(yy.Start)
				obj.At.H = int(yy.Dur)
			}
			s.Objects = append(s.Objects, obj)
			// Buttons live outside the timeline; media places at start.
			if obj.Kind != document.ObjButton {
				s.Timeline = append(s.Timeline, document.Placement{
					Object: ev.ID, Kind: document.PlaceAt, Offset: toDuration(tx.Start),
				})
			}
		}
		if !hasTimed {
			continue // a pure layout FCS (rendition target), not a scene
		}
		// Behaviors from links whose source is in this scene.
		for _, ev := range f.Events {
			addLinkBehaviors(s, ev.ID, userLinks[ev.ID], document.BEvClicked, sceneOf, f.ID)
			addLinkBehaviors(s, ev.ID, finishLinks[ev.ID], document.BEvFinished, sceneOf, f.ID)
		}
		scenes = append(scenes, s)
	}
	if len(scenes) == 0 {
		return nil, fmt.Errorf("hytime: no FCS schedules events on the temporal axis %q", tAxis)
	}
	title := d.Title
	if title == "" {
		title = d.ID
	}
	doc := &document.IMDoc{
		Title:    title,
		Sections: []*document.Section{{Title: title, Scenes: scenes}},
	}
	return doc, doc.Validate()
}

func buttonLabel(ev *Event, ent Entity) string {
	if ev.Label != "" {
		return ev.Label
	}
	if ent.Text != "" {
		return ent.Text
	}
	return ev.ID
}

func addLinkBehaviors(s *document.Scene, src string, targets []string, event document.BEvent, sceneOf map[string]string, sceneID string) {
	if len(targets) == 0 {
		return
	}
	var local, remote []string
	for _, tgt := range targets {
		if sceneOf[tgt] == sceneID {
			local = append(local, tgt)
		} else if other := sceneOf[tgt]; other != "" {
			remote = append(remote, other)
		}
	}
	b := document.Behavior{
		Conditions: []document.BCondition{{Object: src, Event: event}},
	}
	if len(local) > 0 {
		b.Actions = append(b.Actions, document.BAction{Verb: document.BStart, Targets: local})
	}
	if len(remote) > 0 {
		b.Actions = append(b.Actions, document.BAction{Verb: document.BGoto, Targets: dedupe(remote)})
	}
	if len(b.Actions) > 0 {
		s.Behaviors = append(s.Behaviors, b)
	}
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// SampleCourse builds a HyTime authoring of the ATM course's first two
// scenes — the document an author-site tool would write before the §2.3
// pipeline converts it for interchange.
func SampleCourse() *Doc {
	return &Doc{
		ID:    "atm-hytime",
		Title: "ATM Technology (HyTime authoring)",
		Axes: []Axis{
			{Name: "t", Unit: "ms", PerSecond: 1000},
			{Name: "x", Unit: "vu"},
			{Name: "y", Unit: "vu"},
		},
		Entities: []Entity{
			{ID: "welcome-clip", System: "store/atm/welcome.mpg", Notation: "MPEG"},
			{ID: "welcome-tune", System: "store/atm/welcome.mid", Notation: "MIDI"},
			{ID: "cells-text", Notation: "text", Text: "An ATM cell is 53 bytes: a 5-byte header and a 48-byte payload."},
			{ID: "cell-diagram", System: "store/atm/cell-format.jpg", Notation: "JPEG"},
			{ID: "show-btn", Notation: "text", Text: "Show cell diagram"},
		},
		FCSs: []*FCS{
			{
				ID: "intro", Title: "Welcome", Axes: []string{"t", "x", "y"},
				Events: []*Event{
					{ID: "ev-welcome", Entity: "welcome-clip", Extents: []Extent{
						{Axis: "t", Start: 0, Dur: 8000},
						{Axis: "x", Start: 0, Dur: 352},
						{Axis: "y", Start: 0, Dur: 240},
					}},
					{ID: "ev-tune", Entity: "welcome-tune", Extents: []Extent{
						{Axis: "t", Start: 0, Dur: 8000},
					}},
				},
			},
			{
				ID: "cells", Title: "ATM Cells", Axes: []string{"t", "x", "y"},
				Events: []*Event{
					{ID: "ev-text", Entity: "cells-text", Extents: []Extent{
						{Axis: "t", Start: 0, Dur: 20000},
						{Axis: "x", Start: 0, Dur: 400},
						{Axis: "y", Start: 0, Dur: 200},
					}},
					{ID: "ev-diagram", Entity: "cell-diagram", Extents: []Extent{
						{Axis: "t", Start: 20000, Dur: 10000},
						{Axis: "x", Start: 0, Dur: 400},
						{Axis: "y", Start: 0, Dur: 300},
					}},
					{ID: "ev-btn", Entity: "show-btn", Extents: []Extent{
						{Axis: "t", Start: 0, Dur: 20000},
						{Axis: "x", Start: 420, Dur: 120},
						{Axis: "y", Start: 0, Dur: 30},
					}},
				},
			},
		},
		NameLocs: []NameLoc{
			{ID: "loc-btn", Ref: "ev-btn"},
			{ID: "loc-diagram", Ref: "ev-diagram"},
			{ID: "loc-welcome", Ref: "ev-welcome"},
			{ID: "loc-text", Ref: "ev-text"},
		},
		Links: []ILink{
			// Clicking the button shows the diagram (Fig 4.4b's choice).
			{ID: "lnk-show", Endpoints: []string{"loc-btn", "loc-diagram"}, Rule: RuleUser},
			// When the welcome clip finishes, move to the cells scene.
			{ID: "lnk-advance", Endpoints: []string{"loc-welcome", "loc-text"}, Rule: RuleFinish},
		},
		Renditions: []Rendition{
			// Map generic video units onto a 2× presentation space.
			{ID: "rnd-screen", From: "intro", To: "screen", Maps: []AxisMap{
				{Axis: "x", Scale: 2, Offset: 16},
				{Axis: "y", Scale: 2, Offset: 16},
			}},
		},
	}
}
