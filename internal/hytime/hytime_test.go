package hytime

import (
	"strings"
	"testing"
	"time"

	"mits/internal/courseware"
	"mits/internal/document"
	"mits/internal/mheg/codec"
	"mits/internal/mheg/engine"
	"mits/internal/sim"
)

func TestSampleCourseValidates(t *testing.T) {
	d := SampleCourse()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if ax, ok := d.TemporalAxis(); !ok || ax != "t" {
		t.Errorf("temporal axis %q ok=%v", ax, ok)
	}
}

func TestMarkupRoundTrip(t *testing.T) {
	d := SampleCourse()
	src := d.Markup()
	parsed, err := Parse(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if parsed.ID != d.ID || parsed.Title != d.Title {
		t.Errorf("identity lost: %q %q", parsed.ID, parsed.Title)
	}
	if len(parsed.Axes) != 3 || len(parsed.Entities) != 5 || len(parsed.FCSs) != 2 ||
		len(parsed.NameLocs) != 4 || len(parsed.Links) != 2 || len(parsed.Renditions) != 1 {
		t.Errorf("structure lost: %d axes %d entities %d fcs %d locs %d links %d renditions",
			len(parsed.Axes), len(parsed.Entities), len(parsed.FCSs),
			len(parsed.NameLocs), len(parsed.Links), len(parsed.Renditions))
	}
	cells, ok := parsed.FCS("cells")
	if !ok || len(cells.Events) != 3 {
		t.Fatalf("cells fcs %+v", cells)
	}
	ev, _ := cells.Event("ev-diagram")
	if x, ok := ev.Extent("t"); !ok || x.Start != 20000 || x.Dur != 10000 {
		t.Errorf("diagram extent %+v", x)
	}
}

func TestParseArchitecturalForms(t *testing.T) {
	// Arbitrary element names carrying the hytime attribute must be
	// recognized (SGML architectural forms).
	src := `<hydoc id="d">
  <axes><axis id="t" unit="s" persecond="1"/></axes>
  <clip hytime="entity" id="e1" system="x.mpg" notation="MPEG"/>
  <schedule hytime="fcs" id="f1" axes="t">
    <showing hytime="event" id="ev1" ref="e1"><extent axis="t" start="0" dur="5"/></showing>
  </schedule>
</hydoc>`
	d, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.FCSs) != 1 || len(d.FCSs[0].Events) != 1 {
		t.Errorf("architectural forms not recognized: %+v", d.FCSs)
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"not hydoc", `<other id="x"/>`, "not a HyDoc"},
		{"no id", `<hydoc/>`, "no id"},
		{"dup axis", `<hydoc id="d"><axis id="t"/><axis id="t"/></hydoc>`, "duplicate axis"},
		{"event on undeclared axis", `<hydoc id="d"><axis id="t" persecond="1"/>
			<entity id="e" system="s"/>
			<fcs id="f" axes="t"><event id="ev" ref="e"><extent axis="z" start="0" dur="1"/></event></fcs></hydoc>`,
			"outside fcs"},
		{"event without extents", `<hydoc id="d"><axis id="t" persecond="1"/>
			<entity id="e" system="s"/>
			<fcs id="f" axes="t"><event id="ev" ref="e"/></fcs></hydoc>`, "no extents"},
		{"unknown entity", `<hydoc id="d"><axis id="t" persecond="1"/>
			<fcs id="f" axes="t"><event id="ev" ref="ghost"><extent axis="t" start="0" dur="1"/></event></fcs></hydoc>`,
			"undeclared entity"},
		{"dangling nameloc", `<hydoc id="d"><nameloc id="n" ref="ghost"/></hydoc>`, "unknown id"},
		{"short ilink", `<hydoc id="d"><entity id="e" system="s"/><nameloc id="n" ref="e"/>
			<ilink id="l" endpoints="n"/></hydoc>`, "≥2 endpoints"},
		{"bad rule", `<hydoc id="d"><entity id="e" system="s"/><nameloc id="n" ref="e"/><nameloc id="m" ref="e"/>
			<ilink id="l" endpoints="n m" rule="psychic"/></hydoc>`, "traversal rule"},
		{"rendition from ghost", `<hydoc id="d"><rendition id="r" from="ghost" to="x"/></hydoc>`, "unknown fcs"},
		{"bad treeloc path", `<hydoc id="d"><treeloc id="tl" path="1 banana"/></hydoc>`, "bad path step"},
		{"entity without data", `<hydoc id="d"><entity id="e"/></hydoc>`, "neither system"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.src))
		if err == nil {
			t.Errorf("%s: parsed", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestEngineScheduleQueries(t *testing.T) {
	e := NewEngine(SampleCourse())
	at0, err := e.EventsAt("intro", "t", 0)
	if err != nil || len(at0) != 2 {
		t.Fatalf("EventsAt(0)=%v err=%v", at0, err)
	}
	at25, err := e.EventsAt("cells", "t", 25000)
	if err != nil || len(at25) != 1 || at25[0].ID != "ev-diagram" {
		t.Fatalf("EventsAt(25s)=%v", at25)
	}
	span, err := e.Span("cells", "t")
	if err != nil || span != 30000 {
		t.Errorf("span=%d", span)
	}
	if _, err := e.EventsAt("ghost", "t", 0); err == nil {
		t.Error("EventsAt on ghost fcs")
	}
	if _, err := e.Span("ghost", "t"); err == nil {
		t.Error("Span on ghost fcs")
	}
}

func TestEngineLocationResolution(t *testing.T) {
	d := SampleCourse()
	d.TreeLocs = append(d.TreeLocs, TreeLoc{ID: "tl-first-axis", Path: []int{1, 1}})
	// Re-parse to get the document tree for treelocs.
	parsed, err := Parse(d.Markup())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(parsed)
	id, err := e.ResolveLocation("loc-btn")
	if err != nil || id != "ev-btn" {
		t.Errorf("nameloc → %q err=%v", id, err)
	}
	// Tree path 1,1: hydoc → axes → first axis.
	id, err = e.ResolveLocation("tl-first-axis")
	if err != nil || id != "t" {
		t.Errorf("treeloc → %q err=%v", id, err)
	}
	// Events and entities self-address.
	if id, _ := e.ResolveLocation("ev-text"); id != "ev-text" {
		t.Error("event self-address")
	}
	if id, _ := e.ResolveLocation("welcome-clip"); id != "welcome-clip" {
		t.Error("entity self-address")
	}
	if _, err := e.ResolveLocation("ghost"); err == nil {
		t.Error("ghost location resolved")
	}
	if e.Resolutions == 0 {
		t.Error("resolution counter idle")
	}
}

func TestEngineTraverse(t *testing.T) {
	e := NewEngine(SampleCourse())
	eps, err := e.Traverse("lnk-show")
	if err != nil || len(eps) != 2 || eps[0] != "ev-btn" || eps[1] != "ev-diagram" {
		t.Errorf("traverse %v err=%v", eps, err)
	}
	if _, err := e.Traverse("ghost"); err == nil {
		t.Error("ghost link traversed")
	}
}

func TestRenditionMapping(t *testing.T) {
	e := NewEngine(SampleCourse())
	f, _ := e.Doc.FCS("intro")
	ev, _ := f.Event("ev-welcome")
	out, err := e.Rendered("intro", ev, "x")
	if err != nil {
		t.Fatal(err)
	}
	// x: start 0, dur 352, scale 2 offset 16 → start 16, dur 704.
	if out.Start != 16 || out.Dur != 704 {
		t.Errorf("rendered extent %+v", out)
	}
	// An FCS without a rendition passes extents through.
	cf, _ := e.Doc.FCS("cells")
	cev, _ := cf.Event("ev-text")
	plain, err := e.Rendered("cells", cev, "x")
	if err != nil || plain.Start != 0 || plain.Dur != 400 {
		t.Errorf("unmapped extent %+v err=%v", plain, err)
	}
	if _, err := e.Rendered("cells", cev, "nope"); err == nil {
		t.Error("missing axis rendered")
	}
}

func TestToIMDStructure(t *testing.T) {
	doc, err := ToIMD(SampleCourse())
	if err != nil {
		t.Fatal(err)
	}
	scenes := doc.AllScenes()
	if len(scenes) != 2 || scenes[0].ID != "intro" || scenes[1].ID != "cells" {
		t.Fatalf("scenes %v", scenes)
	}
	cells := scenes[1]
	btn, ok := cells.Object("ev-btn")
	if !ok || btn.Kind != document.ObjButton || btn.Text != "Show cell diagram" {
		t.Errorf("button %+v", btn)
	}
	text, _ := cells.Object("ev-text")
	if text.Kind != document.ObjText || text.Duration != 20*time.Second {
		t.Errorf("text %+v", text)
	}
	diagram, _ := cells.Object("ev-diagram")
	if diagram.Kind != document.ObjImage || diagram.Media != "store/atm/cell-format.jpg" {
		t.Errorf("diagram %+v", diagram)
	}
	if diagram.At.W != 400 || diagram.At.H != 300 {
		t.Errorf("diagram region %+v", diagram.At)
	}
	// The user ilink became a clicked behavior; the finish ilink a
	// cross-scene goto.
	foundClick := false
	for _, b := range cells.Behaviors {
		if b.Conditions[0].Object == "ev-btn" && b.Conditions[0].Event == document.BEvClicked {
			foundClick = true
		}
	}
	if !foundClick {
		t.Error("user ilink not converted to a clicked behavior")
	}
	foundGoto := false
	for _, b := range scenes[0].Behaviors {
		for _, a := range b.Actions {
			if a.Verb == document.BGoto && a.Targets[0] == "cells" {
				foundGoto = true
			}
		}
	}
	if !foundGoto {
		t.Error("finish ilink not converted to a goto behavior")
	}
}

func TestToIMDErrors(t *testing.T) {
	d := SampleCourse()
	d.Axes[0].PerSecond = 0 // no temporal axis
	if _, err := ToIMD(d); err == nil || !strings.Contains(err.Error(), "temporal axis") {
		t.Errorf("err=%v", err)
	}
	bad := SampleCourse()
	bad.FCSs = nil
	bad.Links = nil
	bad.NameLocs = nil
	if _, err := ToIMD(bad); err == nil {
		t.Error("converted doc without schedules")
	}
}

func TestFullPipelineHyTimeToMHEGPlayback(t *testing.T) {
	// The §2.3 pipeline end to end: HyTime markup → parse → convert →
	// compile to MHEG → play on an engine, with the click interaction.
	parsed, err := Parse(SampleCourse().Markup())
	if err != nil {
		t.Fatal(err)
	}
	imd, err := ToIMD(parsed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := courseware.CompileIMD(imd, "hy")
	if err != nil {
		t.Fatal(err)
	}
	data, err := codec.ASN1().Encode(out.Container)
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock()
	ran := make(map[string]sim.Time)
	var e *engine.Engine
	e = engine.New(clock, engine.WithRenderer(engine.RendererFunc(func(ev engine.Event) {
		if ev.Kind != engine.EvRan {
			return
		}
		if obj, ok := e.Model(ev.Model); ok {
			if _, seen := ran[obj.Base().Info.Name]; !seen {
				ran[obj.Base().Info.Name] = ev.At
			}
		}
	})))
	if _, err := e.Ingest(data); err != nil {
		t.Fatal(err)
	}
	rt, err := e.NewRT(out.Root, "main")
	if err != nil {
		t.Fatal(err)
	}
	e.Run(rt)
	// Click the (converted) button 3s into the cells scene: the finish
	// ilink advanced scenes at 8s, so click at 11s.
	clock.At(sim.Time(11*time.Second), func(sim.Time) {
		btn := out.Objects["cells/ev-btn"]
		rts := e.RTsOf(btn)
		if len(rts) > 0 {
			e.Select(rts[0])
		}
	})
	clock.Run()

	if at, ok := ran["text:ev-text"]; !ok || at != sim.Time(8*time.Second) {
		t.Errorf("cells text ran at %v ok=%v (finish ilink scene advance)", at, ok)
	}
	if at, ok := ran["image:ev-diagram"]; !ok || at != sim.Time(11*time.Second) {
		t.Errorf("diagram ran at %v ok=%v (user ilink click)", at, ok)
	}
}
