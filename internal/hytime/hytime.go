// Package hytime implements a working subset of HyTime (ISO/IEC 10744,
// §2.2.1 of the paper): the hypermedia/time-based structuring language
// the paper weighs against MHEG in §2.3 and ultimately uses as the
// authoring-side counterpart ("a potential approach is to use MHEG as
// the output format for hypermedia application taking HyTime as input",
// §2.3 citing [MultiTorg, 95]).
//
// The subset covers the modules of Fig 2.1 that MITS-style courseware
// needs:
//
//   - base module: the HyDoc document element and entity declarations;
//   - measurement module: axes with units and granularity;
//   - scheduling module: finite coordinate spaces (FCS) whose events
//     place entities along axes with (start, duration) extents;
//   - location address module: name-space addressing (nameloc) and
//     coordinate/tree addressing (treeloc), §2.2.1.3;
//   - hyperlinks module: independent links (ilink) over location
//     endpoints;
//   - rendition module: axis mappings from a generic FCS to a
//     presentation FCS.
//
// Documents are SGML-flavoured markup with architectural-form
// attributes (`hytime="event"` etc.), parsed with internal/markup. The
// converter in convert.go maps a HyTime document onto the interactive
// multimedia document model, from which the courseware compiler emits
// MHEG — the full authoring pipeline of §2.3.
package hytime

import (
	"fmt"
	"strings"

	"mits/internal/markup"
)

// Axis is one dimension of the measurement module: a named axis
// measured in units with a granularity (units per second for temporal
// axes; 0 marks a spatial/virtual axis).
type Axis struct {
	Name      string
	Unit      string
	PerSecond int // >0: temporal axis with this many units per second
}

// Temporal reports whether the axis measures time.
func (a Axis) Temporal() bool { return a.PerSecond > 0 }

// Entity is a declared external content object (the SGML entity that
// HyTime addressing ultimately grounds in).
type Entity struct {
	ID       string
	System   string // system identifier: the content reference
	Notation string // data notation: MPEG, JPEG, WAV, text…
	Text     string // inline text entities
}

// Extent places an event along one axis.
type Extent struct {
	Axis  string
	Start int64
	Dur   int64
}

// Event schedules one entity in a finite coordinate space.
type Event struct {
	ID      string
	Entity  string // entity id presented by this event
	Label   string
	Extents []Extent
}

// Extent returns the event's extent on the named axis.
func (e *Event) Extent(axis string) (Extent, bool) {
	for _, x := range e.Extents {
		if x.Axis == axis {
			return x, true
		}
	}
	return Extent{}, false
}

// FCS is a finite coordinate space of the scheduling module: a set of
// axes with events placed on them.
type FCS struct {
	ID     string
	Title  string
	Axes   []string
	Events []*Event
}

// Event finds an event by id.
func (f *FCS) Event(id string) (*Event, bool) {
	for _, e := range f.Events {
		if e.ID == id {
			return e, true
		}
	}
	return nil, false
}

// NameLoc is a name-space address: "the most robust form of address in
// that it can survive changes in the object being addressed"
// (§2.2.1.3).
type NameLoc struct {
	ID  string
	Ref string // id of the addressed element (event or entity)
}

// TreeLoc is a coordinate address into the document tree: "the first
// child of the second child of the root" (§2.2.1.3). Path components
// are 1-based child indexes from the document element.
type TreeLoc struct {
	ID   string
	Path []int
}

// LinkRule describes when an ilink is traversed.
type LinkRule string

// Link traversal rules.
const (
	RuleUser   LinkRule = "user"   // traversed on user activation
	RuleFinish LinkRule = "finish" // traversed when the source event ends
)

// ILink is an independent link between located endpoints.
type ILink struct {
	ID        string
	Endpoints []string // location ids; first is the source
	Rule      LinkRule
}

// AxisMap is one axis mapping of a rendition.
type AxisMap struct {
	Axis   string
	Scale  float64
	Offset int64
}

// Rendition maps events of one FCS onto another (generic layout →
// presentation layout, §2.2.1.2's rendition module).
type Rendition struct {
	ID   string
	From string
	To   string
	Maps []AxisMap
}

// Doc is a parsed HyTime document.
type Doc struct {
	ID         string
	Title      string
	Axes       []Axis
	Entities   []Entity
	FCSs       []*FCS
	NameLocs   []NameLoc
	TreeLocs   []TreeLoc
	Links      []ILink
	Renditions []Rendition

	root *markup.Element // retained for tree-location resolution
}

// Axis finds an axis by name.
func (d *Doc) Axis(name string) (Axis, bool) {
	for _, a := range d.Axes {
		if a.Name == name {
			return a, true
		}
	}
	return Axis{}, false
}

// Entity finds an entity by id.
func (d *Doc) Entity(id string) (Entity, bool) {
	for _, e := range d.Entities {
		if e.ID == id {
			return e, true
		}
	}
	return Entity{}, false
}

// FCS finds a coordinate space by id.
func (d *Doc) FCS(id string) (*FCS, bool) {
	for _, f := range d.FCSs {
		if f.ID == id {
			return f, true
		}
	}
	return nil, false
}

// TemporalAxis returns the document's (first) temporal axis name.
func (d *Doc) TemporalAxis() (string, bool) {
	for _, a := range d.Axes {
		if a.Temporal() {
			return a.Name, true
		}
	}
	return "", false
}

// Validate checks referential integrity across the modules.
func (d *Doc) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("hytime: document has no id")
	}
	axes := make(map[string]Axis, len(d.Axes))
	for _, a := range d.Axes {
		if a.Name == "" {
			return fmt.Errorf("hytime: axis with empty name")
		}
		if _, dup := axes[a.Name]; dup {
			return fmt.Errorf("hytime: duplicate axis %q", a.Name)
		}
		axes[a.Name] = a
	}
	ids := make(map[string]string) // id → element kind
	declare := func(id, kind string) error {
		if id == "" {
			return fmt.Errorf("hytime: %s with empty id", kind)
		}
		if prev, dup := ids[id]; dup {
			return fmt.Errorf("hytime: id %q declared as both %s and %s", id, prev, kind)
		}
		ids[id] = kind
		return nil
	}
	for _, e := range d.Entities {
		if err := declare(e.ID, "entity"); err != nil {
			return err
		}
		if e.System == "" && e.Text == "" {
			return fmt.Errorf("hytime: entity %q has neither system identifier nor text", e.ID)
		}
	}
	for _, f := range d.FCSs {
		if err := declare(f.ID, "fcs"); err != nil {
			return err
		}
		for _, ax := range f.Axes {
			if _, ok := axes[ax]; !ok {
				return fmt.Errorf("hytime: fcs %q uses undeclared axis %q", f.ID, ax)
			}
		}
		fcsAxes := make(map[string]bool, len(f.Axes))
		for _, ax := range f.Axes {
			fcsAxes[ax] = true
		}
		for _, ev := range f.Events {
			if err := declare(ev.ID, "event"); err != nil {
				return err
			}
			if _, ok := d.Entity(ev.Entity); !ok {
				return fmt.Errorf("hytime: event %q schedules undeclared entity %q", ev.ID, ev.Entity)
			}
			if len(ev.Extents) == 0 {
				return fmt.Errorf("hytime: event %q has no extents", ev.ID)
			}
			for _, x := range ev.Extents {
				if !fcsAxes[x.Axis] {
					return fmt.Errorf("hytime: event %q extent on axis %q outside fcs %q", ev.ID, x.Axis, f.ID)
				}
				if x.Start < 0 || x.Dur < 0 {
					return fmt.Errorf("hytime: event %q has negative extent on %q", ev.ID, x.Axis)
				}
			}
		}
	}
	for _, n := range d.NameLocs {
		if err := declare(n.ID, "nameloc"); err != nil {
			return err
		}
		if _, ok := ids[n.Ref]; !ok {
			return fmt.Errorf("hytime: nameloc %q addresses unknown id %q", n.ID, n.Ref)
		}
	}
	for _, tl := range d.TreeLocs {
		if err := declare(tl.ID, "treeloc"); err != nil {
			return err
		}
		if len(tl.Path) == 0 {
			return fmt.Errorf("hytime: treeloc %q has empty path", tl.ID)
		}
		for _, step := range tl.Path {
			if step < 1 {
				return fmt.Errorf("hytime: treeloc %q has non-positive step", tl.ID)
			}
		}
	}
	locKinds := map[string]bool{"nameloc": true, "treeloc": true}
	for _, l := range d.Links {
		if err := declare(l.ID, "ilink"); err != nil {
			return err
		}
		if len(l.Endpoints) < 2 {
			return fmt.Errorf("hytime: ilink %q needs ≥2 endpoints", l.ID)
		}
		for _, ep := range l.Endpoints {
			kind, ok := ids[ep]
			if !ok {
				return fmt.Errorf("hytime: ilink %q endpoint %q unknown", l.ID, ep)
			}
			if !locKinds[kind] && kind != "event" {
				return fmt.Errorf("hytime: ilink %q endpoint %q is a %s, want a location or event", l.ID, ep, kind)
			}
		}
		switch l.Rule {
		case RuleUser, RuleFinish:
		default:
			return fmt.Errorf("hytime: ilink %q has unknown traversal rule %q", l.ID, l.Rule)
		}
	}
	for _, r := range d.Renditions {
		if err := declare(r.ID, "rendition"); err != nil {
			return err
		}
		if _, ok := d.FCS(r.From); !ok {
			return fmt.Errorf("hytime: rendition %q maps from unknown fcs %q", r.ID, r.From)
		}
		for _, m := range r.Maps {
			if _, ok := axes[m.Axis]; !ok {
				return fmt.Errorf("hytime: rendition %q maps undeclared axis %q", r.ID, m.Axis)
			}
			if m.Scale == 0 {
				return fmt.Errorf("hytime: rendition %q has zero scale on %q", r.ID, m.Axis)
			}
		}
	}
	return nil
}

// Apply maps an extent through the rendition ("events in one FCS can be
// mapped to another FCS", §2.2.1.2).
func (r Rendition) Apply(x Extent) Extent {
	for _, m := range r.Maps {
		if m.Axis != x.Axis {
			continue
		}
		return Extent{
			Axis:  x.Axis,
			Start: int64(float64(x.Start)*m.Scale) + m.Offset,
			Dur:   int64(float64(x.Dur) * m.Scale),
		}
	}
	return x
}

// kindOfNotation groups notations for the converter.
func kindOfNotation(n string) string {
	switch strings.ToUpper(n) {
	case "MPEG", "AVI":
		return "video"
	case "WAV", "MIDI":
		return "audio"
	case "JPEG":
		return "image"
	default:
		return "text"
	}
}
