package hytime

import (
	"fmt"
	"sort"

	"mits/internal/markup"
)

// Engine is the HyTime engine of Fig 2.3's processing model: after the
// parser hands it the document, "the engine assumes responsibility for
// determining where things are on FCS schedules, for resolving document
// location elements to the data they indicate". Unlike MHEG, whose
// links arrive fully resolved, every HyTime query pays a resolution
// step — the E21 experiment counts them.
type Engine struct {
	Doc *Doc

	// Resolutions counts address resolutions performed, the runtime
	// cost §2.3.2 attributes to HyTime presentation.
	Resolutions int
}

// NewEngine wraps a validated document.
func NewEngine(d *Doc) *Engine { return &Engine{Doc: d} }

// ResolveLocation resolves a location id (nameloc or treeloc) to the id
// of the element it addresses.
func (e *Engine) ResolveLocation(locID string) (string, error) {
	e.Resolutions++
	for _, n := range e.Doc.NameLocs {
		if n.ID == locID {
			return n.Ref, nil
		}
	}
	for _, tl := range e.Doc.TreeLocs {
		if tl.ID == locID {
			el, err := e.resolveTree(tl.Path)
			if err != nil {
				return "", err
			}
			if id := el.Attr("id"); id != "" {
				return id, nil
			}
			return "", fmt.Errorf("hytime: treeloc %q addresses an element without id", locID)
		}
	}
	// An event or entity id is its own address.
	if _, ok := e.findEvent(locID); ok {
		return locID, nil
	}
	if _, ok := e.Doc.Entity(locID); ok {
		return locID, nil
	}
	return "", fmt.Errorf("hytime: unknown location %q", locID)
}

func (e *Engine) resolveTree(path []int) (*markup.Element, error) {
	el := e.Doc.root
	if el == nil {
		return nil, fmt.Errorf("hytime: no document tree retained")
	}
	for _, step := range path {
		if step < 1 || step > len(el.Kids) {
			return nil, fmt.Errorf("hytime: tree path step %d out of range (element has %d children)", step, len(el.Kids))
		}
		el = el.Kids[step-1]
	}
	return el, nil
}

func (e *Engine) findEvent(id string) (*Event, bool) {
	for _, f := range e.Doc.FCSs {
		if ev, ok := f.Event(id); ok {
			return ev, true
		}
	}
	return nil, false
}

// EventsAt reports the events of an FCS whose extent on the axis covers
// position t, in start order — "determining where things are on FCS
// schedules".
func (e *Engine) EventsAt(fcsID, axis string, t int64) ([]*Event, error) {
	e.Resolutions++
	f, ok := e.Doc.FCS(fcsID)
	if !ok {
		return nil, fmt.Errorf("hytime: unknown fcs %q", fcsID)
	}
	var out []*Event
	for _, ev := range f.Events {
		x, ok := ev.Extent(axis)
		if !ok {
			continue
		}
		if t >= x.Start && t < x.Start+x.Dur {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		xi, _ := out[i].Extent(axis)
		xj, _ := out[j].Extent(axis)
		if xi.Start != xj.Start {
			return xi.Start < xj.Start
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Span reports the FCS's total extent on the axis.
func (e *Engine) Span(fcsID, axis string) (int64, error) {
	e.Resolutions++
	f, ok := e.Doc.FCS(fcsID)
	if !ok {
		return 0, fmt.Errorf("hytime: unknown fcs %q", fcsID)
	}
	var span int64
	for _, ev := range f.Events {
		if x, ok := ev.Extent(axis); ok {
			if end := x.Start + x.Dur; end > span {
				span = end
			}
		}
	}
	return span, nil
}

// Traverse resolves a link's endpoints to element ids (source first) —
// the hyperlink traversal of §2.2.1.3, which in HyTime requires
// resolving each endpoint's location chain at traversal time.
func (e *Engine) Traverse(linkID string) ([]string, error) {
	for _, l := range e.Doc.Links {
		if l.ID != linkID {
			continue
		}
		out := make([]string, 0, len(l.Endpoints))
		for _, ep := range l.Endpoints {
			id, err := e.ResolveLocation(ep)
			if err != nil {
				return nil, fmt.Errorf("hytime: link %q: %w", linkID, err)
			}
			out = append(out, id)
		}
		return out, nil
	}
	return nil, fmt.Errorf("hytime: unknown link %q", linkID)
}

// Rendered applies the FCS's rendition (if any) to an event's extent on
// an axis, yielding presentation coordinates.
func (e *Engine) Rendered(fcsID string, ev *Event, axis string) (Extent, error) {
	e.Resolutions++
	x, ok := ev.Extent(axis)
	if !ok {
		return Extent{}, fmt.Errorf("hytime: event %q has no extent on %q", ev.ID, axis)
	}
	for _, r := range e.Doc.Renditions {
		if r.From == fcsID {
			return r.Apply(x), nil
		}
	}
	return x, nil
}
