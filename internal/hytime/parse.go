package hytime

import (
	"fmt"
	"strconv"
	"strings"

	"mits/internal/markup"
)

// Parse reads a HyTime document from SGML-flavoured markup.
// Architectural forms are recognized by the `hytime` attribute, with
// conventional element names accepted as defaults (an element named
// `event` needs no explicit form attribute).
func Parse(src []byte) (*Doc, error) {
	root, err := markup.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("hytime: %w", err)
	}
	if form(root) != "hydoc" {
		return nil, fmt.Errorf("hytime: document element <%s> is not a HyDoc", root.Name)
	}
	d := &Doc{
		ID:    root.Attr("id"),
		Title: root.Attr("title"),
		root:  root,
	}
	var perr error
	root.Walk(func(el *markup.Element) {
		if perr != nil || el == root {
			return
		}
		switch form(el) {
		case "axis":
			d.Axes = append(d.Axes, Axis{
				Name:      el.Attr("id"),
				Unit:      el.Attr("unit"),
				PerSecond: int(el.AttrInt("persecond")),
			})
		case "entity":
			d.Entities = append(d.Entities, Entity{
				ID:       el.Attr("id"),
				System:   el.Attr("system"),
				Notation: el.Attr("notation"),
				Text:     el.Text,
			})
		case "fcs":
			f := &FCS{ID: el.Attr("id"), Title: el.Attr("title")}
			if ax := el.Attr("axes"); ax != "" {
				f.Axes = strings.Fields(ax)
			}
			for _, evEl := range el.Kids {
				if form(evEl) != "event" {
					continue
				}
				ev := &Event{
					ID:     evEl.Attr("id"),
					Entity: evEl.Attr("ref"),
					Label:  evEl.Attr("label"),
				}
				for _, xEl := range evEl.Children("extent") {
					ev.Extents = append(ev.Extents, Extent{
						Axis:  xEl.Attr("axis"),
						Start: xEl.AttrInt("start"),
						Dur:   xEl.AttrInt("dur"),
					})
				}
				f.Events = append(f.Events, ev)
			}
			d.FCSs = append(d.FCSs, f)
		case "nameloc":
			d.NameLocs = append(d.NameLocs, NameLoc{ID: el.Attr("id"), Ref: el.Attr("ref")})
		case "treeloc":
			tl := TreeLoc{ID: el.Attr("id")}
			for _, part := range strings.Fields(el.Attr("path")) {
				n, err := strconv.Atoi(part)
				if err != nil {
					perr = fmt.Errorf("hytime: treeloc %q has bad path step %q", tl.ID, part)
					return
				}
				tl.Path = append(tl.Path, n)
			}
			d.TreeLocs = append(d.TreeLocs, tl)
		case "ilink":
			rule := LinkRule(el.Attr("rule"))
			if rule == "" {
				rule = RuleUser
			}
			d.Links = append(d.Links, ILink{
				ID:        el.Attr("id"),
				Endpoints: strings.Fields(el.Attr("endpoints")),
				Rule:      rule,
			})
		case "rendition":
			r := Rendition{ID: el.Attr("id"), From: el.Attr("from"), To: el.Attr("to")}
			for _, mEl := range el.Children("map") {
				scale := 1.0
				if s := mEl.Attr("scale"); s != "" {
					v, err := strconv.ParseFloat(s, 64)
					if err != nil {
						perr = fmt.Errorf("hytime: rendition %q has bad scale %q", r.ID, s)
						return
					}
					scale = v
				}
				r.Maps = append(r.Maps, AxisMap{
					Axis:   mEl.Attr("axis"),
					Scale:  scale,
					Offset: mEl.AttrInt("offset"),
				})
			}
			d.Renditions = append(d.Renditions, r)
		}
	})
	if perr != nil {
		return nil, perr
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// form reports an element's architectural form: the explicit `hytime`
// attribute, or the element name when it matches a known form.
func form(el *markup.Element) string {
	if f := el.Attr("hytime"); f != "" {
		return strings.ToLower(f)
	}
	switch el.Name {
	case "hydoc", "axis", "entity", "fcs", "event", "nameloc", "treeloc", "ilink", "rendition":
		return el.Name
	}
	return ""
}

// Markup serializes the document back to its interchange form (used by
// authoring tools and the E21 experiment to measure document sizes).
func (d *Doc) Markup() []byte {
	root := markup.New("hydoc").Set("id", d.ID).Set("title", d.Title)
	axes := markup.New("axes")
	for _, a := range d.Axes {
		axes.Add(markup.New("axis").Set("id", a.Name).Set("unit", a.Unit).SetInt("persecond", int64(a.PerSecond)))
	}
	root.Add(axes)
	for _, e := range d.Entities {
		el := markup.New("entity").Set("id", e.ID).Set("system", e.System).Set("notation", e.Notation)
		el.Text = e.Text
		root.Add(el)
	}
	for _, f := range d.FCSs {
		fEl := markup.New("fcs").Set("id", f.ID).Set("title", f.Title).Set("axes", strings.Join(f.Axes, " "))
		for _, ev := range f.Events {
			evEl := markup.New("event").Set("id", ev.ID).Set("ref", ev.Entity).Set("label", ev.Label)
			for _, x := range ev.Extents {
				evEl.Add(markup.New("extent").Set("axis", x.Axis).SetInt("start", x.Start).SetInt("dur", x.Dur))
			}
			fEl.Add(evEl)
		}
		root.Add(fEl)
	}
	for _, n := range d.NameLocs {
		root.Add(markup.New("nameloc").Set("id", n.ID).Set("ref", n.Ref))
	}
	for _, tl := range d.TreeLocs {
		parts := make([]string, len(tl.Path))
		for i, p := range tl.Path {
			parts[i] = strconv.Itoa(p)
		}
		root.Add(markup.New("treeloc").Set("id", tl.ID).Set("path", strings.Join(parts, " ")))
	}
	for _, l := range d.Links {
		root.Add(markup.New("ilink").Set("id", l.ID).
			Set("endpoints", strings.Join(l.Endpoints, " ")).Set("rule", string(l.Rule)))
	}
	for _, r := range d.Renditions {
		rEl := markup.New("rendition").Set("id", r.ID).Set("from", r.From).Set("to", r.To)
		for _, m := range r.Maps {
			mEl := markup.New("map").Set("axis", m.Axis).SetInt("offset", m.Offset)
			mEl.Set("scale", strconv.FormatFloat(m.Scale, 'g', -1, 64))
			rEl.Add(mEl)
		}
		root.Add(rEl)
	}
	return []byte(root.String())
}
