package media

import (
	"encoding/binary"
	"fmt"
	"time"

	"mits/internal/sim"
)

// FrameKind is an MPEG picture type.
type FrameKind byte

// MPEG picture types.
const (
	IFrame FrameKind = 'I' // intra-coded: largest
	PFrame FrameKind = 'P' // predictive: medium
	BFrame FrameKind = 'B' // bidirectional: smallest
)

// Frame describes one encoded video frame: its kind, encoded size and
// presentation timestamp. Streaming experiments pace cell emission from
// this sequence.
type Frame struct {
	Kind FrameKind
	Size int           // encoded bytes
	PTS  time.Duration // presentation timestamp from stream start
}

// GOP (group of pictures) layout used by the synthetic encoder:
// IBBPBBPBBPBB — one I-frame per 12, the classic MPEG-1 pattern.
const gopLength = 12

var gopPattern = [gopLength]FrameKind{
	IFrame, BFrame, BFrame, PFrame, BFrame, BFrame,
	PFrame, BFrame, BFrame, PFrame, BFrame, BFrame,
}

// Relative frame weights: I:P:B ≈ 5:3:1, normalized so a whole GOP
// matches the target bit rate.
var frameWeight = map[FrameKind]float64{IFrame: 5, PFrame: 3, BFrame: 1}

// gopWeight is the summed weight of one GOP (1×I + 3×P + 8×B).
const gopWeight = 5*1 + 3*3 + 1*8

// VideoParams configures the synthetic MPEG encoder.
type VideoParams struct {
	Duration  time.Duration
	Width     int // default 352 (SIF)
	Height    int // default 240
	FrameRate int // default 30
	BitRate   int // bits/s, default 1.5e6 (MPEG-1)
	Seed      uint64
}

func (p *VideoParams) defaults() {
	if p.Width == 0 {
		p.Width = 352
	}
	if p.Height == 0 {
		p.Height = 240
	}
	if p.FrameRate == 0 {
		p.FrameRate = 30
	}
	if p.BitRate == 0 {
		p.BitRate = 1500000
	}
}

// frameRecordSize is the per-frame record in the payload: kind(1) +
// size(4) + filler reference(3) = 8 bytes, followed by the frame body.
const frameRecordSize = 8

// EncodeMPEG synthesizes an MPEG-like elementary stream: a sequence of
// frame records following the GOP pattern, with deterministic ±20% size
// jitter so VBR behaviour is realistic.
func EncodeMPEG(p VideoParams) []byte {
	p.defaults()
	frames := int(float64(p.FrameRate) * p.Duration.Seconds())
	bytesPerGOP := float64(p.BitRate) / 8 * float64(gopLength) / float64(p.FrameRate)
	rng := sim.NewRNG(p.Seed + 1)
	m := Meta{Duration: p.Duration, Width: p.Width, Height: p.Height,
		FrameRate: p.FrameRate, BitRate: p.BitRate}

	// First pass: frame sizes.
	sizes := make([]int, frames)
	total := 0
	for i := range sizes {
		kind := gopPattern[i%gopLength]
		base := bytesPerGOP * frameWeight[kind] / gopWeight
		jitter := 0.8 + 0.4*rng.Float64()
		sz := int(base * jitter)
		if sz < frameRecordSize {
			sz = frameRecordSize
		}
		sizes[i] = sz
		total += sz
	}
	buf := encodeHeader(CodingMPEG, m, total)
	for i, sz := range sizes {
		var rec [frameRecordSize]byte
		rec[0] = byte(gopPattern[i%gopLength])
		binary.BigEndian.PutUint32(rec[1:], uint32(sz))
		buf = append(buf, rec[:]...)
		// Frame body: deterministic filler.
		for j := frameRecordSize; j < sz; j++ {
			buf = append(buf, byte(i*31+j))
		}
	}
	return buf
}

// ParseMPEG extracts the frame sequence from an encoded stream, with
// presentation timestamps derived from the frame rate. Streaming
// servers iterate this to pace transmission.
func ParseMPEG(data []byte) ([]Frame, Meta, error) {
	m, err := Decode(CodingMPEG, data)
	if err != nil {
		return nil, Meta{}, err
	}
	if m.FrameRate <= 0 {
		return nil, Meta{}, fmt.Errorf("MPEG stream with frame rate %d", m.FrameRate)
	}
	// Decode validated the header, but carry the guard locally so this
	// function is panic-free on any input.
	if len(data) < headerSize {
		return nil, Meta{}, fmt.Errorf("MPEG stream truncated at %d bytes", len(data))
	}
	payload := data[headerSize:]
	var frames []Frame
	frameDur := time.Second / time.Duration(m.FrameRate)
	for off, idx := 0, 0; off < len(payload); idx++ {
		if off+frameRecordSize > len(payload) {
			return nil, Meta{}, fmt.Errorf("MPEG frame %d truncated at offset %d", idx, off)
		}
		kind := FrameKind(payload[off])
		size := int(binary.BigEndian.Uint32(payload[off+1:]))
		if size < frameRecordSize || off+size > len(payload) {
			return nil, Meta{}, fmt.Errorf("MPEG frame %d has bad size %d", idx, size)
		}
		frames = append(frames, Frame{Kind: kind, Size: size, PTS: time.Duration(idx) * frameDur})
		off += size
	}
	return frames, m, nil
}

// aviAudioShare is the fraction of an AVI stream that is audio.
const aviAudioShare = 0.1

// EncodeAVI synthesizes an audio-video-interleaved object: the MPEG-like
// video stream plus a WAV-like audio track, interleaved per frame. AVI
// is the navigator's native Windows 95 playback format (Table 5.1).
func EncodeAVI(p VideoParams) []byte {
	p.defaults()
	video := EncodeMPEG(p)
	audioPerFrame := int(float64(p.BitRate) / 8 * aviAudioShare / float64(p.FrameRate))
	frames, _, err := ParseMPEG(video)
	if err != nil {
		panic("media: internal error: self-encoded MPEG failed to parse: " + err.Error())
	}
	total := 0
	for _, f := range frames {
		total += f.Size + audioPerFrame
	}
	m := Meta{Duration: p.Duration, Width: p.Width, Height: p.Height,
		FrameRate: p.FrameRate, BitRate: int(float64(p.BitRate) * (1 + aviAudioShare)),
		SampleRate: DefaultWAVRate, Channels: 1}
	buf := encodeHeader(CodingAVI, m, total)
	payload := video[headerSize:]
	off := 0
	for _, f := range frames {
		buf = append(buf, payload[off:off+f.Size]...)
		for j := 0; j < audioPerFrame; j++ {
			buf = append(buf, byte(j))
		}
		off += f.Size
	}
	return buf
}

// NewVideo builds a complete video Object under the given coding.
func NewVideo(id, name string, coding Coding, p VideoParams, keywords ...string) (*Object, error) {
	var data []byte
	switch coding {
	case CodingMPEG:
		data = EncodeMPEG(p)
	case CodingAVI:
		data = EncodeAVI(p)
	default:
		return nil, fmt.Errorf("media: %q is not a video coding", coding)
	}
	meta, err := Decode(coding, data)
	if err != nil {
		return nil, err
	}
	return &Object{ID: id, Name: name, Coding: coding, Meta: meta, Keywords: keywords, Data: data}, nil
}
