package media

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWAVSizeMatchesTable51(t *testing.T) {
	// Table 5.1 / §5.2.2: one minute of waveform audio ≈ 1 MB.
	data := EncodeWAV(time.Minute, 0, 0)
	mb := float64(len(data)) / (1 << 20)
	if mb < 0.8 || mb > 1.2 {
		t.Errorf("1 minute of WAV = %.2f MB, want ≈1 MB", mb)
	}
}

func TestMIDISizeMatchesTable51(t *testing.T) {
	// §5.2.2: one minute of MIDI ≈ 5 KB, about 1/20 of WAV.
	midi := EncodeMIDI(time.Minute)
	kb := float64(len(midi)) / 1024
	if kb < 4 || kb > 6.5 {
		t.Errorf("1 minute of MIDI = %.2f KB, want ≈5 KB", kb)
	}
	// The thesis says MIDI takes "one-twentieth" of WAV, but its own
	// numbers (1 MB/min vs 5 KB/min) imply ≈200×. We match the numbers.
	wav := EncodeWAV(time.Minute, 0, 0)
	ratio := float64(len(wav)) / float64(len(midi))
	if ratio < 100 || ratio > 300 {
		t.Errorf("WAV/MIDI ratio = %.1f, want ≈200", ratio)
	}
}

func TestWAVDecodeRoundTrip(t *testing.T) {
	data := EncodeWAV(5*time.Second, 22050, 2)
	m, err := Decode(CodingWAV, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Duration != 5*time.Second || m.SampleRate != 22050 || m.Channels != 2 {
		t.Errorf("decoded meta %+v", m)
	}
}

func TestMIDIEvents(t *testing.T) {
	data := EncodeMIDI(30 * time.Second)
	n, err := MIDIEvents(data)
	if err != nil {
		t.Fatal(err)
	}
	if n < 100 {
		t.Errorf("30s of MIDI has only %d events", n)
	}
	if _, err := MIDIEvents(EncodeWAV(time.Second, 0, 0)); err == nil {
		t.Error("MIDIEvents accepted WAV data")
	}
}

func TestMPEGGOPStructure(t *testing.T) {
	data := EncodeMPEG(VideoParams{Duration: 4 * time.Second})
	frames, m, err := ParseMPEG(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.FrameRate != 30 || m.Width != 352 || m.Height != 240 {
		t.Errorf("default meta %+v", m)
	}
	if len(frames) != 120 {
		t.Fatalf("4s@30fps gave %d frames, want 120", len(frames))
	}
	var iSum, pSum, bSum, iN, pN, bN float64
	for i, f := range frames {
		if want := gopPattern[i%gopLength]; f.Kind != want {
			t.Fatalf("frame %d kind %c, want %c", i, f.Kind, want)
		}
		switch f.Kind {
		case IFrame:
			iSum += float64(f.Size)
			iN++
		case PFrame:
			pSum += float64(f.Size)
			pN++
		case BFrame:
			bSum += float64(f.Size)
			bN++
		}
	}
	iAvg, pAvg, bAvg := iSum/iN, pSum/pN, bSum/bN
	if !(iAvg > pAvg && pAvg > bAvg) {
		t.Errorf("frame size ordering I=%.0f P=%.0f B=%.0f, want I>P>B", iAvg, pAvg, bAvg)
	}
	// PTS pacing.
	if want := 30 * (time.Second / 30); frames[30].PTS != want {
		t.Errorf("frame 30 PTS=%v, want %v", frames[30].PTS, want)
	}
}

func TestMPEGBitRateAccuracy(t *testing.T) {
	p := VideoParams{Duration: 10 * time.Second, BitRate: 1500000}
	data := EncodeMPEG(p)
	payloadBits := float64(len(data)-headerSize) * 8
	rate := payloadBits / 10
	if math.Abs(rate-1500000)/1500000 > 0.1 {
		t.Errorf("measured bit rate %.0f, want ≈1.5e6 ±10%%", rate)
	}
}

func TestMPEGDeterministic(t *testing.T) {
	a := EncodeMPEG(VideoParams{Duration: time.Second, Seed: 9})
	b := EncodeMPEG(VideoParams{Duration: time.Second, Seed: 9})
	if len(a) != len(b) {
		t.Fatal("same seed produced different streams")
	}
	c := EncodeMPEG(VideoParams{Duration: time.Second, Seed: 10})
	if len(a) == len(c) {
		// Lengths can collide, compare content.
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical streams")
		}
	}
}

func TestParseMPEGRejectsCorruption(t *testing.T) {
	data := EncodeMPEG(VideoParams{Duration: time.Second})
	if _, _, err := ParseMPEG(data[:len(data)-5]); err == nil {
		t.Error("truncated stream parsed (length check must catch)")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, _, err := ParseMPEG(bad); err == nil {
		t.Error("bad magic parsed")
	}
}

func TestAVIInterleaveLargerThanVideo(t *testing.T) {
	p := VideoParams{Duration: 2 * time.Second}
	avi := EncodeAVI(p)
	mpeg := EncodeMPEG(p)
	if len(avi) <= len(mpeg) {
		t.Errorf("AVI %d bytes not larger than bare MPEG %d (audio track missing)", len(avi), len(mpeg))
	}
	m, err := Decode(CodingAVI, avi)
	if err != nil {
		t.Fatal(err)
	}
	if m.SampleRate != DefaultWAVRate {
		t.Errorf("AVI audio meta missing: %+v", m)
	}
}

func TestJPEGScalesWithPixels(t *testing.T) {
	small := EncodeJPEG(320, 240, 1)
	large := EncodeJPEG(640, 480, 1)
	ratio := float64(len(large)) / float64(len(small))
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4× pixels gave %.2f× bytes, want ≈4×", ratio)
	}
}

func TestTextRoundTrip(t *testing.T) {
	msg := "ATM cells are 53 bytes long."
	data := EncodeText(msg)
	got, err := TextContent(CodingASCII, data)
	if err != nil {
		t.Fatal(err)
	}
	if got != msg {
		t.Errorf("round trip %q", got)
	}
	if _, err := TextContent(CodingJPEG, data); err == nil {
		t.Error("TextContent accepted image coding")
	}
}

func TestTextRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		got, err := TextContent(CodingASCII, EncodeText(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHTMLWrapping(t *testing.T) {
	obj, err := NewHTML("doc1", "ATM Basics", "Cells have 48-byte payloads.", "atm")
	if err != nil {
		t.Fatal(err)
	}
	text, err := TextContent(CodingHTML, obj.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "<title>ATM Basics</title>") {
		t.Errorf("HTML not wrapped: %q", text)
	}
}

func TestObjectValidate(t *testing.T) {
	obj, err := NewAudio("a1", "intro music", CodingMIDI, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Validate(); err != nil {
		t.Errorf("valid object rejected: %v", err)
	}
	obj.Data[0] = 'X'
	if err := obj.Validate(); err == nil {
		t.Error("corrupted object validated")
	}
	empty := &Object{}
	if err := empty.Validate(); err == nil {
		t.Error("object with empty ID validated")
	}
}

func TestNewVideoAndMismatchedCodings(t *testing.T) {
	v, err := NewVideo("v1", "welcome clip", CodingMPEG, VideoParams{Duration: time.Second}, "welcome")
	if err != nil {
		t.Fatal(err)
	}
	if v.Meta.Duration != time.Second || v.Size() == 0 {
		t.Errorf("video object %+v", v.Meta)
	}
	if _, err := NewVideo("v2", "x", CodingWAV, VideoParams{}); err == nil {
		t.Error("NewVideo accepted audio coding")
	}
	if _, err := NewAudio("a2", "x", CodingMPEG, time.Second); err == nil {
		t.Error("NewAudio accepted video coding")
	}
}

func TestClassOfAndTimeBased(t *testing.T) {
	if ClassOf(CodingMPEG) != ClassVideo || ClassOf(CodingWAV) != ClassAudio ||
		ClassOf(CodingJPEG) != ClassImage || ClassOf(CodingHTML) != ClassText {
		t.Error("ClassOf misclassifies")
	}
	if !TimeBased(CodingMPEG) || !TimeBased(CodingMIDI) || TimeBased(CodingJPEG) || TimeBased(CodingASCII) {
		t.Error("TimeBased misclassifies")
	}
	if ClassVideo.String() != "video" {
		t.Error("Class.String broken")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(CodingWAV, []byte("short")); err == nil {
		t.Error("short data decoded")
	}
	if _, err := Decode(Coding("NOPE"), make([]byte, 100)); err == nil {
		t.Error("unknown coding decoded")
	}
	data := EncodeText("hello")
	if _, err := Decode(CodingASCII, data[:len(data)-1]); err == nil {
		t.Error("length mismatch not detected")
	}
}

func TestGenerateLecture(t *testing.T) {
	a := GenerateLecture("ATM networks", 2000, 5)
	b := GenerateLecture("ATM networks", 2000, 5)
	if a != b {
		t.Error("lecture generation not deterministic")
	}
	if len(a) < 2000 {
		t.Errorf("lecture only %d bytes, want ≥2000", len(a))
	}
	if !strings.HasPrefix(a, "Lecture notes: ATM networks.") {
		t.Error("lecture missing topic header")
	}
}
