// Package media implements the mono-media objects of the MITS media
// production center (§3.4.1) and the file formats of the navigator
// platform (§5.2.2, Table 5.1).
//
// Real codecs are replaced by synthetic ones that generate deterministic
// bitstreams with the correct *statistical shape*: WAV costs about 1 MB
// per minute and MIDI about 5 KB per minute (Table 5.1), MPEG video has
// a GOP structure of large I-frames and smaller P/B-frames paced at the
// stream's frame rate, and AVI interleaves audio and video chunks. The
// experiments depend on sizes, rates and timing, never on pixel or
// sample content, so this substitution preserves the paper's behaviour.
package media

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Coding identifies a media encoding, as carried in MHEG content-object
// parameter sets ("identification of the coding method", §2.2.2.1).
type Coding string

// Codings used across MITS.
const (
	CodingMPEG  Coding = "MPEG"  // motion video
	CodingJPEG  Coding = "JPEG"  // still image
	CodingWAV   Coding = "WAV"   // waveform audio
	CodingMIDI  Coding = "MIDI"  // musical instrument digital interface
	CodingAVI   Coding = "AVI"   // audio-video interleaved
	CodingASCII Coding = "ASCII" // plain text
	CodingHTML  Coding = "HTML"  // hypertext markup
)

// Class is the broad media class of an object.
type Class int

// Media classes.
const (
	ClassText Class = iota
	ClassImage
	ClassAudio
	ClassVideo
)

var classNames = [...]string{"text", "image", "audio", "video"}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// ClassOf reports the media class of a coding.
func ClassOf(c Coding) Class {
	switch c {
	case CodingMPEG, CodingAVI:
		return ClassVideo
	case CodingWAV, CodingMIDI:
		return ClassAudio
	case CodingJPEG:
		return ClassImage
	default:
		return ClassText
	}
}

// TimeBased reports whether the coding has a duration (continuous media).
func TimeBased(c Coding) bool {
	switch c {
	case CodingMPEG, CodingAVI, CodingWAV, CodingMIDI:
		return true
	}
	return false
}

// Meta carries presentation parameters of a media object — the MHEG
// content class "parameter set specifying characteristics for content
// presentation" (§2.2.2.1).
type Meta struct {
	Duration   time.Duration // for time-based media
	Width      int           // pixels, visual media
	Height     int           // pixels, visual media
	SampleRate int           // Hz, audio
	Channels   int           // audio channels
	FrameRate  int           // frames/s, video
	BitRate    int           // bits/s, continuous media streams
}

// Object is one mono-media object produced by the media production
// center and referenced from MHEG content objects.
type Object struct {
	ID       string
	Name     string
	Coding   Coding
	Meta     Meta
	Keywords []string
	Data     []byte
}

// Size reports the encoded size in bytes.
func (o *Object) Size() int { return len(o.Data) }

// Validate checks the object's internal consistency: the data must
// decode under the declared coding and the header metadata must match.
func (o *Object) Validate() error {
	if o.ID == "" {
		return errors.New("media: object has empty ID")
	}
	meta, err := Decode(o.Coding, o.Data)
	if err != nil {
		return fmt.Errorf("media: object %s: %w", o.ID, err)
	}
	if TimeBased(o.Coding) && meta.Duration != o.Meta.Duration {
		return fmt.Errorf("media: object %s: header duration %v != meta %v", o.ID, meta.Duration, o.Meta.Duration)
	}
	return nil
}

// Synthetic container format shared by all simulated codecs: a 4-byte
// magic, a fixed binary header, then payload. Real formats differ, but
// every consumer in this system goes through Encode/Decode, so only
// self-consistency matters.
const headerSize = 40

var magics = map[Coding][4]byte{
	CodingMPEG:  {'S', 'M', 'P', 'G'},
	CodingJPEG:  {'S', 'J', 'P', 'G'},
	CodingWAV:   {'S', 'W', 'A', 'V'},
	CodingMIDI:  {'S', 'M', 'I', 'D'},
	CodingAVI:   {'S', 'A', 'V', 'I'},
	CodingASCII: {'S', 'T', 'X', 'T'},
	CodingHTML:  {'S', 'H', 'T', 'M'},
}

func encodeHeader(c Coding, m Meta, payloadLen int) []byte {
	buf := make([]byte, headerSize, headerSize+payloadLen)
	magic := magics[c]
	copy(buf, magic[:])
	binary.BigEndian.PutUint64(buf[4:], uint64(m.Duration))
	binary.BigEndian.PutUint32(buf[12:], uint32(m.Width))
	binary.BigEndian.PutUint32(buf[16:], uint32(m.Height))
	binary.BigEndian.PutUint32(buf[20:], uint32(m.SampleRate))
	binary.BigEndian.PutUint32(buf[24:], uint32(m.Channels))
	binary.BigEndian.PutUint32(buf[28:], uint32(m.FrameRate))
	binary.BigEndian.PutUint32(buf[32:], uint32(m.BitRate))
	binary.BigEndian.PutUint32(buf[36:], uint32(payloadLen))
	return buf
}

// Decode parses the header of an encoded media object, verifying magic
// and length, and returns the embedded metadata.
func Decode(c Coding, data []byte) (Meta, error) {
	if len(data) < headerSize {
		return Meta{}, fmt.Errorf("%s data truncated: %d bytes", c, len(data))
	}
	magic, ok := magics[c]
	if !ok {
		return Meta{}, fmt.Errorf("unknown coding %q", c)
	}
	if [4]byte(data[:4]) != magic {
		return Meta{}, fmt.Errorf("bad %s magic %q", c, data[:4])
	}
	m := Meta{
		Duration:   time.Duration(binary.BigEndian.Uint64(data[4:])),
		Width:      int(binary.BigEndian.Uint32(data[12:])),
		Height:     int(binary.BigEndian.Uint32(data[16:])),
		SampleRate: int(binary.BigEndian.Uint32(data[20:])),
		Channels:   int(binary.BigEndian.Uint32(data[24:])),
		FrameRate:  int(binary.BigEndian.Uint32(data[28:])),
		BitRate:    int(binary.BigEndian.Uint32(data[32:])),
	}
	plen := int(binary.BigEndian.Uint32(data[36:]))
	if len(data)-headerSize != plen {
		return Meta{}, fmt.Errorf("%s payload length %d != header %d", c, len(data)-headerSize, plen)
	}
	return m, nil
}
