package media

import (
	"fmt"
	"strings"

	"mits/internal/sim"
)

// jpegBitsPerPixel approximates JPEG compression at typical quality:
// ~1.2 bits per pixel for photographic content.
const jpegBitsPerPixel = 1.2

// EncodeJPEG synthesizes a still image of the given dimensions. Size
// scales with pixel count at a realistic compression ratio.
func EncodeJPEG(width, height int, seed uint64) []byte {
	if width <= 0 || height <= 0 {
		width, height = 640, 480
	}
	n := int(float64(width*height) * jpegBitsPerPixel / 8)
	m := Meta{Width: width, Height: height}
	buf := encodeHeader(CodingJPEG, m, n)
	rng := sim.NewRNG(seed + 2)
	for i := 0; i < n; i++ {
		buf = append(buf, byte(rng.Uint64()))
	}
	return buf
}

// NewImage builds a complete image Object.
func NewImage(id, name string, width, height int, keywords ...string) (*Object, error) {
	data := EncodeJPEG(width, height, hashID(id))
	meta, err := Decode(CodingJPEG, data)
	if err != nil {
		return nil, err
	}
	return &Object{ID: id, Name: name, Coding: CodingJPEG, Meta: meta, Keywords: keywords, Data: data}, nil
}

// EncodeText wraps plain text in the synthetic container.
func EncodeText(text string) []byte {
	buf := encodeHeader(CodingASCII, Meta{}, len(text))
	return append(buf, text...)
}

// EncodeHTML wraps an HTML document in the synthetic container.
func EncodeHTML(doc string) []byte {
	buf := encodeHeader(CodingHTML, Meta{}, len(doc))
	return append(buf, doc...)
}

// TextContent extracts the text from an encoded ASCII or HTML object.
func TextContent(c Coding, data []byte) (string, error) {
	if c != CodingASCII && c != CodingHTML {
		return "", fmt.Errorf("media: %q is not a text coding", c)
	}
	if _, err := Decode(c, data); err != nil {
		return "", err
	}
	// Decode validated the header, but carry the guard locally so this
	// function is panic-free on any input.
	if len(data) < headerSize {
		return "", fmt.Errorf("media: %q object truncated at %d bytes", c, len(data))
	}
	return string(data[headerSize:]), nil
}

// NewText builds a plain-text Object.
func NewText(id, name, text string, keywords ...string) (*Object, error) {
	data := EncodeText(text)
	return &Object{ID: id, Name: name, Coding: CodingASCII, Keywords: keywords, Data: data}, nil
}

// NewHTML builds an HTML document Object, synthesizing a simple page
// around the body when it is not already markup.
func NewHTML(id, title, body string, keywords ...string) (*Object, error) {
	doc := body
	if !strings.Contains(body, "<html>") {
		doc = fmt.Sprintf("<html><head><title>%s</title></head><body>%s</body></html>", title, body)
	}
	data := EncodeHTML(doc)
	return &Object{ID: id, Name: title, Coding: CodingHTML, Keywords: keywords, Data: data}, nil
}

// GenerateLecture produces deterministic lecture-note text of roughly
// the requested length, for workload generation.
func GenerateLecture(topic string, approxLen int, seed uint64) string {
	words := []string{
		"the", "network", "cell", "switch", "bandwidth", "multimedia",
		"course", "student", "object", "class", "synchronization",
		"presentation", "interactive", "broadband", "protocol", "layer",
		"virtual", "channel", "quality", "service", "learning", "system",
	}
	rng := sim.NewRNG(seed + 3)
	var b strings.Builder
	fmt.Fprintf(&b, "Lecture notes: %s.\n\n", topic)
	for b.Len() < approxLen {
		n := 8 + rng.Intn(12)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[rng.Intn(len(words))])
		}
		b.WriteString(".\n")
	}
	return b.String()
}

// hashID derives a deterministic seed from an object id (FNV-1a).
func hashID(id string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}
