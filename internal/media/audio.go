package media

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// WAV defaults matching the thesis's storage figures (§5.2.2): "about
// 1 second of sound in 11KB of disk space, or one minute of sound in
// 1MB" — 11.025 kHz, 8-bit... the per-minute figure implies ≈17 KB/s,
// i.e. 16-bit mono at 8.82 kHz or 8-bit at 17 kHz. We keep the thesis's
// 11 kHz sample rate with 50% container/index overhead so one minute
// lands close to 1 MB as Table 5.1 reports (the two thesis figures are
// mutually inconsistent; we match the per-minute one).
const (
	DefaultWAVRate     = 11025 // Hz
	wavBytesPerSample  = 1
	wavOverheadPercent = 50 // container + index overhead to hit ~1MB/min
)

// EncodeWAV synthesizes a waveform-audio object of the given duration.
// The payload is a deterministic 440 Hz-ish tone; its size tracks the
// real format: sampleRate × bytes/sample × channels × seconds.
func EncodeWAV(d time.Duration, sampleRate, channels int) []byte {
	if sampleRate <= 0 {
		sampleRate = DefaultWAVRate
	}
	if channels <= 0 {
		channels = 1
	}
	samples := int(float64(sampleRate) * d.Seconds())
	n := samples * wavBytesPerSample * channels
	n += n * wavOverheadPercent / 100
	m := Meta{Duration: d, SampleRate: sampleRate, Channels: channels,
		BitRate: sampleRate * wavBytesPerSample * 8 * channels}
	buf := encodeHeader(CodingWAV, m, n)
	for i := 0; i < n; i++ {
		// A cheap periodic waveform; content is never inspected.
		buf = append(buf, byte(128+100*math.Sin(float64(i)*2*math.Pi*440/float64(sampleRate))))
	}
	return buf
}

// MIDI cost per minute (§5.2.2): "about 5KB of disk space ... about
// one-twentieth space that of the WAV file".
const midiBytesPerMinute = 5 * 1024

// midiEvent is one note event: delta-time (ms, uint16), status, note,
// velocity — 5 bytes.
const midiEventSize = 5

// EncodeMIDI synthesizes a MIDI object of the given duration with the
// thesis's storage density (≈5 KB per minute of music).
func EncodeMIDI(d time.Duration) []byte {
	events := int(d.Minutes() * midiBytesPerMinute / midiEventSize)
	if events < 1 && d > 0 {
		events = 1
	}
	m := Meta{Duration: d, BitRate: midiBytesPerMinute * 8 / 60}
	buf := encodeHeader(CodingMIDI, m, events*midiEventSize)
	var ev [midiEventSize]byte
	for i := 0; i < events; i++ {
		binary.BigEndian.PutUint16(ev[:], uint16(60000/max(events, 1)))
		ev[2] = 0x90                 // note on, channel 0
		ev[3] = byte(60 + (i*7)%24)  // walk a scale deterministically
		ev[4] = byte(64 + (i*13)%63) // velocity
		buf = append(buf, ev[:]...)
	}
	return buf
}

// MIDIEvents parses the event count from an encoded MIDI object.
func MIDIEvents(data []byte) (int, error) {
	if _, err := Decode(CodingMIDI, data); err != nil {
		return 0, err
	}
	n := len(data) - headerSize
	if n%midiEventSize != 0 {
		return 0, fmt.Errorf("MIDI payload %d not a whole number of events", n)
	}
	return n / midiEventSize, nil
}

// NewAudio builds a complete audio Object.
func NewAudio(id, name string, coding Coding, d time.Duration, keywords ...string) (*Object, error) {
	var data []byte
	switch coding {
	case CodingWAV:
		data = EncodeWAV(d, DefaultWAVRate, 1)
	case CodingMIDI:
		data = EncodeMIDI(d)
	default:
		return nil, fmt.Errorf("media: %q is not an audio coding", coding)
	}
	meta, err := Decode(coding, data)
	if err != nil {
		return nil, err
	}
	return &Object{ID: id, Name: name, Coding: coding, Meta: meta, Keywords: keywords, Data: data}, nil
}
