// Package atm is a discrete-event simulator of an ATM (Asynchronous
// Transfer Mode) network, the broadband substrate the MITS paper runs on
// (OCRInet, an R&D ATM network in the Ottawa region).
//
// The simulator models the pieces of ATM that the paper's claims depend
// on: fixed 53-byte cells, AAL5 segmentation and reassembly, virtual
// channel switching, per-service-category output queueing with strict
// priority, GCRA (leaky bucket) traffic policing and shaping, and
// connection admission control. It runs entirely on virtual time
// (internal/sim), so experiments are deterministic and fast.
package atm

import (
	"encoding/binary"
	"fmt"
)

// ATM constants fixed by the standard.
const (
	CellSize        = 53 // bytes on the wire
	CellHeaderSize  = 5
	CellPayloadSize = 48
	CellBits        = CellSize * 8
)

// PTI (payload type indicator) values used by AAL5.
const (
	// PTIUserData0 marks a user-data cell that does not end an AAL5 PDU.
	PTIUserData0 = 0
	// PTIUserDataEnd marks the final cell of an AAL5 PDU (AUU bit set).
	PTIUserDataEnd = 1
)

// VC identifies a virtual connection on one link hop. ATM splits this
// into an 8/12-bit VPI and a 16-bit VCI; the simulator keeps both fields
// so headers encode faithfully.
type VC struct {
	VPI uint16 // virtual path identifier (12 bits significant)
	VCI uint16 // virtual channel identifier
}

func (v VC) String() string { return fmt.Sprintf("%d/%d", v.VPI, v.VCI) }

// Cell is one 53-byte ATM cell. Cells are passed by value through the
// simulator; the payload array keeps them allocation-free on the fast
// path.
type Cell struct {
	VC      VC
	PTI     uint8 // payload type indicator (3 bits)
	CLP     uint8 // cell loss priority: 0 = high priority, 1 = droppable
	Payload [CellPayloadSize]byte

	// ConnID tags the cell with its end-to-end connection for metrics
	// and reassembly demultiplexing. It is simulator bookkeeping, not
	// part of the wire format.
	ConnID int
	// Seq is the cell's sequence number within its connection, used by
	// jitter measurements.
	Seq int64
	// PDU is the id of the AAL5 PDU this cell belongs to, so delivery
	// latency can be attributed even under loss. Simulator bookkeeping.
	PDU int64
}

// EndOfPDU reports whether this cell terminates an AAL5 PDU.
func (c *Cell) EndOfPDU() bool { return c.PTI&PTIUserDataEnd != 0 }

// MarshalHeader encodes the 5-byte UNI cell header. The HEC byte is a
// simple checksum of the first four bytes rather than the CRC-8 the
// hardware uses; the experiments never exercise header error correction,
// only header integrity checks in tests.
func (c *Cell) MarshalHeader() [CellHeaderSize]byte {
	var h [CellHeaderSize]byte
	// GFC(4) | VPI(8) | VCI(16) | PTI(3) | CLP(1) | HEC(8)
	h[0] = byte(c.VC.VPI >> 4)
	h[1] = byte(c.VC.VPI<<4) | byte(c.VC.VCI>>12)
	h[2] = byte(c.VC.VCI >> 4)
	h[3] = byte(c.VC.VCI<<4) | (c.PTI&0x7)<<1 | c.CLP&1
	h[4] = h[0] ^ h[1] ^ h[2] ^ h[3]
	return h
}

// UnmarshalHeader decodes a 5-byte header, validating the HEC byte.
func (c *Cell) UnmarshalHeader(h [CellHeaderSize]byte) error {
	if h[4] != h[0]^h[1]^h[2]^h[3] {
		return fmt.Errorf("atm: header HEC mismatch")
	}
	c.VC.VPI = uint16(h[0])<<4 | uint16(h[1])>>4
	c.VC.VCI = uint16(h[1]&0xf)<<12 | uint16(h[2])<<4 | uint16(h[3])>>4
	c.PTI = (h[3] >> 1) & 0x7
	c.CLP = h[3] & 1
	return nil
}

// aal5Trailer is the 8-byte AAL5 CPCS trailer: UU, CPI, 16-bit length,
// 32-bit CRC. It occupies the last 8 bytes of the final cell.
type aal5Trailer struct {
	UU     uint8
	CPI    uint8
	Length uint16
	CRC    uint32
}

// marshal and unmarshalTrailer take array pointers, not slices: the
// conversion at the call site is the bounds check, so a trailer can
// never be read from or written into a short buffer.
func (t aal5Trailer) marshal(dst *[trailerSize]byte) {
	dst[0] = t.UU
	dst[1] = t.CPI
	binary.BigEndian.PutUint16(dst[2:], t.Length)
	binary.BigEndian.PutUint32(dst[4:], t.CRC)
}

func unmarshalTrailer(src *[trailerSize]byte) aal5Trailer {
	return aal5Trailer{
		UU:     src[0],
		CPI:    src[1],
		Length: binary.BigEndian.Uint16(src[2:]),
		CRC:    binary.BigEndian.Uint32(src[4:]),
	}
}
