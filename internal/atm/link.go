package atm

import (
	"time"

	"mits/internal/obs"
	"mits/internal/sim"
)

// Process-wide cell counters, cached so the per-cell cost is one
// atomic add. Per-link breakdowns stay on the Link fields; the obs
// counters answer "is the fabric dropping anything at all" at a
// glance.
var (
	obsCellsSent      = obs.GetCounter("atm_cells_sent_total")
	obsCellsDropped   = obs.GetCounter("atm_cells_dropped_total")
	obsGCRAViolations = obs.GetCounter("atm_gcra_violations_total")
)

// node is anything a link can deliver cells to (switch or host).
type node interface {
	receive(c Cell, on *Link, now sim.Time)
	Name() string
}

// Link is a simplex transmission line between two nodes. It owns one
// output queue per service category and serves them in strict priority
// order (CBR first), which is how the simulated network gives
// real-time traffic bounded queueing delay.
type Link struct {
	net  *Network
	from node
	to   node

	rateBits float64       // line rate, bits/s
	prop     time.Duration // propagation delay
	serial   time.Duration // per-cell serialization time

	queues  [numCategories][]Cell
	queued  int
	limit   int // buffer capacity in cells across all queues
	busy    bool
	drops   int
	carried int64
}

// newLink wires a simplex link. limit is the output buffer in cells.
func newLink(net *Network, from, to node, rateBits float64, prop time.Duration, limit int) *Link {
	return &Link{
		net:      net,
		from:     from,
		to:       to,
		rateBits: rateBits,
		prop:     prop,
		serial:   time.Duration(float64(CellBits) / rateBits * float64(time.Second)),
		limit:    limit,
	}
}

// CellRate reports the link's raw capacity in cells per second.
func (l *Link) CellRate() float64 { return l.rateBits / CellBits }

// Drops reports cells lost to buffer overflow on this link.
func (l *Link) Drops() int { return l.drops }

// Carried reports cells successfully transmitted.
func (l *Link) Carried() int64 { return l.carried }

// enqueue accepts a cell for transmission, dropping it when its service
// category's buffer partition is full — per-class buffering is what
// keeps a best-effort flood from starving reserved traffic of buffer
// space. Drops prefer CLP=1 (tagged) cells already queued in the same
// category before rejecting the arrival, mirroring selective discard.
func (l *Link) enqueue(c Cell, cat ServiceCategory, now sim.Time) {
	if l.net.FIFO {
		// Ablation: one shared first-come queue, no class isolation.
		cat = CBR
	}
	if len(l.queues[cat]) >= l.limit {
		// Selective discard: evict a tagged (CLP=1) cell of the same
		// category to make room for an untagged arrival.
		if c.CLP == 0 {
			if i := l.findTagged(cat); i >= 0 {
				victim := l.queues[cat][i]
				l.queues[cat] = append(l.queues[cat][:i], l.queues[cat][i+1:]...)
				l.queued--
				l.drops++
				obsCellsDropped.Inc()
				l.net.noteDrop(victim.ConnID)
			}
		}
		if len(l.queues[cat]) >= l.limit {
			l.drops++
			obsCellsDropped.Inc()
			l.net.noteDrop(c.ConnID)
			return
		}
	}
	l.queues[cat] = append(l.queues[cat], c)
	l.queued++
	if !l.busy {
		l.busy = true
		l.transmitNext(now)
	}
}

// findTagged returns the index of the last CLP=1 cell in the category's
// queue, or -1.
func (l *Link) findTagged(cat ServiceCategory) int {
	q := l.queues[cat]
	for i := len(q) - 1; i >= 0; i-- {
		if q[i].CLP == 1 {
			return i
		}
	}
	return -1
}

// transmitNext pops the highest-priority queued cell and schedules its
// departure and far-end arrival.
func (l *Link) transmitNext(now sim.Time) {
	var c Cell
	found := false
	for cat := ServiceCategory(0); cat < numCategories; cat++ {
		q := l.queues[cat]
		if len(q) > 0 {
			c = q[0]
			copy(q, q[1:])
			l.queues[cat] = q[:len(q)-1]
			found = true
			break
		}
	}
	if !found {
		l.busy = false
		return
	}
	l.queued--
	done := now.Add(l.serial)
	arrive := done.Add(l.prop)
	l.net.clock.At(arrive, func(t sim.Time) {
		l.carried++
		obsCellsSent.Inc()
		l.to.receive(c, l, t)
	})
	l.net.clock.At(done, func(t sim.Time) {
		l.transmitNext(t)
	})
}
