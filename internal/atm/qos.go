package atm

import (
	"fmt"
	"time"
)

// ServiceCategory is an ATM Forum service category. Categories map to
// output-queue priorities: CBR is served first, UBR last, so guaranteed
// traffic sees bounded queueing delay regardless of best-effort load.
type ServiceCategory int

const (
	CBR    ServiceCategory = iota // constant bit rate (e.g. uncompressed audio)
	RtVBR                         // real-time variable bit rate (e.g. MPEG video)
	NrtVBR                        // non-real-time VBR (e.g. bulk media transfer)
	ABR                           // available bit rate
	UBR                           // unspecified bit rate (best effort)
	numCategories
)

var categoryNames = [...]string{"CBR", "rt-VBR", "nrt-VBR", "ABR", "UBR"}

func (c ServiceCategory) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("ServiceCategory(%d)", int(c))
	}
	return categoryNames[c]
}

// RealTime reports whether the category carries delay-sensitive traffic.
func (c ServiceCategory) RealTime() bool { return c == CBR || c == RtVBR }

// TrafficDescriptor declares a connection's traffic contract.
// Rates are in cells per second, as in ATM signalling.
type TrafficDescriptor struct {
	Category ServiceCategory
	PCR      float64       // peak cell rate (cells/s), required
	SCR      float64       // sustainable cell rate, VBR only
	MBS      int           // maximum burst size in cells, VBR only
	CDVT     time.Duration // cell delay variation tolerance for policing
}

// Validate checks the contract for internal consistency.
func (t TrafficDescriptor) Validate() error {
	if t.Category < 0 || t.Category >= numCategories {
		return fmt.Errorf("atm: unknown service category %d", int(t.Category))
	}
	if t.PCR <= 0 {
		return fmt.Errorf("atm: %v contract requires PCR > 0, got %v", t.Category, t.PCR)
	}
	switch t.Category {
	case RtVBR, NrtVBR:
		if t.SCR <= 0 || t.SCR > t.PCR {
			return fmt.Errorf("atm: VBR contract requires 0 < SCR ≤ PCR, got SCR=%v PCR=%v", t.SCR, t.PCR)
		}
		if t.MBS < 1 {
			return fmt.Errorf("atm: VBR contract requires MBS ≥ 1, got %d", t.MBS)
		}
	case ABR:
		// SCR carries the MCR floor; it may be zero but not above PCR.
		if t.SCR < 0 || t.SCR > t.PCR {
			return fmt.Errorf("atm: ABR contract requires 0 ≤ MCR ≤ PCR, got MCR=%v PCR=%v", t.SCR, t.PCR)
		}
	}
	return nil
}

// GuaranteedRate reports the cell rate the network must reserve for the
// contract: PCR for CBR, SCR for VBR, nothing for ABR/UBR. This is what
// connection admission control sums per link.
func (t TrafficDescriptor) GuaranteedRate() float64 {
	switch t.Category {
	case CBR:
		return t.PCR
	case RtVBR, NrtVBR:
		return t.SCR
	case ABR:
		return t.SCR // the MCR floor is reserved
	default:
		return 0
	}
}

// CBRContract builds a constant-bit-rate contract for a payload bandwidth
// given in bits per second, accounting for cell header + AAL5 overhead
// approximately (48 payload bytes per 53-byte cell).
func CBRContract(payloadBitsPerSec float64) TrafficDescriptor {
	return TrafficDescriptor{
		Category: CBR,
		PCR:      payloadBitsPerSec / (CellPayloadSize * 8),
		CDVT:     time.Millisecond,
	}
}

// VBRContract builds a real-time VBR contract with the given sustained
// and peak payload bandwidths (bits/s) and burst size in cells.
func VBRContract(sustainedBits, peakBits float64, mbs int) TrafficDescriptor {
	return TrafficDescriptor{
		Category: RtVBR,
		PCR:      peakBits / (CellPayloadSize * 8),
		SCR:      sustainedBits / (CellPayloadSize * 8),
		MBS:      mbs,
		CDVT:     time.Millisecond,
	}
}

// UBRContract builds a best-effort contract capped at the given peak
// payload bandwidth (bits/s).
func UBRContract(peakBits float64) TrafficDescriptor {
	return TrafficDescriptor{Category: UBR, PCR: peakBits / (CellPayloadSize * 8), CDVT: time.Millisecond}
}
