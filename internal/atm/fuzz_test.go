package atm

import (
	"bytes"
	"testing"
)

// FuzzAAL5Reassemble drives the reassembler two ways with the same
// input: as a hostile cell stream (arbitrary payloads, end-of-PDU on
// the last cell), which must never panic and only ever increment the
// error counter; and as a PDU through the real Segment path, which must
// reassemble to the original bytes.
func FuzzAAL5Reassemble(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello, broadband telelearning"))
	f.Add(bytes.Repeat([]byte{0xA5}, 3*CellPayloadSize))
	big := make([]byte, 200)
	for i := range big {
		big[i] = byte(i)
	}
	f.Add(big)
	f.Fuzz(func(t *testing.T, data []byte) {
		var hostile Reassembler
		for off := 0; off < len(data); off += CellPayloadSize {
			var c Cell
			n := copy(c.Payload[:], data[off:])
			if off+n >= len(data) {
				c.PTI = PTIUserDataEnd
			}
			hostile.Push(c)
		}

		pdu := data
		if len(pdu) > MaxPDUSize {
			pdu = pdu[:MaxPDUSize]
		}
		cells, err := Segment(VC{VPI: 1, VCI: 42}, 1, 0, pdu)
		if err != nil {
			t.Fatalf("Segment: %v", err)
		}
		var r Reassembler
		var out []byte
		done := false
		for _, c := range cells {
			if p, ok := r.Push(c); ok {
				out, done = p, true
			}
		}
		if !done {
			t.Fatal("segmented PDU never reassembled")
		}
		if !bytes.Equal(out, pdu) {
			t.Fatalf("round trip changed PDU: %d bytes in, %d out", len(pdu), len(out))
		}
		if r.Errors() != 0 {
			t.Fatalf("clean stream counted %d reassembly errors", r.Errors())
		}
	})
}
