package atm

import (
	"time"

	"mits/internal/sim"
)

// GCRA implements the Generic Cell Rate Algorithm (virtual scheduling
// form, ITU-T I.371) used both to police arriving traffic at the network
// edge and to shape outgoing traffic at hosts.
//
// A cell conforms when it does not arrive more than the tolerance τ
// earlier than its theoretical arrival time (TAT); conforming cells
// advance the TAT by the emission interval T = 1/rate.
type GCRA struct {
	increment time.Duration // T: per-cell emission interval
	tolerance time.Duration // τ: permitted earliness
	tat       sim.Time      // theoretical arrival time of next cell
}

// NewGCRA returns a policer for the given cell rate (cells/s) and
// tolerance. A non-positive rate yields a policer that rejects nothing
// (infinite rate), matching an unpoliced best-effort connection.
func NewGCRA(cellRate float64, tolerance time.Duration) *GCRA {
	var inc time.Duration
	if cellRate > 0 {
		inc = time.Duration(float64(time.Second) / cellRate)
	}
	return &GCRA{increment: inc, tolerance: tolerance}
}

// Conforms reports whether a cell arriving at instant now conforms to
// the contract, updating policer state when it does. Non-conforming
// cells leave the state untouched (they are dropped or tagged, not
// counted against the contract).
func (g *GCRA) Conforms(now sim.Time) bool {
	if g.increment == 0 {
		return true
	}
	if now < g.tat.Add(-g.tolerance) {
		return false // arrived too early: exceeds contracted rate
	}
	if now > g.tat {
		g.tat = now
	}
	g.tat = g.tat.Add(g.increment)
	return true
}

// NextConforming reports the earliest instant ≥ now at which a cell
// would conform. Shapers use this to space cell emissions exactly at the
// contracted rate.
func (g *GCRA) NextConforming(now sim.Time) sim.Time {
	if g.increment == 0 {
		return now
	}
	earliest := g.tat.Add(-g.tolerance)
	if earliest < now {
		return now
	}
	return earliest
}

// DualGCRA couples a PCR policer with an SCR/MBS policer as VBR
// contracts require: a cell conforms only when it conforms to both.
type DualGCRA struct {
	peak      *GCRA
	sustained *GCRA
}

// NewDualGCRA builds a dual leaky bucket from a VBR traffic descriptor.
// The sustained bucket's tolerance is the burst tolerance
// τs = (MBS−1)·(1/SCR − 1/PCR), the standard formula.
func NewDualGCRA(td TrafficDescriptor) *DualGCRA {
	var burstTol time.Duration
	if td.SCR > 0 && td.PCR > 0 && td.MBS > 1 {
		burstTol = time.Duration(float64(td.MBS-1) *
			(float64(time.Second)/td.SCR - float64(time.Second)/td.PCR))
	}
	return &DualGCRA{
		peak:      NewGCRA(td.PCR, td.CDVT),
		sustained: NewGCRA(td.SCR, burstTol+td.CDVT),
	}
}

// Conforms reports conformance against both buckets, updating them only
// when the cell conforms to both.
func (d *DualGCRA) Conforms(now sim.Time) bool {
	// Check without committing, then commit both: GCRA state must not
	// advance on a cell that the other bucket rejects.
	if d.peak.increment != 0 && now < d.peak.tat.Add(-d.peak.tolerance) {
		return false
	}
	if d.sustained.increment != 0 && now < d.sustained.tat.Add(-d.sustained.tolerance) {
		return false
	}
	d.peak.Conforms(now)
	d.sustained.Conforms(now)
	return true
}

// NextConforming reports the earliest instant a cell conforms to both
// buckets.
func (d *DualGCRA) NextConforming(now sim.Time) sim.Time {
	t := d.peak.NextConforming(now)
	if s := d.sustained.NextConforming(now); s > t {
		t = s
	}
	return t
}
