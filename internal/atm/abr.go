package atm

import (
	"time"

	"mits/internal/sim"
)

// ABR flow control (ATM Forum TM 4.0, simplified). An ABR source sends
// a resource-management (RM) cell every Nrm data cells carrying an
// explicit rate (ER). Switches on the path reduce the ER when their
// ABR queue is congested; the destination turns the RM cell around and
// the source adopts the marked rate as its allowed cell rate (ACR),
// bounded by [MCR, PCR].
//
// Simplification: the backward RM path is modelled as a delayed
// callback to the source after one extra path traversal time, rather
// than as cells on a reverse connection — the feedback latency is
// preserved, the reverse-direction cell accounting is not.

// RM-cell protocol parameters.
const (
	// Nrm is the data-cell interval between RM cells.
	Nrm = 32
	// abrRateDecrease is the multiplicative ER cut applied by a
	// congested switch.
	abrRateDecrease = 0.75
	// abrRateIncrease is the additive ACR increase (fraction of PCR)
	// granted when the path reports no congestion.
	abrRateIncrease = 0.05
	// abrCongestionFraction of the ABR queue limit that marks a switch
	// as congested.
	abrCongestionFraction = 0.25
)

// abrState tracks one ABR connection's rate control at the source.
type abrState struct {
	acr       float64 // allowed cell rate (cells/s)
	mcr       float64 // minimum cell rate floor
	pcr       float64 // ceiling
	dataCells int     // cells since the last RM cell
	rtt       time.Duration
	// RateChanges counts ACR adjustments, for tests/experiments.
	RateChanges int
}

// initABR prepares rate control for an ABR connection: sources start
// at a conservative initial cell rate.
func (c *Connection) initABR() {
	if c.td.Category != ABR {
		return
	}
	mcr := c.td.SCR // reuse SCR field as MCR for ABR contracts
	if mcr <= 0 {
		mcr = c.td.PCR / 100
	}
	c.abr = &abrState{
		acr: c.td.PCR / 10, // ICR: one tenth of peak
		mcr: mcr,
		pcr: c.td.PCR,
		rtt: c.pathRTT(),
	}
	c.shaper = NewGCRA(c.abr.acr, c.td.CDVT)
}

// pathRTT estimates the forward+backward traversal time of the path.
func (c *Connection) pathRTT() time.Duration {
	var d time.Duration
	for _, l := range c.path {
		d += l.prop + l.serial
	}
	return 2 * (d + time.Duration(len(c.path))*switchLatency)
}

// maybeSendRM injects an RM probe every Nrm data cells. The probe
// samples ABR congestion on every link of the path *now* and schedules
// the source's rate adoption one RTT later.
func (c *Connection) maybeSendRM(now sim.Time) {
	st := c.abr
	st.dataCells++
	if st.dataCells < Nrm {
		return
	}
	st.dataCells = 0
	congested := false
	for _, l := range c.path {
		// A switch marks congestion when its ABR queue runs deep.
		if float64(len(l.queues[ABR])) > abrCongestionFraction*float64(l.limit) {
			congested = true
		}
	}
	// AIMD on the current allowed rate: multiplicative decrease under
	// congestion, additive increase otherwise.
	var er float64
	if congested {
		er = st.acr * abrRateDecrease
	} else {
		er = st.acr + abrRateIncrease*st.pcr
	}
	if er > st.pcr {
		er = st.pcr
	}
	if er < st.mcr {
		er = st.mcr
	}
	newRate := er
	c.net.clock.After(st.rtt, func(sim.Time) {
		if c.closed {
			return
		}
		if newRate != st.acr {
			st.acr = newRate
			st.RateChanges++
			c.shaper = NewGCRA(st.acr, c.td.CDVT)
		}
	})
}

// ACR reports an ABR connection's current allowed cell rate in cells/s
// (0 for non-ABR connections).
func (c *Connection) ACR() float64 {
	if c.abr == nil {
		return 0
	}
	return c.abr.acr
}

// RateChanges reports how many times ABR feedback adjusted the rate.
func (c *Connection) RateChanges() int {
	if c.abr == nil {
		return 0
	}
	return c.abr.RateChanges
}

// ABRContract builds an available-bit-rate contract: PCR is the ceiling
// the source may reach, MCR (carried in the SCR field) the guaranteed
// floor that admission control reserves.
func ABRContract(peakBits, minBits float64) TrafficDescriptor {
	return TrafficDescriptor{
		Category: ABR,
		PCR:      peakBits / (CellPayloadSize * 8),
		SCR:      minBits / (CellPayloadSize * 8),
		CDVT:     time.Millisecond,
	}
}
