package atm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCellHeaderRoundTrip(t *testing.T) {
	c := Cell{VC: VC{VPI: 123, VCI: 45678}, PTI: PTIUserDataEnd, CLP: 1}
	h := c.MarshalHeader()
	var d Cell
	if err := d.UnmarshalHeader(h); err != nil {
		t.Fatalf("UnmarshalHeader: %v", err)
	}
	if d.VC != c.VC || d.PTI != c.PTI || d.CLP != c.CLP {
		t.Errorf("round trip got %+v, want %+v", d, c)
	}
}

func TestCellHeaderRoundTripProperty(t *testing.T) {
	f := func(vpi, vci uint16, pti, clp uint8) bool {
		c := Cell{VC: VC{VPI: vpi & 0xfff, VCI: vci}, PTI: pti & 0x7, CLP: clp & 1}
		h := c.MarshalHeader()
		var d Cell
		if err := d.UnmarshalHeader(h); err != nil {
			return false
		}
		return d.VC == c.VC && d.PTI == c.PTI && d.CLP == c.CLP
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellHeaderHECDetectsCorruption(t *testing.T) {
	c := Cell{VC: VC{VPI: 1, VCI: 100}}
	h := c.MarshalHeader()
	h[2] ^= 0x40
	var d Cell
	if err := d.UnmarshalHeader(h); err == nil {
		t.Error("corrupted header accepted")
	}
}

func TestVCString(t *testing.T) {
	if got := (VC{VPI: 2, VCI: 33}).String(); got != "2/33" {
		t.Errorf("VC.String()=%q, want 2/33", got)
	}
}

func TestSegmentReassembleRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 39, 40, 41, 48, 100, 1000, 65535} {
		pdu := make([]byte, n)
		for i := range pdu {
			pdu[i] = byte(i * 7)
		}
		cells, err := Segment(VC{VCI: 42}, 1, 0, pdu)
		if err != nil {
			t.Fatalf("Segment(%d bytes): %v", n, err)
		}
		if want := CellsForPDU(n); len(cells) != want {
			t.Errorf("%d bytes → %d cells, want %d", n, len(cells), want)
		}
		for i, c := range cells {
			if got := c.EndOfPDU(); got != (i == len(cells)-1) {
				t.Errorf("cell %d/%d EndOfPDU=%v", i, len(cells), got)
			}
			if c.Seq != int64(i) {
				t.Errorf("cell %d Seq=%d", i, c.Seq)
			}
		}
		var r Reassembler
		var got []byte
		done := false
		for _, c := range cells {
			if p, ok := r.Push(c); ok {
				got, done = p, true
			}
		}
		if !done {
			t.Fatalf("%d bytes: PDU never completed", n)
		}
		if !bytes.Equal(got, pdu) {
			t.Errorf("%d bytes: reassembled PDU differs", n)
		}
	}
}

func TestSegmentRejectsOversizePDU(t *testing.T) {
	if _, err := Segment(VC{}, 0, 0, make([]byte, MaxPDUSize+1)); err == nil {
		t.Error("oversize PDU accepted")
	}
}

func TestReassemblerDetectsLostCell(t *testing.T) {
	pdu := make([]byte, 500)
	for i := range pdu {
		pdu[i] = byte(i)
	}
	cells, _ := Segment(VC{}, 0, 0, pdu)
	var r Reassembler
	for i, c := range cells {
		if i == 2 {
			continue // drop one middle cell
		}
		if _, ok := r.Push(c); ok {
			t.Fatal("corrupted PDU reassembled successfully")
		}
	}
	if r.Errors() != 1 {
		t.Errorf("Errors=%d, want 1", r.Errors())
	}
}

func TestReassemblerDetectsCorruptPayload(t *testing.T) {
	cells, _ := Segment(VC{}, 0, 0, []byte("hello telelearning world, this is a test PDU"))
	cells[0].Payload[3] ^= 0xff
	var r Reassembler
	ok := false
	for _, c := range cells {
		if _, done := r.Push(c); done {
			ok = true
		}
	}
	if ok {
		t.Error("corrupt payload passed CRC")
	}
	if r.Errors() != 1 {
		t.Errorf("Errors=%d, want 1", r.Errors())
	}
}

func TestReassemblerRecoversAfterError(t *testing.T) {
	bad, _ := Segment(VC{}, 0, 0, bytes.Repeat([]byte("first pdu that will be truncated "), 8))
	good, _ := Segment(VC{}, 0, int64(len(bad)), []byte("second pdu arrives intact"))
	var r Reassembler
	for _, c := range bad[:len(bad)-1] {
		r.Push(c)
	}
	// End cell of the bad PDU lost; next PDU's cells arrive. The merged
	// buffer fails CRC at good's end cell, then the stream recovers.
	for _, c := range good {
		r.Push(c)
	}
	if r.Errors() != 1 {
		t.Errorf("Errors=%d, want 1", r.Errors())
	}
	again, _ := Segment(VC{}, 0, 99, []byte("third pdu arrives intact too"))
	var got []byte
	for _, c := range again {
		if p, ok := r.Push(c); ok {
			got = p
		}
	}
	if string(got) != "third pdu arrives intact too" {
		t.Errorf("post-error PDU = %q", got)
	}
}

func TestSegmentReassembleProperty(t *testing.T) {
	f := func(pdu []byte) bool {
		if len(pdu) > MaxPDUSize {
			pdu = pdu[:MaxPDUSize]
		}
		cells, err := Segment(VC{VCI: 7}, 0, 0, pdu)
		if err != nil {
			return false
		}
		var r Reassembler
		for i, c := range cells {
			p, ok := r.Push(c)
			if ok != (i == len(cells)-1) {
				return false
			}
			if ok && !bytes.Equal(p, pdu) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellsForPDU(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 40: 1, 41: 2, 88: 2, 89: 3}
	for n, want := range cases {
		if got := CellsForPDU(n); got != want {
			t.Errorf("CellsForPDU(%d)=%d, want %d", n, got, want)
		}
	}
}
