package atm

import (
	"testing"
	"time"

	"mits/internal/sim"
)

func TestGCRAAcceptsContractedRate(t *testing.T) {
	g := NewGCRA(1000, 0) // 1000 cells/s → 1ms spacing
	now := sim.Zero
	for i := 0; i < 100; i++ {
		if !g.Conforms(now) {
			t.Fatalf("cell %d at contracted spacing rejected", i)
		}
		now = now.Add(time.Millisecond)
	}
}

func TestGCRARejectsBurstBeyondTolerance(t *testing.T) {
	g := NewGCRA(1000, 0)
	if !g.Conforms(sim.Zero) {
		t.Fatal("first cell rejected")
	}
	if g.Conforms(sim.Zero.Add(10 * time.Microsecond)) {
		t.Error("back-to-back cell conformed with zero tolerance")
	}
	if !g.Conforms(sim.Zero.Add(time.Millisecond)) {
		t.Error("properly spaced cell rejected after violation")
	}
}

func TestGCRAToleranceAdmitsJitter(t *testing.T) {
	g := NewGCRA(1000, 200*time.Microsecond)
	now := sim.Zero
	// Cells arriving 100µs early each time stay within τ=200µs.
	for i := 0; i < 3; i++ {
		if !g.Conforms(now) {
			t.Fatalf("jittered cell %d rejected", i)
		}
		now = now.Add(900 * time.Microsecond)
	}
	// But sustained early arrival accumulates and eventually violates.
	g2 := NewGCRA(1000, 200*time.Microsecond)
	now = sim.Zero
	violations := 0
	for i := 0; i < 50; i++ {
		if !g2.Conforms(now) {
			violations++
		}
		now = now.Add(800 * time.Microsecond) // 25% over rate
	}
	if violations == 0 {
		t.Error("sustained 25% overrate never violated")
	}
}

func TestGCRAInfiniteRate(t *testing.T) {
	g := NewGCRA(0, 0)
	for i := 0; i < 10; i++ {
		if !g.Conforms(sim.Zero) {
			t.Fatal("unpoliced GCRA rejected a cell")
		}
	}
	if g.NextConforming(sim.Time(5)) != sim.Time(5) {
		t.Error("unpoliced NextConforming should be now")
	}
}

func TestGCRANextConforming(t *testing.T) {
	g := NewGCRA(1000, 0)
	g.Conforms(sim.Zero)
	next := g.NextConforming(sim.Zero)
	if next != sim.Zero.Add(time.Millisecond) {
		t.Errorf("NextConforming=%v, want 1ms", next)
	}
	if !g.Conforms(next) {
		t.Error("cell at NextConforming instant rejected")
	}
}

// Property: emitting every cell exactly at NextConforming always conforms
// and never exceeds the contracted long-run rate.
func TestGCRAShapingProperty(t *testing.T) {
	g := NewGCRA(4000, 500*time.Microsecond)
	now := sim.Zero
	const cells = 1000
	for i := 0; i < cells; i++ {
		now = g.NextConforming(now)
		if !g.Conforms(now) {
			t.Fatalf("cell %d at NextConforming rejected", i)
		}
	}
	elapsed := now.Duration()
	rate := float64(cells-1) / elapsed.Seconds()
	if rate > 4000*1.01 {
		t.Errorf("shaped rate %.0f cells/s exceeds contract 4000", rate)
	}
}

func TestDualGCRAAllowsBurstWithinMBS(t *testing.T) {
	td := TrafficDescriptor{Category: RtVBR, PCR: 10000, SCR: 1000, MBS: 10, CDVT: 0}
	d := NewDualGCRA(td)
	now := sim.Zero
	// A burst of MBS cells at peak rate must conform.
	for i := 0; i < td.MBS; i++ {
		if !d.Conforms(now) {
			t.Fatalf("burst cell %d rejected within MBS", i)
		}
		now = now.Add(100 * time.Microsecond) // peak spacing
	}
	// Continuing at peak rate beyond MBS must violate the SCR bucket.
	violated := false
	for i := 0; i < 20; i++ {
		if !d.Conforms(now) {
			violated = true
			break
		}
		now = now.Add(100 * time.Microsecond)
	}
	if !violated {
		t.Error("peak-rate traffic beyond MBS never violated SCR bucket")
	}
}

func TestDualGCRASustainedRateConforms(t *testing.T) {
	td := TrafficDescriptor{Category: RtVBR, PCR: 10000, SCR: 1000, MBS: 10, CDVT: 0}
	d := NewDualGCRA(td)
	now := sim.Zero
	for i := 0; i < 100; i++ {
		if !d.Conforms(now) {
			t.Fatalf("sustained-rate cell %d rejected", i)
		}
		now = now.Add(time.Millisecond) // exactly SCR spacing
	}
}

func TestDualGCRARejectionLeavesStateClean(t *testing.T) {
	td := TrafficDescriptor{Category: RtVBR, PCR: 1000, SCR: 1000, MBS: 1, CDVT: 0}
	d := NewDualGCRA(td)
	if !d.Conforms(sim.Zero) {
		t.Fatal("first cell rejected")
	}
	// Immediate second cell violates; state must not advance.
	if d.Conforms(sim.Zero) {
		t.Fatal("immediate cell conformed")
	}
	if !d.Conforms(sim.Zero.Add(time.Millisecond)) {
		t.Error("conforming cell rejected after a violation — state advanced on reject")
	}
}

func TestTrafficDescriptorValidate(t *testing.T) {
	good := []TrafficDescriptor{
		{Category: CBR, PCR: 100},
		{Category: RtVBR, PCR: 100, SCR: 50, MBS: 5},
		{Category: UBR, PCR: 1},
		CBRContract(1e6),
		VBRContract(1e6, 4e6, 100),
		UBRContract(64e3),
	}
	for i, td := range good {
		if err := td.Validate(); err != nil {
			t.Errorf("good contract %d rejected: %v", i, err)
		}
	}
	bad := []TrafficDescriptor{
		{Category: CBR, PCR: 0},
		{Category: RtVBR, PCR: 100, SCR: 0, MBS: 5},
		{Category: RtVBR, PCR: 100, SCR: 200, MBS: 5},
		{Category: NrtVBR, PCR: 100, SCR: 50, MBS: 0},
		{Category: ServiceCategory(99), PCR: 100},
	}
	for i, td := range bad {
		if err := td.Validate(); err == nil {
			t.Errorf("bad contract %d accepted", i)
		}
	}
}

func TestGuaranteedRate(t *testing.T) {
	if got := (TrafficDescriptor{Category: CBR, PCR: 100}).GuaranteedRate(); got != 100 {
		t.Errorf("CBR guaranteed=%v, want PCR", got)
	}
	if got := (TrafficDescriptor{Category: RtVBR, PCR: 100, SCR: 40, MBS: 2}).GuaranteedRate(); got != 40 {
		t.Errorf("VBR guaranteed=%v, want SCR", got)
	}
	if got := (TrafficDescriptor{Category: UBR, PCR: 100}).GuaranteedRate(); got != 0 {
		t.Errorf("UBR guaranteed=%v, want 0", got)
	}
}

func TestServiceCategoryString(t *testing.T) {
	if CBR.String() != "CBR" || UBR.String() != "UBR" {
		t.Error("category names wrong")
	}
	if !CBR.RealTime() || !RtVBR.RealTime() || UBR.RealTime() {
		t.Error("RealTime classification wrong")
	}
}
