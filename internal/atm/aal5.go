package atm

import (
	"fmt"
	"hash/crc32"
)

// MaxPDUSize is the largest AAL5 CPCS-PDU payload (the standard limit).
const MaxPDUSize = 65535

const trailerSize = 8

// Segment splits a PDU into ATM cells per AAL5: the payload is padded so
// that payload+8-byte trailer fills a whole number of 48-byte cells, and
// the final cell carries the trailer and the end-of-PDU PTI mark.
func Segment(vc VC, connID int, seqStart int64, pdu []byte) ([]Cell, error) {
	if len(pdu) > MaxPDUSize {
		return nil, fmt.Errorf("atm: PDU of %d bytes exceeds AAL5 limit %d", len(pdu), MaxPDUSize)
	}
	total := len(pdu) + trailerSize
	ncells := (total + CellPayloadSize - 1) / CellPayloadSize
	if ncells == 0 {
		ncells = 1
	}
	buf := make([]byte, ncells*CellPayloadSize)
	copy(buf, pdu)
	tr := aal5Trailer{
		Length: uint16(len(pdu)),
		CRC:    crc32.ChecksumIEEE(buf[:len(buf)-trailerSize]),
	}
	// The CRC in real AAL5 covers payload+pad+first 4 trailer bytes; the
	// simulator checksums payload+pad, which detects the same corruption
	// classes the experiments inject.
	tr.marshal((*[trailerSize]byte)(buf[len(buf)-trailerSize:]))

	cells := make([]Cell, ncells)
	for i := range cells {
		c := &cells[i]
		c.VC = vc
		c.ConnID = connID
		c.Seq = seqStart + int64(i)
		copy(c.Payload[:], buf[i*CellPayloadSize:])
		if i == ncells-1 {
			c.PTI = PTIUserDataEnd
		}
	}
	return cells, nil
}

// CellsForPDU reports how many cells AAL5 needs for a PDU of n bytes.
func CellsForPDU(n int) int {
	total := n + trailerSize
	ncells := (total + CellPayloadSize - 1) / CellPayloadSize
	if ncells == 0 {
		ncells = 1
	}
	return ncells
}

// Reassembler rebuilds AAL5 PDUs from an in-order cell stream of a single
// virtual connection. Cell loss is detected by the CRC/length check when
// the end-of-PDU cell arrives.
type Reassembler struct {
	buf    []byte
	errors int
	pdus   int
}

// Push adds the next cell. When the cell completes a PDU, Push returns
// the reassembled payload and true; corrupted or truncated PDUs are
// dropped, counted in Errors, and return (nil, false).
func (r *Reassembler) Push(c Cell) ([]byte, bool) {
	r.buf = append(r.buf, c.Payload[:]...)
	if !c.EndOfPDU() {
		return nil, false
	}
	defer func() { r.buf = r.buf[:0] }()
	if len(r.buf) < trailerSize {
		r.errors++
		return nil, false
	}
	tr := unmarshalTrailer((*[trailerSize]byte)(r.buf[len(r.buf)-trailerSize:]))
	if int(tr.Length) > len(r.buf)-trailerSize {
		r.errors++
		return nil, false
	}
	if crc32.ChecksumIEEE(r.buf[:len(r.buf)-trailerSize]) != tr.CRC {
		r.errors++
		return nil, false
	}
	pdu := make([]byte, tr.Length)
	copy(pdu, r.buf)
	r.pdus++
	return pdu, true
}

// Errors reports how many PDUs failed reassembly (cell loss/corruption).
func (r *Reassembler) Errors() int { return r.errors }

// PDUs reports how many PDUs reassembled successfully.
func (r *Reassembler) PDUs() int { return r.pdus }
