package atm

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mits/internal/sim"
)

// testNet builds: hostA — sw1 — sw2 — hostB with 155 Mb/s links (OC-3,
// the classic ATM rate) and 1ms propagation each.
func testNet(t *testing.T) (*Network, *Host, *Host) {
	t.Helper()
	n := New()
	a := n.AddHost("hostA")
	b := n.AddHost("hostB")
	s1 := n.AddSwitch("sw1")
	s2 := n.AddSwitch("sw2")
	n.Connect(a, s1, 155e6, time.Millisecond)
	n.Connect(s1, s2, 155e6, time.Millisecond)
	n.Connect(s2, b, 155e6, time.Millisecond)
	return n, a, b
}

func TestEndToEndPDUDelivery(t *testing.T) {
	n, a, b := testNet(t)
	var got []byte
	conn, err := n.Open(a, b, CBRContract(10e6), OpenOptions{
		Deliver: func(pdu []byte, sent, now sim.Time) { got = pdu },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	msg := bytes.Repeat([]byte("courseware!"), 100)
	if err := conn.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Clock().Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("delivered %d bytes, want %d intact", len(got), len(msg))
	}
	m := conn.Metrics
	if m.PDUsSent != 1 || m.PDUsDelivered != 1 || m.PDUErrors != 0 {
		t.Errorf("metrics %+v", m)
	}
	if m.CellsSent != int64(CellsForPDU(len(msg))) {
		t.Errorf("CellsSent=%d, want %d", m.CellsSent, CellsForPDU(len(msg)))
	}
	if m.Delay.N() != 1 || m.Delay.Mean() <= float64(3*time.Millisecond) {
		t.Errorf("delay %v should exceed 3ms of propagation", time.Duration(m.Delay.Mean()))
	}
}

func TestManyPDUsInOrder(t *testing.T) {
	n, a, b := testNet(t)
	var seq []byte
	conn, err := n.Open(a, b, CBRContract(50e6), OpenOptions{
		Deliver: func(pdu []byte, _, _ sim.Time) { seq = append(seq, pdu[0]) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pdu := make([]byte, 200)
		pdu[0] = byte(i)
		if err := conn.Send(pdu); err != nil {
			t.Fatal(err)
		}
	}
	n.Clock().Run()
	if len(seq) != 50 {
		t.Fatalf("delivered %d PDUs, want 50", len(seq))
	}
	for i, v := range seq {
		if v != byte(i) {
			t.Fatalf("PDU %d out of order (got first byte %d)", i, v)
		}
	}
}

func TestAdmissionControl(t *testing.T) {
	n, a, b := testNet(t)
	// 155 Mb/s ≈ 365566 cells/s. Reserve most of it.
	c1, err := n.Open(a, b, TrafficDescriptor{Category: CBR, PCR: 300000, CDVT: time.Millisecond}, OpenOptions{})
	if err != nil {
		t.Fatalf("first connection refused: %v", err)
	}
	_, err = n.Open(a, b, TrafficDescriptor{Category: CBR, PCR: 100000, CDVT: time.Millisecond}, OpenOptions{})
	if !errors.Is(err, ErrAdmissionDenied) {
		t.Fatalf("over-committing connection admitted (err=%v)", err)
	}
	// Best-effort UBR reserves nothing and is always admitted.
	if _, err := n.Open(a, b, UBRContract(155e6), OpenOptions{}); err != nil {
		t.Errorf("UBR connection refused: %v", err)
	}
	// Closing releases capacity.
	c1.Close()
	if _, err := n.Open(a, b, TrafficDescriptor{Category: CBR, PCR: 100000, CDVT: time.Millisecond}, OpenOptions{}); err != nil {
		t.Errorf("connection refused after capacity released: %v", err)
	}
}

func TestNoRoute(t *testing.T) {
	n := New()
	a := n.AddHost("a")
	b := n.AddHost("b")
	if _, err := n.Open(a, b, CBRContract(1e6), OpenOptions{}); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err=%v, want ErrNoRoute", err)
	}
	if _, err := n.Open(a, a, CBRContract(1e6), OpenOptions{}); err == nil {
		t.Error("self-connection accepted")
	}
}

func TestRouteDoesNotTransitHosts(t *testing.T) {
	// a — c — b where c is a HOST must not route; hosts don't forward.
	n := New()
	a := n.AddHost("a")
	b := n.AddHost("b")
	c := n.AddHost("c")
	n.Connect(a, c, 155e6, time.Millisecond)
	n.Connect(c, b, 155e6, time.Millisecond)
	if _, err := n.Open(a, b, CBRContract(1e6), OpenOptions{}); !errors.Is(err, ErrNoRoute) {
		t.Errorf("routed through a host: err=%v", err)
	}
}

func TestMultiHopRouting(t *testing.T) {
	n := New()
	a := n.AddHost("a")
	b := n.AddHost("b")
	var prev node = a
	for i := 0; i < 5; i++ {
		s := n.AddSwitch(string(rune('A' + i)))
		n.Connect(prev, s, 155e6, 100*time.Microsecond)
		prev = s
	}
	n.Connect(prev, b, 155e6, 100*time.Microsecond)
	delivered := 0
	conn, err := n.Open(a, b, CBRContract(10e6), OpenOptions{
		Deliver: func([]byte, sim.Time, sim.Time) { delivered++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.Send(make([]byte, 1000))
	n.Clock().Run()
	if delivered != 1 {
		t.Fatalf("delivered=%d over 5-switch path", delivered)
	}
}

func TestDuplicateNodeNamePanics(t *testing.T) {
	n := New()
	n.AddHost("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	n.AddSwitch("x")
}

func TestSendOnClosedConnection(t *testing.T) {
	n, a, b := testNet(t)
	conn, _ := n.Open(a, b, CBRContract(1e6), OpenOptions{})
	conn.Close()
	conn.Close() // idempotent
	if err := conn.Send([]byte("x")); err == nil {
		t.Error("Send on closed connection succeeded")
	}
}

// runVideoFlow builds the shared-bottleneck topology and plays a paced
// 5 Mb/s CBR stream from a to b, optionally with an unshaped UBR flood
// from c to d crossing the same bottleneck. It returns the two
// connections after the simulation drains.
func runVideoFlow(t *testing.T, withFlood bool) (video, flood *Connection) {
	t.Helper()
	n := New()
	n.BufferCells = 128
	a := n.AddHost("a")
	b := n.AddHost("b")
	c := n.AddHost("c")
	d := n.AddHost("d")
	s1 := n.AddSwitch("s1")
	s2 := n.AddSwitch("s2")
	n.Connect(a, s1, 155e6, 100*time.Microsecond)
	n.Connect(c, s1, 155e6, 100*time.Microsecond)
	n.Connect(s1, s2, 25e6, 100*time.Microsecond) // bottleneck
	n.Connect(s2, b, 155e6, 100*time.Microsecond)
	n.Connect(s2, d, 155e6, 100*time.Microsecond)

	var err error
	video, err = n.Open(a, b, CBRContract(5e6), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if withFlood {
		flood, err = n.Open(c, d, UBRContract(150e6), OpenOptions{Unshaped: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			flood.Send(make([]byte, 4000))
		}
	}
	// The video source generates a 1000-byte PDU every 2ms (4 Mb/s
	// payload under a 5 Mb/s contract), like a paced MPEG stream.
	for i := 0; i < 200; i++ {
		n.Clock().At(sim.Time(i)*sim.Time(2*time.Millisecond), func(sim.Time) {
			video.Send(make([]byte, 1000))
		})
	}
	n.Clock().Run()
	return video, flood
}

func TestCongestionDropsBestEffortNotCBR(t *testing.T) {
	// The mechanism behind the paper's broadband QoS claim (§3.3):
	// a CBR flow within contract is isolated from a UBR flood sharing
	// its bottleneck — zero loss, and delay unchanged vs an idle net.
	alone, _ := runVideoFlow(t, false)
	video, flood := runVideoFlow(t, true)

	if video.Metrics.CellsDropped != 0 {
		t.Errorf("CBR flow lost %d cells under congestion", video.Metrics.CellsDropped)
	}
	if video.Metrics.PDUsDelivered != 200 {
		t.Errorf("CBR delivered %d/200 PDUs", video.Metrics.PDUsDelivered)
	}
	if flood.Metrics.CellsDropped == 0 {
		t.Error("UBR flood saw no drops at a 6× oversubscribed bottleneck")
	}
	idle := alone.Metrics.Delay.Percentile(99)
	congested := video.Metrics.Delay.Percentile(99)
	if congested > idle*1.2 {
		t.Errorf("CBR p99 under congestion %v vs idle %v — priority isolation failed",
			time.Duration(congested), time.Duration(idle))
	}
}

func TestEdgePolicingDropsViolatingRealTime(t *testing.T) {
	n, a, b := testNet(t)
	n.Policing = true
	// Contract 1 Mb/s but blast unshaped at access-link speed.
	conn, err := n.Open(a, b, CBRContract(1e6), OpenOptions{Unshaped: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		conn.Send(make([]byte, 4000))
	}
	n.Clock().Run()
	sw := n.nodes["sw1"].(*Switch)
	if sw.Policed() == 0 {
		t.Error("edge policer saw no violations from an unshaped 100× overrate source")
	}
	if conn.Metrics.CellsDropped == 0 {
		t.Error("no cells dropped despite policing real-time traffic")
	}
}

func TestShapedTrafficPassesPolicing(t *testing.T) {
	n, a, b := testNet(t)
	n.Policing = true
	conn, err := n.Open(a, b, CBRContract(2e6), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		conn.Send(make([]byte, 2000))
	}
	n.Clock().Run()
	if conn.Metrics.CellsDropped != 0 {
		t.Errorf("shaped conformant traffic lost %d cells to policing", conn.Metrics.CellsDropped)
	}
	if conn.Metrics.PDUsDelivered != 50 {
		t.Errorf("delivered %d/50", conn.Metrics.PDUsDelivered)
	}
}

func TestShapingPacesAtContractRate(t *testing.T) {
	n, a, b := testNet(t)
	conn, err := n.Open(a, b, CBRContract(1e6), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 1 Mb/s payload ⇒ 125 kB/s ⇒ 100 kB takes ≈0.8s to emit.
	var last sim.Time
	conn2, _ := n.Open(a, b, CBRContract(1e6), OpenOptions{})
	_ = conn2
	done := func(pdu []byte, sent, now sim.Time) { last = now }
	conn.deliver = done
	for i := 0; i < 10; i++ {
		conn.Send(make([]byte, 10000))
	}
	n.Clock().Run()
	if last < sim.Time(700*time.Millisecond) {
		t.Errorf("100kB at 1Mb/s finished at %v, want ≥700ms (shaper not pacing)", last)
	}
}

func TestLinkAccounting(t *testing.T) {
	n, a, b := testNet(t)
	conn, _ := n.Open(a, b, CBRContract(10e6), OpenOptions{})
	conn.Send(make([]byte, 480))
	n.Clock().Run()
	access := n.Links(a)[0]
	if access.Carried() != int64(CellsForPDU(480)) {
		t.Errorf("access link carried %d cells, want %d", access.Carried(), CellsForPDU(480))
	}
	if access.Drops() != 0 {
		t.Errorf("unexpected drops: %d", access.Drops())
	}
}

func TestFIFOAblationRemovesIsolation(t *testing.T) {
	// With per-class queueing the paced CBR flow is isolated from the
	// flood (see TestCongestionDropsBestEffortNotCBR). With the FIFO
	// ablation the same flood steals its buffer and delays its cells.
	runWith := func(fifo bool) *Connection {
		n := New()
		n.FIFO = fifo
		n.BufferCells = 128
		a := n.AddHost("a")
		b := n.AddHost("b")
		c := n.AddHost("c")
		d := n.AddHost("d")
		s1 := n.AddSwitch("s1")
		s2 := n.AddSwitch("s2")
		n.Connect(a, s1, 155e6, 100*time.Microsecond)
		n.Connect(c, s1, 155e6, 100*time.Microsecond)
		n.Connect(s1, s2, 25e6, 100*time.Microsecond)
		n.Connect(s2, b, 155e6, 100*time.Microsecond)
		n.Connect(s2, d, 155e6, 100*time.Microsecond)
		video, err := n.Open(a, b, CBRContract(5e6), OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		flood, err := n.Open(c, d, UBRContract(60e6), OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			flood.Send(make([]byte, 4000))
		}
		for i := 0; i < 200; i++ {
			n.Clock().At(sim.Time(i)*sim.Time(2*time.Millisecond), func(sim.Time) {
				video.Send(make([]byte, 1000))
			})
		}
		n.Clock().Run()
		return video
	}
	priority := runWith(false)
	fifo := runWith(true)
	if priority.Metrics.CellsDropped != 0 {
		t.Errorf("priority queueing dropped %d CBR cells", priority.Metrics.CellsDropped)
	}
	if fifo.Metrics.CellsDropped == 0 && fifo.Metrics.Delay.Percentile(99) <= priority.Metrics.Delay.Percentile(99)*2 {
		t.Errorf("FIFO ablation shows no degradation: drops=%d p99=%v vs priority p99=%v",
			fifo.Metrics.CellsDropped,
			time.Duration(fifo.Metrics.Delay.Percentile(99)),
			time.Duration(priority.Metrics.Delay.Percentile(99)))
	}
}

func TestABRAdaptsToCongestion(t *testing.T) {
	// An ABR source shares a 10 Mb/s bottleneck with a CBR flow taking
	// 6 Mb/s. Rate feedback must (a) back the ABR flow off under
	// congestion instead of losing cells wholesale like UBR, and
	// (b) ramp it up when the path is idle.
	build := func(withCBR bool) (*Network, *Connection) {
		n := New()
		n.BufferCells = 256
		a := n.AddHost("a")
		b := n.AddHost("b")
		c := n.AddHost("c")
		d := n.AddHost("d")
		s1 := n.AddSwitch("s1")
		s2 := n.AddSwitch("s2")
		n.Connect(a, s1, 155e6, 200*time.Microsecond)
		n.Connect(c, s1, 155e6, 200*time.Microsecond)
		n.Connect(s1, s2, 10e6, 200*time.Microsecond)
		n.Connect(s2, b, 155e6, 200*time.Microsecond)
		n.Connect(s2, d, 155e6, 200*time.Microsecond)
		if withCBR {
			cbr, err := n.Open(c, d, CBRContract(6e6), OpenOptions{})
			if err != nil {
				t.Fatal(err)
			}
			// A paced 6 Mb/s stream for 2 seconds.
			for i := 0; i < 1000; i++ {
				n.Clock().At(sim.Time(i)*sim.Time(2*time.Millisecond), func(sim.Time) {
					cbr.Send(make([]byte, 1400))
				})
			}
		}
		abr, err := n.Open(a, b, ABRContract(20e6, 100e3), OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// The ABR source always has data: 2 MB backlog.
		for i := 0; i < 500; i++ {
			abr.Send(make([]byte, 4000))
		}
		return n, abr
	}

	// Idle path: the source ramps up from ICR toward PCR.
	n1, idle := build(false)
	icr := idle.ACR()
	n1.Clock().Run()
	if idle.RateChanges() == 0 {
		t.Fatal("no rate feedback on idle path")
	}
	if idle.ACR() <= icr {
		t.Errorf("idle ACR %.0f did not ramp up from ICR %.0f", idle.ACR(), icr)
	}
	if idle.Metrics.PDUsDelivered != 500 {
		t.Errorf("idle delivered %d/500", idle.Metrics.PDUsDelivered)
	}

	// Congested path: feedback caps the rate and loss stays moderate
	// relative to an equivalent unshaped UBR flood (which loses most of
	// its cells at this buffer depth).
	n2, congested := build(true)
	n2.Clock().Run()
	if congested.RateChanges() == 0 {
		t.Fatal("no rate feedback under congestion")
	}
	lossRate := float64(congested.Metrics.CellsDropped) / float64(congested.Metrics.CellsSent)
	if lossRate > 0.10 {
		t.Errorf("ABR loss rate %.1f%% — feedback not controlling the source", 100*lossRate)
	}
	if congested.Metrics.PDUsDelivered < 450 {
		t.Errorf("ABR delivered %d/500 under congestion", congested.Metrics.PDUsDelivered)
	}
}

func TestABRContractValidation(t *testing.T) {
	if err := ABRContract(10e6, 1e6).Validate(); err != nil {
		t.Errorf("valid ABR contract rejected: %v", err)
	}
	bad := ABRContract(1e6, 10e6) // MCR above PCR
	if err := bad.Validate(); err == nil {
		t.Error("MCR > PCR accepted")
	}
	if got := ABRContract(10e6, 1e6).GuaranteedRate(); got <= 0 {
		t.Error("ABR MCR not reserved by CAC")
	}
	// Non-ABR connections report no ACR.
	n := New()
	a := n.AddHost("a")
	b := n.AddHost("b")
	sw := n.AddSwitch("s")
	n.Connect(a, sw, 155e6, time.Millisecond)
	n.Connect(sw, b, 155e6, time.Millisecond)
	conn, err := n.Open(a, b, CBRContract(1e6), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if conn.ACR() != 0 || conn.RateChanges() != 0 {
		t.Error("CBR connection reports ABR state")
	}
}
