package atm

import (
	"errors"
	"fmt"
	"time"

	"mits/internal/sim"
)

// ErrAdmissionDenied is returned when connection admission control finds
// a link on the path without enough unreserved capacity for the
// contract's guaranteed rate.
var ErrAdmissionDenied = errors.New("atm: connection admission denied: insufficient capacity")

// ErrNoRoute is returned when no path exists between the endpoints.
var ErrNoRoute = errors.New("atm: no route between endpoints")

// DefaultBufferCells is the per-link output buffer used unless overridden.
const DefaultBufferCells = 512

// switchLatency is the fixed per-cell forwarding latency of a switch
// fabric, on top of queueing. OCRInet-era hardware forwarded in a few
// microseconds.
const switchLatency = 4 * time.Microsecond

// Network is an ATM network: switches, hosts, links, and the virtual
// connections routed across them. All activity runs on the owned
// sim.Clock.
type Network struct {
	clock    *sim.Clock
	nodes    map[string]node
	adjacent map[node][]*Link // outgoing links per node
	conns    map[int]*Connection
	nextConn int
	nextVCI  uint16

	// reserved tracks guaranteed cell rate allocated per link by CAC.
	reserved map[*Link]float64

	// Policing enables GCRA enforcement at the network edge (the first
	// switch a connection's cells enter). Non-conforming cells of
	// real-time categories are dropped; others are tagged CLP=1.
	Policing bool

	// FIFO disables per-class priority queueing and buffer
	// partitioning: every cell shares one first-come queue, like a
	// plain packet switch. This is the E23 ablation — it removes the
	// mechanism that isolates reserved traffic from best-effort floods.
	FIFO bool

	// BufferCells sets the output buffer of links created afterwards.
	BufferCells int
}

// New creates an empty network on its own virtual clock.
func New() *Network {
	return &Network{
		clock:       sim.NewClock(),
		nodes:       make(map[string]node),
		adjacent:    make(map[node][]*Link),
		conns:       make(map[int]*Connection),
		reserved:    make(map[*Link]float64),
		nextVCI:     32, // VCIs below 32 are reserved for signalling
		BufferCells: DefaultBufferCells,
	}
}

// Clock exposes the network's virtual clock so callers can co-schedule
// application events with network activity.
func (n *Network) Clock() *sim.Clock { return n.clock }

// Switch is an ATM switch: it forwards cells between its links using a
// per-(link, VC) routing table.
type Switch struct {
	net    *Network
	name   string
	routes map[routeKey]routeEntry
	// policers holds edge policers for connections entering the
	// network at this switch, keyed by connection id.
	policers map[int]conformer
	policed  int // cells dropped or tagged by policing
}

type routeKey struct {
	in *Link
	vc VC
}

type routeEntry struct {
	out *Link
	vc  VC
	cat ServiceCategory
}

// Name reports the switch's name.
func (s *Switch) Name() string { return s.name }

// Policed reports cells the switch's edge policers dropped or tagged.
func (s *Switch) Policed() int { return s.policed }

type conformer interface {
	Conforms(now sim.Time) bool
}

// AddSwitch creates a named switch.
func (n *Network) AddSwitch(name string) *Switch {
	s := &Switch{
		net:      n,
		name:     name,
		routes:   make(map[routeKey]routeEntry),
		policers: make(map[int]conformer),
	}
	n.register(name, s)
	return s
}

// Host is a network endpoint: the attachment point for MITS sites
// (database server, navigator, production center).
type Host struct {
	net  *Network
	name string
	// terminating connections by id, for reassembly dispatch.
	terminating map[int]*Connection
}

// Name reports the host's name.
func (h *Host) Name() string { return h.name }

// AddHost creates a named host.
func (n *Network) AddHost(name string) *Host {
	h := &Host{net: n, name: name, terminating: make(map[int]*Connection)}
	n.register(name, h)
	return h
}

func (n *Network) register(name string, nd node) {
	if _, dup := n.nodes[name]; dup {
		panic(fmt.Sprintf("atm: duplicate node name %q", name))
	}
	n.nodes[name] = nd
}

// Connect joins two nodes with a duplex link of the given line rate
// (bits/s) and propagation delay.
func (n *Network) Connect(a, b node, rateBits float64, prop time.Duration) {
	if rateBits <= 0 {
		panic("atm: link rate must be positive")
	}
	n.adjacent[a] = append(n.adjacent[a], newLink(n, a, b, rateBits, prop, n.BufferCells))
	n.adjacent[b] = append(n.adjacent[b], newLink(n, b, a, rateBits, prop, n.BufferCells))
}

// Links reports all outgoing links of a node (mainly for tests and
// drop accounting).
func (n *Network) Links(nd node) []*Link { return n.adjacent[nd] }

// ConnMetrics accumulates per-connection measurements.
type ConnMetrics struct {
	PDUsSent      int
	PDUsDelivered int
	PDUErrors     int
	CellsSent     int64
	CellsDropped  int64
	Delay         sim.Series // per-PDU end-to-end delay (ns)
}

// Connection is a unidirectional virtual channel connection with a
// traffic contract.
type Connection struct {
	ID  int
	net *Network
	src *Host
	dst *Host
	td  TrafficDescriptor

	path   []*Link
	vcs    []VC
	shaper interface {
		Conforms(now sim.Time) bool
		NextConforming(now sim.Time) sim.Time
	}
	shaped bool

	pending  []Cell // cells waiting for the shaper
	pendHead int    // consumed prefix of pending (amortized dequeue)
	abr      *abrState
	pumping  bool
	seq      int64
	nextPDU  int64
	sentAt   map[int64]sim.Time // PDU id → send instant
	reasm    Reassembler
	deliver  func(pdu []byte, sent, now sim.Time)
	Metrics  ConnMetrics
	closed   bool
}

// OpenOptions tunes connection establishment.
type OpenOptions struct {
	// Unshaped disables host-side traffic shaping, so the source emits
	// at link speed regardless of contract. Used to exercise policing.
	Unshaped bool
	// Deliver is invoked for every successfully reassembled PDU.
	Deliver func(pdu []byte, sent, now sim.Time)
}

// Open establishes a connection from src to dst under the contract,
// running admission control on every link of the shortest path.
func (n *Network) Open(src, dst *Host, td TrafficDescriptor, opts OpenOptions) (*Connection, error) {
	if err := td.Validate(); err != nil {
		return nil, err
	}
	path, err := n.route(src, dst)
	if err != nil {
		return nil, err
	}
	// Connection admission control: every link must have unreserved
	// capacity for the guaranteed rate.
	need := td.GuaranteedRate()
	for _, l := range path {
		if n.reserved[l]+need > l.CellRate() {
			return nil, fmt.Errorf("%w: link %s→%s has %.0f of %.0f cells/s reserved, need %.0f",
				ErrAdmissionDenied, l.from.Name(), l.to.Name(), n.reserved[l], l.CellRate(), need)
		}
	}
	for _, l := range path {
		n.reserved[l] += need
	}

	c := &Connection{
		ID:      n.nextConn,
		net:     n,
		src:     src,
		dst:     dst,
		td:      td,
		path:    path,
		shaped:  !opts.Unshaped,
		sentAt:  make(map[int64]sim.Time),
		deliver: opts.Deliver,
	}
	n.nextConn++

	// Assign one VC per hop and install switch routes.
	for range path {
		c.vcs = append(c.vcs, VC{VPI: 0, VCI: n.allocVCI()})
	}
	for i := 0; i < len(path)-1; i++ {
		sw, ok := path[i].to.(*Switch)
		if !ok {
			return nil, fmt.Errorf("atm: interior node %s is not a switch", path[i].to.Name())
		}
		sw.routes[routeKey{in: path[i], vc: c.vcs[i]}] = routeEntry{out: path[i+1], vc: c.vcs[i+1], cat: td.Category}
	}
	// Edge policer at the first switch on the path.
	if len(path) > 0 {
		if sw, ok := path[0].to.(*Switch); ok {
			sw.policers[c.ID] = newConformer(td)
		}
	}

	switch td.Category {
	case RtVBR, NrtVBR:
		c.shaper = NewDualGCRA(td)
	default:
		c.shaper = NewGCRA(td.PCR, td.CDVT)
	}
	c.initABR()

	dst.terminating[c.ID] = c
	n.conns[c.ID] = c
	return c, nil
}

func newConformer(td TrafficDescriptor) conformer {
	switch td.Category {
	case RtVBR, NrtVBR:
		return NewDualGCRA(td)
	default:
		return NewGCRA(td.PCR, td.CDVT)
	}
}

// Close releases the connection's reserved bandwidth and routes.
func (c *Connection) Close() {
	if c.closed {
		return
	}
	c.closed = true
	need := c.td.GuaranteedRate()
	for i, l := range c.path {
		c.net.reserved[l] -= need
		if i > 0 {
			if sw, ok := l.from.(*Switch); ok {
				delete(sw.routes, routeKey{in: c.path[i-1], vc: c.vcs[i-1]})
			}
		}
	}
	if len(c.path) > 0 {
		if sw, ok := c.path[0].to.(*Switch); ok {
			delete(sw.policers, c.ID)
		}
	}
	delete(c.dst.terminating, c.ID)
	delete(c.net.conns, c.ID)
}

func (n *Network) allocVCI() uint16 {
	v := n.nextVCI
	n.nextVCI++
	if n.nextVCI == 0 {
		n.nextVCI = 32
	}
	return v
}

// route finds the shortest hop path from src to dst via BFS.
func (n *Network) route(src, dst *Host) ([]*Link, error) {
	if src == dst {
		return nil, fmt.Errorf("atm: source and destination host are the same node %q", src.name)
	}
	type hop struct {
		at  node
		via []*Link
	}
	visited := map[node]bool{src: true}
	queue := []hop{{at: src}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, l := range n.adjacent[h.at] {
			if visited[l.to] {
				continue
			}
			path := append(append([]*Link(nil), h.via...), l)
			if l.to == dst {
				return path, nil
			}
			// Only switches forward; a foreign host is a dead end.
			if _, isSwitch := l.to.(*Switch); isSwitch {
				visited[l.to] = true
				queue = append(queue, hop{at: l.to, via: path})
			}
		}
	}
	return nil, ErrNoRoute
}

// Send queues a PDU on the connection. Cells are emitted through the
// traffic shaper (unless the connection is unshaped) onto the first
// link.
func (c *Connection) Send(pdu []byte) error {
	if c.closed {
		return errors.New("atm: send on closed connection")
	}
	cells, err := Segment(c.vcs[0], c.ID, c.seq, pdu)
	if err != nil {
		return err
	}
	c.seq += int64(len(cells))
	id := c.nextPDU
	c.nextPDU++
	now := c.net.clock.Now()
	c.sentAt[id] = now
	c.Metrics.PDUsSent++
	for i := range cells {
		cells[i].PDU = id
	}
	c.pending = append(c.pending, cells...)
	c.pump(now)
	return nil
}

// pendingLen reports cells awaiting the shaper.
func (c *Connection) pendingLen() int { return len(c.pending) - c.pendHead }

// popPending dequeues the next cell, compacting the backing array once
// the consumed prefix dominates so memory stays bounded.
func (c *Connection) popPending() Cell {
	cell := c.pending[c.pendHead]
	c.pendHead++
	if c.pendHead > 1024 && c.pendHead*2 >= len(c.pending) {
		n := copy(c.pending, c.pending[c.pendHead:])
		c.pending = c.pending[:n]
		c.pendHead = 0
	}
	return cell
}

// pump emits pending cells at the shaper's pace.
func (c *Connection) pump(now sim.Time) {
	if c.pumping || c.pendingLen() == 0 {
		return
	}
	if !c.shaped {
		// Unshaped: inject everything immediately; the access link's
		// serialization still paces the wire.
		for c.pendingLen() > 0 {
			c.emit(c.popPending(), now)
		}
		c.pending = c.pending[:0]
		c.pendHead = 0
		return
	}
	c.pumping = true
	next := c.shaper.NextConforming(now)
	c.net.clock.At(next, c.pumpOne)
}

func (c *Connection) pumpOne(now sim.Time) {
	c.pumping = false
	if c.pendingLen() == 0 || c.closed {
		return
	}
	if !c.shaper.Conforms(now) {
		// Shouldn't happen (we waited for NextConforming), but reschedule
		// defensively rather than violate the contract.
		c.pump(now)
		return
	}
	c.emit(c.popPending(), now)
	if c.pendingLen() > 0 {
		c.pumping = true
		c.net.clock.At(c.shaper.NextConforming(now), c.pumpOne)
	}
}

func (c *Connection) emit(cell Cell, now sim.Time) {
	c.Metrics.CellsSent++
	c.path[0].enqueue(cell, c.td.Category, now)
	if c.abr != nil {
		c.maybeSendRM(now)
	}
}

// receive implements node for Switch.
func (s *Switch) receive(cell Cell, on *Link, now sim.Time) {
	// Edge policing: applies to cells entering the network here.
	if s.net.Policing {
		if p, ok := s.policers[cell.ConnID]; ok {
			if !p.Conforms(now) {
				s.policed++
				obsGCRAViolations.Inc()
				conn := s.net.conns[cell.ConnID]
				if conn != nil && conn.td.Category.RealTime() {
					s.net.noteDrop(cell.ConnID)
					return // drop non-conforming real-time cells
				}
				cell.CLP = 1 // tag best-effort overflow
			}
		}
	}
	ent, ok := s.routes[routeKey{in: on, vc: cell.VC}]
	if !ok {
		// Unroutable cell: count against its connection and discard.
		s.net.noteDrop(cell.ConnID)
		return
	}
	cell.VC = ent.vc
	s.net.clock.After(switchLatency, func(t sim.Time) {
		ent.out.enqueue(cell, ent.cat, t)
	})
}

// receive implements node for Host: terminate and reassemble.
func (h *Host) receive(cell Cell, _ *Link, now sim.Time) {
	conn, ok := h.terminating[cell.ConnID]
	if !ok {
		return // connection torn down while cells were in flight
	}
	pdu, done := conn.reasm.Push(cell)
	if !cell.EndOfPDU() {
		return
	}
	sent, seen := conn.sentAt[cell.PDU]
	delete(conn.sentAt, cell.PDU)
	if !done {
		conn.Metrics.PDUErrors++
		return
	}
	conn.Metrics.PDUsDelivered++
	if seen {
		conn.Metrics.Delay.AddDuration(now.Sub(sent))
	}
	if conn.deliver != nil {
		conn.deliver(pdu, sent, now)
	}
}

func (n *Network) noteDrop(connID int) {
	if c, ok := n.conns[connID]; ok {
		c.Metrics.CellsDropped++
	}
}
