package sim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series accumulates scalar samples (latencies, sizes) and reports
// summary statistics. The zero value is ready to use.
type Series struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Add records one sample.
func (s *Series) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	s.sorted = false
}

// AddDuration records a duration sample in nanoseconds.
func (s *Series) AddDuration(d time.Duration) { s.Add(float64(d)) }

// N reports the sample count.
func (s *Series) N() int { return len(s.samples) }

// Sum reports the total of all samples.
func (s *Series) Sum() float64 { return s.sum }

// Mean reports the arithmetic mean, or 0 with no samples.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min reports the smallest sample, or 0 with no samples.
func (s *Series) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[0]
}

// Max reports the largest sample, or 0 with no samples.
func (s *Series) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[len(s.samples)-1]
}

// Percentile reports the p-th percentile (0..100) by nearest-rank.
func (s *Series) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	rank := int(math.Ceil(p/100*float64(len(s.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.samples) {
		rank = len(s.samples) - 1
	}
	return s.samples[rank]
}

// StdDev reports the population standard deviation.
func (s *Series) StdDev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.samples {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

func (s *Series) sort() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// DurationStats formats the series as durations for report tables.
func (s *Series) DurationStats() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		s.N(),
		time.Duration(s.Mean()).Round(time.Microsecond),
		time.Duration(s.Percentile(50)).Round(time.Microsecond),
		time.Duration(s.Percentile(99)).Round(time.Microsecond),
		time.Duration(s.Max()).Round(time.Microsecond))
}
