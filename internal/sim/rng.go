package sim

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 core)
// used by workload generators. It avoids math/rand so that every
// simulation component can own an independent, explicitly-seeded stream
// and results never depend on global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics when n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean,
// used for Poisson arrival processes in workload generators.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns an approximately normally distributed value using the
// sum-of-uniforms method (Irwin–Hall with 12 samples), which is accurate
// enough for traffic-size jitter and avoids math imports beyond ln.
func (r *RNG) Norm(mean, stddev float64) float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return mean + stddev*(s-6)
}
