// Package sim provides a deterministic discrete-event simulation kernel.
//
// All time-dependent behaviour in MITS — ATM cell transmission, media
// stream pacing, courseware scenario playback — runs on virtual time so
// that tests and benchmarks are reproducible and never sleep on the wall
// clock. The kernel is a classic event-list simulator: events are ordered
// by (time, sequence number) so that simultaneous events fire in the
// order they were scheduled.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. It deliberately mirrors time.Duration so that
// bandwidth and latency arithmetic reads naturally.
type Time int64

// Common instants.
const (
	Zero    Time = 0
	Forever Time = math.MaxInt64
)

// Duration converts a virtual instant to a duration since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between two instants.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return time.Duration(t).String()
}

// Event is a scheduled callback. The callback runs exactly once, at the
// event's instant, unless the event is cancelled first.
type Event struct {
	when Time
	seq  uint64
	fn   func(now Time)
	idx  int // heap index, -1 when not queued
}

// When reports the instant the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.idx >= 0 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Clock is the simulation scheduler. The zero value is ready to use.
// Clock is not safe for concurrent use; simulations are single-threaded
// and deterministic by design (parallel workloads model concurrency
// inside virtual time, not with goroutines).
type Clock struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	closed bool
}

// NewClock returns a clock positioned at time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Fired reports how many events have run so far.
func (c *Clock) Fired() uint64 { return c.fired }

// Pending reports how many events are queued.
func (c *Clock) Pending() int { return len(c.queue) }

// At schedules fn to run at instant t. Scheduling in the past (before
// Now) panics: that is always a simulation logic bug, and silently
// clamping it would hide causality violations.
func (c *Clock) At(t Time, fn func(now Time)) *Event {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if t < c.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, c.now))
	}
	e := &Event{when: t, seq: c.seq, fn: fn, idx: -1}
	c.seq++
	heap.Push(&c.queue, e)
	return e
}

// After schedules fn to run d after the current instant.
func (c *Clock) After(d time.Duration, fn func(now Time)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return c.At(c.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
func (c *Clock) Cancel(e *Event) bool {
	if e == nil || e.idx < 0 {
		return false
	}
	heap.Remove(&c.queue, e.idx)
	return true
}

// Step runs the single next event, advancing the clock to its instant.
// It reports false when no events remain.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*Event)
	c.now = e.when
	c.fired++
	e.fn(c.now)
	return true
}

// Run executes events until the queue drains, returning the final time.
func (c *Clock) Run() Time {
	for c.Step() {
	}
	return c.now
}

// RunUntil executes events with instants ≤ deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (c *Clock) RunUntil(deadline Time) {
	for len(c.queue) > 0 && c.queue[0].when <= deadline {
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// RunFor is RunUntil relative to the current instant.
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now.Add(d)) }
