package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Error("empty series should report zeros")
	}
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Errorf("N=%d, want 4", s.N())
	}
	if s.Sum() != 20 {
		t.Errorf("Sum=%v, want 20", s.Sum())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean=%v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Errorf("Min/Max=%v/%v, want 2/8", s.Min(), s.Max())
	}
}

func TestSeriesPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("p50=%v, want 50", got)
	}
	if got := s.Percentile(99); got != 99 {
		t.Errorf("p99=%v, want 99", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("p100=%v, want 100", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0=%v, want 1", got)
	}
}

func TestSeriesStdDev(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev=%v, want 2", got)
	}
}

func TestSeriesAddAfterSort(t *testing.T) {
	var s Series
	s.Add(5)
	_ = s.Max() // forces a sort
	s.Add(1)
	if s.Min() != 1 {
		t.Errorf("Min=%v after post-sort Add, want 1", s.Min())
	}
}

func TestSeriesDurationStats(t *testing.T) {
	var s Series
	s.AddDuration(time.Millisecond)
	s.AddDuration(3 * time.Millisecond)
	got := s.DurationStats()
	if got == "" {
		t.Fatal("empty stats string")
	}
}

// Property: percentile results are always actual samples and Min ≤ p ≤ Max.
func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(vals []float64, p uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		pct := float64(p % 101)
		got := s.Percentile(pct)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		found := false
		for _, v := range sorted {
			if v == got {
				found = true
				break
			}
		}
		return found && got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10)=%d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64=%v out of [0,1)", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(1)
	var s Series
	for i := 0; i < 20000; i++ {
		s.Add(r.Exp(100))
	}
	if m := s.Mean(); math.Abs(m-100) > 5 {
		t.Errorf("Exp mean=%v, want ≈100", m)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(2)
	var s Series
	for i := 0; i < 20000; i++ {
		s.Add(r.Norm(50, 10))
	}
	if m := s.Mean(); math.Abs(m-50) > 1 {
		t.Errorf("Norm mean=%v, want ≈50", m)
	}
	if sd := s.StdDev(); math.Abs(sd-10) > 1 {
		t.Errorf("Norm stddev=%v, want ≈10", sd)
	}
}
