package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != Zero {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("new clock has %d pending events", c.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	c := NewClock()
	var order []int
	c.After(30*time.Millisecond, func(Time) { order = append(order, 3) })
	c.After(10*time.Millisecond, func(Time) { order = append(order, 1) })
	c.After(20*time.Millisecond, func(Time) { order = append(order, 2) })
	end := c.Run()
	if want := Time(30 * time.Millisecond); end != want {
		t.Errorf("final time %v, want %v", end, want)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fire order %v, want [1 2 3]", order)
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(Time(5), func(Time) { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d]=%d, want %d (FIFO tie-break)", i, v, i)
		}
	}
}

func TestEventSeesCurrentTime(t *testing.T) {
	c := NewClock()
	var saw Time
	c.After(time.Second, func(now Time) { saw = now })
	c.Run()
	if saw != Time(time.Second) {
		t.Errorf("callback saw %v, want 1s", saw)
	}
}

func TestNestedScheduling(t *testing.T) {
	c := NewClock()
	var hits int
	var tick func(now Time)
	tick = func(now Time) {
		hits++
		if hits < 5 {
			c.After(time.Millisecond, tick)
		}
	}
	c.After(time.Millisecond, tick)
	end := c.Run()
	if hits != 5 {
		t.Errorf("got %d ticks, want 5", hits)
	}
	if end != Time(5*time.Millisecond) {
		t.Errorf("end time %v, want 5ms", end)
	}
}

func TestCancel(t *testing.T) {
	c := NewClock()
	fired := false
	e := c.After(time.Second, func(Time) { fired = true })
	if !c.Cancel(e) {
		t.Fatal("Cancel reported failure for pending event")
	}
	if c.Cancel(e) {
		t.Fatal("second Cancel should report false")
	}
	c.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if c.Cancel(nil) {
		t.Error("Cancel(nil) should report false")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	c := NewClock()
	var order []int
	var events []*Event
	for i := 0; i < 8; i++ {
		i := i
		events = append(events, c.After(time.Duration(i+1)*time.Millisecond, func(Time) {
			order = append(order, i)
		}))
	}
	c.Cancel(events[3])
	c.Cancel(events[6])
	c.Run()
	want := []int{0, 1, 2, 4, 5, 7}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	c := NewClock()
	var fired []int
	c.After(time.Second, func(Time) { fired = append(fired, 1) })
	c.After(3*time.Second, func(Time) { fired = append(fired, 2) })
	c.RunUntil(Time(2 * time.Second))
	if len(fired) != 1 || fired[0] != 1 {
		t.Errorf("fired %v after RunUntil(2s), want [1]", fired)
	}
	if c.Now() != Time(2*time.Second) {
		t.Errorf("clock at %v, want 2s", c.Now())
	}
	if c.Pending() != 1 {
		t.Errorf("%d pending, want 1", c.Pending())
	}
	c.Run()
	if len(fired) != 2 {
		t.Errorf("second event never fired")
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	c := NewClock()
	c.RunFor(time.Second)
	c.RunFor(time.Second)
	if c.Now() != Time(2*time.Second) {
		t.Errorf("clock at %v, want 2s", c.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := NewClock()
	c.After(time.Second, func(Time) {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	c.At(Time(1), func(Time) {})
}

func TestNilCallbackPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	c.At(Time(1), nil)
}

func TestNegativeDelayPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	c.After(-time.Second, func(Time) {})
}

func TestFiredCounter(t *testing.T) {
	c := NewClock()
	for i := 0; i < 7; i++ {
		c.At(Time(i), func(Time) {})
	}
	c.Run()
	if c.Fired() != 7 {
		t.Errorf("Fired=%d, want 7", c.Fired())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		c := NewClock()
		var times []Time
		for _, d := range delays {
			c.After(time.Duration(d)*time.Microsecond, func(now Time) {
				times = append(times, now)
			})
		}
		c.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500 * time.Millisecond).String(); got != "1.5s" {
		t.Errorf("String()=%q, want 1.5s", got)
	}
	if got := Forever.String(); got != "forever" {
		t.Errorf("Forever.String()=%q", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Zero.Add(time.Second)
	b := a.Add(500 * time.Millisecond)
	if b.Sub(a) != 500*time.Millisecond {
		t.Errorf("Sub=%v, want 500ms", b.Sub(a))
	}
	if a.Duration() != time.Second {
		t.Errorf("Duration=%v, want 1s", a.Duration())
	}
}
