package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// WriteText renders the registry in the line-oriented text exposition
// format (one metric per line, deterministic order):
//
//	counter <name> <value>
//	gauge <name> <value>
//	hist <name> count=<n> sum_ns=<n> p50_ns=<n> p95_ns=<n> p99_ns=<n>
//	span name=<q> kind=<k> trace=<16hex> id=<16hex> parent=<16hex> dur_ns=<n> err=<q>
//
// Durations are integral nanoseconds so the output is parseable with
// nothing smarter than a split. The span section holds the most
// recent finished spans (ring of 256), oldest first.
func (r *Registry) WriteText(w io.Writer) error {
	if site := r.Site(); site != "" {
		if _, err := fmt.Fprintf(w, "# mits exposition site=%s\n", site); err != nil {
			return err
		}
	}
	for _, c := range r.Counters() {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", c.Name(), c.Value()); err != nil {
			return err
		}
	}
	for _, g := range r.Gauges() {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", g.Name(), g.Value()); err != nil {
			return err
		}
	}
	for _, h := range r.Histograms() {
		s := h.Snapshot()
		if _, err := fmt.Fprintf(w, "hist %s count=%d sum_ns=%d p50_ns=%d p95_ns=%d p99_ns=%d\n",
			s.Name, s.Count, int64(s.Sum), int64(s.P50), int64(s.P95), int64(s.P99)); err != nil {
			return err
		}
	}
	for _, sp := range r.Spans() {
		if _, err := fmt.Fprintf(w, "span name=%q kind=%s trace=%s id=%s parent=%s dur_ns=%d err=%q\n",
			sp.Name, sp.Kind, sp.Trace, sp.ID, sp.Parent, int64(sp.Dur), sp.Err); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the HTTP handler serving the text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w) // a scraper that hung up mid-read is its own problem
	})
}

// expvarOnce guards the process-global expvar namespace: Publish
// panics on duplicates, and tests may wire several servers.
var expvarOnce sync.Once

// PublishExpvar mirrors the Default registry into expvar under the
// "mits" variable, so the standard /debug/vars endpoint carries the
// same numbers as /stats. Safe to call repeatedly.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("mits", expvar.Func(func() any {
			out := make(map[string]any)
			for _, c := range Default.Counters() {
				out[c.Name()] = c.Value()
			}
			for _, g := range Default.Gauges() {
				out[g.Name()] = g.Value()
			}
			for _, h := range Default.Histograms() {
				s := h.Snapshot()
				out[s.Name] = map[string]int64{
					"count": s.Count, "sum_ns": int64(s.Sum),
					"p50_ns": int64(s.P50), "p95_ns": int64(s.P95), "p99_ns": int64(s.P99),
				}
			}
			return out
		}))
	})
}

// StatsServer is a running stats HTTP endpoint.
type StatsServer struct {
	Addr        string // bound address, e.g. "127.0.0.1:7122"
	srv         *http.Server
	lis         net.Listener
	stopSampler func()
}

// Close shuts the endpoint down immediately and stops the runtime
// sampler feeding its gauges.
func (s *StatsServer) Close() error {
	if s.stopSampler != nil {
		s.stopSampler()
		s.stopSampler = nil
	}
	return s.srv.Close()
}

// ServeStats exposes the Default registry over HTTP on addr
// ("127.0.0.1:0" picks a free port): GET /stats returns the text
// exposition, /metrics the Prometheus text format, /debug/vars the
// expvar mirror, /debug/pprof/* the runtime profiles, /healthz a bare
// 200. While the server runs, a background sampler publishes the
// runtime_* gauges and the runtime_gc_pause_ns histogram.
func ServeStats(addr string) (*StatsServer, error) {
	return ServeStatsMux(addr, nil)
}

// ServeStatsMux is ServeStats with a mount hook: when non-nil, mount
// runs on the endpoint's mux before serving starts, so a caller can
// attach extra views (the trace collector mounts /traces here) on the
// same port.
func ServeStatsMux(addr string, mount func(*http.ServeMux)) (*StatsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: stats listen: %w", err)
	}
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/stats", Default.Handler())
	mux.Handle("/metrics", Default.PromHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	// pprof registers on http.DefaultServeMux via init; this server uses
	// its own mux, so mount the handlers explicitly. Note the server's
	// WriteTimeout below caps profile collection — use e.g.
	// /debug/pprof/profile?seconds=5 rather than the 30s default.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	if mount != nil {
		mount(mux)
	}
	s := &StatsServer{
		Addr: lis.Addr().String(),
		// Full timeout set: without Read/Write/Idle timeouts a client
		// that stops reading (or never finishes its request body) pins
		// a serving goroutine forever — the stats port must never be
		// the process's resource leak.
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      10 * time.Second,
			IdleTimeout:       60 * time.Second,
		},
		lis: lis,
	}
	s.stopSampler = startRuntimeSampler(Default, runtimeSampleInterval)
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}
